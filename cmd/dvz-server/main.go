// Command dvz-server runs the DejaVuzz campaign service: a multi-tenant
// HTTP server that schedules concurrent fuzzing campaigns over a bounded
// shared worker budget, streams live session events, and triages findings
// into a deduplicated persistent bug store.
//
// Usage:
//
//	dvz-server [-addr :8471] [-state dvz-state] [-workers N] [-minimize=false]
//
// All state lives under the -state directory: the campaign registry,
// per-campaign barrier checkpoints, final reports, the triaged findings
// store, and the persistent cross-campaign corpus (harvested seeds plus
// their coverage-frontier statistics, served at /corpus). On SIGTERM/SIGINT
// the server checkpoints every active campaign at its next merge barrier
// before exiting; the next start with the same -state resumes them
// automatically, byte-identically (modulo wall-clock fields) to an
// uninterrupted run — and new campaigns created with "warm_start": true
// seed themselves from everything earlier campaigns harvested.
//
// See the README's "Running as a service" section for curl examples of
// every endpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dejavuzz/internal/server"
)

func main() {
	addr := flag.String("addr", ":8471", "HTTP listen address")
	state := flag.String("state", "dvz-state", "state directory (registry, checkpoints, reports, findings, corpus)")
	workers := flag.Int("workers", runtime.NumCPU(), "shared worker budget across all campaigns")
	minimize := flag.Bool("minimize", true, "run the background corpus minimizer (training reduction off the campaign hot path)")
	flag.Parse()

	logger := log.New(os.Stderr, "dvz-server: ", log.LstdFlags)
	srv, err := server.Open(server.Config{StateDir: *state, Workers: *workers, MinimizeCorpus: *minimize, Log: logger})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logger.Printf("listening on http://%s (state=%s, workers=%d)", ln.Addr(), *state, *workers)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Printf("http: %v", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop()
	logger.Printf("shutting down: checkpointing active campaigns at their next merge barrier")

	// Campaigns first: once their sessions park, event streams close and
	// the HTTP shutdown below drains naturally.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("campaign shutdown: %v", err)
	}
	cancel()
	httpCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		httpSrv.Close()
	}
	cancel()
	logger.Printf("bye")
}
