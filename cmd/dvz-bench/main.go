// Command dvz-bench measures campaign-engine throughput and coverage
// growth, and writes the results as a JSON artifact so CI can track the
// performance trajectory across PRs.
//
// Usage:
//
//	dvz-bench [-out BENCH_campaign.json] [-n iterations] [-seed N] [-target boom]
//	dvz-bench -check BENCH_campaign.json
//
// The benchmark runs one fixed campaign at Workers=1 and Workers=8
// (identical results by the engine's determinism guarantee — the comparison
// is pure scheduling/scaling) and records iterations per second for each,
// plus the coverage-matrix size at fixed iteration counts. The same
// campaign also runs once under the legacy -scheduler=ema policy, so the
// artifact carries a per-family A/B of the default UCB bandit against the
// EMA policy it replaced (the EMA rows are expected to show starvation —
// that is the bug the bandit fixed). -check re-reads a committed artifact
// and fails if any enabled family recorded zero picks under the default
// policy, which is how CI gates on scheduler starvation regressions.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"dejavuzz"
	"dejavuzz/internal/corpus"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/triage"
)

// Result is the BENCH_campaign.json schema.
type Result struct {
	Target     string  `json:"target"`
	Seed       int64   `json:"seed"`
	Iterations int     `json:"iterations"`
	NumCPU     int     `json:"num_cpu"`
	GoVersion  string  `json:"go_version"`
	UnixTime   int64   `json:"unix_time"`
	Workers1   float64 `json:"workers1_iters_per_sec"`
	Workers8   float64 `json:"workers8_iters_per_sec"`
	Speedup    float64 `json:"workers8_speedup"`
	// AllocsPerIter / BytesPerIter are heap allocations (count and bytes)
	// per fuzzing iteration at Workers=1 with per-shard execution-context
	// reuse — the engine's production configuration.
	AllocsPerIter float64 `json:"allocs_per_iter"`
	BytesPerIter  float64 `json:"bytes_per_iter"`
	// FreshAllocsPerIter / FreshBytesPerIter are the same probe with
	// context reuse disabled (every simulation rebuilds its DUT state) —
	// the pre-context-reuse allocation profile, kept as an in-artifact
	// before/after so the reduction is visible without digging up old
	// artifacts. FreshSlowdown is fresh-vs-reuse wall-clock ratio.
	FreshAllocsPerIter float64 `json:"fresh_allocs_per_iter"`
	FreshBytesPerIter  float64 `json:"fresh_bytes_per_iter"`
	AllocReduction     float64 `json:"alloc_reduction"`
	FreshSlowdown      float64 `json:"fresh_slowdown"`
	// CoverageAt maps iteration counts (as decimal strings, JSON keys) to
	// the cumulative coverage there — fixed probe points the trajectory of
	// which is comparable across PRs for the same seed.
	CoverageAt map[string]int `json:"coverage_at"`
	Findings   int            `json:"findings"`
	// TriageFindingsPerSec is raw-finding throughput through a persistent
	// triage store (one Add + atomic save per finding, the server's
	// streaming pattern); TriagedBugs is what the campaign's findings
	// dedup down to.
	TriageFindingsPerSec float64 `json:"triage_findings_per_sec"`
	TriagedBugs          int     `json:"triaged_bugs"`
	// Scheduler is the policy the main runs used (the engine default, ucb);
	// Scenarios carries their per-family trajectory from the Workers=1 run:
	// how the bandit allocated iterations, each family's effective
	// throughput and how long it took to its first finding. ScenariosEMA is
	// the same campaign re-run under -scheduler=ema at Workers=1 — the A/B
	// baseline against the legacy policy, whose rows are expected to show
	// starved families (that is the bug the bandit fixed).
	Scheduler    string          `json:"scheduler"`
	Scenarios    []ScenarioBench `json:"scenarios"`
	ScenariosEMA []ScenarioBench `json:"scenarios_ema"`
	// WarmStart is the cross-campaign warm-start A/B: the main run's barrier
	// harvest is folded into a corpus store, a second campaign (different
	// seed) runs once cold and once warm-started from that corpus, and each
	// row records how fast it reached the first campaign's final coverage.
	WarmStart *WarmStartBench `json:"warm_start,omitempty"`
}

// WarmStartBench is the warm-vs-cold comparison block.
type WarmStartBench struct {
	// CoverageTarget is the coverage-N goal both rows race to: the main
	// (seed-donor) campaign's final coverage.
	CoverageTarget int `json:"coverage_target"`
	// Snapshot/WarmSeeds/PriorFamilies describe the resolved warm-start set.
	Snapshot      string    `json:"snapshot"`
	WarmSeeds     int       `json:"warm_seeds"`
	PriorFamilies int       `json:"prior_families"`
	Rows          []WarmRow `json:"rows"`
}

// WarmRow is one warm-start A/B row ("cold" or "warm").
type WarmRow struct {
	Mode string `json:"mode"`
	// TimeToCoverageNMS is wall-clock from campaign start to the first merge
	// barrier at or above the coverage target (-1 when the campaign never
	// got there); ItersToCoverageN is the same probe in iterations — the
	// deterministic, machine-independent form of the comparison.
	TimeToCoverageNMS float64 `json:"time_to_coverage_n_ms"`
	ItersToCoverageN  int     `json:"iters_to_coverage_n"`
	FinalCoverage     int     `json:"final_coverage"`
	Findings          int     `json:"findings"`
}

// ScenarioBench is one scenario family's benchmark row.
type ScenarioBench struct {
	Name string `json:"name"`
	// Picks is how many of the campaign's iterations ran this family;
	// ItersPerSec is the family's share of campaign throughput.
	Picks       int     `json:"picks"`
	ItersPerSec float64 `json:"iters_per_sec"`
	// Findings counts the family's raw findings; TimeToFirstFindingMS is
	// measured wall-clock from campaign start to the merge barrier at which
	// the family's first finding streamed (-1 when none). Barrier
	// granularity makes it an upper bound, but unlike the prorated estimate
	// it replaced it never misattributes time across families whose
	// per-iteration costs differ several-fold.
	Findings             int     `json:"findings"`
	TimeToFirstFindingMS float64 `json:"time_to_first_finding_ms"`
	// Weight is the scheduler's final sampling weight; MeanYield and
	// ExplorationBonus decompose it (weight = mean + bonus under ucb; under
	// ema the bonus is zero and the weight is the decayed average).
	Weight           float64 `json:"weight"`
	MeanYield        float64 `json:"mean_yield"`
	ExplorationBonus float64 `json:"exploration_bonus"`
}

// runResult is one measured campaign: its report, throughput, per-iteration
// heap cost, and the wall-clock time at which each family's first finding
// streamed out of a merge barrier.
type runResult struct {
	rep            *dejavuzz.Report
	itersPerSec    float64
	allocsPerIter  float64
	bytesPerIter   float64
	firstFindingMS map[string]float64
	// harvest accumulates every barrier's corpus-worthy seeds; epochs is the
	// per-barrier (wall-clock ms, iterations done, coverage) timeline.
	harvest []dejavuzz.HarvestedSeed
	epochs  []epochProbe
}

// epochProbe is one merge barrier's progress sample.
type epochProbe struct {
	ms       float64
	done     int
	coverage int
}

// run executes one campaign as a streaming session and reports throughput
// plus the heap-allocation cost per iteration (mallocs and bytes, measured
// as a MemStats delta around the run — the testing.AllocsPerRun technique
// applied to a whole campaign). Driving the event stream instead of the
// blocking Run lets the benchmark timestamp each family's first finding as
// it leaves a merge barrier — real wall-clock accounting, replacing the old
// prorated estimate that misattributed time across families whose
// per-iteration costs differ several-fold.
func run(target string, seed int64, n, workers int, freshContexts bool, policy string, extra ...dejavuzz.Option) (*runResult, error) {
	opts := []dejavuzz.Option{
		dejavuzz.WithSeed(seed),
		dejavuzz.WithIterations(n),
		dejavuzz.WithWorkers(workers),
		dejavuzz.WithMergeEvery(16),
		dejavuzz.WithFreshContexts(freshContexts),
	}
	if policy != "" {
		opts = append(opts, dejavuzz.WithScheduler(policy))
	}
	opts = append(opts, extra...)
	c, err := dejavuzz.New(target, opts...)
	if err != nil {
		return nil, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	session, err := c.Start(context.Background())
	if err != nil {
		return nil, err
	}
	first := map[string]float64{}
	var harvest []dejavuzz.HarvestedSeed
	var epochs []epochProbe
	for ev := range session.Events() {
		switch ev.Kind {
		case dejavuzz.EventFinding:
			name := ev.Finding.ScenarioName()
			if _, ok := first[name]; !ok {
				first[name] = float64(time.Since(start).Microseconds()) / 1000.0
			}
		case dejavuzz.EventEpoch:
			harvest = append(harvest, ev.Harvest...)
			epochs = append(epochs, epochProbe{
				ms:       float64(time.Since(start).Microseconds()) / 1000.0,
				done:     ev.Done,
				coverage: ev.Coverage,
			})
		}
	}
	rep, err := session.Wait()
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return &runResult{
		rep:            rep,
		itersPerSec:    float64(n) / elapsed.Seconds(),
		allocsPerIter:  float64(after.Mallocs-before.Mallocs) / float64(n),
		bytesPerIter:   float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		firstFindingMS: first,
		harvest:        harvest,
		epochs:         epochs,
	}, nil
}

// warmRow probes a run's epoch timeline for the first barrier at or above
// the coverage target.
func warmRow(mode string, r *runResult, targetCov int) WarmRow {
	row := WarmRow{
		Mode:              mode,
		TimeToCoverageNMS: -1,
		ItersToCoverageN:  -1,
		FinalCoverage:     r.rep.Coverage,
		Findings:          len(r.rep.Findings),
	}
	for _, p := range r.epochs {
		if p.coverage >= targetCov {
			row.TimeToCoverageNMS = p.ms
			row.ItersToCoverageN = p.done
			break
		}
	}
	return row
}

// benchWarmStart runs the cross-campaign warm-start A/B: fold the donor
// run's harvest into a throwaway corpus store, resolve a warm-start set for
// a second campaign seed, then race that campaign cold vs warm to the
// donor's final coverage.
func benchWarmStart(target string, donor *runResult, donorCampaignSeed, seed int64, n int) (*WarmStartBench, error) {
	dir, err := os.MkdirTemp("", "dvz-bench-corpus-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := corpus.Open(dir)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	fp := corpus.Fingerprint(target, gen.VariantDerived, false)
	if _, err := store.Harvest(fmt.Sprintf("bench-donor-%d", donorCampaignSeed), target, fp, donor.harvest); err != nil {
		return nil, err
	}
	ws := store.WarmStart(target, fp, dejavuzz.Scenarios(), seed, 0)

	cold, err := run(target, seed, n, 1, false, "")
	if err != nil {
		return nil, err
	}
	warm, err := run(target, seed, n, 1, false, "", dejavuzz.WithWarmStart(dejavuzz.WarmStart{
		Snapshot: ws.Snapshot,
		Seeds:    ws.Seeds,
		Prior:    ws.Prior,
	}))
	if err != nil {
		return nil, err
	}
	targetCov := donor.rep.Coverage
	return &WarmStartBench{
		CoverageTarget: targetCov,
		Snapshot:       ws.Snapshot,
		WarmSeeds:      len(ws.Seeds),
		PriorFamilies:  len(ws.Prior),
		Rows: []WarmRow{
			warmRow("cold", cold, targetCov),
			warmRow("warm", warm, targetCov),
		},
	}, nil
}

// benchRows converts one run's per-family report statistics into benchmark
// rows, joining in the measured first-finding wall-clock times.
func benchRows(r *runResult) []ScenarioBench {
	var rows []ScenarioBench
	for _, sc := range r.rep.Scenarios {
		row := ScenarioBench{
			Name:                 sc.Name,
			Picks:                sc.Picks,
			ItersPerSec:          float64(sc.Picks) / r.rep.Duration.Seconds(),
			Findings:             sc.Findings,
			TimeToFirstFindingMS: -1,
			Weight:               sc.Weight,
			MeanYield:            sc.MeanYield,
			ExplorationBonus:     sc.ExplorationBonus,
		}
		if ms, ok := r.firstFindingMS[sc.Name]; ok {
			row.TimeToFirstFindingMS = ms
		}
		rows = append(rows, row)
	}
	return rows
}

// benchTriage measures finding throughput through a persistent triage
// store: every finding is added individually (the per-barrier streaming
// pattern dvz-server uses) with an atomic file save each time.
func benchTriage(target string, seed int64, findings []dejavuzz.Finding) (perSec float64, bugs int, err error) {
	dir, err := os.MkdirTemp("", "dvz-bench-triage-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	store, err := triage.Open(filepath.Join(dir, "findings.json"))
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for _, f := range findings {
		if _, _, err := store.Add("bench", target, seed, f); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start).Seconds()
	_, bugs = store.Stats()
	if elapsed > 0 {
		perSec = float64(len(findings)) / elapsed
	}
	return perSec, bugs, nil
}

// checkArtifact re-reads a benchmark artifact and verifies no enabled
// family starved under the default policy: every row in "scenarios" must
// record at least one pick. The EMA A/B rows are exempt — starving there is
// the documented legacy behaviour the comparison exists to show.
func checkArtifact(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return 1
	}
	if len(res.Scenarios) == 0 {
		fmt.Fprintf(os.Stderr, "%s: no scenario rows — artifact predates per-family stats or is not a dvz-bench result\n", path)
		return 1
	}
	var starved []string
	for _, sc := range res.Scenarios {
		if sc.Picks == 0 {
			starved = append(starved, sc.Name)
		}
	}
	if len(starved) > 0 {
		fmt.Fprintf(os.Stderr, "%s: scheduler starvation — %d of %d families got zero picks: %s\n",
			path, len(starved), len(res.Scenarios), strings.Join(starved, ", "))
		return 1
	}
	fmt.Printf("%s: ok — all %d families picked (scheduler=%s)\n", path, len(res.Scenarios), res.Scheduler)
	return 0
}

func main() {
	out := flag.String("out", "BENCH_campaign.json", "output JSON path")
	n := flag.Int("n", 128, "campaign iterations")
	seed := flag.Int64("seed", 42, "campaign seed")
	target := flag.String("target", dejavuzz.DefaultTarget, "registered target to benchmark")
	check := flag.String("check", "", "verify an existing artifact (fail on starved families) instead of benchmarking")
	flag.Parse()

	if *check != "" {
		os.Exit(checkArtifact(*check))
	}

	r1, err := run(*target, *seed, *n, 1, false, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep1 := r1.rep
	r8, err := run(*target, *seed, *n, 8, false, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep8 := r8.rep
	if rep1.Coverage != rep8.Coverage || len(rep1.Findings) != len(rep8.Findings) {
		fmt.Fprintf(os.Stderr, "determinism violation: workers=1 (%d cov, %d findings) vs workers=8 (%d cov, %d findings)\n",
			rep1.Coverage, len(rep1.Findings), rep8.Coverage, len(rep8.Findings))
		os.Exit(1)
	}
	rF, err := run(*target, *seed, *n, 1, true, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	repF := rF.rep
	if repF.Coverage != rep1.Coverage || len(repF.Findings) != len(rep1.Findings) {
		fmt.Fprintf(os.Stderr, "reset-equivalence violation: reuse (%d cov, %d findings) vs fresh (%d cov, %d findings)\n",
			rep1.Coverage, len(rep1.Findings), repF.Coverage, len(repF.Findings))
		os.Exit(1)
	}
	// The same campaign under the legacy EMA policy, Workers=1: the A/B
	// baseline the bandit is measured against.
	rEMA, err := run(*target, *seed, *n, 1, false, dejavuzz.SchedulerEMA)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	res := Result{
		Target:             *target,
		Seed:               *seed,
		Iterations:         *n,
		NumCPU:             runtime.NumCPU(),
		GoVersion:          runtime.Version(),
		UnixTime:           time.Now().Unix(),
		Workers1:           r1.itersPerSec,
		Workers8:           r8.itersPerSec,
		Speedup:            r8.itersPerSec / r1.itersPerSec,
		AllocsPerIter:      r1.allocsPerIter,
		BytesPerIter:       r1.bytesPerIter,
		FreshAllocsPerIter: rF.allocsPerIter,
		FreshBytesPerIter:  rF.bytesPerIter,
		AllocReduction:     rF.allocsPerIter / r1.allocsPerIter,
		FreshSlowdown:      r1.itersPerSec / rF.itersPerSec,
		CoverageAt:         map[string]int{},
		Findings:           len(rep1.Findings),
		Scheduler:          dejavuzz.SchedulerUCB,
		Scenarios:          benchRows(r1),
		ScenariosEMA:       benchRows(rEMA),
	}
	hist := rep1.CoverageHistory()
	for _, probe := range []int{16, 32, 64, 128} {
		if probe <= len(hist) {
			res.CoverageAt[fmt.Sprint(probe)] = hist[probe-1]
		}
	}

	res.TriageFindingsPerSec, res.TriagedBugs, err = benchTriage(*target, *seed, rep1.Findings)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The warm-start A/B: a second campaign (different seed) races to the
	// main run's final coverage, cold vs warm-started from its harvest.
	res.WarmStart, err = benchWarmStart(*target, r1, *seed, *seed+1, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: workers1=%.1f iters/s workers8=%.1f iters/s (%.2fx), %.0f allocs/iter (fresh: %.0f, %.1fx reduction), coverage=%d, triage=%.0f findings/s -> %d bugs\n",
		*out, res.Workers1, res.Workers8, res.Speedup, res.AllocsPerIter, res.FreshAllocsPerIter, res.AllocReduction, rep1.Coverage, res.TriageFindingsPerSec, res.TriagedBugs)
	for _, row := range res.WarmStart.Rows {
		fmt.Printf("warm-start %s: coverage %d reached at iter %d (%.1f ms); final coverage %d\n",
			row.Mode, res.WarmStart.CoverageTarget, row.ItersToCoverageN, row.TimeToCoverageNMS, row.FinalCoverage)
	}
}
