// Command dvz-bench measures campaign-engine throughput and coverage
// growth, and writes the results as a JSON artifact so CI can track the
// performance trajectory across PRs.
//
// Usage:
//
//	dvz-bench [-out BENCH_campaign.json] [-n iterations] [-seed N] [-target boom]
//
// The benchmark runs one fixed campaign at Workers=1 and Workers=8
// (identical results by the engine's determinism guarantee — the comparison
// is pure scheduling/scaling) and records iterations per second for each,
// plus the coverage-matrix size at fixed iteration counts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"dejavuzz"
	"dejavuzz/internal/triage"
)

// Result is the BENCH_campaign.json schema.
type Result struct {
	Target     string  `json:"target"`
	Seed       int64   `json:"seed"`
	Iterations int     `json:"iterations"`
	NumCPU     int     `json:"num_cpu"`
	GoVersion  string  `json:"go_version"`
	UnixTime   int64   `json:"unix_time"`
	Workers1   float64 `json:"workers1_iters_per_sec"`
	Workers8   float64 `json:"workers8_iters_per_sec"`
	Speedup    float64 `json:"workers8_speedup"`
	// AllocsPerIter / BytesPerIter are heap allocations (count and bytes)
	// per fuzzing iteration at Workers=1 with per-shard execution-context
	// reuse — the engine's production configuration.
	AllocsPerIter float64 `json:"allocs_per_iter"`
	BytesPerIter  float64 `json:"bytes_per_iter"`
	// FreshAllocsPerIter / FreshBytesPerIter are the same probe with
	// context reuse disabled (every simulation rebuilds its DUT state) —
	// the pre-context-reuse allocation profile, kept as an in-artifact
	// before/after so the reduction is visible without digging up old
	// artifacts. FreshSlowdown is fresh-vs-reuse wall-clock ratio.
	FreshAllocsPerIter float64 `json:"fresh_allocs_per_iter"`
	FreshBytesPerIter  float64 `json:"fresh_bytes_per_iter"`
	AllocReduction     float64 `json:"alloc_reduction"`
	FreshSlowdown      float64 `json:"fresh_slowdown"`
	// CoverageAt maps iteration counts (as decimal strings, JSON keys) to
	// the cumulative coverage there — fixed probe points the trajectory of
	// which is comparable across PRs for the same seed.
	CoverageAt map[string]int `json:"coverage_at"`
	Findings   int            `json:"findings"`
	// TriageFindingsPerSec is raw-finding throughput through a persistent
	// triage store (one Add + atomic save per finding, the server's
	// streaming pattern); TriagedBugs is what the campaign's findings
	// dedup down to.
	TriageFindingsPerSec float64 `json:"triage_findings_per_sec"`
	TriagedBugs          int     `json:"triaged_bugs"`
	// Scenarios carries the per-family trajectory of the Workers=1 run:
	// how the adaptive scheduler allocated iterations, each family's
	// effective throughput and how long it took to its first finding.
	Scenarios []ScenarioBench `json:"scenarios"`
}

// ScenarioBench is one scenario family's benchmark row.
type ScenarioBench struct {
	Name string `json:"name"`
	// Picks is how many of the campaign's iterations ran this family;
	// ItersPerSec is the family's share of campaign throughput.
	Picks       int     `json:"picks"`
	ItersPerSec float64 `json:"iters_per_sec"`
	// Findings counts the family's raw findings; TimeToFirstFindingMS
	// estimates the wall-clock time to its first one (-1 when none),
	// prorated the same way the engine estimates Report.FirstBug.
	Findings             int     `json:"findings"`
	TimeToFirstFindingMS float64 `json:"time_to_first_finding_ms"`
	// Weight is the adaptive scheduler's final sampling weight.
	Weight float64 `json:"weight"`
}

// run executes one campaign and reports throughput plus the heap-allocation
// cost per iteration (mallocs and bytes, measured as a MemStats delta
// around the run — the testing.AllocsPerRun technique applied to a whole
// campaign).
func run(target string, seed int64, n, workers int, freshContexts bool) (*dejavuzz.Report, float64, float64, float64, error) {
	c, err := dejavuzz.New(target,
		dejavuzz.WithSeed(seed),
		dejavuzz.WithIterations(n),
		dejavuzz.WithWorkers(workers),
		dejavuzz.WithMergeEvery(16),
		dejavuzz.WithFreshContexts(freshContexts),
	)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	rep := c.Run()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	allocsPerIter := float64(after.Mallocs-before.Mallocs) / float64(n)
	bytesPerIter := float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
	return rep, float64(n) / elapsed.Seconds(), allocsPerIter, bytesPerIter, nil
}

// benchTriage measures finding throughput through a persistent triage
// store: every finding is added individually (the per-barrier streaming
// pattern dvz-server uses) with an atomic file save each time.
func benchTriage(target string, seed int64, findings []dejavuzz.Finding) (perSec float64, bugs int, err error) {
	dir, err := os.MkdirTemp("", "dvz-bench-triage-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	store, err := triage.Open(filepath.Join(dir, "findings.json"))
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for _, f := range findings {
		if _, _, err := store.Add("bench", target, seed, f); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start).Seconds()
	_, bugs = store.Stats()
	if elapsed > 0 {
		perSec = float64(len(findings)) / elapsed
	}
	return perSec, bugs, nil
}

func main() {
	out := flag.String("out", "BENCH_campaign.json", "output JSON path")
	n := flag.Int("n", 128, "campaign iterations")
	seed := flag.Int64("seed", 42, "campaign seed")
	target := flag.String("target", dejavuzz.DefaultTarget, "registered target to benchmark")
	flag.Parse()

	rep1, ips1, allocs1, bytes1, err := run(*target, *seed, *n, 1, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep8, ips8, _, _, err := run(*target, *seed, *n, 8, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rep1.Coverage != rep8.Coverage || len(rep1.Findings) != len(rep8.Findings) {
		fmt.Fprintf(os.Stderr, "determinism violation: workers=1 (%d cov, %d findings) vs workers=8 (%d cov, %d findings)\n",
			rep1.Coverage, len(rep1.Findings), rep8.Coverage, len(rep8.Findings))
		os.Exit(1)
	}
	repF, ipsF, allocsF, bytesF, err := run(*target, *seed, *n, 1, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if repF.Coverage != rep1.Coverage || len(repF.Findings) != len(rep1.Findings) {
		fmt.Fprintf(os.Stderr, "reset-equivalence violation: reuse (%d cov, %d findings) vs fresh (%d cov, %d findings)\n",
			rep1.Coverage, len(rep1.Findings), repF.Coverage, len(repF.Findings))
		os.Exit(1)
	}

	res := Result{
		Target:             *target,
		Seed:               *seed,
		Iterations:         *n,
		NumCPU:             runtime.NumCPU(),
		GoVersion:          runtime.Version(),
		UnixTime:           time.Now().Unix(),
		Workers1:           ips1,
		Workers8:           ips8,
		Speedup:            ips8 / ips1,
		AllocsPerIter:      allocs1,
		BytesPerIter:       bytes1,
		FreshAllocsPerIter: allocsF,
		FreshBytesPerIter:  bytesF,
		AllocReduction:     allocsF / allocs1,
		FreshSlowdown:      ips1 / ipsF,
		CoverageAt:         map[string]int{},
		Findings:           len(rep1.Findings),
	}
	hist := rep1.CoverageHistory()
	for _, probe := range []int{16, 32, 64, 128} {
		if probe <= len(hist) {
			res.CoverageAt[fmt.Sprint(probe)] = hist[probe-1]
		}
	}

	// Per-scenario trajectory from the Workers=1 run: family throughput is
	// its pick share of the campaign rate; time-to-first-finding prorates
	// the campaign duration to the finding's iteration, mirroring the
	// engine's Report.FirstBug estimate.
	for _, sc := range rep1.Scenarios {
		row := ScenarioBench{
			Name:                 sc.Name,
			Picks:                sc.Picks,
			ItersPerSec:          float64(sc.Picks) / rep1.Duration.Seconds(),
			Findings:             sc.Findings,
			TimeToFirstFindingMS: -1,
			Weight:               sc.Weight,
		}
		if sc.FirstFindingIter >= 0 {
			frac := float64(sc.FirstFindingIter+1) / float64(*n)
			row.TimeToFirstFindingMS = frac * float64(rep1.Duration.Milliseconds())
		}
		res.Scenarios = append(res.Scenarios, row)
	}

	res.TriageFindingsPerSec, res.TriagedBugs, err = benchTriage(*target, *seed, rep1.Findings)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: workers1=%.1f iters/s workers8=%.1f iters/s (%.2fx), %.0f allocs/iter (fresh: %.0f, %.1fx reduction), coverage=%d, triage=%.0f findings/s -> %d bugs\n",
		*out, ips1, ips8, res.Speedup, res.AllocsPerIter, res.FreshAllocsPerIter, res.AllocReduction, rep1.Coverage, res.TriageFindingsPerSec, res.TriagedBugs)
}
