// Command dejavuzz runs a DejaVuzz fuzzing campaign against one of the
// modelled out-of-order cores and reports discovered transient-execution
// leaks.
//
// Usage:
//
//	dejavuzz [-core boom|xiangshan] [-n iterations] [-seed N] [-workers N]
//	         [-variant derived|random] [-no-feedback] [-no-liveness]
//	         [-no-reduction] [-bugless] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dejavuzz"
	"dejavuzz/internal/core"
)

func main() {
	coreName := flag.String("core", "boom", "design under test: boom or xiangshan")
	n := flag.Int("n", 200, "fuzzing iterations")
	seed := flag.Int64("seed", 1, "campaign RNG seed")
	workers := flag.Int("workers", 1, "parallel simulation workers")
	variant := flag.String("variant", "derived", "training strategy: derived (DejaVuzz) or random (DejaVuzz*)")
	noFeedback := flag.Bool("no-feedback", false, "disable taint-coverage feedback (DejaVuzz-)")
	noLiveness := flag.Bool("no-liveness", false, "disable tainted-sink liveness analysis")
	noReduction := flag.Bool("no-reduction", false, "disable training reduction")
	bugless := flag.Bool("bugless", false, "disable the injected bugs (regression baseline)")
	verbose := flag.Bool("v", false, "print per-iteration statistics")
	repro := flag.String("repro", "", "replay a serialised finding seed (JSON) instead of fuzzing")
	flag.Parse()

	cfg := dejavuzz.Config{
		Seed:                    *seed,
		Iterations:              *n,
		Workers:                 *workers,
		DisableCoverageFeedback: *noFeedback,
		DisableLiveness:         *noLiveness,
		DisableReduction:        *noReduction,
		Bugless:                 *bugless,
	}
	switch strings.ToLower(*coreName) {
	case "boom":
		cfg.Core = dejavuzz.BOOM
	case "xiangshan", "xs":
		cfg.Core = dejavuzz.XiangShan
	default:
		fmt.Fprintf(os.Stderr, "unknown core %q\n", *coreName)
		os.Exit(2)
	}
	switch strings.ToLower(*variant) {
	case "derived":
		cfg.Variant = dejavuzz.Derived
	case "random":
		cfg.Variant = dejavuzz.RandomTraining
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}

	if *repro != "" {
		seed, err := core.DecodeSeed(*repro)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts := core.DefaultOptions(seed.Core)
		opts.Bugless = *bugless
		rr, err := core.NewFuzzer(opts).Reproduce(seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("reproduce: triggered=%v taint-gain=%v TO=%d ETO=%d sims=%d\n",
			rr.Triggered, rr.TaintGain, rr.TO, rr.ETO, rr.Sims)
		if rr.Finding != nil {
			fmt.Printf("finding: %v\n", rr.Finding)
		} else {
			fmt.Println("finding: none")
		}
		return
	}

	f := dejavuzz.New(cfg)
	rep := f.Run()

	if *verbose {
		for _, it := range rep.Iters {
			fmt.Printf("iter=%-4d trigger=%-28v triggered=%-5v gain=%-5v newpts=%-3d cov=%-4d finding=%v\n",
				it.Iteration, it.Trigger, it.Triggered, it.TaintGain, it.NewPoints, it.Coverage, it.Finding)
		}
	}
	fmt.Printf("core=%v iterations=%d sims=%d duration=%v\n",
		cfg.Core, *n, rep.Sims, rep.Duration.Round(1e6))
	fmt.Printf("taint coverage points: %d\n", rep.Coverage)
	fmt.Printf("findings: %d (liveness-suppressed false positives: %d)\n",
		len(rep.Findings), rep.DeadSinks)
	for i, fi := range rep.Findings {
		fmt.Printf("  [%d] %v\n      repro-seed: %s\n", i+1, &fi, core.EncodeSeed(fi.Seed))
	}
	if len(rep.Findings) > 0 {
		fmt.Printf("first finding after ~%v\n", rep.FirstBug.Round(1e6))
	}
}
