// Command dejavuzz runs a DejaVuzz fuzzing campaign against a registered
// target and reports discovered transient-execution leaks.
//
// Usage:
//
//	dejavuzz [-target boom|xiangshan|isasim] [-n iterations] [-seed N]
//	         [-workers N] [-shards N] [-variant derived|random]
//	         [-scenarios fam1,fam2,...] [-scheduler ucb|ema]
//	         [-no-feedback] [-no-liveness] [-no-reduction] [-bugless]
//	         [-checkpoint state.json] [-progress] [-v]
//
// Campaigns are deterministic: the same -seed/-n/-shards produce identical
// findings and coverage for any -workers value. Single campaigns run as a
// streaming session: -progress streams per-barrier events, -checkpoint
// autosaves a resumable checkpoint at every merge barrier, and Ctrl-C stops
// at the next barrier — re-running the same command resumes from the saved
// checkpoint. -list-targets prints the target registry; -list-scenarios
// prints the scenario-family catalog; -scenarios restricts a campaign to
// the named families (a determinism-relevant option: resuming a checkpoint
// under a different set fails with an option-mismatch error). -scheduler
// selects the scenario-scheduling policy — ucb (the default no-starvation
// bandit) or ema (the legacy decaying policy, kept for A/B comparison) —
// and is determinism-relevant the same way.
//
// Matrix mode runs a grid of campaigns (cores × variants × ablations ×
// seeds) over a shared worker pool with optional whole-campaign
// checkpoint/resume:
//
//	dejavuzz -matrix "cores=boom,xiangshan;variants=derived,random;ablations=base,no-feedback;seeds=1,2,3" \
//	         [-n iterations] [-workers N] [-checkpoint state.json] [-progress]
//
// The single-campaign flags remain meaningful in matrix mode: -seed,
// -target, -variant, -shards, -scheduler and the -no-*/-bugless ablation
// flags supply the base options, which matrix dimensions override per axis
// when present.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"dejavuzz"
	"dejavuzz/internal/campaign"
	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
)

func main() { os.Exit(realMain()) }

// realMain carries the whole CLI; it returns the process exit code instead
// of calling os.Exit so deferred teardown — notably the -cpuprofile /
// -memprofile writers — runs on every path, including the interrupt/
// checkpoint flow and error exits.
func realMain() int {
	target := flag.String("target", "", "design under test (see -list-targets; default boom)")
	coreName := flag.String("core", "", "deprecated alias of -target (boom or xiangshan)")
	n := flag.Int("n", 200, "fuzzing iterations")
	seed := flag.Int64("seed", 1, "campaign RNG seed")
	workers := flag.Int("workers", 1, "parallel simulation workers (wall-time only; never changes results)")
	shards := flag.Int("shards", 0, "deterministic logical shards (0 = default 8; changes stimulus streams)")
	variant := flag.String("variant", "derived", "training strategy: derived (DejaVuzz) or random (DejaVuzz*)")
	scenarios := flag.String("scenarios", "", "comma-separated scenario families to fuzz (see -list-scenarios; default all)")
	scheduler := flag.String("scheduler", "", "scenario-scheduling policy: ucb (default) or ema (legacy)")
	noFeedback := flag.Bool("no-feedback", false, "disable taint-coverage feedback (DejaVuzz-)")
	noLiveness := flag.Bool("no-liveness", false, "disable tainted-sink liveness analysis")
	noReduction := flag.Bool("no-reduction", false, "disable training reduction")
	bugless := flag.Bool("bugless", false, "disable the injected bugs (regression baseline)")
	verbose := flag.Bool("v", false, "print per-iteration statistics")
	repro := flag.String("repro", "", "replay a serialised finding seed (JSON) instead of fuzzing")
	matrix := flag.String("matrix", "", "campaign grid spec: cores=..;variants=..;ablations=..;seeds=..")
	checkpoint := flag.String("checkpoint", "", "resumable checkpoint file (per-barrier in single mode, per-campaign in matrix mode)")
	progress := flag.Bool("progress", false, "stream per-barrier progress to stderr")
	listTargets := flag.Bool("list-targets", false, "list registered targets and exit")
	listScenarios := flag.Bool("list-scenarios", false, "print the scenario catalog (markdown table) and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit (go tool pprof)")
	flag.Parse()

	// Profiling hooks so perf work on the engine never needs code edits:
	// -cpuprofile covers the whole run; -memprofile snapshots the heap after
	// the campaign completes (post-GC, so live retention is what shows).
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *listTargets {
		for _, name := range dejavuzz.Targets() {
			t, _ := dejavuzz.LookupTarget(name)
			fmt.Printf("%-12s %s\n", name, t.Description())
		}
		return 0
	}
	if *listScenarios {
		// Exactly the README's scenario-catalog table; CI diffs the two.
		fmt.Print(dejavuzz.ScenarioCatalogTable())
		return 0
	}

	targetName, err := resolveTarget(*target, *coreName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	trainVariant, err := parseVariant(*variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	scenarioSet, err := parseScenarios(*scenarios)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if err := core.ValidateSchedulerPolicy(*scheduler); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// Ctrl-C cancels the session/matrix at the next merge barrier, where a
	// resumable checkpoint is saved.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *matrix != "" {
		tgt, err := dejavuzz.LookupTarget(targetName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		base := core.DefaultOptionsFor(tgt)
		base.Seed = *seed
		base.Iterations = *n
		base.Variant = trainVariant
		if *shards > 0 {
			base.Shards = *shards
		}
		base.UseCoverageFeedback = !*noFeedback
		base.UseLiveness = !*noLiveness
		base.UseReduction = !*noReduction
		base.Bugless = *bugless
		base.Scenarios = scenarioSet
		base.Scheduler = *scheduler
		return runMatrix(ctx, *matrix, base, *workers, *checkpoint, *progress)
	}

	if *repro != "" {
		return runRepro(targetName, *target != "" || *coreName != "", *repro, *bugless)
	}

	opts := []dejavuzz.Option{
		dejavuzz.WithSeed(*seed),
		dejavuzz.WithIterations(*n),
		dejavuzz.WithWorkers(*workers),
		dejavuzz.WithVariant(trainVariant),
		dejavuzz.WithCoverageFeedback(!*noFeedback),
		dejavuzz.WithLiveness(!*noLiveness),
		dejavuzz.WithReduction(!*noReduction),
		dejavuzz.WithInjectedBugs(!*bugless),
	}
	if *shards > 0 {
		opts = append(opts, dejavuzz.WithShards(*shards))
	}
	if len(scenarioSet) > 0 {
		opts = append(opts, dejavuzz.WithScenarios(scenarioSet...))
	}
	if *scheduler != "" {
		opts = append(opts, dejavuzz.WithScheduler(*scheduler))
	}
	if *checkpoint != "" {
		opts = append(opts, dejavuzz.WithCheckpointFile(*checkpoint))
	}

	c, err := dejavuzz.New(targetName, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	ck, err := loadResume(*checkpoint)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var session *dejavuzz.Session
	if ck != nil {
		done, total := ck.Progress()
		fmt.Fprintf(os.Stderr, "resuming %s from %s (%d/%d iterations)\n",
			ck.Target(), *checkpoint, done, total)
		session, err = c.Resume(ctx, ck)
	} else {
		session, err = c.Start(ctx)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	rep := drainSession(session, *progress)
	if rep == nil {
		// Interrupted at a barrier; the checkpoint (if -checkpoint was
		// given) is already saved.
		ck := session.Checkpoint()
		done, total := ck.Progress()
		where := "progress was not saved (use -checkpoint FILE to make runs resumable)"
		if *checkpoint != "" {
			where = fmt.Sprintf("re-run the same command to resume from %s", *checkpoint)
		}
		fmt.Fprintf(os.Stderr, "interrupted at %d/%d iterations; %s\n", done, total, where)
		return 130
	}

	if *verbose {
		for _, it := range rep.Iters {
			fmt.Printf("iter=%-4d trigger=%-28v triggered=%-5v gain=%-5v newpts=%-3d cov=%-4d finding=%v\n",
				it.Iteration, it.Trigger, it.Triggered, it.TaintGain, it.NewPoints, it.Coverage, it.Finding)
		}
	}
	fmt.Printf("target=%s iterations=%d sims=%d duration=%v\n",
		targetName, len(rep.Iters), rep.Sims, rep.Duration.Round(1e6))
	fmt.Printf("taint coverage points: %d\n", rep.Coverage)
	fmt.Printf("findings: %d (liveness-suppressed false positives: %d)\n",
		len(rep.Findings), rep.DeadSinks)
	for i, fi := range rep.Findings {
		// Seeds encode only the core personality, not the target; point
		// non-uarch replays at the right pipeline explicitly.
		hint := ""
		if targetName != core.BuiltinTargetName(fi.Seed.Core) {
			hint = fmt.Sprintf(" (replay with -target %s)", targetName)
		}
		fmt.Printf("  [%d] %v\n      repro-seed: %s%s\n", i+1, &fi, core.EncodeSeed(fi.Seed), hint)
	}
	if len(rep.Findings) > 0 {
		fmt.Printf("first finding after ~%v\n", rep.FirstBug.Round(1e6))
	}
	return 0
}

// drainSession consumes the event stream (printing progress when asked) and
// returns the final report, or nil when the session was interrupted.
func drainSession(s *dejavuzz.Session, progress bool) *dejavuzz.Report {
	for ev := range s.Events() {
		switch ev.Kind {
		case dejavuzz.EventEpoch:
			if progress {
				fmt.Fprintf(os.Stderr, "%d/%d iterations, coverage=%d\n", ev.Done, ev.Total, ev.Coverage)
			}
		case dejavuzz.EventFinding:
			if progress {
				fmt.Fprintf(os.Stderr, "finding at iteration %d: %v\n", ev.Finding.Iteration, ev.Finding)
			}
		case dejavuzz.EventCheckpointSaved:
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "checkpoint save failed: %v\n", ev.Err)
			} else if progress {
				fmt.Fprintf(os.Stderr, "checkpoint saved to %s (%d/%d)\n", ev.Path, ev.Done, ev.Total)
			}
		}
	}
	rep, err := s.Wait()
	if errors.Is(err, dejavuzz.ErrInterrupted) {
		return nil
	}
	return rep
}

// loadResume loads a session checkpoint if the file exists; a missing file
// (or empty path) starts fresh and any other failure is fatal.
func loadResume(path string) (*dejavuzz.Checkpoint, error) {
	if path == "" {
		return nil, nil
	}
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return nil, nil
	}
	return dejavuzz.LoadCheckpoint(path)
}

// runRepro replays a serialised finding seed. Without an explicit -target
// the seed's core kind selects the matching uarch pipeline (the historical
// behaviour); with one, the replay runs on that target — which matters for
// findings from non-uarch targets like isasim, whose seeds also carry a
// core kind but must not be replayed on the uarch pipeline.
func runRepro(targetName string, explicit bool, reproJSON string, bugless bool) int {
	seed, err := core.DecodeSeed(reproJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if !explicit {
		targetName = core.BuiltinTargetName(seed.Core)
	}
	tgt, err := core.LookupTarget(targetName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	opts := core.DefaultOptionsFor(tgt)
	opts.Bugless = bugless
	f := core.NewFuzzer(opts)

	if targetName == core.BuiltinTargetName(tgt.Kind()) {
		// uarch pipeline: the full three-phase replay with training stats.
		rr, err := f.Reproduce(seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("reproduce: triggered=%v taint-gain=%v TO=%d ETO=%d sims=%d\n",
			rr.Triggered, rr.TaintGain, rr.TO, rr.ETO, rr.Sims)
		if rr.Finding != nil {
			fmt.Printf("finding: %v\n", rr.Finding)
		} else {
			fmt.Println("finding: none")
		}
		return 0
	}
	// Any other target: replay one iteration through its pipeline.
	out := tgt.NewPipeline(f).NewShard().RunIteration(0, seed, core.NewCoverage())
	fmt.Printf("reproduce[%s]: triggered=%v taint-gain=%v new-points=%d sims=%d\n",
		targetName, out.Triggered, out.TaintGain, out.NewPoints, out.Sims)
	if out.Finding != nil {
		fmt.Printf("finding: %v\n", out.Finding)
	} else {
		fmt.Println("finding: none")
	}
	return 0
}

// resolveTarget folds the deprecated -core spelling into the -target
// namespace.
func resolveTarget(target, coreName string) (string, error) {
	if target != "" && coreName != "" {
		return "", fmt.Errorf("use either -target or the deprecated -core, not both")
	}
	if coreName != "" {
		switch strings.ToLower(coreName) {
		case "boom":
			return "boom", nil
		case "xiangshan", "xs":
			return "xiangshan", nil
		}
		return "", fmt.Errorf("unknown core %q", coreName)
	}
	if target == "" {
		return dejavuzz.DefaultTarget, nil
	}
	if _, err := dejavuzz.LookupTarget(target); err != nil {
		return "", err
	}
	return target, nil
}

// parseScenarios splits and validates the -scenarios list against the
// registry, so a typo fails up front with the registered names.
func parseScenarios(list string) ([]string, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	var out []string
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		out = append(out, name)
	}
	if err := core.ValidateScenarios(out); err != nil {
		return nil, err
	}
	return out, nil
}

func parseVariant(name string) (gen.Variant, error) {
	switch strings.ToLower(name) {
	case "derived":
		return gen.VariantDerived, nil
	case "random":
		return gen.VariantRandom, nil
	}
	return 0, fmt.Errorf("unknown variant %q", name)
}

// parseMatrix turns "cores=boom,xiangshan;variants=derived;ablations=base,
// no-feedback;seeds=1,2" into a campaign matrix over the flag-derived base
// options. Omitted dimensions collapse to the base's value (one cell).
func parseMatrix(spec string, base core.Options) (campaign.Matrix, error) {
	m := campaign.Matrix{Base: base}
	for _, field := range strings.Split(spec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, vals, ok := strings.Cut(field, "=")
		if !ok {
			return m, fmt.Errorf("matrix: bad field %q (want key=v1,v2,...)", field)
		}
		for _, v := range strings.Split(vals, ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				continue
			}
			switch strings.TrimSpace(key) {
			case "cores":
				name, err := resolveTarget("", v)
				if err != nil {
					return m, fmt.Errorf("matrix: %w", err)
				}
				tgt, err := dejavuzz.LookupTarget(name)
				if err != nil {
					return m, fmt.Errorf("matrix: %w", err)
				}
				m.Cores = append(m.Cores, tgt.Kind())
			case "variants":
				tv, err := parseVariant(v)
				if err != nil {
					return m, fmt.Errorf("matrix: %w", err)
				}
				m.Variants = append(m.Variants, tv)
			case "ablations":
				ab, err := campaign.AblationByName(v)
				if err != nil {
					return m, fmt.Errorf("matrix: %w", err)
				}
				m.Ablations = append(m.Ablations, ab)
			case "seeds":
				s, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return m, fmt.Errorf("matrix: bad seed %q", v)
				}
				m.Seeds = append(m.Seeds, s)
			default:
				return m, fmt.Errorf("matrix: unknown dimension %q", key)
			}
		}
	}
	return m, nil
}

func runMatrix(ctx context.Context, spec string, base core.Options, workers int, checkpoint string, progress bool) int {
	m, err := parseMatrix(spec, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	runner := campaign.Runner{Workers: workers, Checkpoint: checkpoint}
	if progress {
		runner.Progress = os.Stderr
	}
	results, err := runner.RunMatrixContext(ctx, m)
	if results == nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%-40s %-10s %-10s %-10s %-10s\n", "campaign", "findings", "coverage", "sims", "cached")
	for _, res := range results {
		if res.Report == nil {
			continue // interrupted before this campaign finished
		}
		rep := res.Report
		fmt.Printf("%-40s %-10d %-10d %-10d %-10v\n",
			res.Name, len(rep.Findings), rep.Coverage, rep.Sims, res.Cached)
	}
	if err != nil {
		// Interrupted, or checkpoint-save failure: completed campaigns above
		// are still valid (and saved, when -checkpoint was given).
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
