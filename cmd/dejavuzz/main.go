// Command dejavuzz runs a DejaVuzz fuzzing campaign against one of the
// modelled out-of-order cores and reports discovered transient-execution
// leaks.
//
// Usage:
//
//	dejavuzz [-core boom|xiangshan] [-n iterations] [-seed N] [-workers N]
//	         [-shards N] [-variant derived|random] [-no-feedback]
//	         [-no-liveness] [-no-reduction] [-bugless] [-v]
//
// Campaigns are deterministic: the same -seed/-n/-shards produce identical
// findings and coverage for any -workers value.
//
// Matrix mode runs a grid of campaigns (cores × variants × ablations ×
// seeds) over a shared worker pool with optional checkpoint/resume:
//
//	dejavuzz -matrix "cores=boom,xiangshan;variants=derived,random;ablations=base,no-feedback;seeds=1,2,3" \
//	         [-n iterations] [-workers N] [-checkpoint state.json] [-progress]
//
// The single-campaign flags remain meaningful in matrix mode: -seed, -core,
// -variant, -shards and the -no-*/-bugless ablation flags supply the base
// options, which matrix dimensions override per axis when present.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dejavuzz"
	"dejavuzz/internal/campaign"
	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
)

func main() {
	coreName := flag.String("core", "boom", "design under test: boom or xiangshan")
	n := flag.Int("n", 200, "fuzzing iterations")
	seed := flag.Int64("seed", 1, "campaign RNG seed")
	workers := flag.Int("workers", 1, "parallel simulation workers (wall-time only; never changes results)")
	shards := flag.Int("shards", 0, "deterministic logical shards (0 = default 8; changes stimulus streams)")
	variant := flag.String("variant", "derived", "training strategy: derived (DejaVuzz) or random (DejaVuzz*)")
	noFeedback := flag.Bool("no-feedback", false, "disable taint-coverage feedback (DejaVuzz-)")
	noLiveness := flag.Bool("no-liveness", false, "disable tainted-sink liveness analysis")
	noReduction := flag.Bool("no-reduction", false, "disable training reduction")
	bugless := flag.Bool("bugless", false, "disable the injected bugs (regression baseline)")
	verbose := flag.Bool("v", false, "print per-iteration statistics")
	repro := flag.String("repro", "", "replay a serialised finding seed (JSON) instead of fuzzing")
	matrix := flag.String("matrix", "", "campaign grid spec: cores=..;variants=..;ablations=..;seeds=..")
	checkpoint := flag.String("checkpoint", "", "matrix mode: JSON checkpoint file for resume")
	progress := flag.Bool("progress", false, "matrix mode: stream per-campaign progress to stderr")
	flag.Parse()

	kind, err := parseCore(*coreName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	trainVariant, err := parseVariant(*variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *matrix != "" {
		base := core.DefaultOptions(kind)
		base.Seed = *seed
		base.Iterations = *n
		base.Variant = trainVariant
		if *shards > 0 {
			base.Shards = *shards
		}
		base.UseCoverageFeedback = !*noFeedback
		base.UseLiveness = !*noLiveness
		base.UseReduction = !*noReduction
		base.Bugless = *bugless
		runMatrix(*matrix, base, *workers, *checkpoint, *progress)
		return
	}

	cfg := dejavuzz.Config{
		Core:                    kind,
		Seed:                    *seed,
		Iterations:              *n,
		Workers:                 *workers,
		Shards:                  *shards,
		Variant:                 trainVariant,
		DisableCoverageFeedback: *noFeedback,
		DisableLiveness:         *noLiveness,
		DisableReduction:        *noReduction,
		Bugless:                 *bugless,
	}

	if *repro != "" {
		seed, err := core.DecodeSeed(*repro)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts := core.DefaultOptions(seed.Core)
		opts.Bugless = *bugless
		rr, err := core.NewFuzzer(opts).Reproduce(seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("reproduce: triggered=%v taint-gain=%v TO=%d ETO=%d sims=%d\n",
			rr.Triggered, rr.TaintGain, rr.TO, rr.ETO, rr.Sims)
		if rr.Finding != nil {
			fmt.Printf("finding: %v\n", rr.Finding)
		} else {
			fmt.Println("finding: none")
		}
		return
	}

	f := dejavuzz.New(cfg)
	rep := f.Run()

	if *verbose {
		for _, it := range rep.Iters {
			fmt.Printf("iter=%-4d trigger=%-28v triggered=%-5v gain=%-5v newpts=%-3d cov=%-4d finding=%v\n",
				it.Iteration, it.Trigger, it.Triggered, it.TaintGain, it.NewPoints, it.Coverage, it.Finding)
		}
	}
	fmt.Printf("core=%v iterations=%d sims=%d duration=%v\n",
		cfg.Core, *n, rep.Sims, rep.Duration.Round(1e6))
	fmt.Printf("taint coverage points: %d\n", rep.Coverage)
	fmt.Printf("findings: %d (liveness-suppressed false positives: %d)\n",
		len(rep.Findings), rep.DeadSinks)
	for i, fi := range rep.Findings {
		fmt.Printf("  [%d] %v\n      repro-seed: %s\n", i+1, &fi, core.EncodeSeed(fi.Seed))
	}
	if len(rep.Findings) > 0 {
		fmt.Printf("first finding after ~%v\n", rep.FirstBug.Round(1e6))
	}
}

func parseCore(name string) (dejavuzz.CoreKind, error) {
	switch strings.ToLower(name) {
	case "boom":
		return dejavuzz.BOOM, nil
	case "xiangshan", "xs":
		return dejavuzz.XiangShan, nil
	}
	return 0, fmt.Errorf("unknown core %q", name)
}

func parseVariant(name string) (gen.Variant, error) {
	switch strings.ToLower(name) {
	case "derived":
		return gen.VariantDerived, nil
	case "random":
		return gen.VariantRandom, nil
	}
	return 0, fmt.Errorf("unknown variant %q", name)
}

// parseMatrix turns "cores=boom,xiangshan;variants=derived;ablations=base,
// no-feedback;seeds=1,2" into a campaign matrix over the flag-derived base
// options. Omitted dimensions collapse to the base's value (one cell).
func parseMatrix(spec string, base core.Options) (campaign.Matrix, error) {
	m := campaign.Matrix{Base: base}
	for _, field := range strings.Split(spec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, vals, ok := strings.Cut(field, "=")
		if !ok {
			return m, fmt.Errorf("matrix: bad field %q (want key=v1,v2,...)", field)
		}
		for _, v := range strings.Split(vals, ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				continue
			}
			switch strings.TrimSpace(key) {
			case "cores":
				kind, err := parseCore(v)
				if err != nil {
					return m, fmt.Errorf("matrix: %w", err)
				}
				m.Cores = append(m.Cores, kind)
			case "variants":
				tv, err := parseVariant(v)
				if err != nil {
					return m, fmt.Errorf("matrix: %w", err)
				}
				m.Variants = append(m.Variants, tv)
			case "ablations":
				ab, err := campaign.AblationByName(v)
				if err != nil {
					return m, fmt.Errorf("matrix: %w", err)
				}
				m.Ablations = append(m.Ablations, ab)
			case "seeds":
				s, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return m, fmt.Errorf("matrix: bad seed %q", v)
				}
				m.Seeds = append(m.Seeds, s)
			default:
				return m, fmt.Errorf("matrix: unknown dimension %q", key)
			}
		}
	}
	return m, nil
}

func runMatrix(spec string, base core.Options, workers int, checkpoint string, progress bool) {
	m, err := parseMatrix(spec, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	runner := campaign.Runner{Workers: workers, Checkpoint: checkpoint}
	if progress {
		runner.Progress = os.Stderr
	}
	results, err := runner.RunMatrix(m)
	if results == nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-40s %-10s %-10s %-10s %-10s\n", "campaign", "findings", "coverage", "sims", "cached")
	for _, res := range results {
		rep := res.Report
		fmt.Printf("%-40s %-10d %-10d %-10d %-10v\n",
			res.Name, len(rep.Findings), rep.Coverage, rep.Sims, res.Cached)
	}
	if err != nil {
		// Checkpoint-save failure: the campaigns above still completed.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
