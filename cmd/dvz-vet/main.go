// Command dvz-vet is the determinism multichecker: it runs the four
// dvz analyzers (mapiter, detsource, optsync, rngshare) that statically
// enforce the engine's byte-identity invariants, then folds a stock
// `go vet` pass into the same invocation so CI needs exactly one lint
// step.
//
// Usage:
//
//	go run ./cmd/dvz-vet [-novet] [-list] [packages]
//
// Packages default to ./... . Exit status is 0 when the tree is clean,
// 1 when any analyzer (or go vet) reported findings, 2 on load errors.
//
// Analyzer flags use the multichecker convention <analyzer>.<flag>, e.g.
//
//	go run ./cmd/dvz-vet -mapiter.scope='*' ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"golang.org/x/tools/go/analysis"

	"dejavuzz/internal/analysis/detsource"
	"dejavuzz/internal/analysis/driver"
	"dejavuzz/internal/analysis/mapiter"
	"dejavuzz/internal/analysis/optsync"
	"dejavuzz/internal/analysis/rngshare"
)

func main() {
	os.Exit(run())
}

func run() int {
	analyzers := []*analysis.Analyzer{
		mapiter.Analyzer,
		detsource.Analyzer,
		optsync.Analyzer,
		rngshare.Analyzer,
	}

	novet := flag.Bool("novet", false, "skip the folded-in `go vet` pass")
	list := flag.Bool("list", false, "list the dvz analyzers and exit")
	for _, a := range analyzers {
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset, pkgs, err := driver.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := driver.Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Printf("%s\n", d)
	}

	status := 0
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dvz-vet: %d finding(s)\n", len(diags))
		status = 1
	}

	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fmt.Fprintf(os.Stderr, "dvz-vet: go vet: %v\n", err)
				return 2
			}
			if status == 0 {
				status = 1
			}
		}
	}
	return status
}
