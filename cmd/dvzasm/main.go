// Command dvzasm assembles the repository's RV64 subset and prints the
// encoded words with disassembly — a debugging aid for stimulus authors.
//
// Usage:
//
//	dvzasm [-base ADDR] file.s    (or stdin)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dejavuzz/internal/isa"
)

func main() {
	base := flag.Uint64("base", 0x4000, "image base address")
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, err := isa.Asm(*base, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, w := range p.Words {
		addr := p.Base + uint64(4*i)
		fmt.Printf("%#010x: %08x  %s\n", addr, w, isa.Decode(w))
	}
	if len(p.Labels) > 0 {
		fmt.Println("labels:")
		for name, addr := range p.Labels {
			fmt.Printf("  %-16s %#x\n", name, addr)
		}
	}
}
