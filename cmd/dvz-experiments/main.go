// Command dvz-experiments regenerates the paper's evaluation tables and
// figures on the Go reproduction stack.
//
// Usage:
//
//	dvz-experiments table2
//	dvz-experiments table3  [-samples N] [-seed N]
//	dvz-experiments table4  [-budget DUR] [-cycles N]
//	dvz-experiments figure6 [-cycles N] [-csv]
//	dvz-experiments figure7 [-iters N] [-trials N] [-seed N] [-csv]
//	dvz-experiments table5  [-iters N] [-seed N]
//	dvz-experiments liveness [-positives N] [-seed N]
//	dvz-experiments all      (reduced-scale run of everything)
//
// Parallel experiments (table3, table5, figure7) additionally accept
// shared-pool flags:
//
//	-workers N        campaigns/rows to run concurrently (default 1)
//	-checkpoint FILE  JSON checkpoint for table5/figure7: finished campaigns
//	                  are saved as they complete and restored on the next run
//	-progress         stream progress to stderr (also honoured by table4)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dejavuzz/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	samples := fs.Int("samples", 10, "phase-1 attempts per Table 3 cell")
	seed := fs.Int64("seed", 1, "experiment RNG seed")
	budget := fs.Duration("budget", 3*time.Second, "CellIFT instrumentation budget (Table 4)")
	cycles := fs.Int("cycles", 8000, "simulation cycle budget")
	iters := fs.Int("iters", 300, "fuzzing iterations")
	trials := fs.Int("trials", 5, "figure 7 trials")
	positives := fs.Int("positives", 75, "SpecDoctor phase-3 positives to collect")
	csv := fs.Bool("csv", false, "emit raw CSV series")
	workers := fs.Int("workers", 1, "campaigns to run concurrently (shared pool width)")
	checkpoint := fs.String("checkpoint", "", "JSON checkpoint file for campaign resume")
	progress := fs.Bool("progress", false, "stream per-campaign progress to stderr")
	fs.Parse(os.Args[2:])

	// Ctrl-C stops campaign-backed experiments at their next merge barrier;
	// finished campaigns stay in the checkpoint, so re-running resumes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ropts := []experiments.Option{experiments.WithContext(ctx)}
	if *workers > 1 {
		ropts = append(ropts, experiments.WithWorkers(*workers))
	}
	if *checkpoint != "" {
		ropts = append(ropts, experiments.WithCheckpoint(*checkpoint))
	}
	if *progress {
		ropts = append(ropts, experiments.WithProgress(os.Stderr))
	}

	w := os.Stdout
	switch cmd {
	case "table2":
		experiments.Table2(w)
	case "table3":
		experiments.Table3(w, *samples, *seed, ropts...)
	case "table4":
		experiments.Table4(w, *budget, *cycles, ropts...)
	case "figure6":
		series := experiments.Figure6(w, *cycles)
		if *csv {
			experiments.Figure6CSV(w, series)
		}
	case "figure7":
		series, err := experiments.Figure7(w, *iters, *trials, *seed, ropts...)
		if *csv && series != nil {
			experiments.Figure7CSV(w, series)
		}
		if err != nil {
			fatal(err)
		}
	case "table5":
		if _, err := experiments.Table5(w, *iters, *seed, ropts...); err != nil {
			fatal(err)
		}
	case "liveness":
		experiments.Liveness(w, *positives, *seed)
	case "all":
		experiments.Table2(w)
		fmt.Fprintln(w)
		experiments.Table3(w, 5, *seed, ropts...)
		fmt.Fprintln(w)
		experiments.Table4(w, *budget, 4000, ropts...)
		fmt.Fprintln(w)
		experiments.Figure6(w, 4000)
		fmt.Fprintln(w)
		if _, err := experiments.Figure7(w, 60, 2, *seed, ropts...); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
		if _, err := experiments.Table5(w, 120, *seed, ropts...); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
		experiments.Liveness(w, 30, *seed)
	default:
		usage()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dvz-experiments {table2|table3|table4|figure6|figure7|table5|liveness|all} [flags]")
	os.Exit(2)
}
