// Command dvz-experiments regenerates the paper's evaluation tables and
// figures on the Go reproduction stack.
//
// Usage:
//
//	dvz-experiments table2
//	dvz-experiments table3  [-samples N] [-seed N]
//	dvz-experiments table4  [-budget DUR] [-cycles N]
//	dvz-experiments figure6 [-cycles N] [-csv]
//	dvz-experiments figure7 [-iters N] [-trials N] [-seed N] [-csv]
//	dvz-experiments table5  [-iters N] [-seed N]
//	dvz-experiments liveness [-positives N] [-seed N]
//	dvz-experiments all      (reduced-scale run of everything)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dejavuzz/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	samples := fs.Int("samples", 10, "phase-1 attempts per Table 3 cell")
	seed := fs.Int64("seed", 1, "experiment RNG seed")
	budget := fs.Duration("budget", 3*time.Second, "CellIFT instrumentation budget (Table 4)")
	cycles := fs.Int("cycles", 8000, "simulation cycle budget")
	iters := fs.Int("iters", 300, "fuzzing iterations")
	trials := fs.Int("trials", 5, "figure 7 trials")
	positives := fs.Int("positives", 75, "SpecDoctor phase-3 positives to collect")
	csv := fs.Bool("csv", false, "emit raw CSV series")
	fs.Parse(os.Args[2:])

	w := os.Stdout
	switch cmd {
	case "table2":
		experiments.Table2(w)
	case "table3":
		experiments.Table3(w, *samples, *seed)
	case "table4":
		experiments.Table4(w, *budget, *cycles)
	case "figure6":
		series := experiments.Figure6(w, *cycles)
		if *csv {
			experiments.Figure6CSV(w, series)
		}
	case "figure7":
		series := experiments.Figure7(w, *iters, *trials, *seed)
		if *csv {
			experiments.Figure7CSV(w, series)
		}
	case "table5":
		experiments.Table5(w, *iters, *seed)
	case "liveness":
		experiments.Liveness(w, *positives, *seed)
	case "all":
		experiments.Table2(w)
		fmt.Fprintln(w)
		experiments.Table3(w, 5, *seed)
		fmt.Fprintln(w)
		experiments.Table4(w, *budget, 4000)
		fmt.Fprintln(w)
		experiments.Figure6(w, 4000)
		fmt.Fprintln(w)
		experiments.Figure7(w, 60, 2, *seed)
		fmt.Fprintln(w)
		experiments.Table5(w, 120, *seed)
		fmt.Fprintln(w)
		experiments.Liveness(w, 30, *seed)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dvz-experiments {table2|table3|table4|figure6|figure7|table5|liveness|all} [flags]")
	os.Exit(2)
}
