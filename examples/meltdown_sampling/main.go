// MeltDown-Sampling (B1, CVE-2024-44594): on XiangShan, inconsistent wire
// widths truncate the high bits of an illegal load address on the
// pipeline-to-load-unit path, so the transient data access samples the
// truncated (valid) address while the fault check sees the full one. This
// example runs the same masked-address stimulus on both cores and shows that
// only XiangShan samples the secret.
//
//	go run ./examples/meltdown_sampling
package main

import (
	"fmt"

	"dejavuzz/internal/isa"
	"dejavuzz/internal/swapmem"
	"dejavuzz/internal/uarch"
)

func main() {
	secret := []byte{0x05, 0, 0, 0, 0, 0, 0, 0} // secret byte = 5
	illegal := uint64(1)<<63 | uint64(swapmem.SecretAddr)

	src := fmt.Sprintf(`
		li t0, %#x        # illegal address: high bit set, truncates to the secret
		li t1, %#x        # leak array
		ld s0, 0(t0)      # faults; the data path may sample the truncated address
		andi s1, s0, 0x3f
		slli s1, s1, 6
		add t2, t1, s1
		ld t3, 0(t2)      # secret-indexed fill
		ecall
	`, illegal, uint64(swapmem.DataBase+0x1000))
	pkt := &swapmem.Packet{
		Name: "b1", Kind: swapmem.PacketTransient,
		Image: isa.MustAsm(swapmem.SwapBase, src), Entry: swapmem.SwapBase,
	}
	sched := &swapmem.Schedule{}
	sched.Append(pkt)

	for _, cfg := range []uarch.Config{uarch.XiangShanConfig(), uarch.BOOMConfig()} {
		space := swapmem.NewSpace(secret)
		c := uarch.NewCore(cfg, space, uarch.IFTCellIFT)
		rt := swapmem.NewRuntime(c, space, sched.Clone())
		rt.Start()
		c.Run(8000)

		leakLine := uint64(swapmem.DataBase+0x1000) + uint64(secret[0])*64
		sampled := c.DCache.Probe(leakLine)
		fmt.Printf("%-18s truncation-fired=%-5v secret-indexed line cached=%v\n",
			cfg.Name, c.BugWitness["meltdown-sampling"] > 0, sampled)
		if sampled {
			fmt.Printf("%-18s => B1 reproduced: attacker samples %#x through the illegal address %#x\n",
				"", uint64(swapmem.SecretAddr), illegal)
		}
	}
}
