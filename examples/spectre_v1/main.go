// Spectre-V1 on the differential testbench: builds the classic
// bounds-check-bypass stimulus as swapMem packets, runs it on two DUT
// instances with complementary secrets under diffIFT, and prints the RoB IO
// trace, the taint trajectory and the leakage verdict.
//
//	go run ./examples/spectre_v1
package main

import (
	"fmt"

	"dejavuzz/internal/core"
	"dejavuzz/internal/experiments"
	"dejavuzz/internal/uarch"
)

func main() {
	poc := experiments.SpectreV1()
	fmt.Printf("Running %s on %s under diffIFT\n", poc.Name, "SmallBOOM")

	run := core.RunDiff(poc.Schedule.Clone(), core.RunOpts{
		Cfg:        uarch.BOOMConfig(),
		TaintTrace: true,
		MaxCycles:  8000,
	})
	a := run.Pair.A

	// Transient window analysis from the RoB IO events.
	ws := a.Trace.WindowSince(poc.WindowLo, poc.WindowHi, run.RTA.TransientStart())
	fmt.Printf("\ntransient window [%#x, %#x): enqueued=%d committed=%d squashed=%d\n",
		poc.WindowLo, poc.WindowHi, ws.Enqueued, ws.Committed, ws.Squashed)
	fmt.Printf("window triggered: %v (cycles %d..%d)\n", ws.Triggered(), ws.FirstCycle, ws.LastCycle)

	for _, s := range a.Trace.Squashes {
		fmt.Printf("squash @%d: %v at %#x -> redirect %#x\n", s.Cycle, s.Reason, s.AtPC, s.Redirect)
	}

	// Taint trajectory (the Figure 6 series).
	peak, final := 0, 0
	for _, v := range a.Trace.TaintSumByCycle {
		if v > peak {
			peak = v
		}
		final = v
	}
	fmt.Printf("\ntaint sum: peak=%d final=%d over %d cycles\n", peak, final, a.Cycle)

	fmt.Println("\nper-module taint census (end of run):")
	for _, m := range a.Census() {
		if m.Tainted > 0 {
			fmt.Printf("  %-10s tainted=%d bits=%d\n", m.Module, m.Tainted, m.Bits)
		}
	}

	fmt.Println("\ntainted sinks with liveness verdicts:")
	for _, s := range a.Sinks() {
		fmt.Printf("  %-10s %-14s live=%v\n", s.Module, s.Detail, s.Live)
	}

	if run.Pair.A.Cycle != run.Pair.B.Cycle {
		fmt.Printf("\nconstant-time violation: instance cycles %d vs %d\n",
			run.Pair.A.Cycle, run.Pair.B.Cycle)
	}
	if len(a.DCache.TaintedLinePositions()) > 0 {
		fmt.Println("\nverdict: secret encoded into live dcache lines — exploitable leak")
	}
}
