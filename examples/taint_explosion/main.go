// Taint explosion at the circuit level: reproduces the paper's Figure 2 RoB
// example on the word-level RTL IR. A tainted tail pointer makes CellIFT's
// Policy 2 taint every RoB opcode field on update, while diffIFT's Table 1
// rule propagates control taint only when the two instances actually select
// differently.
//
//	go run ./examples/taint_explosion
package main

import (
	"fmt"

	"dejavuzz/internal/experiments"
	"dejavuzz/internal/ift"
)

func main() {
	design, sigs := experiments.BuildRoBExample()

	// CellIFT: one instance, control taints unconditional.
	cell := ift.MustInstrument(design, ift.ModeCellIFT)
	// diffIFT: two coupled instances whose tail pointers agree.
	pair, err := ift.NewPair(design)
	if err != nil {
		panic(err)
	}

	drive := func(s *ift.Shadow, tailTaint uint64) {
		s.Poke(sigs["enq_valid"], 1, 0)
		s.Poke(sigs["enq_uopc"], 0x15, 0)
		s.Poke(sigs["rob_tail_idx"], 3, tailTaint) // rollback tainted the tail
	}

	fmt.Println("cycle  CellIFT-taint-bits  diffIFT-taint-bits")
	for cyc := 0; cyc < 10; cyc++ {
		drive(cell, 0x7)
		drive(pair.A, 0x7)
		drive(pair.B, 0x7) // same tail value in both instances
		cell.Step()
		pair.Step()
		fmt.Printf("%5d  %18d  %18d\n", cyc, cell.TaintSum(), pair.A.TaintSum())
	}

	fmt.Println("\nCellIFT taints every rob_*_uopc register (Policy 2's A^B term fires")
	fmt.Println("whenever the selection is tainted); diffIFT stays clean because the")
	fmt.Println("tainted tail pointer holds the same value in both instances.")

	fmt.Println("\nnow force a real secret-dependent divergence (tail differs):")
	pair2, _ := ift.NewPair(design)
	drive(pair2.A, 0x7)
	pair2.B.Poke(sigs["enq_valid"], 1, 0)
	pair2.B.Poke(sigs["enq_uopc"], 0x15, 0)
	pair2.B.Poke(sigs["rob_tail_idx"], 5, 0x7) // different entry selected
	pair2.Step()
	fmt.Printf("diffIFT taint bits after divergent update: %d (control taint correctly fires)\n",
		pair2.A.TaintSum())
}
