// Phantom-RSB (B2, CVE-2024-44591): transiently executed calls update return
// stack entries; BOOM's misprediction recovery restores only the TOS pointer
// and the top entry, leaving corrupted entries below TOS. This example
// triggers a transient window whose payload performs secret-dependent calls
// and shows the surviving RAS corruption on BOOM versus the full restore on
// XiangShan.
//
//	go run ./examples/phantom_rsb
package main

import (
	"fmt"

	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

func main() {
	for _, kind := range []uarch.CoreKind{uarch.KindBOOM, uarch.KindXiangShan} {
		fmt.Printf("[%v]\n", kind)
		g := gen.New(77)
		found := false
		for attempt := 0; attempt < 20 && !found; attempt++ {
			seed := g.SeedFor(kind, gen.TrigBranchMispred, gen.VariantDerived)
			seed.SecretFaults = false
			st, err := g.BuildStimulus(seed)
			if err != nil {
				continue
			}
			cst, err := g.CompleteWindow(st)
			if err != nil {
				continue
			}
			run := core.RunDiff(cst.BuildSchedule(nil), core.RunOpts{
				Cfg: uarch.ConfigFor(kind), TaintTrace: true, MaxCycles: 20000,
			})
			if n := run.Pair.A.BugWitness["phantom-rsb"]; n > 0 {
				found = true
				fmt.Printf("  attempt %d: transient calls corrupted %d RAS entr%s below TOS\n",
					attempt, n, map[bool]string{true: "y", false: "ies"}[n == 1])
				fmt.Println("  recovery restored only the TOS pointer and top entry => Phantom-RSB")
			}
		}
		if !found {
			fmt.Println("  no surviving RAS corruption (full snapshot restore)")
		}
	}
	fmt.Println("\nBOOM retains transient RAS corruption (B2); XiangShan's full restore does not.")
}
