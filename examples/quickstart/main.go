// Quickstart: fuzz the BOOM-like core for transient-execution leaks using
// the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dejavuzz"
)

func main() {
	fmt.Println("DejaVuzz quickstart: fuzzing the SmallBOOM-like core")

	f := dejavuzz.New(dejavuzz.Config{
		Core:       dejavuzz.BOOM,
		Seed:       2024,
		Iterations: 60,
	})
	report := f.Run()

	fmt.Printf("\n%d iterations, %d RTL simulations, %v wall time\n",
		len(report.Iters), report.Sims, report.Duration.Round(1e6))
	fmt.Printf("taint coverage points collected: %d\n", report.Coverage)
	fmt.Printf("liveness analysis suppressed %d unexploitable taint reports\n\n", report.DeadSinks)

	if len(report.Findings) == 0 {
		fmt.Println("no leaks found (try more iterations)")
		return
	}
	fmt.Printf("potential transient execution vulnerabilities (%d):\n", len(report.Findings))
	for i, leak := range report.Findings {
		fmt.Printf("  %2d. %-8s %-13s window=%v\n      encoded into: %v\n",
			i+1, leak.AttackType, leak.Kind, leak.Window, leak.Components)
		if len(leak.BugLabels) > 0 {
			fmt.Printf("      mechanism witnesses: %v\n", leak.BugLabels)
		}
	}
}
