// Quickstart: fuzz the BOOM-like core for transient-execution leaks using
// the public streaming API — a session with live Finding/Epoch events.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"dejavuzz"
)

func main() {
	fmt.Println("DejaVuzz quickstart: fuzzing the SmallBOOM-like core")

	c, err := dejavuzz.New("boom",
		dejavuzz.WithSeed(2024),
		dejavuzz.WithIterations(60),
		dejavuzz.WithMergeEvery(16), // stream an epoch event every 16 iterations
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	session, err := c.Start(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The event stream is deterministic: findings and epoch summaries are
	// emitted at the engine's merge barriers, so the same options always
	// produce the same sequence.
	for ev := range session.Events() {
		switch ev.Kind {
		case dejavuzz.EventEpoch:
			fmt.Printf("  %d/%d iterations, %d coverage points\n", ev.Done, ev.Total, ev.Coverage)
		case dejavuzz.EventFinding:
			fmt.Printf("  ! finding at iteration %d: %v\n", ev.Finding.Iteration, ev.Finding)
		}
	}
	report, err := session.Wait()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("\n%d iterations, %d RTL simulations, %v wall time\n",
		len(report.Iters), report.Sims, report.Duration.Round(1e6))
	fmt.Printf("taint coverage points collected: %d\n", report.Coverage)
	fmt.Printf("liveness analysis suppressed %d unexploitable taint reports\n\n", report.DeadSinks)

	if len(report.Findings) == 0 {
		fmt.Println("no leaks found (try more iterations)")
		return
	}
	fmt.Printf("potential transient execution vulnerabilities (%d):\n", len(report.Findings))
	for i, leak := range report.Findings {
		fmt.Printf("  %2d. %-8s %-13s window=%v\n      encoded into: %v\n",
			i+1, leak.AttackType, leak.Kind, leak.Window, leak.Components)
		if len(leak.BugLabels) > 0 {
			fmt.Printf("      mechanism witnesses: %v\n", leak.BugLabels)
		}
	}
}
