package dejavuzz

import "testing"

func TestFacadeDefaults(t *testing.T) {
	f := New(Config{Core: BOOM, Iterations: 10, Seed: 5})
	rep := f.Run()
	if len(rep.Iters) != 10 {
		t.Fatalf("iterations = %d, want 10", len(rep.Iters))
	}
	if f.Coverage() != rep.Coverage {
		t.Errorf("facade coverage %d != report coverage %d", f.Coverage(), rep.Coverage)
	}
}

func TestFacadeVariantsAndAblations(t *testing.T) {
	for _, cfg := range []Config{
		{Core: XiangShan, Iterations: 4, Seed: 2},
		{Core: BOOM, Iterations: 4, Seed: 3, Variant: RandomTraining},
		{Core: BOOM, Iterations: 4, Seed: 4, DisableCoverageFeedback: true},
		{Core: BOOM, Iterations: 4, Seed: 5, DisableLiveness: true, DisableReduction: true},
		{Core: BOOM, Iterations: 4, Seed: 6, Bugless: true},
	} {
		rep := New(cfg).Run()
		if len(rep.Iters) != cfg.Iterations {
			t.Errorf("%+v: ran %d iterations", cfg, len(rep.Iters))
		}
	}
}

func TestFacadeWorkers(t *testing.T) {
	f := New(Config{Core: BOOM, Iterations: 12, Seed: 9, Workers: 4})
	rep := f.Run()
	if len(rep.Iters) != 12 {
		t.Fatalf("iterations = %d, want 12", len(rep.Iters))
	}
}
