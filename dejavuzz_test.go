package dejavuzz

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dejavuzz/internal/campaign"
	"dejavuzz/internal/core"
)

// midCampaignCheckpoint deterministically produces the checkpoint a session
// of c yields when cancelled at the barrier after stopDone iterations: the
// engine's cancellation lands at the merge barrier, so cancelling from
// within the barrier hook pins the stop point exactly.
func midCampaignCheckpoint(t *testing.T, c *Campaign, stopDone int) *Checkpoint {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := c.opts
	opts.OnBarrier = func(b *core.Barrier) {
		if b.Done == stopDone {
			cancel()
		}
	}
	rep, state := core.NewFuzzer(opts).RunContext(ctx)
	if rep != nil || state == nil {
		t.Fatalf("campaign did not stop at iteration %d", stopDone)
	}
	if state.NextIter != stopDone {
		t.Fatalf("stopped at %d, want %d", state.NextIter, stopDone)
	}
	return &Checkpoint{state: state}
}

// reportFingerprint canonicalises a report for byte-identity comparison:
// the wall-clock fields (Duration, FirstBug) are zeroed and everything else
// is serialised.
func reportFingerprint(t *testing.T, rep *Report) []byte {
	t.Helper()
	r := *rep
	r.Duration = 0
	r.FirstBug = 0
	b, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewRejectsUnknownScenario(t *testing.T) {
	if _, err := New("boom", WithScenarios("warp-drive")); err == nil {
		t.Fatal("New accepted an unregistered scenario family")
	}
	if _, err := New("boom", WithScenarios("cache-occupancy")); err != nil {
		t.Fatalf("New rejected a registered family: %v", err)
	}
}

func TestNewUnknownTarget(t *testing.T) {
	if _, err := New("not-a-target"); err == nil {
		t.Fatal("expected error for unknown target")
	}
}

func TestTargetsRegistry(t *testing.T) {
	names := Targets()
	if len(names) < 3 {
		t.Fatalf("Targets() = %v, want at least boom, xiangshan, isasim", names)
	}
	for _, want := range []string{"boom", "xiangshan", "isasim"} {
		tgt, err := LookupTarget(want)
		if err != nil {
			t.Fatalf("built-in target %q not registered: %v", want, err)
		}
		if tgt.Description() == "" {
			t.Errorf("target %q has no description", want)
		}
	}
}

func TestCampaignRun(t *testing.T) {
	c, err := New("boom", WithSeed(5), WithIterations(10))
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run()
	if len(rep.Iters) != 10 {
		t.Fatalf("iterations = %d, want 10", len(rep.Iters))
	}
	if c.Coverage() != rep.Coverage {
		t.Errorf("campaign coverage %d != report coverage %d", c.Coverage(), rep.Coverage)
	}
}

func TestOptionsExplicitZeros(t *testing.T) {
	// The functional-options API has no zero-value ambiguity: seed 0 and an
	// empty dry run are directly expressible.
	c, err := New("boom", WithSeed(0), WithIterations(0))
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run()
	if len(rep.Iters) != 0 {
		t.Fatalf("dry run executed %d iterations", len(rep.Iters))
	}
	if rep.Options.Seed != 0 {
		t.Fatalf("seed = %d, want explicit 0", rep.Options.Seed)
	}
}

func TestSessionStreamsAndMatchesBlockingRun(t *testing.T) {
	mk := func() *Campaign {
		c, err := New("boom", WithSeed(9), WithIterations(32), WithMergeEvery(8), WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	blocking := mk().Run()

	session, err := mk().Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	epochs, findings := 0, 0
	var last Event
	for ev := range session.Events() {
		switch ev.Kind {
		case EventEpoch:
			epochs++
		case EventFinding:
			findings++
			if ev.Finding == nil {
				t.Fatal("finding event without finding")
			}
		}
		last = ev
	}
	if epochs != 4 {
		t.Errorf("saw %d epoch events, want 4", epochs)
	}
	if last.Kind != EventDone || last.Report == nil {
		t.Fatalf("final event = %+v, want completed EventDone", last)
	}
	rep, err := session.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if findings != len(rep.Findings) {
		t.Errorf("streamed %d findings, report has %d", findings, len(rep.Findings))
	}
	if !bytes.Equal(reportFingerprint(t, blocking), reportFingerprint(t, rep)) {
		t.Error("streaming session report differs from blocking Run")
	}
}

// TestSessionCancelResumeDeterministic is the session-level cancellation
// determinism test: a campaign cancelled at a barrier and resumed from its
// checkpoint must produce a byte-identical report (modulo wall-clock
// fields) to an uninterrupted blocking Run with the same options.
func TestSessionCancelResumeDeterministic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.ckpt")
	mk := func() *Campaign {
		c, err := New("boom", WithSeed(42), WithIterations(48), WithMergeEvery(8), WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	uninterrupted := mk().Run()

	// Cancel deterministically at the barrier after 16 of 48 iterations and
	// round-trip the checkpoint through its JSON file.
	ck := midCampaignCheckpoint(t, mk(), 16)
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if done, total := loaded.Progress(); done != 16 || total != 48 {
		t.Fatalf("checkpoint progress %d/%d, want 16/48", done, total)
	}
	if loaded.Target() != "boom" {
		t.Fatalf("checkpoint target %q", loaded.Target())
	}

	resumed, err := mk().Resume(context.Background(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	epochs := 0
	for ev := range resumed.Events() {
		if ev.Kind == EventEpoch {
			epochs++
		}
	}
	if epochs != 4 { // (48-16)/8 remaining barriers
		t.Errorf("resumed session emitted %d epoch events, want 4", epochs)
	}
	rep, err := resumed.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportFingerprint(t, uninterrupted), reportFingerprint(t, rep)) {
		t.Error("cancel+resume report differs from uninterrupted run")
	}
}

// TestSessionPauseFlow exercises the cooperative Pause path. Pause lands at
// the next merge barrier; if the campaign finishes first there is no
// checkpoint and the report stands — both outcomes are legitimate, and the
// test verifies whichever occurred is internally consistent.
func TestSessionPauseFlow(t *testing.T) {
	c, err := New("boom", WithSeed(42), WithIterations(96), WithMergeEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	session, err := c.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for ev := range session.Events() {
		if ev.Kind == EventEpoch {
			break
		}
	}
	ck, err := session.Pause()
	if err != nil {
		t.Fatal(err)
	}
	rep, werr := session.Wait()
	if ck == nil {
		// Completed before the barrier: Wait must deliver the full report.
		if werr != nil || rep == nil || len(rep.Iters) != 96 {
			t.Fatalf("completed session inconsistent: rep=%v err=%v", rep, werr)
		}
		return
	}
	if !errors.Is(werr, ErrInterrupted) || rep != nil {
		t.Fatalf("interrupted session inconsistent: rep=%v err=%v", rep, werr)
	}
	done, total := ck.Progress()
	if done <= 0 || done >= total || done%8 != 0 {
		t.Fatalf("checkpoint progress %d/%d not at a mid-campaign barrier", done, total)
	}
	if session.Checkpoint() != ck {
		t.Error("session.Checkpoint() disagrees with Pause result")
	}
	// The paused session resumes to completion.
	resumed, err := c.Resume(context.Background(), ck)
	if err != nil {
		t.Fatal(err)
	}
	full, err := resumed.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Iters) != 96 {
		t.Fatalf("resumed campaign ran %d iterations, want 96", len(full.Iters))
	}
}

// TestSessionCheckpointAutosave pins WithCheckpointFile: every barrier
// rewrites the checkpoint file and emits a CheckpointSaved event, and the
// final file resumes into a campaign whose report matches an uninterrupted
// run.
func TestSessionCheckpointAutosave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "auto.ckpt")
	c, err := New("isasim", WithSeed(2), WithIterations(24), WithMergeEvery(8),
		WithCheckpointFile(path))
	if err != nil {
		t.Fatal(err)
	}
	session, err := c.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	saves := 0
	for ev := range session.Events() {
		if ev.Kind == EventCheckpointSaved {
			if ev.Err != nil {
				t.Fatalf("autosave failed: %v", ev.Err)
			}
			if ev.Path != path {
				t.Fatalf("autosave path %q, want %q", ev.Path, path)
			}
			saves++
		}
	}
	if saves != 3 { // one per barrier
		t.Errorf("saw %d CheckpointSaved events, want 3", saves)
	}
	rep, err := session.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// The last autosave is the final barrier; resuming it replays nothing
	// and must reproduce the completed report exactly.
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := c.Resume(context.Background(), ck)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := resumed.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportFingerprint(t, rep), reportFingerprint(t, rep2)) {
		t.Error("final-barrier checkpoint resume differs from completed report")
	}
}

// TestCheckpointFormatDiscrimination pins that the two '-checkpoint' file
// formats (single-session engine state vs campaign-matrix results) reject
// each other instead of silently misloading — both carry version 1.
func TestCheckpointFormatDiscrimination(t *testing.T) {
	dir := t.TempDir()

	sessionPath := filepath.Join(dir, "session.json")
	ck := midCampaignCheckpoint(t, func() *Campaign {
		c, err := New("boom", WithSeed(1), WithIterations(16), WithMergeEvery(8))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}(), 8)
	if err := ck.Save(sessionPath); err != nil {
		t.Fatal(err)
	}
	m := campaign.Matrix{Base: core.DefaultOptions(BOOM)}
	m.Base.Iterations = 4
	if _, err := (&campaign.Runner{Checkpoint: sessionPath}).RunMatrix(m); err == nil {
		t.Error("matrix runner accepted (and would overwrite) a session checkpoint")
	}

	matrixPath := filepath.Join(dir, "matrix.json")
	if err := os.WriteFile(matrixPath, []byte(`{"version":1,"results":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(matrixPath); err == nil {
		t.Error("LoadCheckpoint accepted a campaign-matrix checkpoint")
	}
}

func TestNewRejectsUnwritableCheckpointPath(t *testing.T) {
	_, err := New("boom", WithCheckpointFile(filepath.Join(t.TempDir(), "missing-dir", "ck.json")))
	if err == nil {
		t.Fatal("New accepted a checkpoint path in a nonexistent directory")
	}
}

func TestResumeRejectsMismatchedOptions(t *testing.T) {
	mk := func(seed int64) *Campaign {
		c, err := New("boom", WithSeed(seed), WithIterations(16), WithMergeEvery(4))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ck := midCampaignCheckpoint(t, mk(3), 4)
	if _, err := mk(4).Resume(context.Background(), ck); err == nil {
		t.Fatal("resume accepted a checkpoint from different options")
	}
	if _, err := mk(3).Resume(context.Background(), nil); err == nil {
		t.Fatal("resume accepted a nil checkpoint")
	}

	// A different -scenarios set is an option mismatch too, and the error
	// must say so by name — never silently diverge into another campaign.
	mkScn := func(fams ...string) *Campaign {
		c, err := New("boom", WithSeed(3), WithIterations(16), WithMergeEvery(4),
			WithScenarios(fams...))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ck = midCampaignCheckpoint(t, mkScn("branch-mispredict", "page-fault"), 4)
	_, err := mkScn("branch-mispredict", "nested-fault-in-branch").Resume(context.Background(), ck)
	if err == nil {
		t.Fatal("resume accepted a checkpoint from a different -scenarios set")
	}
	if !strings.Contains(err.Error(), "scenarios") {
		t.Fatalf("scenario mismatch error does not name the option: %v", err)
	}
	// Order does not matter: the set is normalized before comparison.
	if _, err := mkScn("page-fault", "branch-mispredict").Resume(context.Background(), ck); err != nil {
		t.Fatalf("reordered scenario set failed to resume: %v", err)
	}
}

func TestSessionOnISATarget(t *testing.T) {
	c, err := New("isasim", WithSeed(7), WithIterations(24), WithMergeEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	session, err := c.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for range session.Events() {
	}
	rep, err := session.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage == 0 {
		t.Error("isasim target session collected no coverage")
	}
	if rep.Options.Target != "isasim" {
		t.Errorf("report target %q", rep.Options.Target)
	}
}

// --- deprecated Config shim ------------------------------------------------

func TestConfigShimDefaults(t *testing.T) {
	f := NewFromConfig(Config{Core: BOOM, Iterations: 10, Seed: 5})
	rep := f.Run()
	if len(rep.Iters) != 10 {
		t.Fatalf("iterations = %d, want 10", len(rep.Iters))
	}
	if f.Coverage() != rep.Coverage {
		t.Errorf("facade coverage %d != report coverage %d", f.Coverage(), rep.Coverage)
	}
	// Unset fields keep the historical defaults.
	if rep.Options.Seed != 5 || rep.Options.Shards != 8 {
		t.Errorf("shim defaults drifted: %+v", rep.Options)
	}
	if got := NewFromConfig(Config{Core: BOOM, Iterations: 1}).Run().Options.Seed; got != 1 {
		t.Errorf("unset seed = %d, want historical default 1", got)
	}
}

// TestConfigShimExplicitZeros pins the zero-value fix: SeedSet and
// IterationsSet distinguish "unset" from explicit zero, which the original
// shim could not express.
func TestConfigShimExplicitZeros(t *testing.T) {
	rep := NewFromConfig(Config{Core: BOOM, SeedSet: true, Iterations: 4}).Run()
	if rep.Options.Seed != 0 {
		t.Errorf("SeedSet: campaign ran with seed %d, want 0", rep.Options.Seed)
	}
	dry := NewFromConfig(Config{Core: BOOM, IterationsSet: true, Seed: 3}).Run()
	if len(dry.Iters) != 0 {
		t.Errorf("IterationsSet dry run executed %d iterations", len(dry.Iters))
	}
	if dry.Coverage != 0 || len(dry.Findings) != 0 {
		t.Errorf("dry run produced results: coverage=%d findings=%d", dry.Coverage, len(dry.Findings))
	}
}

func TestConfigShimVariantsAndAblations(t *testing.T) {
	for _, cfg := range []Config{
		{Core: XiangShan, Iterations: 4, Seed: 2},
		{Core: BOOM, Iterations: 4, Seed: 3, Variant: RandomTraining},
		{Core: BOOM, Iterations: 4, Seed: 4, DisableCoverageFeedback: true},
		{Core: BOOM, Iterations: 4, Seed: 5, DisableLiveness: true, DisableReduction: true},
		{Core: BOOM, Iterations: 4, Seed: 6, Bugless: true},
	} {
		rep := NewFromConfig(cfg).Run()
		if len(rep.Iters) != cfg.Iterations {
			t.Errorf("%+v: ran %d iterations", cfg, len(rep.Iters))
		}
	}
}

func TestConfigShimWorkers(t *testing.T) {
	f := NewFromConfig(Config{Core: BOOM, Iterations: 12, Seed: 9, Workers: 4})
	rep := f.Run()
	if len(rep.Iters) != 12 {
		t.Fatalf("iterations = %d, want 12", len(rep.Iters))
	}
}

// TestShimMatchesOptionsAPI pins the shim's translation: the same campaign
// expressed both ways produces identical reports.
func TestShimMatchesOptionsAPI(t *testing.T) {
	shim := NewFromConfig(Config{Core: XiangShan, Seed: 11, Iterations: 16, Shards: 4}).Run()
	c, err := New("xiangshan", WithSeed(11), WithIterations(16), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	modern := c.Run()
	if !bytes.Equal(reportFingerprint(t, shim), reportFingerprint(t, modern)) {
		t.Error("Config shim and functional options produce different reports")
	}
}

// TestSessionSubscribeFanOut proves the multi-subscriber event fan-out:
// two subscribers and the primary Events channel each observe the
// session's full deterministic stream, cancel detaches a subscriber, and
// subscribing after the session ends yields a closed channel.
func TestSessionSubscribeFanOut(t *testing.T) {
	c, err := New("isasim", WithSeed(3), WithIterations(32), WithMergeEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Generous buffers: subscribers are lossy only past their buffer.
	sub1, cancel1 := s.Subscribe(1024)
	sub2, cancel2 := s.Subscribe(1024)
	defer cancel1()
	cancel2() // detached before any event: must observe nothing

	var primary, fanned []EventKind
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range sub1 {
			fanned = append(fanned, ev.Kind)
		}
	}()
	for ev := range s.Events() {
		primary = append(primary, ev.Kind)
	}
	<-done

	if len(primary) == 0 || primary[len(primary)-1] != EventDone {
		t.Fatalf("primary stream malformed: %v", primary)
	}
	if len(fanned) != len(primary) {
		t.Fatalf("subscriber saw %d events, primary %d", len(fanned), len(primary))
	}
	for i := range primary {
		if fanned[i] != primary[i] {
			t.Fatalf("event %d: subscriber %v vs primary %v", i, fanned[i], primary[i])
		}
	}
	for range sub2 {
		t.Fatal("cancelled subscriber received an event")
	}

	// Late subscription: closed channel, no hang.
	late, cancelLate := s.Subscribe(0)
	defer cancelLate()
	if _, ok := <-late; ok {
		t.Fatal("post-session subscription delivered an event")
	}
}
