module dejavuzz

go 1.24

// Vendored from the copy the Go 1.24 toolchain ships in
// $GOROOT/src/cmd/vendor (the suite must build offline); only the
// go/analysis core, the inspect pass and ast/inspector are carried.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
