module dejavuzz

go 1.24
