package campaign

import (
	"encoding/json"
	"fmt"
	"os"

	"dejavuzz/internal/atomicfile"
	"dejavuzz/internal/core"
)

// checkpointVersion guards against format drift between PRs. Version 3
// marks the bandit-scheduler engine: the default scheduling policy changed
// from EMA-with-floor to UCB, so results cached by an EMA-era run no longer
// correspond to the campaigns today's identical-looking specs would
// produce, and must not be served from cache. (Version 2 was the
// EMA-scheduler era.)
const checkpointVersion = 3

// checkpoint is the on-disk resume state: finished campaign reports keyed by
// spec name. Reports round-trip losslessly through JSON (seeds included), so
// a resumed matrix serves the exact bytes of the original run.
type checkpoint struct {
	Version int                     `json:"version"`
	Results map[string]*core.Report `json:"results"`
}

func emptyCheckpoint() *checkpoint {
	return &checkpoint{Version: checkpointVersion, Results: map[string]*core.Report{}}
}

// loadCheckpoint reads the checkpoint file; a missing file or empty path is
// an empty checkpoint, a malformed or version-mismatched file is an error
// (silently discarding finished campaigns would be worse than stopping).
func loadCheckpoint(path string) (*checkpoint, error) {
	if path == "" {
		return emptyCheckpoint(), nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return emptyCheckpoint(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	var c checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("campaign: parse checkpoint %s: %w", path, err)
	}
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s has version %d, want %d", path, c.Version, checkpointVersion)
	}
	// A missing results map means the file is some other JSON artifact —
	// most likely a single-session engine checkpoint, which shares the
	// version field. Refusing here keeps matrix mode from silently
	// overwriting a resumable session state (and vice versa).
	if c.Results == nil {
		return nil, fmt.Errorf("campaign: %s is not a campaign-matrix checkpoint (no results map)", path)
	}
	return &c, nil
}

// saveCheckpoint atomically rewrites the checkpoint (write temp + rename),
// so an interrupted run never truncates previously saved campaigns.
func saveCheckpoint(path string, c *checkpoint) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(c, "", " ")
	if err != nil {
		return fmt.Errorf("campaign: encode checkpoint: %w", err)
	}
	if err := atomicfile.Write(path, data); err != nil {
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	return nil
}
