// Package campaign runs grids of DejaVuzz fuzzing campaigns — the cores ×
// training-variants × ablations matrices behind the paper's Tables 3–5 and
// Figure 7 — over one shared worker pool, with JSON checkpoint/resume and
// streaming per-campaign progress. It builds on internal/core's
// deterministic sharded engine, so every cell's report is reproducible from
// its options alone regardless of pool width.
package campaign

import (
	"fmt"

	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

// Spec is one campaign cell: a name (the checkpoint key) and the full
// deterministic options that produce its report.
type Spec struct {
	Name string
	Opts core.Options
}

// Ablation names an options mutation (e.g. "no-feedback" for DejaVuzz−).
// The zero Apply is the identity, for the baseline row.
type Ablation struct {
	Name  string
	Apply func(*core.Options)
}

// Baseline is the identity ablation.
func Baseline() Ablation { return Ablation{Name: "base"} }

// NamedAblations maps the CLI ablation vocabulary onto option mutations.
var NamedAblations = map[string]func(*core.Options){
	"base":         nil,
	"no-feedback":  func(o *core.Options) { o.UseCoverageFeedback = false },
	"no-liveness":  func(o *core.Options) { o.UseLiveness = false },
	"no-reduction": func(o *core.Options) { o.UseReduction = false },
	"bugless":      func(o *core.Options) { o.Bugless = true },
}

// AblationByName resolves a named ablation.
func AblationByName(name string) (Ablation, error) {
	fn, ok := NamedAblations[name]
	if !ok {
		return Ablation{}, fmt.Errorf("campaign: unknown ablation %q", name)
	}
	return Ablation{Name: name, Apply: fn}, nil
}

// Matrix describes a campaign grid: cores × variants × ablations × seeds.
// Empty dimensions collapse to the Base options' value (one cell on that
// axis).
type Matrix struct {
	// Prefix namespaces spec names (and so checkpoint keys), letting several
	// matrices share one checkpoint file without key collisions.
	Prefix string
	// Base supplies the shared options; a zero Iterations falls back to the
	// core's DefaultOptions iteration count (all other Base fields are
	// always honoured).
	Base      core.Options
	Cores     []uarch.CoreKind
	Variants  []gen.Variant
	Ablations []Ablation
	// Seeds runs each cell at several campaign seeds (the paper's trials).
	Seeds []int64
}

// Expand enumerates the grid into deterministic, stably-named specs. The
// order is fixed (cores outermost, seeds innermost) so checkpoint files and
// result slices line up run-to-run.
func (m Matrix) Expand() []Spec {
	cores := m.Cores
	if len(cores) == 0 {
		cores = []uarch.CoreKind{m.Base.Core}
	}
	variants := m.Variants
	if len(variants) == 0 {
		variants = []gen.Variant{m.Base.Variant}
	}
	ablations := m.Ablations
	if len(ablations) == 0 {
		ablations = []Ablation{Baseline()}
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []int64{m.Base.Seed}
	}

	var out []Spec
	for _, kind := range cores {
		for _, v := range variants {
			for _, ab := range ablations {
				for _, seed := range seeds {
					opts := m.Base
					if opts.Iterations == 0 {
						opts.Iterations = core.DefaultOptions(kind).Iterations
					}
					opts.Core = kind
					if len(m.Cores) > 0 {
						// An explicit Cores axis selects the built-in uarch
						// targets; without one the Base target (which may be
						// a custom registration) carries through.
						opts.Target = core.BuiltinTargetName(kind)
					}
					opts.Variant = v
					opts.Seed = seed
					if ab.Apply != nil {
						ab.Apply(&opts)
					}
					// Cells on non-builtin targets are keyed by target name
					// so they never collide with uarch cells in a shared
					// checkpoint.
					label := fmt.Sprintf("%v", kind)
					if t := opts.Normalized().Target; t != core.BuiltinTargetName(kind) {
						label = t
					}
					name := fmt.Sprintf("%s/%v/%s", label, v, ab.Name)
					if m.Prefix != "" {
						name = m.Prefix + "/" + name
					}
					if len(seeds) > 1 {
						name = fmt.Sprintf("%s/s%d", name, seed)
					}
					out = append(out, Spec{Name: name, Opts: opts})
				}
			}
		}
	}
	return out
}
