package campaign

import (
	"fmt"
	"io"
	"sync"
)

// RunJobs executes jobs over a pool of at most workers goroutines and
// blocks until all complete. Zero or negative workers means sequential.
func RunJobs(workers int, jobs []func()) {
	if workers <= 0 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(job func()) {
			defer wg.Done()
			defer func() { <-sem }()
			job()
		}(job)
	}
	wg.Wait()
}

// ProgressLog serializes streaming progress lines from concurrent jobs onto
// one writer. A nil writer makes every Logf a no-op.
type ProgressLog struct {
	mu sync.Mutex
	w  io.Writer
}

// NewProgressLog wraps w (which may be nil).
func NewProgressLog(w io.Writer) *ProgressLog { return &ProgressLog{w: w} }

// Logf writes one progress line atomically.
func (p *ProgressLog) Logf(format string, args ...any) {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	fmt.Fprintf(p.w, format+"\n", args...)
	p.mu.Unlock()
}
