package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

func smallBase(iterations int) core.Options {
	opts := core.DefaultOptions(uarch.KindBOOM)
	opts.Iterations = iterations
	opts.MergeEvery = 8
	return opts
}

func TestMatrixExpand(t *testing.T) {
	m := Matrix{
		Base:     smallBase(8),
		Cores:    []uarch.CoreKind{uarch.KindBOOM, uarch.KindXiangShan},
		Variants: []gen.Variant{gen.VariantDerived, gen.VariantRandom},
		Ablations: []Ablation{
			Baseline(),
			{Name: "no-feedback", Apply: func(o *core.Options) { o.UseCoverageFeedback = false }},
		},
		Seeds: []int64{1, 2, 3},
	}
	specs := m.Expand()
	if len(specs) != 2*2*2*3 {
		t.Fatalf("expected 24 specs, got %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate spec name %q", s.Name)
		}
		names[s.Name] = true
	}
	if !names["XiangShan/DejaVuzz*/no-feedback/s2"] {
		t.Errorf("missing expected spec name; have %v", specs[0].Name)
	}
	// The ablation must apply to its cell only.
	for _, s := range specs {
		wantFeedback := !strings.Contains(s.Name, "no-feedback")
		if s.Opts.UseCoverageFeedback != wantFeedback {
			t.Errorf("%s: UseCoverageFeedback=%v", s.Name, s.Opts.UseCoverageFeedback)
		}
	}
}

func TestMatrixExpandDefaults(t *testing.T) {
	specs := Matrix{Base: smallBase(4)}.Expand()
	if len(specs) != 1 {
		t.Fatalf("expected 1 spec, got %d", len(specs))
	}
	if specs[0].Name != "BOOM/DejaVuzz/base" {
		t.Errorf("unexpected default name %q", specs[0].Name)
	}
}

// TestMatrixExpandZeroIterations checks that only the iteration count falls
// back to the core default — other Base fields must survive (this regressed
// once by substituting DefaultOptions wholesale).
func TestMatrixExpandZeroIterations(t *testing.T) {
	base := smallBase(0)
	base.Seed = 77
	base.Shards = 3
	base.UseCoverageFeedback = false
	specs := Matrix{Base: base}.Expand()
	got := specs[0].Opts
	if got.Iterations != core.DefaultOptions(uarch.KindBOOM).Iterations {
		t.Errorf("Iterations=%d, want core default", got.Iterations)
	}
	if got.Seed != 77 || got.Shards != 3 || got.UseCoverageFeedback {
		t.Errorf("base fields discarded: seed=%d shards=%d feedback=%v", got.Seed, got.Shards, got.UseCoverageFeedback)
	}
}

func TestAblationByName(t *testing.T) {
	ab, err := AblationByName("no-liveness")
	if err != nil {
		t.Fatal(err)
	}
	opts := smallBase(4)
	ab.Apply(&opts)
	if opts.UseLiveness {
		t.Error("no-liveness ablation left UseLiveness on")
	}
	if _, err := AblationByName("bogus"); err == nil {
		t.Error("expected error for unknown ablation")
	}
}

// TestRunnerPoolWidthInvariance checks the matrix analogue of engine
// determinism: the same specs give identical reports whether campaigns run
// one at a time or eight wide.
func TestRunnerPoolWidthInvariance(t *testing.T) {
	m := Matrix{
		Base:  smallBase(16),
		Seeds: []int64{11, 12, 13, 14},
	}
	seq, err := (&Runner{Workers: 1}).RunMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Runner{Workers: 8}).RunMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Name != par[i].Name {
			t.Fatalf("result order differs at %d: %q vs %q", i, seq[i].Name, par[i].Name)
		}
		if !reflect.DeepEqual(seq[i].Report.Findings, par[i].Report.Findings) {
			t.Errorf("%s: findings differ across pool widths", seq[i].Name)
		}
		if seq[i].Report.Coverage != par[i].Report.Coverage {
			t.Errorf("%s: coverage differs across pool widths", seq[i].Name)
		}
	}
}

func TestCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	m := Matrix{Base: smallBase(12), Seeds: []int64{5, 6}}

	first, err := (&Runner{Workers: 2, Checkpoint: path}).RunMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range first {
		if res.Cached {
			t.Errorf("%s: fresh run reported cached", res.Name)
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	second, err := (&Runner{Workers: 2, Checkpoint: path}).RunMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range second {
		if !res.Cached {
			t.Errorf("%s: resumed run re-executed", res.Name)
		}
		if !reflect.DeepEqual(res.Report.Findings, first[i].Report.Findings) {
			t.Errorf("%s: checkpointed findings do not round-trip", res.Name)
		}
		if res.Report.Coverage != first[i].Report.Coverage {
			t.Errorf("%s: checkpointed coverage does not round-trip", res.Name)
		}
	}

	// A widened matrix only runs the new cells.
	wider := Matrix{Base: smallBase(12), Seeds: []int64{5, 6, 7}}
	third, err := (&Runner{Workers: 2, Checkpoint: path}).RunMatrix(wider)
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, res := range third {
		if res.Cached {
			cached++
		}
	}
	if cached != 2 {
		t.Errorf("expected 2 cached cells after widening, got %d", cached)
	}
}

// TestCheckpointOptionMismatch checks that a checkpoint entry whose options
// do not match the spec (stale file, key collision) is re-run, not restored.
func TestCheckpointOptionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	m := Matrix{Base: smallBase(8)}
	if _, err := (&Runner{Checkpoint: path}).RunMatrix(m); err != nil {
		t.Fatal(err)
	}
	// Workers-only differences ARE compatible (determinism guarantee).
	wide := m
	wide.Base.Workers = 8
	res, err := (&Runner{Checkpoint: path}).RunMatrix(wide)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Cached {
		t.Fatal("workers-only difference invalidated the checkpoint")
	}
	// Same spec name, different seed: must not be served from the cache.
	changed := m
	changed.Base.Seed = 999
	res, err = (&Runner{Checkpoint: path}).RunMatrix(changed)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Cached {
		t.Fatal("mismatched checkpoint entry was restored")
	}
	if res[0].Report.Options.Seed != 999 {
		t.Fatalf("re-run used seed %d, want 999", res[0].Report.Options.Seed)
	}

	// A different -scenarios set invalidates too, and the log names the
	// mismatched option so the re-run is auditable.
	scoped := changed
	scoped.Base.Scenarios = []string{"page-fault"}
	var log bytes.Buffer
	res, err = (&Runner{Checkpoint: path, Progress: &log}).RunMatrix(scoped)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Cached {
		t.Fatal("scenario-set mismatch served a stale checkpoint entry")
	}
	if got := log.String(); !strings.Contains(got, "mismatched options") || !strings.Contains(got, "scenarios") {
		t.Fatalf("invalidation log does not name the scenarios mismatch:\n%s", got)
	}
	// And the scoped result itself is served from cache on a re-run.
	res, err = (&Runner{Checkpoint: path}).RunMatrix(scoped)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Cached {
		t.Fatal("scoped campaign was not checkpointed")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := (&Runner{Checkpoint: path}).RunMatrix(Matrix{Base: smallBase(4)})
	if err == nil {
		t.Fatal("expected error on malformed checkpoint")
	}
}

func TestProgressStreaming(t *testing.T) {
	var buf bytes.Buffer
	m := Matrix{Base: smallBase(16), Seeds: []int64{21, 22}}
	if _, err := (&Runner{Workers: 2, Progress: &buf}).RunMatrix(m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"start:", "iterations, coverage=", "done:"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress stream missing %q:\n%s", want, out)
		}
	}
	// One line per merge barrier: 16 iters / MergeEvery=8 = 2 per campaign.
	if n := strings.Count(out, "16/16 iterations"); n != 2 {
		t.Errorf("expected 2 final-barrier lines, got %d:\n%s", n, out)
	}
}
