package campaign

import (
	"context"
	"io"
	"strings"
	"sync"

	"dejavuzz/internal/core"
)

// Result is one finished (or checkpoint-restored) campaign cell.
type Result struct {
	Name   string       `json:"name"`
	Report *core.Report `json:"report"`
	// Cached marks results restored from the checkpoint instead of re-run.
	Cached bool `json:"-"`
}

// Runner executes campaign specs over one shared worker pool.
//
// Workers bounds how many campaigns run concurrently; each campaign's own
// Opts.Workers additionally parallelises its shards, so total parallelism is
// the product. Campaign results are deterministic per spec (the engine
// guarantees worker-independence), so the pool width only affects wall time.
type Runner struct {
	// Workers is the pool width (default 1).
	Workers int
	// Checkpoint, when non-empty, is a JSON file campaigns are saved to as
	// they finish; on the next Run, specs whose names it contains are
	// restored instead of re-run.
	Checkpoint string
	// Progress, when non-nil, receives streaming per-campaign progress lines
	// (one per merge barrier, plus start/done markers).
	Progress io.Writer
}

// Run executes every spec not already in the checkpoint and returns results
// in spec order. An error loading the checkpoint aborts the run (nil
// results); an error saving it is returned alongside the fully-populated
// results, since the campaigns themselves completed (the engine has no
// error path).
func (r *Runner) Run(specs []Spec) ([]Result, error) {
	return r.RunContext(context.Background(), specs)
}

// RunContext is Run with cancellation: a cancelled context stops every
// in-flight campaign at its next merge barrier and skips campaigns not yet
// started. Interrupted campaigns report nil in the result slice and the
// context's error is returned; campaigns already finished (or restored)
// keep their results, and finished-and-saved checkpoint entries survive, so
// re-running the same specs resumes where the cancellation landed.
func (r *Runner) RunContext(ctx context.Context, specs []Spec) ([]Result, error) {
	ckpt, err := loadCheckpoint(r.Checkpoint)
	if err != nil {
		return nil, err
	}
	progress := NewProgressLog(r.Progress)

	var mu sync.Mutex // guards ckpt map mutation and firstErr from jobs
	var saveMu sync.Mutex
	var firstErr error
	results := make([]Result, len(specs))
	var jobs []func()
	for i, spec := range specs {
		rep, ok := ckpt.Results[spec.Name]
		if ok && !resultMatches(rep, spec.Opts) {
			// Same key, different determinism-relevant options: the stale
			// entry must not masquerade as this spec's result. The diff
			// names what changed (e.g. a different -scenarios set), so the
			// invalidation is auditable instead of a bare mismatch.
			progress.Logf("[%s] checkpoint entry has mismatched options (%s); re-running",
				spec.Name, strings.Join(spec.Opts.DiffFrom(rep.Options), "; "))
			ok = false
		}
		if ok {
			results[i] = Result{Name: spec.Name, Report: rep, Cached: true}
			progress.Logf("[%s] restored from checkpoint (%d findings, coverage=%d)",
				spec.Name, len(rep.Findings), rep.Coverage)
			continue
		}
		jobs = append(jobs, func() {
			if ctx.Err() != nil {
				progress.Logf("[%s] skipped: %v", spec.Name, ctx.Err())
				return
			}
			progress.Logf("[%s] start: %d iterations on %v", spec.Name, spec.Opts.Iterations, spec.Opts.Core)
			opts := spec.Opts
			prev := opts.OnEpoch
			opts.OnEpoch = func(done, total, coverage int) {
				if prev != nil {
					prev(done, total, coverage)
				}
				progress.Logf("[%s] %d/%d iterations, coverage=%d", spec.Name, done, total, coverage)
			}
			rep, _ := core.NewFuzzer(opts).RunContext(ctx)
			if rep == nil {
				progress.Logf("[%s] interrupted: %v", spec.Name, ctx.Err())
				return
			}
			results[i] = Result{Name: spec.Name, Report: rep}
			progress.Logf("[%s] done: %d findings, coverage=%d in %v",
				spec.Name, len(rep.Findings), rep.Coverage, rep.Duration.Round(1e6))

			// Record the result under mu, but marshal and write the file
			// under saveMu so progress lines from running campaigns never
			// block behind checkpoint I/O. Each writer re-snapshots under
			// mu, so the last rename always carries every completed
			// campaign.
			mu.Lock()
			ckpt.Results[spec.Name] = rep
			mu.Unlock()
			if r.Checkpoint != "" {
				saveMu.Lock()
				mu.Lock()
				snap := &checkpoint{Version: ckpt.Version, Results: make(map[string]*core.Report, len(ckpt.Results))}
				for k, v := range ckpt.Results {
					snap.Results[k] = v
				}
				mu.Unlock()
				err := saveCheckpoint(r.Checkpoint, snap)
				saveMu.Unlock()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		})
	}
	RunJobs(r.Workers, jobs)
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	return results, firstErr
}

// resultMatches reports whether a checkpointed report was produced by
// determinism-equivalent options (everything except Workers and the hooks,
// which only shape wall-clock behaviour).
func resultMatches(rep *core.Report, want core.Options) bool {
	return rep.Options.EquivalentTo(want)
}

// RunMatrix expands and runs a matrix in one call.
func (r *Runner) RunMatrix(m Matrix) ([]Result, error) {
	return r.Run(m.Expand())
}

// RunMatrixContext expands and runs a matrix with cancellation.
func (r *Runner) RunMatrixContext(ctx context.Context, m Matrix) ([]Result, error) {
	return r.RunContext(ctx, m.Expand())
}
