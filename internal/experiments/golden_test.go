package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"dejavuzz/internal/gen"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTable2Golden pins the exact Table 2 output: the experiment harness
// must not silently drift from the paper's table format. Regenerate with
// `go test ./internal/experiments -run TestTable2Golden -update` after an
// intentional format or model change.
func TestTable2Golden(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	path := filepath.Join("testdata", "table2.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("Table 2 output drifted from golden file (run with -update if intentional)\n--- got ---\n%s--- want ---\n%s",
			buf.String(), want)
	}
}

// table3CellRe matches one rendered Table 3 cell: "fail", "TO", or
// "TO (ETO)" with one decimal place.
var table3CellRe = regexp.MustCompile(`^(fail|\d+\.\d|\d+\.\d \(\d+\.\d\))$`)

// TestTable3RowShape verifies the Table 3 rendering contract row by row:
// a core header per core, a column header naming all eight window types,
// and one row per fuzzer with exactly eight well-formed cells.
func TestTable3RowShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	Table3(&buf, 2, 123)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "Table 3: Training overhead for different types of transient windows" {
		t.Fatalf("unexpected title %q", lines[0])
	}

	wantCols := make([]string, 0, int(gen.NumTriggerTypes))
	for _, tr := range gen.AllTriggerTypes() {
		wantCols = append(wantCols, shortTrig(tr))
	}

	rows := map[string][]string{} // core header -> fuzzer row names
	var section string
	for _, line := range lines[1:] {
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "["):
			section = line
			continue
		case strings.HasPrefix(line, "Fuzzer"):
			cols := strings.Fields(line)[1:]
			if strings.Join(cols, " ") != strings.Join(wantCols, " ") {
				t.Errorf("%s: column header %v, want %v", section, cols, wantCols)
			}
			continue
		}
		// A fuzzer row: fixed-width name column, then 8 fixed-width cells.
		name := strings.TrimRight(line[:12], " ")
		rows[section] = append(rows[section], name)
		rest := line[12:]
		var cells []string
		for len(rest) > 0 {
			w := 15
			if len(rest) < w {
				w = len(rest)
			}
			cells = append(cells, strings.TrimSpace(rest[:w]))
			rest = rest[w:]
		}
		if len(cells) != int(gen.NumTriggerTypes) {
			t.Errorf("%s/%s: %d cells, want %d: %q", section, name, len(cells), gen.NumTriggerTypes, line)
			continue
		}
		for i, c := range cells {
			if !table3CellRe.MatchString(c) {
				t.Errorf("%s/%s: malformed cell %d: %q", section, name, i, c)
			}
		}
	}

	if got := rows["[BOOM]"]; strings.Join(got, ",") != "DejaVuzz,DejaVuzz*,SpecDoctor" {
		t.Errorf("BOOM rows = %v, want DejaVuzz, DejaVuzz*, SpecDoctor", got)
	}
	if got := rows["[XiangShan]"]; strings.Join(got, ",") != "DejaVuzz,DejaVuzz*" {
		t.Errorf("XiangShan rows = %v, want DejaVuzz, DejaVuzz*", got)
	}
}

// TestTable3DeterministicOutput pins that the rendered table is identical
// across pool widths — the parallel rewiring must not change any cell.
func TestTable3DeterministicOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var seq, par bytes.Buffer
	Table3(&seq, 2, 77)
	Table3(&par, 2, 77, WithWorkers(5))
	if seq.String() != par.String() {
		t.Errorf("Table 3 output differs across pool widths\n--- workers=1 ---\n%s--- workers=5 ---\n%s",
			seq.String(), par.String())
	}
}
