package experiments

import (
	"fmt"
	"io"

	"dejavuzz/internal/core"
	"dejavuzz/internal/specdoctor"
	"dejavuzz/internal/uarch"
)

// LivenessResult quantifies the §6.3 liveness evaluation: how many of
// SpecDoctor's phase-3 positives are real, exploitable leakages when
// re-analysed with taint liveness annotations, and how many cases the
// no-liveness ablation misclassifies.
type LivenessResult struct {
	Positives int
	RealLeaks int
	// ResidentOnly: the hash differed only because the secret sat in a cache
	// data array — SpecDoctor's dominant false-positive class.
	ResidentOnly int
	// NoLivenessFlagged counts positives the liveness-free ablation flags as
	// leaks (dead sinks included); its excess over RealLeaks is the
	// misclassification the paper attributes to residual RoB/regfile taints.
	NoLivenessFlagged int
	Phase4Attempts    int
}

// Liveness reproduces the evaluation: collect SpecDoctor phase-3 positives,
// replay each through the diffIFT environment and classify with tainted-sink
// liveness analysis.
func Liveness(w io.Writer, targetPositives int, seed int64) LivenessResult {
	kind := uarch.KindBOOM
	sd := specdoctor.New(specdoctor.Options{Core: kind, Seed: seed})
	cfg := uarch.ConfigFor(kind)
	res := LivenessResult{}

	sup := sd.SupportedTriggers()
	for i := 0; len(sd.SupportedTriggers()) > 0 && res.Positives < targetPositives && i < targetPositives*8; i++ {
		t := sup[i%len(sup)]
		c, err := sd.GenCase(t)
		if err != nil {
			continue
		}
		r := sd.RunCase(c, core.DefaultSecret)
		if !r.Positive() {
			continue
		}
		res.Positives++
		res.Phase4Attempts += 100

		// Replay under diffIFT and apply the liveness-annotated sink
		// analysis.
		run := core.RunDiff(c.Schedule(), core.RunOpts{Cfg: cfg, TaintTrace: true})
		sinks := run.Pair.A.Sinks()
		timing := run.Pair.A.Cycle != run.Pair.B.Cycle

		live, dead := 0, 0
		for _, s := range sinks {
			// Exploitable encodings are control-level: secret-selected cache
			// lines, TLB entries or predictor state — not the secret's own
			// bytes resident in a data array.
			switch s.Module {
			case "dcache", "icache", "dtlb", "l2tlb", "btb", "faubtb", "indbtb", "ras", "loop", "bht", "lfb":
				if s.Live {
					live++
				} else {
					dead++
				}
			default:
				if !s.Live {
					dead++
				}
			}
		}
		ctlEncoded := len(run.Pair.A.DCache.TaintedLinePositions()) > 0

		switch {
		case timing || (ctlEncoded && live > 0):
			res.RealLeaks++
			res.NoLivenessFlagged++
		case live+dead > 0:
			// Tainted state exists but nothing exploitable is live/encoded:
			// the liveness-free ablation would still flag it.
			res.ResidentOnly++
			res.NoLivenessFlagged++
		default:
			res.ResidentOnly++
		}
	}

	fmt.Fprintln(w, "Liveness evaluation (§6.3): SpecDoctor phase-3 positives re-analysed")
	fmt.Fprintf(w, "positives=%d real-leaks=%d resident-only-FPs=%d\n",
		res.Positives, res.RealLeaks, res.ResidentOnly)
	fmt.Fprintf(w, "no-liveness ablation flags %d cases (misclassifies %d)\n",
		res.NoLivenessFlagged, res.NoLivenessFlagged-res.RealLeaks)
	fmt.Fprintf(w, "SpecDoctor phase-4 random decode attempts emulated: %d (0 successes)\n",
		res.Phase4Attempts)
	return res
}
