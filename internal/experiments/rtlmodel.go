package experiments

import (
	"fmt"

	"dejavuzz/internal/rtl"
	"dejavuzz/internal/uarch"
)

// BuildRoBExample reproduces the paper's Figure 2 circuit: one RoB entry's
// opcode field updated when a valid micro-op enqueues at the matching tail
// index. It is the canonical demonstration of CellIFT's rollback
// over-tainting versus diffIFT's gating.
func BuildRoBExample() (*rtl.Design, map[string]rtl.SignalID) {
	d := rtl.NewDesign("rob_example").InModule("rob")
	enqValid := d.Input("enq_valid", 1)
	enqUopc := d.Input("enq_uopc", 7)
	tailIdx := d.Input("rob_tail_idx", 3)

	sigs := map[string]rtl.SignalID{
		"enq_valid": enqValid, "enq_uopc": enqUopc, "rob_tail_idx": tailIdx,
	}
	for e := 0; e < 8; e++ {
		uopc := d.AddReg(fmt.Sprintf("rob_%d_uopc", e), 7, 0)
		idx := d.Konst(fmt.Sprintf("idx_%d", e), 3, uint64(e))
		match := d.Eq(fmt.Sprintf("match_rob%d", e), tailIdx, idx)
		update := d.And(fmt.Sprintf("update_rob%d", e), match, enqValid)
		next := d.Mux(fmt.Sprintf("rob_%d_next", e), update, uopc.Q, enqUopc)
		d.ConnectReg(uopc, next, rtl.Invalid)
		sigs[uopc.Name] = uopc.Q
	}
	return d, sigs
}

// BuildCoreModel elaborates a synthetic RTL netlist whose structure scales
// with the core configuration: RoB field arrays, register file, cache tag and
// data arrays, TLBs and predictor tables with Figure 2-style update logic.
// It is the instrumentation workload for the Table 4 "compile" columns (the
// real cores' Verilog is proprietary-toolchain territory; what matters for
// the experiment's shape is that XiangShan's model is several times larger
// and that CellIFT must flatten all memories first).
func BuildCoreModel(cfg uarch.Config) *rtl.Design {
	d := rtl.NewDesign(cfg.Name)

	buildArray := func(module, name string, width, depth int) {
		d.InModule(module)
		m := d.AddMem(name, width, depth)
		addr := d.Input(module+"_"+name+"_addr", 16)
		data := d.Input(module+"_"+name+"_wdata", width)
		en := d.Input(module+"_"+name+"_wen", 1)
		rd := d.MemRead(module+"_"+name+"_rdata", m, addr)
		// Figure 2-style conditional update: valid && index-match.
		idx := d.Konst(module+"_"+name+"_tail", 16, uint64(depth/2))
		match := d.Eq(module+"_"+name+"_match", addr, idx)
		upd := d.And(module+"_"+name+"_upd", match, en)
		mix := d.Xor(module+"_"+name+"_mix", rd, data)
		sel := d.Mux(module+"_"+name+"_sel", upd, rd, mix)
		d.MemWrite(m, addr, sel, en)
	}

	// RoB: one array per micro-op field.
	for _, f := range []struct {
		name  string
		width int
	}{{"uopc", 7}, {"pdst", 7}, {"prs1", 7}, {"prs2", 7}, {"pc_lob", 12},
		{"imm", 20}, {"flags", 8}, {"exc", 5}} {
		buildArray("rob", f.name, f.width, cfg.ROBEntries)
	}
	buildArray("regfile", "int", 64, 32+cfg.ROBEntries) // phys regs
	buildArray("regfile", "fp", 64, 32+cfg.ROBEntries/2)

	lines := cfg.DCache.Sets * cfg.DCache.Ways
	buildArray("dcache", "tags", 20, lines)
	for w := 0; w < cfg.DCache.LineBytes/8; w++ {
		buildArray("dcache", fmt.Sprintf("data%d", w), 64, lines)
	}
	ilines := cfg.ICache.Sets * cfg.ICache.Ways
	buildArray("icache", "tags", 20, ilines)
	for w := 0; w < cfg.ICache.LineBytes/8; w++ {
		buildArray("icache", fmt.Sprintf("data%d", w), 64, ilines)
	}
	buildArray("lsu", "ldq_addr", 40, cfg.LDQEntries)
	buildArray("lsu", "stq_addr", 40, cfg.STQEntries)
	buildArray("lsu", "stq_data", 64, cfg.STQEntries)
	buildArray("dtlb", "entries", 44, cfg.DTLB.Entries)
	buildArray("itlb", "entries", 44, cfg.ITLB.Entries)
	buildArray("l2tlb", "entries", 44, cfg.L2TLB.Entries)
	buildArray("bht", "counters", 2, cfg.BHTEntries)
	buildArray("btb", "targets", 32, cfg.BTBEntries)
	buildArray("faubtb", "targets", 32, cfg.FauBTBEntries)
	buildArray("ras", "stack", 40, cfg.RASEntries)
	buildArray("loop", "entries", 24, cfg.LoopEntries)

	// MSHR/LFB with the liveness annotation from §4.3.2.
	d.InModule("lfb")
	mshrValid := d.Input("mshr_valid_vec", cfg.DCache.MSHRs)
	lfb := d.AddMem("lb", 64, cfg.DCache.MSHRs)
	lfb.Attrs["liveness_mask"] = "mshr_valid_vec"
	fillAddr := d.Input("lfb_fill_addr", 4)
	fillData := d.Input("lfb_fill_data", 64)
	fillEn := d.Input("lfb_fill_en", 1)
	d.MemWrite(lfb, fillAddr, fillData, fillEn)
	_ = mshrValid

	// XiangShan's far larger uncore (L2 cache, directory, bigger queues) is
	// what pushed CellIFT's flattened instrumentation past the paper's 8h
	// budget; model it with genuinely large arrays.
	if cfg.Kind == uarch.KindXiangShan {
		buildArray("l2cache", "tags", 24, 1024)
		for w := 0; w < 8; w++ {
			buildArray("l2cache", fmt.Sprintf("data%d", w), 64, 1024)
		}
		buildArray("l2cache", "dir", 16, 1024)
	}

	// Combinational soup proportional to the pipeline width (decode/issue
	// logic stand-in) so instrumentation cost tracks core complexity.
	d.InModule("exu")
	a := d.Input("exu_a", 64)
	b := d.Input("exu_b", 64)
	acc := a
	for i := 0; i < 40*cfg.DecodeWidth; i++ {
		acc = d.Xor(fmt.Sprintf("exu_x%d", i), acc, b)
		acc = d.Add(fmt.Sprintf("exu_s%d", i), acc, a)
		cmp := d.Lt(fmt.Sprintf("exu_c%d", i), acc, b)
		acc = d.Mux(fmt.Sprintf("exu_m%d", i), cmp, acc, a)
	}
	out := d.AddReg("exu_out", 64, 0)
	d.ConnectReg(out, acc, rtl.Invalid)
	return d
}
