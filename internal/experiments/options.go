package experiments

import (
	"context"
	"io"
)

// RunConfig tunes how campaign-backed experiments (Table 5, Figure 7)
// execute: pool width, checkpoint/resume, streaming progress and
// cancellation. It does not affect results — campaigns are deterministic in
// their options.
type RunConfig struct {
	Workers    int
	Checkpoint string
	Progress   io.Writer
	Ctx        context.Context
}

// Option mutates a RunConfig.
type Option func(*RunConfig)

// WithContext makes campaign-backed experiments cancellable: cancellation
// stops in-flight campaigns at their next merge barrier, and finished
// campaigns stay in the checkpoint (re-run to resume).
func WithContext(ctx context.Context) Option {
	return func(c *RunConfig) { c.Ctx = ctx }
}

// context returns the configured context (Background when unset).
func (c RunConfig) context() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// WithWorkers sets the shared campaign pool width.
func WithWorkers(n int) Option { return func(c *RunConfig) { c.Workers = n } }

// WithCheckpoint enables JSON checkpoint/resume at path.
func WithCheckpoint(path string) Option { return func(c *RunConfig) { c.Checkpoint = path } }

// WithProgress streams per-campaign progress lines to w.
func WithProgress(w io.Writer) Option { return func(c *RunConfig) { c.Progress = w } }

func runConfig(opts []Option) RunConfig {
	var c RunConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}
