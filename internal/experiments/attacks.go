// Package experiments regenerates every table and figure of the paper's
// evaluation section: Table 2 (core summary), Table 3 (training overhead),
// Table 4 (IFT overhead), Figure 6 (taint traces), Figure 7 (coverage
// growth), Table 5 (bugs found) and the §6.3 liveness evaluation.
package experiments

import (
	"fmt"

	"dejavuzz/internal/isa"
	"dejavuzz/internal/swapmem"
)

// PoC is one hand-written transient-execution attack proof of concept, used
// by the Table 4 and Figure 6 micro-benchmarks.
type PoC struct {
	Name     string
	Schedule *swapmem.Schedule
	WindowLo uint64
	WindowHi uint64
}

const pocTrigOff = 16 // trigger lands at SwapBase + 64

func pocTrigPC() uint64 { return swapmem.SwapBase + 4*pocTrigOff }

func mustPacket(name string, kind swapmem.PacketKind, src string) *swapmem.Packet {
	img := isa.MustAsm(swapmem.SwapBase, src)
	return &swapmem.Packet{Name: name, Kind: kind, Image: img, Entry: swapmem.SwapBase}
}

// words measures a fragment's instruction count.
func words(src string) int {
	return len(isa.MustAsm(swapmem.SwapBase, src).Words)
}

// aligned concatenates setup + padding + rest so that the first instruction
// of rest lands exactly at pocTrigPC. Training packets fall through the
// padding nops into the trigger address.
func aligned(setup, rest string) string {
	return setup + pad(pocTrigOff-words(setup)) + rest
}

// alignedJump is aligned with a `j trig` emitted after the setup, for
// transient packets that skip their padding.
func alignedJump(setup, rest string) string {
	return setup + "j trig\n" + pad(pocTrigOff-words(setup)-1) + rest
}

func pad(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "nop\n"
	}
	return s
}

// encodeBlock is the canonical dcache secret-encode gadget.
func encodeSrc() string {
	return fmt.Sprintf(`
		andi s1, s0, 0x3f
		slli s1, s1, 6
		li t1, %#x
		add t1, t1, s1
		ld t2, 0(t1)
	`, swapmem.DataBase+0x1000)
}

func secretAccessSrc() string {
	return fmt.Sprintf("li t0, %#x\nld s0, 0(t0)\n", uint64(swapmem.SecretAddr))
}

// SpectreV1 builds the classic bounds-check-bypass shape: a branch trained
// taken whose transient taken-path reads and encodes the secret.
func SpectreV1() PoC {
	T := pocTrigPC()
	warm := mustPacket("warm-secret", swapmem.PacketWindowTrain, secretAccessSrc()+"ecall")
	train := mustPacket("v1-train", swapmem.PacketTriggerTrain, aligned(`
		li a3, 3
	`, `
	trig:
		beq zero, zero, win
		ecall
	win:
		addi a3, a3, -1
		bnez a3, trig
		ecall
	`))
	transient := mustPacket("v1-transient", swapmem.PacketTransient, alignedJump(`
		li a0, 36
		li a1, 3
		div a0, a0, a1
		div a0, a0, a1
	`, `
	trig:
		beq a0, a1, win
		ecall
	win:
	`+secretAccessSrc()+encodeSrc()+`
		ecall
	`))
	sched := &swapmem.Schedule{}
	sched.Append(warm)
	sched.Append(train)
	sched.Append(transient)
	return PoC{Name: "Spectre-V1", Schedule: sched, WindowLo: T + 8, WindowHi: T + 8 + 4*16}
}

// SpectreV2 trains the indirect-jump target predictor cross-"context":
// the training packet steers the jalr at the trigger address to the window.
func SpectreV2() PoC {
	T := pocTrigPC()
	warm := mustPacket("warm-secret", swapmem.PacketWindowTrain, secretAccessSrc()+"ecall")
	win := T + 8
	train := mustPacket("v2-train", swapmem.PacketTriggerTrain, aligned(fmt.Sprintf(`
		li a2, %#x
		li a3, 3
	`, win), `
	trig:
		jalr x0, 0(a2)
		ecall
	win:
		addi a3, a3, -1
		bnez a3, trig
		ecall
	`))
	transient := mustPacket("v2-transient", swapmem.PacketTransient, alignedJump(fmt.Sprintf(`
		li a0, %d
		li a1, 3
		div a0, a0, a1
		div a0, a0, a1
	`, (T+4)*9), `
	trig:
		jalr x0, 0(a0)
		ecall
	win:
	`+secretAccessSrc()+encodeSrc()+`
		ecall
	`))
	sched := &swapmem.Schedule{}
	sched.Append(warm)
	sched.Append(train)
	sched.Append(transient)
	return PoC{Name: "Spectre-V2", Schedule: sched, WindowLo: win, WindowHi: win + 4*16}
}

// SpectreRSB corrupts the return address stack: the training packet's call
// pushes the window address, the transient packet's ret pops it.
func SpectreRSB() PoC {
	T := pocTrigPC()
	warm := mustPacket("warm-secret", swapmem.PacketWindowTrain, secretAccessSrc()+"ecall")
	win := T + 8
	train := mustPacket("rsb-train", swapmem.PacketTriggerTrain,
		aligned("", fmt.Sprintf(`
	trig:
		call %#x
	`, uint64(swapmem.SwapDoneAddr))))
	transient := mustPacket("rsb-transient", swapmem.PacketTransient, alignedJump(fmt.Sprintf(`
		li a0, %d
		li a1, 3
		div a0, a0, a1
		div a0, a0, a1
		mv ra, a0
	`, (T+4)*9), `
	trig:
		ret
		ecall
	win:
	`+secretAccessSrc()+encodeSrc()+`
		ecall
	`))
	sched := &swapmem.Schedule{}
	sched.Append(warm)
	sched.Append(train)
	sched.Append(transient)
	return PoC{Name: "Spectre-RSB", Schedule: sched, WindowLo: win, WindowHi: win + 4*16}
}

// SpectreV4 bypasses a store with an unresolved address: the speculative
// load reads the stale secret pointer.
func SpectreV4() PoC {
	T := pocTrigPC()
	ptr := uint64(swapmem.DataBase + 0x300)
	safe := uint64(swapmem.DataBase + 0x400)
	// Window training: warm the pointer slot and the secret line so the
	// speculative loads complete inside the disambiguation window.
	warm := mustPacket("v4-warm", swapmem.PacketWindowTrain, fmt.Sprintf(`
		li t0, %#x
		ld a1, 0(t0)
	`, ptr)+secretAccessSrc()+"ecall")
	transient := mustPacket("v4-transient", swapmem.PacketTransient, alignedJump(fmt.Sprintf(`
		li a2, %#x
		li a3, %#x
		sd a3, 0(a2)
		li a4, %#x
		li t3, %#x
		li t4, 3
		div t3, t3, t4
		div t3, t3, t4
	`, ptr, uint64(swapmem.SecretAddr), safe, ptr*9), `
	trig:
		sd a4, 0(t3)
		ld t1, 0(a2)
		ld s0, 0(t1)
	`+encodeSrc()+`
		ecall
	`))
	sched := &swapmem.Schedule{}
	sched.Append(warm)
	sched.Append(transient)
	return PoC{Name: "Spectre-V4", Schedule: sched, WindowLo: T + 4, WindowHi: T + 4 + 4*16}
}

// Meltdown reads a permission-protected secret whose data is transiently
// forwarded despite the fault.
func Meltdown() PoC {
	T := pocTrigPC()
	warm := mustPacket("meltdown-warm", swapmem.PacketWindowTrain, secretAccessSrc()+"ecall")
	transient := mustPacket("meltdown-transient", swapmem.PacketTransient, alignedJump(fmt.Sprintf(`
		li t6, %#x
	`, uint64(swapmem.SecretAddr)), `
	trig:
		ld s0, 0(t6)
	`+encodeSrc()+`
		ecall
	`))
	sched := &swapmem.Schedule{}
	sched.Append(warm)
	sched.AppendWithPerm(transient, swapmem.PermUpdate{Region: "dedicated", Perm: 0})
	return PoC{Name: "Meltdown", Schedule: sched, WindowLo: T + 4, WindowHi: T + 4 + 4*16}
}

// AllPoCs returns the five micro-benchmark attacks in the paper's Table 4
// order.
func AllPoCs() []PoC {
	return []PoC{SpectreV1(), SpectreV2(), Meltdown(), SpectreV4(), SpectreRSB()}
}
