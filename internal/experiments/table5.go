package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"dejavuzz/internal/campaign"
	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

// WindowClass buckets trigger types the way Table 5 does.
func WindowClass(t gen.TriggerType) string {
	switch t {
	case gen.TrigAccessFault, gen.TrigPageFault, gen.TrigMisalign:
		return "mem-excp"
	case gen.TrigIllegal:
		return "illegal"
	case gen.TrigMemDisambig:
		return "mem-disamb"
	default:
		return "mispred"
	}
}

// Table5Row aggregates findings per (core, attack type).
type Table5Row struct {
	Core       uarch.CoreKind
	AttackType string
	Windows    map[string]bool
	Components map[string]bool
	Bugs       map[string]bool
	Count      int
}

// Table5Result is the bug-hunt outcome per core.
type Table5Result struct {
	Core     uarch.CoreKind
	Rows     map[string]*Table5Row // by attack type
	FirstBug time.Duration
	Findings int
}

// Table5 runs full DejaVuzz campaigns on both (bug-enabled) cores and
// classifies the discovered leaks by attack type, transient-window class and
// encoded/contended timing component — the paper's Table 5 matrix — along
// with mechanism witnesses for the five published bugs. The two per-core
// campaigns run as a campaign matrix over the shared pool configured by
// opts. The error is non-nil only for checkpoint I/O failures.
func Table5(w io.Writer, iterations int, seed int64, opts ...Option) ([]Table5Result, error) {
	cfg := runConfig(opts)
	base := core.DefaultOptions(uarch.KindBOOM)
	base.Seed = seed
	base.Iterations = iterations
	m := campaign.Matrix{
		Prefix: fmt.Sprintf("table5/i%d", iterations),
		Base:   base,
		Cores:  []uarch.CoreKind{uarch.KindBOOM, uarch.KindXiangShan},
	}
	runner := campaign.Runner{Workers: cfg.Workers, Checkpoint: cfg.Checkpoint, Progress: cfg.Progress}
	results, runErr := runner.RunMatrixContext(cfg.context(), m)
	if results == nil {
		return nil, runErr
	}
	// A non-nil runErr past this point is a checkpoint-save failure or a
	// cancellation; completed campaigns still render, and the error is
	// surfaced alongside.

	var out []Table5Result
	for i, kind := range []uarch.CoreKind{uarch.KindBOOM, uarch.KindXiangShan} {
		rep := results[i].Report
		if rep == nil {
			continue // interrupted before this core's campaign finished
		}

		res := Table5Result{Core: kind, Rows: map[string]*Table5Row{}, FirstBug: rep.FirstBug}
		for _, f := range rep.Findings {
			res.Findings++
			row := res.Rows[f.AttackType]
			if row == nil {
				row = &Table5Row{
					Core: kind, AttackType: f.AttackType,
					Windows: map[string]bool{}, Components: map[string]bool{}, Bugs: map[string]bool{},
				}
				res.Rows[f.AttackType] = row
			}
			row.Count++
			row.Windows[WindowClass(f.Window)] = true
			for _, c := range f.Components {
				row.Components[c] = true
			}
			for _, b := range f.BugLabels {
				row.Bugs[b] = true
			}
		}
		out = append(out, res)
	}

	fmt.Fprintln(w, "Table 5: Summary of discovered transient execution bugs")
	for _, r := range out {
		fmt.Fprintf(w, "\n[%v] findings=%d first-bug=%v\n", r.Core, r.Findings, r.FirstBug.Round(time.Millisecond))
		var attacks []string
		for a := range r.Rows {
			attacks = append(attacks, a)
		}
		sort.Strings(attacks)
		for _, a := range attacks {
			row := r.Rows[a]
			fmt.Fprintf(w, "  %-10s windows=%v components=%v bug-witnesses=%v (n=%d)\n",
				a, keys(row.Windows), keys(row.Components), keys(row.Bugs), row.Count)
		}
	}
	return out, runErr
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
