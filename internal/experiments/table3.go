package experiments

import (
	"fmt"
	"io"

	"dejavuzz/internal/campaign"
	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/specdoctor"
	"dejavuzz/internal/uarch"
)

// Table3Cell is one fuzzer x trigger measurement.
type Table3Cell struct {
	Triggerable bool
	TO          float64
	ETO         float64
	HasETO      bool
}

func (c Table3Cell) String() string {
	if !c.Triggerable {
		return "fail"
	}
	if c.HasETO {
		return fmt.Sprintf("%.1f (%.1f)", c.TO, c.ETO)
	}
	return fmt.Sprintf("%.1f", c.TO)
}

// Table3Result maps fuzzer name -> trigger -> cell, per core.
type Table3Result struct {
	Core  uarch.CoreKind
	Rows  map[string]map[gen.TriggerType]Table3Cell
	Order []string
}

// Table3 measures training overhead per transient-window type for DejaVuzz,
// DejaVuzz* (random training) and — on BOOM — SpecDoctor, over `samples`
// Phase-1 attempts per cell. Each (fuzzer, core) row owns a private
// deterministic fuzzer, so rows run concurrently on the shared pool (sized
// by WithWorkers) without changing any cell.
func Table3(w io.Writer, samples int, seed int64, ropts ...Option) []Table3Result {
	cfg := runConfig(ropts)
	cores := []uarch.CoreKind{uarch.KindBOOM, uarch.KindXiangShan}
	out := make([]Table3Result, len(cores))
	type rowJob struct {
		core int
		name string
		run  func() map[gen.TriggerType]Table3Cell
	}
	var jobs []rowJob
	for ci, kind := range cores {
		out[ci] = Table3Result{Core: kind, Rows: map[string]map[gen.TriggerType]Table3Cell{}}
		for _, variant := range []gen.Variant{gen.VariantDerived, gen.VariantRandom} {
			out[ci].Order = append(out[ci].Order, variant.String())
			jobs = append(jobs, rowJob{core: ci, name: variant.String(), run: func() map[gen.TriggerType]Table3Cell {
				opts := core.DefaultOptions(kind)
				opts.Seed = seed
				f := core.NewFuzzer(opts)
				cells := map[gen.TriggerType]Table3Cell{}
				for _, t := range gen.AllTriggerTypes() {
					st := f.MeasureTraining(t, variant, samples)
					cells[t] = Table3Cell{
						Triggerable: st.Triggerable(),
						TO:          st.AvgTO,
						ETO:         st.AvgETO,
						HasETO:      variant == gen.VariantDerived,
					}
				}
				return cells
			}})
		}
		if kind == uarch.KindBOOM {
			out[ci].Order = append(out[ci].Order, "SpecDoctor")
			jobs = append(jobs, rowJob{core: ci, name: "SpecDoctor", run: func() map[gen.TriggerType]Table3Cell {
				sd := specdoctor.New(specdoctor.Options{Core: kind, Seed: seed})
				cells := map[gen.TriggerType]Table3Cell{}
				camp := sd.Campaign(samples*4, core.DefaultSecret)
				for _, t := range gen.AllTriggerTypes() {
					if to, ok := camp.TriggerTO[t]; ok {
						cells[t] = Table3Cell{Triggerable: true, TO: to}
					} else {
						cells[t] = Table3Cell{}
					}
				}
				return cells
			}})
		}
	}

	// Each job fills its own slot; row maps are installed sequentially
	// afterwards, so only the progress writer needs synchronisation.
	progress := campaign.NewProgressLog(cfg.Progress)
	cells := make([]map[gen.TriggerType]Table3Cell, len(jobs))
	var pool []func()
	for ji, j := range jobs {
		pool = append(pool, func() {
			progress.Logf("[table3/%v/%s] start: %d samples per window type", cores[j.core], j.name, samples)
			cells[ji] = j.run()
			progress.Logf("[table3/%v/%s] done", cores[j.core], j.name)
		})
	}
	campaign.RunJobs(cfg.Workers, pool)
	for ji, j := range jobs {
		out[j.core].Rows[j.name] = cells[ji]
	}

	fmt.Fprintln(w, "Table 3: Training overhead for different types of transient windows")
	for _, res := range out {
		fmt.Fprintf(w, "\n[%v]\n%-12s", res.Core, "Fuzzer")
		for _, t := range gen.AllTriggerTypes() {
			fmt.Fprintf(w, " %-14s", shortTrig(t))
		}
		fmt.Fprintln(w)
		for _, name := range res.Order {
			fmt.Fprintf(w, "%-12s", name)
			for _, t := range gen.AllTriggerTypes() {
				fmt.Fprintf(w, " %-14s", res.Rows[name][t])
			}
			fmt.Fprintln(w)
		}
	}
	return out
}

func shortTrig(t gen.TriggerType) string {
	switch t {
	case gen.TrigAccessFault:
		return "acc-fault"
	case gen.TrigPageFault:
		return "page-fault"
	case gen.TrigMisalign:
		return "misalign"
	case gen.TrigIllegal:
		return "illegal"
	case gen.TrigMemDisambig:
		return "mem-disamb"
	case gen.TrigBranchMispred:
		return "branch"
	case gen.TrigJumpMispred:
		return "ind-jump"
	case gen.TrigReturnMispred:
		return "return"
	}
	return t.String()
}
