package experiments

import (
	"fmt"
	"io"

	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/specdoctor"
	"dejavuzz/internal/uarch"
)

// Table3Cell is one fuzzer x trigger measurement.
type Table3Cell struct {
	Triggerable bool
	TO          float64
	ETO         float64
	HasETO      bool
}

func (c Table3Cell) String() string {
	if !c.Triggerable {
		return "fail"
	}
	if c.HasETO {
		return fmt.Sprintf("%.1f (%.1f)", c.TO, c.ETO)
	}
	return fmt.Sprintf("%.1f", c.TO)
}

// Table3Result maps fuzzer name -> trigger -> cell, per core.
type Table3Result struct {
	Core  uarch.CoreKind
	Rows  map[string]map[gen.TriggerType]Table3Cell
	Order []string
}

// Table3 measures training overhead per transient-window type for DejaVuzz,
// DejaVuzz* (random training) and — on BOOM — SpecDoctor, over `samples`
// Phase-1 attempts per cell.
func Table3(w io.Writer, samples int, seed int64) []Table3Result {
	var out []Table3Result
	for _, kind := range []uarch.CoreKind{uarch.KindBOOM, uarch.KindXiangShan} {
		res := Table3Result{Core: kind, Rows: map[string]map[gen.TriggerType]Table3Cell{}}

		for _, variant := range []gen.Variant{gen.VariantDerived, gen.VariantRandom} {
			opts := core.DefaultOptions(kind)
			opts.Seed = seed
			f := core.NewFuzzer(opts)
			cells := map[gen.TriggerType]Table3Cell{}
			for _, t := range gen.AllTriggerTypes() {
				st := f.MeasureTraining(t, variant, samples)
				cells[t] = Table3Cell{
					Triggerable: st.Triggerable(),
					TO:          st.AvgTO,
					ETO:         st.AvgETO,
					HasETO:      variant == gen.VariantDerived,
				}
			}
			res.Rows[variant.String()] = cells
			res.Order = append(res.Order, variant.String())
		}

		if kind == uarch.KindBOOM {
			sd := specdoctor.New(specdoctor.Options{Core: kind, Seed: seed})
			cells := map[gen.TriggerType]Table3Cell{}
			camp := sd.Campaign(samples*4, core.DefaultSecret)
			for _, t := range gen.AllTriggerTypes() {
				if to, ok := camp.TriggerTO[t]; ok {
					cells[t] = Table3Cell{Triggerable: true, TO: to}
				} else {
					cells[t] = Table3Cell{}
				}
			}
			res.Rows["SpecDoctor"] = cells
			res.Order = append(res.Order, "SpecDoctor")
		}
		out = append(out, res)
	}

	fmt.Fprintln(w, "Table 3: Training overhead for different types of transient windows")
	for _, res := range out {
		fmt.Fprintf(w, "\n[%v]\n%-12s", res.Core, "Fuzzer")
		for _, t := range gen.AllTriggerTypes() {
			fmt.Fprintf(w, " %-14s", shortTrig(t))
		}
		fmt.Fprintln(w)
		for _, name := range res.Order {
			fmt.Fprintf(w, "%-12s", name)
			for _, t := range gen.AllTriggerTypes() {
				fmt.Fprintf(w, " %-14s", res.Rows[name][t])
			}
			fmt.Fprintln(w)
		}
	}
	return out
}

func shortTrig(t gen.TriggerType) string {
	switch t {
	case gen.TrigAccessFault:
		return "acc-fault"
	case gen.TrigPageFault:
		return "page-fault"
	case gen.TrigMisalign:
		return "misalign"
	case gen.TrigIllegal:
		return "illegal"
	case gen.TrigMemDisambig:
		return "mem-disamb"
	case gen.TrigBranchMispred:
		return "branch"
	case gen.TrigJumpMispred:
		return "ind-jump"
	case gen.TrigReturnMispred:
		return "return"
	}
	return t.String()
}
