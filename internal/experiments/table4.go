package experiments

import (
	"fmt"
	"io"
	"time"

	"dejavuzz/internal/campaign"
	"dejavuzz/internal/core"
	"dejavuzz/internal/ift"
	"dejavuzz/internal/rtl"
	"dejavuzz/internal/uarch"
)

// Table4Result carries the instrumentation-overhead measurements.
type Table4Result struct {
	Core           uarch.CoreKind
	CompileBase    time.Duration
	CompileCellIFT time.Duration
	CellIFTTimeout bool
	CompileDiffIFT time.Duration
	// SimTimes[poc][mode]: wall time for Base / CellIFT / diffIFT.
	SimTimes map[string][3]time.Duration
}

// Table4 measures (a) instrumentation ("compile") time over the RTL core
// models — CellIFT must flatten every memory first, diffIFT instruments the
// word-level IR directly — and (b) simulation time for the five attack PoCs
// under no IFT, CellIFT (flattened shadow-circuit co-simulation, one
// instance) and diffIFT (word-level shadow co-simulation, two instances).
// compileBudget bounds the CellIFT flattening+instrumentation time; the
// XiangShan-scale model is expected to blow past it (the paper's 8h timeout).
// Measurements are wall-clock, so the cells always run sequentially; ropts
// only adds progress streaming here.
func Table4(w io.Writer, compileBudget time.Duration, simCycles int, ropts ...Option) []Table4Result {
	cfg2 := runConfig(ropts)
	progress := campaign.NewProgressLog(cfg2.Progress).Logf
	var out []Table4Result
	for _, kind := range []uarch.CoreKind{uarch.KindBOOM, uarch.KindXiangShan} {
		progress("[table4/%v] compiling", kind)
		cfg := uarch.ConfigFor(kind)
		res := Table4Result{Core: kind, SimTimes: map[string][3]time.Duration{}}

		// Compile: base = elaboration only.
		t0 := time.Now()
		model := BuildCoreModel(cfg)
		_ = rtl.NewSim(model)
		res.CompileBase = time.Since(t0)

		// CellIFT: flatten memories, then instrument, within the budget.
		t0 = time.Now()
		done := make(chan *ift.Shadow, 1)
		go func() {
			flat := rtl.FlattenMemories(model)
			sh, err := ift.Instrument(flat, ift.ModeCellIFT)
			if err != nil {
				done <- nil
				return
			}
			done <- sh
		}()
		select {
		case <-done:
			res.CompileCellIFT = time.Since(t0)
			if res.CompileCellIFT > compileBudget {
				res.CellIFTTimeout = true
			}
		case <-time.After(compileBudget):
			res.CellIFTTimeout = true
			res.CompileCellIFT = compileBudget
		}

		// diffIFT: word-level instrumentation, two instances.
		t0 = time.Now()
		if _, err := ift.NewPair(model); err != nil {
			panic(err)
		}
		res.CompileDiffIFT = time.Since(t0)

		// Simulation: the five attacks under the three disciplines. The IFT
		// modes co-simulate the corresponding shadow circuit each cycle —
		// the work VCS performs on the instrumented netlist.
		flatModel := rtl.FlattenMemories(model)
		for _, poc := range AllPoCs() {
			progress("[table4/%v] simulating %s", kind, poc.Name)
			var times [3]time.Duration
			opts := core.RunOpts{Cfg: cfg, MaxCycles: simCycles}

			t0 = time.Now()
			core.RunSingle(poc.Schedule.Clone(), opts)
			times[0] = time.Since(t0)

			t0 = time.Now()
			run := core.RunSingle(poc.Schedule.Clone(), core.RunOpts{
				Cfg: cfg, Mode: uarch.IFTCellIFT, TaintTrace: true, MaxCycles: simCycles,
			})
			coSimulate(flatModel, ift.ModeCellIFT, run.Core.Cycle)
			times[1] = time.Since(t0)

			t0 = time.Now()
			drun := core.RunDiff(poc.Schedule.Clone(), core.RunOpts{
				Cfg: cfg, TaintTrace: true, MaxCycles: simCycles,
			})
			coSimulateDiff(model, drun.Pair.A.Cycle)
			times[2] = time.Since(t0)

			res.SimTimes[poc.Name] = times
		}
		out = append(out, res)
	}

	fmt.Fprintln(w, "Table 4: Overhead of differential information flow tracking")
	for _, r := range out {
		fmt.Fprintf(w, "\n[%v]\n", r.Core)
		cell := r.CompileCellIFT.String()
		if r.CellIFTTimeout {
			cell = fmt.Sprintf("timeout after %v", r.CompileCellIFT)
		}
		fmt.Fprintf(w, "%-14s base=%-12v CellIFT=%-22s diffIFT=%v\n", "Compile", r.CompileBase, cell, r.CompileDiffIFT)
		for _, poc := range AllPoCs() {
			t := r.SimTimes[poc.Name]
			fmt.Fprintf(w, "%-14s base=%-12v CellIFT=%-22v diffIFT=%v\n", poc.Name, t[0], t[1], t[2])
		}
	}
	return out
}

// coSimulate steps the instrumented shadow circuit for the measured cycle
// count, charging the per-cycle shadow-logic cost the RTL simulator pays.
func coSimulate(model *rtl.Design, mode ift.Mode, cycles int) {
	sh := ift.MustInstrument(model, mode)
	if len(model.Inputs) > 0 {
		sh.Poke(model.Inputs[0], 1, 1)
	}
	for i := 0; i < cycles; i++ {
		sh.Step()
	}
}

func coSimulateDiff(model *rtl.Design, cycles int) {
	pair, err := ift.NewPair(model)
	if err != nil {
		panic(err)
	}
	if len(model.Inputs) > 0 {
		pair.A.Poke(model.Inputs[0], 1, 1)
		pair.B.Poke(model.Inputs[0], 0, 1)
	}
	for i := 0; i < cycles; i++ {
		pair.Step()
	}
}
