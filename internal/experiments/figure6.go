package experiments

import (
	"fmt"
	"io"

	"dejavuzz/internal/core"
	"dejavuzz/internal/uarch"
)

// Figure6Series is one attack's taint-sum-per-cycle trace under one
// tracking discipline.
type Figure6Series struct {
	Attack string
	Mode   string // "diffIFT", "diffIFT_FN", "CellIFT"
	Sums   []int
	// WindowStart is the cycle the transient window opened (the paper's
	// dotted vertical line).
	WindowStart int
}

// Final returns the last taint sum (steady state after the run).
func (s Figure6Series) Final() int {
	if len(s.Sums) == 0 {
		return 0
	}
	return s.Sums[len(s.Sums)-1]
}

// Peak returns the maximum taint sum.
func (s Figure6Series) Peak() int {
	p := 0
	for _, v := range s.Sums {
		if v > p {
			p = v
		}
	}
	return p
}

// Figure6 runs the five attack PoCs on BOOM under diffIFT, diffIFT_FN
// (identical secrets: worst-case false negatives) and CellIFT, recording the
// per-cycle taint sums. CellIFT exhibits the rollback taint explosion;
// diffIFT stays bounded; diffIFT_FN suppresses control taints entirely.
func Figure6(w io.Writer, maxCycles int) []Figure6Series {
	cfg := uarch.BOOMConfig()
	var out []Figure6Series
	for _, poc := range AllPoCs() {
		winStart := func(tr *uarch.Trace) int {
			ws := tr.Window(poc.WindowLo, poc.WindowHi)
			return ws.FirstCycle
		}

		drun := core.RunDiff(poc.Schedule.Clone(), core.RunOpts{Cfg: cfg, TaintTrace: true, MaxCycles: maxCycles})
		out = append(out, Figure6Series{
			Attack: poc.Name, Mode: "diffIFT",
			Sums:        drun.Pair.A.Trace.TaintSumByCycle,
			WindowStart: winStart(drun.Pair.A.Trace),
		})

		fnrun := core.RunDiffFN(poc.Schedule.Clone(), core.RunOpts{Cfg: cfg, TaintTrace: true, MaxCycles: maxCycles})
		out = append(out, Figure6Series{
			Attack: poc.Name, Mode: "diffIFT_FN",
			Sums:        fnrun.Pair.A.Trace.TaintSumByCycle,
			WindowStart: winStart(fnrun.Pair.A.Trace),
		})

		crun := core.RunSingle(poc.Schedule.Clone(), core.RunOpts{
			Cfg: cfg, Mode: uarch.IFTCellIFT, TaintTrace: true, MaxCycles: maxCycles,
		})
		out = append(out, Figure6Series{
			Attack: poc.Name, Mode: "CellIFT",
			Sums:        crun.Core.Trace.TaintSumByCycle,
			WindowStart: winStart(crun.Core.Trace),
		})
	}

	fmt.Fprintln(w, "Figure 6: taint sum during each test case (final/peak per mode)")
	fmt.Fprintf(w, "%-14s %-12s %-10s %-10s %-12s\n", "Attack", "Mode", "Final", "Peak", "WindowStart")
	for _, s := range out {
		fmt.Fprintf(w, "%-14s %-12s %-10d %-10d %-12d\n", s.Attack, s.Mode, s.Final(), s.Peak(), s.WindowStart)
	}
	return out
}

// Figure6CSV writes the raw per-cycle series for plotting.
func Figure6CSV(w io.Writer, series []Figure6Series) {
	fmt.Fprintln(w, "attack,mode,cycle,taint_sum")
	for _, s := range series {
		for cyc, v := range s.Sums {
			fmt.Fprintf(w, "%s,%s,%d,%d\n", s.Attack, s.Mode, cyc, v)
		}
	}
}
