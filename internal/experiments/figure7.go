package experiments

import (
	"fmt"
	"io"

	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/specdoctor"
	"dejavuzz/internal/uarch"
)

// Figure7Series is one fuzzer's coverage trajectory, averaged over trials.
type Figure7Series struct {
	Name   string
	Trials [][]int // per trial: cumulative coverage per iteration
}

// Mean returns the across-trial mean at each iteration.
func (s Figure7Series) Mean() []float64 {
	if len(s.Trials) == 0 {
		return nil
	}
	n := len(s.Trials[0])
	out := make([]float64, n)
	for _, tr := range s.Trials {
		for i := 0; i < n && i < len(tr); i++ {
			out[i] += float64(tr[i])
		}
	}
	for i := range out {
		out[i] /= float64(len(s.Trials))
	}
	return out
}

// Final returns the mean final coverage.
func (s Figure7Series) Final() float64 {
	m := s.Mean()
	if len(m) == 0 {
		return 0
	}
	return m[len(m)-1]
}

// Figure7 compares taint-coverage growth for DejaVuzz, DejaVuzz− (no
// coverage feedback) and SpecDoctor (phase-3 test cases replayed through the
// diffIFT environment, as the paper does) over `iterations` per trial.
func Figure7(w io.Writer, iterations, trials int, seed int64) []Figure7Series {
	kind := uarch.KindBOOM
	series := []Figure7Series{{Name: "DejaVuzz"}, {Name: "DejaVuzz-"}, {Name: "SpecDoctor"}}

	for trial := 0; trial < trials; trial++ {
		tseed := seed + int64(trial)*7919

		// DejaVuzz with coverage feedback.
		opts := core.DefaultOptions(kind)
		opts.Seed = tseed
		opts.Iterations = iterations
		rep := core.NewFuzzer(opts).Run()
		series[0].Trials = append(series[0].Trials, rep.CoverageHistory())

		// DejaVuzz− ablation: random regeneration each round.
		opts2 := opts
		opts2.UseCoverageFeedback = false
		rep2 := core.NewFuzzer(opts2).Run()
		series[1].Trials = append(series[1].Trials, rep2.CoverageHistory())

		// SpecDoctor: replay generated cases and measure OUR taint coverage.
		sd := specdoctor.New(specdoctor.Options{Core: kind, Seed: tseed})
		cov := core.NewCoverage()
		hist := make([]int, iterations)
		sup := sd.SupportedTriggers()
		for i := 0; i < iterations; i++ {
			t := sup[i%len(sup)]
			c, err := sd.GenCase(t)
			if err == nil {
				run := core.RunDiff(c.Schedule(), core.RunOpts{
					Cfg: uarch.ConfigFor(kind), TaintTrace: true,
				})
				cov.AddFromLog(run.Pair.A.Trace.TaintLog)
			}
			hist[i] = cov.Count()
		}
		series[2].Trials = append(series[2].Trials, hist)
	}

	fmt.Fprintln(w, "Figure 7: taint coverage over iterations (mean of trials)")
	fmt.Fprintf(w, "%-12s %-12s %-12s %-14s\n", "Fuzzer", "Final", "Mid", "Improvement")
	sdFinal := series[2].Final()
	for _, s := range series {
		m := s.Mean()
		mid := 0.0
		if len(m) > 0 {
			mid = m[len(m)/2]
		}
		impr := "-"
		if sdFinal > 0 {
			impr = fmt.Sprintf("%.1fx vs SpecDoctor", s.Final()/sdFinal)
		}
		fmt.Fprintf(w, "%-12s %-12.1f %-12.1f %-14s\n", s.Name, s.Final(), mid, impr)
	}

	// Saturation crossover: first DejaVuzz iteration reaching SpecDoctor's
	// final coverage.
	dv := series[0].Mean()
	cross := -1
	for i, v := range dv {
		if v >= sdFinal {
			cross = i + 1
			break
		}
	}
	fmt.Fprintf(w, "DejaVuzz reaches SpecDoctor's final coverage at iteration %d of %d\n", cross, iterations)
	return series
}

// Figure7CSV writes the raw mean series for plotting.
func Figure7CSV(w io.Writer, series []Figure7Series) {
	fmt.Fprintln(w, "fuzzer,iteration,coverage_mean")
	for _, s := range series {
		for i, v := range s.Mean() {
			fmt.Fprintf(w, "%s,%d,%.2f\n", s.Name, i+1, v)
		}
	}
}

var _ = gen.VariantDerived // keep gen import for documentation cross-refs
