package experiments

import (
	"fmt"
	"io"

	"dejavuzz/internal/campaign"
	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/specdoctor"
	"dejavuzz/internal/uarch"
)

// Figure7Series is one fuzzer's coverage trajectory, averaged over trials.
type Figure7Series struct {
	Name   string
	Trials [][]int // per trial: cumulative coverage per iteration
}

// Mean returns the across-trial mean at each iteration.
func (s Figure7Series) Mean() []float64 {
	if len(s.Trials) == 0 {
		return nil
	}
	n := len(s.Trials[0])
	out := make([]float64, n)
	for _, tr := range s.Trials {
		for i := 0; i < n && i < len(tr); i++ {
			out[i] += float64(tr[i])
		}
	}
	for i := range out {
		out[i] /= float64(len(s.Trials))
	}
	return out
}

// Final returns the mean final coverage.
func (s Figure7Series) Final() float64 {
	m := s.Mean()
	if len(m) == 0 {
		return 0
	}
	return m[len(m)-1]
}

// Figure7 compares taint-coverage growth for DejaVuzz, DejaVuzz− (no
// coverage feedback) and SpecDoctor (phase-3 test cases replayed through the
// diffIFT environment, as the paper does) over `iterations` per trial. The
// DejaVuzz campaigns run as one campaign matrix (ablations × trial seeds)
// over the shared worker pool configured by opts. The error is non-nil only
// for checkpoint I/O failures.
func Figure7(w io.Writer, iterations, trials int, seed int64, opts ...Option) ([]Figure7Series, error) {
	kind := uarch.KindBOOM
	cfg := runConfig(opts)
	series := []Figure7Series{{Name: "DejaVuzz"}, {Name: "DejaVuzz-"}, {Name: "SpecDoctor"}}
	var runErr error

	seeds := make([]int64, trials)
	for trial := range seeds {
		seeds[trial] = seed + int64(trial)*7919
	}
	if trials > 0 {
		base := core.DefaultOptions(kind)
		base.Iterations = iterations
		noFeedback, _ := campaign.AblationByName("no-feedback")
		m := campaign.Matrix{
			Prefix:    fmt.Sprintf("figure7/i%d", iterations),
			Base:      base,
			Ablations: []campaign.Ablation{campaign.Baseline(), noFeedback},
			Seeds:     seeds,
		}
		runner := campaign.Runner{Workers: cfg.Workers, Checkpoint: cfg.Checkpoint, Progress: cfg.Progress}
		results, rerr := runner.RunMatrixContext(cfg.context(), m)
		if results == nil {
			return nil, rerr
		}
		runErr = rerr // checkpoint-save failure or cancellation: keep what completed
		// Expansion order: all baseline trials, then all no-feedback trials.
		for i, res := range results {
			if res.Report == nil {
				continue // interrupted before this cell finished
			}
			si := i / trials // 0 = DejaVuzz, 1 = DejaVuzz−
			series[si].Trials = append(series[si].Trials, res.Report.CoverageHistory())
		}
	}

	for _, tseed := range seeds {
		// SpecDoctor: replay generated cases and measure OUR taint coverage.
		sd := specdoctor.New(specdoctor.Options{Core: kind, Seed: tseed})
		cov := core.NewCoverage()
		hist := make([]int, iterations)
		sup := sd.SupportedTriggers()
		for i := 0; i < iterations; i++ {
			t := sup[i%len(sup)]
			c, err := sd.GenCase(t)
			if err == nil {
				run := core.RunDiff(c.Schedule(), core.RunOpts{
					Cfg: uarch.ConfigFor(kind), TaintTrace: true,
				})
				cov.AddFromLog(run.Pair.A.Trace.TaintLog)
			}
			hist[i] = cov.Count()
		}
		series[2].Trials = append(series[2].Trials, hist)
	}

	fmt.Fprintln(w, "Figure 7: taint coverage over iterations (mean of trials)")
	fmt.Fprintf(w, "%-12s %-12s %-12s %-14s\n", "Fuzzer", "Final", "Mid", "Improvement")
	sdFinal := series[2].Final()
	for _, s := range series {
		m := s.Mean()
		mid := 0.0
		if len(m) > 0 {
			mid = m[len(m)/2]
		}
		impr := "-"
		if sdFinal > 0 {
			impr = fmt.Sprintf("%.1fx vs SpecDoctor", s.Final()/sdFinal)
		}
		fmt.Fprintf(w, "%-12s %-12.1f %-12.1f %-14s\n", s.Name, s.Final(), mid, impr)
	}

	// Saturation crossover: first DejaVuzz iteration reaching SpecDoctor's
	// final coverage.
	dv := series[0].Mean()
	cross := -1
	for i, v := range dv {
		if v >= sdFinal {
			cross = i + 1
			break
		}
	}
	fmt.Fprintf(w, "DejaVuzz reaches SpecDoctor's final coverage at iteration %d of %d\n", cross, iterations)
	return series, runErr
}

// Figure7CSV writes the raw mean series for plotting.
func Figure7CSV(w io.Writer, series []Figure7Series) {
	fmt.Fprintln(w, "fuzzer,iteration,coverage_mean")
	for _, s := range series {
		for i, v := range s.Mean() {
			fmt.Fprintf(w, "%s,%d,%.2f\n", s.Name, i+1, v)
		}
	}
}

var _ = gen.VariantDerived // keep gen import for documentation cross-refs
