package experiments

import (
	"fmt"
	"io"

	"dejavuzz/internal/uarch"
)

// Table2 prints the core-summary analogue of the paper's Table 2: the two
// evaluated configurations, their scale-model sizes (RTL-model state bits and
// cells in place of Verilog LoC) and the manual liveness-annotation effort.
func Table2(w io.Writer) {
	boom := uarch.BOOMConfig()
	xs := uarch.XiangShanConfig()
	dBoom := BuildCoreModel(boom)
	dXS := BuildCoreModel(xs)
	sb, sx := dBoom.Stats(), dXS.Stats()

	fmt.Fprintf(w, "Table 2: Summary of the cores used for evaluation\n")
	fmt.Fprintf(w, "%-28s %-18s %-18s\n", "Feature", "BOOM", "XiangShan")
	row := func(k, a, b string) { fmt.Fprintf(w, "%-28s %-18s %-18s\n", k, a, b) }
	row("Configuration", boom.Name, xs.Name)
	row("ISA", "RV64 subset", "RV64 subset")
	row("RoB entries", fmt.Sprint(boom.ROBEntries), fmt.Sprint(xs.ROBEntries))
	row("RTL-model cells", fmt.Sprint(sb.Cells), fmt.Sprint(sx.Cells))
	row("RTL-model state bits", fmt.Sprint(sb.StateBit), fmt.Sprint(sx.StateBit))
	row("RTL-model memories", fmt.Sprint(sb.Mems), fmt.Sprint(sx.Mems))
	row("Annotation LoC", fmt.Sprint(boom.AnnotationLoC), fmt.Sprint(xs.AnnotationLoC))
	row("Illegal op at decode", fmt.Sprint(boom.IllegalAtDecode), fmt.Sprint(xs.IllegalAtDecode))
	row("Transient pred. update", fmt.Sprint(boom.TransientPredictorUpdate), fmt.Sprint(xs.TransientPredictorUpdate))
	row("Injected bugs", "B2,B3,B4", "B1,B4,B5")
}
