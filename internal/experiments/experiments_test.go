package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

// TestPoCsTriggerWindows checks every hand-written attack opens its window
// on BOOM.
func TestPoCsTriggerWindows(t *testing.T) {
	cfg := uarch.BOOMConfig()
	for _, poc := range AllPoCs() {
		run := core.RunSingle(poc.Schedule.Clone(), core.RunOpts{Cfg: cfg})
		ws := run.Core.Trace.WindowSince(poc.WindowLo, poc.WindowHi, run.RT.TransientStart())
		if !ws.Triggered() {
			t.Errorf("%s: window not triggered (%+v)", poc.Name, ws)
		}
	}
}

// TestFigure6Shapes checks the taint-explosion ordering the paper reports:
// CellIFT explodes, diffIFT stays bounded, diffIFT_FN stays at or below
// diffIFT (control taints suppressed).
func TestFigure6Shapes(t *testing.T) {
	series := Figure6(io.Discard, 4000)
	byKey := map[string]Figure6Series{}
	for _, s := range series {
		byKey[s.Attack+"/"+s.Mode] = s
	}
	for _, poc := range AllPoCs() {
		cell := byKey[poc.Name+"/CellIFT"]
		diff := byKey[poc.Name+"/diffIFT"]
		fn := byKey[poc.Name+"/diffIFT_FN"]
		if diff.Peak() == 0 {
			t.Errorf("%s: diffIFT tracked no taint", poc.Name)
		}
		if cell.Peak() < diff.Peak() {
			t.Errorf("%s: CellIFT peak %d below diffIFT peak %d (no over-tainting?)",
				poc.Name, cell.Peak(), diff.Peak())
		}
		if fn.Peak() > diff.Peak() {
			t.Errorf("%s: diffIFT_FN peak %d exceeds diffIFT peak %d",
				poc.Name, fn.Peak(), diff.Peak())
		}
	}
	// The explosion must be dramatic on at least one attack (Figure 6 shows
	// CellIFT saturating orders of magnitude above diffIFT).
	exploded := false
	for _, poc := range AllPoCs() {
		if byKey[poc.Name+"/CellIFT"].Peak() > 4*byKey[poc.Name+"/diffIFT"].Peak() {
			exploded = true
		}
	}
	if !exploded {
		t.Error("no attack shows the CellIFT taint explosion")
	}
}

func TestTable2Renders(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	out := buf.String()
	for _, want := range []string{"SmallBOOM", "MinimalXiangShan", "Annotation LoC"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
}

// TestTable3Shape runs a reduced Table 3 and verifies the qualitative cells:
// DejaVuzz triggers everything (except BOOM illegal), zero ETO for exception
// windows, SpecDoctor limited to four types with ~125 overhead.
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	results := Table3(&buf, 3, 99)
	for _, res := range results {
		dv := res.Rows["DejaVuzz"]
		for _, tr := range gen.AllTriggerTypes() {
			cell := dv[tr]
			wantFail := res.Core == uarch.KindBOOM && tr == gen.TrigIllegal
			if cell.Triggerable == wantFail {
				t.Errorf("%v/%v: triggerable=%v", res.Core, tr, cell.Triggerable)
			}
			if cell.Triggerable && tr.IsException() && cell.ETO != 0 {
				t.Errorf("%v/%v: exception ETO=%.1f, want 0", res.Core, tr, cell.ETO)
			}
		}
		if res.Core == uarch.KindBOOM {
			sd := res.Rows["SpecDoctor"]
			for _, tr := range []gen.TriggerType{gen.TrigAccessFault, gen.TrigMisalign, gen.TrigIllegal, gen.TrigReturnMispred} {
				if sd[tr].Triggerable {
					t.Errorf("SpecDoctor claims %v", tr)
				}
			}
		}
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Table4(io.Discard, 2*time.Second, 6000)
	for _, r := range res {
		if !r.CellIFTTimeout && r.CompileCellIFT < r.CompileDiffIFT {
			t.Errorf("%v: CellIFT compile %v faster than diffIFT %v", r.Core, r.CompileCellIFT, r.CompileDiffIFT)
		}
		for name, times := range r.SimTimes {
			if times[1] < times[0] {
				t.Errorf("%v/%s: CellIFT sim %v faster than base %v", r.Core, name, times[1], times[0])
			}
		}
	}
}

func TestLivenessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Liveness(io.Discard, 20, 5)
	if res.Positives == 0 {
		t.Fatal("no SpecDoctor positives collected")
	}
	if res.RealLeaks == 0 {
		t.Error("no real leaks identified")
	}
	if res.RealLeaks >= res.Positives {
		t.Error("liveness analysis rejected no false positives")
	}
	if res.NoLivenessFlagged < res.RealLeaks {
		t.Error("no-liveness ablation flags fewer cases than liveness analysis")
	}
}
