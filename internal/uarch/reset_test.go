package uarch

import (
	"reflect"
	"testing"

	"dejavuzz/internal/isa"
	"dejavuzz/internal/mem"
)

// coreObservables captures everything a pipeline analysis can read off a
// finished core: trace, censuses, sinks, witnesses, counters.
type coreObservables struct {
	Cycle     int
	Committed uint64
	TrapCount int
	Insts     int
	Squashes  int
	TaintLog  int
	Census    []ModuleTaint
	Sinks     []Sink
	Regs      [32]uint64
}

func observe(c *Core) coreObservables {
	o := coreObservables{
		Cycle:     c.Cycle,
		Committed: c.Committed,
		TrapCount: c.TrapCount,
		Insts:     len(c.Trace.Insts),
		Squashes:  len(c.Trace.Squashes),
		TaintLog:  len(c.Trace.TaintLog),
		Census:    c.Census(),
		Sinks:     c.Sinks(),
	}
	for r := 0; r < 32; r++ {
		o.Regs[r], _ = c.ArchReg(r)
	}
	return o
}

// resetProbeProgram exercises speculation, memory, predictors and taint: a
// trained loop, tainted loads, a store and a final trap.
func resetProbeProgram(t *testing.T) *isa.Program {
	t.Helper()
	return isa.MustAsm(0x1000, `
		li   t0, 0x2000
		ld   t1, 0(t0)      # tainted load (secret region)
		li   t2, 4
	loop:
		addi t2, t2, -1
		andi t3, t1, 0x3f
		slli t3, t3, 3
		li   t4, 0x8000
		add  t4, t4, t3
		ld   t5, 0(t4)      # secret-indexed load
		sd   t1, 64(t4)
		bnez t2, loop
		ecall
	`)
}

// TestCoreResetEquivalence is the heart of the context-reuse refactor: a
// Reset core must be indistinguishable from a freshly constructed one. The
// same program runs on (a) a fresh core, (b) a core that already executed a
// different polluting program and was Reset, and (c) the same core Reset
// again — all three must produce identical observables.
func TestCoreResetEquivalence(t *testing.T) {
	for _, kind := range []CoreKind{KindBOOM, KindXiangShan} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := ConfigFor(kind)
			probe := resetProbeProgram(t)
			pollute := isa.MustAsm(0x1000, `
				li   t0, 0x2000
				ld   t1, 0(t0)
				li   t2, 0x9000
				sd   t1, 0(t2)
				sd   t1, 128(t2)
				jal  ra, next
			next:
				ret
				ecall
			`)

			freshRun := func(p *isa.Program) coreObservables {
				sp := testSpace(t, mem.PermRead, mem.FaultAccess)
				sp.SetTaint(0x2000, 8, true)
				loadProgram(sp, p)
				c := NewCore(cfg, sp, IFTCellIFT)
				c.TaintTraceOn = true
				c.TrapHook = HaltingHook()
				c.Restart(p.Base)
				c.Run(4000)
				return observe(c)
			}
			want := freshRun(probe)

			// One long-lived core + space, reset between runs.
			sp := testSpace(t, mem.PermRead, mem.FaultAccess)
			sp.SetTaint(0x2000, 8, true)
			loadProgram(sp, pollute)
			c := NewCore(cfg, sp, IFTCellIFT)
			c.TaintTraceOn = true
			c.TrapHook = HaltingHook()
			c.Restart(pollute.Base)
			c.Run(4000)

			for round := 0; round < 2; round++ {
				sp.Reset()
				sp.SetTaint(0x2000, 8, true)
				loadProgram(sp, probe)
				c.Reset(cfg, sp, IFTCellIFT)
				c.TaintTraceOn = true
				c.TrapHook = HaltingHook()
				c.Restart(probe.Base)
				c.Run(4000)
				got := observe(c)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("round %d: reset core diverges from fresh core:\nfresh: %+v\nreset: %+v", round, want, got)
				}
			}
		})
	}
}

// TestSpaceResetEquivalence pins mem.Space.Reset: a polluted, permission-
// mutated space must come back byte- and permission-identical to a fresh
// one.
func TestSpaceResetEquivalence(t *testing.T) {
	fresh := testSpace(t, mem.PermRead, mem.FaultAccess)
	used := testSpace(t, mem.PermRead, mem.FaultAccess)
	used.WriteRaw(0x8000, []byte{1, 2, 3, 4})
	used.SetTaint(0x8100, 16, true)
	if err := used.SetPerm("secret", 0); err != nil {
		t.Fatal(err)
	}
	used.Reset()

	for _, base := range []uint64{0x1000, 0x2000, 0x8000} {
		fr, ur := fresh.Region(base), used.Region(base)
		if fr.Perm != ur.Perm {
			t.Errorf("region %#x: perm %v after reset, want %v", base, ur.Perm, fr.Perm)
		}
		fb := fresh.ReadRaw(base, 64)
		ub := used.ReadRaw(base, 64)
		if !reflect.DeepEqual(fb, ub) {
			t.Errorf("region %#x: bytes differ after reset", base)
		}
		ft := fresh.TaintRaw(base, 64)
		ut := used.TaintRaw(base, 64)
		if !reflect.DeepEqual(ft, ut) {
			t.Errorf("region %#x: taints differ after reset", base)
		}
	}
}
