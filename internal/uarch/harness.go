package uarch

import "dejavuzz/internal/isasim"

// Pair is the differential testbench: two identical cores executing the same
// stimulus with different secrets, coupled for diffIFT control-taint gating.
type Pair struct {
	A, B *Core
}

// NewPair couples two cores. Both are switched to IFTDiff.
//
// Pairs are cheap couplings, not resettable state: the execution contexts
// in internal/core reset each Core in place (Core.Reset) and build a fresh
// two-word Pair per run.
func NewPair(a, b *Core) *Pair {
	a.Mode = IFTDiff
	b.Mode = IFTDiff
	return &Pair{A: a, B: b}
}

// Step advances both instances one cycle and resolves the cross-instance
// control-taint comparisons (the Sdiff signals of Table 1).
func (p *Pair) Step() {
	if !p.A.Halted {
		p.A.Step()
	}
	if !p.B.Halted {
		p.B.Step()
	}
	p.A.ResolveCtl(p.B)
	p.B.ResolveCtl(p.A)
}

// Run steps until both instances halt or the cycle budget expires.
// It returns each instance's cycle count — the constant-time oracle input.
func (p *Pair) Run(maxCycles int) (cyclesA, cyclesB int) {
	for n := 0; n < maxCycles && !(p.A.Halted && p.B.Halted); n++ {
		p.Step()
	}
	return p.A.Cycle, p.B.Cycle
}

// RunResult packages one simulation's observables for the fuzzing pipeline.
type RunResult struct {
	TraceA, TraceB *Trace
	CyclesA        int
	CyclesB        int
	CensusA        []ModuleTaint
	SinksA         []Sink
	TimedOut       bool
}

// RunPair executes a coupled pair to completion and collects observables.
func RunPair(p *Pair, maxCycles int) *RunResult {
	ca, cb := p.Run(maxCycles)
	return &RunResult{
		TraceA: p.A.Trace, TraceB: p.B.Trace,
		CyclesA: ca, CyclesB: cb,
		CensusA:  p.A.Census(),
		SinksA:   p.A.Sinks(),
		TimedOut: !(p.A.Halted && p.B.Halted),
	}
}

// HaltingHook returns a TrapHook that halts on the first trap — the minimal
// runtime for single-packet programs (tests and micro-benchmarks).
func HaltingHook() func(isasim.Trap) isasim.TrapAction {
	return func(isasim.Trap) isasim.TrapAction { return isasim.TrapAction{Halt: true} }
}
