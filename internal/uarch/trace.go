package uarch

import (
	"fmt"

	"dejavuzz/internal/isa"
	"dejavuzz/internal/isasim"
)

// InstRecord is one dynamic instruction's RoB IO trace: when it entered the
// reorder buffer and whether it committed or was squashed. The fuzzer's
// transient-window detection ("enqueued exceeds committed") reads this log.
type InstRecord struct {
	Seq         uint64
	PC          uint64
	Inst        isa.Inst
	EnqCycle    int
	CommitCycle int // -1 if never committed
	SquashCycle int // -1 if never squashed
	Exception   isasim.Cause
}

// Transient reports whether the instruction executed transiently (entered
// the RoB but was squashed instead of committing).
func (r *InstRecord) Transient() bool {
	return r.CommitCycle < 0 && r.SquashCycle >= 0
}

// SquashReason classifies why a squash happened.
type SquashReason int

const (
	SquashNone SquashReason = iota
	SquashBranchMispredict
	SquashJumpMispredict
	SquashReturnMispredict
	SquashMemOrdering
	SquashException
)

func (r SquashReason) String() string {
	switch r {
	case SquashBranchMispredict:
		return "branch-mispredict"
	case SquashJumpMispredict:
		return "jump-mispredict"
	case SquashReturnMispredict:
		return "return-mispredict"
	case SquashMemOrdering:
		return "memory-ordering"
	case SquashException:
		return "exception"
	}
	return "none"
}

// SquashEvent records one pipeline flush.
type SquashEvent struct {
	Cycle    int
	Reason   SquashReason
	FromSeq  uint64 // oldest squashed sequence number
	AtPC     uint64 // pc of the instruction causing the squash
	Redirect uint64
	// PredTaken marks misprediction squashes whose wrong path came from an
	// actual predictor redirect (trained state), as opposed to default
	// fall-through execution that needs no training.
	PredTaken bool
}

// TaintSample is one cycle's per-module taint census entry.
type TaintSample struct {
	Cycle   int
	Module  string
	Tainted int // state elements with any tainted bit
	Bits    int // total tainted bits
}

// Trace accumulates the RoB IO event log and (optionally) the taint log.
type Trace struct {
	Insts    []InstRecord
	Squashes []SquashEvent
	// TaintLog holds per-cycle module censuses when taint tracing is on.
	TaintLog []TaintSample
	// TaintSumByCycle is the Figure 6 series: total tainted state bits.
	TaintSumByCycle []int

	bySeq map[uint64]int
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{bySeq: make(map[uint64]int)}
}

// Reset empties the trace in place, keeping slice capacity across reuse.
func (t *Trace) Reset() {
	t.Insts = t.Insts[:0]
	t.Squashes = t.Squashes[:0]
	t.TaintLog = t.TaintLog[:0]
	t.TaintSumByCycle = t.TaintSumByCycle[:0]
	clear(t.bySeq)
}

func (t *Trace) enqueue(seq, pc uint64, in isa.Inst, cycle int) {
	t.bySeq[seq] = len(t.Insts)
	t.Insts = append(t.Insts, InstRecord{
		Seq: seq, PC: pc, Inst: in, EnqCycle: cycle, CommitCycle: -1, SquashCycle: -1,
	})
}

func (t *Trace) commit(seq uint64, cycle int, exc isasim.Cause) {
	if i, ok := t.bySeq[seq]; ok {
		t.Insts[i].CommitCycle = cycle
		t.Insts[i].Exception = exc
	}
}

func (t *Trace) squash(seq uint64, cycle int) {
	if i, ok := t.bySeq[seq]; ok && t.Insts[i].CommitCycle < 0 {
		t.Insts[i].SquashCycle = cycle
	}
}

// Record looks up a sequence number's record.
func (t *Trace) Record(seq uint64) *InstRecord {
	if i, ok := t.bySeq[seq]; ok {
		return &t.Insts[i]
	}
	return nil
}

// WindowStats summarises transient execution within a PC range.
type WindowStats struct {
	Enqueued   int
	Committed  int
	Squashed   int
	FirstCycle int // first enqueue cycle of a window instruction, -1 if none
	LastCycle  int // last squash/commit cycle of a window instruction
}

// Triggered reports the paper's transient-window criterion: more window
// instructions entered the RoB than committed.
func (w WindowStats) Triggered() bool { return w.Enqueued > w.Committed && w.Squashed > 0 }

// Window analyses the trace for instructions whose PC lies in [lo, hi).
func (t *Trace) Window(lo, hi uint64) WindowStats { return t.WindowSince(lo, hi, 0) }

// WindowSince restricts the analysis to instructions enqueued at or after
// the given cycle (the transient packet's load time, so that training-packet
// activity at the same addresses is excluded).
func (t *Trace) WindowSince(lo, hi uint64, since int) WindowStats {
	w := WindowStats{FirstCycle: -1, LastCycle: -1}
	for i := range t.Insts {
		r := &t.Insts[i]
		if r.PC < lo || r.PC >= hi || r.EnqCycle < since {
			continue
		}
		w.Enqueued++
		if w.FirstCycle < 0 || r.EnqCycle < w.FirstCycle {
			w.FirstCycle = r.EnqCycle
		}
		end := r.CommitCycle
		if r.CommitCycle >= 0 {
			w.Committed++
		}
		if r.SquashCycle >= 0 {
			w.Squashed++
			end = r.SquashCycle
		}
		if end > w.LastCycle {
			w.LastCycle = end
		}
	}
	return w
}

// TransientPCs returns the distinct PCs that executed transiently.
func (t *Trace) TransientPCs() []uint64 {
	seen := make(map[uint64]bool)
	var out []uint64
	for i := range t.Insts {
		r := &t.Insts[i]
		if r.Transient() && !seen[r.PC] {
			seen[r.PC] = true
			out = append(out, r.PC)
		}
	}
	return out
}

// String renders a compact trace summary.
func (t *Trace) String() string {
	committed, squashed := 0, 0
	for i := range t.Insts {
		if t.Insts[i].CommitCycle >= 0 {
			committed++
		}
		if t.Insts[i].SquashCycle >= 0 {
			squashed++
		}
	}
	return fmt.Sprintf("trace{insts=%d committed=%d squashed=%d flushes=%d}",
		len(t.Insts), committed, squashed, len(t.Squashes))
}
