package uarch

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dejavuzz/internal/isa"
	"dejavuzz/internal/isasim"
	"dejavuzz/internal/mem"
)

// randProgram emits a random straight-line program over registers t0-t6 and
// memory in the data region, ending with ecall.
func randProgram(rng *rand.Rand, n int) string {
	regs := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "s2", "s3"}
	r := func() string { return regs[rng.Intn(len(regs))] }
	var b strings.Builder
	b.WriteString("li a6, 0x8000\n")
	for i := 0; i < len(regs); i++ {
		fmt.Fprintf(&b, "li %s, %d\n", regs[i], rng.Intn(1<<16)-1<<15)
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0:
			fmt.Fprintf(&b, "add %s, %s, %s\n", r(), r(), r())
		case 1:
			fmt.Fprintf(&b, "sub %s, %s, %s\n", r(), r(), r())
		case 2:
			fmt.Fprintf(&b, "mul %s, %s, %s\n", r(), r(), r())
		case 3:
			fmt.Fprintf(&b, "div %s, %s, %s\n", r(), r(), r())
		case 4:
			fmt.Fprintf(&b, "rem %s, %s, %s\n", r(), r(), r())
		case 5:
			fmt.Fprintf(&b, "xor %s, %s, %s\n", r(), r(), r())
		case 6:
			fmt.Fprintf(&b, "andi %s, %s, %#x\n", r(), r(), rng.Intn(2048))
		case 7:
			fmt.Fprintf(&b, "slli %s, %s, %d\n", r(), r(), rng.Intn(32))
		case 8:
			fmt.Fprintf(&b, "sd %s, %d(a6)\n", r(), 8*rng.Intn(32))
		case 9:
			fmt.Fprintf(&b, "ld %s, %d(a6)\n", r(), 8*rng.Intn(32))
		case 10:
			fmt.Fprintf(&b, "sltu %s, %s, %s\n", r(), r(), r())
		case 11:
			fmt.Fprintf(&b, "sraw %s, %s, %s\n", r(), r(), r())
		}
	}
	b.WriteString("ecall\n")
	return b.String()
}

// TestCoSimRandomPrograms: the out-of-order core's committed architectural
// state must match the in-order golden model on random programs — the
// fundamental correctness property speculative execution must preserve.
func TestCoSimRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		src := randProgram(rng, 40)
		p := isa.MustAsm(0x1000, src)
		for _, kind := range []CoreKind{KindBOOM, KindXiangShan} {
			sp := mem.NewSpace()
			sp.MustAddRegion(mem.Region{Name: "all", Base: 0x1000, Size: 0x10000,
				Perm: mem.PermRead | mem.PermWrite | mem.PermExec})
			sp.WriteRaw(p.Base, p.Bytes())

			gold := isasim.New(sp.Clone(), 0x1000)
			gold.Run(5000)

			c := NewCore(ConfigFor(kind), sp, IFTOff)
			c.TrapHook = HaltingHook()
			c.Restart(0x1000)
			c.Run(20000)
			if !c.Halted {
				t.Fatalf("trial %d %v: core did not halt", trial, kind)
			}
			for r := 1; r < 32; r++ {
				got, _ := c.ArchReg(r)
				if got != gold.X[r] {
					t.Fatalf("trial %d %v: %s = %#x, golden %#x\nprogram:\n%s",
						trial, kind, isa.RegName(r), got, gold.X[r], src)
				}
			}
			// Memory effects must match as well.
			for off := uint64(0); off < 32*8; off += 8 {
				gv, _ := gold.Mem.Read64(0x8000 + off)
				cv, _ := c.Mem.Read64(0x8000 + off)
				if gv != cv {
					t.Fatalf("trial %d %v: mem[%#x] = %#x, golden %#x",
						trial, kind, 0x8000+off, cv, gv)
				}
			}
		}
	}
}

// TestCoSimBranchyPrograms: programs with data-dependent forward branches
// must also commit identically despite mispredictions.
func TestCoSimBranchyPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		var b strings.Builder
		b.WriteString("li a6, 0x8000\nli s0, 0\n")
		for i := 0; i < 10; i++ {
			v1, v2 := rng.Intn(8), rng.Intn(8)
			fmt.Fprintf(&b, "li t0, %d\nli t1, %d\n", v1, v2)
			fmt.Fprintf(&b, "beq t0, t1, skip%d\n", i)
			fmt.Fprintf(&b, "addi s0, s0, %d\n", i+1)
			fmt.Fprintf(&b, "skip%d:\n", i)
			fmt.Fprintf(&b, "addi s1, s1, 1\n")
		}
		b.WriteString("ecall\n")
		p := isa.MustAsm(0x1000, b.String())

		sp := mem.NewSpace()
		sp.MustAddRegion(mem.Region{Name: "all", Base: 0x1000, Size: 0x10000,
			Perm: mem.PermRead | mem.PermWrite | mem.PermExec})
		sp.WriteRaw(p.Base, p.Bytes())

		gold := isasim.New(sp.Clone(), 0x1000)
		gold.Run(5000)

		c := NewCore(BOOMConfig(), sp, IFTOff)
		c.TrapHook = HaltingHook()
		c.Restart(0x1000)
		c.Run(20000)
		if got, _ := c.ArchReg(8); got != gold.X[8] {
			t.Fatalf("trial %d: s0 = %d, golden %d", trial, got, gold.X[8])
		}
		if got, _ := c.ArchReg(9); got != gold.X[9] {
			t.Fatalf("trial %d: s1 = %d, golden %d", trial, got, gold.X[9])
		}
	}
}

// TestTraceInvariants runs the trace validator over random programs on both
// cores: commits in order, no commit+squash overlap, no squash holes.
func TestTraceInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 10; trial++ {
		src := randProgram(rng, 30)
		p := isa.MustAsm(0x1000, src)
		for _, kind := range []CoreKind{KindBOOM, KindXiangShan} {
			sp := mem.NewSpace()
			sp.MustAddRegion(mem.Region{Name: "all", Base: 0x1000, Size: 0x10000,
				Perm: mem.PermRead | mem.PermWrite | mem.PermExec})
			sp.WriteRaw(p.Base, p.Bytes())
			c := NewCore(ConfigFor(kind), sp, IFTOff)
			c.TrapHook = HaltingHook()
			c.Restart(0x1000)
			c.Run(20000)
			if err := ValidateTrace(c.Trace); err != nil {
				t.Fatalf("trial %d %v: %v\nprogram:\n%s", trial, kind, err, src)
			}
		}
	}
}

// TestTraceInvariantsUnderSpeculation validates the trace of a heavily
// speculating program (the Spectre-V1 shape) as well.
func TestTraceInvariantsUnderSpeculation(t *testing.T) {
	sp := testSpace(t, mem.PermRead, mem.FaultAccess)
	p := isa.MustAsm(0x1000, `
		li   a3, 3
	loop:
		li   a0, 1
		beq  a0, a0, taken
		nop
	taken:
		addi a3, a3, -1
		bnez a3, loop
		li   a0, 36
		li   a1, 3
		div  a0, a0, a1
		div  a0, a0, a1
		beq  a0, a1, never
		j    done
	never:
		la   t0, 0x2000
		ld   s0, 0(t0)
	done:
		ecall
	`)
	loadProgram(sp, p)
	c := runCore(t, BOOMConfig(), sp, 0x1000, 5000)
	if err := ValidateTrace(c.Trace); err != nil {
		t.Fatal(err)
	}
	if len(c.Trace.Squashes) == 0 {
		t.Fatal("program did not speculate at all")
	}
}
