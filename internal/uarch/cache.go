package uarch

import (
	"math/bits"

	"dejavuzz/internal/mem"
)

// mshr is a miss status holding register: it tracks an in-flight refill.
// Liveness semantics follow the paper's LFB example: once readyAt passes,
// the MSHR goes invalid but the line-fill buffer keeps its (now dead) data.
type mshr struct {
	valid   bool
	addr    uint64 // line-aligned
	readyAt int
}

// lfbEntry is one line-fill buffer slot paired with an MSHR.
type lfbEntry struct {
	addr  uint64
	data  []uint64
	taint []uint64
	used  bool
}

// Cache is a set-associative, taint-shadowed cache with MSHRs and a line
// fill buffer. Fill state (tags) persists across pipeline squashes — this is
// the classic transient side channel the fuzzer probes.
type Cache struct {
	Name string
	cfg  CacheConfig

	tags  [][]uint64
	valid [][]bool
	lru   [][]int
	data  [][][]uint64
	dataT [][][]uint64
	tagT  [][]uint64 // control taint: which line's *presence* is secret-dependent

	mshrs []mshr
	lfb   []lfbEntry

	space *mem.Space

	// fetchBusyUntil models the B4 mechanism for the icache: an in-flight
	// refill occupies the fetch port even if the requesting fetch squashes.
	fetchBusyUntil int

	Accesses int
	Misses   int
}

// NewCache builds a cache over the backing space.
func NewCache(name string, cfg CacheConfig, space *mem.Space) *Cache {
	c := &Cache{Name: name, cfg: cfg, space: space}
	words := cfg.LineBytes / 8
	c.tags = make([][]uint64, cfg.Sets)
	c.valid = make([][]bool, cfg.Sets)
	c.lru = make([][]int, cfg.Sets)
	c.data = make([][][]uint64, cfg.Sets)
	c.dataT = make([][][]uint64, cfg.Sets)
	c.tagT = make([][]uint64, cfg.Sets)
	for s := 0; s < cfg.Sets; s++ {
		c.tags[s] = make([]uint64, cfg.Ways)
		c.valid[s] = make([]bool, cfg.Ways)
		c.lru[s] = make([]int, cfg.Ways)
		c.tagT[s] = make([]uint64, cfg.Ways)
		c.data[s] = make([][]uint64, cfg.Ways)
		c.dataT[s] = make([][]uint64, cfg.Ways)
		for w := 0; w < cfg.Ways; w++ {
			c.data[s][w] = make([]uint64, words)
			c.dataT[s][w] = make([]uint64, words)
		}
	}
	c.mshrs = make([]mshr, cfg.MSHRs)
	c.lfb = make([]lfbEntry, cfg.MSHRs)
	for i := range c.lfb {
		c.lfb[i].data = make([]uint64, words)
		c.lfb[i].taint = make([]uint64, words)
	}
	return c
}

// Reusable reports whether the cache's allocations fit a configuration and
// backing space, i.e. whether Reset can stand in for NewCache(name, cfg, space).
func (c *Cache) Reusable(cfg CacheConfig, space *mem.Space) bool {
	return c.cfg == cfg && c.space == space
}

// Reset returns the cache to its construction-time state in place: all
// lines invalidated, LRU ages, taint shadows, MSHRs, line-fill buffers and
// statistics zeroed. After Reset the cache is indistinguishable from a
// freshly built one over the same configuration and space.
func (c *Cache) Reset() {
	for s := range c.tags {
		for w := range c.tags[s] {
			c.tags[s][w] = 0
			c.valid[s][w] = false
			c.lru[s][w] = 0
			c.tagT[s][w] = 0
			data, dataT := c.data[s][w], c.dataT[s][w]
			for i := range data {
				data[i] = 0
				dataT[i] = 0
			}
		}
	}
	for i := range c.mshrs {
		c.mshrs[i] = mshr{}
	}
	for i := range c.lfb {
		e := &c.lfb[i]
		e.addr = 0
		e.used = false
		for j := range e.data {
			e.data[j] = 0
			e.taint[j] = 0
		}
	}
	c.fetchBusyUntil = 0
	c.Accesses = 0
	c.Misses = 0
}

func (c *Cache) lineAddr(addr uint64) uint64 { return addr &^ uint64(c.cfg.LineBytes-1) }
func (c *Cache) setOf(addr uint64) int {
	return int(addr / uint64(c.cfg.LineBytes) % uint64(c.cfg.Sets))
}
func (c *Cache) tagOf(addr uint64) uint64 {
	return addr / uint64(c.cfg.LineBytes) / uint64(c.cfg.Sets)
}

// AccessResult reports the outcome of a cache access.
type AccessResult struct {
	Latency int
	Hit     bool
	Set     int
	Way     int
}

func (c *Cache) findWay(set int, tag uint64) int {
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			return w
		}
	}
	return -1
}

func (c *Cache) touch(set, way int) {
	for w := 0; w < c.cfg.Ways; w++ {
		c.lru[set][w]++
	}
	c.lru[set][way] = 0
}

func (c *Cache) victim(set int) int {
	vw, age := 0, -1
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.valid[set][w] {
			return w
		}
		if c.lru[set][w] > age {
			age = c.lru[set][w]
			vw = w
		}
	}
	return vw
}

// Probe reports hit/miss without side effects (used by timing receivers).
func (c *Cache) Probe(addr uint64) bool {
	return c.findWay(c.setOf(addr), c.tagOf(addr)) >= 0
}

// Access performs a (possibly filling) cache access at the given cycle and
// returns latency and placement. The fill reads backing memory through the
// raw (permission-free) path: refills are a microarchitectural action.
func (c *Cache) Access(addr uint64, cycle int) AccessResult {
	c.Accesses++
	line := c.lineAddr(addr)
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	if w := c.findWay(set, tag); w >= 0 {
		c.touch(set, w)
		return AccessResult{Latency: c.cfg.HitLat, Hit: true, Set: set, Way: w}
	}
	c.Misses++
	// Merge with an in-flight MSHR for the same line.
	lat := c.cfg.MissLat
	mi := -1
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.valid && cycle >= m.readyAt {
			m.valid = false // retire completed refill; LFB data goes stale
		}
		if m.valid && m.addr == line {
			if rem := m.readyAt - cycle; rem > 0 {
				lat = rem
			} else {
				lat = c.cfg.HitLat
			}
			mi = i
			break
		}
	}
	if mi < 0 {
		// Allocate an MSHR; stall for the oldest if all busy.
		free := -1
		oldest := 0
		for i := range c.mshrs {
			if !c.mshrs[i].valid {
				free = i
				break
			}
			if c.mshrs[i].readyAt < c.mshrs[oldest].readyAt {
				oldest = i
			}
		}
		if free < 0 {
			stall := c.mshrs[oldest].readyAt - cycle
			if stall < 0 {
				stall = 0
			}
			lat += stall
			c.mshrs[oldest].valid = false
			free = oldest
		}
		c.mshrs[free] = mshr{valid: true, addr: line, readyAt: cycle + lat}
		mi = free
	}
	// Perform the fill now (timing is charged via lat); stage through LFB.
	way := c.victim(set)
	c.tags[set][way] = tag
	c.valid[set][way] = true
	c.tagT[set][way] = 0
	c.touch(set, way)
	words := c.cfg.LineBytes / 8
	for i := 0; i < words; i++ {
		v, t := c.space.Read64(line + uint64(i*8))
		c.data[set][way][i] = v
		c.dataT[set][way][i] = t
		c.lfb[mi].data[i] = v
		c.lfb[mi].taint[i] = t
	}
	c.lfb[mi].addr = line
	c.lfb[mi].used = true
	return AccessResult{Latency: lat, Hit: false, Set: set, Way: way}
}

// TaintTag marks a line's presence as secret-dependent (applied by the
// control-taint fabric when a tainted address selected the fill).
func (c *Cache) TaintTag(set, way int) {
	if set < len(c.tagT) && way < len(c.tagT[set]) {
		c.tagT[set][way] = ^uint64(0)
	}
}

// Read64 returns the cached word and taint at addr (must be resident).
func (c *Cache) Read64(addr uint64) (v, t uint64) {
	set := c.setOf(addr)
	if w := c.findWay(set, c.tagOf(addr)); w >= 0 {
		idx := int(addr%uint64(c.cfg.LineBytes)) / 8
		return c.data[set][w][idx], c.dataT[set][w][idx]
	}
	return c.space.Read64(addr)
}

// Write64 updates a resident line (write-through to backing memory).
func (c *Cache) Write64(addr uint64, v, t uint64) {
	set := c.setOf(addr)
	if w := c.findWay(set, c.tagOf(addr)); w >= 0 {
		idx := int(addr%uint64(c.cfg.LineBytes)) / 8
		c.data[set][w][idx] = v
		c.dataT[set][w][idx] = t
	}
	c.space.Write64(addr, v, t)
}

// FlushAll invalidates every line (the swap runtime's icache flush).
// Taint shadows are cleared with the data: flushed lines hold nothing.
func (c *Cache) FlushAll() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
			c.tagT[s][w] = 0
			for i := range c.dataT[s][w] {
				c.dataT[s][w][i] = 0
			}
		}
	}
}

// MSHRLive reports whether any MSHR tracking the LFB slot i is still valid.
func (c *Cache) MSHRLive(i int, cycle int) bool {
	return c.mshrs[i].valid && cycle < c.mshrs[i].readyAt
}

// Census counts tainted state elements and bits: cache lines (tag or data
// taint) and LFB slots.
func (c *Cache) Census() (tainted, bitCount int) {
	for s := range c.tags {
		for w := range c.tags[s] {
			elemBits := 0
			elemBits += bits.OnesCount64(c.tagT[s][w])
			for _, t := range c.dataT[s][w] {
				elemBits += bits.OnesCount64(t)
			}
			if elemBits > 0 {
				tainted++
				bitCount += elemBits
			}
		}
	}
	return tainted, bitCount
}

// LFBCensus counts tainted line-fill-buffer slots; live reports only those
// whose MSHR is still valid (the liveness-annotated view).
func (c *Cache) LFBCensus(cycle int) (tainted, live int) {
	for i := range c.lfb {
		if !c.lfb[i].used {
			continue
		}
		any := false
		for _, t := range c.lfb[i].taint {
			if t != 0 {
				any = true
				break
			}
		}
		if any {
			tainted++
			if c.MSHRLive(i, cycle) {
				live++
			}
		}
	}
	return tainted, live
}

// TaintedLines returns (set, way) pairs whose tag is control-tainted: the
// secret-indexed fills that a prime+probe receiver could observe.
type LinePos struct{ Set, Way int }

// TaintedLinePositions lists lines with tag taint and whether each is valid.
func (c *Cache) TaintedLinePositions() []LinePos {
	var out []LinePos
	for s := range c.tagT {
		for w := range c.tagT[s] {
			if c.tagT[s][w] != 0 && c.valid[s][w] {
				out = append(out, LinePos{Set: s, Way: w})
			}
		}
	}
	return out
}
