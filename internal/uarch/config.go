// Package uarch implements a cycle-accurate, speculative out-of-order RISC-V
// core model with taint-tracked microarchitectural state.
//
// The model is the reproduction substrate for the two cores the paper
// evaluates: a SmallBOOM-like configuration and a XiangShan-MinimalConfig-like
// configuration. It executes real encoded instructions fetched through an
// instruction cache, speculates through branch prediction, raises exceptions
// at commit, and leaves behind exactly the classes of microarchitectural
// residue (cache fills, TLB fills, predictor updates, buffer contents, port
// contention) that transient execution attacks encode secrets into.
//
// Every state element carries a taint shadow propagated with the policies in
// internal/ift, in one of three modes: off, CellIFT (control over-tainting),
// or diffIFT (control taints gated on cross-instance differences).
package uarch

// CoreKind distinguishes the two modelled cores.
type CoreKind int

const (
	KindBOOM CoreKind = iota
	KindXiangShan
)

func (k CoreKind) String() string {
	if k == KindXiangShan {
		return "XiangShan"
	}
	return "BOOM"
}

// BugSet gates the injected transient-execution bugs (the paper's B1-B5).
type BugSet struct {
	// MeltdownSampling (B1, CVE-2024-44594, XiangShan): inconsistent wire
	// widths truncate the high bits of an illegal load address on the
	// pipeline->load-unit path, so the transient data access samples the
	// truncated (valid) address while the fault check sees the full one.
	MeltdownSampling bool
	// PhantomRSB (B2, CVE-2024-44591, BOOM): transient calls update return
	// stack entries; misprediction recovery restores only the TOS pointer
	// and the top entry, leaving corrupted entries below TOS.
	PhantomRSB bool
	// PhantomBTB (B3, CVE-2024-44590, BOOM): when an indirect-jump
	// misprediction resolves in the same cycle as an exception commit, the
	// jump's BTB correction is applied to the excepting instruction's PC.
	PhantomBTB bool
	// SpectreRefetch (B4, CVE-2024-44592/44593, both): a transient fetch
	// that misses the icache keeps the fetch port busy across the squash,
	// delaying the first post-window fetch.
	SpectreRefetch bool
	// SpectreReload (B5, CVE-2024-44595, XiangShan): the load pipeline and
	// the load queue contend on a single load write-back port, so transient
	// cache-hitting loads delay the write-back of an earlier cache-missing
	// load.
	SpectreReload bool
}

// CacheConfig sizes one cache.
type CacheConfig struct {
	Sets      int
	Ways      int
	LineBytes int
	HitLat    int
	MissLat   int
	MSHRs     int
}

// TLBConfig sizes one TLB level.
type TLBConfig struct {
	Entries  int
	HitLat   int
	MissLat  int // added latency on miss into the next level / page walk
	PageBits uint
}

// Config describes a core instance.
type Config struct {
	Name string
	Kind CoreKind

	FetchWidth  int
	DecodeWidth int
	CommitWidth int
	ROBEntries  int
	LDQEntries  int
	STQEntries  int

	// Frontend predictors.
	BHTEntries    int
	BTBEntries    int
	FauBTBEntries int // first-level (zero-bubble) BTB
	RASEntries    int
	LoopEntries   int
	LoopTripMax   int // taken streak after which the loop predictor predicts exit
	// IndirectMinConf is how many consistent trainings the indirect target
	// predictor needs before providing a prediction (XiangShan-style target
	// confidence; BOOM predicts after one).
	IndirectMinConf int

	ICache CacheConfig
	DCache CacheConfig
	ITLB   TLBConfig
	DTLB   TLBConfig
	L2TLB  TLBConfig

	// Execution resources.
	ALUs        int
	LoadPorts   int
	LoadWBPorts int
	FPUs        int
	MulLat      int
	DivLat      int
	FPULat      int
	FDivLat     int

	// Microarchitectural policy switches (the behaviours the fuzzer probes).
	IllegalAtDecode          bool // BOOM: illegal instrs flush at decode (no window)
	TransientLoadForward     bool // Meltdown root cause: faulting loads forward data
	TransientPredictorUpdate bool // predictors update from squashed instructions

	// TrapLatency is the cycle count between recognising a trap at the RoB
	// head and completing the pipeline flush. Younger instructions keep
	// executing during this drain — it is the exception-type transient
	// window's length.
	TrapLatency int

	// PhysAddrBits is the truncated address width on the pipeline->LSU path
	// (only consulted when Bugs.MeltdownSampling is set).
	PhysAddrBits uint

	Bugs BugSet

	// AnnotationLoC is the documented manual liveness-annotation effort for
	// the Table 2 analogue.
	AnnotationLoC int
}

// BOOMConfig returns the SmallBOOM-like core. The published bugs B2-B4 are
// enabled by default, mirroring the (unfixed) BOOM the paper evaluated.
func BOOMConfig() Config {
	return Config{
		Name: "SmallBOOM", Kind: KindBOOM,
		FetchWidth: 2, DecodeWidth: 2, CommitWidth: 2,
		ROBEntries: 32, LDQEntries: 8, STQEntries: 8,
		BHTEntries: 128, BTBEntries: 32, FauBTBEntries: 8,
		RASEntries: 8, LoopEntries: 16, LoopTripMax: 7,
		IndirectMinConf: 1,
		ICache:          CacheConfig{Sets: 16, Ways: 2, LineBytes: 32, HitLat: 1, MissLat: 12, MSHRs: 2},
		DCache:          CacheConfig{Sets: 16, Ways: 2, LineBytes: 32, HitLat: 2, MissLat: 16, MSHRs: 2},
		ITLB:            TLBConfig{Entries: 8, HitLat: 0, MissLat: 4, PageBits: 12},
		DTLB:            TLBConfig{Entries: 8, HitLat: 0, MissLat: 4, PageBits: 12},
		L2TLB:           TLBConfig{Entries: 32, HitLat: 2, MissLat: 20, PageBits: 12},
		ALUs:            2, LoadPorts: 1, LoadWBPorts: 2, FPUs: 1,
		MulLat: 3, DivLat: 16, FPULat: 4, FDivLat: 20,
		IllegalAtDecode:          true,
		TransientLoadForward:     true,
		TransientPredictorUpdate: true,
		TrapLatency:              24,
		PhysAddrBits:             32,
		Bugs: BugSet{
			PhantomRSB:     true,
			PhantomBTB:     true,
			SpectreRefetch: true,
		},
		AnnotationLoC: 212,
	}
}

// XiangShanConfig returns the MinimalConfig-like core: larger structures,
// squash-protected predictors, and the published bugs B1/B4/B5.
func XiangShanConfig() Config {
	return Config{
		Name: "MinimalXiangShan", Kind: KindXiangShan,
		FetchWidth: 2, DecodeWidth: 2, CommitWidth: 2,
		ROBEntries: 48, LDQEntries: 16, STQEntries: 16,
		BHTEntries: 256, BTBEntries: 64, FauBTBEntries: 16,
		RASEntries: 16, LoopEntries: 32, LoopTripMax: 7,
		IndirectMinConf: 2,
		ICache:          CacheConfig{Sets: 32, Ways: 2, LineBytes: 32, HitLat: 1, MissLat: 14, MSHRs: 4},
		DCache:          CacheConfig{Sets: 32, Ways: 4, LineBytes: 32, HitLat: 2, MissLat: 18, MSHRs: 4},
		ITLB:            TLBConfig{Entries: 16, HitLat: 0, MissLat: 4, PageBits: 12},
		DTLB:            TLBConfig{Entries: 16, HitLat: 0, MissLat: 4, PageBits: 12},
		L2TLB:           TLBConfig{Entries: 64, HitLat: 2, MissLat: 24, PageBits: 12},
		ALUs:            3, LoadPorts: 2, LoadWBPorts: 1, FPUs: 1,
		MulLat: 3, DivLat: 16, FPULat: 4, FDivLat: 20,
		IllegalAtDecode:          false, // illegal instrs trap at commit: window exists
		TransientLoadForward:     true,
		TransientPredictorUpdate: false, // predictor updates are squash-protected
		TrapLatency:              28,
		PhysAddrBits:             16, // B1 truncation: low 16 bits survive
		Bugs: BugSet{
			MeltdownSampling: true,
			SpectreRefetch:   true,
			SpectreReload:    true,
		},
		AnnotationLoC: 592,
	}
}

// ConfigFor returns the preset for a core kind.
func ConfigFor(kind CoreKind) Config {
	if kind == KindXiangShan {
		return XiangShanConfig()
	}
	return BOOMConfig()
}
