package uarch

import "math/bits"

// tlbEntry caches one page translation. The model uses identity mapping, so
// the interesting state is *which* pages are cached (a timing channel) and
// the taint on the entry (a secret-indexed page walk).
type tlbEntry struct {
	valid bool
	vpn   uint64
	taint uint64
	lru   int
}

// TLB is one translation lookaside buffer level.
type TLB struct {
	Name    string
	cfg     TLBConfig
	entries []tlbEntry
	next    *TLB // next level (L2); nil means page walk

	Accesses int
	Misses   int
}

// NewTLB builds a TLB; next may be nil for the last level.
func NewTLB(name string, cfg TLBConfig, next *TLB) *TLB {
	return &TLB{Name: name, cfg: cfg, entries: make([]tlbEntry, cfg.Entries), next: next}
}

// Reset returns the TLB to its construction-time state in place (entries
// and statistics zeroed; the next-level link is untouched).
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
	t.Accesses = 0
	t.Misses = 0
}

func (t *TLB) vpn(addr uint64) uint64 { return addr >> t.cfg.PageBits }

// Lookup translates addr, returning the added latency. Fills persist across
// squashes (transient page walks are visible), making the TLB an encodable
// timing component.
func (t *TLB) Lookup(addr uint64) (lat int) {
	t.Accesses++
	vpn := t.vpn(addr)
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			t.touch(i)
			return t.cfg.HitLat
		}
	}
	t.Misses++
	lat = t.cfg.MissLat
	if t.next != nil {
		lat += t.next.Lookup(addr)
	}
	t.fill(vpn, 0)
	return t.cfg.HitLat + lat
}

func (t *TLB) touch(idx int) {
	for i := range t.entries {
		t.entries[i].lru++
	}
	t.entries[idx].lru = 0
}

func (t *TLB) fill(vpn, taint uint64) {
	victim := 0
	age := -1
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			age = 1 << 30
			break
		}
		if t.entries[i].lru > age {
			age = t.entries[i].lru
			victim = i
		}
	}
	t.entries[victim] = tlbEntry{valid: true, vpn: vpn, taint: taint}
	t.touch(victim)
}

// TaintPage marks the entry translating addr as secret-dependent (a fill
// selected by a tainted address).
func (t *TLB) TaintPage(addr uint64) {
	vpn := t.vpn(addr)
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].vpn == vpn {
			t.entries[i].taint = ^uint64(0)
		}
	}
	if t.next != nil {
		t.next.TaintPage(addr)
	}
}

// FlushAll invalidates all entries.
func (t *TLB) FlushAll() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
}

// Census counts tainted entries and bits.
func (t *TLB) Census() (tainted, bitCount int) {
	for i := range t.entries {
		if t.entries[i].taint != 0 {
			tainted++
			bitCount += bits.OnesCount64(t.entries[i].taint)
		}
	}
	return tainted, bitCount
}
