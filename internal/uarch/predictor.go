package uarch

import "math/bits"

// BHT is a table of 2-bit saturating counters indexed by PC.
type BHT struct {
	counters []uint8
	taint    []uint64
}

// NewBHT builds a branch history table initialised strongly-not-taken, so a
// taken prediction requires two consistent trainings.
func NewBHT(entries int) *BHT {
	return &BHT{counters: make([]uint8, entries), taint: make([]uint64, entries)}
}

// Reset zeroes every counter and taint shadow in place (the strongly-not-
// taken construction state).
func (b *BHT) Reset() {
	for i := range b.counters {
		b.counters[i] = 0
		b.taint[i] = 0
	}
}

func (b *BHT) index(pc uint64) int { return int(pc>>2) % len(b.counters) }

// Predict returns the predicted direction for the branch at pc.
func (b *BHT) Predict(pc uint64) bool { return b.counters[b.index(pc)] >= 2 }

// Update trains the counter with the resolved direction.
func (b *BHT) Update(pc uint64, taken bool, taint uint64) {
	i := b.index(pc)
	if taken {
		if b.counters[i] < 3 {
			b.counters[i]++
		}
	} else if b.counters[i] > 0 {
		b.counters[i]--
	}
	b.taint[i] |= taint
}

// Census counts tainted entries/bits.
func (b *BHT) Census() (tainted, bitCount int) { return censusU64(b.taint) }

// btbEntry maps a branch PC to its last-seen target.
type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	taint  uint64
	conf   int
}

// BTB is a direct-mapped branch target buffer. FauBTB uses the same shape
// with fewer entries (the zero-bubble first-level predictor); the indirect
// target predictor uses it with a confidence threshold: XiangShan-style
// target predictors only provide a prediction after repeated consistent
// trainings, which is why untargeted random training cannot trigger indirect
// jump mispredictions there (Table 3, DejaVuzz* row).
type BTB struct {
	Name    string
	entries []btbEntry
	minConf int
}

// NewBTB builds a branch target buffer that predicts after one training.
func NewBTB(name string, entries int) *BTB { return NewBTBConf(name, entries, 1) }

// NewBTBConf builds a target buffer requiring minConf consistent trainings.
func NewBTBConf(name string, entries, minConf int) *BTB {
	if minConf < 1 {
		minConf = 1
	}
	return &BTB{Name: name, entries: make([]btbEntry, entries), minConf: minConf}
}

// Reusable reports whether the buffer's allocation and confidence threshold
// fit a configuration, i.e. whether Reset can stand in for NewBTBConf.
func (b *BTB) Reusable(entries, minConf int) bool {
	if minConf < 1 {
		minConf = 1
	}
	return len(b.entries) == entries && b.minConf == minConf
}

// Reset invalidates every entry in place.
func (b *BTB) Reset() {
	for i := range b.entries {
		b.entries[i] = btbEntry{}
	}
}

func (b *BTB) index(pc uint64) int { return int(pc>>2) % len(b.entries) }

// Predict returns the cached target for pc, if confident.
func (b *BTB) Predict(pc uint64) (target uint64, hit bool) {
	e := &b.entries[b.index(pc)]
	if e.valid && e.tag == pc && e.conf >= b.minConf {
		return e.target, true
	}
	return 0, false
}

// Update records a taken-control-flow target, tracking target stability.
func (b *BTB) Update(pc, target uint64, taint uint64) {
	e := &b.entries[b.index(pc)]
	if e.valid && e.tag == pc && e.target == target {
		e.conf++
	} else {
		e.conf = 1
	}
	e.valid = true
	e.tag = pc
	e.target = target
	e.taint |= taint
	if taint != 0 {
		e.taint = ^uint64(0)
	}
}

// Census counts tainted entries/bits.
func (b *BTB) Census() (tainted, bitCount int) {
	for i := range b.entries {
		if b.entries[i].taint != 0 {
			tainted++
			bitCount += bits.OnesCount64(b.entries[i].taint)
		}
	}
	return tainted, bitCount
}

// RAS is the return address stack. Snapshotting granularity models the two
// recovery schemes the paper contrasts: full restore (XiangShan) versus
// BOOM's buggy TOS-and-top-entry-only restore (Phantom-RSB, B2).
type RAS struct {
	stack []uint64
	taint []uint64
	tos   int // index of next free slot; top entry is stack[tos-1]

	// snap memoises the last Snapshot between mutations: the frontend
	// snapshots per fetched instruction but the stack only changes on
	// calls/returns, so most fetches share one immutable snapshot instead
	// of allocating a copy each.
	snap      RASSnapshot
	snapValid bool
}

// NewRAS builds a return address stack.
func NewRAS(entries int) *RAS {
	return &RAS{stack: make([]uint64, entries), taint: make([]uint64, entries)}
}

// Reset empties the stack in place.
func (r *RAS) Reset() {
	for i := range r.stack {
		r.stack[i] = 0
		r.taint[i] = 0
	}
	r.tos = 0
	r.snapValid = false
	r.snap = RASSnapshot{}
}

func (r *RAS) wrap(i int) int {
	n := len(r.stack)
	return ((i % n) + n) % n
}

// Push records a call's return address.
func (r *RAS) Push(addr, taint uint64) {
	r.stack[r.wrap(r.tos)] = addr
	r.taint[r.wrap(r.tos)] = taint
	r.tos++
	r.snapValid = false
}

// Pop predicts a return target.
func (r *RAS) Pop() (addr, taint uint64) {
	r.tos--
	r.snapValid = false
	return r.stack[r.wrap(r.tos)], r.taint[r.wrap(r.tos)]
}

// Snapshot captures the full stack state.
type RASSnapshot struct {
	TOS   int
	Stack []uint64
	Taint []uint64
}

// Snapshot copies the current state. Consecutive snapshots with no
// intervening mutation share one immutable copy; holders must treat the
// snapshot's slices as read-only (every consumer restores FROM them).
func (r *RAS) Snapshot() RASSnapshot {
	if r.snapValid {
		return r.snap
	}
	s := RASSnapshot{TOS: r.tos, Stack: make([]uint64, len(r.stack)), Taint: make([]uint64, len(r.taint))}
	copy(s.Stack, r.stack)
	copy(s.Taint, r.taint)
	r.snap = s
	r.snapValid = true
	return s
}

// Restore recovers from a snapshot. With buggyTopOnly (BOOM), only the TOS
// pointer and the top entry are restored: transient overwrites of deeper
// entries survive — the Phantom-RSB leak.
func (r *RAS) Restore(s RASSnapshot, buggyTopOnly bool) {
	r.snapValid = false
	if buggyTopOnly {
		r.tos = s.TOS
		top := r.wrap(r.tos - 1)
		r.stack[top] = s.Stack[top]
		r.taint[top] = s.Taint[top]
		return
	}
	r.tos = s.TOS
	copy(r.stack, s.Stack)
	copy(r.taint, s.Taint)
}

// Census counts tainted entries/bits.
func (r *RAS) Census() (tainted, bitCount int) { return censusU64(r.taint) }

// loopEntry tracks a loop branch's trip behaviour.
type loopEntry struct {
	valid   bool
	tag     uint64
	streak  int // consecutive taken count
	trained bool
	trip    int
	taint   uint64
}

// LoopPredictor predicts loop exits: after observing a stable trip count it
// predicts not-taken on the final iteration.
type LoopPredictor struct {
	entries []loopEntry
	tripMax int
}

// NewLoopPredictor builds a loop predictor.
func NewLoopPredictor(entries, tripMax int) *LoopPredictor {
	return &LoopPredictor{entries: make([]loopEntry, entries), tripMax: tripMax}
}

// Reusable reports whether the predictor's allocation and trip threshold fit
// a configuration, i.e. whether Reset can stand in for NewLoopPredictor.
func (l *LoopPredictor) Reusable(entries, tripMax int) bool {
	return len(l.entries) == entries && l.tripMax == tripMax
}

// Reset invalidates every entry in place.
func (l *LoopPredictor) Reset() {
	for i := range l.entries {
		l.entries[i] = loopEntry{}
	}
}

func (l *LoopPredictor) index(pc uint64) int { return int(pc>>2) % len(l.entries) }

// Predict returns (override, taken): override is true when the predictor has
// confidence about this branch.
func (l *LoopPredictor) Predict(pc uint64) (override, taken bool) {
	e := &l.entries[l.index(pc)]
	if !e.valid || e.tag != pc || !e.trained {
		return false, false
	}
	// Predict taken until the trip count is reached.
	return true, e.streak < e.trip
}

// Update trains on a resolved direction.
func (l *LoopPredictor) Update(pc uint64, taken bool, taint uint64) {
	e := &l.entries[l.index(pc)]
	if !e.valid || e.tag != pc {
		*e = loopEntry{valid: true, tag: pc}
	}
	e.taint |= taint
	if taken {
		e.streak++
		if e.streak > l.tripMax && !e.trained {
			// Long-running loop: train with the observed streak as the trip.
			e.trained = true
			e.trip = e.streak
		}
	} else {
		if e.streak > 0 && !e.trained {
			e.trained = true
			e.trip = e.streak
		}
		e.streak = 0
	}
}

// Census counts tainted entries/bits.
func (l *LoopPredictor) Census() (tainted, bitCount int) {
	for i := range l.entries {
		if l.entries[i].taint != 0 {
			tainted++
			bitCount += bits.OnesCount64(l.entries[i].taint)
		}
	}
	return tainted, bitCount
}

func censusU64(ts []uint64) (tainted, bitCount int) {
	for _, t := range ts {
		if t != 0 {
			tainted++
			bitCount += bits.OnesCount64(t)
		}
	}
	return tainted, bitCount
}
