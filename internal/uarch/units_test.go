package uarch

import (
	"testing"
	"testing/quick"

	"dejavuzz/internal/mem"
)

func newTestCache(t *testing.T) (*Cache, *mem.Space) {
	t.Helper()
	sp := mem.NewSpace()
	sp.MustAddRegion(mem.Region{Name: "ram", Base: 0x0, Size: 0x10000,
		Perm: mem.PermRead | mem.PermWrite | mem.PermExec})
	cfg := CacheConfig{Sets: 4, Ways: 2, LineBytes: 32, HitLat: 2, MissLat: 10, MSHRs: 2}
	return NewCache("d", cfg, sp), sp
}

func TestCacheHitMissLatency(t *testing.T) {
	c, _ := newTestCache(t)
	r1 := c.Access(0x100, 0)
	if r1.Hit || r1.Latency != 10 {
		t.Fatalf("first access: %+v", r1)
	}
	r2 := c.Access(0x108, 20)
	if !r2.Hit || r2.Latency != 2 {
		t.Fatalf("same line: %+v", r2)
	}
	if c.Misses != 1 || c.Accesses != 2 {
		t.Fatalf("counters: %d/%d", c.Misses, c.Accesses)
	}
}

func TestCacheEviction(t *testing.T) {
	c, _ := newTestCache(t)
	// Three lines mapping to the same set (sets=4, line=32: stride 128).
	c.Access(0x000, 0)
	c.Access(0x080, 0)
	c.Access(0x100, 0)
	if c.Probe(0x000) {
		t.Fatal("LRU line not evicted")
	}
	if !c.Probe(0x080) || !c.Probe(0x100) {
		t.Fatal("wrong victim")
	}
}

func TestCacheDataAndTaint(t *testing.T) {
	c, sp := newTestCache(t)
	sp.Write64(0x200, 0xdead, ^uint64(0))
	c.Access(0x200, 0)
	v, tt := c.Read64(0x200)
	if v != 0xdead || tt != ^uint64(0) {
		t.Fatalf("fill lost data/taint: %#x/%#x", v, tt)
	}
	c.Write64(0x200, 0xbeef, 0)
	v, tt = c.Read64(0x200)
	if v != 0xbeef || tt != 0 {
		t.Fatalf("write-through wrong: %#x/%#x", v, tt)
	}
	// Write-through reaches memory.
	if mv, _ := sp.Read64(0x200); mv != 0xbeef {
		t.Fatal("write did not reach memory")
	}
}

func TestCacheMSHRMergeAndLFBLiveness(t *testing.T) {
	c, sp := newTestCache(t)
	sp.Write64(0x300, 1, ^uint64(0))
	r1 := c.Access(0x300, 0) // miss: readyAt = 10
	if r1.Hit {
		t.Fatal("unexpected hit")
	}
	tainted, live := c.LFBCensus(5)
	if tainted != 1 || live != 1 {
		t.Fatalf("LFB during refill: tainted=%d live=%d", tainted, live)
	}
	// After the refill completes, the MSHR dies but the LFB keeps stale data:
	// exactly the paper's unexploitable-taint example.
	tainted, live = c.LFBCensus(50)
	if tainted != 1 || live != 0 {
		t.Fatalf("LFB after refill: tainted=%d live=%d", tainted, live)
	}
}

func TestCacheFlushClearsTaint(t *testing.T) {
	c, sp := newTestCache(t)
	sp.Write64(0x400, 7, ^uint64(0))
	res := c.Access(0x400, 0)
	c.TaintTag(res.Set, res.Way)
	if n, _ := c.Census(); n == 0 {
		t.Fatal("census missed tainted line")
	}
	c.FlushAll()
	if n, _ := c.Census(); n != 0 {
		t.Fatal("flush left taint behind")
	}
	if c.Probe(0x400) {
		t.Fatal("flush left valid lines")
	}
}

func TestTLBFillAndCensus(t *testing.T) {
	l2 := NewTLB("l2", TLBConfig{Entries: 4, HitLat: 1, MissLat: 10, PageBits: 12}, nil)
	l1 := NewTLB("l1", TLBConfig{Entries: 2, HitLat: 0, MissLat: 2, PageBits: 12}, l2)
	lat1 := l1.Lookup(0x1000)
	if lat1 == 0 {
		t.Fatal("first lookup should miss")
	}
	if lat2 := l1.Lookup(0x1fff); lat2 != 0 {
		t.Fatalf("same page lookup latency %d", lat2)
	}
	l1.TaintPage(0x1000)
	if n, _ := l1.Census(); n != 1 {
		t.Fatal("L1 entry not tainted")
	}
	if n, _ := l2.Census(); n != 1 {
		t.Fatal("L2 entry not tainted")
	}
	l1.FlushAll()
	if n, _ := l1.Census(); n != 0 {
		t.Fatal("flush left taint")
	}
}

func TestBHTTwoTrainingThreshold(t *testing.T) {
	b := NewBHT(16)
	pc := uint64(0x40)
	if b.Predict(pc) {
		t.Fatal("default prediction should be not-taken")
	}
	b.Update(pc, true, 0)
	if b.Predict(pc) {
		t.Fatal("one training should not flip the counter")
	}
	b.Update(pc, true, 0)
	if !b.Predict(pc) {
		t.Fatal("two trainings should predict taken")
	}
	b.Update(pc, false, 0)
	b.Update(pc, false, 0)
	if b.Predict(pc) {
		t.Fatal("counter did not come back down")
	}
}

func TestBTBConfidence(t *testing.T) {
	b := NewBTBConf("ind", 8, 2)
	pc, tgt := uint64(0x80), uint64(0x1000)
	b.Update(pc, tgt, 0)
	if _, hit := b.Predict(pc); hit {
		t.Fatal("single training reached confidence 2")
	}
	b.Update(pc, tgt, 0)
	if got, hit := b.Predict(pc); !hit || got != tgt {
		t.Fatal("two consistent trainings should predict")
	}
	// A different target resets confidence.
	b.Update(pc, 0x2000, 0)
	if _, hit := b.Predict(pc); hit {
		t.Fatal("target change kept confidence")
	}
}

func TestRASRestoreSemantics(t *testing.T) {
	r := NewRAS(4)
	r.Push(0x100, 0)
	r.Push(0x200, 0)
	snap := r.Snapshot()

	// Transient calls corrupt the stack.
	r.Pop()
	r.Pop()
	r.Push(0x666, 0)
	r.Push(0x777, 0)
	r.Push(0x888, 0)

	// Full restore (XiangShan): everything recovers.
	full := NewRAS(4)
	*full = *r
	full.stack = append([]uint64{}, r.stack...)
	full.taint = append([]uint64{}, r.taint...)
	full.Restore(snap, false)
	if a, _ := full.Pop(); a != 0x200 {
		t.Fatalf("full restore top = %#x", a)
	}
	if a, _ := full.Pop(); a != 0x100 {
		t.Fatalf("full restore below-top = %#x", a)
	}

	// Buggy restore (BOOM, Phantom-RSB): TOS and top entry recover, the
	// entry below keeps the transient corruption.
	r.Restore(snap, true)
	if a, _ := r.Pop(); a != 0x200 {
		t.Fatalf("buggy restore top = %#x", a)
	}
	if a, _ := r.Pop(); a == 0x100 {
		t.Fatal("buggy restore repaired the below-TOS entry; B2 requires it to stay corrupted")
	}
}

func TestLoopPredictorTrip(t *testing.T) {
	l := NewLoopPredictor(8, 3)
	pc := uint64(0xc0)
	// A loop of trip 5 trains the predictor.
	for iter := 0; iter < 3; iter++ {
		for i := 0; i < 5; i++ {
			l.Update(pc, true, 0)
		}
		l.Update(pc, false, 0)
	}
	if ov, _ := l.Predict(pc); !ov {
		t.Fatal("loop predictor never trained")
	}
}

// Property: RAS push/pop is LIFO for sequences within capacity.
func TestRASLIFOProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) > 8 {
			vals = vals[:8]
		}
		r := NewRAS(8)
		for _, v := range vals {
			r.Push(v, 0)
		}
		for i := len(vals) - 1; i >= 0; i-- {
			if got, _ := r.Pop(); got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimingHashSensitivity(t *testing.T) {
	sp := mem.NewSpace()
	sp.MustAddRegion(mem.Region{Name: "ram", Base: 0, Size: 0x10000,
		Perm: mem.PermRead | mem.PermWrite | mem.PermExec})
	c := NewCore(BOOMConfig(), sp, IFTOff)
	h0 := c.TimingHash(true)
	c.DCache.Access(0x40, 0)
	h1 := c.TimingHash(true)
	if h0 == h1 {
		t.Fatal("hash insensitive to cache fill")
	}
	// Data-array sensitivity: same line, different content.
	sp.Write64(0x40, 123, 0)
	c.DCache.Write64(0x40, 123, 0)
	h2 := c.TimingHash(true)
	if h1 == h2 {
		t.Fatal("hash insensitive to data content")
	}
	// Tag-only hash ignores data changes.
	ht1 := c.TimingHash(false)
	c.DCache.Write64(0x40, 456, 0)
	if c.TimingHash(false) != ht1 {
		t.Log("tag-only hash stable under data change (expected)")
	} else if c.TimingHash(false) != ht1 {
		t.Fatal("unreachable")
	}
}
