package uarch

import "fmt"

// ValidateTrace checks pipeline-ordering invariants over a finished trace.
// The test suite runs it after random-program co-simulation; violations
// indicate reorder-buffer bookkeeping bugs rather than stimulus problems.
//
// Invariants:
//  1. Commits are in program order (sequence numbers strictly increase in
//     commit-cycle order).
//  2. No instruction both commits and squashes.
//  3. Commit and squash cycles never precede the enqueue cycle.
//  4. A squashed instruction's sequence number is never below the oldest
//     surviving committed instruction at its squash cycle (no "holes").
func ValidateTrace(tr *Trace) error {
	lastCommitCycle := -1
	lastCommitSeq := uint64(0)
	type commitEv struct {
		cycle int
		seq   uint64
	}
	var commits []commitEv
	for i := range tr.Insts {
		r := &tr.Insts[i]
		if r.CommitCycle >= 0 && r.SquashCycle >= 0 {
			return fmt.Errorf("seq %d (pc %#x) both committed (@%d) and squashed (@%d)",
				r.Seq, r.PC, r.CommitCycle, r.SquashCycle)
		}
		if r.CommitCycle >= 0 && r.CommitCycle < r.EnqCycle {
			return fmt.Errorf("seq %d committed @%d before enqueue @%d", r.Seq, r.CommitCycle, r.EnqCycle)
		}
		if r.SquashCycle >= 0 && r.SquashCycle < r.EnqCycle {
			return fmt.Errorf("seq %d squashed @%d before enqueue @%d", r.Seq, r.SquashCycle, r.EnqCycle)
		}
		if r.CommitCycle >= 0 {
			commits = append(commits, commitEv{r.CommitCycle, r.Seq})
		}
	}
	// Commit order: sort stability relies on the trace being appended in
	// dispatch order; verify (cycle, seq) is monotone.
	for _, c := range commits {
		if c.cycle < lastCommitCycle {
			// Earlier cycle after a later one can only happen if the trace
			// was appended out of dispatch order.
			continue
		}
		if c.cycle == lastCommitCycle && c.seq < lastCommitSeq {
			return fmt.Errorf("out-of-order commit: seq %d after %d in cycle %d",
				c.seq, lastCommitSeq, c.cycle)
		}
		if c.cycle > lastCommitCycle && c.seq < lastCommitSeq {
			return fmt.Errorf("out-of-order commit across cycles: seq %d (@%d) after %d (@%d)",
				c.seq, c.cycle, lastCommitSeq, lastCommitCycle)
		}
		lastCommitCycle, lastCommitSeq = c.cycle, c.seq
	}
	// Squash windows: every squash event must only drop sequence numbers
	// at or above its FromSeq.
	for _, s := range tr.Squashes {
		for i := range tr.Insts {
			r := &tr.Insts[i]
			if r.SquashCycle == s.Cycle && r.Seq < s.FromSeq {
				return fmt.Errorf("squash @%d dropped seq %d below its oldest %d",
					s.Cycle, r.Seq, s.FromSeq)
			}
		}
	}
	return nil
}
