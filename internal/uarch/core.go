package uarch

import (
	"fmt"
	"math/bits"

	"dejavuzz/internal/ift"
	"dejavuzz/internal/isa"
	"dejavuzz/internal/isasim"
	"dejavuzz/internal/mem"
)

// IFTMode selects the taint-tracking discipline for a core instance.
type IFTMode int

const (
	IFTOff IFTMode = iota
	IFTCellIFT
	IFTDiff
)

func (m IFTMode) String() string {
	switch m {
	case IFTCellIFT:
		return "CellIFT"
	case IFTDiff:
		return "diffIFT"
	}
	return "off"
}

const (
	stDispatched = iota
	stExecuting
	stDone
)

type opSrc struct {
	fromROB bool
	robIdx  int
	seq     uint64
	reg     int
	fp      bool
}

type robEntry struct {
	valid  bool
	seq    uint64
	pc     uint64
	inst   isa.Inst
	state  int
	doneAt int

	src1, src2       opSrc
	hasSrc1, hasSrc2 bool

	val, taint uint64
	fpDest     bool

	exc     isasim.Cause
	excTval uint64

	// Control flow.
	isCtl      bool
	predTaken  bool
	predTarget uint64
	fromRAS    bool
	actTaken   bool
	actTarget  uint64
	targetT    uint64
	rasSnap    RASSnapshot

	// Memory.
	isLoad, isStore bool
	addr            uint64
	addrTaint       uint64
	addrKnown       bool
	memSpeculative  bool
	stData, stDataT uint64
	ldqIdx, stqIdx  int
}

type fetchEntry struct {
	pc         uint64
	inst       isa.Inst
	predTaken  bool
	predTarget uint64
	fromRAS    bool
	rasSnap    RASSnapshot
	fetchFault isasim.Cause
}

// ctlKind labels control-taint points for cross-instance matching.
type ctlKind uint8

const (
	ctlBranch ctlKind = iota
	ctlJumpTarget
	ctlMemAddr
	ctlStoreAddr
	ctlSquash
)

func ctlKey(kind ctlKind, pc uint64) uint64 {
	return uint64(kind)<<56 ^ pc*0x9e3779b97f4a7c15
}

// CtlEvent is a deferred control-taint application awaiting the
// cross-instance difference verdict (diffIFT's Sdiff signals).
type CtlEvent struct {
	Key   uint64
	Val   uint64
	Cycle int
	apply func(diff bool)
}

type notedVal struct {
	val   uint64
	cycle int
}

// queueEntry buffers a pending ldq/stq slot for the census.
type queueEntry struct {
	valid bool
	taint uint64
}

// Core is one DUT instance.
type Core struct {
	Cfg   Config
	Mem   *mem.Space
	Mode  IFTMode
	Trace *Trace

	// TrapHook is invoked on any commit-time trap (exceptions and ecall).
	// The swap runtime uses it to schedule the next instruction packet.
	TrapHook func(isasim.Trap) isasim.TrapAction
	// FlushICache is set by the trap hook plumbing to flush on swap.
	Halted bool
	Cycle  int

	pc      uint64
	pcTaint uint64

	fetchQ          []fetchEntry
	fetchHead       int // consumed prefix of fetchQ (head-index ring; avoids re-slicing churn)
	fetchStallUntil int
	decodeBlocked   bool
	fetchHeld       bool // serialized at ecall/ebreak until redirect

	rob           []robEntry
	robHead       int
	robTail       int
	robCount      int
	seqNext       uint64
	trapPendingAt int

	archX  [32]uint64
	archXT [32]uint64
	archF  [32]uint64
	archFT [32]uint64

	ldq     []queueEntry
	stq     []queueEntry
	ldqFree int
	stqFree int

	ICache *Cache
	DCache *Cache
	ITLB   *TLB
	DTLB   *TLB
	L2TLB  *TLB

	bht    *BHT
	btb    *BTB
	faubtb *BTB
	ind    *BTB // indirect (jalr) target predictor
	ras    *RAS
	loop   *LoopPredictor

	divBusyUntil  int
	fdivBusyUntil int
	fpuLatchTaint uint64
	loadWBUsed    map[int]int

	// Differential control-taint plumbing.
	pendingCtl []CtlEvent
	noted      map[uint64]notedVal

	// B3 bookkeeping: most recent jalr misprediction resolution.
	jalrMispredCycle int
	jalrCorrTarget   uint64
	jalrCorrTaint    uint64

	// Statistics for oracles and experiments.
	Committed    uint64
	TrapCount    int
	TaintTraceOn bool
	// censusScratch is the reusable per-cycle census buffer (taint tracing).
	censusScratch []ModuleTaint
	// BugWitness records mechanism-level evidence when an injected bug's
	// code path actually fired (used to label findings in Table 5 runs).
	BugWitness map[string]int
}

// NewCore builds a core over its (per-instance) address space. It is
// implemented as an empty shell plus Reset, so Reset is equivalent to fresh
// construction by definition — the property the execution-context reuse in
// internal/core relies on.
func NewCore(cfg Config, space *mem.Space, mode IFTMode) *Core {
	c := &Core{}
	c.Reset(cfg, space, mode)
	return c
}

// Reset reinitialises the core in place for a new simulation: every
// microarchitectural structure (RoB, load/store queues, caches, TLBs,
// predictors, shadow taint state, trace) returns to its construction-time
// state, reusing existing allocations whenever the configuration geometry
// allows. After Reset the core is indistinguishable from
// NewCore(cfg, space, mode).
func (c *Core) Reset(cfg Config, space *mem.Space, mode IFTMode) {
	c.Cfg, c.Mem, c.Mode = cfg, space, mode

	if c.Trace == nil {
		c.Trace = NewTrace()
	} else {
		c.Trace.Reset()
	}

	c.TrapHook = nil
	c.Halted = false
	c.Cycle = 0
	c.pc, c.pcTaint = 0, 0
	c.fetchQ = c.fetchQ[:0]
	c.fetchHead = 0
	c.fetchStallUntil = 0
	c.decodeBlocked = false
	c.fetchHeld = false

	if len(c.rob) != cfg.ROBEntries {
		c.rob = make([]robEntry, cfg.ROBEntries)
	} else {
		for i := range c.rob {
			c.rob[i] = robEntry{}
		}
	}
	c.robHead, c.robTail, c.robCount = 0, 0, 0
	c.seqNext = 0
	c.trapPendingAt = -1

	c.archX = [32]uint64{}
	c.archXT = [32]uint64{}
	c.archF = [32]uint64{}
	c.archFT = [32]uint64{}

	if len(c.ldq) != cfg.LDQEntries {
		c.ldq = make([]queueEntry, cfg.LDQEntries)
	} else {
		for i := range c.ldq {
			c.ldq[i] = queueEntry{}
		}
	}
	if len(c.stq) != cfg.STQEntries {
		c.stq = make([]queueEntry, cfg.STQEntries)
	} else {
		for i := range c.stq {
			c.stq[i] = queueEntry{}
		}
	}
	c.ldqFree = cfg.LDQEntries
	c.stqFree = cfg.STQEntries

	if c.ICache == nil || !c.ICache.Reusable(cfg.ICache, space) {
		c.ICache = NewCache("icache", cfg.ICache, space)
	} else {
		c.ICache.Reset()
	}
	if c.DCache == nil || !c.DCache.Reusable(cfg.DCache, space) {
		c.DCache = NewCache("dcache", cfg.DCache, space)
	} else {
		c.DCache.Reset()
	}
	if c.L2TLB == nil || c.L2TLB.cfg != cfg.L2TLB {
		c.L2TLB = NewTLB("l2tlb", cfg.L2TLB, nil)
	} else {
		c.L2TLB.Reset()
	}
	if c.ITLB == nil || c.ITLB.cfg != cfg.ITLB || c.ITLB.next != c.L2TLB {
		c.ITLB = NewTLB("itlb", cfg.ITLB, c.L2TLB)
	} else {
		c.ITLB.Reset()
	}
	if c.DTLB == nil || c.DTLB.cfg != cfg.DTLB || c.DTLB.next != c.L2TLB {
		c.DTLB = NewTLB("dtlb", cfg.DTLB, c.L2TLB)
	} else {
		c.DTLB.Reset()
	}

	if c.bht == nil || len(c.bht.counters) != cfg.BHTEntries {
		c.bht = NewBHT(cfg.BHTEntries)
	} else {
		c.bht.Reset()
	}
	if c.btb == nil || !c.btb.Reusable(cfg.BTBEntries, 1) {
		c.btb = NewBTB("btb", cfg.BTBEntries)
	} else {
		c.btb.Reset()
	}
	if c.faubtb == nil || !c.faubtb.Reusable(cfg.FauBTBEntries, 1) {
		c.faubtb = NewBTB("faubtb", cfg.FauBTBEntries)
	} else {
		c.faubtb.Reset()
	}
	if c.ind == nil || !c.ind.Reusable(cfg.BTBEntries, cfg.IndirectMinConf) {
		c.ind = NewBTBConf("ind", cfg.BTBEntries, cfg.IndirectMinConf)
	} else {
		c.ind.Reset()
	}
	if c.ras == nil || len(c.ras.stack) != cfg.RASEntries {
		c.ras = NewRAS(cfg.RASEntries)
	} else {
		c.ras.Reset()
	}
	if c.loop == nil || !c.loop.Reusable(cfg.LoopEntries, cfg.LoopTripMax) {
		c.loop = NewLoopPredictor(cfg.LoopEntries, cfg.LoopTripMax)
	} else {
		c.loop.Reset()
	}

	c.divBusyUntil, c.fdivBusyUntil = 0, 0
	c.fpuLatchTaint = 0
	if c.loadWBUsed == nil {
		c.loadWBUsed = make(map[int]int)
	} else {
		clear(c.loadWBUsed)
	}

	c.pendingCtl = c.pendingCtl[:0]
	if c.noted == nil {
		c.noted = make(map[uint64]notedVal)
	} else {
		clear(c.noted)
	}

	c.jalrMispredCycle = 0
	c.jalrCorrTarget, c.jalrCorrTaint = 0, 0

	c.Committed = 0
	c.TrapCount = 0
	c.TaintTraceOn = false
	if c.BugWitness == nil {
		c.BugWitness = make(map[string]int)
	} else {
		clear(c.BugWitness)
	}
}

// Restart jumps the core to an entry point, clearing pipeline state but
// preserving microarchitectural (cache/predictor) state — matching a swap.
func (c *Core) Restart(entry uint64) {
	c.pc = entry
	c.fetchQ = c.fetchQ[:0]
	c.fetchHead = 0
	c.decodeBlocked = false
	for i := range c.rob {
		c.rob[i].valid = false
	}
	c.robHead, c.robTail, c.robCount = 0, 0, 0
	for i := range c.ldq {
		c.ldq[i] = queueEntry{}
	}
	for i := range c.stq {
		c.stq[i] = queueEntry{}
	}
	c.ldqFree = c.Cfg.LDQEntries
	c.stqFree = c.Cfg.STQEntries
	c.trapPendingAt = -1
	c.fetchHeld = false
	c.Halted = false
}

// PC returns the current fetch pc.
func (c *Core) PC() uint64 { return c.pc }

// ctl notes a control-point value and, if tainted, schedules control-taint
// application. CellIFT applies immediately; diffIFT defers until the
// cross-instance comparison resolves.
func (c *Core) ctl(kind ctlKind, pc, val uint64, tainted bool, apply func(diff bool)) {
	if c.Mode == IFTOff {
		return
	}
	key := ctlKey(kind, pc)
	c.noted[key] = notedVal{val: val, cycle: c.Cycle}
	if !tainted {
		return
	}
	if c.Mode == IFTCellIFT {
		apply(true)
		return
	}
	c.pendingCtl = append(c.pendingCtl, CtlEvent{Key: key, Val: val, Cycle: c.Cycle, apply: apply})
}

// ResolveCtl matches this core's pending control events against the peer's
// noted values. Missing keys resolve as "differs" — a path only one instance
// took is by construction secret-dependent.
func (c *Core) ResolveCtl(peer *Core) {
	const window = 8
	for _, ev := range c.pendingCtl {
		diff := true
		if nv, ok := peer.noted[ev.Key]; ok && ev.Cycle-nv.cycle <= window && nv.cycle-ev.Cycle <= window {
			diff = nv.val != ev.Val
		}
		ev.apply(diff)
	}
	c.pendingCtl = c.pendingCtl[:0]
}

// ResolveCtlStandalone applies pending events without a peer (CellIFT
// semantics); used when a diff-mode core runs solo in tests.
func (c *Core) ResolveCtlStandalone() {
	for _, ev := range c.pendingCtl {
		ev.apply(true)
	}
	c.pendingCtl = c.pendingCtl[:0]
}

// Step advances one cycle. In IFTDiff mode the caller must ResolveCtl after
// stepping both instances of the pair.
func (c *Core) Step() {
	if c.Halted {
		return
	}
	c.commitStage()
	if c.Halted {
		c.afterCycle()
		return
	}
	c.writebackStage()
	c.issueStage()
	c.dispatchStage()
	c.fetchStage()
	c.afterCycle()
}

func (c *Core) afterCycle() {
	if c.TaintTraceOn {
		c.censusScratch = c.CensusInto(c.censusScratch[:0])
		sum := 0
		for _, m := range c.censusScratch {
			sum += m.Bits
			// Zero-taint samples are no-ops for every consumer (the coverage
			// matrix keys on tainted-element counts > 0), so only tainted
			// modules are logged — the log stays proportional to observed
			// taint, not to cycles × module count.
			if m.Tainted > 0 {
				c.Trace.TaintLog = append(c.Trace.TaintLog, TaintSample{
					Cycle: c.Cycle, Module: m.Module, Tainted: m.Tainted, Bits: m.Bits,
				})
			}
		}
		c.Trace.TaintSumByCycle = append(c.Trace.TaintSumByCycle, sum)
	}
	delete(c.loadWBUsed, c.Cycle-16)
	c.Cycle++
}

// --- commit ---------------------------------------------------------------

func (c *Core) commitStage() {
	// A recognised trap drains for TrapLatency cycles before the flush;
	// younger instructions keep executing transiently meanwhile.
	if c.trapPendingAt >= 0 {
		if c.Cycle < c.trapPendingAt {
			return
		}
		c.trapPendingAt = -1
		e := &c.rob[c.robHead]
		if e.exc != isasim.CauseNone {
			c.commitException(e)
			return
		}
		switch e.inst.Op {
		case isa.OpEcall:
			c.Trace.commit(e.seq, c.Cycle, isasim.CauseEnvCall)
			c.raiseTrap(isasim.Trap{Cause: isasim.CauseEnvCall, EPC: e.pc})
		case isa.OpEbreak:
			c.Trace.commit(e.seq, c.Cycle, isasim.CauseBreakpoint)
			c.raiseTrap(isasim.Trap{Cause: isasim.CauseBreakpoint, EPC: e.pc})
		}
		return
	}
	for n := 0; n < c.Cfg.CommitWidth && c.robCount > 0; n++ {
		e := &c.rob[c.robHead]
		if !e.valid || e.state != stDone || e.doneAt > c.Cycle {
			return
		}
		if e.exc != isasim.CauseNone || e.inst.Op == isa.OpEcall || e.inst.Op == isa.OpEbreak {
			c.trapPendingAt = c.Cycle + c.Cfg.TrapLatency
			return
		}
		c.commitEntry(e)
		if c.Halted {
			return
		}
	}
}

func (c *Core) retireHead() {
	e := &c.rob[c.robHead]
	if e.isLoad && e.ldqIdx >= 0 {
		c.freeLDQ(e.ldqIdx)
	}
	if e.isStore && e.stqIdx >= 0 {
		c.freeSTQ(e.stqIdx)
	}
	e.valid = false
	c.robHead = (c.robHead + 1) % len(c.rob)
	c.robCount--
}

func (c *Core) commitEntry(e *robEntry) {
	c.Trace.commit(e.seq, c.Cycle, isasim.CauseNone)
	c.Committed++
	in := e.inst
	switch in.Op.Class() {
	case isa.ClassStore:
		// Perform the store: through the dcache, write-through to memory.
		c.DCache.Access(e.addr, c.Cycle)
		c.storeCommit(e)
	case isa.ClassBranch:
		c.bht.Update(e.pc, e.actTaken, e.taint)
		c.loop.Update(e.pc, e.actTaken, e.taint)
		if e.actTaken {
			c.btb.Update(e.pc, e.actTarget, e.targetT)
			c.faubtb.Update(e.pc, e.actTarget, e.targetT)
		}
	case isa.ClassJump:
		c.btb.Update(e.pc, e.actTarget, e.targetT)
		c.faubtb.Update(e.pc, e.actTarget, e.targetT)
		if in.Rd != 0 {
			c.writeArch(in.Rd, false, e.val, e.taint)
		}
	case isa.ClassJumpReg:
		if !e.fromRAS {
			c.ind.Update(e.pc, e.actTarget, e.targetT)
		}
		if in.Rd != 0 {
			c.writeArch(in.Rd, false, e.val, e.taint)
		}
	case isa.ClassSystem:
		switch in.Op {
		case isa.OpEcall:
			c.raiseTrap(isasim.Trap{Cause: isasim.CauseEnvCall, EPC: e.pc})
			return
		case isa.OpEbreak:
			c.raiseTrap(isasim.Trap{Cause: isasim.CauseBreakpoint, EPC: e.pc})
			return
		case isa.OpCsrrw, isa.OpCsrrs, isa.OpCsrrc:
			if in.Rd != 0 {
				c.writeArch(in.Rd, false, e.val, e.taint)
			}
		}
	default:
		if in.Rd != 0 || e.fpDest {
			c.writeArch(in.Rd, e.fpDest, e.val, e.taint)
		}
	}
	c.retireHead()
}

func (c *Core) storeCommit(e *robEntry) {
	size := e.inst.Op.MemSize()
	v, t := e.stData, e.stDataT
	old, oldT := c.DCache.Read64(e.addr &^ 7)
	sh := uint((e.addr & 7) * 8)
	var m uint64
	if size >= 8 {
		m = ^uint64(0)
	} else {
		m = (uint64(1)<<(uint(size)*8) - 1) << sh
	}
	nv := old&^m | (v<<sh)&m
	nt := oldT&^m | (t<<sh)&m
	c.DCache.Write64(e.addr&^7, nv, nt)
	if e.addrTaint != 0 {
		set, way := c.DCache.setOf(e.addr), 0
		_ = way
		c.ctl(ctlStoreAddr, e.pc, e.addr, true, func(diff bool) {
			if diff {
				res := c.DCache.Access(e.addr, c.Cycle)
				c.DCache.TaintTag(res.Set, res.Way)
				c.DTLB.TaintPage(e.addr)
			}
		})
		_ = set
	}
}

func (c *Core) commitException(e *robEntry) {
	c.Trace.commit(e.seq, c.Cycle, e.exc)
	trap := isasim.Trap{Cause: e.exc, EPC: e.pc, Tval: e.excTval}

	// B3 Phantom-BTB: an indirect-jump misprediction resolving while this
	// exception commits (the same redirect-arbitration window) misattributes
	// the BTB correction to the excepting PC.
	if c.Cfg.Bugs.PhantomBTB && c.jalrMispredCycle > 0 && c.Cycle-c.jalrMispredCycle <= 2 {
		c.btb.Update(e.pc, c.jalrCorrTarget, c.jalrCorrTaint)
		c.btb.Update(e.pc, c.jalrCorrTarget, c.jalrCorrTaint) // force confidence
		c.faubtb.Update(e.pc, c.jalrCorrTarget, c.jalrCorrTaint)
		c.BugWitness["phantom-btb"]++
	}
	c.raiseTrap(trap)
}

// raiseTrap squashes everything younger than the trapping instruction and
// consults the trap hook for the redirect (the swap runtime's entry point).
func (c *Core) raiseTrap(t isasim.Trap) {
	e := &c.rob[c.robHead]
	snap := e.rasSnap
	c.squashYounger(e.seq, SquashException, 0, t.EPC, snap)
	c.retireHead()
	c.TrapCount++
	if c.TrapHook == nil {
		c.Halted = true
		return
	}
	act := c.TrapHook(t)
	if act.Halt {
		c.Halted = true
		return
	}
	c.pc = act.NewPC
	c.decodeBlocked = false
	c.fetchHeld = false
	c.pcTaint = 0
}

// --- writeback / branch resolution -----------------------------------------

func (c *Core) writebackStage() {
	// Resolve control flow in program order (oldest first) so the oldest
	// misprediction wins the squash.
	idx := c.robHead
	for n := 0; n < c.robCount; n++ {
		e := &c.rob[idx]
		idx0 := idx
		idx = (idx + 1) % len(c.rob)
		_ = idx0
		if !e.valid || e.state != stExecuting || e.doneAt > c.Cycle {
			continue
		}
		e.state = stDone
		if e.isCtl {
			if c.resolveControl(e) {
				return // squash performed; younger state is gone
			}
		}
		if e.isStore && e.addrKnown {
			if c.checkMemOrdering(e) {
				return
			}
		}
	}
}

func (c *Core) resolveControl(e *robEntry) (squashed bool) {
	in := e.inst
	mispred := false
	var emitCtl func()
	switch in.Op.Class() {
	case isa.ClassBranch:
		condTainted := e.taint != 0
		actTaken := e.actTaken
		pc := e.pc
		emitCtl = func() {
			c.ctl(ctlBranch, pc, boolToU64(actTaken), condTainted, func(diff bool) {
				if !diff {
					return
				}
				c.bht.Update(pc, actTaken, ^uint64(0))
				c.loop.Update(pc, actTaken, ^uint64(0))
				c.pcTaint = ^uint64(0) // secret-selected fetch path
				c.sprayROBTaint()
			})
		}
		mispred = e.actTaken != e.predTaken || (e.actTaken && e.actTarget != e.predTarget)
	case isa.ClassJump:
		mispred = e.actTarget != e.predTarget
	case isa.ClassJumpReg:
		tgtTainted := e.targetT != 0
		actTarget := e.actTarget
		pc := e.pc
		emitCtl = func() {
			c.ctl(ctlJumpTarget, pc, actTarget, tgtTainted, func(diff bool) {
				if !diff {
					return
				}
				if c.Cfg.TransientPredictorUpdate {
					c.ind.Update(pc, actTarget, ^uint64(0))
				}
				c.pcTaint = ^uint64(0) // secret-selected fetch target
				c.sprayROBTaint()
			})
		}
		mispred = e.actTarget != e.predTarget
	default:
		return false
	}

	// Transient (pre-commit) predictor updates, where the core allows them.
	if c.Cfg.TransientPredictorUpdate && in.Op.Class() == isa.ClassJumpReg && !e.fromRAS && mispred {
		c.ind.Update(e.pc, e.actTarget, e.targetT)
	}

	if !mispred {
		if emitCtl != nil {
			emitCtl()
		}
		return false
	}
	reason := SquashBranchMispredict
	if in.Op.Class() == isa.ClassJumpReg {
		if e.fromRAS {
			reason = SquashReturnMispredict
		} else {
			reason = SquashJumpMispredict
		}
		c.jalrMispredCycle = c.Cycle
		c.jalrCorrTarget = e.actTarget
		c.jalrCorrTaint = e.targetT
	}
	redirect := e.actTarget
	if in.Op.Class() == isa.ClassBranch && !e.actTaken {
		redirect = e.pc + 4
	}
	c.squashYoungerPred(e.seq, reason, redirect, e.pc, e.rasSnap, e.predTaken)
	if emitCtl != nil {
		emitCtl() // after the squash so the redirect's pc taint sticks
	}
	return true
}

// checkMemOrdering detects younger loads that speculatively executed with an
// overlapping address before this store's address was known.
func (c *Core) checkMemOrdering(st *robEntry) (squashed bool) {
	idx := c.robHead
	for n := 0; n < c.robCount; n++ {
		e := &c.rob[idx]
		idx = (idx + 1) % len(c.rob)
		if !e.valid || e.seq <= st.seq || !e.isLoad {
			continue
		}
		if e.state == stDispatched || !e.addrKnown {
			continue
		}
		if !e.memSpeculative {
			continue
		}
		if overlaps(e.addr, e.inst.Op.MemSize(), st.addr, st.inst.Op.MemSize()) {
			// Ordering violation: replay from the load.
			c.squashFrom(e.seq, SquashMemOrdering, e.pc, st.pc, st.rasSnap)
			return true
		}
	}
	return false
}

func overlaps(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}

// sprayROBTaint models the CellIFT rollback explosion (the paper's Figure 2):
// a secret-dependent rollback taints every RoB entry field and the frontend.
func (c *Core) sprayROBTaint() {
	for i := range c.rob {
		c.rob[i].taint = ^uint64(0)
		c.rob[i].addrTaint = ^uint64(0)
	}
	c.pcTaint = ^uint64(0)
	for i := range c.ldq {
		c.ldq[i].taint = ^uint64(0)
	}
	for i := range c.stq {
		c.stq[i].taint = ^uint64(0)
	}
}

// squashYounger flushes all entries strictly younger than keepSeq.
func (c *Core) squashYounger(keepSeq uint64, reason SquashReason, redirect, atPC uint64, snap RASSnapshot) {
	c.doSquash(func(seq uint64) bool { return seq > keepSeq }, reason, redirect, atPC, snap, false)
}

// squashYoungerPred is squashYounger for predictor-driven mispredictions.
func (c *Core) squashYoungerPred(keepSeq uint64, reason SquashReason, redirect, atPC uint64, snap RASSnapshot, predDriven bool) {
	c.doSquash(func(seq uint64) bool { return seq > keepSeq }, reason, redirect, atPC, snap, predDriven)
}

// squashFrom flushes fromSeq and everything younger (memory-ordering replay).
func (c *Core) squashFrom(fromSeq uint64, reason SquashReason, redirect, atPC uint64, snap RASSnapshot) {
	c.doSquash(func(seq uint64) bool { return seq >= fromSeq }, reason, redirect, atPC, snap, false)
}

func (c *Core) doSquash(drop func(uint64) bool, reason SquashReason, redirect, atPC uint64, snap RASSnapshot, predDriven bool) {
	anyTainted := false
	oldest := ^uint64(0)
	n := 0
	idx := c.robHead
	for i := 0; i < c.robCount; i++ {
		e := &c.rob[idx]
		idx = (idx + 1) % len(c.rob)
		if !e.valid || !drop(e.seq) {
			continue
		}
		if e.taint != 0 || e.addrTaint != 0 || e.stDataT != 0 {
			anyTainted = true
		}
		if e.seq < oldest {
			oldest = e.seq
		}
		c.Trace.squash(e.seq, c.Cycle)
		if e.isLoad && e.ldqIdx >= 0 {
			c.freeLDQ(e.ldqIdx)
		}
		if e.isStore && e.stqIdx >= 0 {
			c.freeSTQ(e.stqIdx)
		}
		e.valid = false
		n++
	}
	c.fetchHeld = false
	c.pcTaint = 0 // redirects reset the pc shadow; tainted ctl re-arms it
	// Shrink the tail over the invalidated suffix.
	for c.robCount > 0 {
		prev := (c.robTail - 1 + len(c.rob)) % len(c.rob)
		if c.rob[prev].valid {
			break
		}
		c.robTail = prev
		c.robCount--
		if c.robCount == 0 {
			break
		}
	}
	// Recount (entries in the middle cannot be invalid: squash is a suffix).
	c.fetchQ = c.fetchQ[:0]
	c.fetchHead = 0
	if reason != SquashException {
		c.pc = redirect
	}
	c.decodeBlocked = false
	c.Trace.Squashes = append(c.Trace.Squashes, SquashEvent{
		Cycle: c.Cycle, Reason: reason, FromSeq: oldest, AtPC: atPC, Redirect: redirect,
		PredTaken: predDriven,
	})

	// RAS recovery: full restore, or BOOM's buggy top-only restore (B2).
	if len(snap.Stack) > 0 {
		buggy := c.Cfg.Bugs.PhantomRSB
		if buggy {
			// Witness only when a transient write below TOS survives.
			before := c.ras.Snapshot()
			c.ras.Restore(snap, true)
			for i := range before.Stack {
				if i != c.ras.wrap(snap.TOS-1) && before.Stack[i] != snap.Stack[i] && c.ras.stack[i] == before.Stack[i] {
					c.BugWitness["phantom-rsb"]++
					break
				}
			}
		} else {
			c.ras.Restore(snap, false)
		}
	}

	// The rollback itself is a control point: if squashed state was tainted,
	// CellIFT sprays the RoB (taint explosion); diffIFT sprays only when the
	// rollback differs across instances.
	if anyTainted && n > 0 {
		val := redirect<<8 | uint64(n&0xff)
		c.ctl(ctlSquash, atPC, val, true, func(diff bool) {
			if diff {
				c.sprayROBTaint()
			}
		})
	}
}

// --- issue / execute --------------------------------------------------------

func (c *Core) readOperand(src opSrc) (v, t uint64, ready bool) {
	if src.fromROB {
		p := &c.rob[src.robIdx]
		if p.valid && p.seq == src.seq {
			if p.state == stDone && p.doneAt <= c.Cycle {
				return p.val, p.taint, true
			}
			return 0, 0, false
		}
		// Producer retired: value is architectural now.
	}
	if src.fp {
		return c.archF[src.reg], c.archFT[src.reg], true
	}
	return c.archX[src.reg], c.archXT[src.reg], true
}

func (c *Core) issueStage() {
	aluFree := c.Cfg.ALUs
	loadFree := c.Cfg.LoadPorts
	storeFree := 1
	fpuFree := c.Cfg.FPUs

	idx := c.robHead
	for n := 0; n < c.robCount; n++ {
		e := &c.rob[idx]
		idx = (idx + 1) % len(c.rob)
		if !e.valid || e.state != stDispatched {
			continue
		}
		var v1, t1, v2, t2 uint64
		ready := true
		if e.hasSrc1 {
			var ok bool
			v1, t1, ok = c.readOperand(e.src1)
			ready = ready && ok
		}
		if e.hasSrc2 {
			var ok bool
			v2, t2, ok = c.readOperand(e.src2)
			ready = ready && ok
		}
		if !ready {
			continue
		}
		switch e.inst.Op.Class() {
		case isa.ClassLoad:
			if loadFree <= 0 {
				continue
			}
			loadFree--
			c.executeLoad(e, v1, t1)
		case isa.ClassStore:
			if storeFree <= 0 {
				continue
			}
			storeFree--
			c.executeStore(e, v1, t1, v2, t2)
		case isa.ClassFPU:
			if fpuFree <= 0 {
				continue
			}
			fpuFree--
			c.executeSimple(e, v1, t1, v2, t2, c.Cfg.FPULat)
		case isa.ClassFDiv:
			if c.fdivBusyUntil > c.Cycle {
				continue
			}
			c.fdivBusyUntil = c.Cycle + c.Cfg.FDivLat
			c.fpuLatchTaint = t1 | t2
			c.executeSimple(e, v1, t1, v2, t2, c.Cfg.FDivLat)
		case isa.ClassDiv:
			if c.divBusyUntil > c.Cycle {
				continue
			}
			c.divBusyUntil = c.Cycle + c.Cfg.DivLat
			c.executeSimple(e, v1, t1, v2, t2, c.Cfg.DivLat)
		case isa.ClassMul:
			if aluFree <= 0 {
				continue
			}
			aluFree--
			c.executeSimple(e, v1, t1, v2, t2, c.Cfg.MulLat)
		default:
			if aluFree <= 0 {
				continue
			}
			aluFree--
			c.executeSimple(e, v1, t1, v2, t2, 1)
		}
	}
}

// executeSimple computes ALU/branch/jump/FP results with data-taint rules.
func (c *Core) executeSimple(e *robEntry, v1, t1, v2, t2 uint64, lat int) {
	in := e.inst
	e.state = stExecuting
	e.doneAt = c.Cycle + lat

	// Architectural result via the golden model's ALU.
	var gm isasim.Sim
	gm.PC = e.pc
	gm.X[in.Rs1] = v1
	if in.Rs2 != 0 {
		gm.X[in.Rs2] = v2
	}
	if fp1, fp2 := in.FPSources(); fp1 || fp2 {
		gm.F[in.Rs1] = v1
		gm.F[in.Rs2] = v2
	}
	if in.Rs1 == 0 {
		gm.X[0] = 0
		if fp1, _ := in.FPSources(); fp1 {
			gm.F[0] = v1
		}
	}
	// Handle rs1==rs2 aliasing.
	if in.Rs1 == in.Rs2 && in.Rs1 != 0 {
		gm.X[in.Rs1] = v1
	}
	gm.Exec(in)

	switch in.Op.Class() {
	case isa.ClassBranch:
		e.actTaken = gm.PC != e.pc+4
		e.actTarget = e.pc + uint64(in.Imm)
		e.taint = cmpTaint(t1, t2)
		e.targetT = 0
	case isa.ClassJump:
		e.actTaken = true
		e.actTarget = e.pc + uint64(in.Imm)
		e.val = e.pc + 4
		e.taint = 0
	case isa.ClassJumpReg:
		e.actTaken = true
		e.actTarget = (v1 + uint64(in.Imm)) &^ 1
		e.targetT = addTaint(t1, 0)
		e.val = e.pc + 4
		e.taint = 0
	default:
		if e.fpDest {
			e.val = gm.F[in.Rd]
		} else if in.Rd != 0 {
			e.val = gm.X[in.Rd]
		} else {
			e.val = 0
		}
		e.taint = dataTaint(in, v1, v2, t1, t2)
	}
}

// executeLoad models address generation, translation, permission checks,
// cache access, store-to-load forwarding, and the transient-forwarding and
// MeltdownSampling (B1) bug mechanisms.
func (c *Core) executeLoad(e *robEntry, v1, t1 uint64) {
	in := e.inst
	e.state = stExecuting
	addr := v1 + uint64(in.Imm)
	e.addr = addr
	e.addrTaint = addTaint(t1, 0)
	e.addrKnown = true
	if e.ldqIdx >= 0 {
		c.ldq[e.ldqIdx].taint = e.addrTaint
	}
	size := in.Op.MemSize()
	lat := 1

	// Misalignment.
	if addr%uint64(size) != 0 {
		e.exc = isasim.CauseLoadMisalign
		e.excTval = addr
		e.doneAt = c.Cycle + lat
		return
	}

	// Effective data-path address: B1 truncates the wire on the
	// pipeline->load-unit path.
	dataAddr := addr
	if c.Cfg.Bugs.MeltdownSampling {
		trunc := addr & (uint64(1)<<c.Cfg.PhysAddrBits - 1)
		if trunc != addr {
			dataAddr = trunc
			c.BugWitness["meltdown-sampling"]++
		}
	}

	// Permission check on the architectural address.
	if err := c.Mem.Check(addr, size, mem.AccessLoad); err != nil {
		f := err.(*mem.Fault)
		e.exc = isasim.CauseForFault(f)
		e.excTval = addr
		// Transient data forwarding: the Meltdown root cause. Data is
		// forwarded from the cache if the (possibly truncated) address maps
		// to real memory.
		if c.Cfg.TransientLoadForward && c.Mem.Region(dataAddr) != nil {
			lat += c.DTLB.Lookup(dataAddr)
			res := c.DCache.Access(dataAddr, c.Cycle)
			lat += res.Latency
			v, t := c.readMemData(dataAddr, size, in)
			e.val, e.taint = v, t
			c.applyAddrCtl(e, dataAddr, res)
		} else {
			e.val, e.taint = 0, 0
		}
		e.doneAt = c.Cycle + lat
		c.chargeLoadWB(e)
		return
	}

	// Store-to-load forwarding and memory-disambiguation speculation.
	if fwd, fv, ft, unknown := c.forwardFromStores(e, dataAddr, size); fwd {
		e.val, e.taint = fv, ft
		// A younger unknown store between the match and the load keeps the
		// load speculative with respect to memory ordering.
		e.memSpeculative = unknown
		e.doneAt = c.Cycle + 1
		c.chargeLoadWB(e)
		return
	} else if unknown {
		// An older store's address is unresolved: speculate no-alias.
		e.memSpeculative = true
	}

	lat += c.DTLB.Lookup(dataAddr)
	res := c.DCache.Access(dataAddr, c.Cycle)
	lat += res.Latency
	v, t := c.readMemData(dataAddr, size, in)
	e.val, e.taint = v, t
	c.applyAddrCtl(e, dataAddr, res)
	e.doneAt = c.Cycle + lat
	c.chargeLoadWB(e)
}

// chargeLoadWB models load write-back port contention (B5): with a single
// port, simultaneous load completions serialise.
func (c *Core) chargeLoadWB(e *robEntry) {
	ports := c.Cfg.LoadWBPorts
	if ports <= 0 {
		ports = 1
	}
	for c.loadWBUsed[e.doneAt] >= ports {
		e.doneAt++
		if c.Cfg.Bugs.SpectreReload {
			c.BugWitness["spectre-reload"]++
		}
	}
	c.loadWBUsed[e.doneAt]++
}

// readMemData reads through the dcache with sign/zero extension.
func (c *Core) readMemData(addr uint64, size int, in isa.Inst) (uint64, uint64) {
	v64, t64 := c.DCache.Read64(addr &^ 7)
	sh := uint((addr & 7) * 8)
	v := v64 >> sh
	t := t64 >> sh
	switch size {
	case 1:
		v &= 0xff
		t &= 0xff
	case 2:
		v &= 0xffff
		t &= 0xffff
	case 4:
		v &= 0xffffffff
		t &= 0xffffffff
	}
	switch in.Op {
	case isa.OpLb:
		v = uint64(int64(int8(v)))
	case isa.OpLh:
		v = uint64(int64(int16(v)))
	case isa.OpLw:
		v = uint64(int64(int32(v)))
	}
	return v, t
}

// applyAddrCtl handles the memory-read control taint (Table 1): a tainted
// address makes the cache fill, the TLB fill and the loaded data
// secret-dependent. diffIFT applies it only if the addresses differ.
func (c *Core) applyAddrCtl(e *robEntry, dataAddr uint64, res AccessResult) {
	if e.addrTaint == 0 {
		return
	}
	eRef := e
	seq := e.seq
	c.ctl(ctlMemAddr, e.pc, dataAddr, true, func(diff bool) {
		if !diff {
			return
		}
		c.DCache.TaintTag(res.Set, res.Way)
		c.DTLB.TaintPage(dataAddr)
		if eRef.valid && eRef.seq == seq {
			eRef.taint = ^uint64(0)
		}
	})
}

// forwardFromStores searches older stores for a forwarding match.
// Returns unknown=true if an older store has an unresolved address.
func (c *Core) forwardFromStores(ld *robEntry, addr uint64, size int) (fwd bool, v, t uint64, unknown bool) {
	// Walk older entries youngest-first.
	idx := (c.robTail - 1 + len(c.rob)) % len(c.rob)
	for n := 0; n < c.robCount; n++ {
		e := &c.rob[idx]
		idx = (idx - 1 + len(c.rob)) % len(c.rob)
		if !e.valid || e.seq >= ld.seq || !e.isStore {
			continue
		}
		if !e.addrKnown {
			unknown = true
			continue
		}
		if e.addr == addr && e.inst.Op.MemSize() >= size {
			return true, e.stData, e.stDataT, unknown
		}
		if overlaps(e.addr, e.inst.Op.MemSize(), addr, size) {
			// Partial overlap: treat as unforwardable; stall until commit by
			// speculating through memory (keeps the model simple).
			unknown = true
		}
	}
	return false, 0, 0, unknown
}

func (c *Core) executeStore(e *robEntry, v1, t1, v2, t2 uint64) {
	in := e.inst
	e.state = stExecuting
	addr := v1 + uint64(in.Imm)
	e.addr = addr
	e.addrTaint = addTaint(t1, 0)
	e.addrKnown = true
	e.stData, e.stDataT = v2, t2
	if e.stqIdx >= 0 {
		c.stq[e.stqIdx].taint = e.addrTaint | t2
	}
	size := in.Op.MemSize()
	e.doneAt = c.Cycle + 1
	if c.Mem.Region(addr) != nil {
		e.doneAt += c.DTLB.Lookup(addr) // stores translate too
	}
	if addr%uint64(size) != 0 {
		e.exc = isasim.CauseStoreMisalign
		e.excTval = addr
		return
	}
	if err := c.Mem.Check(addr, size, mem.AccessStore); err != nil {
		f := err.(*mem.Fault)
		e.exc = isasim.CauseForFault(f)
		e.excTval = addr
		return
	}
}

// --- dispatch ---------------------------------------------------------------

func (c *Core) srcFor(reg int, fp bool) (opSrc, bool) {
	if reg == 0 && !fp {
		return opSrc{reg: 0}, true
	}
	// Youngest older producer.
	idx := (c.robTail - 1 + len(c.rob)) % len(c.rob)
	for n := 0; n < c.robCount; n++ {
		e := &c.rob[idx]
		i := idx
		idx = (idx - 1 + len(c.rob)) % len(c.rob)
		if !e.valid {
			continue
		}
		writes := e.inst.Rd == reg && e.fpDest == fp
		switch e.inst.Op.Class() {
		case isa.ClassStore, isa.ClassBranch:
			writes = false
		case isa.ClassSystem:
			writes = e.inst.Rd == reg && !fp &&
				(e.inst.Op == isa.OpCsrrw || e.inst.Op == isa.OpCsrrs || e.inst.Op == isa.OpCsrrc)
		}
		if writes && e.inst.Rd != 0 || (writes && fp) {
			return opSrc{fromROB: true, robIdx: i, seq: e.seq, reg: reg, fp: fp}, true
		}
	}
	return opSrc{reg: reg, fp: fp}, true
}

func (c *Core) dispatchStage() {
	for n := 0; n < c.Cfg.DecodeWidth; n++ {
		if c.fetchHead >= len(c.fetchQ) || c.robCount >= len(c.rob) || c.decodeBlocked {
			return
		}
		fe := c.fetchQ[c.fetchHead]
		in := fe.inst

		isLoad := in.Op.Class() == isa.ClassLoad
		isStore := in.Op.Class() == isa.ClassStore
		if isLoad && c.ldqFree == 0 {
			return
		}
		if isStore && c.stqFree == 0 {
			return
		}
		c.fetchHead++

		// Resolve source operands BEFORE inserting the entry so an
		// instruction never depends on itself.
		var src1, src2 opSrc
		var hasSrc1, hasSrc2 bool
		fp1, fp2 := in.FPSources()
		switch in.Op {
		case isa.OpLui, isa.OpAuipc, isa.OpJal, isa.OpEcall, isa.OpEbreak,
			isa.OpMret, isa.OpFence, isa.OpInvalid:
			// no register sources
		default:
			src1, _ = c.srcFor(in.Rs1, fp1)
			hasSrc1 = true
			switch in.Op.Class() {
			case isa.ClassALU, isa.ClassMul, isa.ClassDiv, isa.ClassBranch,
				isa.ClassFPU, isa.ClassFDiv:
				if usesRs2(in.Op) {
					src2, _ = c.srcFor(in.Rs2, fp2)
					hasSrc2 = true
				}
			case isa.ClassStore:
				src2, _ = c.srcFor(in.Rs2, fp2)
				hasSrc2 = true
			}
		}

		e := &c.rob[c.robTail]
		inherit := uint64(0)
		if c.Mode == IFTCellIFT {
			// CellIFT taint registers are never cleared by entry reuse: the
			// stale control taint folds into the new contents (Policy 2).
			inherit = e.taint | e.addrTaint
		}
		*e = robEntry{
			valid: true, seq: c.seqNext, pc: fe.pc, inst: in,
			state: stDispatched, ldqIdx: -1, stqIdx: -1,
			predTaken: fe.predTaken, predTarget: fe.predTarget,
			fromRAS: fe.fromRAS, rasSnap: fe.rasSnap,
			isLoad: isLoad, isStore: isStore,
			fpDest: in.FPDest(),
			src1:   src1, src2: src2, hasSrc1: hasSrc1, hasSrc2: hasSrc2,
			taint: inherit,
		}
		c.seqNext++
		c.robTail = (c.robTail + 1) % len(c.rob)
		c.robCount++
		c.Trace.enqueue(e.seq, e.pc, in, c.Cycle)

		if isLoad {
			for i := range c.ldq {
				if !c.ldq[i].valid {
					c.ldq[i].valid = true
					e.ldqIdx = i
					c.ldqFree--
					break
				}
			}
		}
		if isStore {
			for i := range c.stq {
				if !c.stq[i].valid {
					c.stq[i].valid = true
					e.stqIdx = i
					c.stqFree--
					break
				}
			}
		}

		// Fetch faults trap at commit with the faulting-fetch cause.
		if fe.fetchFault != isasim.CauseNone {
			e.exc = fe.fetchFault
			e.excTval = fe.pc
			e.state = stDone
			e.doneAt = c.Cycle + 1
			c.decodeBlocked = true
			continue
		}

		// Immediate-completion classes.
		switch in.Op {
		case isa.OpInvalid:
			if c.Cfg.IllegalAtDecode {
				// BOOM: decode raises the flush immediately; nothing younger
				// dispatches, so no transient window opens behind it.
				c.decodeBlocked = true
			}
			e.exc = isasim.CauseIllegalInstruction
			e.excTval = uint64(in.Raw)
			e.state = stDone
			e.doneAt = c.Cycle + 1
		case isa.OpLui:
			e.val = uint64(in.Imm)
			e.state = stDone
			e.doneAt = c.Cycle + 1
		case isa.OpAuipc:
			e.val = fe.pc + uint64(in.Imm)
			e.state = stDone
			e.doneAt = c.Cycle + 1
		case isa.OpJal:
			e.actTaken = true
			e.actTarget = fe.pc + uint64(in.Imm)
			e.val = fe.pc + 4
			e.isCtl = true
			e.state = stExecuting
			e.doneAt = c.Cycle + 1
		case isa.OpEcall, isa.OpEbreak, isa.OpMret, isa.OpFence,
			isa.OpCsrrw, isa.OpCsrrs, isa.OpCsrrc:
			e.state = stDone
			e.doneAt = c.Cycle + 1
		default:
			if in.Op.Class() == isa.ClassBranch || in.Op.Class() == isa.ClassJumpReg {
				e.isCtl = true
			}
		}
	}
}

func usesRs2(op isa.Op) bool {
	switch op {
	case isa.OpAddi, isa.OpSlti, isa.OpSltiu, isa.OpXori, isa.OpOri, isa.OpAndi,
		isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpAddiw, isa.OpSlliw,
		isa.OpSrliw, isa.OpSraiw, isa.OpJalr, isa.OpFmvXD, isa.OpFmvDX:
		return false
	}
	return true
}

// --- fetch -------------------------------------------------------------------

func (c *Core) fetchStage() {
	if c.Halted || c.decodeBlocked || c.fetchHeld {
		return
	}
	if c.fetchStallUntil > c.Cycle {
		return
	}
	if len(c.fetchQ)-c.fetchHead >= 2*c.Cfg.FetchWidth {
		return
	}
	// The queue is fully drained most cycles: rewind it so appends reuse
	// the buffer from the start instead of growing it for a whole run.
	if c.fetchHead == len(c.fetchQ) {
		c.fetchQ = c.fetchQ[:0]
		c.fetchHead = 0
	}
	// Fetch permission: an unfetchable pc raises a fetch fault via a pseudo
	// entry so the trap handler can recover. Append at most one.
	if err := c.Mem.Check(c.pc, 4, mem.AccessFetch); err != nil {
		if len(c.fetchQ) > c.fetchHead && c.fetchQ[len(c.fetchQ)-1].pc == c.pc {
			return
		}
		f := err.(*mem.Fault)
		c.fetchQ = append(c.fetchQ, fetchEntry{
			pc:         c.pc,
			inst:       isa.Inst{Op: isa.OpInvalid, Raw: 0},
			fetchFault: isasim.CauseForFault(f),
			rasSnap:    c.ras.Snapshot(),
		})
		return
	}

	itlbLat := c.ITLB.Lookup(c.pc)
	res := c.ICache.Access(c.pc, c.Cycle)
	if c.pcTaint != 0 {
		// Secret-selected fetch: the fill's presence is the encoding
		// (Spectre-Refetch / icache prime+probe receivers).
		c.ICache.TaintTag(res.Set, res.Way)
		c.ITLB.TaintPage(c.pc)
	}
	if !res.Hit || itlbLat > 0 {
		// The refill occupies the fetch port; with B4 semantics this
		// persists across squashes (set unconditionally — the bug is the
		// absence of cancellation).
		c.fetchStallUntil = c.Cycle + res.Latency + itlbLat
		if c.Cfg.Bugs.SpectreRefetch {
			c.BugWitness["spectre-refetch-miss"]++
		}
		return
	}

	for n := 0; n < c.Cfg.FetchWidth; n++ {
		if len(c.fetchQ)-c.fetchHead >= 2*c.Cfg.FetchWidth {
			return
		}
		if c.Mem.Check(c.pc, 4, mem.AccessFetch) != nil {
			return // next cycle raises the fetch fault path
		}
		w, _ := c.Mem.Read64(c.pc &^ 7)
		raw := uint32(w >> ((c.pc & 4) * 8))
		in := isa.Decode(raw)
		fe := fetchEntry{pc: c.pc, inst: in}

		nextPC := c.pc + 4
		switch in.Op.Class() {
		case isa.ClassBranch:
			pred := c.bht.Predict(c.pc)
			if ov, taken := c.loop.Predict(c.pc); ov {
				pred = taken
			}
			if pred {
				if tgt, hit := c.predictTarget(c.pc); hit {
					fe.predTaken = true
					fe.predTarget = tgt
					nextPC = tgt
				}
			}
		case isa.ClassJump:
			fe.predTaken = true
			fe.predTarget = c.pc + uint64(in.Imm)
			nextPC = fe.predTarget
			if in.Rd == isa.RegRA {
				c.ras.Push(c.pc+4, 0)
			}
		case isa.ClassJumpReg:
			isRet := in.Rd == 0 && in.Rs1 == isa.RegRA && in.Imm == 0
			isCall := in.Rd == isa.RegRA
			switch {
			case isRet:
				tgt, tt := c.ras.Pop()
				fe.predTaken = true
				fe.predTarget = tgt
				fe.fromRAS = true
				nextPC = tgt
				_ = tt
			case isCall:
				c.ras.Push(c.pc+4, 0)
				if tgt, hit := c.ind.Predict(c.pc); hit {
					fe.predTaken = true
					fe.predTarget = tgt
					nextPC = tgt
				}
			default:
				if tgt, hit := c.ind.Predict(c.pc); hit {
					fe.predTaken = true
					fe.predTarget = tgt
					nextPC = tgt
				}
			}
		}
		fe.rasSnap = c.ras.Snapshot()
		c.fetchQ = append(c.fetchQ, fe)
		c.pc = nextPC
		if in.Op == isa.OpEcall || in.Op == isa.OpEbreak {
			// System instructions serialize the frontend: hold fetch until
			// the trap (or an older squash) redirects it.
			c.fetchHeld = true
			return
		}
		if in.Op == isa.OpInvalid {
			return // stop the fetch group; decode/commit handles the trap
		}
	}
}

// predictTarget queries the first-level then the main BTB.
func (c *Core) predictTarget(pc uint64) (uint64, bool) {
	if tgt, hit := c.faubtb.Predict(pc); hit {
		return tgt, true
	}
	return c.btb.Predict(pc)
}

// freeLDQ releases a load-queue slot; CellIFT shadow taint persists.
func (c *Core) freeLDQ(i int) {
	t := c.ldq[i].taint
	c.ldq[i] = queueEntry{}
	if c.Mode == IFTCellIFT {
		c.ldq[i].taint = t
	}
	c.ldqFree++
}

// freeSTQ releases a store-queue slot; CellIFT shadow taint persists.
func (c *Core) freeSTQ(i int) {
	t := c.stq[i].taint
	c.stq[i] = queueEntry{}
	if c.Mode == IFTCellIFT {
		c.stq[i].taint = t
	}
	c.stqFree++
}

// writeArch retires a value into the architectural register file.
func (c *Core) writeArch(rd int, fp bool, v, t uint64) {
	if fp {
		c.archF[rd] = v
		c.archFT[rd] = t
		return
	}
	if rd != 0 {
		c.archX[rd] = v
		c.archXT[rd] = t
	}
}

// ArchReg reads an architectural register (testing and oracles).
func (c *Core) ArchReg(r int) (uint64, uint64) { return c.archX[r], c.archXT[r] }

// Run steps until halt or maxCycles. Only valid for IFTOff/IFTCellIFT cores;
// diff-mode pairs are driven by the harness.
func (c *Core) Run(maxCycles int) int {
	start := c.Cycle
	for !c.Halted && c.Cycle-start < maxCycles {
		c.Step()
		if c.Mode == IFTCellIFT {
			// CellIFT applies immediately inside ctl(); nothing pending.
			c.pendingCtl = c.pendingCtl[:0]
		}
	}
	return c.Cycle - start
}

// --- census -----------------------------------------------------------------

// ModuleTaint is one module's taint census entry.
type ModuleTaint struct {
	Module  string
	Tainted int
	Bits    int
}

// Census reports per-module tainted element and bit counts across the whole
// microarchitecture (the coverage substrate and the Figure 6 series).
func (c *Core) Census() []ModuleTaint { return c.CensusInto(nil) }

// CensusInto is Census appending into a caller-provided buffer — the
// per-cycle taint-tracing path reuses one scratch slice instead of
// allocating a census every cycle.
func (c *Core) CensusInto(out []ModuleTaint) []ModuleTaint {
	add := func(name string, tainted, bitCount int) {
		out = append(out, ModuleTaint{Module: name, Tainted: tainted, Bits: bitCount})
	}

	// Frontend: pc + fetch buffer.
	fb := 0
	if c.pcTaint != 0 {
		fb++
	}
	add("frontend", fb, bits.OnesCount64(c.pcTaint))

	// ROB.
	// The RoB census covers the raw shadow state: squashed entries retain
	// their taint registers exactly as a shadow circuit would.
	rt, rb := 0, 0
	for i := range c.rob {
		b := bits.OnesCount64(c.rob[i].taint) + bits.OnesCount64(c.rob[i].addrTaint) +
			bits.OnesCount64(c.rob[i].stDataT)
		if b > 0 {
			rt++
			rb += b
		}
	}
	add("rob", rt, rb)

	// Register files.
	xt, xb := 0, 0
	for i := range c.archXT {
		if c.archXT[i] != 0 {
			xt++
			xb += bits.OnesCount64(c.archXT[i])
		}
	}
	for i := range c.archFT {
		if c.archFT[i] != 0 {
			xt++
			xb += bits.OnesCount64(c.archFT[i])
		}
	}
	add("regfile", xt, xb)

	lt, lb := 0, 0
	for i := range c.ldq {
		if c.ldq[i].taint != 0 {
			lt++
			lb += bits.OnesCount64(c.ldq[i].taint)
		}
	}
	for i := range c.stq {
		if c.stq[i].taint != 0 {
			lt++
			lb += bits.OnesCount64(c.stq[i].taint)
		}
	}
	add("lsu", lt, lb)

	dt, db := c.DCache.Census()
	add("dcache", dt, db)
	it, ib := c.ICache.Census()
	add("icache", it, ib)
	lf, _ := c.DCache.LFBCensus(c.Cycle)
	add("lfb", lf, lf*64)

	tt, tb := c.DTLB.Census()
	add("dtlb", tt, tb)
	tt, tb = c.ITLB.Census()
	add("itlb", tt, tb)
	tt, tb = c.L2TLB.Census()
	add("l2tlb", tt, tb)

	tt, tb = c.bht.Census()
	add("bht", tt, tb)
	tt, tb = c.btb.Census()
	add("btb", tt, tb)
	tt, tb = c.faubtb.Census()
	add("faubtb", tt, tb)
	tt, tb = c.ind.Census()
	add("indbtb", tt, tb)
	tt, tb = c.ras.Census()
	add("ras", tt, tb)
	tt, tb = c.loop.Census()
	add("loop", tt, tb)

	ft := 0
	if c.fpuLatchTaint != 0 {
		ft = 1
	}
	add("fpu", ft, bits.OnesCount64(c.fpuLatchTaint))
	return out
}

// TaintSum totals tainted bits across all modules.
func (c *Core) TaintSum() int {
	sum := 0
	for _, m := range c.Census() {
		sum += m.Bits
	}
	return sum
}

// Sink is a tainted microarchitectural location considered as a potential
// leak sink, with its liveness verdict.
type Sink struct {
	Module string
	Detail string
	Live   bool
}

// Sinks enumerates tainted sinks with taint-liveness annotations applied:
// cache lines must be valid, LFB slots must have a live MSHR, RoB/LSU
// entries must still be valid; predictor state is always live.
func (c *Core) Sinks() []Sink {
	var out []Sink
	for _, lp := range c.DCache.TaintedLinePositions() {
		out = append(out, Sink{Module: "dcache", Detail: fmt.Sprintf("set%d.way%d", lp.Set, lp.Way), Live: true})
	}
	for _, lp := range c.ICache.TaintedLinePositions() {
		out = append(out, Sink{Module: "icache", Detail: fmt.Sprintf("set%d.way%d", lp.Set, lp.Way), Live: true})
	}
	if n, live := c.DCache.LFBCensus(c.Cycle); n > 0 {
		out = append(out, Sink{Module: "lfb", Detail: "line-fill-buffer", Live: live > 0})
	}
	if t, _ := c.DTLB.Census(); t > 0 {
		out = append(out, Sink{Module: "dtlb", Detail: "entry", Live: true})
	}
	if t, _ := c.L2TLB.Census(); t > 0 {
		out = append(out, Sink{Module: "l2tlb", Detail: "entry", Live: true})
	}
	if t, _ := c.btb.Census(); t > 0 {
		out = append(out, Sink{Module: "btb", Detail: "entry", Live: true})
	}
	if t, _ := c.faubtb.Census(); t > 0 {
		out = append(out, Sink{Module: "faubtb", Detail: "entry", Live: true})
	}
	if t, _ := c.ind.Census(); t > 0 {
		out = append(out, Sink{Module: "indbtb", Detail: "entry", Live: true})
	}
	if t, _ := c.ras.Census(); t > 0 {
		out = append(out, Sink{Module: "ras", Detail: "entry", Live: true})
	}
	if t, _ := c.loop.Census(); t > 0 {
		out = append(out, Sink{Module: "loop", Detail: "entry", Live: true})
	}
	if t, _ := c.bht.Census(); t > 0 {
		out = append(out, Sink{Module: "bht", Detail: "counter", Live: true})
	}
	// Dead-by-liveness sinks, reported for the no-liveness ablation:
	for i := range c.rob {
		if c.rob[i].valid && c.rob[i].taint != 0 {
			out = append(out, Sink{Module: "rob", Detail: "entry", Live: false})
			break
		}
	}
	for i := range c.archXT {
		if c.archXT[i] != 0 {
			out = append(out, Sink{Module: "regfile", Detail: isa.RegName(i), Live: false})
		}
	}
	return out
}

// --- taint helpers -----------------------------------------------------------

func cmpTaint(t1, t2 uint64) uint64 {
	return ift.CmpTaintCellIFT(t1, t2) // 1-bit data taint on the outcome
}

func addTaint(t1, t2 uint64) uint64 { return ift.AddTaint(t1, t2) }

// dataTaint applies per-op data-flow taint rules using the ift policies.
func dataTaint(in isa.Inst, v1, v2, t1, t2 uint64) uint64 {
	switch in.Op {
	case isa.OpAnd:
		return ift.AndTaint(v1, v2, t1, t2)
	case isa.OpAndi:
		return ift.AndTaint(v1, uint64(in.Imm), t1, 0)
	case isa.OpOr:
		return ift.OrTaint(v1, v2, t1, t2)
	case isa.OpOri:
		return ift.OrTaint(v1, uint64(in.Imm), t1, 0)
	case isa.OpXor:
		return ift.XorTaint(t1, t2)
	case isa.OpXori:
		return t1
	case isa.OpSlli, isa.OpSlliw:
		return t1 << uint(in.Imm&63)
	case isa.OpSrli, isa.OpSrliw, isa.OpSrai, isa.OpSraiw:
		return t1 >> uint(in.Imm&63)
	case isa.OpSll, isa.OpSllw:
		return ift.ShiftTaint(t1, v2, true, t2 != 0, true, ^uint64(0))
	case isa.OpSrl, isa.OpSrlw, isa.OpSra, isa.OpSraw:
		return ift.ShiftTaint(t1, v2, false, t2 != 0, true, ^uint64(0))
	case isa.OpSlt, isa.OpSltu:
		return ift.CmpTaintCellIFT(t1, t2)
	case isa.OpSlti, isa.OpSltiu:
		return ift.CmpTaintCellIFT(t1, 0)
	case isa.OpAddi, isa.OpAddiw:
		return ift.AddTaint(t1, 0)
	default:
		// Arithmetic: conservative carry spread.
		return ift.AddTaint(t1, t2)
	}
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
