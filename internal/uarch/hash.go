package uarch

import "hash/fnv"

// TimingHash digests the final state of the timing components (caches,
// TLBs, predictors) — the differential oracle SpecDoctor compares between
// secret variants. includeData additionally hashes cache data arrays, which
// is what makes resident (but unencoded) secrets flip the hash and produce
// SpecDoctor's false positives.
func (c *Core) TimingHash(includeData bool) uint64 {
	h := fnv.New64a()
	w := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	hashCache := func(ca *Cache) {
		for s := range ca.tags {
			for way := range ca.tags[s] {
				if ca.valid[s][way] {
					w(1 + ca.tags[s][way])
				} else {
					w(0)
				}
				if includeData {
					for _, d := range ca.data[s][way] {
						w(d)
					}
				}
			}
		}
		if includeData {
			for i := range ca.lfb {
				for _, d := range ca.lfb[i].data {
					w(d)
				}
			}
		}
	}
	hashCache(c.DCache)
	hashCache(c.ICache)
	for _, t := range []*TLB{c.ITLB, c.DTLB, c.L2TLB} {
		for i := range t.entries {
			if t.entries[i].valid {
				w(1 + t.entries[i].vpn)
			} else {
				w(0)
			}
		}
	}
	for _, cnt := range c.bht.counters {
		w(uint64(cnt))
	}
	for _, b := range []*BTB{c.btb, c.faubtb, c.ind} {
		for i := range b.entries {
			w(b.entries[i].tag<<1 | boolToU64(b.entries[i].valid))
			w(b.entries[i].target)
		}
	}
	for i := range c.ras.stack {
		w(c.ras.stack[i])
	}
	w(uint64(c.ras.tos))
	for i := range c.loop.entries {
		w(c.loop.entries[i].tag)
		w(uint64(c.loop.entries[i].streak))
	}
	return h.Sum64()
}
