package uarch

import (
	"testing"

	"dejavuzz/internal/isa"
	"dejavuzz/internal/isasim"
	"dejavuzz/internal/mem"
)

// testSpace builds a small layout: code (RX), data (RW), secret (configurable).
func testSpace(t testing.TB, secretPerm mem.Perm, secretFault mem.FaultKind) *mem.Space {
	t.Helper()
	sp := mem.NewSpace()
	sp.MustAddRegion(mem.Region{Name: "code", Base: 0x1000, Size: 0x1000, Perm: mem.PermRead | mem.PermExec})
	sp.MustAddRegion(mem.Region{Name: "secret", Base: 0x2000, Size: 0x1000, Perm: secretPerm, Fault: secretFault})
	sp.MustAddRegion(mem.Region{Name: "data", Base: 0x8000, Size: 0x8000, Perm: mem.PermRead | mem.PermWrite})
	return sp
}

func loadProgram(sp *mem.Space, p *isa.Program) {
	sp.WriteRaw(p.Base, p.Bytes())
}

func runCore(t testing.TB, cfg Config, sp *mem.Space, entry uint64, maxCycles int) *Core {
	t.Helper()
	c := NewCore(cfg, sp, IFTOff)
	c.TrapHook = HaltingHook()
	c.Restart(entry)
	c.Run(maxCycles)
	if !c.Halted {
		t.Fatalf("core did not halt within %d cycles (pc=%#x, rob=%d)", maxCycles, c.PC(), c.robCount)
	}
	return c
}

func TestCoreBasicArithmetic(t *testing.T) {
	sp := testSpace(t, mem.PermRead, mem.FaultAccess)
	p := isa.MustAsm(0x1000, `
		li   t0, 7
		li   t1, 5
		add  t2, t0, t1
		mul  t3, t0, t1
		sub  t4, t0, t1
		xor  t5, t0, t1
		sltu t6, t1, t0
		ecall
	`)
	loadProgram(sp, p)
	c := runCore(t, BOOMConfig(), sp, 0x1000, 2000)

	want := map[int]uint64{5: 7, 6: 5, 7: 12, 28: 35, 29: 2, 30: 2, 31: 1}
	for r, v := range want {
		if got, _ := c.ArchReg(r); got != v {
			t.Errorf("x%d = %d, want %d", r, got, v)
		}
	}
}

// Co-verification: random-ish straightline programs must retire identically
// to the ISA golden model.
func TestCoreMatchesGoldenModel(t *testing.T) {
	src := `
		li   a0, 1000
		li   a1, 3
		mul  a2, a0, a1
		addi a2, a2, -17
		div  a3, a2, a1
		rem  a4, a2, a1
		sll  a5, a1, a1
		la   t0, buf
		sd   a2, 0(t0)
		ld   t1, 0(t0)
		add  t2, t1, a3
		sw   t2, 8(t0)
		lw   t3, 8(t0)
		lbu  t4, 8(t0)
		sltu s0, a3, a2
		andi s1, a2, 0xff
		ecall
	`
	progSrc := "j start\nbuf:\n.word 0\n.word 0\n.word 0\n.word 0\nstart:\n" + src

	for _, kind := range []CoreKind{KindBOOM, KindXiangShan} {
		sp := testSpace(t, mem.PermRead, mem.FaultAccess)
		// Place code in data region? No: code region is RX; buf must be
		// writable. Use data region for the whole image (RWX for this test).
		sp2 := mem.NewSpace()
		sp2.MustAddRegion(mem.Region{Name: "all", Base: 0x1000, Size: 0x8000,
			Perm: mem.PermRead | mem.PermWrite | mem.PermExec})
		_ = sp
		p := isa.MustAsm(0x1000, progSrc)
		loadProgram(sp2, p)

		gold := isasim.New(sp2.Clone(), 0x1000)
		gold.Run(10000)

		c := runCore(t, ConfigFor(kind), sp2, 0x1000, 5000)
		for r := 1; r < 32; r++ {
			got, _ := c.ArchReg(r)
			if got != gold.X[r] {
				t.Errorf("%v: x%d(%s) = %#x, golden %#x", kind, r, isa.RegName(r), got, gold.X[r])
			}
		}
	}
}

func TestCoreBranchMispredictCreatesTransientWindow(t *testing.T) {
	sp := testSpace(t, mem.PermRead, mem.FaultAccess)
	// Branch is actually taken; untrained BHT predicts not-taken, so the
	// fall-through executes transiently and is squashed.
	p := isa.MustAsm(0x1000, `
		li   t0, 1
		beq  t0, t0, target
		addi t1, zero, 99     # transient
		addi t2, zero, 98     # transient
	target:
		addi t3, zero, 1
		ecall
	`)
	loadProgram(sp, p)
	c := runCore(t, BOOMConfig(), sp, 0x1000, 2000)

	if got, _ := c.ArchReg(6); got != 0 {
		t.Errorf("transient write leaked architecturally: t1 = %d", got)
	}
	if got, _ := c.ArchReg(28); got != 1 {
		t.Errorf("t3 = %d, want 1", got)
	}
	// The fall-through pc must appear in the trace as enqueued+squashed.
	ws := c.Trace.Window(p.Labels["target"]-8, p.Labels["target"])
	if !ws.Triggered() {
		t.Fatalf("transient window not observed: %+v trace=%v", ws, c.Trace)
	}
	found := false
	for _, s := range c.Trace.Squashes {
		if s.Reason == SquashBranchMispredict {
			found = true
		}
	}
	if !found {
		t.Fatalf("no branch-mispredict squash recorded: %+v", c.Trace.Squashes)
	}
}

func TestCoreMeltdownForwardsFaultingLoad(t *testing.T) {
	// Secret region unreadable -> access fault; dependent transient load
	// must fill a secret-indexed dcache line.
	sp := testSpace(t, 0, mem.FaultAccess)
	secretVal := uint64(3)
	sp.Write64(0x2000, secretVal, 0)
	sp.SetTaint(0x2000, 8, true)
	p := isa.MustAsm(0x1000, `
		la   t0, 0x2000       # secret address
		la   t1, 0x8000       # leak array
		ld   s0, 0(t0)        # faulting load (Meltdown)
		slli s1, s0, 6        # secret * 64
		add  t2, t1, s1
		ld   t3, 0(t2)        # secret-indexed fill
		nop
		ecall
	`)
	loadProgram(sp, p)

	c := NewCore(BOOMConfig(), sp, IFTCellIFT)
	c.TrapHook = HaltingHook()
	c.Restart(0x1000)
	c.Run(3000)
	if !c.Halted {
		t.Fatal("did not halt")
	}

	// The trap must be a load access fault.
	committedFault := false
	for _, r := range c.Trace.Insts {
		if r.Exception == isasim.CauseLoadAccessFault {
			committedFault = true
		}
	}
	if !committedFault {
		t.Fatalf("no load access fault committed; trace=%v", c.Trace)
	}
	// The dependent loads must have executed transiently.
	ws := c.Trace.Window(0x1000, 0x2000)
	if ws.Squashed == 0 {
		t.Fatalf("no transient instructions: %+v", ws)
	}
	// The secret-indexed line must be present and its tag control-tainted.
	if !c.DCache.Probe(0x8000 + secretVal*64) {
		t.Error("secret-indexed line not cached")
	}
	if lines := c.DCache.TaintedLinePositions(); len(lines) == 0 {
		t.Error("no control-tainted dcache lines (secret-indexed fill untracked)")
	}
	if c.TaintSum() == 0 {
		t.Error("taint sum is zero after transient secret access")
	}
}

func TestCoreStoreLoadForwarding(t *testing.T) {
	sp := testSpace(t, mem.PermRead, mem.FaultAccess)
	p := isa.MustAsm(0x1000, `
		la  t0, 0x8000
		li  t1, 1234
		sd  t1, 0(t0)
		ld  t2, 0(t0)
		ecall
	`)
	loadProgram(sp, p)
	c := runCore(t, BOOMConfig(), sp, 0x1000, 2000)
	if got, _ := c.ArchReg(7); got != 1234 {
		t.Errorf("forwarded load t2 = %d, want 1234", got)
	}
}

func TestCoreMemoryDisambiguationSquash(t *testing.T) {
	sp := testSpace(t, mem.PermRead, mem.FaultAccess)
	// Store address depends on a slow division; the younger load to the same
	// address speculates past it, reads stale memory, and must be squashed
	// and replayed when the store resolves.
	p := isa.MustAsm(0x1000, `
		la   t0, 0x8000
		sd   zero, 0(t0)     # stale value 0
		li   t1, 64
		li   t2, 2
		div  t3, t1, t2      # slow: 32
		add  t4, t0, t3
		addi t4, t4, -32     # t4 = 0x8000 after div resolves
		li   t5, 77
		sd   t5, 0(t4)       # store with slow address
		ld   t6, 0(t0)       # speculative load, same address
		ecall
	`)
	loadProgram(sp, p)
	c := runCore(t, BOOMConfig(), sp, 0x1000, 4000)
	if got, _ := c.ArchReg(31); got != 77 {
		t.Errorf("t6 = %d, want 77 (memory ordering violated architecturally)", got)
	}
	found := false
	for _, s := range c.Trace.Squashes {
		if s.Reason == SquashMemOrdering {
			found = true
		}
	}
	if !found {
		t.Fatalf("no memory-ordering squash: %+v", c.Trace.Squashes)
	}
}

func TestCoreReturnAddressPrediction(t *testing.T) {
	sp := testSpace(t, mem.PermRead, mem.FaultAccess)
	p := isa.MustAsm(0x1000, `
		li   s0, 0
		call fn
		addi s0, s0, 1
		ecall
	fn:
		addi s1, zero, 5
		ret
	`)
	loadProgram(sp, p)
	c := runCore(t, BOOMConfig(), sp, 0x1000, 2000)
	if got, _ := c.ArchReg(8); got != 1 {
		t.Errorf("s0 = %d, want 1", got)
	}
	if got, _ := c.ArchReg(9); got != 5 {
		t.Errorf("s1 = %d, want 5", got)
	}
}

func TestCoreIllegalAtDecodeBlocksWindowOnBOOM(t *testing.T) {
	sp := testSpace(t, mem.PermRead, mem.FaultAccess)
	p := isa.MustAsm(0x1000, `
		li t0, 1
		.illegal
		addi t1, zero, 42    # must NOT enter the RoB on BOOM
		ecall
	`)
	loadProgram(sp, p)

	boom := runCore(t, BOOMConfig(), sp, 0x1000, 2000)
	illegalPC := p.Base + 4 + 4 // after li (1 word) ... actually li 1 = 1 word
	_ = illegalPC
	ws := boom.Trace.Window(0x1008, 0x1010)
	if ws.Enqueued != 0 {
		t.Errorf("BOOM: post-illegal instruction entered RoB (window %+v)", ws)
	}

	xs := runCore(t, XiangShanConfig(), sp, 0x1000, 2000)
	ws = xs.Trace.Window(0x1008, 0x1010)
	if ws.Enqueued == 0 || !ws.Triggered() {
		t.Errorf("XiangShan: illegal instruction opened no transient window (%+v)", ws)
	}
}

func TestCoreMeltdownSamplingTruncation(t *testing.T) {
	// B1: on XiangShan, a masked illegal address truncates to a valid one on
	// the data path, sampling the secret at the truncated address.
	sp := testSpace(t, mem.PermRead, mem.FaultAccess) // secret readable but we use an unmapped high address
	secret := uint64(5)
	sp.Write64(0x2000, secret, 0)
	sp.SetTaint(0x2000, 8, true)
	p := isa.MustAsm(0x1000, `
		li   t0, 0x8000000000002000   # illegal address, truncates to 0x2000
		la   t1, 0x8000
		ld   s0, 0(t0)                # faults; data path samples 0x2000
		slli s1, s0, 6
		add  t2, t1, s1
		ld   t3, 0(t2)
		ecall
	`)
	loadProgram(sp, p)

	xs := NewCore(XiangShanConfig(), sp, IFTCellIFT)
	xs.TrapHook = HaltingHook()
	xs.Restart(0x1000)
	xs.Run(3000)
	if xs.BugWitness["meltdown-sampling"] == 0 {
		t.Fatal("B1 truncation path did not fire")
	}
	if !xs.DCache.Probe(0x8000 + secret*64) {
		t.Error("sampled-secret-indexed line not cached")
	}

	// BOOM (no truncation): the unmapped address forwards nothing.
	boom := NewCore(BOOMConfig(), sp.Clone(), IFTCellIFT)
	boom.TrapHook = HaltingHook()
	boom.Restart(0x1000)
	boom.Run(3000)
	if boom.DCache.Probe(0x8000 + secret*64) {
		t.Error("BOOM sampled the secret despite lacking B1")
	}
}

func TestCoreFetchFaultTraps(t *testing.T) {
	sp := testSpace(t, mem.PermRead, mem.FaultAccess)
	p := isa.MustAsm(0x1000, `
		j 0x7000
	`)
	_ = p
	loadProgram(sp, p)
	// 0x7000 is unmapped -> fetch fault -> trap -> halt.
	c := runCore(t, BOOMConfig(), sp, 0x1000, 2000)
	if c.TrapCount == 0 {
		t.Fatal("no trap on fetch fault")
	}
}
