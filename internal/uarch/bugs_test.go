package uarch

import (
	"testing"

	"dejavuzz/internal/isa"
	"dejavuzz/internal/mem"
)

// TestPhantomBTB (B3): an indirect-jump misprediction resolving in the same
// cycle as an exception commit pushes the jump's corrected target into the
// BTB entry of the excepting PC.
func TestPhantomBTB(t *testing.T) {
	// The jalr's target depends on a transient cache-missing load issued
	// behind the faulting trigger, so its resolution time sweeps relative to
	// the trap drain; some offset lands the resolution in the exception
	// commit's redirect-arbitration window.
	found := false
	for k := 0; k <= 48 && !found; k++ {
		sp := testSpace(t, mem.PermRead, mem.FaultAccess)
		src := `
			li   t6, 0x7000        # unmapped -> access fault at commit
			li   t4, 0x9000        # data line, warmed below
			ld   a3, 0(t4)         # warm TLB + dcache architecturally
			ld   t5, 0(t6)         # the faulting trigger: drain starts here
			ld   a2, 0(t4)         # transient hit; addi chain sweeps timing
		`
		for i := 0; i < k; i++ {
			src += "addi a2, a2, 4\n"
		}
		src += `
			jalr x0, 0(a2)
			ecall
		`
		p := isa.MustAsm(0x1000, src)
		loadProgram(sp, p)
		c := NewCore(BOOMConfig(), sp, IFTOff)
		c.TrapHook = HaltingHook()
		c.Restart(0x1000)
		c.Run(3000)
		if c.BugWitness["phantom-btb"] > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("B3 race never fired across resolution offsets")
	}
}

// TestSpectreRefetch (B4): a transient fetch that misses the icache keeps
// the fetch port busy across the squash, delaying post-window fetches.
func TestSpectreRefetch(t *testing.T) {
	sp := testSpace(t, mem.PermRead, mem.FaultAccess)
	p := isa.MustAsm(0x1000, `
		li   t6, 0x7000       # fault trigger
		ld   t5, 0(t6)
		j    0x1800           # transient: far jump -> icache miss
		ecall
	`)
	loadProgram(sp, p)
	// Make the far target fetchable.
	far := isa.MustAsm(0x1800, "nop\necall")
	loadProgram(sp, far)

	c := NewCore(BOOMConfig(), sp, IFTOff)
	c.TrapHook = HaltingHook()
	c.Restart(0x1000)
	c.Run(3000)
	if c.BugWitness["spectre-refetch-miss"] == 0 {
		t.Fatal("transient icache miss did not occupy the fetch port")
	}
}

// TestSpectreReload (B5): XiangShan's single load write-back port serialises
// simultaneous load completions.
func TestSpectreReload(t *testing.T) {
	sp := testSpace(t, mem.PermRead, mem.FaultAccess)
	// Warm three lines, then issue parallel cache-hit loads: with one WB
	// port their completions collide.
	p := isa.MustAsm(0x1000, `
		li t0, 0x8000
		ld a0, 0(t0)
		ld a1, 64(t0)
		ld a2, 128(t0)
		ld a3, 0(t0)
		ld a4, 64(t0)
		ld a5, 128(t0)
		ecall
	`)
	loadProgram(sp, p)
	xs := runCore(t, XiangShanConfig(), sp, 0x1000, 3000)
	if xs.BugWitness["spectre-reload"] == 0 {
		t.Fatal("no write-back port contention on XiangShan")
	}

	boom := runCore(t, BOOMConfig(), sp.Clone(), 0x1000, 3000)
	if boom.BugWitness["spectre-reload"] != 0 {
		t.Fatal("BOOM (2 WB ports) reported reload contention")
	}
}

// TestFDivContention: a long-latency fdiv occupies the unit, delaying a
// second fdiv (the Spectre-Rewind timing channel).
func TestFDivContention(t *testing.T) {
	sp := testSpace(t, mem.PermRead, mem.FaultAccess)
	p := isa.MustAsm(0x1000, `
		li t0, 0x4010000000000000
		fmv.d.x fa0, t0
		fdiv.d fa1, fa0, fa0
		fdiv.d fa2, fa0, fa0
		ecall
	`)
	loadProgram(sp, p)
	withContention := runCore(t, BOOMConfig(), sp, 0x1000, 3000).Cycle

	p2 := isa.MustAsm(0x1000, `
		li t0, 0x4010000000000000
		fmv.d.x fa0, t0
		fdiv.d fa1, fa0, fa0
		nop
		ecall
	`)
	sp2 := testSpace(t, mem.PermRead, mem.FaultAccess)
	loadProgram(sp2, p2)
	single := runCore(t, BOOMConfig(), sp2, 0x1000, 3000).Cycle
	if withContention <= single {
		t.Fatalf("no fdiv serialisation: %d vs %d cycles", withContention, single)
	}
}

// TestDiffPairTimingChannel: a secret-dependent dcache access pattern makes
// the two DUT instances take different cycle counts.
func TestDiffPairConstantTimeHolds(t *testing.T) {
	// With an encode-free program the instances must be cycle-identical:
	// the constant-time oracle's baseline.
	sp1 := testSpace(t, mem.PermRead, mem.FaultAccess)
	sp2 := testSpace(t, mem.PermRead, mem.FaultAccess)
	sp1.Write64(0x2000, 0xaaaa, 0)
	sp2.Write64(0x2000, 0x5555, 0)
	p := isa.MustAsm(0x1000, `
		la t0, 0x2000
		ld s0, 0(t0)
		add t1, s0, s0
		ecall
	`)
	loadProgram(sp1, p)
	loadProgram(sp2, p)

	a := NewCore(BOOMConfig(), sp1, IFTOff)
	b := NewCore(BOOMConfig(), sp2, IFTOff)
	a.TrapHook = HaltingHook()
	b.TrapHook = HaltingHook()
	a.Restart(0x1000)
	b.Restart(0x1000)
	pair := NewPair(a, b)
	ca, cb := pair.Run(3000)
	if ca != cb {
		t.Fatalf("non-encoding program shows timing difference: %d vs %d", ca, cb)
	}
}

func TestCensusModulesComplete(t *testing.T) {
	sp := testSpace(t, mem.PermRead, mem.FaultAccess)
	c := NewCore(XiangShanConfig(), sp, IFTOff)
	mods := map[string]bool{}
	for _, m := range c.Census() {
		mods[m.Module] = true
	}
	for _, want := range []string{"frontend", "rob", "regfile", "lsu", "dcache",
		"icache", "lfb", "dtlb", "itlb", "l2tlb", "bht", "btb", "faubtb",
		"indbtb", "ras", "loop", "fpu"} {
		if !mods[want] {
			t.Errorf("census missing module %q", want)
		}
	}
}
