// Package analyzertest is a minimal analysistest: it loads one fixture
// package from an analyzer's testdata directory, runs the analyzer (and
// its Requires closure), and checks the diagnostics against `// want`
// comments.
//
// Fixtures live at testdata/src/<pkg>/*.go and may import only the
// standard library (resolved through the source importer). Expectations
// are trailing comments on the offending line:
//
//	for k := range m { // want `range over map`
//
// Each backquoted or double-quoted string is a regexp; a line may carry
// several, and every diagnostic must be matched by exactly one
// expectation on its line (and vice versa).
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"dejavuzz/internal/analysis/driver"
)

// Run loads testdata/src/<pkg> relative to the test's working directory
// and reports every mismatch between the analyzer's diagnostics and the
// fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	fset := token.NewFileSet()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analyzertest: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("analyzertest: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("analyzertest: no fixture files in %s", dir)
	}

	build.Default.CgoEnabled = false
	info := driver.NewTypesInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("analyzertest: type-check fixture %s: %v", pkg, err)
	}
	dp := &driver.Package{PkgPath: pkg, Files: files, Types: tpkg, Info: info, Sizes: conf.Sizes}

	diags, err := driver.Run(fset, []*driver.Package{dp}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analyzertest: %v", err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		key := lineKey{d.Pos.Filename, d.Pos.Line}
		if !matchWant(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re.String())
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func matchWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[lineKey][]*want {
	t.Helper()
	out := make(map[lineKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range wantArgRE.FindAllString(text, -1) {
					var pat string
					if raw[0] == '`' {
						pat = raw[1 : len(raw)-1]
					} else {
						unq, err := unquote(raw)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, raw, err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					key := lineKey{pos.Filename, pos.Line}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}

func unquote(s string) (string, error) {
	var out string
	_, err := fmt.Sscanf(s, "%q", &out)
	return out, err
}
