package mapiter_test

import (
	"testing"

	"dejavuzz/internal/analysis/analyzertest"
	"dejavuzz/internal/analysis/mapiter"
)

func TestMapiter(t *testing.T) {
	if err := mapiter.Analyzer.Flags.Set("scope", "*"); err != nil {
		t.Fatal(err)
	}
	analyzertest.Run(t, mapiter.Analyzer, "mapitertest")
}
