package mapitertest

import (
	"encoding/json"
	"math/rand"
	"sort"
)

// Escapes unsorted: the slice is returned in map visit order.
func bad(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map: iteration order is nondeterministic`
		out = append(out, k)
	}
	return out
}

// Pure counting is commutative.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Counting behind control flow is still commutative.
func countIf(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

// Floating-point accumulation is order-sensitive and must be flagged.
func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `range over map: iteration order is nondeterministic`
		s += v
	}
	return s
}

// Set insertion into another map is commutative (keys are unique).
func copyInto(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// Append-then-sort: sorted before anything observes the slice.
func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func send(int) {}

// Waived with a justification: accepted without comment.
func waived(m map[string]int) {
	//dvz:ordered delivery order across independent sinks is unobservable
	for _, ch := range m {
		send(ch)
	}
}

// Waived without a justification: the waiver itself is the finding.
func unjustified(m map[string]int) {
	//dvz:ordered
	for _, ch := range m { // want `//dvz:ordered waiver has no justification`
		send(ch)
	}
}

// Serialization in visit order reshapes checkpoints; no waiver may bless it.
func leakJSON(m map[string]int) {
	//dvz:ordered nice try
	for k := range m { // want `map iteration serializes in visit order and cannot be waived`
		b, _ := json.Marshal(k)
		_ = b
	}
}

// Feeding an RNG in visit order reshapes the stimulus stream; unwaivable.
func leakRNG(m map[string]int, r *rand.Rand) {
	//dvz:ordered nice try
	for k := range m { // want `map iteration feeds a \*rand.Rand in visit order and cannot be waived`
		r.Intn(len(k) + 1)
	}
}
