// Package mapiter flags `for … range` over maps in determinism-relevant
// packages. Go randomises map iteration order per run, so any map loop
// whose effect depends on visit order is a cross-run nondeterminism bug —
// exactly what the engine's byte-identity guarantee forbids.
//
// A loop passes without comment when the analyzer can prove it
// order-insensitive:
//
//   - pure counting: integer ++ / += / -= and bitwise-accumulate
//     assignments (floating-point accumulation is order-sensitive and is
//     not accepted);
//   - set insertion: `m[k] = v` stores into another map;
//   - append-then-sort: appends into a slice that is sorted (sort.* or
//     slices.Sort*) in the enclosing block before any other statement
//     touches it;
//   - writes confined to loop-local variables, if/continue control flow
//     around the above, and idempotent `x = <constant>` stores.
//
// Anything else needs an explicit waiver comment on the loop line or the
// line above:
//
//	//dvz:ordered <justification>
//
// A waiver without a justification is an error, and a waiver cannot
// silence a loop that serializes (encoding/json, encoding/gob) or feeds a
// *rand.Rand in map order — those reshape checkpoints, reports or
// stimulus streams and must iterate sorted keys instead.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"dejavuzz/internal/analysis/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "mapiter",
	Doc:      "flag map iteration whose order can leak into reports, events, checkpoints or stimulus streams",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var scope string

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", lintutil.DeterminismScope,
		"comma-separated packages to check (\"*\" for all)")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.InScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	waivers := lintutil.Collect(pass.Fset, pass.Files, "ordered")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		rs := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		if just, ok := waivers.At(rs.For); ok {
			if strings.TrimSpace(just) == "" {
				pass.Reportf(rs.For, "//dvz:ordered waiver has no justification")
			} else if why := unwaivable(pass, rs.Body); why != "" {
				pass.Reportf(rs.For, "map iteration %s in visit order and cannot be waived; iterate sorted keys", why)
			}
			return true
		}
		if insensitive(pass, rs, stack) {
			return true
		}
		pass.Reportf(rs.For, "range over map: iteration order is nondeterministic; iterate sorted keys, or add //dvz:ordered <justification> if provably order-insensitive")
		return true
	})
	return nil, nil
}

// unwaivable returns a non-empty reason when the loop body does something
// no waiver may bless: serializing or feeding an RNG in map visit order.
func unwaivable(pass *analysis.Pass, body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || reason != "" {
			return reason == ""
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.MethodVal && isRandRand(s.Recv()) {
			reason = "feeds a *rand.Rand"
			return false
		}
		if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "encoding/json", "encoding/gob":
				reason = "serializes"
				return false
			}
		}
		return true
	})
	return reason
}

func isRandRand(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Name() != "Rand" {
		return false
	}
	path := obj.Pkg().Path()
	return path == "math/rand" || path == "math/rand/v2"
}

// insensitive reports whether the map loop is provably order-insensitive:
// its body is built only from the commutative statement forms, and every
// slice it appends to is sorted in the enclosing block before anything
// else observes it.
func insensitive(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	c := &classifier{pass: pass, locals: make(map[types.Object]bool)}
	c.defineLoopVars(rs)
	if !c.stmts(rs.Body.List) {
		return false
	}
	if len(c.appends) == 0 {
		return true
	}
	list, idx := enclosingList(rs, stack)
	if list == nil {
		return false
	}
	for target := range c.appends {
		if !sortedBeforeEscape(pass, target, list[idx+1:]) {
			return false
		}
	}
	return true
}

// enclosingList finds the statement list holding the range statement and
// its index within it.
func enclosingList(rs *ast.RangeStmt, stack []ast.Node) ([]ast.Stmt, int) {
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch n := stack[i].(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			continue
		}
		for j, s := range list {
			if s == ast.Stmt(rs) {
				return list, j
			}
		}
	}
	return nil, 0
}

// classifier walks a loop body, accepting only statement forms whose
// combined effect is independent of iteration order. It tracks variables
// declared inside the loop (writes to them are invisible across
// iterations) and the outer slices the loop appends to (which must be
// sorted afterwards).
type classifier struct {
	pass    *analysis.Pass
	locals  map[types.Object]bool
	appends map[string]bool // ExprString of append targets needing a later sort
}

func (c *classifier) defineLoopVars(rs *ast.RangeStmt) {
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				c.locals[obj] = true
			}
		}
	}
}

func (c *classifier) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if !c.stmt(s) {
			return false
		}
	}
	return true
}

func (c *classifier) stmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		// Labeled jumps can re-order arbitrarily; plain continue/break only
		// skip commutative work.
		return s.Label == nil && (s.Tok == token.CONTINUE || s.Tok == token.BREAK)
	case *ast.BlockStmt:
		return c.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil && !c.stmt(s.Init) {
			return false
		}
		if !c.stmts(s.Body.List) {
			return false
		}
		return s.Else == nil || c.stmt(s.Else)
	case *ast.SwitchStmt:
		if s.Init != nil && !c.stmt(s.Init) {
			return false
		}
		for _, cl := range s.Body.List {
			if !c.stmts(cl.(*ast.CaseClause).Body) {
				return false
			}
		}
		return true
	case *ast.TypeSwitchStmt:
		if s.Init != nil && !c.stmt(s.Init) {
			return false
		}
		if !c.stmt(s.Assign) {
			return false
		}
		for _, cl := range s.Body.List {
			if !c.stmts(cl.(*ast.CaseClause).Body) {
				return false
			}
		}
		return true
	case *ast.RangeStmt:
		c.defineLoopVars(s)
		return c.stmts(s.Body.List)
	case *ast.ForStmt:
		if s.Init != nil && !c.stmt(s.Init) {
			return false
		}
		if s.Post != nil && !c.stmt(s.Post) {
			return false
		}
		return c.stmts(s.Body.List)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, name := range vs.Names {
					if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
						c.locals[obj] = true
					}
				}
			}
		}
		return true
	case *ast.IncDecStmt:
		return c.localWrite(s.X) || isInteger(c.pass.TypesInfo.TypeOf(s.X))
	case *ast.AssignStmt:
		return c.assign(s)
	case *ast.ExprStmt:
		// The only bare call accepted is sorting a loop-local slice
		// (e.g. collecting one sub-slice per outer iteration).
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if target, ok := sortTarget(c.pass, call); ok {
			return c.localWrite(target)
		}
		return false
	default:
		return false
	}
}

func (c *classifier) assign(s *ast.AssignStmt) bool {
	if s.Tok == token.DEFINE {
		// Fresh per-iteration variables: their values may be read from
		// anywhere, their lifetime ends with the iteration.
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
					c.locals[obj] = true
				}
			}
		}
		return true
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if len(s.Lhs) != 1 {
			return false
		}
		return c.localWrite(s.Lhs[0]) || isInteger(c.pass.TypesInfo.TypeOf(s.Lhs[0]))
	case token.ASSIGN:
		if len(s.Lhs) != len(s.Rhs) {
			return false
		}
		for i, lhs := range s.Lhs {
			if !c.assignPair(lhs, s.Rhs[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func (c *classifier) assignPair(lhs, rhs ast.Expr) bool {
	if c.localWrite(lhs) {
		return true
	}
	// Set insertion: a store into another map is commutative as long as
	// the loop writes each key at most once (map keys are unique).
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if t := c.pass.TypesInfo.TypeOf(ix.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				return true
			}
		}
	}
	// Append: s = append(s, …) is accepted provisionally; the caller
	// checks the slice is sorted before escaping.
	if call, ok := rhs.(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) >= 1 {
			if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				if exprString(call.Args[0]) == exprString(lhs) {
					if c.appends == nil {
						c.appends = make(map[string]bool)
					}
					c.appends[exprString(lhs)] = true
					return true
				}
			}
		}
	}
	// Idempotent constant store (`found = true` style): every iteration
	// writes the same value, so order cannot matter.
	if tv, ok := c.pass.TypesInfo.Types[rhs]; ok && tv.Value != nil {
		return true
	}
	if id, ok := rhs.(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	return false
}

// localWrite reports whether the expression's root variable was declared
// inside the loop body.
func (c *classifier) localWrite(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = c.pass.TypesInfo.Defs[x]
			}
			return obj != nil && c.locals[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sortTarget recognises the sort calls the append-then-sort escape
// accepts and returns the sorted expression.
func sortTarget(pass *analysis.Pass, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok {
		return nil, false
	}
	switch pn.Imported().Path() {
	case "sort":
		switch sel.Sel.Name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
		default:
			return nil, false
		}
	case "slices":
		switch sel.Sel.Name {
		case "Sort", "SortFunc", "SortStableFunc":
		default:
			return nil, false
		}
	default:
		return nil, false
	}
	arg := call.Args[0]
	// sort.Sort(sort.StringSlice(x)) wraps the target in a conversion.
	if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		arg = conv.Args[0]
	}
	return arg, true
}

// sortedBeforeEscape scans the statements after the loop for a sort of
// target. Any earlier statement mentioning target counts as an escape.
func sortedBeforeEscape(pass *analysis.Pass, target string, rest []ast.Stmt) bool {
	for _, s := range rest {
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if arg, ok := sortTarget(pass, call); ok && exprString(arg) == target {
					return true
				}
			}
		}
		if mentions(s, target) {
			return false
		}
	}
	return false
}

func mentions(n ast.Node, target string) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if e, ok := n.(ast.Expr); ok && exprString(e) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprString renders the small lvalue expressions the classifier compares
// (identifiers, selector chains, index and deref forms).
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.BasicLit:
		return e.Value
	default:
		return "?"
	}
}
