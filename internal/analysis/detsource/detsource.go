// Package detsource forbids nondeterministic input sources in
// determinism-relevant packages: wall-clock reads (time.Now / time.Since /
// time.Until), the process environment (os.Getenv / os.LookupEnv /
// os.Environ), the global math/rand source (any package-level rand
// function), and RNG construction (rand.New / rand.NewSource and the v2
// constructors) outside the generator seams — the internal/gen functions
// that derive per-shard streams from the campaign seed.
//
// Wall-clock reads alone are waivable, because the engine deliberately
// measures Duration and FirstBug (both documented as excluded from
// byte-identity):
//
//	//dvz:wallclock <justification>
//
// Environment and RNG findings have no waiver: thread configuration
// through Options, and derive randomness from gen.New/gen.NewEpochShard.
package detsource

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"dejavuzz/internal/analysis/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "detsource",
	Doc:      "forbid wall-clock, environment and unseamed RNG sources in determinism-relevant packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	scope     string
	seamPkg   string
	seamFuncs string
)

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", lintutil.DeterminismScope,
		"comma-separated packages to check (\"*\" for all)")
	Analyzer.Flags.StringVar(&seamPkg, "seampkg", "dejavuzz/internal/gen",
		"package whose seam functions may construct RNGs")
	Analyzer.Flags.StringVar(&seamFuncs, "seams", "New,NewEpochShard,buildRand",
		"comma-separated function names in seampkg allowed to call rand.New/rand.NewSource")
}

var rngConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.InScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	waivers := lintutil.Collect(pass.Fset, pass.Files, "wallclock")
	seams := make(map[string]bool)
	for _, s := range strings.Split(seamFuncs, ",") {
		seams[strings.TrimSpace(s)] = true
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		// Only package-level functions: methods like (*rand.Rand).Intn or
		// (time.Time).Sub are how deterministic code is supposed to look.
		if fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				if just, ok := waivers.At(call.Pos()); ok {
					if strings.TrimSpace(just) == "" {
						pass.Reportf(call.Pos(), "//dvz:wallclock waiver has no justification")
					}
					return true
				}
				pass.Reportf(call.Pos(), "time.%s reads the wall clock in a determinism-relevant package; campaign results must not depend on it (waive measurement-only uses with //dvz:wallclock <justification>)", fn.Name())
			}
		case "os":
			switch fn.Name() {
			case "Getenv", "LookupEnv", "Environ":
				pass.Reportf(call.Pos(), "os.%s reads the process environment in a determinism-relevant package; thread configuration through Options instead", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if rngConstructors[fn.Name()] {
				if pass.Pkg.Path() == seamPkg && seams[enclosingFuncName(stack)] {
					return true
				}
				pass.Reportf(call.Pos(), "rand.%s constructs an RNG outside the generator seams; derive shard streams via gen.New/gen.NewEpochShard", fn.Name())
				return true
			}
			pass.Reportf(call.Pos(), "rand.%s draws from the global math/rand source, which is shared and seeded nondeterministically; use the shard generator's stream", fn.Name())
		}
		return true
	})
	return nil, nil
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}
