package detsource_test

import (
	"testing"

	"dejavuzz/internal/analysis/analyzertest"
	"dejavuzz/internal/analysis/detsource"
)

func TestDetsource(t *testing.T) {
	for flag, val := range map[string]string{
		"scope":   "*",
		"seampkg": "detsourcetest",
		"seams":   "buildRand",
	} {
		if err := detsource.Analyzer.Flags.Set(flag, val); err != nil {
			t.Fatal(err)
		}
	}
	analyzertest.Run(t, detsource.Analyzer, "detsourcetest")
}
