package detsourcetest

import (
	"math/rand"
	"os"
	"time"
)

func clock() time.Duration {
	start := time.Now()      // want `time.Now reads the wall clock in a determinism-relevant package`
	return time.Since(start) // want `time.Since reads the wall clock in a determinism-relevant package`
}

func waivedClock() time.Time {
	//dvz:wallclock measurement only, documented as excluded from byte-identity
	return time.Now()
}

func unjustifiedWaiver() time.Time {
	//dvz:wallclock
	return time.Now() // want `//dvz:wallclock waiver has no justification`
}

func env() string {
	return os.Getenv("HOME") // want `os.Getenv reads the process environment in a determinism-relevant package`
}

func globalRand() int {
	return rand.Int() // want `rand.Int draws from the global math/rand source`
}

func construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `rand.New constructs an RNG outside the generator seams` `rand.NewSource constructs an RNG outside the generator seams`
}

// buildRand is configured as a seam in the test: construction is legal here.
func buildRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Methods on an already-derived stream are exactly how deterministic code
// should look.
func methodsAreFine(r *rand.Rand) int {
	return r.Intn(8)
}
