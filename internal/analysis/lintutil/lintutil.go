// Package lintutil carries the two pieces every determinism analyzer
// shares: the determinism-relevant package scope and the `//dvz:<name>`
// waiver-directive comments.
package lintutil

import (
	"go/ast"
	"go/token"
	"strings"
)

// DeterminismScope is the default analyzer scope: the packages whose code
// must replay byte-identically for any worker count and across
// cancel/resume. Wall-clock, environment reads and ad-hoc RNG stay legal
// everywhere else (internal/server, internal/experiments, the cmd
// binaries).
const DeterminismScope = "dejavuzz," +
	"dejavuzz/internal/core," +
	"dejavuzz/internal/scenario," +
	"dejavuzz/internal/gen," +
	"dejavuzz/internal/campaign," +
	"dejavuzz/internal/triage"

// InScope reports whether pkgPath is named by the comma-separated scope
// list. The element "*" matches every package (test fixtures).
func InScope(scope, pkgPath string) bool {
	for _, s := range strings.Split(scope, ",") {
		s = strings.TrimSpace(s)
		if s == "*" || s == pkgPath {
			return true
		}
	}
	return false
}

// Directives indexes the `//dvz:<name> <justification>` waiver comments of
// one package for one directive name.
type Directives struct {
	fset *token.FileSet
	// byLine maps file name then line to the text after the directive
	// marker (the justification, possibly empty).
	byLine map[string]map[int]string
}

// Collect gathers every `//dvz:<name>` comment in the files. The
// justification is whatever follows the marker on the same line.
func Collect(fset *token.FileSet, files []*ast.File, name string) *Directives {
	marker := "//dvz:" + name
	d := &Directives{fset: fset, byLine: make(map[string]map[int]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, marker)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]string)
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = strings.TrimSpace(rest)
			}
		}
	}
	return d
}

// At returns the waiver covering the node at pos: a directive comment
// trailing the same line or sitting on the line directly above.
func (d *Directives) At(pos token.Pos) (justification string, ok bool) {
	p := d.fset.Position(pos)
	lines := d.byLine[p.Filename]
	if lines == nil {
		return "", false
	}
	if j, ok := lines[p.Line]; ok {
		return j, true
	}
	if j, ok := lines[p.Line-1]; ok {
		return j, true
	}
	return "", false
}
