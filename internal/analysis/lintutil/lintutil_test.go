package lintutil_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"dejavuzz/internal/analysis/lintutil"
)

func TestInScope(t *testing.T) {
	cases := []struct {
		scope, pkg string
		want       bool
	}{
		{"a,b", "a", true},
		{"a,b", "b", true},
		{"a,b", "c", false},
		{"a, b", "b", true},
		{"*", "anything", true},
		{"a,*", "anything", true},
		{"", "a", false},
		{lintutil.DeterminismScope, "dejavuzz/internal/core", true},
		{lintutil.DeterminismScope, "dejavuzz/internal/server", false},
		{lintutil.DeterminismScope, "dejavuzz", true},
	}
	for _, c := range cases {
		if got := lintutil.InScope(c.scope, c.pkg); got != c.want {
			t.Errorf("InScope(%q, %q) = %v, want %v", c.scope, c.pkg, got, c.want)
		}
	}
}

func TestDirectives(t *testing.T) {
	const src = `package p

func f(m map[int]int) {
	//dvz:ordered reason one
	for range m {
	}
	for range m { //dvz:ordered
	}
	//dvz:orderedX not this directive
	for range m {
	}
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	d := lintutil.Collect(fset, []*ast.File{f}, "ordered")

	var loops []token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			loops = append(loops, rs.For)
		}
		return true
	})
	if len(loops) != 3 {
		t.Fatalf("found %d range loops, want 3", len(loops))
	}

	if just, ok := d.At(loops[0]); !ok || just != "reason one" {
		t.Errorf("loop 0: got (%q, %v), want (\"reason one\", true) from line-above directive", just, ok)
	}
	if just, ok := d.At(loops[1]); !ok || just != "" {
		t.Errorf("loop 1: got (%q, %v), want (\"\", true) from trailing bare directive", just, ok)
	}
	if _, ok := d.At(loops[2]); ok {
		t.Errorf("loop 2: matched //dvz:orderedX, want no waiver")
	}
}
