package rngshare_test

import (
	"testing"

	"dejavuzz/internal/analysis/analyzertest"
	"dejavuzz/internal/analysis/rngshare"
)

func TestRngshare(t *testing.T) {
	for flag, val := range map[string]string{
		"scope":  "*",
		"rngpkg": "othergen",
	} {
		if err := rngshare.Analyzer.Flags.Set(flag, val); err != nil {
			t.Fatal(err)
		}
	}
	analyzertest.Run(t, rngshare.Analyzer, "rngsharetest")
}
