// Package rngshare flags *rand.Rand values that can cross a shard
// boundary: a rand captured by (or passed to) a goroutine, or stored in a
// struct field declared outside the generator package. The engine's
// determinism model gives each shard a private RNG stream derived from
// (campaign seed, shard, epoch); a rand reachable from two goroutines or
// embedded in state that outlives its shard both races and decouples the
// stream from the shard, silently reshaping stimuli.
//
// Struct fields provably confined to one shard can be waived:
//
//	//dvz:shardlocal <justification>
//
// Goroutine findings have no waiver — pass seeds, not streams.
package rngshare

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"dejavuzz/internal/analysis/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "rngshare",
	Doc:      "flag *rand.Rand values shared across goroutines or stored outside the generator package",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	scope  string
	rngPkg string
)

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", lintutil.DeterminismScope,
		"comma-separated packages to check (\"*\" for all)")
	Analyzer.Flags.StringVar(&rngPkg, "rngpkg", "dejavuzz/internal/gen",
		"generator package whose own structs may hold RNG state")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.InScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	waivers := lintutil.Collect(pass.Fset, pass.Files, "shardlocal")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Struct fields holding rand state outside the generator package.
	if pass.Pkg.Path() != rngPkg {
		ins.Preorder([]ast.Node{(*ast.StructType)(nil)}, func(n ast.Node) {
			st := n.(*ast.StructType)
			for _, field := range st.Fields.List {
				t := pass.TypesInfo.TypeOf(field.Type)
				if t == nil || !isRandRand(t) {
					continue
				}
				if just, ok := waivers.At(field.Pos()); ok {
					if strings.TrimSpace(just) == "" {
						pass.Reportf(field.Pos(), "//dvz:shardlocal waiver has no justification")
					}
					continue
				}
				pass.Reportf(field.Pos(), "struct field stores a rand.Rand outside %s; RNG streams belong to shard generators (waive provably shard-confined state with //dvz:shardlocal <justification>)", rngPkg)
			}
		})
	}

	// Rand streams escaping into goroutines.
	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		gs := n.(*ast.GoStmt)
		for _, arg := range gs.Call.Args {
			if t := pass.TypesInfo.TypeOf(arg); t != nil && isRandRand(t) {
				pass.Reportf(arg.Pos(), "*rand.Rand passed to a goroutine; shard RNG streams are single-goroutine — pass a seed and derive a stream instead")
			}
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || !isRandRand(obj.Type()) || obj.IsField() {
				return true
			}
			if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
				return true // declared inside the closure
			}
			pass.Reportf(id.Pos(), "goroutine closure captures *rand.Rand %q; shard RNG streams are single-goroutine — pass a seed and derive a stream instead", id.Name)
			return true
		})
	})
	return nil, nil
}

func isRandRand(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Name() != "Rand" {
		return false
	}
	path := obj.Pkg().Path()
	return path == "math/rand" || path == "math/rand/v2"
}
