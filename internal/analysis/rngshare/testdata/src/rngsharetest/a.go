package rngsharetest

import "math/rand"

type shard struct {
	rng *rand.Rand // want `struct field stores a rand.Rand outside othergen`
}

type waivedShard struct {
	//dvz:shardlocal owned by exactly one shard goroutine for its whole lifetime
	rng *rand.Rand
}

type unjustifiedShard struct {
	//dvz:shardlocal
	rng *rand.Rand // want `//dvz:shardlocal waiver has no justification`
}

func worker(r *rand.Rand) { _ = r }

func spawnArg(r *rand.Rand) {
	go worker(r) // want `\*rand.Rand passed to a goroutine`
}

func spawnCapture(r *rand.Rand) {
	go func() {
		_ = r.Intn(3) // want `goroutine closure captures \*rand.Rand "r"`
	}()
}

// A stream derived inside the goroutine never crosses the boundary.
func declaredInside() {
	go func() {
		r := rand.New(rand.NewSource(1))
		_ = r.Intn(3)
	}()
}
