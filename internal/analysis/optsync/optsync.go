// Package optsync performs struct-field exhaustiveness checks on the two
// Options types whose field sets gate the engine's resume and wire
// invariants:
//
//   - engine half (core.Options): every field must either be read by the
//     DiffFrom enumeration (so an option mismatch on resume names the
//     field) or be listed — with a justification — in the package's
//     determinism-irrelevant allowlist variable. A field in both, a stale
//     allowlist entry, or an entry without a justification is an error.
//     This makes DiffFrom's "options differ in a field DiffFrom does not
//     enumerate" fallback structurally unreachable: a new field cannot be
//     added without classifying it.
//
//   - wire half (dejavuzz.Options): every field must be referenced by
//     both MarshalJSON and UnmarshalJSON, every wire-struct field (json
//     key) must be populated by MarshalJSON and copied out by
//     UnmarshalJSON, and the key sets the two methods speak must match —
//     a key marshalled but never unmarshalled would silently drop
//     configuration at the API boundary.
package optsync

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"

	"dejavuzz/internal/analysis/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "optsync",
	Doc:  "check core.Options/DiffFrom and dejavuzz.Options/Marshal/Unmarshal field exhaustiveness",
	Run:  run,
}

var (
	enginePkg string
	wirePkg   string
	allowVar  string
)

func init() {
	Analyzer.Flags.StringVar(&enginePkg, "enginepkg", "dejavuzz/internal/core",
		"package holding the engine Options with DiffFrom")
	Analyzer.Flags.StringVar(&wirePkg, "wirepkg", "dejavuzz",
		"package holding the wire Options with MarshalJSON/UnmarshalJSON")
	Analyzer.Flags.StringVar(&allowVar, "allowvar", "optionsDeterminismIrrelevant",
		"name of the determinism-irrelevant field allowlist variable in enginepkg")
}

func run(pass *analysis.Pass) (interface{}, error) {
	// lintutil.InScope keeps the flag syntax uniform with the other
	// analyzers when tests point the halves at fixture packages.
	if lintutil.InScope(enginePkg, pass.Pkg.Path()) {
		checkEngine(pass)
	}
	if lintutil.InScope(wirePkg, pass.Pkg.Path()) {
		checkWire(pass)
	}
	return nil, nil
}

// ---- engine half ----

func checkEngine(pass *analysis.Pass) {
	st, fields, pos := optionsStruct(pass)
	if st == nil {
		pass.Reportf(pos, "optsync: package %s has no Options struct to check", pass.Pkg.Path())
		return
	}
	diff := findMethod(pass, "Options", "DiffFrom")
	if diff == nil {
		pass.Reportf(pos, "optsync: %s.Options has no DiffFrom method enumerating its determinism-relevant fields", pass.Pkg.Path())
		return
	}
	enumerated := fieldsReferenced(pass, diff.Body, fields)
	allow, _ := allowlist(pass)

	names := make(map[string]bool, len(fields))
	for f := range fields {
		names[f.Name()] = true
	}
	for _, f := range orderedFields(st, fields) {
		inEnum := enumerated[f]
		_, inAllow := allow[f.Name()]
		switch {
		case inEnum && inAllow:
			pass.Reportf(f.Pos(), "Options.%s is both enumerated in DiffFrom and allowlisted as determinism-irrelevant; pick one", f.Name())
		case !inEnum && !inAllow:
			pass.Reportf(f.Pos(), "Options.%s is neither enumerated in DiffFrom nor listed in %s; classify the new field as determinism-relevant (add it to DiffFrom) or not (allowlist it with a justification)", f.Name(), allowVar)
		}
	}
	for name, entry := range allow {
		if !names[name] {
			pass.Reportf(entry.pos, "%s lists %q, which is not a field of Options", allowVar, name)
		} else if strings.TrimSpace(entry.justification) == "" {
			pass.Reportf(entry.pos, "%s entry %q has no justification", allowVar, name)
		}
	}
}

type allowEntry struct {
	justification string
	pos           token.Pos
}

// allowlist finds the package-level `var <allowVar> = map[string]string{…}`
// and returns its entries.
func allowlist(pass *analysis.Pass) (map[string]allowEntry, token.Pos) {
	out := make(map[string]allowEntry)
	var pos token.Pos
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != allowVar || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					pos = name.Pos()
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, kok := constString(pass, kv.Key)
						val, vok := constString(pass, kv.Value)
						if !kok {
							pass.Reportf(kv.Key.Pos(), "%s keys must be constant strings", allowVar)
							continue
						}
						if !vok {
							val = ""
						}
						out[key] = allowEntry{justification: val, pos: kv.Key.Pos()}
					}
				}
			}
		}
	}
	return out, pos
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	s := tv.Value.ExactString()
	if len(s) >= 2 && s[0] == '"' {
		return s[1 : len(s)-1], true
	}
	return s, true
}

// ---- wire half ----

func checkWire(pass *analysis.Pass) {
	st, fields, pos := optionsStruct(pass)
	if st == nil {
		pass.Reportf(pos, "optsync: package %s has no Options struct to check", pass.Pkg.Path())
		return
	}
	marshal := findMethod(pass, "Options", "MarshalJSON")
	unmarshal := findMethod(pass, "Options", "UnmarshalJSON")
	if marshal == nil || unmarshal == nil {
		pass.Reportf(pos, "optsync: %s.Options must declare both MarshalJSON and UnmarshalJSON", pass.Pkg.Path())
		return
	}

	refM := fieldsReferenced(pass, marshal.Body, fields)
	refU := fieldsReferenced(pass, unmarshal.Body, fields)
	for _, f := range orderedFields(st, fields) {
		if !refM[f] {
			pass.Reportf(f.Pos(), "Options.%s is never written to the wire by MarshalJSON; every field needs a wire key (or an explicit marker convention) in both directions", f.Name())
		}
		if !refU[f] {
			pass.Reportf(f.Pos(), "Options.%s is never decoded from the wire by UnmarshalJSON; every field needs a wire key (or an explicit marker convention) in both directions", f.Name())
		}
	}

	wireM := wireStructs(pass, marshal.Body)
	wireU := wireStructs(pass, unmarshal.Body)
	keysM := wireKeys(wireM)
	keysU := wireKeys(wireU)
	for key, f := range keysM {
		if _, ok := keysU[key]; !ok {
			pass.Reportf(f.Pos(), "wire key %q is written by MarshalJSON but UnmarshalJSON accepts no such key; the wire formats have drifted", key)
		}
	}
	for key, f := range keysU {
		if _, ok := keysM[key]; !ok {
			pass.Reportf(f.Pos(), "wire key %q is read by UnmarshalJSON but MarshalJSON never writes it; the wire formats have drifted", key)
		}
	}

	checkWireUsage(pass, marshal.Body, wireM, "populated by MarshalJSON")
	checkWireUsage(pass, unmarshal.Body, wireU, "copied out by UnmarshalJSON")
}

// checkWireUsage reports wire-struct fields the method body never touches
// — the copy-list drift a shared wire struct cannot catch by key parity.
func checkWireUsage(pass *analysis.Pass, body *ast.BlockStmt, wire []*types.Struct, what string) {
	fields := make(map[*types.Var]bool)
	for _, st := range wire {
		for i := 0; i < st.NumFields(); i++ {
			if key, ok := jsonKey(st, i); ok && key != "" {
				fields[st.Field(i)] = true
			}
		}
	}
	ref := fieldsReferenced(pass, body, fields)
	for _, st := range wire {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !fields[f] || ref[f] {
				continue
			}
			key, _ := jsonKey(st, i)
			pass.Reportf(f.Pos(), "wire field %s (key %q) is never %s; the wire struct and the copy code have drifted", f.Name(), key, what)
		}
	}
}

// wireStructs returns the named struct types with json-tagged fields the
// body references — the JSON shapes the method speaks.
func wireStructs(pass *analysis.Pass, body *ast.BlockStmt) []*types.Struct {
	seen := make(map[*types.Struct]bool)
	var out []*types.Struct
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		tn, ok := pass.TypesInfo.Uses[id].(*types.TypeName)
		if !ok {
			return true
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok || seen[st] || !hasJSONTag(st) {
			return true
		}
		seen[st] = true
		out = append(out, st)
		return true
	})
	return out
}

func hasJSONTag(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if reflect.StructTag(st.Tag(i)).Get("json") != "" {
			return true
		}
	}
	return false
}

// jsonKey returns the wire key of field i, or ok=false for `json:"-"`.
func jsonKey(st *types.Struct, i int) (string, bool) {
	tag := reflect.StructTag(st.Tag(i)).Get("json")
	name, _, _ := strings.Cut(tag, ",")
	switch name {
	case "-":
		return "", false
	case "":
		return st.Field(i).Name(), true
	}
	return name, true
}

// wireKeys maps every json key of the wire structs to its field.
func wireKeys(wire []*types.Struct) map[string]*types.Var {
	out := make(map[string]*types.Var)
	for _, st := range wire {
		for i := 0; i < st.NumFields(); i++ {
			if key, ok := jsonKey(st, i); ok {
				out[key] = st.Field(i)
			}
		}
	}
	return out
}

// ---- shared helpers ----

// optionsStruct finds the package's Options struct and its field objects.
func optionsStruct(pass *analysis.Pass) (*types.Struct, map[*types.Var]bool, token.Pos) {
	pos := token.NoPos
	if len(pass.Files) > 0 {
		pos = pass.Files[0].Name.Pos()
	}
	obj, ok := pass.Pkg.Scope().Lookup("Options").(*types.TypeName)
	if !ok {
		return nil, nil, pos
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, nil, pos
	}
	fields := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}
	return st, fields, obj.Pos()
}

// orderedFields returns the struct's fields in declaration order
// (deterministic diagnostics).
func orderedFields(st *types.Struct, fields map[*types.Var]bool) []*types.Var {
	out := make([]*types.Var, 0, len(fields))
	for i := 0; i < st.NumFields(); i++ {
		if fields[st.Field(i)] {
			out = append(out, st.Field(i))
		}
	}
	return out
}

// findMethod locates the declaration of a method on the named type (value
// or pointer receiver).
func findMethod(pass *analysis.Pass, typeName, method string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != method || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			t := fd.Recv.List[0].Type
			if se, ok := t.(*ast.StarExpr); ok {
				t = se.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == typeName {
				return fd
			}
		}
	}
	return nil
}

// fieldsReferenced walks a body and returns which of the given field
// objects it mentions — selector reads/writes and keyed composite-literal
// keys both resolve to the field object in the Uses map.
func fieldsReferenced(pass *analysis.Pass, body *ast.BlockStmt, fields map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && fields[v] {
			out[v] = true
		}
		return true
	})
	return out
}
