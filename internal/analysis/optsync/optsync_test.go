package optsync_test

import (
	"testing"

	"dejavuzz/internal/analysis/analyzertest"
	"dejavuzz/internal/analysis/optsync"
)

func setFlags(t *testing.T) {
	t.Helper()
	for flag, val := range map[string]string{
		"enginepkg": "optenginetest",
		"wirepkg":   "optwiretest",
		"allowvar":  "optionsDeterminismIrrelevant",
	} {
		if err := optsync.Analyzer.Flags.Set(flag, val); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOptsyncEngine(t *testing.T) {
	setFlags(t)
	analyzertest.Run(t, optsync.Analyzer, "optenginetest")
}

func TestOptsyncWire(t *testing.T) {
	setFlags(t)
	analyzertest.Run(t, optsync.Analyzer, "optwiretest")
}
