package optwiretest

import "encoding/json"

type Options struct {
	A       string
	B       int
	Missing bool // want `Options.Missing is never written to the wire by MarshalJSON`
}

type wireOut struct {
	A     string `json:"a"`
	B     int    `json:"b"`
	Extra string `json:"extra"` // want `wire key "extra" is written by MarshalJSON but UnmarshalJSON accepts no such key`
}

type wireIn struct {
	A    string `json:"a"`
	B    int    `json:"b"`
	Dead string `json:"dead"` // want `wire key "dead" is read by UnmarshalJSON but MarshalJSON never writes it` `wire field Dead \(key "dead"\) is never copied out by UnmarshalJSON`
}

func (o Options) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireOut{A: o.A, B: o.B, Extra: "x"})
}

func (o *Options) UnmarshalJSON(b []byte) error {
	var w wireIn
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	o.A = w.A
	o.B = w.B
	o.Missing = false
	return nil
}
