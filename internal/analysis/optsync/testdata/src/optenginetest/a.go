package optenginetest

type Options struct {
	Seed    int64
	Workers int
	Both    string // want `Options.Both is both enumerated in DiffFrom and allowlisted as determinism-irrelevant`
	Stray   bool   // want `Options.Stray is neither enumerated in DiffFrom nor listed in optionsDeterminismIrrelevant`
	NoWhy   int
}

var optionsDeterminismIrrelevant = map[string]string{
	"Workers": "parallelism only; shards are the determinism unit",
	"Both":    "also enumerated above, which is the drift under test",
	"Ghost":   "no such field", // want `optionsDeterminismIrrelevant lists "Ghost", which is not a field of Options`
	"NoWhy":   "",              // want `optionsDeterminismIrrelevant entry "NoWhy" has no justification`
}

func (o Options) DiffFrom(other Options) []string {
	var diffs []string
	if o.Seed != other.Seed {
		diffs = append(diffs, "Seed")
	}
	if o.Both != other.Both {
		diffs = append(diffs, "Both")
	}
	return diffs
}
