// Package driver loads this module's packages and runs go/analysis
// analyzers over them.
//
// It is a deliberately small stand-in for the x/tools multichecker: the
// standard drivers sit on golang.org/x/tools/go/packages, which shells out
// to the build system and drags in a dependency tree this repo cannot
// vendor from the toolchain's own copy of x/tools (only the go/analysis
// core, the inspect pass and ast/inspector ship in $GOROOT/src/cmd/vendor).
// This driver instead enumerates module packages with `go list -json`,
// parses them with go/parser (comments retained — the dvz waiver
// directives live in comments) and type-checks them with go/types, pulling
// out-of-module imports (the standard library) through the source
// importer. That is everything the determinism-lint analyzers need:
// per-package syntax, full type information, and positions.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Package is one loaded, type-checked module package.
type Package struct {
	PkgPath string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Sizes   types.Sizes
}

// A Diagnostic is one analyzer finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// Load enumerates the packages matching patterns (resolved relative to
// dir) and type-checks them. The returned packages appear in `go list`
// order; the shared FileSet carries positions for every parsed file.
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// The source importer consults go/build; cgo packages cannot be
	// type-checked from source, so resolve the pure-Go variants of the
	// standard library (the module itself has no cgo).
	build.Default.CgoEnabled = false

	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("driver: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, nil, fmt.Errorf("driver: parse go list output: %v", err)
		}
		listed = append(listed, &lp)
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		listed: make(map[string]*listedPackage, len(listed)),
		loaded: make(map[string]*Package),
	}
	for _, lp := range listed {
		imp.listed[lp.ImportPath] = lp
	}

	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		p, err := imp.loadModulePackage(lp)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, p)
	}
	return fset, pkgs, nil
}

// moduleImporter resolves module-internal imports by type-checking the
// listed package from source and defers everything else (the standard
// library) to the go/importer source importer. Both sides cache, so each
// package is checked once per Load.
type moduleImporter struct {
	fset   *token.FileSet
	std    types.Importer
	listed map[string]*listedPackage
	loaded map[string]*Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if lp, ok := m.listed[path]; ok {
		p, err := m.loadModulePackage(lp)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return m.std.Import(path)
}

func (m *moduleImporter) loadModulePackage(lp *listedPackage) (*Package, error) {
	if p, ok := m.loaded[lp.ImportPath]; ok {
		return p, nil
	}
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(m.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("driver: %v", err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: m, Sizes: types.SizesFor("gc", build.Default.GOARCH)}
	tpkg, err := conf.Check(lp.ImportPath, m.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("driver: type-check %s: %v", lp.ImportPath, err)
	}
	p := &Package{
		PkgPath: lp.ImportPath,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Sizes:   conf.Sizes,
	}
	m.loaded[lp.ImportPath] = p
	return p, nil
}

// NewTypesInfo returns a types.Info with every map analyzers consume
// allocated (shared with the analyzertest harness).
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
}

// Run executes the analyzers (and their Requires closure, in dependency
// order) over every package and returns the collected diagnostics sorted
// by position. The determinism analyzers carry no cross-package facts, so
// the fact plumbing is stubbed out; an analyzer declaring FactTypes is
// rejected to keep that explicit.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, fmt.Errorf("driver: %v", err)
	}
	order, err := topoOrder(analyzers)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		results := make(map[*analysis.Analyzer]interface{})
		for _, a := range order {
			res, ds, err := RunPass(fset, pkg, a, results)
			if err != nil {
				return nil, fmt.Errorf("driver: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			results[a] = res
			diags = append(diags, ds...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// RunPass runs one analyzer over one package, with results holding the
// outputs of its (already-run) prerequisites. Exposed for the
// analyzertest harness.
func RunPass(fset *token.FileSet, pkg *Package, a *analysis.Analyzer, results map[*analysis.Analyzer]interface{}) (interface{}, []Diagnostic, error) {
	if len(a.FactTypes) > 0 {
		return nil, nil, fmt.Errorf("analyzer %s declares facts, which this driver does not support", a.Name)
	}
	var diags []Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		TypesSizes: pkg.Sizes,
		ResultOf:   results,
		Report: func(d analysis.Diagnostic) {
			diags = append(diags, Diagnostic{
				Pos:      fset.Position(d.Pos),
				Analyzer: a.Name,
				Message:  d.Message,
			})
		},
		ReadFile:          os.ReadFile,
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ExportPackageFact: func(analysis.Fact) {},
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, nil, err
	}
	if a.ResultType != nil && res != nil && reflect.TypeOf(res) != a.ResultType {
		return nil, nil, fmt.Errorf("analyzer %s returned %T, declared %v", a.Name, res, a.ResultType)
	}
	return res, diags, nil
}

// topoOrder expands the Requires closure into a run order where every
// analyzer follows its prerequisites. analysis.Validate has already
// rejected cycles.
func topoOrder(roots []*analysis.Analyzer) ([]*analysis.Analyzer, error) {
	var order []*analysis.Analyzer
	seen := make(map[*analysis.Analyzer]bool)
	var visit func(a *analysis.Analyzer)
	visit = func(a *analysis.Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, req := range a.Requires {
			visit(req)
		}
		order = append(order, a)
	}
	for _, a := range roots {
		visit(a)
	}
	return order, nil
}
