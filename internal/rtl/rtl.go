// Package rtl implements a word-level RTL intermediate representation and a
// cycle-accurate two-phase simulator for it.
//
// The IR models exactly the cell vocabulary the paper's Table 1 taint
// policies are defined over: combinational word cells (logic, arithmetic,
// comparison, shift, mux, slice/concat), registers with optional enables, and
// word-addressed memories with combinational read ports and clocked write
// ports. Designs are built programmatically (the Go analogue of Chisel
// elaboration); the ift package instruments them with CellIFT or diffIFT
// shadow state.
package rtl

import "fmt"

// SignalID names a wire in a design. Signals are single words up to 64 bits.
type SignalID int

// Invalid is the zero-value "no signal" marker.
const Invalid SignalID = -1

// CellKind enumerates combinational cell types.
type CellKind int

const (
	CellConst CellKind = iota
	CellNot
	CellAnd
	CellOr
	CellXor
	CellAdd
	CellSub
	CellEq
	CellNe
	CellLt  // unsigned <
	CellShl // shift left by in[1]
	CellShr // logical shift right by in[1]
	CellMux // in[0]=sel (1 bit), in[1]=a (sel=0), in[2]=b (sel=1)
	CellConcat
	CellSlice
	CellRedOr // |x -> 1 bit
	CellMemRd // combinational memory read: in[0]=addr
	CellBufIn // module input placeholder (testbench poke)
)

func (k CellKind) String() string {
	names := map[CellKind]string{
		CellConst: "const", CellNot: "not", CellAnd: "and", CellOr: "or",
		CellXor: "xor", CellAdd: "add", CellSub: "sub", CellEq: "eq",
		CellNe: "ne", CellLt: "lt", CellShl: "shl", CellShr: "shr",
		CellMux: "mux", CellConcat: "concat", CellSlice: "slice",
		CellRedOr: "redor", CellMemRd: "memrd", CellBufIn: "input",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("cell(%d)", int(k))
}

// Cell is a combinational operation producing one output signal.
type Cell struct {
	Kind  CellKind
	Out   SignalID
	In    []SignalID
	Const uint64
	Lo    int // slice low bit
	Mem   int // memory index for CellMemRd
}

// Reg is a clocked state element.
type Reg struct {
	Name   string
	Module string
	Width  int
	Q      SignalID // current value, readable combinationally
	D      SignalID // next value, connected after creation
	En     SignalID // write enable (Invalid = always enabled)
	Init   uint64
	Attrs  map[string]string
}

// WritePort is a clocked memory write port.
type WritePort struct {
	Addr SignalID
	Data SignalID
	En   SignalID
}

// Mem is a word-addressed memory (register array in Chisel terms).
type Mem struct {
	Name   string
	Module string
	Width  int
	Depth  int
	Writes []WritePort
	Init   []uint64
	Attrs  map[string]string
}

// Signal metadata.
type Signal struct {
	Name  string
	Width int
}

// Design is an elaborated netlist.
type Design struct {
	Name    string
	Signals []Signal
	Cells   []Cell
	Regs    []*Reg
	Mems    []*Mem
	Inputs  []SignalID

	defined []bool
	module  string // current module path during building
}

// NewDesign returns an empty design.
func NewDesign(name string) *Design {
	return &Design{Name: name}
}

// InModule sets the module path attributed to subsequently created state.
func (d *Design) InModule(path string) *Design {
	d.module = path
	return d
}

// Module returns the current module path.
func (d *Design) Module() string { return d.module }

func (d *Design) newSignal(name string, width int) SignalID {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("rtl: bad width %d for %s", width, name))
	}
	id := SignalID(len(d.Signals))
	d.Signals = append(d.Signals, Signal{Name: name, Width: width})
	d.defined = append(d.defined, false)
	return id
}

// Width returns a signal's width in bits.
func (d *Design) Width(s SignalID) int { return d.Signals[s].Width }

// Mask returns the value mask for a signal's width.
func (d *Design) Mask(s SignalID) uint64 { return WidthMask(d.Signals[s].Width) }

// WidthMask returns a mask with the low w bits set.
func WidthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

func (d *Design) use(ins ...SignalID) {
	for _, s := range ins {
		if s == Invalid {
			continue
		}
		if !d.defined[s] {
			panic(fmt.Sprintf("rtl: signal %q used before definition", d.Signals[s].Name))
		}
	}
}

func (d *Design) emit(c Cell) SignalID {
	d.use(c.In...)
	d.Cells = append(d.Cells, c)
	d.defined[c.Out] = true
	return c.Out
}

// Input declares a testbench-driven input signal.
func (d *Design) Input(name string, width int) SignalID {
	s := d.newSignal(name, width)
	d.Inputs = append(d.Inputs, s)
	d.emit(Cell{Kind: CellBufIn, Out: s})
	return s
}

// Konst emits a constant.
func (d *Design) Konst(name string, width int, v uint64) SignalID {
	s := d.newSignal(name, width)
	return d.emit(Cell{Kind: CellConst, Out: s, Const: v & WidthMask(width)})
}

func (d *Design) binary(kind CellKind, name string, a, b SignalID, width int) SignalID {
	out := d.newSignal(name, width)
	return d.emit(Cell{Kind: kind, Out: out, In: []SignalID{a, b}})
}

// Not, And, Or, Xor, Add, Sub build the corresponding word cells.
func (d *Design) Not(name string, a SignalID) SignalID {
	out := d.newSignal(name, d.Width(a))
	return d.emit(Cell{Kind: CellNot, Out: out, In: []SignalID{a}})
}

func (d *Design) And(name string, a, b SignalID) SignalID {
	return d.binary(CellAnd, name, a, b, d.Width(a))
}

func (d *Design) Or(name string, a, b SignalID) SignalID {
	return d.binary(CellOr, name, a, b, d.Width(a))
}

func (d *Design) Xor(name string, a, b SignalID) SignalID {
	return d.binary(CellXor, name, a, b, d.Width(a))
}

func (d *Design) Add(name string, a, b SignalID) SignalID {
	return d.binary(CellAdd, name, a, b, d.Width(a))
}

func (d *Design) Sub(name string, a, b SignalID) SignalID {
	return d.binary(CellSub, name, a, b, d.Width(a))
}

// Eq, Ne, Lt build 1-bit comparison cells.
func (d *Design) Eq(name string, a, b SignalID) SignalID {
	return d.binary(CellEq, name, a, b, 1)
}

func (d *Design) Ne(name string, a, b SignalID) SignalID {
	return d.binary(CellNe, name, a, b, 1)
}

func (d *Design) Lt(name string, a, b SignalID) SignalID {
	return d.binary(CellLt, name, a, b, 1)
}

// Shl and Shr shift a by amount b.
func (d *Design) Shl(name string, a, b SignalID) SignalID {
	return d.binary(CellShl, name, a, b, d.Width(a))
}

func (d *Design) Shr(name string, a, b SignalID) SignalID {
	return d.binary(CellShr, name, a, b, d.Width(a))
}

// Mux selects a when sel=0, b when sel=1.
func (d *Design) Mux(name string, sel, a, b SignalID) SignalID {
	out := d.newSignal(name, d.Width(a))
	return d.emit(Cell{Kind: CellMux, Out: out, In: []SignalID{sel, a, b}})
}

// Concat produces {hi, lo}.
func (d *Design) Concat(name string, hi, lo SignalID) SignalID {
	w := d.Width(hi) + d.Width(lo)
	out := d.newSignal(name, w)
	return d.emit(Cell{Kind: CellConcat, Out: out, In: []SignalID{hi, lo}})
}

// Slice extracts width bits starting at lo.
func (d *Design) Slice(name string, a SignalID, lo, width int) SignalID {
	out := d.newSignal(name, width)
	return d.emit(Cell{Kind: CellSlice, Out: out, In: []SignalID{a}, Lo: lo})
}

// RedOr reduces a to a single bit (non-zero test).
func (d *Design) RedOr(name string, a SignalID) SignalID {
	out := d.newSignal(name, 1)
	return d.emit(Cell{Kind: CellRedOr, Out: out, In: []SignalID{a}})
}

// AddReg creates a register. Connect its next-value with ConnectReg.
func (d *Design) AddReg(name string, width int, init uint64) *Reg {
	q := d.newSignal(name, width)
	d.defined[q] = true // register outputs are state, available at cycle start
	r := &Reg{
		Name: name, Module: d.module, Width: width, Q: q,
		D: Invalid, En: Invalid, Init: init & WidthMask(width),
		Attrs: map[string]string{},
	}
	d.Regs = append(d.Regs, r)
	return r
}

// ConnectReg wires the next-value (and optional enable) of a register.
func (d *Design) ConnectReg(r *Reg, next SignalID, en SignalID) {
	d.use(next)
	if en != Invalid {
		d.use(en)
	}
	r.D = next
	r.En = en
}

// AddMem creates a memory.
func (d *Design) AddMem(name string, width, depth int) *Mem {
	m := &Mem{
		Name: name, Module: d.module, Width: width, Depth: depth,
		Init:  make([]uint64, depth),
		Attrs: map[string]string{},
	}
	d.Mems = append(d.Mems, m)
	return m
}

// MemRead attaches a combinational read port returning the word at addr.
func (d *Design) MemRead(name string, m *Mem, addr SignalID) SignalID {
	idx := -1
	for i, mm := range d.Mems {
		if mm == m {
			idx = i
		}
	}
	if idx < 0 {
		panic("rtl: memory not in design")
	}
	d.use(addr)
	out := d.newSignal(name, m.Width)
	return d.emit(Cell{Kind: CellMemRd, Out: out, In: []SignalID{addr}, Mem: idx})
}

// MemWrite attaches a clocked write port.
func (d *Design) MemWrite(m *Mem, addr, data, en SignalID) {
	d.use(addr, data, en)
	m.Writes = append(m.Writes, WritePort{Addr: addr, Data: data, En: en})
}

// Stats summarises design size; the experiments harness reports these as the
// Table 2 analogue.
type Stats struct {
	Signals  int
	Cells    int
	Regs     int
	Mems     int
	StateBit int // total state bits (regs + mems)
}

// Stats computes design statistics.
func (d *Design) Stats() Stats {
	s := Stats{Signals: len(d.Signals), Cells: len(d.Cells), Regs: len(d.Regs), Mems: len(d.Mems)}
	for _, r := range d.Regs {
		s.StateBit += r.Width
	}
	for _, m := range d.Mems {
		s.StateBit += m.Width * m.Depth
	}
	return s
}
