package rtl

import "fmt"

// FlattenMemories rewrites a design so that every memory becomes Depth
// discrete registers with address-decoded mux trees for reads and per-entry
// write enables.
//
// This is what cell-level instrumentation (CellIFT) requires: it cannot see
// word-addressed memories, so memories are exploded before instrumentation.
// The pass exists to reproduce the paper's Table 4 compile-time gap — the
// flattened design is dramatically larger, and on the XiangShan-scale design
// instrumentation over the flattened netlist blows past any reasonable
// budget.
func FlattenMemories(d *Design) *Design {
	nd := NewDesign(d.Name + ".flat")
	sigMap := make([]SignalID, len(d.Signals))
	for i := range sigMap {
		sigMap[i] = Invalid
	}

	// Memory entry registers, created before any cells so reads can see them.
	memRegs := make([][]*Reg, len(d.Mems))
	for mi, m := range d.Mems {
		nd.InModule(m.Module)
		regs := make([]*Reg, m.Depth)
		for e := 0; e < m.Depth; e++ {
			regs[e] = nd.AddReg(fmt.Sprintf("%s_%d", m.Name, e), m.Width, m.Init[e])
			for k, v := range m.Attrs {
				regs[e].Attrs[k] = v
			}
			regs[e].Attrs["flattened_from"] = m.Name
			regs[e].Attrs["flat_index"] = fmt.Sprint(e)
		}
		memRegs[mi] = regs
	}

	// Plain registers.
	regMap := make(map[*Reg]*Reg, len(d.Regs))
	for _, r := range d.Regs {
		nd.InModule(r.Module)
		nr := nd.AddReg(r.Name, r.Width, r.Init)
		for k, v := range r.Attrs {
			nr.Attrs[k] = v
		}
		regMap[r] = nr
		sigMap[r.Q] = nr.Q
	}

	mapSig := func(s SignalID) SignalID {
		if s == Invalid {
			return Invalid
		}
		ns := sigMap[s]
		if ns == Invalid {
			panic(fmt.Sprintf("rtl: flatten: unmapped signal %q", d.Signals[s].Name))
		}
		return ns
	}

	for ci := range d.Cells {
		c := &d.Cells[ci]
		name := d.Signals[c.Out].Name
		width := d.Signals[c.Out].Width
		switch c.Kind {
		case CellBufIn:
			sigMap[c.Out] = nd.Input(name, width)
		case CellConst:
			sigMap[c.Out] = nd.Konst(name, width, c.Const)
		case CellMemRd:
			m := d.Mems[c.Mem]
			regs := memRegs[c.Mem]
			addr := mapSig(c.In[0])
			// Mux chain: out = regs[addr]
			cur := regs[0].Q
			for e := 1; e < m.Depth; e++ {
				idx := nd.Konst(fmt.Sprintf("%s_rdidx%d_%d", m.Name, ci, e), d.Width(c.In[0]), uint64(e))
				hit := nd.Eq(fmt.Sprintf("%s_rdhit%d_%d", m.Name, ci, e), addr, idx)
				cur = nd.Mux(fmt.Sprintf("%s_rdmux%d_%d", m.Name, ci, e), hit, cur, regs[e].Q)
			}
			// Rename final output to the original name via 0-based slice copy.
			out := nd.Slice(name, cur, 0, width)
			sigMap[c.Out] = out
		default:
			ins := make([]SignalID, len(c.In))
			for i, s := range c.In {
				ins[i] = mapSig(s)
			}
			out := nd.newSignal(name, width)
			nd.emit(Cell{Kind: c.Kind, Out: out, In: ins, Const: c.Const, Lo: c.Lo})
			sigMap[c.Out] = out
		}
	}

	// Register next-value connections.
	for _, r := range d.Regs {
		nr := regMap[r]
		if r.D != Invalid {
			en := Invalid
			if r.En != Invalid {
				en = mapSig(r.En)
			}
			nd.ConnectReg(nr, mapSig(r.D), en)
		}
	}

	// Memory write ports become per-entry enable decodes.
	for mi, m := range d.Mems {
		regs := memRegs[mi]
		for wi, w := range m.Writes {
			addr := mapSig(w.Addr)
			data := mapSig(w.Data)
			en := mapSig(w.En)
			for e := 0; e < m.Depth; e++ {
				idx := nd.Konst(fmt.Sprintf("%s_w%didx_%d", m.Name, wi, e), d.Width(w.Addr), uint64(e))
				hit := nd.Eq(fmt.Sprintf("%s_w%dhit_%d", m.Name, wi, e), addr, idx)
				enE := nd.And(fmt.Sprintf("%s_w%den_%d", m.Name, wi, e), hit, en)
				r := regs[e]
				if r.D == Invalid {
					nd.ConnectReg(r, nd.Mux(fmt.Sprintf("%s_w%dnext_%d", m.Name, wi, e), enE, r.Q, data), Invalid)
				} else {
					// Later write ports override earlier ones.
					next := nd.Mux(fmt.Sprintf("%s_w%dnext_%d", m.Name, wi, e), enE, r.D, data)
					nd.ConnectReg(r, next, Invalid)
				}
			}
		}
	}
	return nd
}
