package rtl

import "fmt"

// Sim is a two-phase cycle simulator for a Design: combinational evaluation
// in cell order, then a clock edge that commits register and memory writes.
type Sim struct {
	D     *Design
	Vals  []uint64   // signal values
	RegV  []uint64   // register state
	MemV  [][]uint64 // memory state
	Cycle int
}

// NewSim constructs a simulator with reset state.
func NewSim(d *Design) *Sim {
	s := &Sim{D: d, Vals: make([]uint64, len(d.Signals))}
	s.RegV = make([]uint64, len(d.Regs))
	for i, r := range d.Regs {
		s.RegV[i] = r.Init
	}
	s.MemV = make([][]uint64, len(d.Mems))
	for i, m := range d.Mems {
		s.MemV[i] = make([]uint64, m.Depth)
		copy(s.MemV[i], m.Init)
	}
	return s
}

// Poke drives an input signal. The value persists across cycles until
// re-poked.
func (s *Sim) Poke(sig SignalID, v uint64) {
	s.Vals[sig] = v & s.D.Mask(sig)
}

// Peek reads a signal value as of the last Eval.
func (s *Sim) Peek(sig SignalID) uint64 { return s.Vals[sig] }

// PeekReg reads register state directly.
func (s *Sim) PeekReg(r *Reg) uint64 {
	for i, rr := range s.D.Regs {
		if rr == r {
			return s.RegV[i]
		}
	}
	panic(fmt.Sprintf("rtl: register %q not in design", r.Name))
}

// Eval runs the combinational phase: register outputs are presented, then
// cells evaluate in order.
func (s *Sim) Eval() {
	for i, r := range s.D.Regs {
		s.Vals[r.Q] = s.RegV[i]
	}
	for ci := range s.D.Cells {
		c := &s.D.Cells[ci]
		s.evalCell(c)
	}
}

func (s *Sim) evalCell(c *Cell) {
	mask := s.D.Mask(c.Out)
	v := s.Vals
	switch c.Kind {
	case CellBufIn:
		// value already poked
	case CellConst:
		v[c.Out] = c.Const & mask
	case CellNot:
		v[c.Out] = ^v[c.In[0]] & mask
	case CellAnd:
		v[c.Out] = v[c.In[0]] & v[c.In[1]] & mask
	case CellOr:
		v[c.Out] = (v[c.In[0]] | v[c.In[1]]) & mask
	case CellXor:
		v[c.Out] = (v[c.In[0]] ^ v[c.In[1]]) & mask
	case CellAdd:
		v[c.Out] = (v[c.In[0]] + v[c.In[1]]) & mask
	case CellSub:
		v[c.Out] = (v[c.In[0]] - v[c.In[1]]) & mask
	case CellEq:
		v[c.Out] = b2u(v[c.In[0]] == v[c.In[1]])
	case CellNe:
		v[c.Out] = b2u(v[c.In[0]] != v[c.In[1]])
	case CellLt:
		v[c.Out] = b2u(v[c.In[0]] < v[c.In[1]])
	case CellShl:
		v[c.Out] = v[c.In[0]] << (v[c.In[1]] & 63) & mask
	case CellShr:
		v[c.Out] = v[c.In[0]] >> (v[c.In[1]] & 63) & mask
	case CellMux:
		if v[c.In[0]]&1 != 0 {
			v[c.Out] = v[c.In[2]] & mask
		} else {
			v[c.Out] = v[c.In[1]] & mask
		}
	case CellConcat:
		lo := c.In[1]
		v[c.Out] = (v[c.In[0]]<<uint(s.D.Width(lo)) | v[lo]) & mask
	case CellSlice:
		v[c.Out] = v[c.In[0]] >> uint(c.Lo) & mask
	case CellRedOr:
		v[c.Out] = b2u(v[c.In[0]] != 0)
	case CellMemRd:
		m := s.MemV[c.Mem]
		addr := v[c.In[0]] % uint64(len(m))
		v[c.Out] = m[addr] & mask
	default:
		panic(fmt.Sprintf("rtl: unknown cell kind %v", c.Kind))
	}
}

// Clock commits register next-values and memory write ports.
func (s *Sim) Clock() {
	next := make([]uint64, len(s.RegV))
	for i, r := range s.D.Regs {
		cur := s.RegV[i]
		if r.D == Invalid {
			next[i] = cur
			continue
		}
		if r.En != Invalid && s.Vals[r.En]&1 == 0 {
			next[i] = cur
			continue
		}
		next[i] = s.Vals[r.D] & WidthMask(r.Width)
	}
	copy(s.RegV, next)
	for mi, m := range s.D.Mems {
		for _, w := range m.Writes {
			if s.Vals[w.En]&1 != 0 {
				addr := s.Vals[w.Addr] % uint64(m.Depth)
				s.MemV[mi][addr] = s.Vals[w.Data] & WidthMask(m.Width)
			}
		}
	}
	s.Cycle++
}

// Step runs one full cycle (Eval then Clock).
func (s *Sim) Step() {
	s.Eval()
	s.Clock()
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
