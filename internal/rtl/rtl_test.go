package rtl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCombinationalCells(t *testing.T) {
	d := NewDesign("comb")
	a := d.Input("a", 8)
	b := d.Input("b", 8)
	and := d.And("and", a, b)
	or := d.Or("or", a, b)
	xor := d.Xor("xor", a, b)
	not := d.Not("not", a)
	add := d.Add("add", a, b)
	sub := d.Sub("sub", a, b)
	eq := d.Eq("eq", a, b)
	lt := d.Lt("lt", a, b)
	shl := d.Shl("shl", a, b)
	cat := d.Concat("cat", a, b)
	sl := d.Slice("sl", cat, 4, 8)
	ro := d.RedOr("ro", a)

	s := NewSim(d)
	check := func(av, bv uint64) {
		s.Poke(a, av)
		s.Poke(b, bv)
		s.Eval()
		av &= 0xff
		bv &= 0xff
		exp := map[SignalID]uint64{
			and: av & bv, or: av | bv, xor: av ^ bv, not: ^av & 0xff,
			add: (av + bv) & 0xff, sub: (av - bv) & 0xff,
			shl: av << (bv & 63) & 0xff,
			cat: (av<<8 | bv) & 0xffff, sl: (av<<8 | bv) >> 4 & 0xff,
		}
		for sig, want := range exp {
			if got := s.Peek(sig); got != want {
				t.Fatalf("a=%#x b=%#x: %s = %#x, want %#x", av, bv, d.Signals[sig].Name, got, want)
			}
		}
		if got := s.Peek(eq); (got == 1) != (av == bv) {
			t.Fatalf("eq wrong for %#x %#x", av, bv)
		}
		if got := s.Peek(lt); (got == 1) != (av < bv) {
			t.Fatalf("lt wrong for %#x %#x", av, bv)
		}
		if got := s.Peek(ro); (got == 1) != (av != 0) {
			t.Fatalf("redor wrong for %#x", av)
		}
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		check(rng.Uint64(), rng.Uint64())
	}
	check(0, 0)
	check(0xff, 0xff)
}

func TestRegisterWithEnable(t *testing.T) {
	d := NewDesign("reg")
	en := d.Input("en", 1)
	din := d.Input("din", 16)
	r := d.AddReg("r", 16, 7)
	d.ConnectReg(r, din, en)

	s := NewSim(d)
	s.Eval()
	if s.PeekReg(r) != 7 {
		t.Fatal("init value wrong")
	}
	s.Poke(din, 100)
	s.Poke(en, 0)
	s.Step()
	if s.PeekReg(r) != 7 {
		t.Fatal("disabled register updated")
	}
	s.Poke(en, 1)
	s.Step()
	if s.PeekReg(r) != 100 {
		t.Fatal("enabled register did not update")
	}
}

func TestMemoryPorts(t *testing.T) {
	d := NewDesign("mem")
	raddr := d.Input("raddr", 4)
	waddr := d.Input("waddr", 4)
	wdata := d.Input("wdata", 32)
	wen := d.Input("wen", 1)
	m := d.AddMem("m", 32, 16)
	rd := d.MemRead("rd", m, raddr)
	d.MemWrite(m, waddr, wdata, wen)

	s := NewSim(d)
	s.Poke(waddr, 5)
	s.Poke(wdata, 0xabcd)
	s.Poke(wen, 1)
	s.Step()
	s.Poke(wen, 0)
	s.Poke(raddr, 5)
	s.Eval()
	if got := s.Peek(rd); got != 0xabcd {
		t.Fatalf("mem[5] = %#x", got)
	}
	s.Poke(raddr, 6)
	s.Eval()
	if got := s.Peek(rd); got != 0 {
		t.Fatalf("mem[6] = %#x, want 0", got)
	}
}

func TestUseBeforeDefinitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on use-before-definition")
		}
	}()
	d := NewDesign("bad")
	a := d.newSignal("floating", 8)
	b := d.Input("b", 8)
	d.And("x", a, b)
}

// buildCounter returns a design with a counter, a mux-updated register and a
// memory, used to cross-check flattening.
func buildCounter() (*Design, SignalID, *Reg) {
	d := NewDesign("counter")
	en := d.Input("en", 1)
	one := d.Konst("one", 8, 1)
	cnt := d.AddReg("cnt", 8, 0)
	next := d.Add("next", cnt.Q, one)
	d.ConnectReg(cnt, next, en)

	m := d.AddMem("hist", 8, 8)
	idx := d.Slice("idx", cnt.Q, 0, 3)
	d.MemWrite(m, idx, cnt.Q, en)
	rd := d.MemRead("rd", m, idx)
	out := d.Mux("out", en, rd, next)
	return d, out, cnt
}

// Property: FlattenMemories preserves cycle-by-cycle behaviour.
func TestFlattenEquivalence(t *testing.T) {
	d, out, _ := buildCounter()
	fd := FlattenMemories(d)

	var fout SignalID = Invalid
	for i, sg := range fd.Signals {
		if sg.Name == "out" {
			fout = SignalID(i)
		}
	}
	if fout == Invalid {
		t.Fatal("flattened design lost the out signal")
	}

	s1 := NewSim(d)
	s2 := NewSim(fd)
	rng := rand.New(rand.NewSource(11))
	for cyc := 0; cyc < 200; cyc++ {
		en := rng.Uint64() & 1
		s1.Poke(d.Inputs[0], en)
		s2.Poke(fd.Inputs[0], en)
		s1.Eval()
		s2.Eval()
		if s1.Peek(out) != s2.Peek(fout) {
			t.Fatalf("cycle %d: out %#x vs flattened %#x", cyc, s1.Peek(out), s2.Peek(fout))
		}
		s1.Clock()
		s2.Clock()
	}
}

func TestFlattenStats(t *testing.T) {
	d, _, _ := buildCounter()
	fd := FlattenMemories(d)
	if len(fd.Mems) != 0 {
		t.Fatal("flattened design still has memories")
	}
	if fd.Stats().Regs <= d.Stats().Regs {
		t.Fatal("flattening did not expand registers")
	}
	if fd.Stats().Cells <= d.Stats().Cells {
		t.Fatal("flattening did not expand cells")
	}
	// State bit count is preserved.
	if fd.Stats().StateBit != d.Stats().StateBit {
		t.Fatalf("state bits %d != %d", fd.Stats().StateBit, d.Stats().StateBit)
	}
}

// Property: WidthMask yields exactly w low bits.
func TestWidthMaskProperty(t *testing.T) {
	f := func(w uint8) bool {
		width := int(w%64) + 1
		m := WidthMask(width)
		if width == 64 {
			return m == ^uint64(0)
		}
		return m == (uint64(1)<<width)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	d, _, _ := buildCounter()
	st := d.Stats()
	if st.Regs != 1 || st.Mems != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.StateBit != 8+8*8 {
		t.Fatalf("state bits %d", st.StateBit)
	}
}
