// Package isasim is the architectural (ISA-level) golden model. The stimulus
// generator executes candidate programs on it to derive trigger operands
// (branch outcomes, memory addresses, return targets), and the test suite
// uses it to co-verify the out-of-order core's committed state.
package isasim

import (
	"fmt"
	"math"
	"math/bits"

	"dejavuzz/internal/isa"
	"dejavuzz/internal/mem"
)

// Cause enumerates trap causes, mirroring the RISC-V mcause encoding for the
// subset the fuzzer exercises.
type Cause int

const (
	CauseNone Cause = iota
	CauseIllegalInstruction
	CauseLoadAccessFault
	CauseStoreAccessFault
	CauseLoadPageFault
	CauseStorePageFault
	CauseLoadMisalign
	CauseStoreMisalign
	CauseFetchAccessFault
	CauseFetchPageFault
	CauseEnvCall
	CauseBreakpoint
)

func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseIllegalInstruction:
		return "illegal-instruction"
	case CauseLoadAccessFault:
		return "load-access-fault"
	case CauseStoreAccessFault:
		return "store-access-fault"
	case CauseLoadPageFault:
		return "load-page-fault"
	case CauseStorePageFault:
		return "store-page-fault"
	case CauseLoadMisalign:
		return "load-misalign"
	case CauseStoreMisalign:
		return "store-misalign"
	case CauseFetchAccessFault:
		return "fetch-access-fault"
	case CauseFetchPageFault:
		return "fetch-page-fault"
	case CauseEnvCall:
		return "ecall"
	case CauseBreakpoint:
		return "ebreak"
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// IsMemFault reports whether the cause is a load/store access or page fault
// or a misalignment (the "mem-excp" class in the paper's Table 5).
func (c Cause) IsMemFault() bool {
	switch c {
	case CauseLoadAccessFault, CauseStoreAccessFault, CauseLoadPageFault,
		CauseStorePageFault, CauseLoadMisalign, CauseStoreMisalign:
		return true
	}
	return false
}

// Trap describes an architectural trap.
type Trap struct {
	Cause Cause
	EPC   uint64 // pc of the trapping instruction
	Tval  uint64 // faulting address or raw instruction
}

func (t Trap) String() string {
	return fmt.Sprintf("%v at %#x (tval %#x)", t.Cause, t.EPC, t.Tval)
}

// TrapAction tells the simulator how to continue after a trap.
type TrapAction struct {
	NewPC uint64
	Halt  bool
}

// Sim is the architectural simulator state.
type Sim struct {
	Mem *mem.Space
	PC  uint64
	X   [32]uint64 // integer registers
	F   [32]uint64 // fp registers (raw IEEE-754 bits)

	Halted bool
	// TrapHook decides what to do on a trap. Nil means halt on any trap.
	TrapHook func(Trap) TrapAction
	// Instret counts retired instructions.
	Instret uint64
	// LastTrap records the most recent trap, if any.
	LastTrap *Trap

	// decCache memoises instruction decoding (a pure function of the raw
	// word): stimulus programs loop over a handful of distinct words, so a
	// small direct-mapped cache removes most decode work. Entries survive
	// Reset — the cache can never change results, only skip recomputation.
	decCache [64]decEntry
}

type decEntry struct {
	raw uint32
	in  isa.Inst
	ok  bool
}

// New returns a simulator over the given space starting at entry.
func New(space *mem.Space, entry uint64) *Sim {
	s := &Sim{}
	s.Reset(space, entry)
	return s
}

// Reset reinitialises the simulator in place over a (possibly reset) space:
// registers zeroed, counters cleared, hook detached. After Reset the
// simulator is indistinguishable from New(space, entry) — the property the
// per-shard execution contexts in internal/isadiff rely on.
func (s *Sim) Reset(space *mem.Space, entry uint64) {
	s.Mem = space
	s.PC = entry
	s.X = [32]uint64{}
	s.F = [32]uint64{}
	s.Halted = false
	s.TrapHook = nil
	s.Instret = 0
	s.LastTrap = nil
}

// CauseForFault converts a memory fault into a trap cause.
func CauseForFault(f *mem.Fault) Cause {
	switch f.Kind {
	case mem.AccessLoad:
		if f.Page {
			return CauseLoadPageFault
		}
		return CauseLoadAccessFault
	case mem.AccessStore:
		if f.Page {
			return CauseStorePageFault
		}
		return CauseStoreAccessFault
	default:
		if f.Page {
			return CauseFetchPageFault
		}
		return CauseFetchAccessFault
	}
}

func (s *Sim) trap(t Trap) {
	tt := t
	s.LastTrap = &tt
	if s.TrapHook == nil {
		s.Halted = true
		return
	}
	act := s.TrapHook(t)
	if act.Halt {
		s.Halted = true
		return
	}
	s.PC = act.NewPC
}

// Step executes one instruction. It returns false once halted.
func (s *Sim) Step() bool {
	if s.Halted {
		return false
	}
	if err := s.Mem.Check(s.PC, 4, mem.AccessFetch); err != nil {
		f := err.(*mem.Fault)
		s.trap(Trap{Cause: CauseForFault(f), EPC: s.PC, Tval: s.PC})
		return !s.Halted
	}
	raw := s.Mem.Read32(s.PC)
	e := &s.decCache[(raw*2654435761)>>26]
	if !e.ok || e.raw != raw {
		e.raw, e.in, e.ok = raw, isa.Decode(raw), true
	}
	in := e.in
	s.Exec(in)
	return !s.Halted
}

// Run executes until halt or the instruction budget is exhausted.
// It returns the number of instructions retired.
func (s *Sim) Run(max int) int {
	n := 0
	for n < max && s.Step() {
		n++
	}
	return n
}

// MemAddr computes the effective address of a load/store without executing it.
func (s *Sim) MemAddr(in isa.Inst) uint64 {
	return s.X[in.Rs1] + uint64(in.Imm)
}

// Exec executes a single decoded instruction at the current PC, updating
// PC, registers, memory and trap state.
func (s *Sim) Exec(in isa.Inst) {
	pc := s.PC
	next := pc + 4
	x := &s.X
	wr := func(rd int, v uint64) {
		if rd != 0 {
			x[rd] = v
		}
	}
	switch in.Op {
	case isa.OpInvalid:
		s.trap(Trap{Cause: CauseIllegalInstruction, EPC: pc, Tval: uint64(in.Raw)})
		return
	case isa.OpLui:
		wr(in.Rd, uint64(in.Imm))
	case isa.OpAuipc:
		wr(in.Rd, pc+uint64(in.Imm))
	case isa.OpJal:
		wr(in.Rd, next)
		next = pc + uint64(in.Imm)
	case isa.OpJalr:
		t := (x[in.Rs1] + uint64(in.Imm)) &^ 1
		wr(in.Rd, next)
		next = t
	case isa.OpBeq:
		if x[in.Rs1] == x[in.Rs2] {
			next = pc + uint64(in.Imm)
		}
	case isa.OpBne:
		if x[in.Rs1] != x[in.Rs2] {
			next = pc + uint64(in.Imm)
		}
	case isa.OpBlt:
		if int64(x[in.Rs1]) < int64(x[in.Rs2]) {
			next = pc + uint64(in.Imm)
		}
	case isa.OpBge:
		if int64(x[in.Rs1]) >= int64(x[in.Rs2]) {
			next = pc + uint64(in.Imm)
		}
	case isa.OpBltu:
		if x[in.Rs1] < x[in.Rs2] {
			next = pc + uint64(in.Imm)
		}
	case isa.OpBgeu:
		if x[in.Rs1] >= x[in.Rs2] {
			next = pc + uint64(in.Imm)
		}
	case isa.OpLb, isa.OpLh, isa.OpLw, isa.OpLd, isa.OpLbu, isa.OpLhu, isa.OpLwu, isa.OpFld:
		addr := s.MemAddr(in)
		size := in.Op.MemSize()
		if addr%uint64(size) != 0 {
			s.trap(Trap{Cause: CauseLoadMisalign, EPC: pc, Tval: addr})
			return
		}
		v, _, err := s.Mem.Read(addr, size, mem.AccessLoad)
		if err != nil {
			f := err.(*mem.Fault)
			s.trap(Trap{Cause: CauseForFault(f), EPC: pc, Tval: addr})
			return
		}
		switch in.Op {
		case isa.OpLb:
			v = uint64(int64(int8(v)))
		case isa.OpLh:
			v = uint64(int64(int16(v)))
		case isa.OpLw:
			v = uint64(int64(int32(v)))
		}
		if in.Op == isa.OpFld {
			s.F[in.Rd] = v
		} else {
			wr(in.Rd, v)
		}
	case isa.OpSb, isa.OpSh, isa.OpSw, isa.OpSd, isa.OpFsd:
		addr := s.MemAddr(in)
		size := in.Op.MemSize()
		if addr%uint64(size) != 0 {
			s.trap(Trap{Cause: CauseStoreMisalign, EPC: pc, Tval: addr})
			return
		}
		v := x[in.Rs2]
		if in.Op == isa.OpFsd {
			v = s.F[in.Rs2]
		}
		if err := s.Mem.Write(addr, size, v, 0, mem.AccessStore); err != nil {
			f := err.(*mem.Fault)
			s.trap(Trap{Cause: CauseForFault(f), EPC: pc, Tval: addr})
			return
		}
	case isa.OpAddi:
		wr(in.Rd, x[in.Rs1]+uint64(in.Imm))
	case isa.OpSlti:
		wr(in.Rd, b2u(int64(x[in.Rs1]) < in.Imm))
	case isa.OpSltiu:
		wr(in.Rd, b2u(x[in.Rs1] < uint64(in.Imm)))
	case isa.OpXori:
		wr(in.Rd, x[in.Rs1]^uint64(in.Imm))
	case isa.OpOri:
		wr(in.Rd, x[in.Rs1]|uint64(in.Imm))
	case isa.OpAndi:
		wr(in.Rd, x[in.Rs1]&uint64(in.Imm))
	case isa.OpSlli:
		wr(in.Rd, x[in.Rs1]<<uint(in.Imm&63))
	case isa.OpSrli:
		wr(in.Rd, x[in.Rs1]>>uint(in.Imm&63))
	case isa.OpSrai:
		wr(in.Rd, uint64(int64(x[in.Rs1])>>uint(in.Imm&63)))
	case isa.OpAddiw:
		wr(in.Rd, sext32(uint32(x[in.Rs1])+uint32(in.Imm)))
	case isa.OpSlliw:
		wr(in.Rd, sext32(uint32(x[in.Rs1])<<uint(in.Imm&31)))
	case isa.OpSrliw:
		wr(in.Rd, sext32(uint32(x[in.Rs1])>>uint(in.Imm&31)))
	case isa.OpSraiw:
		wr(in.Rd, uint64(int64(int32(x[in.Rs1])>>uint(in.Imm&31))))
	case isa.OpAdd:
		wr(in.Rd, x[in.Rs1]+x[in.Rs2])
	case isa.OpSub:
		wr(in.Rd, x[in.Rs1]-x[in.Rs2])
	case isa.OpSll:
		wr(in.Rd, x[in.Rs1]<<(x[in.Rs2]&63))
	case isa.OpSlt:
		wr(in.Rd, b2u(int64(x[in.Rs1]) < int64(x[in.Rs2])))
	case isa.OpSltu:
		wr(in.Rd, b2u(x[in.Rs1] < x[in.Rs2]))
	case isa.OpXor:
		wr(in.Rd, x[in.Rs1]^x[in.Rs2])
	case isa.OpSrl:
		wr(in.Rd, x[in.Rs1]>>(x[in.Rs2]&63))
	case isa.OpSra:
		wr(in.Rd, uint64(int64(x[in.Rs1])>>(x[in.Rs2]&63)))
	case isa.OpOr:
		wr(in.Rd, x[in.Rs1]|x[in.Rs2])
	case isa.OpAnd:
		wr(in.Rd, x[in.Rs1]&x[in.Rs2])
	case isa.OpAddw:
		wr(in.Rd, sext32(uint32(x[in.Rs1])+uint32(x[in.Rs2])))
	case isa.OpSubw:
		wr(in.Rd, sext32(uint32(x[in.Rs1])-uint32(x[in.Rs2])))
	case isa.OpSllw:
		wr(in.Rd, sext32(uint32(x[in.Rs1])<<(x[in.Rs2]&31)))
	case isa.OpSrlw:
		wr(in.Rd, sext32(uint32(x[in.Rs1])>>(x[in.Rs2]&31)))
	case isa.OpSraw:
		wr(in.Rd, uint64(int64(int32(x[in.Rs1])>>(x[in.Rs2]&31))))
	case isa.OpMul:
		wr(in.Rd, x[in.Rs1]*x[in.Rs2])
	case isa.OpMulh:
		hi, _ := bits.Mul64(absU(x[in.Rs1]), absU(x[in.Rs2]))
		_ = hi
		wr(in.Rd, mulh(int64(x[in.Rs1]), int64(x[in.Rs2])))
	case isa.OpMulhsu:
		wr(in.Rd, mulhsu(int64(x[in.Rs1]), x[in.Rs2]))
	case isa.OpMulhu:
		hi, _ := bits.Mul64(x[in.Rs1], x[in.Rs2])
		wr(in.Rd, hi)
	case isa.OpDiv:
		wr(in.Rd, divS(int64(x[in.Rs1]), int64(x[in.Rs2])))
	case isa.OpDivu:
		wr(in.Rd, divU(x[in.Rs1], x[in.Rs2]))
	case isa.OpRem:
		wr(in.Rd, remS(int64(x[in.Rs1]), int64(x[in.Rs2])))
	case isa.OpRemu:
		wr(in.Rd, remU(x[in.Rs1], x[in.Rs2]))
	case isa.OpMulw:
		wr(in.Rd, sext32(uint32(x[in.Rs1])*uint32(x[in.Rs2])))
	case isa.OpDivw:
		wr(in.Rd, sext32(uint32(divS(int64(int32(x[in.Rs1])), int64(int32(x[in.Rs2]))))))
	case isa.OpDivuw:
		wr(in.Rd, sext32(uint32(divU(uint64(uint32(x[in.Rs1])), uint64(uint32(x[in.Rs2]))))))
	case isa.OpRemw:
		wr(in.Rd, sext32(uint32(remS(int64(int32(x[in.Rs1])), int64(int32(x[in.Rs2]))))))
	case isa.OpRemuw:
		wr(in.Rd, sext32(uint32(remU(uint64(uint32(x[in.Rs1])), uint64(uint32(x[in.Rs2]))))))
	case isa.OpFaddD:
		s.F[in.Rd] = f64op(s.F[in.Rs1], s.F[in.Rs2], '+')
	case isa.OpFsubD:
		s.F[in.Rd] = f64op(s.F[in.Rs1], s.F[in.Rs2], '-')
	case isa.OpFmulD:
		s.F[in.Rd] = f64op(s.F[in.Rs1], s.F[in.Rs2], '*')
	case isa.OpFdivD:
		s.F[in.Rd] = f64op(s.F[in.Rs1], s.F[in.Rs2], '/')
	case isa.OpFmvXD:
		wr(in.Rd, s.F[in.Rs1])
	case isa.OpFmvDX:
		s.F[in.Rd] = x[in.Rs1]
	case isa.OpFence:
		// no-op
	case isa.OpEcall:
		s.trap(Trap{Cause: CauseEnvCall, EPC: pc})
		return
	case isa.OpEbreak:
		s.trap(Trap{Cause: CauseBreakpoint, EPC: pc})
		return
	case isa.OpMret:
		// The testbench-level runtime owns trap state; mret is a no-op here.
	case isa.OpCsrrw, isa.OpCsrrs, isa.OpCsrrc:
		// CSR file not modelled architecturally; reads return zero.
		wr(in.Rd, 0)
	default:
		s.trap(Trap{Cause: CauseIllegalInstruction, EPC: pc, Tval: uint64(in.Raw)})
		return
	}
	s.Instret++
	s.PC = next
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func sext32(v uint32) uint64 { return uint64(int64(int32(v))) }

func absU(v uint64) uint64 {
	if int64(v) < 0 {
		return uint64(-int64(v))
	}
	return v
}

func mulh(a, b int64) uint64 {
	neg := (a < 0) != (b < 0)
	hi, lo := bits.Mul64(absU(uint64(a)), absU(uint64(b)))
	if neg {
		// negate 128-bit (hi,lo)
		lo = ^lo + 1
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	return hi
}

func mulhsu(a int64, b uint64) uint64 {
	neg := a < 0
	hi, lo := bits.Mul64(absU(uint64(a)), b)
	if neg {
		lo = ^lo + 1
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	return hi
}

func divS(a, b int64) uint64 {
	if b == 0 {
		return ^uint64(0)
	}
	if a == math.MinInt64 && b == -1 {
		return uint64(a)
	}
	return uint64(a / b)
}

func divU(a, b uint64) uint64 {
	if b == 0 {
		return ^uint64(0)
	}
	return a / b
}

func remS(a, b int64) uint64 {
	if b == 0 {
		return uint64(a)
	}
	if a == math.MinInt64 && b == -1 {
		return 0
	}
	return uint64(a % b)
}

func remU(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}

func f64op(a, b uint64, op byte) uint64 {
	fa := math.Float64frombits(a)
	fb := math.Float64frombits(b)
	var r float64
	switch op {
	case '+':
		r = fa + fb
	case '-':
		r = fa - fb
	case '*':
		r = fa * fb
	case '/':
		r = fa / fb
	}
	return math.Float64bits(r)
}
