package isasim

import (
	"reflect"
	"testing"

	"dejavuzz/internal/isa"
	"dejavuzz/internal/mem"
)

// TestSimResetEquivalence pins Sim.Reset against New: a simulator that
// already executed a program and is then Reset over a fresh space must
// retire the next program identically to a freshly constructed one.
func TestSimResetEquivalence(t *testing.T) {
	build := func() (*mem.Space, *isa.Program) {
		sp := mem.NewSpace()
		sp.MustAddRegion(mem.Region{Name: "code", Base: 0x1000, Size: 0x1000,
			Perm: mem.PermRead | mem.PermExec})
		sp.MustAddRegion(mem.Region{Name: "data", Base: 0x8000, Size: 0x1000,
			Perm: mem.PermRead | mem.PermWrite})
		p := isa.MustAsm(0x1000, `
			li   t0, 21
			slli t1, t0, 1
			li   t2, 0x8000
			sd   t1, 0(t2)
			ld   t3, 0(t2)
			ecall
		`)
		sp.WriteRaw(p.Base, p.Bytes())
		return sp, p
	}

	spFresh, pFresh := build()
	fresh := New(spFresh, pFresh.Base)
	fresh.Run(100)

	spUsed, _ := build()
	used := New(spUsed, 0x1000)
	used.X[5] = 0xdead // pollute
	used.Run(100)
	sp2, p2 := build()
	used.Reset(sp2, p2.Base)
	used.Run(100)

	if fresh.Instret != used.Instret || fresh.Halted != used.Halted {
		t.Fatalf("instret/halt diverge: fresh=%d/%v used=%d/%v",
			fresh.Instret, fresh.Halted, used.Instret, used.Halted)
	}
	if !reflect.DeepEqual(fresh.X, used.X) {
		t.Fatalf("register files diverge after reset:\nfresh: %v\nreset: %v", fresh.X, used.X)
	}
}
