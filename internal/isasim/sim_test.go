package isasim

import (
	"testing"
	"testing/quick"

	"dejavuzz/internal/isa"
	"dejavuzz/internal/mem"
)

func newSim(t *testing.T, src string) *Sim {
	t.Helper()
	sp := mem.NewSpace()
	sp.MustAddRegion(mem.Region{Name: "ram", Base: 0x1000, Size: 0x4000,
		Perm: mem.PermRead | mem.PermWrite | mem.PermExec})
	sp.MustAddRegion(mem.Region{Name: "guard", Base: 0x8000, Size: 0x1000, Perm: 0, Fault: mem.FaultPage})
	p := isa.MustAsm(0x1000, src)
	sp.WriteRaw(p.Base, p.Bytes())
	return New(sp, 0x1000)
}

func TestArithmetic(t *testing.T) {
	s := newSim(t, `
		li   a0, -7
		li   a1, 3
		add  a2, a0, a1
		sub  a3, a0, a1
		mul  a4, a0, a1
		div  a5, a0, a1
		rem  a6, a0, a1
		sltu a7, a1, a0
		slt  s2, a0, a1
		sraw s3, a0, a1
		ecall
	`)
	s.Run(100)
	want := map[int]int64{12: -4, 13: -10, 14: -21, 15: -2, 16: -1, 17: 1, 18: 1}
	for r, v := range want {
		if got := int64(s.X[r]); got != v {
			t.Errorf("%s = %d, want %d", isa.RegName(r), got, v)
		}
	}
	if s.LastTrap == nil || s.LastTrap.Cause != CauseEnvCall {
		t.Fatalf("trap = %v", s.LastTrap)
	}
}

func TestBranchesAndCalls(t *testing.T) {
	s := newSim(t, `
		li   s0, 0
		li   t0, 3
	loop:
		addi s0, s0, 1
		addi t0, t0, -1
		bnez t0, loop
		call fn
		addi s0, s0, 100
		ecall
	fn:
		addi s0, s0, 10
		ret
	`)
	s.Run(100)
	if s.X[8] != 113 {
		t.Fatalf("s0 = %d, want 113", s.X[8])
	}
}

func TestMemoryAndFaults(t *testing.T) {
	s := newSim(t, `
		li t0, 0x2000
		li t1, -559038737
		sw t1, 0(t0)
		lw t2, 0(t0)
		lwu t3, 0(t0)
		lbu t4, 3(t0)
		ecall
	`)
	s.Run(100)
	if int32(s.X[7]) != -559038737 {
		t.Errorf("lw sign extension: %#x", s.X[7])
	}
	if s.X[28] != uint64(uint32(0xdeadbeef)) {
		t.Errorf("lwu zero extension: %#x", s.X[28])
	}
	if s.X[29] != 0xde {
		t.Errorf("lbu: %#x", s.X[29])
	}
}

func TestTrapCauses(t *testing.T) {
	cases := []struct {
		src  string
		want Cause
	}{
		{"li t0, 0x8000\nld t1, 0(t0)", CauseLoadPageFault},
		{"li t0, 0x8000\nsd t1, 0(t0)", CauseStorePageFault},
		{"li t0, 0x2001\nld t1, 0(t0)", CauseLoadMisalign},
		{"li t0, 0x2001\nsd t1, 0(t0)", CauseStoreMisalign},
		{".illegal", CauseIllegalInstruction},
		{"ebreak", CauseBreakpoint},
		{"li t0, 0x20000\nld t1, 0(t0)", CauseLoadAccessFault},
		{"li t0, 0x20000\njr t0", CauseFetchAccessFault},
	}
	for _, c := range cases {
		s := newSim(t, c.src)
		s.Run(100)
		if s.LastTrap == nil || s.LastTrap.Cause != c.want {
			t.Errorf("%q: trap = %v, want %v", c.src, s.LastTrap, c.want)
		}
	}
}

func TestTrapHookRedirect(t *testing.T) {
	s := newSim(t, `
		ecall
		nop
	target:
		li s0, 55
		ecall
	`)
	calls := 0
	s.TrapHook = func(tr Trap) TrapAction {
		calls++
		if calls == 1 {
			return TrapAction{NewPC: 0x1008}
		}
		return TrapAction{Halt: true}
	}
	s.Run(100)
	if s.X[8] != 55 {
		t.Fatalf("s0 = %d (redirect failed)", s.X[8])
	}
	if calls != 2 {
		t.Fatalf("trap hook called %d times", calls)
	}
}

func TestFloatingPoint(t *testing.T) {
	s := newSim(t, `
		li t0, 0x2000
		li t1, 0x4010000000000000   # 4.0
		sd t1, 0(t0)
		fld fa0, 0(t0)
		fadd.d fa1, fa0, fa0        # 8.0
		fdiv.d fa2, fa1, fa0        # 2.0
		fmv.x.d a0, fa2
		ecall
	`)
	s.Run(100)
	if s.X[10] != 0x4000000000000000 { // 2.0
		t.Fatalf("fdiv result %#x", s.X[10])
	}
}

// Property: division semantics follow the RISC-V spec for all inputs,
// including division by zero and overflow.
func TestDivRemProperty(t *testing.T) {
	f := func(a, b int64) bool {
		gotDiv := divS(a, b)
		gotRem := remS(a, b)
		if b == 0 {
			return gotDiv == ^uint64(0) && gotRem == uint64(a)
		}
		if a == -a && a < 0 && b == -1 { // MinInt64 / -1
			return gotDiv == uint64(a) && gotRem == 0
		}
		return int64(gotDiv) == a/b && int64(gotRem) == a%b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mulh agrees with 128-bit reference arithmetic via the identity
// (a*b) >> 64 == mulh for small operands where the product fits.
func TestMulhProperty(t *testing.T) {
	f := func(a32, b32 int32) bool {
		a, b := int64(a32), int64(b32)
		// Product fits in 64 bits, so the high half is the sign extension.
		lo := a * b
		wantHi := uint64(lo >> 63)
		return mulh(a, b) == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstretAndHalt(t *testing.T) {
	s := newSim(t, "nop\nnop\nnop\necall")
	n := s.Run(100)
	if n != 3 { // the halting ecall itself is not counted
		t.Fatalf("ran %d instructions, want 3", n)
	}
	if s.Instret != 3 { // ecall traps before retiring
		t.Fatalf("instret = %d, want 3", s.Instret)
	}
	if s.Step() {
		t.Fatal("step after halt succeeded")
	}
}
