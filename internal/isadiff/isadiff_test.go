package isadiff

import (
	"reflect"
	"testing"

	"dejavuzz/internal/core"
)

func isadiffOpts(workers int) core.Options {
	t, err := core.LookupTarget(TargetName)
	if err != nil {
		panic(err)
	}
	opts := core.DefaultOptionsFor(t)
	opts.Seed = 11
	opts.Iterations = 48
	opts.Workers = workers
	opts.MergeEvery = 16
	return opts
}

func TestTargetRegistered(t *testing.T) {
	tgt, err := core.LookupTarget(TargetName)
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Name() != TargetName {
		t.Fatalf("registered name %q", tgt.Name())
	}
	found := false
	for _, name := range core.Targets() {
		if name == TargetName {
			found = true
		}
	}
	if !found {
		t.Fatalf("Targets() = %v missing %q", core.Targets(), TargetName)
	}
}

// TestCampaignRunsOnISATarget proves the target seam end to end: a full
// campaign over the architectural pair collects coverage through the same
// engine, and the determinism guarantee (Workers never change results)
// holds for a non-uarch pipeline too.
func TestCampaignRunsOnISATarget(t *testing.T) {
	ref := core.NewFuzzer(isadiffOpts(1)).Run()
	if len(ref.Iters) != 48 {
		t.Fatalf("ran %d iterations", len(ref.Iters))
	}
	if ref.Coverage == 0 {
		t.Fatal("architectural differential campaign collected no coverage")
	}
	// A well-formed stimulus never branches on the secret architecturally.
	if len(ref.Findings) != 0 {
		t.Errorf("architectural control-flow divergence reported: %v", ref.Findings[0])
	}
	par := core.NewFuzzer(isadiffOpts(8)).Run()
	if !reflect.DeepEqual(ref.CoverageHistory(), par.CoverageHistory()) {
		t.Error("coverage history diverges across worker counts")
	}
	if ref.Coverage != par.Coverage {
		t.Errorf("coverage %d vs %d across worker counts", ref.Coverage, par.Coverage)
	}
}

// TestExceptionTriggersObservable checks the architectural trigger
// criterion fires for at least one exception-class stimulus in a campaign.
func TestExceptionTriggersObservable(t *testing.T) {
	rep := core.NewFuzzer(isadiffOpts(1)).Run()
	triggered := 0
	for _, it := range rep.Iters {
		if it.Triggered {
			triggered++
		}
	}
	if triggered == 0 {
		t.Error("no iteration reported an architecturally-observed trigger")
	}
}
