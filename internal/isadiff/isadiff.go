// Package isadiff implements the "isasim" campaign target: an architectural
// (ISA-level) differential pair over internal/isasim, registered alongside
// the cycle-accurate uarch targets.
//
// The target runs every generated stimulus on two golden-model instances
// whose dedicated regions hold complementary secrets — the same coupling the
// diffIFT testbench uses — but observes purely architectural state. It is
// orders of magnitude cheaper than the uarch targets and serves two roles:
//
//   - a coverage smoke target: architectural divergence between the pair
//     (registers or data memory that differ only because the secrets differ)
//     maps onto the campaign coverage matrix, so the feedback loop, corpus
//     and checkpoint machinery can be exercised end to end in milliseconds;
//   - an architectural leakage baseline: a stimulus whose *control flow*
//     diverges between the two instances leaks its secret architecturally
//     (no transient execution required), which a well-formed stimulus never
//     does — any such finding flags a generator bug or a genuinely
//     architecture-level leak.
package isadiff

import (
	"bytes"
	"fmt"
	"math/bits"

	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/isasim"
	"dejavuzz/internal/mem"
	"dejavuzz/internal/swapmem"
	"dejavuzz/internal/uarch"
)

// TargetName is the registry key this package registers under.
const TargetName = "isasim"

func init() {
	core.RegisterTarget(target{})
}

type target struct{}

func (target) Name() string { return TargetName }
func (target) Description() string {
	return "architectural differential pair over the ISA-level golden model (cheap smoke target)"
}

// Kind returns the stimulus personality. Stimuli are generated as if for
// the BOOM-like core; the architectural simulator executes the same RV64
// subset either way.
func (target) Kind() uarch.CoreKind { return uarch.KindBOOM }

func (target) NewPipeline(f *core.Fuzzer) core.Pipeline {
	return pipeline{opts: f.Options()}
}

// pipeline is the per-campaign factory; each shard gets its own stateful
// instance so the two simulator instances, their address spaces, the
// stimulus buffers and the divergence scratch are allocated once per shard
// and reset between iterations.
type pipeline struct {
	opts core.Options
}

func (p pipeline) NewShard() core.ShardPipeline {
	return &shardPipeline{
		opts:  p.opts,
		gen:   gen.New(0),
		fresh: p.opts.FreshContexts,
	}
}

// shardPipeline is one shard's architectural differential pipeline.
// RunIteration is never called concurrently on the same instance.
type shardPipeline struct {
	opts  core.Options
	gen   *gen.Generator // stimulus builder (owns materialisation scratch)
	fresh bool           // rebuild contexts per run (reset-equivalence reference)

	st1, st2 gen.Stimulus     // phase-1 / completed stimulus buffers
	sched    swapmem.Schedule // reusable swap-schedule buffer
	a, b     archRun          // the two long-lived DUT slots
	samples  []uarch.TaintSample
}

// archRun is one reusable architectural DUT slot and, after Exec, its
// latest execution's observables.
type archRun struct {
	space *mem.Space
	sim   *isasim.Sim
	// traps is the swap-scheduling trap sequence (cause, EPC) in order.
	traps []isasim.Trap
	// regSnaps is the integer register file at every packet boundary
	// (trap), time-resolving where secret-derived divergence appears.
	regSnaps [][32]uint64
	// packets counts packets entered (the last is the transient packet).
	packets int
}

// Exec drives the slot through a swap schedule, mirroring swapmem.Runtime's
// trap-hook scheduling without the microarchitectural core: any trap ends
// the current packet, remaining packets load in order, and the run halts
// when the schedule drains or the budget is exhausted. With fresh set the
// space and simulator are rebuilt instead of reset — the reference mode the
// reset-equivalence tests compare against.
func (run *archRun) Exec(sched *swapmem.Schedule, secret []byte, budget int, fresh bool) {
	if fresh || run.space == nil {
		run.space = swapmem.NewSpace(secret)
		run.sim = isasim.New(run.space, swapmem.SharedBase)
	} else {
		swapmem.ResetSpace(run.space, secret)
		run.sim.Reset(run.space, swapmem.SharedBase)
	}
	run.traps = run.traps[:0]
	run.regSnaps = run.regSnaps[:0]
	run.packets = 0

	space, sim := run.space, run.sim
	idx := 0
	load := func(st swapmem.Step) uint64 {
		for _, pu := range st.PrePerm {
			// Region names come from the canonical layout; errors cannot
			// occur for generator-built schedules.
			_ = space.SetPerm(pu.Region, pu.Perm)
		}
		swapmem.ClearSwap(space)
		img := st.Packet.Image
		space.WriteRaw(img.Base, img.Bytes())
		run.packets++
		return st.Packet.Entry
	}
	if len(sched.Steps) == 0 {
		return
	}
	sim.PC = load(sched.Steps[0])
	idx = 1
	sim.TrapHook = func(t isasim.Trap) isasim.TrapAction {
		run.traps = append(run.traps, t)
		run.regSnaps = append(run.regSnaps, sim.X)
		if idx >= len(sched.Steps) {
			return isasim.TrapAction{Halt: true}
		}
		entry := load(sched.Steps[idx])
		idx++
		return isasim.TrapAction{NewPC: entry}
	}
	sim.Run(budget)
}

// controlFlowDiverged reports whether two runs took secret-dependent paths:
// different trap sequences or retirement counts.
func controlFlowDiverged(a, b *archRun) bool {
	if a.sim.Instret != b.sim.Instret || len(a.traps) != len(b.traps) {
		return true
	}
	for i := range a.traps {
		if a.traps[i].Cause != b.traps[i].Cause || a.traps[i].EPC != b.traps[i].EPC {
			return true
		}
	}
	return false
}

// dataLineBytes is the granularity at which divergent data memory is mapped
// onto coverage points.
const dataLineBytes = 64

// divergenceSamples maps the pair's architectural divergence onto coverage
// samples: one per differing integer register at each packet boundary and
// at halt (weighted by differing bits, positioned by boundary index), and
// one per differing data-region line. Registers and memory that diverge do
// so only because the secrets differ, so each sample is a distinct
// (channel, schedule position) the secret reached — a stimulus that never
// touches the secret contributes no coverage at all. Samples accumulate
// into dst (typically the shard's recycled scratch).
func divergenceSamples(dst []uarch.TaintSample, a, b *archRun) []uarch.TaintSample {
	out := dst
	snaps := len(a.regSnaps)
	if len(b.regSnaps) < snaps {
		snaps = len(b.regSnaps)
	}
	for k := 0; k < snaps; k++ {
		for r := 1; r < 32; r++ {
			if x := a.regSnaps[k][r] ^ b.regSnaps[k][r]; x != 0 {
				// The boundary position goes into the module name (the
				// count field clamps at the matrix's slot cap), so
				// divergence at a new schedule position is a new point.
				out = append(out, uarch.TaintSample{
					Module:  regPosModule(r, k),
					Tainted: bits.OnesCount64(x),
				})
			}
		}
	}
	for r := 1; r < 32; r++ {
		if x := a.sim.X[r] ^ b.sim.X[r]; x != 0 {
			out = append(out, uarch.TaintSample{Module: regModules[r], Tainted: bits.OnesCount64(x)})
		}
	}
	// RegionBytes aliases the live backing store (no 32KB copies per
	// iteration); the scan is read-only.
	la := a.sim.Mem.RegionBytes(swapmem.DataBase)
	lb := b.sim.Mem.RegionBytes(swapmem.DataBase)
	for off := 0; off < swapmem.DataSize; off += dataLineBytes {
		if !bytes.Equal(la[off:off+dataLineBytes], lb[off:off+dataLineBytes]) {
			// The line position goes into the module name, like the register
			// samples above: encoding it in the count would collapse every
			// line past the matrix's slot cap onto one point. The count is
			// the divergence weight (differing bytes, always < the cap).
			diff := 0
			for i := 0; i < dataLineBytes; i++ {
				if la[off+i] != lb[off+i] {
					diff++
				}
			}
			out = append(out, uarch.TaintSample{
				Module:  fmt.Sprintf("isasim/data@l%d", off/dataLineBytes),
				Tainted: diff,
			})
		}
	}
	return out
}

// regModules pre-renders the per-register coverage module names.
var regModules = func() [32]string {
	var names [32]string
	for r := range names {
		names[r] = "isasim/x" + string(rune('0'+r/10)) + string(rune('0'+r%10))
	}
	return names
}()

// regPosModules pre-renders the (register, packet boundary) module names
// for the boundary depths stimuli actually reach; deeper boundaries fall
// back to formatting.
var regPosModules = func() [32][16]string {
	var names [32][16]string
	for r := range names {
		for k := range names[r] {
			names[r][k] = fmt.Sprintf("%s@p%d", regModules[r], k)
		}
	}
	return names
}()

func regPosModule(r, k int) string {
	if k < len(regPosModules[r]) {
		return regPosModules[r][k]
	}
	return fmt.Sprintf("%s@p%d", regModules[r], k)
}

// RunIteration executes one architectural differential iteration: build the
// completed stimulus (window training architecturally touches the secret,
// exactly as in the uarch Phase-2 differential run), execute it on the
// shard's coupled pair of reusable slots, fold divergence observables into
// the coverage sink, and flag control-flow divergence as an architectural
// leak finding.
func (p *shardPipeline) RunIteration(iter int, seed gen.Seed, sink core.CovSink) core.Outcome {
	out := core.Outcome{}
	if err := p.gen.BuildStimulusInto(&p.st1, seed); err != nil {
		return out
	}
	if err := p.gen.CompleteWindowInto(&p.st2, &p.st1); err != nil {
		return out
	}
	sched := p.st2.BuildScheduleInto(&p.sched, nil)
	budget := p.opts.MaxCycles
	if budget <= 0 {
		budget = 20000
	}
	secret := core.DefaultSecret
	p.a.Exec(sched, secret, budget, p.fresh)
	p.b.Exec(sched, swapmem.FlipSecret(secret), budget, p.fresh)
	a, b := &p.a, &p.b
	out.Sims = 2
	out.Measured = true

	// Triggered: the planned trigger instruction architecturally trapped.
	// The scenario family declares its squash class, so the check consults
	// capabilities instead of guessing: only exception-class windows have an
	// architectural trigger signature; misprediction and memory-ordering
	// windows have none, so their families honestly report untriggered on
	// an ISA model.
	if fam, err := gen.FamilyOf(seed); err == nil && fam.ExpectedSquash() == uarch.SquashException {
		for _, t := range a.traps {
			if t.EPC == p.st1.TriggerPC {
				out.Triggered = true
				break
			}
		}
	}

	p.samples = divergenceSamples(p.samples[:0], a, b)
	out.NewPoints = sink.AddFromLog(p.samples)
	out.TaintGain = out.NewPoints > 0

	if controlFlowDiverged(a, b) {
		out.Finding = &core.Finding{
			Kind:       core.FindingTiming,
			AttackType: "ArchLeak",
			Window:     seed.Trigger,
			Scenario:   gen.ScenarioName(seed),
			Components: []string{"isasim"},
			Seed:       seed,
		}
	}
	return out
}
