package triage

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
)

// v1StoreJSON builds a pre-scenario (version 1) findings.json: signatures
// lack the scenario segment and bugs carry no scenario field — the exact
// bytes a PR-3/PR-4 server left behind.
func v1StoreJSON(t *testing.T) []byte {
	t.Helper()
	example := map[string]any{
		"Kind":       int(core.FindingEncoded),
		"AttackType": "Spectre",
		"Window":     int(gen.TrigBranchMispred),
		"Components": []string{"dcache"},
		"Seed":       map[string]any{"Rand": 111},
		"Iteration":  5,
	}
	v1 := map[string]any{
		"version":      1,
		"raw_findings": 2,
		"bugs": []map[string]any{{
			"signature":   "boom|encoded-leak|Spectre|branch-misprediction|dcache|",
			"target":      "boom",
			"kind":        "encoded-leak",
			"attack_type": "Spectre",
			"window":      gen.TrigBranchMispred.String(),
			"components":  []string{"dcache"},
			"count":       2,
			"campaigns":   []string{"c1"},
			"seeds":       []int64{1},
			"example":     example,
			"occurrences": []string{"c1#5", "c1#9"},
		}},
	}
	data, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestOpenMigratesV1Store is the migration shim's regression: a
// pre-scenario findings.json loads, its clusters gain the canonical family
// of their window class, their signatures are rewritten into the v2 shape,
// and new rediscoveries of the same bug keep collapsing into the migrated
// cluster instead of opening a duplicate.
func TestOpenMigratesV1Store(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "findings.json")
	if err := os.WriteFile(path, v1StoreJSON(t), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(path)
	if err != nil {
		t.Fatalf("v1 store did not load: %v", err)
	}
	raw, bugs := s.Stats()
	if raw != 2 || bugs != 1 {
		t.Fatalf("migrated store has raw=%d bugs=%d, want 2/1", raw, bugs)
	}
	b := s.Bugs()[0]
	if b.Scenario != "branch-mispredict" {
		t.Fatalf("migrated cluster scenario = %q, want canonical branch-mispredict", b.Scenario)
	}
	if !strings.Contains(string(b.Signature), "|branch-mispredict|") {
		t.Fatalf("migrated signature lacks the scenario segment: %s", b.Signature)
	}
	if b.Example.ScenarioName() != "branch-mispredict" {
		t.Fatalf("migrated example scenario = %q", b.Example.ScenarioName())
	}

	// A scenario-aware rediscovery of the same bug must land in the
	// migrated cluster (same signature), not open a new one.
	re := finding(42, core.FindingEncoded, "Spectre", gen.TrigBranchMispred, []string{"dcache"}, nil, 777)
	re.Scenario = "branch-mispredict"
	newOcc, newBugs, err := s.Add("c2", "boom", 2, re)
	if err != nil {
		t.Fatal(err)
	}
	if newBugs != 0 || newOcc != 1 {
		t.Fatalf("rediscovery opened %d new bugs (%d occurrences); want dedup into migrated cluster", newBugs, newOcc)
	}
	raw, bugs = s.Stats()
	if raw != 3 || bugs != 1 {
		t.Fatalf("post-rediscovery raw=%d bugs=%d, want 3/1", raw, bugs)
	}

	// The store reopens as version 2 with the migration already applied.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	raw, bugs = s2.Stats()
	if raw != 3 || bugs != 1 {
		t.Fatalf("reopened store raw=%d bugs=%d, want 3/1", raw, bugs)
	}

	// A distinct family sharing the window class must NOT collapse into the
	// canonical cluster: the scenario segment is identity.
	nested := finding(50, core.FindingEncoded, "Spectre", gen.TrigBranchMispred, []string{"dcache"}, nil, 778)
	nested.Scenario = "nested-fault-in-branch"
	_, newBugs, err = s2.Add("c2", "boom", 2, nested)
	if err != nil {
		t.Fatal(err)
	}
	if newBugs != 1 {
		t.Fatal("nested-family finding collapsed into the canonical branch cluster")
	}
}

// TestOpenRejectsUnknownVersion pins the version guard above the shim.
func TestOpenRejectsUnknownVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "findings.json")
	if err := os.WriteFile(path, []byte(`{"version":99,"bugs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("version-99 store loaded")
	}
}
