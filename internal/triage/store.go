package triage

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"dejavuzz/internal/atomicfile"
	"dejavuzz/internal/core"
	"dejavuzz/internal/corpus"
	"dejavuzz/internal/scenario"
)

// StoreVersion guards the findings-store file format against drift.
// Version 2 added the scenario family to bug signatures; version-1 stores
// load through a migration shim (see migrateV1Locked) that derives each
// cluster's family from its window class, so pre-scenario findings.json
// files keep loading — and keep deduplicating against new findings of the
// canonical families — without re-triage.
const StoreVersion = 2

// storeVersionV1 is the pre-scenario format Open still accepts.
const storeVersionV1 = 1

// Store is the persistent triaged-findings store: raw findings go in,
// deduplicated bug clusters come out, and every mutation is atomically
// checkpointed to one JSON file (when a path is configured). A Store is
// safe for concurrent use — campaigns add findings from their own
// goroutines while HTTP handlers read the triage view.
type Store struct {
	mu   sync.Mutex
	path string // "" = in-memory only
	bugs map[Signature]*Bug
	// raw counts distinct (campaign, iteration) occurrences — every raw
	// finding campaigns reported, duplicates across seeds/campaigns
	// included, idempotent replays excluded.
	raw int
}

// storeFile is the on-disk shape.
type storeFile struct {
	Version int `json:"version"`
	Raw     int `json:"raw_findings"`
	// Bugs are sorted by signature so saves are byte-deterministic.
	Bugs []bugFile `json:"bugs"`
}

// bugFile is Bug plus its occurrence keys (unexported in memory).
type bugFile struct {
	Bug
	Occurrences []string `json:"occurrences"`
}

// Open loads the store at path, creating an empty one if the file does not
// exist yet. An empty path yields a purely in-memory store (Add never
// touches disk) — the form cmd/dvz-bench uses.
func Open(path string) (*Store, error) {
	s := &Store{path: path, bugs: make(map[Signature]*Bug)}
	if path == "" {
		return s, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("triage: read store: %w", err)
	}
	var f storeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("triage: parse store %s: %w", path, err)
	}
	if f.Version != StoreVersion && f.Version != storeVersionV1 {
		return nil, fmt.Errorf("triage: store %s has version %d, want %d", path, f.Version, StoreVersion)
	}
	s.raw = f.Raw
	for i := range f.Bugs {
		b := f.Bugs[i].Bug
		b.occurrences = make(map[string]bool, len(f.Bugs[i].Occurrences))
		for _, k := range f.Bugs[i].Occurrences {
			b.occurrences[k] = true
		}
		b.Count = len(b.occurrences)
		if f.Version == storeVersionV1 {
			if err := migrateV1(&b); err != nil {
				return nil, fmt.Errorf("triage: store %s: %w", path, err)
			}
		}
		if b.CorpusEntry == "" {
			// Stores written before the corpus-provenance field: the ID is a
			// pure content hash of (target, example seed), so backfilling at
			// load is exact.
			b.CorpusEntry = corpus.EntryID(b.Target, b.Example.Seed)
		}
		s.bugs[b.Signature] = &b
	}
	return s, nil
}

// migrateV1 upgrades one pre-scenario bug cluster in place: the scenario
// family is derived from the window class (every v1 finding came from a
// canonical family, so the mapping is exact), the Example finding is
// annotated, and the signature is recomputed in the v2 shape — identical to
// what Compute would now produce for a rediscovery of the same bug, so old
// clusters keep absorbing new occurrences.
func migrateV1(b *Bug) error {
	fam, ok := scenario.ByWindowName(b.Window)
	if !ok {
		return fmt.Errorf("v1 bug %q has unknown window class %q", b.Signature, b.Window)
	}
	b.Scenario = fam.Name()
	if b.Example.Scenario == "" {
		b.Example.Scenario = fam.Name()
	}
	b.Signature = Compute(b.Target, &b.Example)
	return nil
}

// Add triages one batch of raw findings from a campaign, deduplicating them
// into bug clusters, and persists the store. It returns how many findings
// were new (campaign, iteration) occurrences and how many opened a new
// cluster (first-ever sightings). Re-adding an occurrence the store has
// already absorbed is a complete no-op — it moves neither the raw counter
// nor any cluster — so event replay after an unclean restart cannot
// inflate counts; callers keeping their own raw-finding tallies should
// likewise advance them by newOccurrences, not len(findings).
func (s *Store) Add(campaignID, target string, campaignSeed int64, findings ...core.Finding) (newOccurrences, newBugs int, err error) {
	if len(findings) == 0 {
		return 0, 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range findings {
		f := &findings[i]
		sig := Compute(target, f)
		b, ok := s.bugs[sig]
		if !ok {
			b = newBug(sig, target, f)
			s.bugs[sig] = b
			newBugs++
		}
		if b.record(Occurrence{Campaign: campaignID, Seed: campaignSeed, Iteration: f.Iteration}) {
			newOccurrences++
			s.raw++
		}
	}
	if newOccurrences == 0 && newBugs == 0 {
		return 0, 0, nil
	}
	return newOccurrences, newBugs, s.saveLocked()
}

// Bugs returns the triaged view: every cluster, most-seen first (ties by
// signature, so the order is deterministic).
func (s *Store) Bugs() []Bug {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Bug, 0, len(s.bugs))
	for _, b := range s.bugs {
		cp := *b
		cp.occurrences = nil // private; Count/Campaigns/Seeds summarise it
		cp.Components = append([]string(nil), b.Components...)
		cp.BugLabels = append([]string(nil), b.BugLabels...)
		cp.Campaigns = append([]string(nil), b.Campaigns...)
		cp.Seeds = append([]int64(nil), b.Seeds...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Signature < out[j].Signature
	})
	return out
}

// Stats returns the store's raw-finding and cluster counts.
func (s *Store) Stats() (raw, bugs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.raw, len(s.bugs)
}

// saveLocked atomically rewrites the backing file. Callers hold s.mu.
func (s *Store) saveLocked() error {
	if s.path == "" {
		return nil
	}
	f := storeFile{Version: StoreVersion, Raw: s.raw, Bugs: make([]bugFile, 0, len(s.bugs))}
	for _, b := range s.bugs {
		occ := make([]string, 0, len(b.occurrences))
		for k := range b.occurrences {
			occ = append(occ, k)
		}
		sort.Strings(occ)
		f.Bugs = append(f.Bugs, bugFile{Bug: *b, Occurrences: occ})
	}
	sort.Slice(f.Bugs, func(i, j int) bool { return f.Bugs[i].Signature < f.Bugs[j].Signature })
	data, err := json.Marshal(&f)
	if err != nil {
		return fmt.Errorf("triage: encode store: %w", err)
	}
	if err := atomicfile.Write(s.path, data); err != nil {
		return fmt.Errorf("triage: write store: %w", err)
	}
	return nil
}
