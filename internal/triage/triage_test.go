package triage

import (
	"path/filepath"
	"testing"

	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
)

func finding(iter int, kind core.FindingKind, attack string, window gen.TriggerType, comps, bugs []string, seedRand int64) core.Finding {
	return core.Finding{
		Kind:       kind,
		AttackType: attack,
		Window:     window,
		Components: comps,
		BugLabels:  bugs,
		Seed:       gen.Seed{Rand: seedRand},
		Iteration:  iter,
	}
}

// TestSignatureStableAcrossRediscovery: two findings of the same bug from
// different seeds, iterations and component orderings share a signature;
// changing any identity field splits them.
func TestSignatureStableAcrossRediscovery(t *testing.T) {
	a := finding(3, core.FindingEncoded, "Spectre", gen.TrigBranchMispred,
		[]string{"dtlb", "dcache"}, []string{"spectre-refetch-miss"}, 111)
	b := finding(97, core.FindingEncoded, "Spectre", gen.TrigBranchMispred,
		[]string{"dcache", "dtlb", "dcache"}, []string{"spectre-refetch-miss"}, 999)
	if Compute("boom", &a) != Compute("boom", &b) {
		t.Fatalf("rediscovery changed signature:\n %q\n %q", Compute("boom", &a), Compute("boom", &b))
	}
	for name, c := range map[string]core.Finding{
		"kind":       finding(3, core.FindingTiming, "Spectre", gen.TrigBranchMispred, []string{"dcache", "dtlb"}, []string{"spectre-refetch-miss"}, 111),
		"attack":     finding(3, core.FindingEncoded, "Meltdown", gen.TrigBranchMispred, []string{"dcache", "dtlb"}, []string{"spectre-refetch-miss"}, 111),
		"window":     finding(3, core.FindingEncoded, "Spectre", gen.TrigReturnMispred, []string{"dcache", "dtlb"}, []string{"spectre-refetch-miss"}, 111),
		"components": finding(3, core.FindingEncoded, "Spectre", gen.TrigBranchMispred, []string{"icache"}, []string{"spectre-refetch-miss"}, 111),
		"bug-labels": finding(3, core.FindingEncoded, "Spectre", gen.TrigBranchMispred, []string{"dcache", "dtlb"}, []string{"phantom-rsb"}, 111),
	} {
		if Compute("boom", &c) == Compute("boom", &a) {
			t.Fatalf("changing %s did not change the signature", name)
		}
	}
	if Compute("xiangshan", &a) == Compute("boom", &a) {
		t.Fatal("same finding on different targets must not collapse")
	}
}

// TestStoreDedup: duplicates collapse into one bug with an occurrence
// count, and re-adding the same (campaign, iteration) is idempotent.
func TestStoreDedup(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	dup1 := finding(5, core.FindingEncoded, "Spectre", gen.TrigBranchMispred, []string{"dcache"}, nil, 1)
	dup2 := finding(9, core.FindingEncoded, "Spectre", gen.TrigBranchMispred, []string{"dcache"}, nil, 2)
	other := finding(7, core.FindingTiming, "Meltdown", gen.TrigPageFault, []string{"icache"}, nil, 3)

	if occ, n, err := s.Add("c1", "boom", 1, dup1, other); err != nil || n != 2 || occ != 2 {
		t.Fatalf("first add: occ=%d new=%d err=%v, want 2 occurrences opening 2 clusters", occ, n, err)
	}
	if occ, n, err := s.Add("c2", "boom", 2, dup2); err != nil || n != 0 || occ != 1 {
		t.Fatalf("cross-seed duplicate: occ=%d new=%d err=%v, want 1 occurrence, 0 new clusters", occ, n, err)
	}
	// Replay c1's finding (unclean-restart scenario): nothing may move.
	if occ, n, err := s.Add("c1", "boom", 1, dup1); err != nil || occ != 0 || n != 0 {
		t.Fatalf("replay moved the store: occ=%d new=%d err=%v", occ, n, err)
	}

	raw, nbugs := s.Stats()
	if raw != 3 || nbugs != 2 {
		t.Fatalf("raw=%d bugs=%d, want raw=3 bugs=2 (replay must not count)", raw, nbugs)
	}
	bugs := s.Bugs()
	if len(bugs) != 2 {
		t.Fatalf("Bugs() returned %d", len(bugs))
	}
	top := bugs[0] // most-seen first
	if top.Count != 2 {
		t.Fatalf("duplicate cluster count=%d, want 2 (replay must be idempotent)", top.Count)
	}
	if len(top.Campaigns) != 2 || top.Campaigns[0] != "c1" || top.Campaigns[1] != "c2" {
		t.Fatalf("campaigns=%v, want [c1 c2]", top.Campaigns)
	}
	if len(top.Seeds) != 2 || top.Seeds[0] != 1 || top.Seeds[1] != 2 {
		t.Fatalf("seeds=%v, want [1 2]", top.Seeds)
	}
	if top.Example.Iteration != 5 {
		t.Fatalf("example should be the first sighting (iter 5), got %d", top.Example.Iteration)
	}
}

// TestStorePersistence: a store reloaded from disk carries clusters,
// counts and idempotency state across the restart.
func TestStorePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "findings.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f := finding(5, core.FindingEncoded, "Spectre", gen.TrigBranchMispred, []string{"dcache"}, []string{"b1"}, 1)
	if _, _, err := s.Add("c1", "boom", 7, f); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	raw, nbugs := s2.Stats()
	if raw != 1 || nbugs != 1 {
		t.Fatalf("after reload raw=%d bugs=%d", raw, nbugs)
	}
	// The reloaded store must still dedup the replayed occurrence...
	if occ, _, err := s2.Add("c1", "boom", 7, f); err != nil || occ != 0 {
		t.Fatal(err)
	}
	// ...and absorb a genuinely new one.
	f2 := f
	f2.Iteration = 42
	if _, _, err := s2.Add("c2", "boom", 8, f2); err != nil {
		t.Fatal(err)
	}
	bugs := s2.Bugs()
	if len(bugs) != 1 || bugs[0].Count != 2 {
		t.Fatalf("after reload+replay: %d bugs, count=%d; want 1 bug count=2", len(bugs), bugs[0].Count)
	}
	if bugs[0].Target != "boom" || bugs[0].Kind != core.FindingEncoded.String() {
		t.Fatalf("cluster metadata lost across reload: %+v", bugs[0])
	}
}
