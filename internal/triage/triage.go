// Package triage deduplicates and clusters raw campaign findings into
// triaged bug reports. A long fuzzing campaign rediscovers the same
// underlying vulnerability many times — different seeds, iterations and
// stimuli reaching the same leak through the same site — and the paper's
// reporting pipeline (like SpecFuzz's aggregation of thousands of raw traps
// and Shesha's clustering by microarchitectural origin) collapses them
// before a human ever looks. The unit of collapse is the Signature: a
// stable key over the finding's normalized bug class and leak site, and
// over nothing that varies across rediscoveries.
//
// The Store persists the triaged view as a single JSON file via
// internal/atomicfile, so a crash never corrupts it and a server restart
// resumes triage exactly where it stopped. Occurrence recording is
// idempotent per (campaign, iteration), so replaying a campaign's event
// stream — e.g. after an unclean shutdown re-runs barriers the store
// already absorbed — never inflates counts.
package triage

import (
	"fmt"
	"sort"
	"strings"

	"dejavuzz/internal/core"
	"dejavuzz/internal/corpus"
)

// Signature identifies a triaged bug: the target name joined with the
// finding's stable identity fields (core.Finding.SignatureInputs — kind,
// attack type, window class, scenario family, leak-site components,
// mechanism witnesses). It is a readable '|'-separated string, identical
// for every rediscovery of the same bug regardless of campaign seed or
// iteration count.
type Signature string

// Compute derives the signature for one finding on one target.
func Compute(target string, f *core.Finding) Signature {
	return Signature(target + "|" + strings.Join(f.SignatureInputs(), "|"))
}

// Bug is one triaged bug report: the cluster of all raw findings sharing a
// signature, with provenance.
type Bug struct {
	Signature  Signature `json:"signature"`
	Target     string    `json:"target"`
	Kind       string    `json:"kind"`
	AttackType string    `json:"attack_type"`
	Window     string    `json:"window"`
	Scenario   string    `json:"scenario"`
	Components []string  `json:"components"`
	BugLabels  []string  `json:"bug_labels,omitempty"`
	// Count is the number of distinct (campaign, iteration) occurrences.
	Count int `json:"count"`
	// Campaigns and Seeds are the sorted distinct campaign IDs and campaign
	// seeds the bug was observed under — the cross-seed dedup evidence.
	Campaigns []string `json:"campaigns"`
	Seeds     []int64  `json:"seeds"`
	// Example is the first finding observed for this signature (a concrete
	// reproducer: its Seed regenerates the stimulus).
	Example core.Finding `json:"example"`
	// CorpusEntry is the persistent-corpus entry ID of the example's
	// (target, seed) pair — the provenance link into dvz-server's
	// GET /corpus listing. The ID is a pure content hash, so it is valid
	// whether or not the corpus currently retains the entry.
	CorpusEntry string `json:"corpus_entry,omitempty"`

	// occurrences keys ("campaign#iteration") make recording idempotent.
	occurrences map[string]bool
}

// Occurrence is one raw-finding observation attributed to a bug.
type Occurrence struct {
	Campaign  string
	Seed      int64
	Iteration int
}

func (o Occurrence) key() string { return fmt.Sprintf("%s#%d", o.Campaign, o.Iteration) }

// record absorbs one occurrence; it reports whether it was new.
func (b *Bug) record(o Occurrence) bool {
	if b.occurrences == nil {
		b.occurrences = make(map[string]bool)
	}
	k := o.key()
	if b.occurrences[k] {
		return false
	}
	b.occurrences[k] = true
	b.Count = len(b.occurrences)
	b.Campaigns = insertString(b.Campaigns, o.Campaign)
	b.Seeds = insertInt64(b.Seeds, o.Seed)
	return true
}

func insertString(s []string, v string) []string {
	i := sort.SearchStrings(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertInt64(s []int64, v int64) []int64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// newBug builds the cluster head for a signature from its first finding.
func newBug(sig Signature, target string, f *core.Finding) *Bug {
	in := f.SignatureInputs()
	return &Bug{
		Signature:   sig,
		Target:      target,
		Kind:        in[0],
		AttackType:  in[1],
		Window:      in[2],
		Scenario:    in[3],
		Components:  splitPlus(in[4]),
		BugLabels:   splitPlus(in[5]),
		Example:     *f,
		CorpusEntry: corpus.EntryID(target, f.Seed),
	}
}

func splitPlus(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "+")
}
