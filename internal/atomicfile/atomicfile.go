// Package atomicfile provides crash-safe whole-file replacement: write to a
// temp file in the target directory, then rename over the destination, so
// readers never observe a truncated or partially written file.
package atomicfile

import (
	"os"
	"path/filepath"
)

// Write atomically replaces path with data (write temp + rename). On error
// the destination is untouched and the temp file is cleaned up.
func Write(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ProbeDir verifies that path's directory exists and is writable by
// creating and removing a temp file — an eager configuration check for
// files that will be written later.
func ProbeDir(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".probe-*")
	if err != nil {
		return err
	}
	tmp.Close()
	return os.Remove(tmp.Name())
}
