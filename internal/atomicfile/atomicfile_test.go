package atomicfile

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestWriteReplaces checks the basic contract: Write creates the file,
// rewrites it in place, and leaves no temp files behind.
func TestWriteReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	for i, payload := range []string{"first", "second, longer than the first", "3rd"} {
		if err := Write(path, []byte(payload)); err != nil {
			t.Fatalf("Write #%d: %v", i, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if string(got) != payload {
			t.Fatalf("Write #%d: got %q, want %q", i, got, payload)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out.json" {
		t.Fatalf("directory not clean after writes: %v", entries)
	}
}

// TestWriteAtomicVisibility hammers one destination with a writer loop while
// a reader loop re-reads it: every read must observe some writer's complete
// payload — never a truncated or interleaved one. This is the whole point of
// the write-temp-then-rename protocol.
func TestWriteAtomicVisibility(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	payload := func(i int) []byte {
		// Self-describing payloads: a header naming the full length, then
		// filler. A torn read fails the internal consistency check.
		body := strings.Repeat(fmt.Sprintf("v%04d ", i), 64)
		return []byte(fmt.Sprintf("%04d|%s", len(body), body))
	}
	if err := Write(path, payload(0)); err != nil {
		t.Fatal(err)
	}

	const writes = 300
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= writes; i++ {
			if err := Write(path, payload(i)); err != nil {
				t.Errorf("Write %d: %v", i, err)
				return
			}
		}
	}()
	for {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read during writes: %v", err)
		}
		head, body, ok := bytes.Cut(data, []byte("|"))
		if !ok || fmt.Sprintf("%04d", len(body)) != string(head) {
			t.Fatalf("torn read: %d bytes, header %q", len(data), head)
		}
		select {
		case <-done:
			return
		default:
		}
	}
}

// TestConcurrentWriters races many writers at one destination: the final
// file must be exactly one writer's payload, and no temp files may leak.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shared.json")
	const writers = 8
	const rounds = 40
	valid := make(map[string]bool)
	var wg sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		payload := strings.Repeat(fmt.Sprintf("writer-%d ", wtr), 32)
		valid[payload] = true
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := Write(path, []byte(payload)); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !valid[string(got)] {
		t.Fatalf("final content is no writer's payload: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files leaked: %v", entries)
	}
}

// TestPartialWriteCrash simulates a writer that died mid-write — a partial
// temp file left in the directory, exactly what a crash between CreateTemp
// and Rename leaves behind. The destination must be unaffected, later
// Writes must succeed, and readers must never be routed to the debris.
func TestPartialWriteCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	if err := Write(path, []byte("good checkpoint")); err != nil {
		t.Fatal(err)
	}
	// The crashed writer's debris, named exactly as Write's temp pattern
	// produces, holding a torn half-payload.
	debris := filepath.Join(dir, ".ckpt.json.tmp-12345")
	if err := os.WriteFile(debris, []byte("half a check"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good checkpoint" {
		t.Fatalf("destination disturbed by crash debris: %q", got)
	}
	if err := Write(path, []byte("newer checkpoint")); err != nil {
		t.Fatalf("Write after crash debris: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "newer checkpoint" {
		t.Fatalf("post-crash Write: got %q", got)
	}
	if _, err := os.Stat(debris); err != nil {
		t.Fatalf("crash debris should be inert, not consumed: %v", err)
	}
}

// TestWriteErrorLeavesDestination checks the error path: a Write that
// cannot even create its temp file (missing directory) reports the error
// and creates nothing.
func TestWriteErrorLeavesDestination(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "out.json")
	if err := Write(path, []byte("x")); err == nil {
		t.Fatal("Write into missing directory: want error")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination should not exist: %v", err)
	}
}

func TestProbeDir(t *testing.T) {
	dir := t.TempDir()
	if err := ProbeDir(filepath.Join(dir, "future-file.json")); err != nil {
		t.Fatalf("ProbeDir on writable dir: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("ProbeDir left debris: %v", entries)
	}
	if err := ProbeDir(filepath.Join(dir, "missing", "f.json")); err == nil {
		t.Fatal("ProbeDir on missing dir: want error")
	}
}
