package mem

import (
	"testing"
	"testing/quick"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	s := NewSpace()
	s.MustAddRegion(Region{Name: "ram", Base: 0x1000, Size: 0x1000, Perm: PermRead | PermWrite | PermExec})
	s.MustAddRegion(Region{Name: "rom", Base: 0x3000, Size: 0x800, Perm: PermRead | PermExec})
	s.MustAddRegion(Region{Name: "guard", Base: 0x4000, Size: 0x800, Perm: 0, Fault: FaultPage})
	return s
}

func TestRegionLookup(t *testing.T) {
	s := testSpace(t)
	if r := s.Region(0x1000); r == nil || r.Name != "ram" {
		t.Fatalf("Region(0x1000) = %v", r)
	}
	if r := s.Region(0x1fff); r == nil || r.Name != "ram" {
		t.Fatalf("Region(0x1fff) = %v", r)
	}
	if r := s.Region(0x2000); r != nil {
		t.Fatalf("Region(0x2000) = %v, want nil", r)
	}
	if r := s.RegionByName("rom"); r == nil || r.Base != 0x3000 {
		t.Fatalf("RegionByName(rom) = %v", r)
	}
	if got := len(s.Regions()); got != 3 {
		t.Fatalf("Regions() len = %d", got)
	}
}

func TestOverlapRejected(t *testing.T) {
	s := testSpace(t)
	if _, err := s.AddRegion(Region{Name: "bad", Base: 0x1800, Size: 0x1000}); err == nil {
		t.Fatal("overlapping region accepted")
	}
	if _, err := s.AddRegion(Region{Name: "empty", Base: 0x9000, Size: 0}); err == nil {
		t.Fatal("zero-size region accepted")
	}
}

func TestPermissionChecks(t *testing.T) {
	s := testSpace(t)
	if err := s.Check(0x1000, 8, AccessStore); err != nil {
		t.Fatalf("store to ram: %v", err)
	}
	err := s.Check(0x3000, 8, AccessStore)
	f, ok := err.(*Fault)
	if !ok || f.Page {
		t.Fatalf("store to rom: %v (want access fault)", err)
	}
	err = s.Check(0x4000, 8, AccessLoad)
	f, ok = err.(*Fault)
	if !ok || !f.Page {
		t.Fatalf("load from guard: %v (want page fault)", err)
	}
	if err := s.Check(0x8000, 1, AccessLoad); err == nil {
		t.Fatal("unmapped read allowed")
	}
	// Access straddling a region boundary faults.
	if err := s.Check(0x1ffc, 8, AccessLoad); err == nil {
		t.Fatal("straddling read allowed")
	}
}

func TestSetPerm(t *testing.T) {
	s := testSpace(t)
	if err := s.SetPerm("ram", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Check(0x1000, 8, AccessLoad); err == nil {
		t.Fatal("read allowed after revocation")
	}
	if err := s.SetPerm("nope", 0); err == nil {
		t.Fatal("SetPerm on unknown region succeeded")
	}
}

func TestReadWrite64(t *testing.T) {
	s := testSpace(t)
	s.Write64(0x1100, 0xdeadbeefcafef00d, 0x00ff00ff00ff00ff)
	v, tt := s.Read64(0x1100)
	if v != 0xdeadbeefcafef00d {
		t.Fatalf("value %#x", v)
	}
	if tt != 0x00ff00ff00ff00ff {
		t.Fatalf("taint %#x", tt)
	}
}

func TestCheckedReadReturnsDataOnFault(t *testing.T) {
	// The transient-forwarding model depends on faulting reads still
	// exposing the underlying data.
	s := testSpace(t)
	s.Write64(0x1100, 42, 0)
	s.SetPerm("ram", PermWrite)
	v, _, err := s.Read(0x1100, 8, AccessLoad)
	if err == nil {
		t.Fatal("expected fault")
	}
	if v != 42 {
		t.Fatalf("faulting read hid the data: %d", v)
	}
}

func TestSetTaintAndTaintRaw(t *testing.T) {
	s := testSpace(t)
	s.SetTaint(0x1200, 4, true)
	tr := s.TaintRaw(0x11fe, 8)
	want := []byte{0, 0, 0xff, 0xff, 0xff, 0xff, 0, 0}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("taint[%d] = %#x, want %#x (%v)", i, tr[i], want[i], tr)
		}
	}
	s.SetTaint(0x1200, 4, false)
	if tr := s.TaintRaw(0x1200, 4); tr[0] != 0 {
		t.Fatal("taint not cleared")
	}
}

func TestClone(t *testing.T) {
	s := testSpace(t)
	s.Write64(0x1100, 7, ^uint64(0))
	c := s.Clone()
	c.Write64(0x1100, 9, 0)
	if v, _ := s.Read64(0x1100); v != 7 {
		t.Fatal("clone aliases the original")
	}
	if v, tt := c.Read64(0x1100); v != 9 || tt != 0 {
		t.Fatalf("clone state wrong: %d/%#x", v, tt)
	}
	if err := c.SetPerm("ram", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Check(0x1000, 1, AccessLoad); err != nil {
		t.Fatal("clone permission change leaked to original")
	}
}

// Property: Write64 then Read64 round-trips values and taints at any mapped,
// aligned address.
func TestReadWriteProperty(t *testing.T) {
	s := testSpace(t)
	f := func(off uint16, v, taint uint64) bool {
		addr := 0x1000 + uint64(off)%(0x1000-8)
		addr &^= 7
		s.Write64(addr, v, taint)
		gv, gt := s.Read64(addr)
		return gv == v && gt == taint
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: unchecked byte reads/writes agree with 64-bit accessors.
func TestByteWordConsistency(t *testing.T) {
	s := testSpace(t)
	f := func(v uint64) bool {
		s.Write64(0x1500, v, 0)
		b := s.ReadRaw(0x1500, 8)
		var got uint64
		for i := 7; i >= 0; i-- {
			got = got<<8 | uint64(b[i])
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Addr: 0x123, Kind: AccessStore, Page: true}
	if f.Error() != "mem: store page fault at 0x123" {
		t.Fatalf("Error() = %q", f.Error())
	}
	if AccessFetch.String() != "fetch" || AccessLoad.String() != "load" {
		t.Fatal("AccessKind strings wrong")
	}
}
