// Package mem models the physical address space shared by the ISA golden
// model, the out-of-order core simulator and the dynamic swappable memory.
//
// A Space is a flat byte store partitioned into regions. Each region carries
// access permissions and a fault kind so that the same load can raise either
// an access fault (PMP-style) or a page fault (translation-style), which the
// stimulus generator uses to pick the transient-window trigger type.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Perm is a permission bit set for a region.
type Perm uint8

const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// FaultKind distinguishes how a denied access is reported.
type FaultKind uint8

const (
	// FaultAccess raises load/store/fetch access faults (PMP semantics).
	FaultAccess FaultKind = iota
	// FaultPage raises load/store/fetch page faults (translation semantics).
	FaultPage
)

// AccessKind describes what the requester is doing.
type AccessKind uint8

const (
	AccessLoad AccessKind = iota
	AccessStore
	AccessFetch
)

func (k AccessKind) String() string {
	switch k {
	case AccessLoad:
		return "load"
	case AccessStore:
		return "store"
	case AccessFetch:
		return "fetch"
	}
	return "access"
}

// Fault reports a denied or unmapped memory access.
type Fault struct {
	Addr uint64
	Kind AccessKind
	Page bool // true: page fault, false: access fault
}

func (f *Fault) Error() string {
	name := "access fault"
	if f.Page {
		name = "page fault"
	}
	return fmt.Sprintf("mem: %s %s at %#x", f.Kind, name, f.Addr)
}

// Region is a contiguous range of the space with uniform permissions.
type Region struct {
	Name  string
	Base  uint64
	Size  uint64
	Perm  Perm
	Fault FaultKind
}

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// Space is a byte-addressable physical memory with permission regions.
// The zero value is unusable; construct with NewSpace.
type Space struct {
	regions []*Region
	bytes   map[uint64][]byte // base -> backing bytes, one entry per region
	taint   map[uint64][]byte // parallel taint shadow (bit per data bit)
	// initPerm remembers each region's construction-time permission so Reset
	// can undo SetPerm mutations (base -> original perm).
	initPerm map[uint64]Perm
}

// NewSpace returns an empty space.
func NewSpace() *Space {
	return &Space{
		bytes:    make(map[uint64][]byte),
		taint:    make(map[uint64][]byte),
		initPerm: make(map[uint64]Perm),
	}
}

// AddRegion registers a new region and allocates its backing store.
// Regions must not overlap.
func (s *Space) AddRegion(r Region) (*Region, error) {
	if r.Size == 0 {
		return nil, fmt.Errorf("mem: region %q has zero size", r.Name)
	}
	for _, old := range s.regions {
		if r.Base < old.Base+old.Size && old.Base < r.Base+r.Size {
			return nil, fmt.Errorf("mem: region %q overlaps %q", r.Name, old.Name)
		}
	}
	reg := r
	s.regions = append(s.regions, &reg)
	sort.Slice(s.regions, func(i, j int) bool { return s.regions[i].Base < s.regions[j].Base })
	s.bytes[reg.Base] = make([]byte, reg.Size)
	s.taint[reg.Base] = make([]byte, reg.Size)
	s.initPerm[reg.Base] = reg.Perm
	return &reg, nil
}

// Reset returns the space to its construction-time state without
// reallocating: every region's bytes and taint shadow are zeroed in place
// and its permissions restored to the values it was added with. A reset
// space is indistinguishable from a freshly built one with the same region
// layout — the property the execution-context reuse in internal/core relies
// on.
func (s *Space) Reset() {
	for _, r := range s.regions {
		b := s.bytes[r.Base]
		for i := range b {
			b[i] = 0
		}
		t := s.taint[r.Base]
		for i := range t {
			t[i] = 0
		}
		r.Perm = s.initPerm[r.Base]
	}
}

// MustAddRegion is AddRegion that panics on error; intended for static layouts.
func (s *Space) MustAddRegion(r Region) *Region {
	reg, err := s.AddRegion(r)
	if err != nil {
		panic(err)
	}
	return reg
}

// Region returns the region containing addr, or nil.
func (s *Space) Region(addr uint64) *Region {
	i := sort.Search(len(s.regions), func(i int) bool {
		return s.regions[i].Base+s.regions[i].Size > addr
	})
	if i < len(s.regions) && s.regions[i].Contains(addr) {
		return s.regions[i]
	}
	return nil
}

// RegionByName returns the region with the given name, or nil.
func (s *Space) RegionByName(name string) *Region {
	for _, r := range s.regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Regions returns all regions ordered by base address.
func (s *Space) Regions() []*Region { return s.regions }

// SetPerm atomically changes a region's permissions; this is how the swap
// runtime revokes secret access between the training and transient phases.
func (s *Space) SetPerm(name string, p Perm) error {
	r := s.RegionByName(name)
	if r == nil {
		return fmt.Errorf("mem: no region %q", name)
	}
	r.Perm = p
	return nil
}

// Check validates an access of size bytes without performing it.
func (s *Space) Check(addr uint64, size int, kind AccessKind) error {
	r := s.Region(addr)
	if r == nil || !r.Contains(addr+uint64(size)-1) {
		return &Fault{Addr: addr, Kind: kind, Page: false}
	}
	need := PermRead
	switch kind {
	case AccessStore:
		need = PermWrite
	case AccessFetch:
		need = PermExec
	}
	if r.Perm&need == 0 {
		return &Fault{Addr: addr, Kind: kind, Page: r.Fault == FaultPage}
	}
	return nil
}

func (s *Space) slice(addr uint64, size int) ([]byte, []byte, bool) {
	r := s.Region(addr)
	if r == nil || !r.Contains(addr+uint64(size)-1) {
		return nil, nil, false
	}
	off := addr - r.Base
	return s.bytes[r.Base][off : off+uint64(size)], s.taint[r.Base][off : off+uint64(size)], true
}

// ReadRaw reads without permission checks (used for cache refills and debug).
// Unmapped bytes read as zero.
func (s *Space) ReadRaw(addr uint64, size int) []byte {
	out := make([]byte, size)
	if b, _, ok := s.slice(addr, size); ok {
		copy(out, b)
	} else {
		// Partial overlap: copy byte by byte.
		for i := 0; i < size; i++ {
			if b, _, ok := s.slice(addr+uint64(i), 1); ok {
				out[i] = b[0]
			}
		}
	}
	return out
}

// WriteRaw writes without permission checks. Unmapped bytes are dropped.
func (s *Space) WriteRaw(addr uint64, data []byte) {
	if b, _, ok := s.slice(addr, len(data)); ok {
		copy(b, data)
		return
	}
	for i, v := range data {
		if b, _, ok := s.slice(addr+uint64(i), 1); ok {
			b[0] = v
		}
	}
}

// TaintRaw reads the taint shadow of [addr, addr+size).
func (s *Space) TaintRaw(addr uint64, size int) []byte {
	out := make([]byte, size)
	for i := 0; i < size; i++ {
		if _, t, ok := s.slice(addr+uint64(i), 1); ok {
			out[i] = t[0]
		}
	}
	return out
}

// SetTaint marks [addr, addr+size) fully tainted (every bit).
func (s *Space) SetTaint(addr uint64, size int, tainted bool) {
	v := byte(0)
	if tainted {
		v = 0xff
	}
	for i := 0; i < size; i++ {
		if _, t, ok := s.slice(addr+uint64(i), 1); ok {
			t[0] = v
		}
	}
}

// Read64 reads a little-endian 64-bit word and its taint mask, unchecked.
func (s *Space) Read64(addr uint64) (val, taint uint64) {
	// Fast path: the word lies entirely inside one region (the overwhelmingly
	// common case on the simulation hot path — no per-access allocation).
	if b, t, ok := s.slice(addr, 8); ok {
		return binary.LittleEndian.Uint64(b), binary.LittleEndian.Uint64(t)
	}
	var bb, tb [8]byte
	for i := 0; i < 8; i++ {
		if b, t, ok := s.slice(addr+uint64(i), 1); ok {
			bb[i] = b[0]
			tb[i] = t[0]
		}
	}
	return binary.LittleEndian.Uint64(bb[:]), binary.LittleEndian.Uint64(tb[:])
}

// Write64 writes a little-endian 64-bit word and its taint mask, unchecked.
func (s *Space) Write64(addr uint64, val, taint uint64) {
	if b, t, ok := s.slice(addr, 8); ok {
		binary.LittleEndian.PutUint64(b, val)
		binary.LittleEndian.PutUint64(t, taint)
		return
	}
	for i := 0; i < 8; i++ {
		if b, t, ok := s.slice(addr+uint64(i), 1); ok {
			b[0] = byte(val >> (8 * i))
			t[0] = byte(taint >> (8 * i))
		}
	}
}

// RegionBytes returns the live backing bytes of the region containing addr
// (nil if unmapped). The slice aliases the space's storage — callers must
// treat it as read-only; it exists so observers (coverage diffing, hashing)
// can scan large regions without copying them.
func (s *Space) RegionBytes(addr uint64) []byte {
	r := s.Region(addr)
	if r == nil {
		return nil
	}
	return s.bytes[r.Base]
}

// Read32 reads a little-endian 32-bit word without permission checks or
// allocation (the architectural simulator's fetch path).
func (s *Space) Read32(addr uint64) uint32 {
	if b, _, ok := s.slice(addr, 4); ok {
		return binary.LittleEndian.Uint32(b)
	}
	var v uint32
	for i := 0; i < 4; i++ {
		if b, _, ok := s.slice(addr+uint64(i), 1); ok {
			v |= uint32(b[0]) << (8 * i)
		}
	}
	return v
}

// Read reads size bytes (1,2,4,8) with permission checks, returning the
// zero-extended value, taint mask and fault (if any). A faulting read still
// returns the underlying data: the transient-forwarding bug model in the core
// decides whether that data is architecturally visible.
func (s *Space) Read(addr uint64, size int, kind AccessKind) (val, taint uint64, err error) {
	err = s.Check(addr, size, kind)
	if b, t, ok := s.slice(addr, size); ok {
		for i := size - 1; i >= 0; i-- {
			val = val<<8 | uint64(b[i])
			taint = taint<<8 | uint64(t[i])
		}
		return val, taint, err
	}
	for i := size - 1; i >= 0; i-- {
		val <<= 8
		taint <<= 8
		if b, t, ok := s.slice(addr+uint64(i), 1); ok {
			val |= uint64(b[0])
			taint |= uint64(t[0])
		}
	}
	return val, taint, err
}

// Write stores size bytes with permission checks.
func (s *Space) Write(addr uint64, size int, val, taint uint64, kind AccessKind) error {
	if err := s.Check(addr, size, kind); err != nil {
		return err
	}
	if b, t, ok := s.slice(addr, size); ok {
		for i := 0; i < size; i++ {
			b[i] = byte(val >> (8 * i))
			t[i] = byte(taint >> (8 * i))
		}
		return nil
	}
	for i := 0; i < size; i++ {
		if b, t, ok := s.slice(addr+uint64(i), 1); ok {
			b[0] = byte(val >> (8 * i))
			t[0] = byte(taint >> (8 * i))
		}
	}
	return nil
}

// Clone returns a deep copy of the space (regions, bytes and taints).
// The swap runtime clones the template space once per DUT instance.
func (s *Space) Clone() *Space {
	c := NewSpace()
	for _, r := range s.regions {
		nr := *r
		c.regions = append(c.regions, &nr)
		b := make([]byte, len(s.bytes[r.Base]))
		copy(b, s.bytes[r.Base])
		c.bytes[nr.Base] = b
		t := make([]byte, len(s.taint[r.Base]))
		copy(t, s.taint[r.Base])
		c.taint[nr.Base] = t
		c.initPerm[nr.Base] = s.initPerm[r.Base]
	}
	return c
}
