package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dejavuzz"
)

func openTestServer(t *testing.T, stateDir string, workers int) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := Open(Config{StateDir: stateDir, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response, wantStatus int) T {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d: %s", resp.Request.Method, resp.Request.URL, resp.StatusCode, wantStatus, buf.String())
	}
	var v T
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("decode %s: %v", buf.String(), err)
	}
	return v
}

func createCampaign(t *testing.T, base, payload string) Record {
	t.Helper()
	return decodeBody[Record](t, postJSON(t, base+"/campaigns", payload), http.StatusCreated)
}

// pollRecord polls a campaign until cond holds (or the deadline kills the
// test).
func pollRecord(t *testing.T, base, id string, what string, cond func(Record) bool) Record {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		rec := decodeBody[Record](t, resp, http.StatusOK)
		if cond(rec) {
			return rec
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never reached %s: %+v", id, what, rec)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getReport(t *testing.T, base, id string) *dejavuzz.Report {
	t.Helper()
	resp, err := http.Get(base + "/campaigns/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	return decodeBody[*dejavuzz.Report](t, resp, http.StatusOK)
}

// reportJSON canonicalises a report for byte comparison, zeroing the two
// wall-clock fields resume legitimately changes.
func reportJSON(t *testing.T, rep *dejavuzz.Report) string {
	t.Helper()
	cp := *rep
	cp.Duration = 0
	cp.FirstBug = 0
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// directReport runs the same campaign in-process, uninterrupted — the
// ground truth server-resumed reports must match byte-for-byte.
func directReport(t *testing.T, o dejavuzz.Options) *dejavuzz.Report {
	t.Helper()
	c, err := o.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	return c.Run()
}

// TestServerTriageDedupAcrossSeeds is the triage e2e: two campaigns on the
// same target with different seeds, created and observed entirely over
// HTTP; the /findings view must collapse identical findings — within one
// campaign and across the two seeds — into single bugs with occurrence
// counts.
func TestServerTriageDedupAcrossSeeds(t *testing.T) {
	srv, ts := openTestServer(t, t.TempDir(), 2)
	defer srv.Shutdown(context.Background()) //nolint:errcheck

	// seed-one is long enough (many barriers) that its session is still live
	// when the event-stream subscription below attaches — the engine's
	// context-reuse speedup made 48-iteration boom campaigns finish in tens
	// of milliseconds.
	rec1 := createCampaign(t, ts.URL, `{"name":"seed-one","options":{"target":"boom","seed":1,"iterations":512,"merge_every":8}}`)
	rec2 := createCampaign(t, ts.URL, `{"name":"seed-two","options":{"target":"boom","seed":2,"iterations":48,"merge_every":8}}`)

	// Live event stream: at minimum the status frame, then barrier events
	// while the campaign runs.
	resp, err := http.Get(ts.URL + "/campaigns/" + rec1.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("event stream closed before the status frame")
	}
	var first struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("bad NDJSON frame %q: %v", sc.Text(), err)
	}
	if first.Kind != "status" {
		t.Fatalf("first frame kind=%q, want status", first.Kind)
	}
	streamed := 0
	for sc.Scan() {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON frame %q: %v", sc.Text(), err)
		}
		streamed++
	}
	resp.Body.Close()

	done := func(r Record) bool { return r.State == StateDone }
	fin1 := pollRecord(t, ts.URL, rec1.ID, "done", done)
	fin2 := pollRecord(t, ts.URL, rec2.ID, "done", done)
	if fin1.Findings == 0 || fin2.Findings == 0 {
		t.Fatalf("expected findings from both campaigns, got %d and %d", fin1.Findings, fin2.Findings)
	}
	if streamed == 0 {
		t.Error("event stream carried no live events")
	}

	resp, err = http.Get(ts.URL + "/findings")
	if err != nil {
		t.Fatal(err)
	}
	view := decodeBody[findingsResponse](t, resp, http.StatusOK)
	raw := fin1.Findings + fin2.Findings
	if view.RawFindings != raw {
		t.Fatalf("raw findings %d, want %d (every reported finding triaged)", view.RawFindings, raw)
	}
	if view.BugCount >= raw {
		t.Fatalf("triage did not dedup: %d bugs from %d raw findings", view.BugCount, raw)
	}
	total := 0
	crossSeed := false
	for _, b := range view.Bugs {
		total += b.Count
		if len(b.Campaigns) == 2 && b.Count >= 2 {
			crossSeed = true
			if len(b.Seeds) != 2 || b.Seeds[0] != 1 || b.Seeds[1] != 2 {
				t.Fatalf("cross-campaign bug carries seeds %v, want [1 2]", b.Seeds)
			}
		}
	}
	if total != raw {
		t.Fatalf("occurrence counts sum to %d, want %d", total, raw)
	}
	if !crossSeed {
		t.Fatalf("no bug deduplicated across the two seeds; bugs: %+v", view.Bugs)
	}

	// The filtered view matches (both campaigns ran on boom).
	resp, err = http.Get(ts.URL + "/findings?target=boom")
	if err != nil {
		t.Fatal(err)
	}
	filtered := decodeBody[findingsResponse](t, resp, http.StatusOK)
	if filtered.BugCount != view.BugCount {
		t.Fatalf("target filter lost bugs: %d vs %d", filtered.BugCount, view.BugCount)
	}
	resp, err = http.Get(ts.URL + "/findings?target=isasim")
	if err != nil {
		t.Fatal(err)
	}
	if empty := decodeBody[findingsResponse](t, resp, http.StatusOK); empty.BugCount != 0 {
		t.Fatalf("isasim filter returned %d boom bugs", empty.BugCount)
	}
}

// TestServerShutdownResume is the graceful-shutdown e2e the acceptance
// criteria name: two campaigns on different targets run concurrently over
// HTTP; Shutdown checkpoints both at their next merge barrier; a second
// server over the same state directory resumes them automatically, and
// both finish with reports byte-identical (modulo Duration/FirstBug) to
// uninterrupted in-process runs.
func TestServerShutdownResume(t *testing.T) {
	// Campaign lengths balance two wall-clock constraints: long enough that
	// both are still mid-flight when Shutdown fires (tens of milliseconds
	// after their first barriers — the context-reuse engine runs boom at
	// ~1k iters/s and isasim at ~6k iters/s per worker), yet short enough
	// to finish within the poll deadline under -race, which slows the
	// engine by an order of magnitude.
	stateDir := t.TempDir()
	srv1, ts1 := openTestServer(t, stateDir, 2)

	isaOpts := dejavuzz.Options{Target: "isasim", Seed: 5, Iterations: 4000, MergeEvery: 64}
	boomOpts := dejavuzz.Options{Target: "boom", Seed: 1, Iterations: 1600, MergeEvery: 8}
	recA := createCampaign(t, ts1.URL, `{"name":"arch","options":{"target":"isasim","seed":5,"iterations":4000,"merge_every":64}}`)
	recB := createCampaign(t, ts1.URL, `{"name":"uarch","options":{"target":"boom","seed":1,"iterations":1600,"merge_every":8}}`)

	// Both must run at once on the budget of 2 — the multi-tenant claim.
	pollRecord(t, ts1.URL, recA.ID, "running", func(r Record) bool { return r.State == StateRunning })
	pollRecord(t, ts1.URL, recB.ID, "running", func(r Record) bool { return r.State == StateRunning })
	both := srv1.Snapshot()
	if both.ByState[StateRunning] != 2 {
		t.Fatalf("campaigns did not run concurrently: %+v", both.ByState)
	}

	// Let each cross at least one barrier so the resume is a genuine
	// mid-campaign continuation, then pull the plug.
	pollRecord(t, ts1.URL, recA.ID, "progress", func(r Record) bool { return r.Done > 0 })
	pollRecord(t, ts1.URL, recB.ID, "progress", func(r Record) bool { return r.Done > 0 })
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv1.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts1.Close()

	for _, rec := range srv1.List() {
		if rec.State != StateQueued {
			t.Fatalf("campaign %s persisted as %s after shutdown, want queued", rec.ID, rec.State)
		}
		if rec.Done == 0 || rec.Done >= rec.Total {
			t.Fatalf("campaign %s shut down at %d/%d — not mid-campaign", rec.ID, rec.Done, rec.Total)
		}
	}

	// Restart over the same state directory: both campaigns must resume
	// without any client action and run to completion.
	srv2, ts2 := openTestServer(t, stateDir, 2)
	defer srv2.Shutdown(context.Background()) //nolint:errcheck
	finA := pollRecord(t, ts2.URL, recA.ID, "done", func(r Record) bool { return r.State == StateDone })
	finB := pollRecord(t, ts2.URL, recB.ID, "done", func(r Record) bool { return r.State == StateDone })
	if finA.Done != finA.Total || finB.Done != finB.Total {
		t.Fatalf("resumed campaigns did not finish: %+v / %+v", finA, finB)
	}

	// Byte-identical reports, modulo the wall-clock fields.
	wantA := reportJSON(t, directReport(t, isaOpts))
	wantB := reportJSON(t, directReport(t, boomOpts))
	gotA := reportJSON(t, getReport(t, ts2.URL, recA.ID))
	gotB := reportJSON(t, getReport(t, ts2.URL, recB.ID))
	if gotA != wantA {
		t.Errorf("isasim report diverged after shutdown+resume:\n got %.200s...\nwant %.200s...", gotA, wantA)
	}
	if gotB != wantB {
		t.Errorf("boom report diverged after shutdown+resume:\n got %.200s...\nwant %.200s...", gotB, wantB)
	}
}

// TestServerPauseResumeCancel exercises the remaining lifecycle endpoints
// plus healthz/metrics.
func TestServerPauseResumeCancel(t *testing.T) {
	srv, ts := openTestServer(t, t.TempDir(), 1)
	defer srv.Shutdown(context.Background()) //nolint:errcheck

	rec := createCampaign(t, ts.URL, `{"name":"pausable","options":{"target":"isasim","seed":3,"iterations":8000,"merge_every":64}}`)
	pollRecord(t, ts.URL, rec.ID, "progress", func(r Record) bool { return r.Done > 0 })

	decodeBody[Record](t, postJSON(t, ts.URL+"/campaigns/"+rec.ID+"/pause", ""), http.StatusAccepted)
	paused := pollRecord(t, ts.URL, rec.ID, "paused", func(r Record) bool { return r.State == StatePaused })
	if paused.Done == 0 || paused.Done >= paused.Total {
		t.Fatalf("paused at %d/%d — expected a mid-campaign barrier", paused.Done, paused.Total)
	}

	// While paused, the budget is free: a second campaign runs to done.
	other := createCampaign(t, ts.URL, `{"options":{"target":"isasim","seed":4,"iterations":64,"merge_every":16}}`)
	pollRecord(t, ts.URL, other.ID, "done", func(r Record) bool { return r.State == StateDone })

	decodeBody[Record](t, postJSON(t, ts.URL+"/campaigns/"+rec.ID+"/resume", ""), http.StatusAccepted)
	resumed := pollRecord(t, ts.URL, rec.ID, "running or done", func(r Record) bool {
		return r.State == StateRunning || r.State == StateDone
	})
	if resumed.Done < paused.Done {
		t.Fatalf("resume lost progress: %d < %d", resumed.Done, paused.Done)
	}

	decodeBody[Record](t, postJSON(t, ts.URL+"/campaigns/"+rec.ID+"/cancel", ""), http.StatusAccepted)
	pollRecord(t, ts.URL, rec.ID, "cancelled or done", func(r Record) bool { return r.State.Terminal() })

	// Cancel is terminal: resume must 409.
	resp := postJSON(t, ts.URL+"/campaigns/"+rec.ID+"/resume", "")
	decodeBody[errorBody](t, resp, http.StatusConflict)
	// Unknown campaigns 404.
	resp, err := http.Get(ts.URL + "/campaigns/nope")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody[errorBody](t, resp, http.StatusNotFound)
	// Bad payloads 400.
	resp = postJSON(t, ts.URL+"/campaigns", `{"options":{"target":"warp-core"}}`)
	decodeBody[errorBody](t, resp, http.StatusBadRequest)
	resp = postJSON(t, ts.URL+"/campaigns", `{"options":{"variant":"quantum"}}`)
	decodeBody[errorBody](t, resp, http.StatusBadRequest)

	// Health and metrics answer.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decodeBody[map[string]any](t, resp, http.StatusOK)
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	for _, metric := range []string{"dvz_workers_budget 1", "dvz_campaigns{state=\"done\"} 1", "dvz_iterations_total"} {
		if !strings.Contains(metrics.String(), metric) {
			t.Fatalf("metrics missing %q:\n%s", metric, metrics.String())
		}
	}
}
