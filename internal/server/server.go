// Package server is the multi-tenant campaign service: it schedules any
// number of concurrently requested fuzzing campaigns over one bounded
// shared worker budget, streams their session events to any number of
// observers, triages their findings into the deduplicated bug store
// (internal/triage), and persists everything — campaign registry, per-
// campaign barrier checkpoints, final reports, triaged findings — under one
// state directory so a SIGTERM'd server restarts exactly where it stopped:
// every active campaign is checkpointed at its next merge barrier on
// shutdown and automatically resumed (byte-identically, modulo wall-clock
// fields) on the next start.
//
// The package exposes the service both as a Go API (Open/Create/Pause/...)
// and as an HTTP API (Handler); cmd/dvz-server is the thin binary around
// them.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dejavuzz"
	"dejavuzz/internal/atomicfile"
	"dejavuzz/internal/corpus"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/triage"
)

// State is a campaign's lifecycle state.
type State string

const (
	// StateQueued: waiting for worker-budget admission (fresh, resumed
	// after a restart, or user-resumed after a pause).
	StateQueued State = "queued"
	// StateRunning: session live, consuming workers.
	StateRunning State = "running"
	// StatePaused: user-paused at a merge barrier; a checkpoint on disk
	// resumes it.
	StatePaused State = "paused"
	// StateDone: completed; the report is on disk.
	StateDone State = "done"
	// StateCancelled: terminally stopped by the user.
	StateCancelled State = "cancelled"
	// StateFailed: could not be built or launched (see Record.Error).
	StateFailed State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// Record is the persisted, client-visible snapshot of one campaign.
type Record struct {
	ID      string           `json:"id"`
	Name    string           `json:"name,omitempty"`
	Target  string           `json:"target"`
	Options dejavuzz.Options `json:"options"`
	State   State            `json:"state"`
	// Stopping is the in-flight stop intent ("pause", "cancel",
	// "shutdown") between the request and the next merge barrier.
	Stopping string    `json:"stopping,omitempty"`
	Created  time.Time `json:"created"`
	// Done/Total are completed and total campaign iterations; Coverage is
	// the merged coverage point count — all as of the latest merge barrier.
	Done     int `json:"done"`
	Total    int `json:"total"`
	Coverage int `json:"coverage"`
	// Findings counts raw (pre-triage) findings this campaign reported.
	Findings int    `json:"findings"`
	Error    string `json:"error,omitempty"`
	// Warm is the warm-start set resolved from the corpus store when the
	// campaign first launched with Options.WarmStart. It is pinned here so
	// restarts and resumes replay the exact same set even after the corpus
	// has grown — resolving anew would change the campaign's stimulus
	// streams and fail the checkpoint's option-mismatch check.
	Warm *corpus.WarmSet `json:"warm,omitempty"`
}

// Stop intents (Record.Stopping / campaign.stop).
const (
	stopPause    = "pause"
	stopCancel   = "cancel"
	stopShutdown = "shutdown"
)

// Service errors, mapped onto HTTP statuses by the handlers.
var (
	// ErrNotFound: no campaign with that ID.
	ErrNotFound = errors.New("server: campaign not found")
	// ErrConflict: the campaign's state does not admit the transition.
	ErrConflict = errors.New("server: invalid state for operation")
	// ErrShuttingDown: the server no longer accepts work.
	ErrShuttingDown = errors.New("server: shutting down")
)

// registryVersion guards campaigns.json against format drift.
const registryVersion = 1

// registryFile is the on-disk campaign registry.
type registryFile struct {
	Version   int      `json:"version"`
	NextID    int      `json:"next_id"`
	Campaigns []Record `json:"campaigns"`
}

// campaign is the server-side state of one campaign.
type campaign struct {
	rec     Record
	sess    *dejavuzz.Session
	cancel  context.CancelFunc
	stop    string // pending stop intent, "" when none
	workers int    // budget slots held while running

	// runStarted/startDone anchor the current run's throughput gauge:
	// iterations completed since the session (re)started over the wall
	// clock since then (exported as dvz_campaign_iters_per_sec).
	runStarted time.Time
	startDone  int
}

// Config configures Open.
type Config struct {
	// StateDir holds campaigns.json, findings.json, and per-campaign
	// checkpoint/report files. It is created if missing.
	StateDir string
	// Workers is the shared worker budget campaigns are admitted against
	// (default 1). A campaign consumes min(its Workers option, budget)
	// slots while running; campaigns that do not fit wait in FIFO order.
	Workers int
	// MinimizeCorpus starts the corpus store's background minimizer, which
	// runs the engine's training reduction over harvested seeds one at a
	// time, entirely off the campaign hot path.
	MinimizeCorpus bool
	// Log receives service logs; nil discards them.
	Log *log.Logger
}

// Server is the campaign service. All methods are safe for concurrent use.
type Server struct {
	stateDir string
	budget   int
	log      *log.Logger
	store    *triage.Store
	corpus   *corpus.Store
	started  time.Time

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string // creation order, for stable listings
	nextID    int
	queue     []string // FIFO admission queue of campaign IDs
	inUse     int      // worker slots held by running campaigns
	dropped   int64    // best-effort subscriber drops from finished sessions
	closed    bool
	wg        sync.WaitGroup // live campaign goroutines
}

// Open starts the service over a state directory, creating it if needed,
// and automatically re-queues every campaign that was queued or running
// when the previous server stopped — each resumes from its latest barrier
// checkpoint. Paused campaigns stay paused; terminal ones are listed as-is.
func Open(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		return nil, errors.New("server: Config.StateDir is required")
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}
	budget := cfg.Workers
	if budget <= 0 {
		budget = 1
	}
	logger := cfg.Log
	if logger == nil {
		logger = log.New(nullWriter{}, "", 0)
	}
	store, err := triage.Open(filepath.Join(cfg.StateDir, "findings.json"))
	if err != nil {
		return nil, err
	}
	cst, err := corpus.Open(filepath.Join(cfg.StateDir, "corpus"))
	if err != nil {
		return nil, err
	}
	if cfg.MinimizeCorpus {
		cst.StartMinimizer(corpus.EngineReducer(), time.Second)
	}
	s := &Server{
		stateDir:  cfg.StateDir,
		budget:    budget,
		log:       logger,
		store:     store,
		corpus:    cst,
		started:   time.Now(),
		campaigns: make(map[string]*campaign),
	}
	if err := s.loadRegistry(); err != nil {
		cst.Close()
		return nil, err
	}
	s.mu.Lock()
	s.schedule()
	s.mu.Unlock()
	return s, nil
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// loadRegistry restores campaigns.json and re-queues interrupted work.
func (s *Server) loadRegistry() error {
	path := s.registryPath()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: read registry: %w", err)
	}
	var reg registryFile
	if err := json.Unmarshal(data, &reg); err != nil {
		return fmt.Errorf("server: parse registry %s: %w", path, err)
	}
	if reg.Version != registryVersion {
		return fmt.Errorf("server: registry %s has version %d, want %d", path, reg.Version, registryVersion)
	}
	s.nextID = reg.NextID
	for _, rec := range reg.Campaigns {
		rec.Stopping = ""
		if rec.State == StateRunning || rec.State == StateQueued {
			// Interrupted by the previous shutdown (or crash): resume from
			// the latest barrier checkpoint, fresh if none was taken.
			rec.State = StateQueued
			s.queue = append(s.queue, rec.ID)
			s.log.Printf("campaign %s: re-queued for resume (%d/%d iterations done)", rec.ID, rec.Done, rec.Total)
		}
		s.campaigns[rec.ID] = &campaign{rec: rec}
		s.order = append(s.order, rec.ID)
	}
	return nil
}

func (s *Server) registryPath() string { return filepath.Join(s.stateDir, "campaigns.json") }
func (s *Server) checkpointPath(id string) string {
	return filepath.Join(s.stateDir, id+".ckpt.json")
}
func (s *Server) reportPath(id string) string {
	return filepath.Join(s.stateDir, id+".report.json")
}

// persistLocked atomically rewrites campaigns.json. Callers hold s.mu.
func (s *Server) persistLocked() error {
	reg := registryFile{Version: registryVersion, NextID: s.nextID}
	for _, id := range s.order {
		reg.Campaigns = append(reg.Campaigns, s.campaigns[id].rec)
	}
	data, err := json.Marshal(&reg)
	if err != nil {
		return fmt.Errorf("server: encode registry: %w", err)
	}
	if err := atomicfile.Write(s.registryPath(), data); err != nil {
		return fmt.Errorf("server: write registry: %w", err)
	}
	return nil
}

// Create registers a new campaign and queues it for admission. The options
// are validated eagerly (unknown target or variant fails here, not
// asynchronously), so a returned Record is guaranteed runnable.
func (s *Server) Create(name string, o dejavuzz.Options) (Record, error) {
	if _, err := o.Campaign(); err != nil {
		return Record{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Record{}, ErrShuttingDown
	}
	s.nextID++
	id := fmt.Sprintf("c%d", s.nextID)
	rec := Record{
		ID:      id,
		Name:    name,
		Target:  o.EffectiveTarget(),
		Options: o,
		State:   StateQueued,
		Created: time.Now().UTC(),
		Total:   o.EffectiveIterations(),
	}
	cs := &campaign{rec: rec}
	s.campaigns[id] = cs
	s.order = append(s.order, id)
	s.queue = append(s.queue, id)
	if err := s.persistLocked(); err != nil {
		// Roll back entirely: returning an error alongside a live campaign
		// would make client retries spawn duplicates.
		delete(s.campaigns, id)
		s.order = s.order[:len(s.order)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.nextID--
		return Record{}, err
	}
	s.schedule()
	s.log.Printf("campaign %s: created (target=%s, %d iterations)", id, rec.Target, rec.Total)
	return cs.rec, nil
}

// workersFor is the budget cost of running a campaign: its Workers option
// clamped to [1, budget], so one oversized request degrades instead of
// starving the queue forever.
func (s *Server) workersFor(o dejavuzz.Options) int {
	w := o.Workers
	if w < 1 {
		w = 1
	}
	if w > s.budget {
		w = s.budget
	}
	return w
}

// schedule admits queued campaigns in FIFO order while budget remains.
// Callers hold s.mu.
func (s *Server) schedule() {
	if s.closed {
		return
	}
	for len(s.queue) > 0 {
		cs := s.campaigns[s.queue[0]]
		w := s.workersFor(cs.rec.Options)
		if s.inUse+w > s.budget {
			return
		}
		s.queue = s.queue[1:]
		s.inUse += w
		cs.workers = w
		cs.rec.State = StateRunning
		s.wg.Add(1)
		go s.run(cs)
	}
}

// run executes one campaign from launch to its next terminal or parked
// state: it builds the session (resuming from the on-disk checkpoint when
// one exists), drains the authoritative event stream into the record and
// the triage store, and on exit releases the worker slots and persists the
// outcome.
func (s *Server) run(cs *campaign) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	id := cs.rec.ID
	ckptPath := s.checkpointPath(id)
	extra := []dejavuzz.Option{dejavuzz.WithCheckpointFile(ckptPath)}
	if cs.rec.Options.WarmStart {
		warm, err := s.warmFor(cs)
		if err != nil {
			s.finish(cs, nil, err)
			return
		}
		extra = append(extra, dejavuzz.WithWarmStart(dejavuzz.WarmStart{
			Snapshot: warm.Snapshot,
			Seeds:    warm.Seeds,
			Prior:    warm.Prior,
		}))
	}
	c, err := cs.rec.Options.Campaign(extra...)
	if err != nil {
		s.finish(cs, nil, err)
		return
	}
	var sess *dejavuzz.Session
	resumedFrom := -1
	if _, statErr := os.Stat(ckptPath); statErr == nil {
		ck, err := dejavuzz.LoadCheckpoint(ckptPath)
		if err == nil {
			resumedFrom, _ = ck.Progress()
			sess, err = c.Resume(ctx, ck)
		}
		if err != nil {
			s.finish(cs, nil, fmt.Errorf("resume from %s: %w", ckptPath, err))
			return
		}
	} else {
		sess, err = c.Start(ctx)
		if err != nil {
			s.finish(cs, nil, err)
			return
		}
	}

	s.mu.Lock()
	cs.sess = sess
	cs.cancel = cancel
	cs.runStarted = time.Now()
	cs.startDone = cs.rec.Done
	if resumedFrom >= 0 {
		cs.rec.Done = resumedFrom
		cs.startDone = resumedFrom
		s.log.Printf("campaign %s: resumed from checkpoint at iteration %d", id, resumedFrom)
	} else {
		s.log.Printf("campaign %s: started (workers=%d of budget %d)", id, cs.workers, s.budget)
	}
	if err := s.persistLocked(); err != nil {
		s.log.Printf("campaign %s: persist: %v", id, err)
	}
	stopRequested := cs.stop != ""
	s.mu.Unlock()
	if stopRequested {
		// A pause/cancel/shutdown raced launch: honour it now that cancel
		// is wired (the session stops at its first barrier).
		cancel()
	}

	target := cs.rec.Target
	seed := cs.rec.Options.EffectiveSeed()
	fp := fingerprintFor(cs.rec.Options)
	for ev := range sess.Events() {
		switch ev.Kind {
		case dejavuzz.EventEpoch:
			// Fold the barrier's harvest into the persistent corpus first:
			// the (campaign, iteration) idempotency key means a barrier
			// re-drained after an unclean restart cannot double-count.
			if len(ev.Harvest) > 0 {
				if _, err := s.corpus.Harvest(id, target, fp, ev.Harvest); err != nil {
					s.log.Printf("campaign %s: corpus harvest: %v", id, err)
				}
			}
			s.mu.Lock()
			cs.rec.Done, cs.rec.Total, cs.rec.Coverage = ev.Done, ev.Total, ev.Coverage
			if err := s.persistLocked(); err != nil {
				s.log.Printf("campaign %s: persist: %v", id, err)
			}
			s.mu.Unlock()
		case dejavuzz.EventFinding:
			// The record's raw-finding count follows the store's idempotent
			// occurrence accounting, so a barrier replayed after an unclean
			// restart (checkpoint older than the store) cannot inflate it.
			added, _, err := s.store.Add(id, target, seed, *ev.Finding)
			if err != nil {
				s.log.Printf("campaign %s: triage store: %v", id, err)
			}
			s.mu.Lock()
			cs.rec.Findings += added
			s.mu.Unlock()
		case dejavuzz.EventCheckpointSaved:
			if ev.Err != nil {
				s.log.Printf("campaign %s: checkpoint autosave: %v", id, ev.Err)
			}
		}
	}
	rep, _ := sess.Wait()
	s.finish(cs, rep, nil)
}

// fingerprintFor derives the corpus compatibility fingerprint a campaign's
// options select: seeds only transfer between campaigns whose target,
// training variant and bug configuration match.
func fingerprintFor(o dejavuzz.Options) string {
	variant := gen.VariantDerived
	if o.Variant == dejavuzz.VariantNameRandom {
		variant = gen.VariantRandom
	}
	return corpus.Fingerprint(o.EffectiveTarget(), variant, o.Bugless)
}

// warmFor returns a campaign's warm-start set, resolving it from the corpus
// store on first launch and pinning the resolution in the persisted record.
// Later launches (restart resume, pause/resume) reuse the pinned set: the
// corpus may have grown since, but the campaign's stimulus streams — and
// its checkpoint's corpus_snapshot option — are already committed to the
// original snapshot.
func (s *Server) warmFor(cs *campaign) (*corpus.WarmSet, error) {
	s.mu.Lock()
	warm := cs.rec.Warm
	s.mu.Unlock()
	if warm != nil {
		return warm, nil
	}
	o := cs.rec.Options
	families := o.Scenarios
	if len(families) == 0 {
		families = dejavuzz.Scenarios()
	}
	ws := s.corpus.WarmStart(o.EffectiveTarget(), fingerprintFor(o), families, o.EffectiveSeed(), 0)
	s.mu.Lock()
	defer s.mu.Unlock()
	cs.rec.Warm = &ws
	if err := s.persistLocked(); err != nil {
		// Without the pin on disk a restart would re-resolve against a
		// grown corpus and break resume determinism; fail the launch.
		cs.rec.Warm = nil
		return nil, fmt.Errorf("pin warm-start: %w", err)
	}
	s.log.Printf("campaign %s: warm-start resolved (%s, %d seeds, %d prior families)",
		cs.rec.ID, ws.Snapshot, len(ws.Seeds), len(ws.Prior))
	return &ws, nil
}

// finish parks a campaign after its session (or launch attempt) ends:
// records the outcome, releases worker slots and admits queued work.
func (s *Server) finish(cs *campaign, rep *dejavuzz.Report, launchErr error) {
	id := cs.rec.ID
	var saveErr error
	if rep != nil {
		data, err := json.Marshal(rep)
		if err == nil {
			err = atomicfile.Write(s.reportPath(id), data)
		}
		saveErr = err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.inUse -= cs.workers
	cs.workers = 0
	if cs.sess != nil {
		// Fold the session's best-effort subscriber drop count into the
		// server-lifetime total before the session handle goes away.
		s.dropped += cs.sess.DroppedEvents()
	}
	cs.sess = nil
	cs.cancel = nil
	stop := cs.stop
	cs.stop = ""
	cs.rec.Stopping = ""
	switch {
	case launchErr != nil:
		cs.rec.State = StateFailed
		cs.rec.Error = launchErr.Error()
		s.log.Printf("campaign %s: failed: %v", id, launchErr)
	case rep != nil:
		cs.rec.State = StateDone
		cs.rec.Done = cs.rec.Total
		cs.rec.Coverage = rep.Coverage
		if saveErr != nil {
			cs.rec.Error = fmt.Sprintf("save report: %v", saveErr)
			s.log.Printf("campaign %s: save report: %v", id, saveErr)
		}
		// The checkpoint has served its purpose; the report supersedes it.
		os.Remove(s.checkpointPath(id))
		s.log.Printf("campaign %s: done (%d findings, coverage=%d)", id, len(rep.Findings), rep.Coverage)
	case stop == stopPause:
		cs.rec.State = StatePaused
		s.log.Printf("campaign %s: paused at iteration %d", id, cs.rec.Done)
	case stop == stopCancel:
		cs.rec.State = StateCancelled
		s.log.Printf("campaign %s: cancelled at iteration %d", id, cs.rec.Done)
	default:
		// Shutdown interrupt: the barrier checkpoint is on disk and the
		// next Open re-queues the campaign automatically.
		cs.rec.State = StateQueued
		s.log.Printf("campaign %s: checkpointed for restart at iteration %d", id, cs.rec.Done)
	}
	if err := s.persistLocked(); err != nil {
		s.log.Printf("campaign %s: persist: %v", id, err)
	}
	s.schedule()
}

// List returns every campaign record in creation order.
func (s *Server) List() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.campaigns[id].rec)
	}
	return out
}

// Get returns one campaign record.
func (s *Server) Get(id string) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.campaigns[id]
	if !ok {
		return Record{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return cs.rec, nil
}

// Pause stops a campaign at its next merge barrier (running) or pulls it
// from the admission queue (queued), leaving a resumable checkpoint. The
// transition of a running campaign is asynchronous: the returned record
// shows Stopping="pause" until the barrier lands.
func (s *Server) Pause(id string) (Record, error) {
	s.mu.Lock()
	cs, ok := s.campaigns[id]
	if !ok {
		s.mu.Unlock()
		return Record{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch cs.rec.State {
	case StateRunning:
		if cs.stop == "" {
			cs.stop = stopPause
			cs.rec.Stopping = stopPause
		}
		cancel := cs.cancel
		rec := cs.rec
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return rec, nil
	case StateQueued:
		s.dequeueLocked(id)
		cs.rec.State = StatePaused
		err := s.persistLocked()
		rec := cs.rec
		s.mu.Unlock()
		return rec, err
	default:
		rec := cs.rec
		s.mu.Unlock()
		return rec, fmt.Errorf("%w: cannot pause %s campaign %s", ErrConflict, rec.State, id)
	}
}

// ResumeCampaign re-queues a paused campaign; it continues from its
// checkpoint (fresh when it was paused before the first barrier).
func (s *Server) ResumeCampaign(id string) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.campaigns[id]
	if !ok {
		return Record{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if s.closed {
		return cs.rec, ErrShuttingDown
	}
	if cs.rec.State != StatePaused {
		return cs.rec, fmt.Errorf("%w: cannot resume %s campaign %s", ErrConflict, cs.rec.State, id)
	}
	cs.rec.State = StateQueued
	s.queue = append(s.queue, id)
	err := s.persistLocked()
	s.schedule()
	return cs.rec, err
}

// Cancel terminally stops a campaign: a running one stops at its next
// barrier (Stopping="cancel" until then), a queued or paused one is
// cancelled immediately. Cancelled campaigns cannot be resumed.
func (s *Server) Cancel(id string) (Record, error) {
	s.mu.Lock()
	cs, ok := s.campaigns[id]
	if !ok {
		s.mu.Unlock()
		return Record{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch cs.rec.State {
	case StateRunning:
		// Overrides a pending pause: cancel is the stronger intent.
		cs.stop = stopCancel
		cs.rec.Stopping = stopCancel
		cancel := cs.cancel
		rec := cs.rec
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return rec, nil
	case StateQueued, StatePaused:
		s.dequeueLocked(id)
		cs.rec.State = StateCancelled
		err := s.persistLocked()
		rec := cs.rec
		s.mu.Unlock()
		return rec, err
	default:
		rec := cs.rec
		s.mu.Unlock()
		return rec, fmt.Errorf("%w: cannot cancel %s campaign %s", ErrConflict, rec.State, id)
	}
}

// dequeueLocked removes id from the admission queue if present.
func (s *Server) dequeueLocked(id string) {
	for i, q := range s.queue {
		if q == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// Subscribe attaches a live event observer to a campaign's session (see
// dejavuzz.Session.Subscribe). The record snapshot is returned alongside;
// for campaigns that are not running, the channel is nil and the snapshot
// is all there is to stream.
func (s *Server) Subscribe(id string) (Record, <-chan dejavuzz.Event, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.campaigns[id]
	if !ok {
		return Record{}, nil, nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if cs.sess == nil {
		return cs.rec, nil, func() {}, nil
	}
	ch, cancel := cs.sess.Subscribe(0)
	return cs.rec, ch, cancel, nil
}

// Report loads a completed campaign's report from the state directory.
func (s *Server) Report(id string) (*dejavuzz.Report, error) {
	s.mu.Lock()
	cs, ok := s.campaigns[id]
	var state State
	if ok {
		state = cs.rec.State
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if state != StateDone {
		return nil, fmt.Errorf("%w: campaign %s is %s, not done", ErrConflict, id, state)
	}
	data, err := os.ReadFile(s.reportPath(id))
	if err != nil {
		return nil, fmt.Errorf("server: read report: %w", err)
	}
	rep := &dejavuzz.Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("server: parse report: %w", err)
	}
	return rep, nil
}

// Findings returns the aggregated triage view, optionally filtered to one
// target and/or one scenario family: the deduplicated bug clusters plus the
// raw-finding total.
func (s *Server) Findings(target, scenario string) (bugs []triage.Bug, raw int) {
	raw, _ = s.store.Stats()
	all := s.store.Bugs()
	if target == "" && scenario == "" {
		return all, raw
	}
	for _, b := range all {
		if (target == "" || b.Target == target) && (scenario == "" || b.Scenario == scenario) {
			bugs = append(bugs, b)
		}
	}
	return bugs, raw
}

// CampaignRate is one running campaign's throughput gauge: iterations
// completed since its session (re)started over the wall clock since then,
// plus the session's best-effort subscriber drop count.
type CampaignRate struct {
	ID          string
	Done        int
	ItersPerSec float64
	Dropped     int64
}

// Stats is the service health/metrics snapshot.
type Stats struct {
	Uptime        time.Duration
	WorkersBudget int
	WorkersInUse  int
	Queued        int
	ByState       map[State]int
	Iterations    int // completed iterations across all campaigns
	RawFindings   int
	TriagedBugs   int
	// CorpusEntries is the persistent cross-campaign corpus size.
	CorpusEntries int
	// DroppedEvents counts events dropped across all best-effort session
	// subscriber buffers, live sessions plus finished ones.
	DroppedEvents int64
	// Running lists per-campaign throughput for currently running
	// campaigns, ordered by campaign ID.
	Running []CampaignRate
}

// Snapshot gathers current service statistics.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	st := Stats{
		Uptime:        time.Since(s.started),
		WorkersBudget: s.budget,
		WorkersInUse:  s.inUse,
		Queued:        len(s.queue),
		ByState:       make(map[State]int),
	}
	st.DroppedEvents = s.dropped
	for _, cs := range s.campaigns {
		st.ByState[cs.rec.State]++
		st.Iterations += cs.rec.Done
		if cs.rec.State == StateRunning && !cs.runStarted.IsZero() {
			rate := 0.0
			if elapsed := time.Since(cs.runStarted).Seconds(); elapsed > 0 {
				rate = float64(cs.rec.Done-cs.startDone) / elapsed
			}
			dropped := int64(0)
			if cs.sess != nil {
				dropped = cs.sess.DroppedEvents()
			}
			st.DroppedEvents += dropped
			st.Running = append(st.Running, CampaignRate{
				ID: cs.rec.ID, Done: cs.rec.Done, ItersPerSec: rate, Dropped: dropped,
			})
		}
	}
	s.mu.Unlock()
	sort.Slice(st.Running, func(i, j int) bool { return st.Running[i].ID < st.Running[j].ID })
	st.RawFindings, st.TriagedBugs = s.store.Stats()
	st.CorpusEntries = s.corpus.Len()
	return st
}

// Shutdown gracefully stops the service: no new campaigns are accepted,
// every running campaign is cancelled so it checkpoints at its next merge
// barrier, and the registry records them as queued so the next Open resumes
// them automatically. It returns once every campaign goroutine has parked,
// or with the context's error if that takes too long (checkpoints written
// so far remain valid either way).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for _, cs := range s.campaigns {
		// Mark every running campaign, including ones still mid-launch
		// (cancel not wired yet) — their run goroutine checks the intent
		// right after wiring and cancels itself.
		if cs.rec.State == StateRunning && cs.stop == "" {
			cs.stop = stopShutdown
			cs.rec.Stopping = stopShutdown
		}
		if cs.cancel != nil {
			cs.cancel()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.mu.Lock()
	err := s.persistLocked()
	s.mu.Unlock()
	// All campaign goroutines have parked, so no harvest is in flight:
	// stop the minimizer and fold the corpus journal into its snapshot.
	if cerr := s.corpus.Close(); err == nil {
		err = cerr
	}
	return err
}
