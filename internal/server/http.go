package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"dejavuzz"
	"dejavuzz/internal/triage"
)

// Handler returns the service's HTTP API:
//
//	POST /campaigns                create a campaign ({"name","options"})
//	GET  /campaigns                list campaigns
//	GET  /campaigns/{id}           one campaign's status
//	GET  /campaigns/{id}/events    live event stream (NDJSON; SSE with
//	                               Accept: text/event-stream)
//	GET  /campaigns/{id}/report    completed campaign's full report
//	POST /campaigns/{id}/pause     checkpoint at the next barrier and park
//	POST /campaigns/{id}/resume    re-queue a paused campaign
//	POST /campaigns/{id}/cancel    terminally stop
//	GET  /findings[?target=t][&scenario=s]  aggregated triage view (deduped bugs)
//	GET  /scenarios                scenario-family catalog
//	GET  /healthz                  liveness + campaign counts
//	GET  /metrics                  Prometheus-style text metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleCreate)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleGet)
	mux.HandleFunc("GET /campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("POST /campaigns/{id}/pause", s.handlePause)
	mux.HandleFunc("POST /campaigns/{id}/resume", s.handleResume)
	mux.HandleFunc("POST /campaigns/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /findings", s.handleFindings)
	mux.HandleFunc("GET /scenarios", s.handleScenarios)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// errorBody is every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing left to report
}

// writeErr maps service errors onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		status = http.StatusConflict
	case errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// createRequest is the create-campaign payload. Options is the wire form of
// dejavuzz.Options — see its docs for the field set and the seed/iterations
// explicit-zero convention.
type createRequest struct {
	Name    string           `json:"name"`
	Options dejavuzz.Options `json:"options"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("decode request: %w", err))
		return
	}
	rec, err := s.Create(req.Name, req.Options)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, rec)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Campaigns []Record `json:"campaigns"`
	}{s.List()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Pause(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	rec, err := s.ResumeCampaign(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, err := s.Report(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// wireEvent is the streamed form of one session event (or the initial
// status snapshot every stream opens with).
type wireEvent struct {
	Kind     string `json:"kind"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
	Coverage int    `json:"coverage"`
	// Scenarios carries the per-family campaign statistics on epoch frames:
	// picks, coverage yield, findings, and the scheduler's view of the family
	// — sampling weight, posterior mean yield and exploration bonus.
	Scenarios []dejavuzz.ScenarioStat `json:"scenarios,omitempty"`
	Finding   *dejavuzz.Finding       `json:"finding,omitempty"`
	Path      string                  `json:"path,omitempty"`
	Error     string                  `json:"error,omitempty"`
	State     State                   `json:"state,omitempty"` // status snapshots only
}

func toWireEvent(ev dejavuzz.Event) wireEvent {
	we := wireEvent{
		Kind:      ev.Kind.String(),
		Done:      ev.Done,
		Total:     ev.Total,
		Coverage:  ev.Coverage,
		Scenarios: ev.Scenarios,
		Finding:   ev.Finding,
		Path:      ev.Path,
	}
	if ev.Err != nil {
		we.Error = ev.Err.Error()
	}
	return we
}

// handleEvents streams a campaign's live session events. The default
// framing is NDJSON (one event object per line); clients sending
// Accept: text/event-stream get Server-Sent Events instead. Every stream
// opens with a "status" snapshot, so subscribing to a finished (or queued)
// campaign yields exactly that one frame. Delivery is best-effort live
// observation — the server's own triage/status consumption is lossless
// independently of any stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	rec, ch, cancelSub, err := s.Subscribe(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	defer cancelSub()

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	send := func(we wireEvent) bool {
		data, err := json.Marshal(we)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", we.Kind, data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	send(wireEvent{Kind: "status", State: rec.State, Done: rec.Done, Total: rec.Total, Coverage: rec.Coverage})
	if ch == nil {
		return
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if !send(toWireEvent(ev)) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// findingsResponse is the aggregated triage view.
type findingsResponse struct {
	// RawFindings counts every finding campaigns ever reported, duplicates
	// included; Bugs is what they collapse to.
	RawFindings int          `json:"raw_findings"`
	BugCount    int          `json:"bug_count"`
	Bugs        []triage.Bug `json:"bugs"`
}

func (s *Server) handleFindings(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	bugs, raw := s.Findings(q.Get("target"), q.Get("scenario"))
	if bugs == nil {
		bugs = []triage.Bug{}
	}
	writeJSON(w, http.StatusOK, findingsResponse{RawFindings: raw, BugCount: len(bugs), Bugs: bugs})
}

// handleScenarios serves the scenario-family catalog: every registered
// family with its Table-3 classes, capability flags and supporting targets.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Scenarios []dejavuzz.ScenarioInfo `json:"scenarios"`
	}{dejavuzz.ScenarioCatalog()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Snapshot()
	writeJSON(w, http.StatusOK, struct {
		Status        string        `json:"status"`
		UptimeSeconds float64       `json:"uptime_seconds"`
		WorkersBudget int           `json:"workers_budget"`
		WorkersInUse  int           `json:"workers_in_use"`
		Queued        int           `json:"queued"`
		Campaigns     map[State]int `json:"campaigns"`
	}{"ok", st.Uptime.Seconds(), st.WorkersBudget, st.WorkersInUse, st.Queued, st.ByState})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP dvz_uptime_seconds Server uptime.\ndvz_uptime_seconds %f\n", st.Uptime.Seconds())
	fmt.Fprintf(w, "# HELP dvz_workers_budget Shared worker budget.\ndvz_workers_budget %d\n", st.WorkersBudget)
	fmt.Fprintf(w, "# HELP dvz_workers_in_use Worker slots held by running campaigns.\ndvz_workers_in_use %d\n", st.WorkersInUse)
	fmt.Fprintf(w, "# HELP dvz_campaigns Campaigns by state.\n")
	for _, state := range []State{StateQueued, StateRunning, StatePaused, StateDone, StateCancelled, StateFailed} {
		fmt.Fprintf(w, "dvz_campaigns{state=%q} %d\n", state, st.ByState[state])
	}
	fmt.Fprintf(w, "# HELP dvz_iterations_total Completed fuzzing iterations across all campaigns.\ndvz_iterations_total %d\n", st.Iterations)
	if len(st.Running) > 0 {
		fmt.Fprintf(w, "# HELP dvz_campaign_iters_per_sec Per-campaign fuzzing throughput since the session (re)started.\n")
		for _, r := range st.Running {
			fmt.Fprintf(w, "dvz_campaign_iters_per_sec{id=%q} %f\n", r.ID, r.ItersPerSec)
		}
		fmt.Fprintf(w, "# HELP dvz_campaign_iterations Per-campaign completed iterations.\n")
		for _, r := range st.Running {
			fmt.Fprintf(w, "dvz_campaign_iterations{id=%q} %d\n", r.ID, r.Done)
		}
	}
	fmt.Fprintf(w, "# HELP dvz_findings_raw_total Raw findings before triage.\ndvz_findings_raw_total %d\n", st.RawFindings)
	fmt.Fprintf(w, "# HELP dvz_findings_bugs Deduplicated triaged bugs.\ndvz_findings_bugs %d\n", st.TriagedBugs)
}
