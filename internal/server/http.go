package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"dejavuzz"
	"dejavuzz/internal/corpus"
	"dejavuzz/internal/triage"
)

// Handler returns the service's HTTP API:
//
//	POST /campaigns                create a campaign ({"name","options"})
//	GET  /campaigns                list campaigns (paginated)
//	GET  /campaigns/{id}           one campaign's status
//	GET  /campaigns/{id}/events    live event stream (NDJSON; SSE with
//	                               Accept: text/event-stream)
//	GET  /campaigns/{id}/report    completed campaign's full report
//	POST /campaigns/{id}/pause     checkpoint at the next barrier and park
//	POST /campaigns/{id}/resume    re-queue a paused campaign
//	POST /campaigns/{id}/cancel    terminally stop
//	GET  /findings[?target=t][&scenario=s]  aggregated triage view (deduped
//	                               bugs; the bug list is paginated)
//	GET  /corpus[?target=t][&scenario=s]    persistent corpus entries
//	                               (paginated)
//	GET  /corpus/frontier[?since=fr-...]    coverage frontier, or the diff
//	                               against an earlier frontier ID
//	GET  /scenarios                scenario-family catalog
//	GET  /healthz                  liveness + campaign counts
//	GET  /metrics                  Prometheus-style text metrics
//
// List endpoints marked paginated accept ?limit= and ?offset= over a stable
// ordering and always set X-Total-Count to the pre-pagination size.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleCreate)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleGet)
	mux.HandleFunc("GET /campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("POST /campaigns/{id}/pause", s.handlePause)
	mux.HandleFunc("POST /campaigns/{id}/resume", s.handleResume)
	mux.HandleFunc("POST /campaigns/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /findings", s.handleFindings)
	mux.HandleFunc("GET /corpus", s.handleCorpus)
	mux.HandleFunc("GET /corpus/frontier", s.handleFrontier)
	mux.HandleFunc("GET /scenarios", s.handleScenarios)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// paginate applies the shared ?limit=&offset= convention to a list of n
// items: it sets X-Total-Count to n and returns the [lo, hi) window to
// serve. limit caps the page size (absent or negative means everything) and
// offset skips from the start of the stable ordering; a window beyond the
// end is an empty page, not an error. Malformed values write a 400 and
// return ok=false.
func paginate(w http.ResponseWriter, r *http.Request, n int) (lo, hi int, ok bool) {
	q := r.URL.Query()
	limit, offset := -1, 0
	if v := q.Get("limit"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 0 {
			writeErr(w, fmt.Errorf("invalid limit %q: want a non-negative integer", v))
			return 0, 0, false
		}
		limit = p
	}
	if v := q.Get("offset"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 0 {
			writeErr(w, fmt.Errorf("invalid offset %q: want a non-negative integer", v))
			return 0, 0, false
		}
		offset = p
	}
	w.Header().Set("X-Total-Count", strconv.Itoa(n))
	lo = offset
	if lo > n {
		lo = n
	}
	hi = n
	if limit >= 0 && lo+limit < hi {
		hi = lo + limit
	}
	return lo, hi, true
}

// errorBody is every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing left to report
}

// writeErr maps service errors onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		status = http.StatusConflict
	case errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// createRequest is the create-campaign payload. Options is the wire form of
// dejavuzz.Options — see its docs for the field set and the seed/iterations
// explicit-zero convention.
type createRequest struct {
	Name    string           `json:"name"`
	Options dejavuzz.Options `json:"options"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("decode request: %w", err))
		return
	}
	rec, err := s.Create(req.Name, req.Options)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, rec)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	recs := s.List()
	lo, hi, ok := paginate(w, r, len(recs))
	if !ok {
		return
	}
	page := recs[lo:hi]
	if page == nil {
		page = []Record{}
	}
	writeJSON(w, http.StatusOK, struct {
		Total     int      `json:"total"`
		Campaigns []Record `json:"campaigns"`
	}{len(recs), page})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Pause(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	rec, err := s.ResumeCampaign(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, err := s.Report(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// wireEvent is the streamed form of one session event (or the initial
// status snapshot every stream opens with).
type wireEvent struct {
	Kind     string `json:"kind"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
	Coverage int    `json:"coverage"`
	// Scenarios carries the per-family campaign statistics on epoch frames:
	// picks, coverage yield, findings, and the scheduler's view of the family
	// — sampling weight, posterior mean yield and exploration bonus.
	Scenarios []dejavuzz.ScenarioStat `json:"scenarios,omitempty"`
	Finding   *dejavuzz.Finding       `json:"finding,omitempty"`
	Path      string                  `json:"path,omitempty"`
	Error     string                  `json:"error,omitempty"`
	State     State                   `json:"state,omitempty"` // status snapshots only
}

func toWireEvent(ev dejavuzz.Event) wireEvent {
	we := wireEvent{
		Kind:      ev.Kind.String(),
		Done:      ev.Done,
		Total:     ev.Total,
		Coverage:  ev.Coverage,
		Scenarios: ev.Scenarios,
		Finding:   ev.Finding,
		Path:      ev.Path,
	}
	if ev.Err != nil {
		we.Error = ev.Err.Error()
	}
	return we
}

// handleEvents streams a campaign's live session events. The default
// framing is NDJSON (one event object per line); clients sending
// Accept: text/event-stream get Server-Sent Events instead. Every stream
// opens with a "status" snapshot, so subscribing to a finished (or queued)
// campaign yields exactly that one frame. Delivery is best-effort live
// observation — the server's own triage/status consumption is lossless
// independently of any stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	rec, ch, cancelSub, err := s.Subscribe(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	defer cancelSub()

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	send := func(we wireEvent) bool {
		data, err := json.Marshal(we)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", we.Kind, data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	send(wireEvent{Kind: "status", State: rec.State, Done: rec.Done, Total: rec.Total, Coverage: rec.Coverage})
	if ch == nil {
		return
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if !send(toWireEvent(ev)) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// findingsResponse is the aggregated triage view.
type findingsResponse struct {
	// RawFindings counts every finding campaigns ever reported, duplicates
	// included; Bugs is what they collapse to.
	RawFindings int          `json:"raw_findings"`
	BugCount    int          `json:"bug_count"`
	Bugs        []triage.Bug `json:"bugs"`
}

func (s *Server) handleFindings(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	bugs, raw := s.Findings(q.Get("target"), q.Get("scenario"))
	lo, hi, ok := paginate(w, r, len(bugs))
	if !ok {
		return
	}
	page := bugs[lo:hi]
	if page == nil {
		page = []triage.Bug{}
	}
	writeJSON(w, http.StatusOK, findingsResponse{RawFindings: raw, BugCount: len(bugs), Bugs: page})
}

// corpusResponse is the paginated persistent-corpus listing.
type corpusResponse struct {
	Total   int            `json:"total"`
	Entries []corpus.Entry `json:"entries"`
}

// handleCorpus lists the persistent cross-campaign corpus, optionally
// filtered by target and/or scenario family, paginated over the stable
// entry-ID ordering.
func (s *Server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	entries := s.corpus.List(q.Get("target"), q.Get("scenario"))
	lo, hi, ok := paginate(w, r, len(entries))
	if !ok {
		return
	}
	page := entries[lo:hi]
	if page == nil {
		page = []corpus.Entry{}
	}
	writeJSON(w, http.StatusOK, corpusResponse{Total: len(entries), Entries: page})
}

// handleFrontier serves the corpus coverage frontier. Without a query it
// returns the current frontier (whose ID a client can hold on to); with
// ?since=fr-... it returns the per-family deltas accumulated since that
// frontier. An ID outside the retained history is a 404.
func (s *Server) handleFrontier(w http.ResponseWriter, r *http.Request) {
	since := r.URL.Query().Get("since")
	if since == "" {
		writeJSON(w, http.StatusOK, s.corpus.Frontier())
		return
	}
	diff, err := s.corpus.Diff(since)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	if diff.Changed == nil {
		diff.Changed = []corpus.FamilyDelta{}
	}
	writeJSON(w, http.StatusOK, diff)
}

// handleScenarios serves the scenario-family catalog: every registered
// family with its Table-3 classes, capability flags and supporting targets.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Scenarios []dejavuzz.ScenarioInfo `json:"scenarios"`
	}{dejavuzz.ScenarioCatalog()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Snapshot()
	writeJSON(w, http.StatusOK, struct {
		Status        string        `json:"status"`
		UptimeSeconds float64       `json:"uptime_seconds"`
		WorkersBudget int           `json:"workers_budget"`
		WorkersInUse  int           `json:"workers_in_use"`
		Queued        int           `json:"queued"`
		Campaigns     map[State]int `json:"campaigns"`
	}{"ok", st.Uptime.Seconds(), st.WorkersBudget, st.WorkersInUse, st.Queued, st.ByState})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP dvz_uptime_seconds Server uptime.\ndvz_uptime_seconds %f\n", st.Uptime.Seconds())
	fmt.Fprintf(w, "# HELP dvz_workers_budget Shared worker budget.\ndvz_workers_budget %d\n", st.WorkersBudget)
	fmt.Fprintf(w, "# HELP dvz_workers_in_use Worker slots held by running campaigns.\ndvz_workers_in_use %d\n", st.WorkersInUse)
	fmt.Fprintf(w, "# HELP dvz_campaigns Campaigns by state.\n")
	for _, state := range []State{StateQueued, StateRunning, StatePaused, StateDone, StateCancelled, StateFailed} {
		fmt.Fprintf(w, "dvz_campaigns{state=%q} %d\n", state, st.ByState[state])
	}
	fmt.Fprintf(w, "# HELP dvz_iterations_total Completed fuzzing iterations across all campaigns.\ndvz_iterations_total %d\n", st.Iterations)
	if len(st.Running) > 0 {
		fmt.Fprintf(w, "# HELP dvz_campaign_iters_per_sec Per-campaign fuzzing throughput since the session (re)started.\n")
		for _, r := range st.Running {
			fmt.Fprintf(w, "dvz_campaign_iters_per_sec{id=%q} %f\n", r.ID, r.ItersPerSec)
		}
		fmt.Fprintf(w, "# HELP dvz_campaign_iterations Per-campaign completed iterations.\n")
		for _, r := range st.Running {
			fmt.Fprintf(w, "dvz_campaign_iterations{id=%q} %d\n", r.ID, r.Done)
		}
		fmt.Fprintf(w, "# HELP dvz_campaign_events_dropped Per-campaign events dropped on best-effort subscriber buffers.\n")
		for _, r := range st.Running {
			fmt.Fprintf(w, "dvz_campaign_events_dropped{id=%q} %d\n", r.ID, r.Dropped)
		}
	}
	fmt.Fprintf(w, "# HELP dvz_findings_raw_total Raw findings before triage.\ndvz_findings_raw_total %d\n", st.RawFindings)
	fmt.Fprintf(w, "# HELP dvz_findings_bugs Deduplicated triaged bugs.\ndvz_findings_bugs %d\n", st.TriagedBugs)
	fmt.Fprintf(w, "# HELP dvz_corpus_entries Persistent cross-campaign corpus entries.\ndvz_corpus_entries %d\n", st.CorpusEntries)
	fmt.Fprintf(w, "# HELP dvz_events_dropped_total Events dropped on best-effort subscriber buffers, all sessions.\ndvz_events_dropped_total %d\n", st.DroppedEvents)
}
