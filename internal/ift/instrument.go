package ift

import (
	"fmt"
	"math/bits"
	"sort"

	"dejavuzz/internal/rtl"
)

// Mode selects the taint propagation discipline.
type Mode int

const (
	// ModeCellIFT propagates control taints unconditionally (Policy 2),
	// reproducing CellIFT's control-flow over-tainting.
	ModeCellIFT Mode = iota
	// ModeDiff gates control taints on cross-instance differences (Table 1).
	ModeDiff
)

func (m Mode) String() string {
	if m == ModeDiff {
		return "diffIFT"
	}
	return "CellIFT"
}

// LivenessAttr is the register/memory attribute binding state registers to
// taint registers, as written by developers in the DUT source
// (the paper's `(* liveness_mask = "signal" *)` annotation).
const LivenessAttr = "liveness_mask"

// Shadow is an instrumented simulator instance: the original design's values
// plus a parallel taint state evaluated with the selected policy set.
type Shadow struct {
	Sim  *rtl.Sim
	Mode Mode

	SigT []uint64   // signal taints
	RegT []uint64   // register taints
	MemT [][]uint64 // memory taints

	// liveness[i] is the signal whose bits gate the liveness of register i
	// (bit 0) — filled in during instrumentation from LivenessAttr.
	regLive []rtl.SignalID
	memLive []rtl.SignalID

	peer *Shadow // set by NewPair for ModeDiff
}

// Instrument builds a shadow instance for the design. This is the "compile"
// step whose duration the Table 4 experiment measures: it resolves liveness
// annotations and pre-computes the per-cell propagation plan.
func Instrument(d *rtl.Design, mode Mode) (*Shadow, error) {
	s := &Shadow{
		Sim:  rtl.NewSim(d),
		Mode: mode,
		SigT: make([]uint64, len(d.Signals)),
		RegT: make([]uint64, len(d.Regs)),
	}
	s.MemT = make([][]uint64, len(d.Mems))
	for i, m := range d.Mems {
		s.MemT[i] = make([]uint64, m.Depth)
	}

	// Resolve liveness annotations by signal name.
	byName := make(map[string]rtl.SignalID, len(d.Signals))
	for i, sg := range d.Signals {
		byName[sg.Name] = rtl.SignalID(i)
	}
	s.regLive = make([]rtl.SignalID, len(d.Regs))
	for i, r := range d.Regs {
		s.regLive[i] = rtl.Invalid
		if name, ok := r.Attrs[LivenessAttr]; ok {
			sig, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("ift: register %q: liveness signal %q not found", r.Name, name)
			}
			s.regLive[i] = sig
		}
	}
	s.memLive = make([]rtl.SignalID, len(d.Mems))
	for i, m := range d.Mems {
		s.memLive[i] = rtl.Invalid
		if name, ok := m.Attrs[LivenessAttr]; ok {
			sig, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("ift: memory %q: liveness signal %q not found", m.Name, name)
			}
			s.memLive[i] = sig
		}
	}
	return s, nil
}

// MustInstrument panics on annotation errors.
func MustInstrument(d *rtl.Design, mode Mode) *Shadow {
	s, err := Instrument(d, mode)
	if err != nil {
		panic(err)
	}
	return s
}

// Poke drives an input with a value and taint.
func (s *Shadow) Poke(sig rtl.SignalID, v, t uint64) {
	s.Sim.Poke(sig, v)
	s.SigT[sig] = t & s.Sim.D.Mask(sig)
}

// PokeMem initialises a memory word and its taint directly (testbench use).
func (s *Shadow) PokeMem(m *rtl.Mem, idx int, v, t uint64) {
	for mi, mm := range s.Sim.D.Mems {
		if mm == m {
			s.Sim.MemV[mi][idx] = v & rtl.WidthMask(m.Width)
			s.MemT[mi][idx] = t & rtl.WidthMask(m.Width)
			return
		}
	}
	panic("ift: memory not in design")
}

// Peek returns a signal's value and taint.
func (s *Shadow) Peek(sig rtl.SignalID) (v, t uint64) {
	return s.Sim.Peek(sig), s.SigT[sig]
}

// diffOf returns whether a signal's value differs from the peer instance.
// Outside ModeDiff (or without a peer) control gating degenerates to CellIFT.
func (s *Shadow) diffOf(sig rtl.SignalID) bool {
	if s.Mode != ModeDiff || s.peer == nil {
		return true
	}
	return s.Sim.Peek(sig) != s.peer.Sim.Peek(sig)
}

// evalTaints propagates taints through every cell, in cell order. Values must
// already be evaluated (and, in ModeDiff, on both instances).
func (s *Shadow) evalTaints() {
	d := s.Sim.D
	v := s.Sim.Vals
	t := s.SigT
	regIdx := 0
	_ = regIdx
	// Present register taints on their Q signals.
	for i, r := range d.Regs {
		t[r.Q] = s.RegT[i]
	}
	for ci := range d.Cells {
		c := &d.Cells[ci]
		mask := d.Mask(c.Out)
		switch c.Kind {
		case rtl.CellBufIn:
			// poked taint persists
		case rtl.CellConst:
			t[c.Out] = 0
		case rtl.CellNot:
			t[c.Out] = NotTaint(t[c.In[0]]) & mask
		case rtl.CellAnd:
			t[c.Out] = AndTaint(v[c.In[0]], v[c.In[1]], t[c.In[0]], t[c.In[1]]) & mask
		case rtl.CellOr:
			t[c.Out] = OrTaint(v[c.In[0]], v[c.In[1]], t[c.In[0]], t[c.In[1]]) & mask
		case rtl.CellXor:
			t[c.Out] = XorTaint(t[c.In[0]], t[c.In[1]]) & mask
		case rtl.CellAdd, rtl.CellSub:
			t[c.Out] = AddTaint(t[c.In[0]], t[c.In[1]]) & mask
		case rtl.CellEq, rtl.CellNe, rtl.CellLt:
			if s.Mode == ModeDiff {
				outDiff := s.diffOf(c.Out)
				t[c.Out] = CmpTaintDiff(outDiff, t[c.In[0]], t[c.In[1]])
			} else {
				t[c.Out] = CmpTaintCellIFT(t[c.In[0]], t[c.In[1]])
			}
		case rtl.CellShl:
			t[c.Out] = ShiftTaint(t[c.In[0]], v[c.In[1]], true, t[c.In[1]] != 0, s.diffOf(c.In[1]), mask)
		case rtl.CellShr:
			t[c.Out] = ShiftTaint(t[c.In[0]], v[c.In[1]], false, t[c.In[1]] != 0, s.diffOf(c.In[1]), mask)
		case rtl.CellMux:
			sel, a, b := c.In[0], c.In[1], c.In[2]
			if s.Mode == ModeDiff {
				t[c.Out] = MuxTaintDiff(v[sel], t[sel] != 0, s.diffOf(sel), v[a], v[b], t[a], t[b]) & mask
			} else {
				t[c.Out] = MuxTaintCellIFT(v[sel], t[sel] != 0, v[a], v[b], t[a], t[b]) & mask
			}
		case rtl.CellConcat:
			lo := c.In[1]
			t[c.Out] = (t[c.In[0]]<<uint(d.Width(lo)) | t[lo]) & mask
		case rtl.CellSlice:
			t[c.Out] = t[c.In[0]] >> uint(c.Lo) & mask
		case rtl.CellRedOr:
			if t[c.In[0]] != 0 {
				t[c.Out] = 1
			} else {
				t[c.Out] = 0
			}
		case rtl.CellMemRd:
			addr := v[c.In[0]] % uint64(len(s.MemT[c.Mem]))
			addrCtl := t[c.In[0]] != 0
			if s.Mode == ModeDiff {
				addrCtl = addrCtl && s.diffOf(c.In[0])
			}
			t[c.Out] = MemReadTaint(s.MemT[c.Mem][addr], addrCtl, mask)
		}
	}
}

// clockTaints commits register and memory taints (the shadow of rtl.Sim.Clock).
func (s *Shadow) clockTaints() {
	d := s.Sim.D
	v := s.Sim.Vals
	t := s.SigT
	next := make([]uint64, len(s.RegT))
	for i, r := range d.Regs {
		mask := rtl.WidthMask(r.Width)
		if r.D == rtl.Invalid {
			next[i] = s.RegT[i]
			continue
		}
		if r.En == rtl.Invalid {
			next[i] = t[r.D] & mask
			continue
		}
		en := v[r.En]
		enT := t[r.En] != 0
		q := s.Sim.RegV[i]
		if s.Mode == ModeDiff {
			next[i] = RegEnTaintDiff(en, enT, s.diffOf(r.En), v[r.D], q, t[r.D], s.RegT[i]) & mask
		} else {
			next[i] = RegEnTaintCellIFT(en, enT, v[r.D], q, t[r.D], s.RegT[i]) & mask
		}
	}
	copy(s.RegT, next)

	for mi, m := range d.Mems {
		mask := rtl.WidthMask(m.Width)
		for _, w := range m.Writes {
			wen := v[w.En]
			wenCtl := t[w.En] != 0
			addrCtl := t[w.Addr] != 0
			if s.Mode == ModeDiff {
				wenCtl = wenCtl && s.diffOf(w.En)
				addrCtl = addrCtl && s.diffOf(w.Addr)
			}
			addr := v[w.Addr] % uint64(m.Depth)
			s.MemT[mi][addr] = MemWriteTaint(wen, t[w.Data], s.MemT[mi][addr], wenCtl, addrCtl, mask)
		}
	}
}

// Step runs one cycle of a standalone (CellIFT-mode) shadow instance.
func (s *Shadow) Step() {
	s.Sim.Eval()
	s.evalTaints()
	s.clockTaints()
	s.Sim.Clock()
}

// TaintSum returns the total number of tainted state bits (registers plus
// memories) — the y-axis of the paper's Figure 6.
func (s *Shadow) TaintSum() int {
	n := 0
	for _, t := range s.RegT {
		n += bits.OnesCount64(t)
	}
	for _, mt := range s.MemT {
		for _, t := range mt {
			n += bits.OnesCount64(t)
		}
	}
	return n
}

// ModuleTaintCounts returns, per module path, the number of tainted state
// elements (registers / memory entries with any taint bit set).
func (s *Shadow) ModuleTaintCounts() map[string]int {
	out := make(map[string]int)
	d := s.Sim.D
	for i, r := range d.Regs {
		if s.RegT[i] != 0 {
			out[r.Module]++
		}
	}
	for mi, m := range d.Mems {
		for _, t := range s.MemT[mi] {
			if t != 0 {
				out[m.Module]++
			}
		}
	}
	return out
}

// LiveTaintedSinks returns the names of registers/memory entries that are
// tainted AND whose liveness annotation says the slot currently holds live
// data. Unannotated state is reported as live (the paper treats register
// arrays as potential sinks by default).
func (s *Shadow) LiveTaintedSinks() []string {
	var out []string
	d := s.Sim.D
	for i, r := range d.Regs {
		if s.RegT[i] == 0 {
			continue
		}
		if sig := s.regLive[i]; sig != rtl.Invalid {
			if s.Sim.Peek(sig)&1 == 0 {
				continue // dead: MSHR-style stale data, not exploitable
			}
		}
		out = append(out, r.Module+"."+r.Name)
	}
	for mi, m := range d.Mems {
		liveVec := ^uint64(0)
		if sig := s.memLive[mi]; sig != rtl.Invalid {
			liveVec = s.Sim.Peek(sig)
		}
		for e, t := range s.MemT[mi] {
			if t == 0 {
				continue
			}
			if e < 64 && liveVec>>uint(e)&1 == 0 {
				continue
			}
			out = append(out, fmt.Sprintf("%s.%s[%d]", m.Module, m.Name, e))
		}
	}
	sort.Strings(out)
	return out
}

// Pair couples two shadow instances for differential information flow
// tracking: the same design simulated with different secrets, with control
// taints gated on cross-instance signal differences.
type Pair struct {
	A, B *Shadow
}

// NewPair instruments the design twice in ModeDiff and couples the instances.
func NewPair(d *rtl.Design) (*Pair, error) {
	a, err := Instrument(d, ModeDiff)
	if err != nil {
		return nil, err
	}
	b, err := Instrument(d, ModeDiff)
	if err != nil {
		return nil, err
	}
	a.peer, b.peer = b, a
	return &Pair{A: a, B: b}, nil
}

// Step advances both instances one cycle: values first (so cross-instance
// diff signals are observable), then taints, then the clock edge.
func (p *Pair) Step() {
	p.A.Sim.Eval()
	p.B.Sim.Eval()
	p.A.evalTaints()
	p.B.evalTaints()
	p.A.clockTaints()
	p.B.clockTaints()
	p.A.Sim.Clock()
	p.B.Sim.Clock()
}
