// Package ift implements hardware dynamic information flow tracking over the
// rtl IR: the state-of-the-art CellIFT policies (the paper's Policies 1 and
// 2) and DejaVuzz's differential information flow tracking (diffIFT, the
// paper's Table 1), plus taint liveness annotations.
//
// The taint-propagation policy functions are exported so that the behavioural
// core model in internal/uarch propagates taints with exactly the same rules
// as the netlist-level shadow interpreter.
package ift

import "math/bits"

// AndTaint implements Policy 1 for the AND cell:
//
//	Ot = (A & Bt) | (B & At) | (At & Bt)
func AndTaint(a, b, at, bt uint64) uint64 {
	return (a & bt) | (b & at) | (at & bt)
}

// OrTaint is the dual of Policy 1 for the OR cell: a 1 on an untainted input
// hides the other input.
func OrTaint(a, b, at, bt uint64) uint64 {
	return (^a & bt) | (^b & at) | (at & bt)
}

// XorTaint: every tainted input bit flips the output bit.
func XorTaint(at, bt uint64) uint64 { return at | bt }

// NotTaint: inversion preserves taint.
func NotTaint(at uint64) uint64 { return at }

// AddTaint approximates addition: a tainted bit can influence its own and all
// higher result positions through carries. The mask fills upward from the
// lowest tainted bit, clipped to the word width by the caller.
func AddTaint(at, bt uint64) uint64 {
	t := at | bt
	if t == 0 {
		return 0
	}
	low := uint(bits.TrailingZeros64(t))
	return ^uint64(0) << low
}

// ShiftTaint shifts data taint along with the data. If the shift amount is
// itself tainted, the whole output is control-tainted when ctl is true
// (CellIFT: amount tainted; diffIFT: amounts differ across instances).
func ShiftTaint(dataTaint uint64, amount uint64, left bool, amtTainted, ctl bool, mask uint64) uint64 {
	var t uint64
	if left {
		t = dataTaint << (amount & 63)
	} else {
		t = dataTaint >> (amount & 63)
	}
	if amtTainted && ctl {
		t = mask
	}
	return t & mask
}

// MuxDataTaint is the data component of the MUX policy: S ? Bt : At.
func MuxDataTaint(sel uint64, at, bt uint64) uint64 {
	if sel&1 != 0 {
		return bt
	}
	return at
}

// MuxTaintCellIFT implements Policy 2:
//
//	Ot = (S ? Bt : At) | (St ? (A^B)|(At|Bt) : 0)
//
// The second term is the control taint responsible for over-tainting.
func MuxTaintCellIFT(sel uint64, selTainted bool, a, b, at, bt uint64) uint64 {
	t := MuxDataTaint(sel, at, bt)
	if selTainted {
		t |= (a ^ b) | at | bt
	}
	return t
}

// MuxTaintDiff implements Table 1's multiplexer rule:
//
//	Ot = (S ? Bt : At) | (St & Sdiff ? (A^B)|(At|Bt) : 0)
//
// Control taint propagates only when the selection signal is tainted AND the
// two DUT instances actually chose differently.
func MuxTaintDiff(sel uint64, selTainted, selDiff bool, a, b, at, bt uint64) uint64 {
	t := MuxDataTaint(sel, at, bt)
	if selTainted && selDiff {
		t |= (a ^ b) | at | bt
	}
	return t
}

// CmpTaintCellIFT is the comparison-cell policy in CellIFT: the 1-bit output
// is tainted whenever any input bit is tainted.
func CmpTaintCellIFT(at, bt uint64) uint64 {
	if at|bt != 0 {
		return 1
	}
	return 0
}

// CmpTaintDiff is Table 1's comparison rule: Ot = Odiff & |(At|Bt).
// The output is tainted only if the comparison outcome differs between the
// instances and an input was tainted.
func CmpTaintDiff(outDiff bool, at, bt uint64) uint64 {
	if outDiff && at|bt != 0 {
		return 1
	}
	return 0
}

// RegEnTaintCellIFT is the enabled-register policy without diff gating:
//
//	Qt' = (En ? Dt : Qt) | (Ent ? (D^Q)|(Dt|Qt) : 0)
func RegEnTaintCellIFT(en uint64, enTainted bool, d, q, dt, qt uint64) uint64 {
	var t uint64
	if en&1 != 0 {
		t = dt
	} else {
		t = qt
	}
	if enTainted {
		t |= (d ^ q) | dt | qt
	}
	return t
}

// RegEnTaintDiff is Table 1's enabled-register rule:
//
//	Qt' = (En ? Dt : Qt) | (Ent & Endiff ? (D^Q)|(Dt|Qt) : 0)
func RegEnTaintDiff(en uint64, enTainted, enDiff bool, d, q, dt, qt uint64) uint64 {
	var t uint64
	if en&1 != 0 {
		t = dt
	} else {
		t = qt
	}
	if enTainted && enDiff {
		t |= (d ^ q) | dt | qt
	}
	return t
}

// MemReadTaint is Table 1's memory-read rule:
//
//	Ot = memt[addr] | {WIDTH{addr_ctl}}
//
// where addr_ctl is addrTainted for CellIFT-style propagation or
// addrTainted && addrDiff for diffIFT.
func MemReadTaint(entryTaint uint64, addrCtl bool, mask uint64) uint64 {
	t := entryTaint
	if addrCtl {
		t = mask
	}
	return t & mask
}

// MemWriteTaint is Table 1's memory-write rule for the written entry:
//
//	memt'[addr] = (Wen ? Wdatat : memt[addr]) | {WIDTH{wen_ctl | (addr_ctl & Wen)}}
func MemWriteTaint(wen uint64, wdataTaint, entryTaint uint64, wenCtl, addrCtl bool, mask uint64) uint64 {
	var t uint64
	if wen&1 != 0 {
		t = wdataTaint
	} else {
		t = entryTaint
	}
	if wenCtl || (addrCtl && wen&1 != 0) {
		t = mask
	}
	return t & mask
}
