package ift

import (
	"testing"
	"testing/quick"

	"dejavuzz/internal/rtl"
)

// --- policy unit tests (Table 1 / Policies 1-2 verbatim) --------------------

func TestAndTaintPolicy(t *testing.T) {
	// Ot = (A & Bt) | (B & At) | (At & Bt)
	cases := []struct{ a, b, at, bt, want uint64 }{
		{0xff, 0xff, 0, 0, 0},          // no taint in, none out
		{0xff, 0x00, 0, 0x0f, 0x0f},    // A=1 exposes B's taint
		{0x00, 0xff, 0x0f, 0, 0x0f},    // B=1 exposes A's taint
		{0x00, 0x00, 0x0f, 0, 0},       // B=0 masks A's taint
		{0x00, 0x00, 0x0f, 0x0f, 0x0f}, // both tainted: tainted
	}
	for _, c := range cases {
		if got := AndTaint(c.a, c.b, c.at, c.bt); got != c.want {
			t.Errorf("AndTaint(%#x,%#x,%#x,%#x) = %#x, want %#x", c.a, c.b, c.at, c.bt, got, c.want)
		}
	}
}

// Property: AndTaint soundness — flipping any tainted input bit combination
// never changes an untainted output bit.
func TestAndTaintSoundness(t *testing.T) {
	f := func(a, b, at, bt, flipA, flipB uint64) bool {
		out := a & b
		taint := AndTaint(a, b, at, bt)
		a2 := a ^ (flipA & at)
		b2 := b ^ (flipB & bt)
		out2 := a2 & b2
		return (out^out2)&^taint == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: OrTaint soundness, same construction.
func TestOrTaintSoundness(t *testing.T) {
	f := func(a, b, at, bt, flipA, flipB uint64) bool {
		taint := OrTaint(a, b, at, bt)
		a2 := a ^ (flipA & at)
		b2 := b ^ (flipB & bt)
		return ((a|b)^(a2|b2)) & ^taint == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMuxPolicies(t *testing.T) {
	a, b := uint64(0xaa), uint64(0x55)
	// Untainted selection: pure data taint.
	if got := MuxTaintCellIFT(0, false, a, b, 0x0f, 0xf0); got != 0x0f {
		t.Errorf("mux sel=0: %#x", got)
	}
	if got := MuxTaintCellIFT(1, false, a, b, 0x0f, 0xf0); got != 0xf0 {
		t.Errorf("mux sel=1: %#x", got)
	}
	// CellIFT: tainted selection taints A^B even with untainted data.
	if got := MuxTaintCellIFT(0, true, a, b, 0, 0); got != a^b {
		t.Errorf("cellift control taint: %#x, want %#x", got, a^b)
	}
	// diffIFT: same situation suppressed when instances agree.
	if got := MuxTaintDiff(0, true, false, a, b, 0, 0); got != 0 {
		t.Errorf("diffIFT suppression failed: %#x", got)
	}
	// ...and restored when they differ.
	if got := MuxTaintDiff(0, true, true, a, b, 0, 0); got != a^b {
		t.Errorf("diffIFT divergent control taint: %#x", got)
	}
}

// Property: diffIFT mux taint is always a subset of CellIFT mux taint.
func TestMuxDiffSubsetOfCellIFT(t *testing.T) {
	f := func(sel, a, b, at, bt uint64, selT, diff bool) bool {
		d := MuxTaintDiff(sel, selT, diff, a, b, at, bt)
		c := MuxTaintCellIFT(sel, selT, a, b, at, bt)
		return d&^c == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmpPolicies(t *testing.T) {
	if CmpTaintCellIFT(0, 0) != 0 || CmpTaintCellIFT(1, 0) != 1 {
		t.Fatal("CellIFT comparison policy wrong")
	}
	if CmpTaintDiff(false, 1, 0) != 0 {
		t.Fatal("diffIFT comparison: identical outcomes must not taint")
	}
	if CmpTaintDiff(true, 1, 0) != 1 {
		t.Fatal("diffIFT comparison: divergent outcomes must taint")
	}
	if CmpTaintDiff(true, 0, 0) != 0 {
		t.Fatal("diffIFT comparison: untainted inputs must not taint")
	}
}

func TestRegEnPolicies(t *testing.T) {
	d, q := uint64(0xf0), uint64(0x0f)
	// Enabled: takes D's taint.
	if got := RegEnTaintDiff(1, false, false, d, q, 0x3, 0xc); got != 0x3 {
		t.Errorf("enabled reg taint: %#x", got)
	}
	// Disabled: holds Q's taint.
	if got := RegEnTaintDiff(0, false, false, d, q, 0x3, 0xc); got != 0xc {
		t.Errorf("disabled reg taint: %#x", got)
	}
	// Tainted enable, same across instances: suppressed under diffIFT...
	if got := RegEnTaintDiff(0, true, false, d, q, 0, 0); got != 0 {
		t.Errorf("diffIFT enable suppression: %#x", got)
	}
	// ...but not under CellIFT.
	if got := RegEnTaintCellIFT(0, true, d, q, 0, 0); got != d^q {
		t.Errorf("CellIFT enable taint: %#x, want %#x", got, d^q)
	}
}

func TestMemPolicies(t *testing.T) {
	if got := MemReadTaint(0xf, false, 0xff); got != 0xf {
		t.Errorf("mem read data taint: %#x", got)
	}
	if got := MemReadTaint(0, true, 0xff); got != 0xff {
		t.Errorf("mem read addr-ctl taint: %#x", got)
	}
	if got := MemWriteTaint(1, 0x3, 0xc, false, false, 0xff); got != 0x3 {
		t.Errorf("mem write data taint: %#x", got)
	}
	if got := MemWriteTaint(0, 0x3, 0xc, false, false, 0xff); got != 0xc {
		t.Errorf("mem write hold taint: %#x", got)
	}
	if got := MemWriteTaint(1, 0, 0, false, true, 0xff); got != 0xff {
		t.Errorf("mem write addr-ctl taint: %#x", got)
	}
}

func TestAddTaintCarrySpread(t *testing.T) {
	if AddTaint(0, 0) != 0 {
		t.Fatal("untainted add tainted")
	}
	if got := AddTaint(0x8, 0); got != uint64(0xfffffffffffffff8) {
		t.Fatalf("carry spread from bit 3: %#x", got)
	}
}

// --- shadow interpreter tests ------------------------------------------------

// buildFig2 reproduces the paper's Figure 2 RoB circuit.
func buildFig2() (*rtl.Design, rtl.SignalID, rtl.SignalID, rtl.SignalID, []*rtl.Reg) {
	d := rtl.NewDesign("fig2").InModule("rob")
	enqValid := d.Input("enq_valid", 1)
	enqUopc := d.Input("enq_uopc", 7)
	tail := d.Input("rob_tail_idx", 3)
	var regs []*rtl.Reg
	for e := 0; e < 8; e++ {
		u := d.AddReg("uopc", 7, 0)
		idx := d.Konst("idx", 3, uint64(e))
		match := d.Eq("match", tail, idx)
		upd := d.And("upd", match, enqValid)
		next := d.Mux("next", upd, u.Q, enqUopc)
		d.ConnectReg(u, next, rtl.Invalid)
		regs = append(regs, u)
	}
	return d, enqValid, enqUopc, tail, regs
}

// TestFig2OverTainting demonstrates the paper's §2.2 scenario: a tainted
// tail pointer explodes taint under CellIFT but not under diffIFT when both
// instances agree.
func TestFig2OverTainting(t *testing.T) {
	d, enqValid, enqUopc, tail, _ := buildFig2()

	cell := MustInstrument(d, ModeCellIFT)
	cell.Poke(enqValid, 1, 0)
	cell.Poke(enqUopc, 0x55, 0)
	cell.Poke(tail, 3, 0x7) // tainted tail index (post-rollback)
	cell.Step()
	if cell.TaintSum() == 0 {
		t.Fatal("CellIFT did not over-taint on tainted tail pointer")
	}

	pair, err := NewPair(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range []*Shadow{pair.A, pair.B} {
		sh.Poke(enqValid, 1, 0)
		sh.Poke(enqUopc, 0x55, 0)
		sh.Poke(tail, 3, 0x7) // same value, still tainted
	}
	pair.Step()
	if got := pair.A.TaintSum(); got != 0 {
		t.Fatalf("diffIFT tainted %d bits despite identical selections", got)
	}

	// Divergent tails: control taint must propagate.
	pair2, _ := NewPair(d)
	pair2.A.Poke(enqValid, 1, 0)
	pair2.A.Poke(enqUopc, 0x55, 0)
	pair2.A.Poke(tail, 3, 0x7)
	pair2.B.Poke(enqValid, 1, 0)
	pair2.B.Poke(enqUopc, 0x55, 0)
	pair2.B.Poke(tail, 5, 0x7)
	pair2.Step()
	if pair2.A.TaintSum() == 0 {
		t.Fatal("diffIFT missed a genuinely divergent selection")
	}
}

func TestDataTaintFlowsThroughMemory(t *testing.T) {
	d := rtl.NewDesign("m").InModule("top")
	raddr := d.Input("raddr", 3)
	waddr := d.Input("waddr", 3)
	wdata := d.Input("wdata", 8)
	wen := d.Input("wen", 1)
	m := d.AddMem("mem", 8, 8)
	rd := d.MemRead("rd", m, raddr)
	d.MemWrite(m, waddr, wdata, wen)
	out := d.AddReg("out", 8, 0)
	d.ConnectReg(out, rd, rtl.Invalid)

	sh := MustInstrument(d, ModeCellIFT)
	sh.Poke(waddr, 2, 0)
	sh.Poke(wdata, 0x7f, 0x0f) // partially tainted write
	sh.Poke(wen, 1, 0)
	sh.Step()
	sh.Poke(wen, 0, 0)
	sh.Poke(raddr, 2, 0)
	sh.Step()
	if got := sh.RegT[len(sh.RegT)-1]; got != 0x0f {
		t.Fatalf("taint through memory = %#x, want 0x0f", got)
	}
}

func TestLivenessAnnotation(t *testing.T) {
	// The paper's LFB example: lb's taint is live only while mshr_valid says
	// the slot holds current data.
	d := rtl.NewDesign("lfb").InModule("lsu")
	valid := d.Input("mshr_valid_vec", 2)
	waddr := d.Input("waddr", 1)
	wdata := d.Input("wdata", 8)
	wen := d.Input("wen", 1)
	lb := d.AddMem("lb", 8, 2)
	lb.Attrs[LivenessAttr] = "mshr_valid_vec"
	d.MemWrite(lb, waddr, wdata, wen)

	sh := MustInstrument(d, ModeCellIFT)
	sh.Poke(waddr, 0, 0)
	sh.Poke(wdata, 0xff, 0xff) // tainted fill
	sh.Poke(wen, 1, 0)
	sh.Poke(valid, 0b01, 0)
	sh.Step()

	sh.Poke(wen, 0, 0)
	sh.Poke(valid, 0b01, 0)
	sh.Sim.Eval()
	if got := sh.LiveTaintedSinks(); len(got) != 1 {
		t.Fatalf("live sinks with valid MSHR: %v", got)
	}
	// MSHR retires: data is stale, taint no longer exploitable.
	sh.Poke(valid, 0b00, 0)
	sh.Sim.Eval()
	if got := sh.LiveTaintedSinks(); len(got) != 0 {
		t.Fatalf("stale LFB data still reported live: %v", got)
	}
}

func TestUnknownLivenessSignalRejected(t *testing.T) {
	d := rtl.NewDesign("bad")
	r := d.AddReg("r", 8, 0)
	r.Attrs[LivenessAttr] = "missing_signal"
	if _, err := Instrument(d, ModeCellIFT); err == nil {
		t.Fatal("bogus liveness annotation accepted")
	}
}

func TestModuleTaintCounts(t *testing.T) {
	d := rtl.NewDesign("mods")
	in := d.Input("in", 8)
	d.InModule("a")
	ra := d.AddReg("ra", 8, 0)
	d.ConnectReg(ra, in, rtl.Invalid)
	d.InModule("b")
	rb := d.AddReg("rb", 8, 0)
	d.ConnectReg(rb, ra.Q, rtl.Invalid)

	sh := MustInstrument(d, ModeCellIFT)
	sh.Poke(in, 1, 0xff)
	sh.Step()
	counts := sh.ModuleTaintCounts()
	if counts["a"] != 1 || counts["b"] != 0 {
		t.Fatalf("after 1 cycle: %v", counts)
	}
	sh.Step()
	counts = sh.ModuleTaintCounts()
	if counts["b"] != 1 {
		t.Fatalf("after 2 cycles: %v", counts)
	}
}
