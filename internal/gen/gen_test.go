package gen

import (
	"fmt"
	"strings"
	"testing"

	"dejavuzz/internal/isasim"
	"dejavuzz/internal/swapmem"
	"dejavuzz/internal/uarch"
)

func TestBuildStimulusAllTriggers(t *testing.T) {
	g := New(1)
	for _, kind := range []uarch.CoreKind{uarch.KindBOOM, uarch.KindXiangShan} {
		for _, trig := range AllTriggerTypes() {
			seed := g.SeedFor(kind, trig, VariantDerived)
			st, err := g.BuildStimulus(seed)
			if err != nil {
				t.Fatalf("%v/%v: %v", kind, trig, err)
			}
			if st.Transient == nil {
				t.Fatalf("%v/%v: no transient packet", kind, trig)
			}
			if st.WindowLo <= st.TriggerPC || st.WindowHi <= st.WindowLo {
				t.Errorf("%v/%v: window [%#x,%#x) vs trigger %#x",
					kind, trig, st.WindowLo, st.WindowHi, st.TriggerPC)
			}
			if st.TriggerPC != swapmem.SwapBase+4*uint64(seed.TriggerOff) {
				t.Errorf("%v/%v: trigger pc %#x", kind, trig, st.TriggerPC)
			}
			// The image must fit the swappable region.
			if st.Transient.Image.Size() > swapmem.SwapSize {
				t.Errorf("%v/%v: image too large", kind, trig)
			}
		}
	}
}

func TestDerivedTrainingAligned(t *testing.T) {
	g := New(3)
	for _, trig := range []TriggerType{TrigBranchMispred, TrigJumpMispred, TrigReturnMispred} {
		seed := g.SeedFor(uarch.KindBOOM, trig, VariantDerived)
		st, err := g.BuildStimulus(seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.TriggerTrains) < 3 {
			t.Fatalf("%v: %d training packets, want targeted + decoys", trig, len(st.TriggerTrains))
		}
		// The targeted packet's training body starts at the trigger PC.
		p := st.TriggerTrains[0]
		if got, ok := p.Image.Labels["trainpc"]; !ok || got != st.TriggerPC {
			t.Errorf("%v: training instruction at %#x, trigger at %#x", trig, got, st.TriggerPC)
		}
		if p.PadInsts == 0 {
			t.Errorf("%v: no alignment padding", trig)
		}
		if p.TrainInsts == 0 {
			t.Errorf("%v: no training instructions counted", trig)
		}
	}
}

func TestRandomTrainingsAligned(t *testing.T) {
	g := New(5)
	seed := g.SeedFor(uarch.KindBOOM, TrigBranchMispred, VariantRandom)
	st, err := g.BuildStimulus(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.TriggerTrains) != 6 {
		t.Fatalf("%d random candidates, want 6", len(st.TriggerTrains))
	}
	for _, p := range st.TriggerTrains {
		if got := p.Image.Labels["trainpc"]; got != st.TriggerPC {
			t.Errorf("candidate %s misaligned: %#x != %#x", p.Name, got, st.TriggerPC)
		}
	}
}

func TestCompleteWindowAndSanitize(t *testing.T) {
	g := New(7)
	seed := g.SeedFor(uarch.KindBOOM, TrigPageFault, VariantDerived)
	seed.EncodeOps = 2
	st, err := g.BuildStimulus(seed)
	if err != nil {
		t.Fatal(err)
	}
	cst, err := g.CompleteWindow(st)
	if err != nil {
		t.Fatal(err)
	}
	if !cst.Completed || len(cst.EncodeLines) == 0 {
		t.Fatal("window not completed")
	}
	if len(cst.WindowTrains) == 0 {
		t.Fatal("no window training derived")
	}
	// Same trigger placement as phase 1.
	if cst.TriggerPC != st.TriggerPC || cst.WindowLo != st.WindowLo {
		t.Fatal("completion moved the trigger/window")
	}

	sst, err := g.Sanitized(cst)
	if err != nil {
		t.Fatal(err)
	}
	// Sanitised image has the same size but nops where the encode block was.
	if len(sst.Transient.Image.Words) != len(cst.Transient.Image.Words) {
		t.Fatalf("sanitised image size %d != %d",
			len(sst.Transient.Image.Words), len(cst.Transient.Image.Words))
	}
	diff := 0
	for i := range sst.Transient.Image.Words {
		if sst.Transient.Image.Words[i] != cst.Transient.Image.Words[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("sanitisation changed nothing")
	}
}

func TestMaskedAccessBlock(t *testing.T) {
	seed := Seed{Trigger: TrigAccessFault, MaskHigh: true}
	block := strings.Join(accessBlock(seed), "\n")
	if !strings.Contains(block, "0x8000000000002000") {
		t.Fatalf("masked access block missing illegal address: %s", block)
	}
	seed.MaskHigh = false
	block = strings.Join(accessBlock(seed), "\n")
	if strings.Contains(block, "0x8000000000002000") {
		t.Fatal("unmasked access block uses illegal address")
	}
}

func TestScheduleComposition(t *testing.T) {
	g := New(9)
	seed := g.SeedFor(uarch.KindBOOM, TrigBranchMispred, VariantDerived)
	seed.SecretFaults = true
	st, _ := g.BuildStimulus(seed)
	cst, _ := g.CompleteWindow(st)

	keep := make([]bool, len(cst.TriggerTrains))
	keep[0] = true // only the targeted packet
	sched := cst.BuildSchedule(keep)

	// window trains, one trigger train, transient.
	want := len(cst.WindowTrains) + 1 + 1
	if len(sched.Steps) != want {
		t.Fatalf("schedule has %d steps, want %d", len(sched.Steps), want)
	}
	last := sched.Steps[len(sched.Steps)-1]
	if last.Packet.Kind != swapmem.PacketTransient {
		t.Fatal("transient packet not last")
	}
	if len(last.PrePerm) == 0 {
		t.Fatal("SecretFaults seed lost its permission update")
	}
	// Window trains come first (before trigger training).
	if sched.Steps[0].Packet.Kind != swapmem.PacketWindowTrain {
		t.Fatal("window training not scheduled first")
	}
}

// TestMutateAlwaysChanges is the regression test for the wasted-iteration
// bug: re-rolling a field with rng.Intn used to be able to return the input
// seed unchanged. Every structured mutation operator must now change its
// target field, so no feedback iteration ever replays its own input.
func TestMutateAlwaysChanges(t *testing.T) {
	g := New(11)
	for trial := 0; trial < 64; trial++ {
		s := g.RandomSeed(uarch.KindXiangShan)
		s.Variant = VariantRandom
		for i := 0; i < 64; i++ {
			m := g.Mutate(s)
			if m.Core != s.Core {
				t.Fatal("mutation changed the core")
			}
			if m.Variant != s.Variant {
				t.Fatal("mutation changed the variant")
			}
			if m == s {
				t.Fatalf("mutation returned the input seed unchanged: %+v", s)
			}
		}
	}
	// Families with a dedicated encode block never read Seed.Encoder, so a
	// mutant differing only in Encoder would rebuild a byte-identical
	// stimulus — the operator must redirect for them.
	s, err := g.SeedScenario(uarch.KindBOOM, "cache-occupancy")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		m := g.Mutate(s)
		e := m
		e.Encoder = s.Encoder
		if e == s {
			t.Fatalf("own-encoder family mutated only Encoder (a stimulus no-op): %+v -> %+v", s, m)
		}
	}
	// Dead flags are excluded per family: StoreFlavor for families whose
	// layout never reads it, MaskHigh under a dedicated access block.
	s, err = g.SeedScenario(uarch.KindBOOM, "branch-mispredict")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		m := g.Mutate(s)
		e := m
		e.StoreFlavor = s.StoreFlavor
		if e == s {
			t.Fatalf("branch family mutated only StoreFlavor (a stimulus no-op)")
		}
	}
	s, err = g.SeedScenario(uarch.KindBOOM, "mem-disambig")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		m := g.Mutate(s)
		e := m
		e.MaskHigh, e.StoreFlavor = s.MaskHigh, s.StoreFlavor
		if e == s {
			t.Fatalf("own-access family mutated only MaskHigh/StoreFlavor (a stimulus no-op)")
		}
	}
}

// TestBuildRejectsMalformedSeeds: hand-crafted seeds (repro JSON) with an
// out-of-range trigger or unknown family must error, never panic.
func TestBuildRejectsMalformedSeeds(t *testing.T) {
	g := New(1)
	for _, s := range []Seed{
		{Core: uarch.KindBOOM, Trigger: 99, TriggerOff: 70, WindowLen: 5, EncodeOps: 1},
		{Core: uarch.KindBOOM, Trigger: -1, TriggerOff: 70, WindowLen: 5, EncodeOps: 1},
		{Core: uarch.KindBOOM, Scenario: "no-such-family", TriggerOff: 70, WindowLen: 5, EncodeOps: 1},
	} {
		if _, err := g.BuildStimulus(s); err == nil {
			t.Errorf("malformed seed %+v built a stimulus", s)
		}
		if name := ScenarioName(s); name == "" {
			t.Errorf("malformed seed %+v has empty display name", s)
		}
	}
}

// TestMutateRespectsScenarioFilter pins the swap-scenario operator to the
// generator's enabled family set (the campaign's -scenarios filter).
func TestMutateRespectsScenarioFilter(t *testing.T) {
	g := New(13)
	enabled := []string{"branch-mispredict", "cache-occupancy"}
	g.SetScenarios(enabled)
	s, err := g.SeedScenario(uarch.KindBOOM, "branch-mispredict")
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{}
	for _, n := range enabled {
		allowed[n] = true
	}
	for i := 0; i < 256; i++ {
		s = g.Mutate(s)
		if !allowed[s.Scenario] {
			t.Fatalf("mutation left the enabled scenario set: %q", s.Scenario)
		}
	}
	// A single-family filter must never attempt (and cannot perform) a swap.
	g.SetScenarios([]string{"page-fault"})
	s, err = g.SeedScenario(uarch.KindBOOM, "page-fault")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		s = g.Mutate(s)
		if s.Scenario != "page-fault" {
			t.Fatalf("single-family mutation swapped scenario to %q", s.Scenario)
		}
	}
}

// TestShardStreams checks the splittable RNG contract: shard streams are
// stable across calls and decorrelated across shard ids and campaign seeds.
func TestShardStreams(t *testing.T) {
	if ShardSeed(1, 0) != ShardSeed(1, 0) {
		t.Fatal("shard seed derivation is not stable")
	}
	seen := map[int64]string{}
	for campaign := int64(1); campaign <= 4; campaign++ {
		for shard := 0; shard < 16; shard++ {
			s := ShardSeed(campaign, shard)
			if prev, dup := seen[s]; dup {
				t.Fatalf("shard seed collision: (c=%d,s=%d) and %s", campaign, shard, prev)
			}
			seen[s] = fmt.Sprintf("(c=%d,s=%d)", campaign, shard)
		}
	}
	// Generators from different shards of one campaign must diverge
	// immediately in practice (not a hard RNG guarantee, but a regression
	// canary for the mixing function).
	a := NewEpochShard(7, 0, 0).RandomSeed(uarch.KindBOOM)
	b := NewEpochShard(7, 1, 0).RandomSeed(uarch.KindBOOM)
	if a == b {
		t.Error("shards 0 and 1 drew identical first seeds")
	}
	// And the same shard must reproduce its stream exactly.
	c := NewEpochShard(7, 0, 0).RandomSeed(uarch.KindBOOM)
	if a != c {
		t.Error("shard 0 stream is not reproducible")
	}
}

// TestArchPathTerminates verifies on the ISA golden model that every
// generated transient packet's architectural path ends in a trap (ecall or
// the intended trigger exception) rather than running away.
func TestArchPathTerminates(t *testing.T) {
	g := New(13)
	for _, trig := range AllTriggerTypes() {
		seed := g.SeedFor(uarch.KindBOOM, trig, VariantDerived)
		st, err := g.BuildStimulus(seed)
		if err != nil {
			t.Fatal(err)
		}
		cst, err := g.CompleteWindow(st)
		if err != nil {
			t.Fatal(err)
		}
		space := swapmem.NewSpace([]byte{9, 9, 9, 9, 9, 9, 9, 9})
		img := cst.Transient.Image
		space.WriteRaw(img.Base, img.Bytes())
		sim := isasim.New(space, cst.Transient.Entry)
		sim.Run(10000)
		if sim.LastTrap == nil {
			t.Errorf("%v: architectural path never trapped (pc=%#x)", trig, sim.PC)
		}
	}
}
