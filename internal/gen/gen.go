// Package gen is DejaVuzz's stimulus sampler and mutator: a deterministic
// front-end over the scenario registry (internal/scenario). The registry
// owns what a transient-window workload *is* — entry setup, trigger/window
// layout, secret access, encode gadget, derived training, capability flags —
// while this package owns how campaigns draw from it:
//
//   - seed sampling, uniform (RandomSeed) or through a coverage-adaptive
//     scenario scheduler (ScheduledSeed),
//   - structured mutation operators over the seed space — swap scenario,
//     swap encoder, perturb window, splice training — each guaranteed to
//     change the seed (no wasted re-roll iterations),
//   - deterministic per-shard/per-epoch RNG stream derivation, and
//   - stimulus materialisation: assembling a seed's scenario into swapMem
//     packets (transient, trigger-training, window-training), including the
//     DejaVuzz* random-training ablation and Phase 3's encode sanitisation.
package gen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"dejavuzz/internal/isa"
	"dejavuzz/internal/scenario"
	"dejavuzz/internal/swapmem"
	"dejavuzz/internal/uarch"
)

// TriggerType re-exports the scenario package's legacy trigger taxonomy;
// see the migration notes in the README. New code should address scenario
// families by name.
type TriggerType = scenario.TriggerType

// The legacy trigger classes, re-exported.
const (
	TrigAccessFault   = scenario.TrigAccessFault
	TrigPageFault     = scenario.TrigPageFault
	TrigMisalign      = scenario.TrigMisalign
	TrigIllegal       = scenario.TrigIllegal
	TrigMemDisambig   = scenario.TrigMemDisambig
	TrigBranchMispred = scenario.TrigBranchMispred
	TrigJumpMispred   = scenario.TrigJumpMispred
	TrigReturnMispred = scenario.TrigReturnMispred

	NumTriggerTypes = scenario.NumTriggerTypes
)

// AllTriggerTypes lists every legacy trigger class.
func AllTriggerTypes() []TriggerType { return scenario.AllTriggerTypes() }

// Variant selects the training-generation strategy.
type Variant int

const (
	// VariantDerived is DejaVuzz proper: training derived from the transient
	// packet's execution information.
	VariantDerived Variant = iota
	// VariantRandom is the DejaVuzz* ablation: swapMem isolation but random,
	// underived training instructions.
	VariantRandom
)

func (v Variant) String() string {
	if v == VariantRandom {
		return "DejaVuzz*"
	}
	return "DejaVuzz"
}

// Seed holds the configuration entropy for one stimulus (the corpus unit).
type Seed struct {
	Core uarch.CoreKind
	// Scenario names the registered scenario family. Empty selects the
	// canonical family for Trigger (pre-scenario seeds keep replaying).
	Scenario string `json:",omitempty"`
	// Trigger is the scenario's legacy trigger class; kept in the seed so
	// findings, triage and pre-scenario consumers keep a stable taxonomy.
	Trigger TriggerType
	Variant Variant
	Rand    int64

	TriggerOff   int  // pad-nop count before the trigger instruction
	WindowLen    int  // dummy-window length in instructions
	EncodeOps    int  // number of encode gadgets in Phase 2
	Encoder      int  `json:",omitempty"` // 0 = draw per op, k>0 = pin gadget k-1
	MaskHigh     bool // mask high address bits in the secret access (MDS probing)
	SecretFaults bool // Meltdown-type: secret access itself faults
	StoreFlavor  bool // use a store for fault-type triggers
}

// params projects the seed's knobs into the scenario build parameters.
func (s Seed) params() scenario.Params {
	return scenario.Params{
		TriggerOff:   s.TriggerOff,
		WindowLen:    s.WindowLen,
		EncodeOps:    s.EncodeOps,
		Encoder:      s.Encoder,
		MaskHigh:     s.MaskHigh,
		SecretFaults: s.SecretFaults,
		StoreFlavor:  s.StoreFlavor,
	}
}

// FamilyOf resolves the seed's scenario family: its named family, or the
// canonical family of its legacy trigger class when unnamed. Hand-crafted
// seeds (repro JSON) can carry anything, so both paths error instead of
// panicking.
func FamilyOf(s Seed) (scenario.Scenario, error) {
	if s.Scenario == "" {
		if s.Trigger < 0 || s.Trigger >= NumTriggerTypes {
			return nil, fmt.Errorf("gen: seed trigger %v has no scenario family", s.Trigger)
		}
		return scenario.ByTrigger(s.Trigger), nil
	}
	return scenario.Lookup(s.Scenario)
}

// ScenarioName returns the seed's effective family name (canonical when the
// seed predates named scenarios; the raw trigger rendering for seeds whose
// trigger class does not exist).
func ScenarioName(s Seed) string {
	if s.Scenario != "" {
		return s.Scenario
	}
	if s.Trigger < 0 || s.Trigger >= NumTriggerTypes {
		return s.Trigger.String()
	}
	return scenario.ByTrigger(s.Trigger).Name()
}

// Generator produces seeds and stimuli deterministically from its RNG.
// A Generator also owns the scratch buffers stimulus construction
// materialises assembly into, so one long-lived Generator per shard makes
// stimulus building allocation-light; those buffers make a Generator
// single-goroutine (campaign shards each own one).
type Generator struct {
	rng *rand.Rand

	// scenarios is the enabled family set mutation's swap-scenario operator
	// draws from (sorted; defaults to every registered family).
	scenarios []string
	// lines/setup/body are the assembly-materialisation scratch buffers
	// reused across packet builds (valid only within one build call);
	// trainSpecs is the recycled training-spec slice the family hooks
	// append into.
	lines      []string
	setup      []string
	body       []string
	trainSpecs []scenario.Training
	// brng is the per-stimulus derivation RNG, reseeded from Seed.Rand for
	// every build (so builds stay pure functions of the seed).
	brng *rand.Rand
	// trainCache memoises derived training packets, which are pure
	// functions of (packet name, body, trigger offset) — a campaign draws
	// them from a small closed set, so most rebuilds are cache hits.
	// Cached packets are shared read-only across stimuli, exactly like a
	// rebuilt packet is shared between a stimulus and its completed copy.
	trainCache map[string]*swapmem.Packet
}

// New returns a generator with the given RNG seed.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Reseed returns the generator's RNG to the state New(seed) produces,
// keeping the generator's scratch buffers and scenario set. Equivalent to
// replacing the generator with a fresh one — without the allocation.
func (g *Generator) Reseed(seed int64) {
	g.rng.Seed(seed)
}

// SetScenarios restricts the family set the swap-scenario mutation operator
// draws from (the campaign's -scenarios filter). Names are copied and
// sorted; an empty set restores the default (every registered family).
func (g *Generator) SetScenarios(names []string) {
	if len(names) == 0 {
		g.scenarios = nil
		return
	}
	g.scenarios = append(g.scenarios[:0], names...)
	sort.Strings(g.scenarios)
}

// enabledScenarios returns the mutation family set.
func (g *Generator) enabledScenarios() []string {
	if g.scenarios != nil {
		return g.scenarios
	}
	return scenario.Names()
}

// buildRand returns the generator's reusable derivation RNG seeded to the
// state rand.New(rand.NewSource(seed)) produces.
func (g *Generator) buildRand(seed int64) *rand.Rand {
	if g.brng == nil {
		g.brng = rand.New(rand.NewSource(seed))
		return g.brng
	}
	g.brng.Seed(seed)
	return g.brng
}

// splitMix64 is the SplitMix64 finaliser, used to derive statistically
// independent per-shard streams from one campaign seed.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardSeed derives the RNG seed for one shard of a campaign: shards of the
// same campaign get decorrelated streams, and the mapping depends only on
// (campaign seed, shard id) — never on worker count or scheduling.
func ShardSeed(campaignSeed int64, shard int) int64 {
	return int64(splitMix64(uint64(campaignSeed)*0x9e3779b97f4a7c15 + uint64(shard) + 1))
}

// EpochShardSeed derives the RNG seed for one (shard, epoch) cell of a
// campaign. Seeding shard generators per epoch (rather than once per
// campaign) makes a merge barrier a complete cut point: the stimulus stream
// after barrier k depends only on (campaign seed, shard id, epoch index) and
// the barrier-merged state, so a campaign checkpointed at a barrier resumes
// byte-identically without serialising RNG internals.
func EpochShardSeed(campaignSeed int64, shard, epoch int) int64 {
	return int64(splitMix64(uint64(ShardSeed(campaignSeed, shard)) + splitMix64(uint64(epoch)+0x51ed)))
}

// NewEpochShard returns the deterministic generator for one shard epoch.
func NewEpochShard(campaignSeed int64, shard, epoch int) *Generator {
	return New(EpochShardSeed(campaignSeed, shard, epoch))
}

// drawKnobs fills the seed's non-identity entropy from the generator's RNG.
func (g *Generator) drawKnobs(s *Seed) {
	s.Rand = g.rng.Int63()
	s.TriggerOff = 60 + g.rng.Intn(50)
	s.WindowLen = 4 + g.rng.Intn(6)
	s.EncodeOps = 1 + g.rng.Intn(3)
	s.Encoder = g.rng.Intn(scenario.NumEncoders() + 1)
	s.MaskHigh = g.rng.Intn(4) == 0
	s.SecretFaults = g.rng.Intn(2) == 0
	s.StoreFlavor = g.rng.Intn(4) == 0
}

// RandomSeed draws a fresh seed for a core, uniform over the canonical
// (legacy) trigger classes — the pre-scheduler sampling behaviour.
func (g *Generator) RandomSeed(core uarch.CoreKind) Seed {
	t := TriggerType(g.rng.Intn(int(NumTriggerTypes)))
	s := Seed{
		Core:     core,
		Scenario: scenario.ByTrigger(t).Name(),
		Trigger:  t,
		Variant:  VariantDerived,
	}
	g.drawKnobs(&s)
	return s
}

// SeedScenario draws a fresh seed for a named scenario family.
func (g *Generator) SeedScenario(core uarch.CoreKind, fam string) (Seed, error) {
	sc, err := scenario.Lookup(fam)
	if err != nil {
		return Seed{}, err
	}
	s := Seed{
		Core:     core,
		Scenario: sc.Name(),
		Trigger:  sc.Legacy(),
		Variant:  VariantDerived,
	}
	g.drawKnobs(&s)
	return s, nil
}

// ScheduledSeed draws a fresh seed with the family chosen by the campaign's
// coverage-adaptive scheduler, consuming the generator's own RNG stream so
// shard determinism is preserved.
func (g *Generator) ScheduledSeed(core uarch.CoreKind, sch *scenario.Scheduler) Seed {
	s, err := g.SeedScenario(core, sch.Pick(g.rng))
	if err != nil {
		// Scheduler families are validated at campaign construction.
		panic(fmt.Sprintf("gen: scheduled seed: %v", err))
	}
	return s
}

// SeedFor draws a seed with a fixed legacy trigger type (its canonical
// scenario family).
func (g *Generator) SeedFor(core uarch.CoreKind, t TriggerType, v Variant) Seed {
	s, _ := g.SeedScenario(core, scenario.ByTrigger(t).Name())
	s.Variant = v
	return s
}

// Mutation operator count (see Mutate).
const numMutationOps = 7

// Mutate applies one structured mutation operator to a seed — swap scenario,
// swap encoder, perturb window (length, alignment, gadget count, access
// flags) or splice training — and guarantees the result differs from the
// input: every operator re-rolls its target field onto a different value,
// so no feedback iteration is ever wasted replaying the seed it started
// from. Operators that would not change the built stimulus for the seed's
// family (swapping scenarios in a single-family campaign, swapping the
// shared-table encoder under a family with a dedicated encode block) are
// redirected to a window perturbation instead of drawing a no-op.
//
// Core and Variant are always preserved; the derivation entropy (Rand) is
// preserved by the structural operators so their effect is isolated, and
// re-rolled only by the splice-training operator.
func (g *Generator) Mutate(s Seed) Seed {
	n := s
	op := g.rng.Intn(numMutationOps)
	fams := g.enabledScenarios()
	if op == 0 && len(fams) < 2 {
		op = 2 // single-family campaigns cannot swap scenarios
	}
	if op == 1 {
		if fam, err := FamilyOf(s); err != nil || fam.Caps().OwnEncoder {
			op = 2 // the family never reads Params.Encoder
		}
	}
	switch op {
	case 0: // swap scenario: a different family from the enabled set
		cur := 0
		name := ScenarioName(s)
		for i, f := range fams {
			if f == name {
				cur = i
				break
			}
		}
		next := fams[(cur+1+g.rng.Intn(len(fams)-1))%len(fams)]
		sc, err := scenario.Lookup(next)
		if err != nil {
			panic(fmt.Sprintf("gen: mutate: %v", err))
		}
		n.Scenario = sc.Name()
		n.Trigger = sc.Legacy()
	case 1: // swap encoder: a different gadget selector
		span := scenario.NumEncoders() + 1
		n.Encoder = (s.Encoder + 1 + g.rng.Intn(span-1)) % span
	case 2: // perturb window length within [4, 12)
		n.WindowLen = 4 + (s.WindowLen-4+1+g.rng.Intn(7))%8
	case 3: // perturb trigger alignment within [60, 110)
		n.TriggerOff = 60 + (s.TriggerOff-60+1+g.rng.Intn(49))%50
	case 4: // perturb encode-gadget count within [1, 4] (mutation reaches
		// one more stacked gadget than a fresh draw, as before the registry)
		n.EncodeOps = 1 + (s.EncodeOps-1+1+g.rng.Intn(3))%4
	case 5: // flip one access flag the family actually reads: SecretFaults
		// is always live (it gates the schedule's permission update);
		// MaskHigh only matters under the shared access block; StoreFlavor
		// only for store-flavoured trigger/fault layouts. Dead flags are
		// excluded so the flip is never a stimulus no-op.
		var caps scenario.Capabilities
		if fam, err := FamilyOf(s); err == nil {
			caps = fam.Caps()
		} else {
			caps.OwnAccess = true // unknown family: only SecretFaults is safe
		}
		candidates := 1
		if !caps.OwnAccess {
			candidates++
		}
		if caps.StoreFlavored {
			candidates++
		}
		pick := g.rng.Intn(candidates)
		switch {
		case pick == 0:
			n.SecretFaults = !n.SecretFaults
		case pick == 1 && !caps.OwnAccess:
			n.MaskHigh = !n.MaskHigh
		default:
			n.StoreFlavor = !n.StoreFlavor
		}
	case 6: // splice training: fresh derivation entropy, structure kept
		for n.Rand == s.Rand {
			n.Rand = g.rng.Int63()
		}
	}
	return n
}

// Stimulus is a fully constructed swapMem test case.
type Stimulus struct {
	Seed Seed

	Transient     *swapmem.Packet
	TriggerTrains []*swapmem.Packet
	WindowTrains  []*swapmem.Packet

	TriggerPC uint64
	WindowLo  uint64
	WindowHi  uint64

	// EncodeLines is the secret-encoding block (for sanitisation); empty in
	// Phase 1 (dummy window).
	EncodeLines []string
	// Completed marks Phase 2 window completion.
	Completed bool
}

// triggerAddr computes the trigger PC for a seed.
func triggerAddr(s Seed) uint64 {
	return swapmem.SwapBase + 4*uint64(s.TriggerOff)
}

// BuildStimulus constructs the Phase-1 stimulus: transient packet with a
// dummy (nop) window plus derived or random trigger-training packets.
func (g *Generator) BuildStimulus(seed Seed) (*Stimulus, error) {
	st := &Stimulus{}
	if err := g.BuildStimulusInto(st, seed); err != nil {
		return nil, err
	}
	return st, nil
}

// BuildStimulusInto is BuildStimulus materialised into a caller-provided
// Stimulus, reusing its packet-slice capacity. The campaign engine hands
// each shard pipeline a small set of Stimulus buffers that live for the
// whole campaign; the result is only valid until the next build into the
// same buffer.
func (g *Generator) BuildStimulusInto(st *Stimulus, seed Seed) error {
	fam, err := FamilyOf(seed)
	if err != nil {
		return err // FamilyOf errors carry their own prefix
	}
	rng := g.buildRand(seed.Rand)
	trains := st.TriggerTrains[:0]
	*st = Stimulus{Seed: seed, TriggerPC: triggerAddr(seed), Transient: st.Transient}

	body := dummyWindow(seed.WindowLen)
	if err := g.buildTransient(st, fam, body); err != nil {
		return err
	}
	if seed.Variant == VariantRandom {
		st.TriggerTrains = g.randomTrainings(trains, st, rng, 6)
	} else {
		st.TriggerTrains = g.deriveTrainings(trains, st, fam, rng)
	}
	return nil
}

// nopLines backs dummyWindow: callers only ever read the slice, so one
// shared table serves every build.
var nopLines = func() []string {
	out := make([]string, 128)
	for i := range out {
		out[i] = "nop"
	}
	return out
}()

// dummyWindow is Phase 1's placeholder payload (read-only).
func dummyWindow(n int) []string {
	if n <= len(nopLines) {
		return nopLines[:n]
	}
	out := make([]string, n)
	for i := range out {
		out[i] = "nop"
	}
	return out
}

// buildTransient assembles the transient packet for the seed's scenario
// family with the given window body, filling in TriggerPC/WindowLo/WindowHi.
// The assembly lines are materialised into the generator's scratch buffer
// and the packet struct is reused when the stimulus already carries one.
func (g *Generator) buildTransient(st *Stimulus, fam scenario.Scenario, windowBody []string) error {
	s := st.Seed
	p := s.params()
	T := st.TriggerPC
	lines := g.lines[:0]
	defer func() { g.lines = lines }()
	train := 0 // transient packets count no training instructions

	// --- entry setup (materialised into the setup scratch) ---
	setup := fam.Setup(g.setup[:0], p, T)
	g.setup = setup
	lines = append(lines, setup...)

	// --- padding, then jump to the trigger ---
	setupWords, err := countWords(setup)
	if err != nil {
		return err
	}
	lines = append(lines, "j trig")
	pad := s.TriggerOff - setupWords - 1
	if pad < 0 {
		return fmt.Errorf("gen: trigger offset %d too small for %d setup words", s.TriggerOff, setupWords)
	}
	lines = append(lines, dummyWindow(pad)...)

	// --- trigger and window layout (appended straight into the scratch) ---
	lines = append(lines, "trig:")
	var winOff, winLen int
	lines, winOff, winLen = fam.Window(lines, p, windowBody)
	st.WindowLo = T + 4*uint64(winOff)
	st.WindowHi = st.WindowLo + 4*uint64(winLen)

	img, err := isa.Asm(swapmem.SwapBase, strings.Join(lines, "\n"))
	if err != nil {
		return fmt.Errorf("gen: transient packet: %w", err)
	}
	if st.Transient == nil {
		st.Transient = &swapmem.Packet{}
	}
	*st.Transient = swapmem.Packet{
		Name:       "transient",
		Kind:       swapmem.PacketTransient,
		Image:      img,
		Entry:      swapmem.SwapBase,
		TrainInsts: train,
		PadInsts:   pad,
	}
	return nil
}

// countWords assembles a fragment to measure its instruction count.
func countWords(lines []string) (int, error) {
	if len(lines) == 0 {
		return 0, nil
	}
	p, err := isa.Asm(swapmem.SwapBase, strings.Join(lines, "\n"))
	if err != nil {
		return 0, err
	}
	return len(p.Words), nil
}

// cachedTrainingPacket is trainingPacket behind the generator's memo table.
// A derived training packet is a pure function of (name, setup, body,
// trigger offset), and derived trainings draw from a small closed set of
// bodies, so campaigns hit the cache on almost every rebuild. Random
// (DejaVuzz*) trainings bypass this — their bodies are rng-unique.
func (g *Generator) cachedTrainingPacket(name string, st *Stimulus, setup, body []string) (*swapmem.Packet, error) {
	var key strings.Builder
	key.Grow(64)
	key.WriteString(name)
	fmt.Fprintf(&key, "|%d", st.Seed.TriggerOff)
	for _, l := range setup {
		key.WriteByte('|')
		key.WriteString(l)
	}
	key.WriteByte('#')
	for _, l := range body {
		key.WriteByte('|')
		key.WriteString(l)
	}
	k := key.String()
	if p, ok := g.trainCache[k]; ok {
		return p, nil
	}
	p, err := g.trainingPacket(name, st, setup, body)
	if err == nil {
		if g.trainCache == nil {
			g.trainCache = make(map[string]*swapmem.Packet)
		}
		g.trainCache[k] = p
	}
	return p, err
}

// trainingPacket assembles a trigger-training packet: setup, pad nops so the
// training instruction aligns with the trigger PC, the training body, and a
// terminator. Lines are materialised into the generator's scratch buffer.
func (g *Generator) trainingPacket(name string, st *Stimulus, setup, body []string) (*swapmem.Packet, error) {
	setupWords, err := countWords(setup)
	if err != nil {
		return nil, err
	}
	pad := st.Seed.TriggerOff - setupWords
	if pad < 0 {
		pad = 0
	}
	lines := g.lines[:0]
	defer func() { g.lines = lines }()
	lines = append(lines, setup...)
	for i := 0; i < pad; i++ {
		lines = append(lines, "nop")
	}
	lines = append(lines, "trainpc:")
	lines = append(lines, body...)
	img, err := isa.Asm(swapmem.SwapBase, strings.Join(lines, "\n"))
	if err != nil {
		return nil, fmt.Errorf("gen: training packet %s: %w", name, err)
	}
	return &swapmem.Packet{
		Name:       name,
		Kind:       swapmem.PacketTriggerTrain,
		Image:      img,
		Entry:      swapmem.SwapBase,
		TrainInsts: len(img.Words) - pad,
		PadInsts:   pad,
	}, nil
}

// deriveTrainings implements the training derivation strategy: the scenario
// family's targeted training — whose instruction aligns with the trigger PC
// and whose control flow matches the transient window — plus decoy
// candidates that the training-reduction step is expected to discard.
// Packets are appended to dst (typically a recycled slice).
func (g *Generator) deriveTrainings(dst []*swapmem.Packet, st *Stimulus, fam scenario.Scenario, rng *rand.Rand) []*swapmem.Packet {
	out := dst
	add := func(p *swapmem.Packet, err error) {
		if err != nil {
			panic(fmt.Sprintf("gen: derived training: %v", err))
		}
		out = append(out, p)
	}
	specs := fam.Trainings(g.trainSpecs[:0], st.Seed.params(), st.WindowLo)
	g.trainSpecs = specs
	for _, tr := range specs {
		add(g.cachedTrainingPacket(tr.Name, st, tr.Setup, tr.Body))
	}

	// Decoy candidates: plausible but untargeted; training reduction should
	// eliminate them (and, for exception-type windows, everything).
	decoys := []string{"add t0, t1, s2", "sub t1, t0, s0", "mul t2, t0, t1", "andi t3, t0, 0xf"}
	rng.Shuffle(len(decoys), func(i, j int) { decoys[i], decoys[j] = decoys[j], decoys[i] })
	for i := 0; i < 2; i++ {
		add(g.cachedTrainingPacket(fmt.Sprintf("decoy-%d", i), st, nil,
			[]string{decoys[i], "ecall"}))
	}
	return out
}

// randomTrainings implements DejaVuzz*: random instructions aligned to the
// trigger PC without any derivation from transient execution information.
// Packets are appended to dst (typically a recycled slice).
func (g *Generator) randomTrainings(dst []*swapmem.Packet, st *Stimulus, rng *rand.Rand, n int) []*swapmem.Packet {
	out := dst
	for i := 0; i < n; i++ {
		var setup, body []string
		switch rng.Intn(8) {
		case 0: // random conditional branch, random small offset
			off := 8 + 4*rng.Intn(14)
			taken := rng.Intn(2) == 0
			op := "bne"
			if taken {
				op = "beq"
			}
			body = []string{
				fmt.Sprintf("%s zero, zero, %d", op, off),
				"ecall",
			}
			// Landing pads so a taken branch terminates cleanly.
			for w := 8; w <= off; w += 4 {
				if w == off {
					body = append(body, "ecall")
				} else {
					body = append(body, "nop")
				}
			}
		case 1: // random indirect jump to a random aligned address past the body
			tgt := triggerAddr(st.Seed) + 8 + uint64(4*rng.Intn(64))
			setup = []string{fmt.Sprintf("li a2, %#x", tgt)}
			body = []string{"jalr x0, 0(a2)", "ecall"}
		case 2: // random call (pushes a random return address)
			body = []string{fmt.Sprintf("call %#x", uint64(swapmem.SwapDoneAddr))}
		case 3:
			body = []string{fmt.Sprintf("ld t0, %d(t1)", 8*rng.Intn(16)), "ecall"}
			setup = []string{fmt.Sprintf("li t1, %#x", uint64(swapmem.DataBase+0x200))}
		default: // plain ALU
			ops := []string{"add t0, t1, t2", "sub t3, t4, t5", "mul t0, t0, t1",
				"xor t2, t2, t3", "andi t4, t5, 0x3f", "sll t1, t1, t0"}
			body = []string{ops[rng.Intn(len(ops))], "ecall"}
		}
		p, err := g.trainingPacket(fmt.Sprintf("rand-%d", i), st, setup, body)
		if err == nil {
			out = append(out, p)
		}
	}
	return out
}

// CompleteWindow implements Step 2.1: replace the dummy window with the
// secret-access and secret-encoding blocks, and derive window training.
func (g *Generator) CompleteWindow(st *Stimulus) (*Stimulus, error) {
	n := &Stimulus{}
	if err := g.CompleteWindowInto(n, st); err != nil {
		return nil, err
	}
	return n, nil
}

// CompleteWindowInto is CompleteWindow materialised into a caller-provided
// Stimulus (which must be distinct from st).
func (g *Generator) CompleteWindowInto(dst, st *Stimulus) error {
	fam, err := FamilyOf(st.Seed)
	if err != nil {
		return err // FamilyOf errors carry their own prefix
	}
	p := st.Seed.params()
	rng := g.buildRand(st.Seed.Rand ^ 0x5eed)
	// The encode block is retained on the stimulus (Phase 3 sanitisation
	// reads it), so it builds into the destination's own recycled buffer;
	// the access+encode window body is per-build scratch.
	encode, ok := fam.Encode(dst.EncodeLines[:0], p, rng)
	if !ok {
		encode = scenario.SharedEncode(encode, p, rng)
	}
	body := fam.Access(g.body[:0], p)
	body = append(body, encode...)
	g.body = body
	*dst = Stimulus{Seed: st.Seed, TriggerPC: st.TriggerPC, Transient: dst.Transient}
	if err := g.buildTransient(dst, fam, body); err != nil {
		return err
	}
	dst.TriggerTrains = st.TriggerTrains
	dst.EncodeLines = encode
	dst.Completed = true

	// Window training: warm the secret's cache/TLB state before training.
	// Disambiguation-class windows additionally warm the pointer slot so
	// the speculative loads complete inside the (short) ordering window.
	wt, err := windowTrainPacket(fam.Caps().WarmPointer)
	if err == nil {
		dst.WindowTrains = []*swapmem.Packet{wt}
	}
	return nil
}

// Sanitized rebuilds the transient packet with the encode block replaced by
// nops (Step 3.1's encode sanitisation).
func (g *Generator) Sanitized(st *Stimulus) (*Stimulus, error) {
	n := &Stimulus{}
	if err := g.SanitizedInto(n, st); err != nil {
		return nil, err
	}
	return n, nil
}

// SanitizedInto is Sanitized materialised into a caller-provided Stimulus
// (which must be distinct from st).
func (g *Generator) SanitizedInto(dst, st *Stimulus) error {
	fam, err := FamilyOf(st.Seed)
	if err != nil {
		return err // FamilyOf errors carry their own prefix
	}
	body := fam.Access(g.body[:0], st.Seed.params())
	body = append(body, dummyWindow(len(st.EncodeLines))...)
	g.body = body
	*dst = Stimulus{Seed: st.Seed, TriggerPC: st.TriggerPC, Transient: dst.Transient}
	if err := g.buildTransient(dst, fam, body); err != nil {
		return err
	}
	dst.TriggerTrains = st.TriggerTrains
	dst.WindowTrains = st.WindowTrains
	dst.Completed = true
	return nil
}

// accessBlock returns the seed's secret-access block (the scenario family's
// Access hook); kept as the package-level seam tests exercise.
func accessBlock(s Seed) []string {
	fam, err := FamilyOf(s)
	if err != nil {
		return nil
	}
	return fam.Access(nil, s.params())
}

// windowTrainPacket warms the secret into the data cache and TLBs, and
// optionally the disambiguation pointer slot. The two variants are
// seed-independent, so they are assembled once and shared read-only across
// all shards and campaigns.
func windowTrainPacket(warmPtr bool) (*swapmem.Packet, error) {
	i := 0
	if warmPtr {
		i = 1
	}
	c := &windowTrainCache[i]
	c.once.Do(func() { c.p, c.err = buildWindowTrainPacket(warmPtr) })
	return c.p, c.err
}

var windowTrainCache [2]struct {
	once sync.Once
	p    *swapmem.Packet
	err  error
}

func buildWindowTrainPacket(warmPtr bool) (*swapmem.Packet, error) {
	src := fmt.Sprintf("li t0, %#x\nld a1, 0(t0)\n", uint64(swapmem.SecretAddr))
	if warmPtr {
		src += fmt.Sprintf("li t0, %#x\nld a1, 0(t0)\n", uint64(swapmem.DataBase+0x300))
	}
	src += "ecall"
	img, err := isa.Asm(swapmem.SwapBase, src)
	if err != nil {
		return nil, err
	}
	return &swapmem.Packet{
		Name:       "window-train",
		Kind:       swapmem.PacketWindowTrain,
		Image:      img,
		Entry:      swapmem.SwapBase,
		TrainInsts: len(img.Words),
	}, nil
}

// BuildSchedule assembles the swap schedule: window training first, then
// trigger training (optionally masked by `keep`), then — after the secret
// permission update for Meltdown-type seeds — the transient packet.
func (st *Stimulus) BuildSchedule(keep []bool) *swapmem.Schedule {
	return st.BuildScheduleInto(&swapmem.Schedule{}, keep)
}

// BuildScheduleInto is BuildSchedule materialised into a caller-provided
// schedule, reusing its step-slice capacity. The result is valid until the
// next build into the same schedule; swap runtimes never mutate a bound
// schedule, so one buffer per pipeline suffices.
func (st *Stimulus) BuildScheduleInto(sched *swapmem.Schedule, keep []bool) *swapmem.Schedule {
	sched.Steps = sched.Steps[:0]
	for _, p := range st.WindowTrains {
		sched.Append(p)
	}
	for i, p := range st.TriggerTrains {
		if keep != nil && (i >= len(keep) || !keep[i]) {
			continue
		}
		sched.Append(p)
	}
	if st.Seed.SecretFaults {
		sched.AppendWithPerm(st.Transient, swapmem.PermUpdate{Region: "dedicated", Perm: 0})
	} else {
		sched.Append(st.Transient)
	}
	return sched
}
