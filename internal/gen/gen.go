// Package gen is DejaVuzz's stimulus generator. It implements the paper's
// Phase 1 and Phase 2 construction steps on top of swapMem:
//
//   - trigger generation for all eight transient-window types (Step 1.1),
//   - training derivation: targeted trigger-training packets aligned to the
//     trigger address with matched control flow (Step 1.1),
//   - dummy windows for Phase 1, replaced by secret-access and
//     secret-encoding blocks in Phase 2 (Step 2.1),
//   - window-training derivation that warms memory state before the trigger
//     training runs (Step 2.1),
//   - the DejaVuzz* ablation (random, underived training), and
//   - encode-block sanitisation used by Phase 3 (Step 3.1).
package gen

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"dejavuzz/internal/isa"
	"dejavuzz/internal/swapmem"
	"dejavuzz/internal/uarch"
)

// TriggerType enumerates the transient-window trigger classes of Table 3.
type TriggerType int

const (
	TrigAccessFault TriggerType = iota
	TrigPageFault
	TrigMisalign
	TrigIllegal
	TrigMemDisambig
	TrigBranchMispred
	TrigJumpMispred
	TrigReturnMispred

	NumTriggerTypes
)

var triggerNames = [...]string{
	"load/store-access-fault",
	"load/store-page-fault",
	"load/store-misalign",
	"illegal-instruction",
	"memory-disambiguation",
	"branch-misprediction",
	"indirect-jump-misprediction",
	"return-address-misprediction",
}

func (t TriggerType) String() string {
	if t >= 0 && int(t) < len(triggerNames) {
		return triggerNames[t]
	}
	return fmt.Sprintf("trigger(%d)", int(t))
}

// IsException reports whether the trigger is an architectural-exception type
// (zero training expected).
func (t TriggerType) IsException() bool {
	switch t {
	case TrigAccessFault, TrigPageFault, TrigMisalign, TrigIllegal:
		return true
	}
	return false
}

// IsMispredict reports whether the trigger is a control-flow misprediction.
func (t TriggerType) IsMispredict() bool {
	switch t {
	case TrigBranchMispred, TrigJumpMispred, TrigReturnMispred:
		return true
	}
	return false
}

// AllTriggerTypes lists every trigger class.
func AllTriggerTypes() []TriggerType {
	out := make([]TriggerType, NumTriggerTypes)
	for i := range out {
		out[i] = TriggerType(i)
	}
	return out
}

// Variant selects the training-generation strategy.
type Variant int

const (
	// VariantDerived is DejaVuzz proper: training derived from the transient
	// packet's execution information.
	VariantDerived Variant = iota
	// VariantRandom is the DejaVuzz* ablation: swapMem isolation but random,
	// underived training instructions.
	VariantRandom
)

func (v Variant) String() string {
	if v == VariantRandom {
		return "DejaVuzz*"
	}
	return "DejaVuzz"
}

// Seed holds the configuration entropy for one stimulus (the corpus unit).
type Seed struct {
	Core    uarch.CoreKind
	Trigger TriggerType
	Variant Variant
	Rand    int64

	TriggerOff   int  // pad-nop count before the trigger instruction
	WindowLen    int  // dummy-window length in instructions
	EncodeOps    int  // number of encode gadgets in Phase 2
	MaskHigh     bool // mask high address bits in the secret access (MDS probing)
	SecretFaults bool // Meltdown-type: secret access itself faults
	StoreFlavor  bool // use a store for fault-type triggers
}

// Generator produces seeds and stimuli deterministically from its RNG.
// A Generator also owns the scratch buffers stimulus construction
// materialises assembly into, so one long-lived Generator per shard makes
// stimulus building allocation-light; those buffers make a Generator
// single-goroutine (campaign shards each own one).
type Generator struct {
	rng *rand.Rand

	// lines is the assembly-materialisation scratch reused across packet
	// builds (valid only within one build call).
	lines []string
	// brng is the per-stimulus derivation RNG, reseeded from Seed.Rand for
	// every build (so builds stay pure functions of the seed).
	brng *rand.Rand
	// trainCache memoises derived training packets, which are pure
	// functions of (packet name, body, trigger offset) — a campaign draws
	// them from a small closed set, so most rebuilds are cache hits.
	// Cached packets are shared read-only across stimuli, exactly like a
	// rebuilt packet is shared between a stimulus and its completed copy.
	trainCache map[string]*swapmem.Packet
}

// New returns a generator with the given RNG seed.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Reseed returns the generator's RNG to the state New(seed) produces,
// keeping the generator's scratch buffers. Equivalent to replacing the
// generator with a fresh one — without the allocation.
func (g *Generator) Reseed(seed int64) {
	g.rng.Seed(seed)
}

// buildRand returns the generator's reusable derivation RNG seeded to the
// state rand.New(rand.NewSource(seed)) produces.
func (g *Generator) buildRand(seed int64) *rand.Rand {
	if g.brng == nil {
		g.brng = rand.New(rand.NewSource(seed))
		return g.brng
	}
	g.brng.Seed(seed)
	return g.brng
}

// splitMix64 is the SplitMix64 finaliser, used to derive statistically
// independent per-shard streams from one campaign seed.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardSeed derives the RNG seed for one shard of a campaign: shards of the
// same campaign get decorrelated streams, and the mapping depends only on
// (campaign seed, shard id) — never on worker count or scheduling.
func ShardSeed(campaignSeed int64, shard int) int64 {
	return int64(splitMix64(uint64(campaignSeed)*0x9e3779b97f4a7c15 + uint64(shard) + 1))
}

// EpochShardSeed derives the RNG seed for one (shard, epoch) cell of a
// campaign. Seeding shard generators per epoch (rather than once per
// campaign) makes a merge barrier a complete cut point: the stimulus stream
// after barrier k depends only on (campaign seed, shard id, epoch index) and
// the barrier-merged state, so a campaign checkpointed at a barrier resumes
// byte-identically without serialising RNG internals.
func EpochShardSeed(campaignSeed int64, shard, epoch int) int64 {
	return int64(splitMix64(uint64(ShardSeed(campaignSeed, shard)) + splitMix64(uint64(epoch)+0x51ed)))
}

// NewEpochShard returns the deterministic generator for one shard epoch.
func NewEpochShard(campaignSeed int64, shard, epoch int) *Generator {
	return New(EpochShardSeed(campaignSeed, shard, epoch))
}

// RandomSeed draws a fresh seed for a core.
func (g *Generator) RandomSeed(core uarch.CoreKind) Seed {
	return Seed{
		Core:         core,
		Trigger:      TriggerType(g.rng.Intn(int(NumTriggerTypes))),
		Variant:      VariantDerived,
		Rand:         g.rng.Int63(),
		TriggerOff:   60 + g.rng.Intn(50),
		WindowLen:    4 + g.rng.Intn(6),
		EncodeOps:    1 + g.rng.Intn(3),
		MaskHigh:     g.rng.Intn(4) == 0,
		SecretFaults: g.rng.Intn(2) == 0,
		StoreFlavor:  g.rng.Intn(4) == 0,
	}
}

// SeedFor draws a seed with a fixed trigger type.
func (g *Generator) SeedFor(core uarch.CoreKind, t TriggerType, v Variant) Seed {
	s := g.RandomSeed(core)
	s.Trigger = t
	s.Variant = v
	return s
}

// Mutate perturbs a seed's window/encode configuration (Phase 2 feedback).
func (g *Generator) Mutate(s Seed) Seed {
	n := s
	n.Rand = g.rng.Int63()
	switch g.rng.Intn(6) {
	case 0:
		n.EncodeOps = 1 + g.rng.Intn(4)
	case 1:
		n.MaskHigh = !n.MaskHigh
	case 2:
		n.SecretFaults = !n.SecretFaults
	case 3:
		n.WindowLen = 4 + g.rng.Intn(8)
	case 4:
		n.Trigger = TriggerType(g.rng.Intn(int(NumTriggerTypes)))
	case 5:
		n.StoreFlavor = !n.StoreFlavor
	}
	return n
}

// Stimulus is a fully constructed swapMem test case.
type Stimulus struct {
	Seed Seed

	Transient     *swapmem.Packet
	TriggerTrains []*swapmem.Packet
	WindowTrains  []*swapmem.Packet

	TriggerPC uint64
	WindowLo  uint64
	WindowHi  uint64

	// EncodeLines is the secret-encoding block (for sanitisation); empty in
	// Phase 1 (dummy window).
	EncodeLines []string
	// Completed marks Phase 2 window completion.
	Completed bool
}

// triggerAddr computes the trigger PC for a seed.
func triggerAddr(s Seed) uint64 {
	return swapmem.SwapBase + 4*uint64(s.TriggerOff)
}

// BuildStimulus constructs the Phase-1 stimulus: transient packet with a
// dummy (nop) window plus derived or random trigger-training packets.
func (g *Generator) BuildStimulus(seed Seed) (*Stimulus, error) {
	st := &Stimulus{}
	if err := g.BuildStimulusInto(st, seed); err != nil {
		return nil, err
	}
	return st, nil
}

// BuildStimulusInto is BuildStimulus materialised into a caller-provided
// Stimulus, reusing its packet-slice capacity. The campaign engine hands
// each shard pipeline a small set of Stimulus buffers that live for the
// whole campaign; the result is only valid until the next build into the
// same buffer.
func (g *Generator) BuildStimulusInto(st *Stimulus, seed Seed) error {
	rng := g.buildRand(seed.Rand)
	trains := st.TriggerTrains[:0]
	*st = Stimulus{Seed: seed, TriggerPC: triggerAddr(seed), Transient: st.Transient}

	body := dummyWindow(seed.WindowLen)
	if err := g.buildTransient(st, body); err != nil {
		return err
	}
	if seed.Variant == VariantRandom {
		st.TriggerTrains = g.randomTrainings(trains, st, rng, 6)
	} else {
		st.TriggerTrains = g.deriveTrainings(trains, st, rng)
	}
	return nil
}

// dummyWindow is Phase 1's placeholder payload.
func dummyWindow(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "nop"
	}
	return out
}

// buildTransient assembles the transient packet for the seed's trigger type
// with the given window body, filling in TriggerPC/WindowLo/WindowHi. The
// assembly lines are materialised into the generator's scratch buffer and
// the packet struct is reused when the stimulus already carries one.
func (g *Generator) buildTransient(st *Stimulus, windowBody []string) error {
	s := st.Seed
	T := st.TriggerPC
	lines := g.lines[:0]
	defer func() { g.lines = lines }()
	emit := func(l ...string) { lines = append(lines, l...) }
	train := 0 // transient packets count no training instructions

	// --- entry setup ---
	switch s.Trigger {
	case TrigAccessFault:
		emit(fmt.Sprintf("li t6, %#x", swapmem.GuardAccBase+0x40))
	case TrigPageFault:
		emit(fmt.Sprintf("li t6, %#x", swapmem.GuardPageBase+0x40))
	case TrigMisalign:
		emit(fmt.Sprintf("li t6, %#x", swapmem.DataBase+0x101))
	case TrigIllegal:
		// no setup
	case TrigMemDisambig:
		ptr := swapmem.DataBase + 0x300
		safe := swapmem.DataBase + 0x400
		emit(
			fmt.Sprintf("li a2, %#x", ptr),
			fmt.Sprintf("li a3, %#x", swapmem.SecretAddr),
			"sd a3, 0(a2)", // pointer slot <- &secret
			fmt.Sprintf("li a4, %#x", safe),
			// Slow recomputation of the pointer address via division.
			fmt.Sprintf("li t3, %#x", ptr*9),
			"li t4, 3",
			"div t3, t3, t4",
			"div t3, t3, t4", // t3 = ptr, ready ~32 cycles later
		)
	case TrigBranchMispred:
		emit(
			"li a0, 36",
			"li a1, 3",
			"div a0, a0, a1",
			"div a0, a0, a1", // a0 = 4, slowly; a1 = 3 -> branch not taken
		)
	case TrigJumpMispred, TrigReturnMispred:
		// a0 = exit address (T+4), computed via two divisions so the actual
		// target resolves long after the prediction redirected fetch.
		emit(
			fmt.Sprintf("li a0, %d", (T+4)*9),
			"li a1, 3",
			"div a0, a0, a1",
			"div a0, a0, a1",
		)
		if s.Trigger == TrigReturnMispred {
			emit("mv ra, a0")
		}
	}

	// --- padding, then jump to the trigger ---
	setupWords, err := countWords(lines)
	if err != nil {
		return err
	}
	emit("j trig")
	pad := s.TriggerOff - setupWords - 1
	if pad < 0 {
		return fmt.Errorf("gen: trigger offset %d too small for %d setup words", s.TriggerOff, setupWords)
	}
	for i := 0; i < pad; i++ {
		emit("nop")
	}

	// --- trigger and window layout ---
	winLen := len(windowBody) + 1 // + terminator ecall
	emit("trig:")
	switch s.Trigger {
	case TrigAccessFault, TrigPageFault, TrigMisalign:
		if s.StoreFlavor {
			emit("sd t6, 0(t6)")
		} else {
			emit("ld t6, 0(t6)")
		}
		st.WindowLo = T + 4
		emit(windowBody...)
		emit("ecall")
	case TrigIllegal:
		emit(".illegal")
		st.WindowLo = T + 4
		emit(windowBody...)
		emit("ecall")
	case TrigMemDisambig:
		emit("sd a4, 0(t3)") // slow-address store overwrites the pointer
		st.WindowLo = T + 4
		emit("ld t1, 0(a2)") // speculative load of the (stale) pointer
		emit(windowBody...)
		emit("ecall")
	case TrigBranchMispred:
		// Trained taken -> window at target; actually not taken -> exit.
		emit("beq a0, a1, win")
		emit("ecall") // exit at T+4
		emit("win:")
		st.WindowLo = T + 8
		emit(windowBody...)
		emit("ecall")
	case TrigJumpMispred:
		emit("jalr x0, 0(a0)") // actual: exit at T+4
		emit("ecall")
		emit("win:")
		st.WindowLo = T + 8
		emit(windowBody...)
		emit("ecall")
	case TrigReturnMispred:
		emit("ret") // predicted from RAS -> win; actual -> exit
		emit("ecall")
		emit("win:")
		st.WindowLo = T + 8
		emit(windowBody...)
		emit("ecall")
	}
	st.WindowHi = st.WindowLo + 4*uint64(winLen)

	img, err := isa.Asm(swapmem.SwapBase, strings.Join(lines, "\n"))
	if err != nil {
		return fmt.Errorf("gen: transient packet: %w", err)
	}
	if st.Transient == nil {
		st.Transient = &swapmem.Packet{}
	}
	*st.Transient = swapmem.Packet{
		Name:       "transient",
		Kind:       swapmem.PacketTransient,
		Image:      img,
		Entry:      swapmem.SwapBase,
		TrainInsts: train,
		PadInsts:   pad,
	}
	return nil
}

// countWords assembles a fragment to measure its instruction count.
func countWords(lines []string) (int, error) {
	if len(lines) == 0 {
		return 0, nil
	}
	p, err := isa.Asm(swapmem.SwapBase, strings.Join(lines, "\n"))
	if err != nil {
		return 0, err
	}
	return len(p.Words), nil
}

// cachedTrainingPacket is trainingPacket behind the generator's memo table.
// A derived training packet is a pure function of (name, setup, body,
// trigger offset), and derived trainings draw from a small closed set of
// bodies, so campaigns hit the cache on almost every rebuild. Random
// (DejaVuzz*) trainings bypass this — their bodies are rng-unique.
func (g *Generator) cachedTrainingPacket(name string, st *Stimulus, setup, body []string) (*swapmem.Packet, error) {
	var key strings.Builder
	key.Grow(64)
	key.WriteString(name)
	fmt.Fprintf(&key, "|%d", st.Seed.TriggerOff)
	for _, l := range setup {
		key.WriteByte('|')
		key.WriteString(l)
	}
	key.WriteByte('#')
	for _, l := range body {
		key.WriteByte('|')
		key.WriteString(l)
	}
	k := key.String()
	if p, ok := g.trainCache[k]; ok {
		return p, nil
	}
	p, err := g.trainingPacket(name, st, setup, body)
	if err == nil {
		if g.trainCache == nil {
			g.trainCache = make(map[string]*swapmem.Packet)
		}
		g.trainCache[k] = p
	}
	return p, err
}

// trainingPacket assembles a trigger-training packet: setup, pad nops so the
// training instruction aligns with the trigger PC, the training body, and a
// terminator. Lines are materialised into the generator's scratch buffer.
func (g *Generator) trainingPacket(name string, st *Stimulus, setup, body []string) (*swapmem.Packet, error) {
	setupWords, err := countWords(setup)
	if err != nil {
		return nil, err
	}
	pad := st.Seed.TriggerOff - setupWords
	if pad < 0 {
		pad = 0
	}
	lines := g.lines[:0]
	defer func() { g.lines = lines }()
	lines = append(lines, setup...)
	for i := 0; i < pad; i++ {
		lines = append(lines, "nop")
	}
	lines = append(lines, "trainpc:")
	lines = append(lines, body...)
	img, err := isa.Asm(swapmem.SwapBase, strings.Join(lines, "\n"))
	if err != nil {
		return nil, fmt.Errorf("gen: training packet %s: %w", name, err)
	}
	return &swapmem.Packet{
		Name:       name,
		Kind:       swapmem.PacketTriggerTrain,
		Image:      img,
		Entry:      swapmem.SwapBase,
		TrainInsts: len(img.Words) - pad,
		PadInsts:   pad,
	}, nil
}

// deriveTrainings implements the training derivation strategy: targeted
// training whose instruction aligns with the trigger PC and whose control
// flow matches the transient window, plus decoy candidates that the
// training-reduction step is expected to discard. Packets are appended to
// dst (typically a recycled slice).
func (g *Generator) deriveTrainings(dst []*swapmem.Packet, st *Stimulus, rng *rand.Rand) []*swapmem.Packet {
	out := dst
	add := func(p *swapmem.Packet, err error) {
		if err != nil {
			panic(fmt.Sprintf("gen: derived training: %v", err))
		}
		out = append(out, p)
	}
	win := st.WindowLo

	switch st.Seed.Trigger {
	case TrigBranchMispred:
		// Loop a taken branch at the trigger PC three times; its target is
		// the window address (control-flow matching).
		add(g.cachedTrainingPacket("train-branch", st,
			[]string{"li a3, 3"},
			[]string{
				"beq zero, zero, taken",
				"ecall",
				"taken:", // = win (T+8)
				"addi a3, a3, -1",
				"bnez a3, trainpc",
				"ecall",
			}))
	case TrigJumpMispred:
		// Train the indirect-target predictor with the window address,
		// repeated to satisfy target-confidence thresholds.
		add(g.cachedTrainingPacket("train-jalr", st,
			[]string{fmt.Sprintf("li a2, %#x", win), "li a3, 3"},
			[]string{
				"jalr x0, 0(a2)", // jumps to win
				"ecall",
				"landing:", // = win
				"addi a3, a3, -1",
				"bnez a3, trainpc",
				"ecall",
			}))
	case TrigReturnMispred:
		// A call whose return address equals the window start: the auipc of
		// `call` sits at the trigger PC, its jalr at T+4, so ra = T+8 = win.
		add(g.cachedTrainingPacket("train-ret", st,
			nil,
			[]string{fmt.Sprintf("call %#x", swapmem.SwapDoneAddr)}))
	}

	// Decoy candidates: plausible but untargeted; training reduction should
	// eliminate them (and, for exception-type windows, everything).
	decoys := []string{"add t0, t1, s2", "sub t1, t0, s0", "mul t2, t0, t1", "andi t3, t0, 0xf"}
	rng.Shuffle(len(decoys), func(i, j int) { decoys[i], decoys[j] = decoys[j], decoys[i] })
	for i := 0; i < 2; i++ {
		add(g.cachedTrainingPacket(fmt.Sprintf("decoy-%d", i), st, nil,
			[]string{decoys[i], "ecall"}))
	}
	return out
}

// randomTrainings implements DejaVuzz*: random instructions aligned to the
// trigger PC without any derivation from transient execution information.
// Packets are appended to dst (typically a recycled slice).
func (g *Generator) randomTrainings(dst []*swapmem.Packet, st *Stimulus, rng *rand.Rand, n int) []*swapmem.Packet {
	out := dst
	for i := 0; i < n; i++ {
		var setup, body []string
		switch rng.Intn(8) {
		case 0: // random conditional branch, random small offset
			off := 8 + 4*rng.Intn(14)
			taken := rng.Intn(2) == 0
			op := "bne"
			if taken {
				op = "beq"
			}
			body = []string{
				fmt.Sprintf("%s zero, zero, %d", op, off),
				"ecall",
			}
			// Landing pads so a taken branch terminates cleanly.
			for w := 8; w <= off; w += 4 {
				if w == off {
					body = append(body, "ecall")
				} else {
					body = append(body, "nop")
				}
			}
		case 1: // random indirect jump to a random aligned address past the body
			tgt := triggerAddr(st.Seed) + 8 + uint64(4*rng.Intn(64))
			setup = []string{fmt.Sprintf("li a2, %#x", tgt)}
			body = []string{"jalr x0, 0(a2)", "ecall"}
		case 2: // random call (pushes a random return address)
			body = []string{fmt.Sprintf("call %#x", swapmem.SwapDoneAddr)}
		case 3:
			body = []string{fmt.Sprintf("ld t0, %d(t1)", 8*rng.Intn(16)), "ecall"}
			setup = []string{fmt.Sprintf("li t1, %#x", swapmem.DataBase+0x200)}
		default: // plain ALU
			ops := []string{"add t0, t1, t2", "sub t3, t4, t5", "mul t0, t0, t1",
				"xor t2, t2, t3", "andi t4, t5, 0x3f", "sll t1, t1, t0"}
			body = []string{ops[rng.Intn(len(ops))], "ecall"}
		}
		p, err := g.trainingPacket(fmt.Sprintf("rand-%d", i), st, setup, body)
		if err == nil {
			out = append(out, p)
		}
	}
	return out
}

// CompleteWindow implements Step 2.1: replace the dummy window with the
// secret-access and secret-encoding blocks, and derive window training.
func (g *Generator) CompleteWindow(st *Stimulus) (*Stimulus, error) {
	n := &Stimulus{}
	if err := g.CompleteWindowInto(n, st); err != nil {
		return nil, err
	}
	return n, nil
}

// CompleteWindowInto is CompleteWindow materialised into a caller-provided
// Stimulus (which must be distinct from st).
func (g *Generator) CompleteWindowInto(dst, st *Stimulus) error {
	rng := g.buildRand(st.Seed.Rand ^ 0x5eed)
	access := accessBlock(st.Seed)
	encode := encodeBlock(st.Seed, rng)

	body := append(append([]string{}, access...), encode...)
	*dst = Stimulus{Seed: st.Seed, TriggerPC: st.TriggerPC, Transient: dst.Transient}
	if err := g.buildTransient(dst, body); err != nil {
		return err
	}
	dst.TriggerTrains = st.TriggerTrains
	dst.EncodeLines = encode
	dst.Completed = true

	// Window training: warm the secret's cache/TLB state before training.
	// Memory-disambiguation windows additionally warm the pointer slot so
	// the speculative loads complete inside the (short) ordering window.
	wt, err := windowTrainPacket(st.Seed.Trigger == TrigMemDisambig)
	if err == nil {
		dst.WindowTrains = []*swapmem.Packet{wt}
	}
	return nil
}

// Sanitized rebuilds the transient packet with the encode block replaced by
// nops (Step 3.1's encode sanitisation).
func (g *Generator) Sanitized(st *Stimulus) (*Stimulus, error) {
	n := &Stimulus{}
	if err := g.SanitizedInto(n, st); err != nil {
		return nil, err
	}
	return n, nil
}

// SanitizedInto is Sanitized materialised into a caller-provided Stimulus
// (which must be distinct from st).
func (g *Generator) SanitizedInto(dst, st *Stimulus) error {
	access := accessBlock(st.Seed)
	body := append(append([]string{}, access...), dummyWindow(len(st.EncodeLines))...)
	*dst = Stimulus{Seed: st.Seed, TriggerPC: st.TriggerPC, Transient: dst.Transient}
	if err := g.buildTransient(dst, body); err != nil {
		return err
	}
	dst.TriggerTrains = st.TriggerTrains
	dst.WindowTrains = st.WindowTrains
	dst.Completed = true
	return nil
}

// accessBlock emits the secret access: load the secret into s0, optionally
// through a masked (illegal, MDS-style) address.
func accessBlock(s Seed) []string {
	if s.Trigger == TrigMemDisambig {
		// The stale pointer in t1 (set by the trigger block) points at the
		// secret; dereference it.
		return []string{"ld s0, 0(t1)"}
	}
	if s.MaskHigh {
		return []string{
			fmt.Sprintf("li t0, %#x", uint64(1)<<63|uint64(swapmem.SecretAddr)),
			"ld s0, 0(t0)",
		}
	}
	return []string{
		fmt.Sprintf("li t0, %#x", uint64(swapmem.SecretAddr)),
		"ld s0, 0(t0)",
	}
}

// encodeBlock draws EncodeOps secret-encoding gadgets.
func encodeBlock(s Seed, rng *rand.Rand) []string {
	gadgets := [][]string{
		{ // dcache encode: classic secret-indexed load
			"andi s1, s0, 0x3f",
			"slli s1, s1, 6",
			fmt.Sprintf("li t1, %#x", swapmem.DataBase+0x1000),
			"add t1, t1, s1",
			"ld t2, 0(t1)",
		},
		{ // arithmetic propagation
			"add t3, s0, s0",
			"xor t4, t3, s0",
			"mul t5, t4, t3",
		},
		{ // secret-dependent branch (control-flow encode)
			"andi s1, s0, 1",
			"beq s1, zero, 8",
			"add t3, t3, t3",
		},
		{ // FPU port contention (Spectre-Rewind shape)
			"fmv.d.x fa0, s0",
			"fdiv.d fa1, fa0, fa0",
		},
		{ // store encode
			fmt.Sprintf("li t1, %#x", swapmem.DataBase+0x2000),
			"andi s1, s0, 0x3f",
			"slli s1, s1, 3",
			"add t1, t1, s1",
			"sd s0, 0(t1)",
		},
		{ // load write-back port pressure (Spectre-Reload shape)
			fmt.Sprintf("li t1, %#x", swapmem.DataBase+0x80),
			"ld t2, 0(t1)",
			"ld t3, 8(t1)",
			"ld t4, 16(t1)",
			"ld t5, 24(t1)",
		},
		{ // secret-dependent call: corrupts RAS/BTB (Phantom shapes)
			"auipc t4, 0",
			"andi s1, s0, 1",
			"slli s1, s1, 3",
			"add t4, t4, s1",
			"jalr ra, 28(t4)",
			"nop",
			"nop",
		},
		{ // secret-dependent far jump: icache fill (Spectre-Refetch shape)
			fmt.Sprintf("li t4, %#x", swapmem.SharedBase+0x400),
			"andi s1, s0, 1",
			"slli s1, s1, 6",
			"add t4, t4, s1",
			"jr t4",
		},
	}
	var out []string
	for i := 0; i < s.EncodeOps; i++ {
		out = append(out, gadgets[rng.Intn(len(gadgets))]...)
	}
	return out
}

// windowTrainPacket warms the secret into the data cache and TLBs, and
// optionally the disambiguation pointer slot. The two variants are
// seed-independent, so they are assembled once and shared read-only across
// all shards and campaigns.
func windowTrainPacket(warmPtr bool) (*swapmem.Packet, error) {
	i := 0
	if warmPtr {
		i = 1
	}
	c := &windowTrainCache[i]
	c.once.Do(func() { c.p, c.err = buildWindowTrainPacket(warmPtr) })
	return c.p, c.err
}

var windowTrainCache [2]struct {
	once sync.Once
	p    *swapmem.Packet
	err  error
}

func buildWindowTrainPacket(warmPtr bool) (*swapmem.Packet, error) {
	src := fmt.Sprintf("li t0, %#x\nld a1, 0(t0)\n", uint64(swapmem.SecretAddr))
	if warmPtr {
		src += fmt.Sprintf("li t0, %#x\nld a1, 0(t0)\n", uint64(swapmem.DataBase+0x300))
	}
	src += "ecall"
	img, err := isa.Asm(swapmem.SwapBase, src)
	if err != nil {
		return nil, err
	}
	return &swapmem.Packet{
		Name:       "window-train",
		Kind:       swapmem.PacketWindowTrain,
		Image:      img,
		Entry:      swapmem.SwapBase,
		TrainInsts: len(img.Words),
	}, nil
}

// BuildSchedule assembles the swap schedule: window training first, then
// trigger training (optionally masked by `keep`), then — after the secret
// permission update for Meltdown-type seeds — the transient packet.
func (st *Stimulus) BuildSchedule(keep []bool) *swapmem.Schedule {
	return st.BuildScheduleInto(&swapmem.Schedule{}, keep)
}

// BuildScheduleInto is BuildSchedule materialised into a caller-provided
// schedule, reusing its step-slice capacity. The result is valid until the
// next build into the same schedule; swap runtimes never mutate a bound
// schedule, so one buffer per pipeline suffices.
func (st *Stimulus) BuildScheduleInto(sched *swapmem.Schedule, keep []bool) *swapmem.Schedule {
	sched.Steps = sched.Steps[:0]
	for _, p := range st.WindowTrains {
		sched.Append(p)
	}
	for i, p := range st.TriggerTrains {
		if keep != nil && (i >= len(keep) || !keep[i]) {
			continue
		}
		sched.Append(p)
	}
	if st.Seed.SecretFaults {
		sched.AppendWithPerm(st.Transient, swapmem.PermUpdate{Region: "dedicated", Perm: 0})
	} else {
		sched.Append(st.Transient)
	}
	return sched
}
