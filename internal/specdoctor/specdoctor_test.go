package specdoctor

import (
	"testing"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

var testSecret = []byte{0xa5, 0x3c, 0x96, 0x0f, 0x11, 0xee, 0x42, 0x7b}

func TestSupportedTriggers(t *testing.T) {
	f := New(Options{Core: uarch.KindBOOM, Seed: 1})
	unsupported := []gen.TriggerType{
		gen.TrigAccessFault, gen.TrigMisalign, gen.TrigIllegal, gen.TrigReturnMispred,
	}
	for _, tr := range unsupported {
		if f.Supports(tr) {
			t.Errorf("SpecDoctor should not reach %v", tr)
		}
		if _, err := f.GenCase(tr); err == nil {
			t.Errorf("GenCase(%v) should fail", tr)
		}
	}
	if len(f.SupportedTriggers()) != 4 {
		t.Fatalf("expected 4 supported types, got %d", len(f.SupportedTriggers()))
	}
}

func TestCasesTriggerWindows(t *testing.T) {
	f := New(Options{Core: uarch.KindBOOM, Seed: 3})
	for _, tr := range f.SupportedTriggers() {
		triggered := false
		for attempt := 0; attempt < 4 && !triggered; attempt++ {
			c, err := f.GenCase(tr)
			if err != nil {
				t.Fatalf("%v: %v", tr, err)
			}
			if c.TrainInsts < 100 {
				t.Errorf("%v: training overhead %d below the expected ~100+", tr, c.TrainInsts)
			}
			r := f.RunCase(c, testSecret)
			triggered = r.Triggered
		}
		if !triggered {
			t.Errorf("%v: SpecDoctor case never triggered a window", tr)
		}
	}
}

func TestHashOracleFalsePositives(t *testing.T) {
	// Cases without an encode gadget must still flip the hash (the resident
	// secret is in the data array): SpecDoctor's documented false positives.
	f := New(Options{Core: uarch.KindBOOM, Seed: 11})
	sawFPStyle := false
	sawGadget := false
	for i := 0; i < 12 && !(sawFPStyle && sawGadget); i++ {
		c, err := f.GenCase(gen.TrigPageFault)
		if err != nil {
			t.Fatal(err)
		}
		r := f.RunCase(c, testSecret)
		if !r.Positive() {
			continue
		}
		if c.HasEncodeGadget {
			sawGadget = true
		} else {
			sawFPStyle = true
		}
	}
	if !sawFPStyle {
		t.Error("no resident-secret (false-positive) hash flips observed")
	}
	if !sawGadget {
		t.Error("no encoded-secret hash flips observed")
	}
}

func TestCampaign(t *testing.T) {
	f := New(Options{Core: uarch.KindBOOM, Seed: 5})
	res := f.Campaign(24, testSecret)
	if len(res.Positives) == 0 {
		t.Fatal("campaign produced no phase-3 positives")
	}
	for tr, to := range res.TriggerTO {
		if to < 90 || to > 160 {
			t.Errorf("%v: average TO %.1f outside the expected 90-160 band", tr, to)
		}
	}
	if res.Phase4Attempts == 0 {
		t.Error("no phase-4 decode effort accounted")
	}
}
