// Package specdoctor implements the SpecDoctor baseline (Hur et al., CCS'22)
// at the fidelity the paper's comparison requires.
//
// SpecDoctor generates linear programs in a single address space: a random
// instruction prefix doubles as microarchitectural training, the
// transient-trigger phase runs until a RoB rollback is observed, the
// secret-transmit phase appends instructions behind the trigger, and the
// oracle compares hashes of the timing components' final state between two
// secret variants. Its documented limitations are modelled directly:
//
//   - windows containing backward jumps are discarded, so return-address
//     windows are out of scope;
//   - the generator emits only valid memory accesses and legal instructions,
//     so access-fault / misalignment / illegal-instruction windows are
//     unreachable (Table 3's empty cells);
//   - the final-state hash covers cache data arrays, so a secret that is
//     merely resident (never encoded) still flips the hash — the
//     false-positive class the liveness evaluation quantifies;
//   - phase 4 decodes secrets by generating random receive programs, which
//     the paper observed never succeeding within 100k iterations.
package specdoctor

import (
	"fmt"
	"math/rand"
	"strings"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/isa"
	"dejavuzz/internal/scenario"
	"dejavuzz/internal/swapmem"
	"dejavuzz/internal/uarch"
)

// Options configures the baseline fuzzer.
type Options struct {
	Core      uarch.CoreKind
	Seed      int64
	MaxCycles int
}

// Case is one generated linear test program.
type Case struct {
	Program    *isa.Program
	Trigger    gen.TriggerType
	TrainInsts int // training overhead: the random prefix length
	TriggerPC  uint64
	// HasEncodeGadget marks transmit sections that truly encode the secret
	// (secret-indexed access) rather than merely loading it.
	HasEncodeGadget bool
}

// CaseResult is the outcome of differential execution.
type CaseResult struct {
	Triggered  bool
	HashDiffer bool
	CyclesA    int
	CyclesB    int
}

// Positive reports whether SpecDoctor's phase 3 would pass this case on to
// phase 4 (encoded state hash differs after a triggered rollback).
func (r *CaseResult) Positive() bool { return r.Triggered && r.HashDiffer }

// Fuzzer is the SpecDoctor reimplementation.
type Fuzzer struct {
	opts Options
	cfg  uarch.Config
	rng  *rand.Rand
}

// New builds the baseline for a core.
func New(opts Options) *Fuzzer {
	if opts.MaxCycles == 0 {
		opts.MaxCycles = 20000
	}
	return &Fuzzer{opts: opts, cfg: uarch.ConfigFor(opts.Core), rng: rand.New(rand.NewSource(opts.Seed))}
}

// SupportedTriggers lists the window types SpecDoctor's generator reaches,
// derived from the scenario registry's capability flags instead of a
// hardcoded list: a canonical family is reachable iff it needs no swapMem
// training isolation (SpecDoctor's programs are linear), contains no
// backward jumps in its window (discarded by its generator) and emits only
// valid accesses and legal instructions. With the shipped families this
// resolves to page-fault, memory-disambiguation, branch and indirect-jump
// windows — exactly the documented Table 3 support set — and stays correct
// as new families register.
func (f *Fuzzer) SupportedTriggers() []gen.TriggerType {
	var out []gen.TriggerType
	for _, t := range gen.AllTriggerTypes() {
		if supportsScenario(scenario.ByTrigger(t)) {
			out = append(out, t)
		}
	}
	return out
}

// supportsScenario is the capability filter behind SupportedTriggers.
func supportsScenario(s scenario.Scenario) bool {
	c := s.Caps()
	return !c.NeedsSwapMem && !c.BackwardJumps && !c.InvalidCode
}

// Supports reports generator reachability for a trigger type.
func (f *Fuzzer) Supports(t gen.TriggerType) bool {
	return supportsScenario(scenario.ByTrigger(t))
}

// randomFiller emits one random (valid, forward-only) instruction line.
func (f *Fuzzer) randomFiller() string {
	regs := []string{"t0", "t1", "t2", "t3", "t4", "s2", "s3", "s4"}
	r := func() string { return regs[f.rng.Intn(len(regs))] }
	switch f.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("add %s, %s, %s", r(), r(), r())
	case 1:
		return fmt.Sprintf("addi %s, %s, %d", r(), r(), f.rng.Intn(128))
	case 2:
		return fmt.Sprintf("xor %s, %s, %s", r(), r(), r())
	case 3:
		return fmt.Sprintf("andi %s, %s, %#x", r(), r(), f.rng.Intn(64))
	case 4:
		return fmt.Sprintf("ld %s, %d(a6)", r(), 8*f.rng.Intn(8))
	default:
		return fmt.Sprintf("sll %s, %s, %s", r(), r(), r())
	}
}

// GenCase produces one linear program for a supported trigger type.
// The random prefix is SpecDoctor's combined training-and-search cost: the
// multi-phase generator appends random instructions until a rollback occurs.
func (f *Fuzzer) GenCase(t gen.TriggerType) (*Case, error) {
	if !f.Supports(t) {
		return nil, fmt.Errorf("specdoctor: trigger %v unreachable by generator", t)
	}
	prefixLen := 100 + f.rng.Intn(40)
	var lines []string
	emit := func(l ...string) { lines = append(lines, l...) }

	// Common setup: a6 points at scratch data for random loads.
	emit(fmt.Sprintf("li a6, %#x", swapmem.DataBase+0x600))
	for i := 0; i < prefixLen; i++ {
		emit(f.randomFiller())
	}

	hasGadget := f.rng.Intn(4) == 0
	transmit := []string{
		fmt.Sprintf("li t0, %#x", uint64(swapmem.SecretAddr)),
		"ld s0, 0(t0)",
	}
	if hasGadget {
		transmit = append(transmit,
			"andi s1, s0, 0x3f",
			"slli s1, s1, 6",
			fmt.Sprintf("li t1, %#x", swapmem.DataBase+0x1000),
			"add t1, t1, s1",
			"ld t2, 0(t1)",
		)
	} else {
		transmit = append(transmit,
			"add t3, s0, s0",
			"xor t4, t3, s0",
		)
	}

	switch t {
	case gen.TrigPageFault:
		emit(fmt.Sprintf("li t6, %#x", swapmem.GuardPageBase+0x40))
		emit("trig:")
		emit("ld t6, 0(t6)")
		emit(transmit...)
		emit("ecall")
	case gen.TrigMemDisambig:
		ptr := swapmem.DataBase + 0x340
		emit(
			fmt.Sprintf("li a2, %#x", ptr),
			fmt.Sprintf("li a3, %#x", uint64(swapmem.SecretAddr)),
			"sd a3, 0(a2)",
			fmt.Sprintf("li a4, %#x", swapmem.DataBase+0x440),
			fmt.Sprintf("li t3, %#x", ptr*9),
			"li t4, 3",
			"div t3, t3, t4",
			"div t3, t3, t4",
		)
		emit("trig:")
		emit("sd a4, 0(t3)")
		emit("ld t1, 0(a2)")
		// Transmit via the stale pointer.
		emit("ld s0, 0(t1)")
		emit(transmit[2:]...)
		emit("ecall")
	case gen.TrigBranchMispred:
		lines = buildBranchCase(lines, transmit)
	case gen.TrigJumpMispred:
		lines = buildJumpCase(lines, transmit)
	}

	src := strings.Join(lines, "\n")
	prog, err := isa.Asm(swapmem.SwapBase, src)
	if err != nil {
		return nil, fmt.Errorf("specdoctor: %w", err)
	}
	trigPC, ok := prog.Labels["trig"]
	if !ok {
		return nil, fmt.Errorf("specdoctor: no trig label")
	}
	return &Case{
		Program:         prog,
		Trigger:         t,
		TrainInsts:      prefixLen + 8,
		TriggerPC:       trigPC,
		HasEncodeGadget: hasGadget,
	}, nil
}

// buildBranchCase appends the branch-mispredict structure: the trigger
// branch executes twice taken (training the direction and target), then once
// not-taken with a slowly resolving condition, so the transmit section at
// the taken target runs transiently. SpecDoctor has no training isolation,
// so the transmit section also executes architecturally during training —
// one of the weaknesses the paper documents.
func buildBranchCase(prefix, transmit []string) []string {
	lines := append([]string{}, prefix...)
	lines = append(lines,
		"li a3, 2",
		"head:",
		"beq a3, zero, finalsetup",
		"addi a3, a3, -1",
		"li a0, 1",
		"li a1, 1",
		"j trig",
		"finalsetup:",
		"li a0, 36",
		"li a1, 3",
		"div a0, a0, a1",
		"div a0, a0, a1", // a0=4 != a1=3, resolving slowly
		"j trig",
		"trig:",
		"beq a0, a1, win",
		"j exit",
		"win:",
	)
	lines = append(lines, transmit...)
	lines = append(lines,
		"j head",
		"exit:",
		"ecall",
	)
	return lines
}

// buildJumpCase appends the indirect-jump structure: the jalr at trig jumps
// to the transmit block three times (training the target predictor), then to
// the exit with a slowly resolving register, leaving the transmit transient.
func buildJumpCase(prefix, transmit []string) []string {
	lines := append([]string{}, prefix...)
	lines = append(lines,
		"li a3, 3",
		"head:",
		"beq a3, zero, finalsetup",
		"addi a3, a3, -1",
		"la a5, win",
		"j trig",
		"finalsetup:",
		"la a5, exit",
		"li t5, 9",
		"li t4, 3",
		"mul a5, a5, t5",
		"div a5, a5, t4",
		"div a5, a5, t4", // a5 = exit, resolving slowly
		"j trig",
		"trig:",
		"jalr x0, 0(a5)",
		"win:",
	)
	lines = append(lines, transmit...)
	lines = append(lines,
		"j head",
		"exit:",
		"ecall",
	)
	return lines
}

// schedule wraps the linear program as a single swap step (no swapping: the
// whole point of the baseline is the shared, linear address space).
func (c *Case) schedule() *swapmem.Schedule {
	s := &swapmem.Schedule{}
	s.Append(&swapmem.Packet{
		Name:  "specdoctor-case",
		Kind:  swapmem.PacketTransient,
		Image: c.Program,
		Entry: c.Program.Base,
	})
	return s
}

// Schedule exposes the case as a runnable swap schedule (coverage replay).
func (c *Case) Schedule() *swapmem.Schedule { return c.schedule() }

// RunCase executes the differential test: the same program under two
// secrets, comparing timing-component hashes (data arrays included — the
// source of SpecDoctor's false positives).
func (f *Fuzzer) RunCase(c *Case, secret []byte) *CaseResult {
	res := &CaseResult{}
	var hashes [2]uint64
	secrets := [2][]byte{secret, swapmem.FlipSecret(secret)}
	for i, sec := range secrets {
		space := swapmem.NewSpace(sec)
		coreInst := uarch.NewCore(f.cfg, space, uarch.IFTOff)
		rt := swapmem.NewRuntime(coreInst, space, c.schedule())
		rt.Start()
		coreInst.Run(f.opts.MaxCycles)
		hashes[i] = coreInst.TimingHash(true)
		if i == 0 {
			res.CyclesA = coreInst.Cycle
			want := expectedReason(c.Trigger)
			for _, s := range coreInst.Trace.Squashes {
				if s.Reason == want && s.AtPC == c.TriggerPC {
					res.Triggered = true
				}
			}
		} else {
			res.CyclesB = coreInst.Cycle
		}
	}
	res.HashDiffer = hashes[0] != hashes[1]
	return res
}

func expectedReason(t gen.TriggerType) uarch.SquashReason {
	switch t {
	case gen.TrigMemDisambig:
		return uarch.SquashMemOrdering
	case gen.TrigBranchMispred:
		return uarch.SquashBranchMispredict
	case gen.TrigJumpMispred:
		return uarch.SquashJumpMispredict
	default:
		return uarch.SquashException
	}
}

// CampaignResult summarises a SpecDoctor fuzzing campaign.
type CampaignResult struct {
	Iterations int
	Positives  []*Case
	// TriggerTO records average training overhead per triggered type.
	TriggerTO map[gen.TriggerType]float64
	// Phase4Attempts is the emulated random-decode effort (never succeeds,
	// matching the paper's week-long observation).
	Phase4Attempts int
}

// Campaign runs n iterations and collects phase-3 positives.
func (f *Fuzzer) Campaign(n int, secret []byte) *CampaignResult {
	res := &CampaignResult{Iterations: n, TriggerTO: make(map[gen.TriggerType]float64)}
	counts := make(map[gen.TriggerType]int)
	sup := f.SupportedTriggers()
	for i := 0; i < n; i++ {
		t := sup[f.rng.Intn(len(sup))]
		c, err := f.GenCase(t)
		if err != nil {
			continue
		}
		r := f.RunCase(c, secret)
		if r.Triggered {
			counts[t]++
			res.TriggerTO[t] += (float64(c.TrainInsts) - res.TriggerTO[t]) / float64(counts[t])
			if r.Positive() {
				res.Positives = append(res.Positives, c)
				res.Phase4Attempts += 100 // emulated random decode generation
			}
		}
	}
	return res
}
