package isa

import "fmt"

// ABI register names, index = register number.
var intRegNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

var fpRegNames = [32]string{
	"ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
	"fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
	"fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
	"fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
}

var regLookup = func() map[string]int {
	m := make(map[string]int)
	for i, n := range intRegNames {
		m[n] = i
		m[fmt.Sprintf("x%d", i)] = i
	}
	m["fp"] = 8
	return m
}()

var fregLookup = func() map[string]int {
	m := make(map[string]int)
	for i, n := range fpRegNames {
		m[n] = i
		m[fmt.Sprintf("f%d", i)] = i
	}
	return m
}()

// RegName returns the ABI name of integer register r.
func RegName(r int) string {
	if r >= 0 && r < 32 {
		return intRegNames[r]
	}
	return fmt.Sprintf("x?%d", r)
}

// FRegName returns the ABI name of floating-point register r.
func FRegName(r int) string {
	if r >= 0 && r < 32 {
		return fpRegNames[r]
	}
	return fmt.Sprintf("f?%d", r)
}

// RegNum parses an integer register name ("x5", "t0", ...). Returns -1 if unknown.
func RegNum(name string) int {
	if r, ok := regLookup[name]; ok {
		return r
	}
	return -1
}

// FRegNum parses a floating-point register name. Returns -1 if unknown.
func FRegNum(name string) int {
	if r, ok := fregLookup[name]; ok {
		return r
	}
	return -1
}

// Conventional register numbers used throughout the generator.
const (
	RegZero = 0
	RegRA   = 1
	RegSP   = 2
	RegT0   = 5
	RegT1   = 6
	RegT2   = 7
	RegS0   = 8
	RegS1   = 9
	RegA0   = 10
	RegA1   = 11
	RegA2   = 12
	RegA3   = 13
	RegA4   = 14
	RegA5   = 15
	RegS2   = 18
	RegT3   = 28
	RegT4   = 29
	RegT5   = 30
	RegT6   = 31
)
