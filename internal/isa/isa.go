// Package isa implements the RV64 instruction subset used by the DejaVuzz
// stimulus generator: RV64I, the M extension, a double-precision floating
// point subset (enough to exercise FPU port contention), and the system
// instructions the swap runtime relies on.
//
// The package provides binary encoding and decoding, a two-pass assembler
// with labels and the standard pseudo-instructions, and a disassembler used
// by trace logs and bug reports.
package isa

import "fmt"

// Op enumerates the decoded operations.
type Op int

const (
	OpInvalid Op = iota

	// RV64I register-register.
	OpAdd
	OpSub
	OpSll
	OpSlt
	OpSltu
	OpXor
	OpSrl
	OpSra
	OpOr
	OpAnd
	OpAddw
	OpSubw
	OpSllw
	OpSrlw
	OpSraw

	// RV64I register-immediate.
	OpAddi
	OpSlti
	OpSltiu
	OpXori
	OpOri
	OpAndi
	OpSlli
	OpSrli
	OpSrai
	OpAddiw
	OpSlliw
	OpSrliw
	OpSraiw

	// Upper immediates.
	OpLui
	OpAuipc

	// Control transfer.
	OpJal
	OpJalr
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu

	// Loads/stores.
	OpLb
	OpLh
	OpLw
	OpLd
	OpLbu
	OpLhu
	OpLwu
	OpSb
	OpSh
	OpSw
	OpSd

	// M extension.
	OpMul
	OpMulh
	OpMulhsu
	OpMulhu
	OpDiv
	OpDivu
	OpRem
	OpRemu
	OpMulw
	OpDivw
	OpDivuw
	OpRemw
	OpRemuw

	// D extension subset.
	OpFld
	OpFsd
	OpFaddD
	OpFsubD
	OpFmulD
	OpFdivD
	OpFmvXD
	OpFmvDX

	// System.
	OpFence
	OpEcall
	OpEbreak
	OpMret
	OpCsrrw
	OpCsrrs
	OpCsrrc

	opCount
)

var opNames = map[Op]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpSub: "sub", OpSll: "sll", OpSlt: "slt", OpSltu: "sltu",
	OpXor: "xor", OpSrl: "srl", OpSra: "sra", OpOr: "or", OpAnd: "and",
	OpAddw: "addw", OpSubw: "subw", OpSllw: "sllw", OpSrlw: "srlw", OpSraw: "sraw",
	OpAddi: "addi", OpSlti: "slti", OpSltiu: "sltiu", OpXori: "xori", OpOri: "ori",
	OpAndi: "andi", OpSlli: "slli", OpSrli: "srli", OpSrai: "srai",
	OpAddiw: "addiw", OpSlliw: "slliw", OpSrliw: "srliw", OpSraiw: "sraiw",
	OpLui: "lui", OpAuipc: "auipc",
	OpJal: "jal", OpJalr: "jalr",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge", OpBltu: "bltu", OpBgeu: "bgeu",
	OpLb: "lb", OpLh: "lh", OpLw: "lw", OpLd: "ld", OpLbu: "lbu", OpLhu: "lhu", OpLwu: "lwu",
	OpSb: "sb", OpSh: "sh", OpSw: "sw", OpSd: "sd",
	OpMul: "mul", OpMulh: "mulh", OpMulhsu: "mulhsu", OpMulhu: "mulhu",
	OpDiv: "div", OpDivu: "divu", OpRem: "rem", OpRemu: "remu",
	OpMulw: "mulw", OpDivw: "divw", OpDivuw: "divuw", OpRemw: "remw", OpRemuw: "remuw",
	OpFld: "fld", OpFsd: "fsd",
	OpFaddD: "fadd.d", OpFsubD: "fsub.d", OpFmulD: "fmul.d", OpFdivD: "fdiv.d",
	OpFmvXD: "fmv.x.d", OpFmvDX: "fmv.d.x",
	OpFence: "fence", OpEcall: "ecall", OpEbreak: "ebreak", OpMret: "mret",
	OpCsrrw: "csrrw", OpCsrrs: "csrrs", OpCsrrc: "csrrc",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Class groups operations by the pipeline resources they use.
type Class int

const (
	ClassALU Class = iota
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump    // jal
	ClassJumpReg // jalr (indirect jump / call / ret)
	ClassFPU
	ClassFDiv
	ClassSystem
	ClassInvalid
)

// Class returns the resource class of the operation.
func (o Op) Class() Class {
	switch o {
	case OpInvalid:
		return ClassInvalid
	case OpLb, OpLh, OpLw, OpLd, OpLbu, OpLhu, OpLwu, OpFld:
		return ClassLoad
	case OpSb, OpSh, OpSw, OpSd, OpFsd:
		return ClassStore
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return ClassBranch
	case OpJal:
		return ClassJump
	case OpJalr:
		return ClassJumpReg
	case OpMul, OpMulh, OpMulhsu, OpMulhu, OpMulw:
		return ClassMul
	case OpDiv, OpDivu, OpRem, OpRemu, OpDivw, OpDivuw, OpRemw, OpRemuw:
		return ClassDiv
	case OpFaddD, OpFsubD, OpFmulD, OpFmvXD, OpFmvDX:
		return ClassFPU
	case OpFdivD:
		return ClassFDiv
	case OpFence, OpEcall, OpEbreak, OpMret, OpCsrrw, OpCsrrs, OpCsrrc:
		return ClassSystem
	default:
		return ClassALU
	}
}

// MemSize returns the access size in bytes for loads/stores, else 0.
func (o Op) MemSize() int {
	switch o {
	case OpLb, OpLbu, OpSb:
		return 1
	case OpLh, OpLhu, OpSh:
		return 2
	case OpLw, OpLwu, OpSw:
		return 4
	case OpLd, OpSd, OpFld, OpFsd:
		return 8
	}
	return 0
}

// Inst is a decoded instruction.
type Inst struct {
	Op  Op
	Rd  int
	Rs1 int
	Rs2 int
	Imm int64 // sign-extended immediate (CSR number for csr ops)
	Raw uint32
}

// String renders a compact disassembly (see disasm.go for details).
func (i Inst) String() string { return Disasm(i) }

// FPDest reports whether the destination register is a floating-point reg.
func (i Inst) FPDest() bool {
	switch i.Op {
	case OpFld, OpFaddD, OpFsubD, OpFmulD, OpFdivD, OpFmvDX:
		return true
	}
	return false
}

// FPSources reports whether rs1/rs2 name floating-point registers.
func (i Inst) FPSources() (fp1, fp2 bool) {
	switch i.Op {
	case OpFaddD, OpFsubD, OpFmulD, OpFdivD:
		return true, true
	case OpFmvXD:
		return true, false
	case OpFsd:
		return false, true // rs2 holds the FP store data
	}
	return false, false
}

// --- Encoding -----------------------------------------------------------

func encR(opc, f3, f7 uint32, rd, rs1, rs2 int) uint32 {
	return opc | uint32(rd)<<7 | f3<<12 | uint32(rs1)<<15 | uint32(rs2)<<20 | f7<<25
}

func encI(opc, f3 uint32, rd, rs1 int, imm int64) uint32 {
	return opc | uint32(rd)<<7 | f3<<12 | uint32(rs1)<<15 | (uint32(imm)&0xfff)<<20
}

func encS(opc, f3 uint32, rs1, rs2 int, imm int64) uint32 {
	u := uint32(imm)
	return opc | (u&0x1f)<<7 | f3<<12 | uint32(rs1)<<15 | uint32(rs2)<<20 | (u>>5&0x7f)<<25
}

func encB(opc, f3 uint32, rs1, rs2 int, imm int64) uint32 {
	u := uint32(imm)
	return opc | (u>>11&1)<<7 | (u>>1&0xf)<<8 | f3<<12 |
		uint32(rs1)<<15 | uint32(rs2)<<20 | (u>>5&0x3f)<<25 | (u>>12&1)<<31
}

func encU(opc uint32, rd int, imm int64) uint32 {
	return opc | uint32(rd)<<7 | uint32(imm)&0xfffff000
}

func encJ(opc uint32, rd int, imm int64) uint32 {
	u := uint32(imm)
	return opc | uint32(rd)<<7 | (u>>12&0xff)<<12 | (u>>11&1)<<20 | (u>>1&0x3ff)<<21 | (u>>20&1)<<31
}

const (
	opcLoad   = 0x03
	opcLoadFP = 0x07
	opcImm    = 0x13
	opcAuipc  = 0x17
	opcImm32  = 0x1b
	opcStore  = 0x23
	opcStFP   = 0x27
	opcReg    = 0x33
	opcLui    = 0x37
	opcReg32  = 0x3b
	opcFP     = 0x53
	opcBranch = 0x63
	opcJalr   = 0x67
	opcJal    = 0x6f
	opcSystem = 0x73
	opcFence  = 0x0f
)

type encSpec struct {
	fmt byte // R I S B U J, or special: C(csr), X(fixed word)
	opc uint32
	f3  uint32
	f7  uint32
}

var encTable = map[Op]encSpec{
	OpAdd: {'R', opcReg, 0, 0x00}, OpSub: {'R', opcReg, 0, 0x20},
	OpSll: {'R', opcReg, 1, 0x00}, OpSlt: {'R', opcReg, 2, 0x00},
	OpSltu: {'R', opcReg, 3, 0x00}, OpXor: {'R', opcReg, 4, 0x00},
	OpSrl: {'R', opcReg, 5, 0x00}, OpSra: {'R', opcReg, 5, 0x20},
	OpOr: {'R', opcReg, 6, 0x00}, OpAnd: {'R', opcReg, 7, 0x00},
	OpAddw: {'R', opcReg32, 0, 0x00}, OpSubw: {'R', opcReg32, 0, 0x20},
	OpSllw: {'R', opcReg32, 1, 0x00}, OpSrlw: {'R', opcReg32, 5, 0x00},
	OpSraw: {'R', opcReg32, 5, 0x20},

	OpMul: {'R', opcReg, 0, 0x01}, OpMulh: {'R', opcReg, 1, 0x01},
	OpMulhsu: {'R', opcReg, 2, 0x01}, OpMulhu: {'R', opcReg, 3, 0x01},
	OpDiv: {'R', opcReg, 4, 0x01}, OpDivu: {'R', opcReg, 5, 0x01},
	OpRem: {'R', opcReg, 6, 0x01}, OpRemu: {'R', opcReg, 7, 0x01},
	OpMulw: {'R', opcReg32, 0, 0x01}, OpDivw: {'R', opcReg32, 4, 0x01},
	OpDivuw: {'R', opcReg32, 5, 0x01}, OpRemw: {'R', opcReg32, 6, 0x01},
	OpRemuw: {'R', opcReg32, 7, 0x01},

	OpAddi: {'I', opcImm, 0, 0}, OpSlti: {'I', opcImm, 2, 0},
	OpSltiu: {'I', opcImm, 3, 0}, OpXori: {'I', opcImm, 4, 0},
	OpOri: {'I', opcImm, 6, 0}, OpAndi: {'I', opcImm, 7, 0},
	OpSlli: {'I', opcImm, 1, 0x00}, OpSrli: {'I', opcImm, 5, 0x00},
	OpSrai:  {'I', opcImm, 5, 0x10},
	OpAddiw: {'I', opcImm32, 0, 0}, OpSlliw: {'I', opcImm32, 1, 0x00},
	OpSrliw: {'I', opcImm32, 5, 0x00}, OpSraiw: {'I', opcImm32, 5, 0x20},

	OpLui: {'U', opcLui, 0, 0}, OpAuipc: {'U', opcAuipc, 0, 0},
	OpJal: {'J', opcJal, 0, 0}, OpJalr: {'I', opcJalr, 0, 0},

	OpBeq: {'B', opcBranch, 0, 0}, OpBne: {'B', opcBranch, 1, 0},
	OpBlt: {'B', opcBranch, 4, 0}, OpBge: {'B', opcBranch, 5, 0},
	OpBltu: {'B', opcBranch, 6, 0}, OpBgeu: {'B', opcBranch, 7, 0},

	OpLb: {'I', opcLoad, 0, 0}, OpLh: {'I', opcLoad, 1, 0},
	OpLw: {'I', opcLoad, 2, 0}, OpLd: {'I', opcLoad, 3, 0},
	OpLbu: {'I', opcLoad, 4, 0}, OpLhu: {'I', opcLoad, 5, 0},
	OpLwu: {'I', opcLoad, 6, 0},
	OpSb:  {'S', opcStore, 0, 0}, OpSh: {'S', opcStore, 1, 0},
	OpSw: {'S', opcStore, 2, 0}, OpSd: {'S', opcStore, 3, 0},

	OpFld: {'I', opcLoadFP, 3, 0}, OpFsd: {'S', opcStFP, 3, 0},
	OpFaddD: {'R', opcFP, 0, 0x01}, OpFsubD: {'R', opcFP, 0, 0x05},
	OpFmulD: {'R', opcFP, 0, 0x09}, OpFdivD: {'R', opcFP, 0, 0x0d},
	OpFmvXD: {'R', opcFP, 0, 0x71}, OpFmvDX: {'R', opcFP, 0, 0x79},

	OpCsrrw: {'C', opcSystem, 1, 0}, OpCsrrs: {'C', opcSystem, 2, 0},
	OpCsrrc: {'C', opcSystem, 3, 0},
}

// Encode converts a decoded instruction back to its 32-bit word.
func Encode(i Inst) (uint32, error) {
	switch i.Op {
	case OpFence:
		return 0x0000000f, nil
	case OpEcall:
		return 0x00000073, nil
	case OpEbreak:
		return 0x00100073, nil
	case OpMret:
		return 0x30200073, nil
	case OpInvalid:
		return 0x00000000, nil
	}
	sp, ok := encTable[i.Op]
	if !ok {
		return 0, fmt.Errorf("isa: cannot encode %v", i.Op)
	}
	switch sp.fmt {
	case 'R':
		return encR(sp.opc, sp.f3, sp.f7, i.Rd, i.Rs1, i.Rs2), nil
	case 'I':
		imm := i.Imm
		switch i.Op {
		case OpSlli, OpSrli:
			imm = (int64(sp.f7) << 6) | (i.Imm & 0x3f)
		case OpSrai:
			imm = (0x10 << 6) | (i.Imm & 0x3f)
		case OpSlliw, OpSrliw:
			imm = (int64(sp.f7) << 5) | (i.Imm & 0x1f)
		case OpSraiw:
			imm = (0x20 << 5) | (i.Imm & 0x1f)
		}
		return encI(sp.opc, sp.f3, i.Rd, i.Rs1, imm), nil
	case 'S':
		return encS(sp.opc, sp.f3, i.Rs1, i.Rs2, i.Imm), nil
	case 'B':
		return encB(sp.opc, sp.f3, i.Rs1, i.Rs2, i.Imm), nil
	case 'U':
		return encU(sp.opc, i.Rd, i.Imm), nil
	case 'J':
		return encJ(sp.opc, i.Rd, i.Imm), nil
	case 'C':
		return encI(sp.opc, sp.f3, i.Rd, i.Rs1, i.Imm), nil
	}
	return 0, fmt.Errorf("isa: bad format for %v", i.Op)
}

// MustEncode is Encode that panics on error (generator-internal use).
func MustEncode(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}

// --- Decoding -----------------------------------------------------------

func signExt(v uint64, bits uint) int64 {
	shift := 64 - bits
	return int64(v<<shift) >> shift
}

// Decode decodes a 32-bit instruction word. Undecodable words return an
// Inst with Op == OpInvalid (illegal instruction).
func Decode(raw uint32) Inst {
	i := Inst{Raw: raw, Op: OpInvalid}
	opc := raw & 0x7f
	rd := int(raw >> 7 & 0x1f)
	f3 := raw >> 12 & 0x7
	rs1 := int(raw >> 15 & 0x1f)
	rs2 := int(raw >> 20 & 0x1f)
	f7 := raw >> 25 & 0x7f
	immI := signExt(uint64(raw>>20), 12)
	immS := signExt(uint64(raw>>25<<5|raw>>7&0x1f), 12)
	immB := signExt(uint64(raw>>31<<12|(raw>>7&1)<<11|(raw>>25&0x3f)<<5|(raw>>8&0xf)<<1), 13)
	immU := int64(int32(raw & 0xfffff000))
	immJ := signExt(uint64(raw>>31<<20|(raw>>12&0xff)<<12|(raw>>20&1)<<11|(raw>>21&0x3ff)<<1), 21)

	set := func(op Op, rdv, rs1v, rs2v int, imm int64) Inst {
		return Inst{Op: op, Rd: rdv, Rs1: rs1v, Rs2: rs2v, Imm: imm, Raw: raw}
	}

	switch opc {
	case opcLui:
		return set(OpLui, rd, 0, 0, immU)
	case opcAuipc:
		return set(OpAuipc, rd, 0, 0, immU)
	case opcJal:
		return set(OpJal, rd, 0, 0, immJ)
	case opcJalr:
		if f3 == 0 {
			return set(OpJalr, rd, rs1, 0, immI)
		}
	case opcBranch:
		ops := map[uint32]Op{0: OpBeq, 1: OpBne, 4: OpBlt, 5: OpBge, 6: OpBltu, 7: OpBgeu}
		if op, ok := ops[f3]; ok {
			return set(op, 0, rs1, rs2, immB)
		}
	case opcLoad:
		ops := map[uint32]Op{0: OpLb, 1: OpLh, 2: OpLw, 3: OpLd, 4: OpLbu, 5: OpLhu, 6: OpLwu}
		if op, ok := ops[f3]; ok {
			return set(op, rd, rs1, 0, immI)
		}
	case opcLoadFP:
		if f3 == 3 {
			return set(OpFld, rd, rs1, 0, immI)
		}
	case opcStore:
		ops := map[uint32]Op{0: OpSb, 1: OpSh, 2: OpSw, 3: OpSd}
		if op, ok := ops[f3]; ok {
			return set(op, 0, rs1, rs2, immS)
		}
	case opcStFP:
		if f3 == 3 {
			return set(OpFsd, 0, rs1, rs2, immS)
		}
	case opcImm:
		switch f3 {
		case 0:
			return set(OpAddi, rd, rs1, 0, immI)
		case 2:
			return set(OpSlti, rd, rs1, 0, immI)
		case 3:
			return set(OpSltiu, rd, rs1, 0, immI)
		case 4:
			return set(OpXori, rd, rs1, 0, immI)
		case 6:
			return set(OpOri, rd, rs1, 0, immI)
		case 7:
			return set(OpAndi, rd, rs1, 0, immI)
		case 1:
			if raw>>26 == 0 {
				return set(OpSlli, rd, rs1, 0, int64(raw>>20&0x3f))
			}
		case 5:
			switch raw >> 26 {
			case 0x00:
				return set(OpSrli, rd, rs1, 0, int64(raw>>20&0x3f))
			case 0x10:
				return set(OpSrai, rd, rs1, 0, int64(raw>>20&0x3f))
			}
		}
	case opcImm32:
		switch f3 {
		case 0:
			return set(OpAddiw, rd, rs1, 0, immI)
		case 1:
			if f7 == 0 {
				return set(OpSlliw, rd, rs1, 0, int64(rs2))
			}
		case 5:
			switch f7 {
			case 0x00:
				return set(OpSrliw, rd, rs1, 0, int64(rs2))
			case 0x20:
				return set(OpSraiw, rd, rs1, 0, int64(rs2))
			}
		}
	case opcReg:
		key := f7<<3 | f3
		ops := map[uint32]Op{
			0x000: OpAdd, 0x100: OpSub, 0x001: OpSll, 0x002: OpSlt, 0x003: OpSltu,
			0x004: OpXor, 0x005: OpSrl, 0x105: OpSra, 0x006: OpOr, 0x007: OpAnd,
			0x008: OpMul, 0x009: OpMulh, 0x00a: OpMulhsu, 0x00b: OpMulhu,
			0x00c: OpDiv, 0x00d: OpDivu, 0x00e: OpRem, 0x00f: OpRemu,
		}
		if op, ok := ops[key]; ok {
			return set(op, rd, rs1, rs2, 0)
		}
	case opcReg32:
		key := f7<<3 | f3
		ops := map[uint32]Op{
			0x000: OpAddw, 0x100: OpSubw, 0x001: OpSllw, 0x005: OpSrlw, 0x105: OpSraw,
			0x008: OpMulw, 0x00c: OpDivw, 0x00d: OpDivuw, 0x00e: OpRemw, 0x00f: OpRemuw,
		}
		if op, ok := ops[key]; ok {
			return set(op, rd, rs1, rs2, 0)
		}
	case opcFP:
		switch f7 {
		case 0x01:
			return set(OpFaddD, rd, rs1, rs2, 0)
		case 0x05:
			return set(OpFsubD, rd, rs1, rs2, 0)
		case 0x09:
			return set(OpFmulD, rd, rs1, rs2, 0)
		case 0x0d:
			return set(OpFdivD, rd, rs1, rs2, 0)
		case 0x71:
			if rs2 == 0 && f3 == 0 {
				return set(OpFmvXD, rd, rs1, 0, 0)
			}
		case 0x79:
			if rs2 == 0 && f3 == 0 {
				return set(OpFmvDX, rd, rs1, 0, 0)
			}
		}
	case opcFence:
		// Fence ordering bits are ignored by the model; normalise operands.
		return set(OpFence, 0, 0, 0, 0)
	case opcSystem:
		switch {
		case raw == 0x00000073:
			return set(OpEcall, 0, 0, 0, 0)
		case raw == 0x00100073:
			return set(OpEbreak, 0, 0, 0, 0)
		case raw == 0x30200073:
			return set(OpMret, 0, 0, 0, 0)
		case f3 == 1:
			return set(OpCsrrw, rd, rs1, 0, int64(raw>>20))
		case f3 == 2:
			return set(OpCsrrs, rd, rs1, 0, int64(raw>>20))
		case f3 == 3:
			return set(OpCsrrc, rd, rs1, 0, int64(raw>>20))
		}
	}
	return i
}

// IllegalWord is a canonical undecodable instruction word.
const IllegalWord uint32 = 0x00000000

// NopWord is the canonical nop (addi x0, x0, 0).
const NopWord uint32 = 0x00000013

// Nop returns the decoded canonical nop.
func Nop() Inst { return Inst{Op: OpAddi, Raw: NopWord} }
