package isa

import (
	"testing"
	"testing/quick"
)

func TestAsmBasic(t *testing.T) {
	p, err := Asm(0x1000, `
		start:
			addi t0, zero, 5
			add  t1, t0, t0
			beq  t1, t0, start
			nop
			j done
			sub t2, t1, t0
		done:
			ecall
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) != 7 {
		t.Fatalf("got %d words, want 7", len(p.Words))
	}
	if p.Labels["start"] != 0x1000 || p.Labels["done"] != 0x1018 {
		t.Fatalf("labels: %#v", p.Labels)
	}
	// beq t1, t0, start at pc 0x1008 -> offset -8
	d := Decode(p.Words[2])
	if d.Op != OpBeq || d.Imm != -8 {
		t.Fatalf("branch decode: %+v", d)
	}
	// j done at pc 0x1010 -> offset +8
	d = Decode(p.Words[4])
	if d.Op != OpJal || d.Rd != 0 || d.Imm != 8 {
		t.Fatalf("jump decode: %+v", d)
	}
}

func TestAsmLoadsStores(t *testing.T) {
	p := MustAsm(0, `
		ld a0, 8(sp)
		sd a0, -8(sp)
		lbu a1, 0(a0)
		fld fa0, 16(a0)
		fsd fa0, 24(a0)
	`)
	want := []struct {
		op  Op
		imm int64
	}{{OpLd, 8}, {OpSd, -8}, {OpLbu, 0}, {OpFld, 16}, {OpFsd, 24}}
	for i, w := range want {
		d := Decode(p.Words[i])
		if d.Op != w.op || d.Imm != w.imm {
			t.Errorf("word %d: got %v imm=%d, want %v imm=%d", i, d.Op, d.Imm, w.op, w.imm)
		}
	}
}

func TestAsmPseudo(t *testing.T) {
	p := MustAsm(0x2000, `
		la t0, target
		li t1, 42
		mv a0, t1
		not a1, a0
		call target
		ret
		jr t0
		beqz a0, target
	target:
		nop
	`)
	// la expands to auipc+addi resolving to the label.
	d0 := Decode(p.Words[0])
	d1 := Decode(p.Words[1])
	if d0.Op != OpAuipc || d1.Op != OpAddi {
		t.Fatalf("la expansion: %v %v", d0.Op, d1.Op)
	}
	target := 0x2000 + uint64(d0.Imm) + uint64(d1.Imm)
	if target != p.Labels["target"] {
		t.Fatalf("la resolves to %#x, want %#x", target, p.Labels["target"])
	}
	if d := Decode(p.Words[2]); d.Op != OpAddi || d.Imm != 42 {
		t.Fatalf("li 42: %+v", d)
	}
}

func TestAsmIllegalAndWord(t *testing.T) {
	p := MustAsm(0, `
		.illegal
		.word 0xdeadbeef
	`)
	if p.Words[0] != IllegalWord || p.Words[1] != 0xdeadbeef {
		t.Fatalf("words: %#x", p.Words)
	}
}

func TestAsmErrors(t *testing.T) {
	for _, src := range []string{
		"bogus t0, t1",
		"addi t0",
		"ld a0, 8[sp]",
		"li t0",
		"dup: nop\ndup: nop",
	} {
		if _, err := Asm(0, src); err == nil {
			t.Errorf("Asm(%q) succeeded, want error", src)
		}
	}
}

// Property: li materialises arbitrary 64-bit constants exactly (verified by
// symbolic execution of the emitted sequence).
func TestLiMaterialisation(t *testing.T) {
	exec := func(seq []Inst) uint64 {
		var regs [32]uint64
		for _, in := range seq {
			switch in.Op {
			case OpAddi:
				regs[in.Rd] = regs[in.Rs1] + uint64(in.Imm)
			case OpAddiw:
				regs[in.Rd] = uint64(int64(int32(uint32(regs[in.Rs1]) + uint32(in.Imm))))
			case OpLui:
				regs[in.Rd] = uint64(in.Imm)
			case OpSlli:
				regs[in.Rd] = regs[in.Rs1] << uint(in.Imm)
			case OpOri:
				regs[in.Rd] = regs[in.Rs1] | uint64(in.Imm)
			default:
				t.Fatalf("unexpected op in li sequence: %v", in.Op)
			}
		}
		return regs[5]
	}
	check := func(v int64) bool {
		return exec(liSeq(5, v)) == uint64(v)
	}
	for _, v := range []int64{0, 1, -1, 2047, -2048, 2048, 0x7fffffff, -0x80000000,
		0x80000000, 0x123456789abcdef0 & ^int64(0), -0x123456789abcdef0,
		int64(^uint64(0) >> 1), -int64(^uint64(0)>>1) - 1} {
		if !check(v) {
			t.Errorf("li %#x materialises to %#x", v, exec(liSeq(5, v)))
		}
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
