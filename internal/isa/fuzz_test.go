package isa

import (
	"strings"
	"testing"
)

// fuzzBase is an arbitrary aligned assembly base address.
const fuzzBase uint64 = 0x8000_0000

// FuzzAsmDisasmRoundTrip checks the assemble→disassemble→assemble fixpoint:
// for every word the assembler emits, disassembling it must produce text the
// assembler accepts again, and reassembling that text (at the word's
// original PC, since branch immediates are PC-relative) must yield a
// semantically identical instruction with stable disassembly.
func FuzzAsmDisasmRoundTrip(f *testing.F) {
	// Seed corpus: every syntactic form the generator and PoCs emit.
	seeds := []string{
		"nop",
		"li t0, 42\nli t1, 0x80001000\nli t2, -1",
		"li a0, 0x8000000000000000",
		"add t0, t1, t2\nsub t3, t4, t5\nmul t0, t0, t1\nxor t2, t2, t3",
		"andi t4, t5, 0x3f\nslli s1, s0, 6\nsrli t1, t2, 3\nsrai t3, t4, 1",
		"ld t2, 0(t1)\nsd a3, 8(a2)\nlw t0, 16(sp)\nsw t1, -4(s0)",
		"lb t0, 1(t1)\nlbu t2, 2(t3)\nlh t4, 4(t5)\nlhu t6, 6(a0)",
		"loop:\naddi a3, a3, -1\nbnez a3, loop\necall",
		"beq a0, a1, done\nbne t0, t1, done\nblt a2, a3, done\nbge a4, a5, done\ndone:\nnop",
		"j fwd\nnop\nfwd:\necall",
		"jal ra, 8\njalr x0, 0(a0)\njalr ra, 28(t4)\nret",
		"call 0x80000100\nauipc t4, 0\nlui t0, 0x12345",
		"fmv.d.x fa0, s0\nfdiv.d fa1, fa0, fa0\nfadd.d fa2, fa1, fa0\nfmv.x.d t0, fa2",
		"fld fa0, 0(t0)\nfsd fa1, 8(t1)",
		"mv t0, t1\nnot t2, t3\nneg t4, t5\nseqz t6, a0\nsnez a1, a2",
		"ecall\nebreak\nfence\nmret",
		"csrrw t0, 0x300, t1\ncsrrs t2, 0x341, t3",
		".word 0xdeadbeef\n.illegal\nnop",
		"beq zero, zero, 8\necall\necall",
		"addw a0, a1, a2\nsubw a3, a4, a5\naddiw t0, t1, -12\nslliw t2, t3, 5",
		"div a0, a0, a1\ndivu t0, t1, t2\nrem t3, t4, t5\nremu t6, a0, a1",
		"sltu t0, t1, t2\nslt t3, t4, t5\nslti t6, a0, 7\nsltiu a1, a2, 0xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Asm(fuzzBase, src)
		if err != nil {
			t.Skip() // not an assemblable program; nothing to round-trip
		}
		for idx, w := range p.Words {
			inst := Decode(w)
			if inst.Op == OpInvalid {
				// Raw data (.word/.illegal) has no disassembly contract.
				continue
			}
			pc := p.Base + 4*uint64(idx)
			text := Disasm(inst)
			p2, err := Asm(pc, text)
			if err != nil {
				t.Fatalf("word %#08x at %#x: disassembly %q does not reassemble: %v", w, pc, text, err)
			}
			if len(p2.Words) != 1 {
				t.Fatalf("word %#08x: disassembly %q reassembles to %d words", w, text, len(p2.Words))
			}
			got := Decode(p2.Words[0])
			// Compare semantics, not raw bits: the assembler may emit a
			// different-but-equivalent canonical encoding.
			inst.Raw, got.Raw = 0, 0
			if got != inst {
				t.Fatalf("word %#08x at %#x: round-trip drift\n  text: %q\n  want: %+v\n  got:  %+v",
					w, pc, text, inst, got)
			}
			if again := Disasm(got); again != text {
				t.Fatalf("word %#08x: disassembly unstable: %q -> %q", w, text, again)
			}
		}
	})
}

// TestAsmDisasmSeedCorpus pins the fixpoint on the seed corpus even when the
// fuzz engine is not running (plain `go test` executes f.Add entries too,
// but this keeps a named regression point).
func TestAsmDisasmSeedCorpus(t *testing.T) {
	src := strings.Join([]string{
		"li t6, 0x80002000",
		"trig:",
		"ld t6, 0(t6)",
		"andi s1, s0, 0x3f",
		"slli s1, s1, 6",
		"add t1, t1, s1",
		"ld t2, 0(t1)",
		"ecall",
	}, "\n")
	p, err := Asm(fuzzBase, src)
	if err != nil {
		t.Fatal(err)
	}
	for idx, w := range p.Words {
		inst := Decode(w)
		if inst.Op == OpInvalid {
			t.Fatalf("word %d (%#08x) decodes as invalid", idx, w)
		}
		text := Disasm(inst)
		p2, err := Asm(p.Base+4*uint64(idx), text)
		if err != nil {
			t.Fatalf("disassembly %q does not reassemble: %v", text, err)
		}
		got, want := Decode(p2.Words[0]), inst
		got.Raw, want.Raw = 0, 0
		if got != want {
			t.Fatalf("round-trip drift for %q: %+v vs %+v", text, want, got)
		}
	}
}
