package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled instruction image with its base address.
type Program struct {
	Base   uint64
	Words  []uint32
	Labels map[string]uint64

	// bytes is the little-endian rendering, computed eagerly by Asm so the
	// hot packet-load path shares one buffer instead of re-rendering per
	// load. Hand-built Programs leave it nil and render on demand.
	bytes []byte
}

// Size returns the image size in bytes.
func (p *Program) Size() int { return len(p.Words) * 4 }

// Bytes renders the image as little-endian bytes. The returned slice is
// shared across calls for Asm-built programs; callers must not mutate it.
func (p *Program) Bytes() []byte {
	if p.bytes != nil {
		return p.bytes
	}
	return p.renderBytes()
}

func (p *Program) renderBytes() []byte {
	out := make([]byte, 0, len(p.Words)*4)
	for _, w := range p.Words {
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}

// Asm assembles RISC-V assembly text at the given base address.
//
// Supported syntax: one instruction or "label:" per line, "#" comments,
// ".word <value>" literals, and the pseudo-instructions nop, li, la, mv,
// not, neg, seqz, snez, j, jr, jalr rs, call, ret, beqz, bnez. `la` expands
// to auipc+addi; `li` expands to the shortest constant materialisation
// sequence. Expansion sizes are fixed in the first pass so labels resolve
// deterministically.
func Asm(base uint64, src string) (*Program, error) {
	type line struct {
		no   int
		text string
	}
	lines := make([]line, 0, strings.Count(src, "\n")+1)
	rest := src
	for no := 1; rest != ""; no++ {
		var text string
		if i := strings.IndexByte(rest, '\n'); i >= 0 {
			text, rest = rest[:i], rest[i+1:]
		} else {
			text, rest = rest, ""
		}
		// Two IndexByte scans beat IndexAny's rune loop on this hot path.
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		if i := strings.IndexByte(text, ';'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		lines = append(lines, line{no, text})
	}

	// Pass 1: sizes and labels.
	labels := make(map[string]uint64)
	pc := base
	type item struct {
		no    int
		mnem  string
		args  []string
		addr  uint64
		words int
	}
	items := make([]item, 0, len(lines))
	for _, ln := range lines {
		text := ln.text
		for {
			colon := strings.Index(text, ":")
			if colon < 0 {
				break
			}
			name := strings.TrimSpace(text[:colon])
			if !isIdent(name) {
				return nil, fmt.Errorf("asm:%d: bad label %q", ln.no, name)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("asm:%d: duplicate label %q", ln.no, name)
			}
			labels[name] = pc
			text = strings.TrimSpace(text[colon+1:])
		}
		if text == "" {
			continue
		}
		mnem, args := splitInst(text)
		n, err := instWords(mnem, args)
		if err != nil {
			return nil, fmt.Errorf("asm:%d: %v", ln.no, err)
		}
		items = append(items, item{ln.no, mnem, args, pc, n})
		pc += uint64(n) * 4
	}

	// Pass 2: encode.
	p := &Program{Base: base, Labels: labels}
	p.Words = make([]uint32, 0, (pc-base)/4)
	for _, it := range items {
		// Fast path for padding: generated stimuli are dominated by
		// alignment nops, which always encode to the same word.
		if it.mnem == "nop" && len(it.args) == 0 {
			p.Words = append(p.Words, nopWord)
			continue
		}
		insts, err := encodeInst(it.mnem, it.args, it.addr, labels)
		if err != nil {
			return nil, fmt.Errorf("asm:%d: %v", it.no, err)
		}
		ws, err := instsToWords(insts)
		if err != nil {
			return nil, fmt.Errorf("asm:%d: %v", it.no, err)
		}
		if len(ws) != it.words {
			return nil, fmt.Errorf("asm:%d: internal size mismatch for %s (%d != %d)", it.no, it.mnem, len(ws), it.words)
		}
		p.Words = append(p.Words, ws...)
	}
	p.bytes = p.renderBytes()
	return p, nil
}

// nopWord is the canonical encoding of nop (addi x0, x0, 0).
const nopWord uint32 = 0x0000_0013

// MustAsm is Asm that panics on error; for static firmware images and tests.
func MustAsm(base uint64, src string) *Program {
	p, err := Asm(base, src)
	if err != nil {
		panic(err)
	}
	return p
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitInst(text string) (string, []string) {
	// Fast path: a bare mnemonic (nop/ecall/ret/...) needs no splitting.
	sp := strings.IndexAny(text, " \t")
	if sp < 0 {
		return strings.ToLower(text), nil
	}
	mnem := strings.ToLower(text[:sp])
	rest := strings.TrimSpace(text[sp:])
	if rest == "" {
		return mnem, nil
	}
	// Split the operand list manually: one allocation for the args slice
	// instead of Fields + Split intermediates (this runs per assembled
	// instruction).
	args := make([]string, 0, 4)
	for {
		i := strings.IndexByte(rest, ',')
		if i < 0 {
			args = append(args, strings.TrimSpace(rest))
			return mnem, args
		}
		args = append(args, strings.TrimSpace(rest[:i]))
		rest = rest[i+1:]
	}
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	iv := int64(v)
	if neg {
		iv = -iv
	}
	return iv, nil
}

// liWords returns the number of instructions li expands to for value v —
// via a stack buffer, so the size pass does not allocate a sequence it
// immediately discards.
func liWords(v int64) int {
	var buf [24]Inst
	return len(liSeqInto(buf[:0], 0, v))
}

// liSeq produces the materialisation sequence for an arbitrary 64-bit value.
func liSeq(rd int, v int64) []Inst { return liSeqInto(nil, rd, v) }

// liSeqInto appends the materialisation sequence to dst.
func liSeqInto(dst []Inst, rd int, v int64) []Inst {
	if v >= -2048 && v < 2048 {
		return append(dst, Inst{Op: OpAddi, Rd: rd, Rs1: 0, Imm: v})
	}
	if v >= -(1<<31) && v < 1<<31 {
		lo := v << 52 >> 52 // sign-extended low 12
		hi := v - lo
		if hi<<32>>32 != hi { // rounding overflowed 32 bits: use shifted path
			seq := liSeqInto(dst, rd, v>>12)
			seq = append(seq, Inst{Op: OpSlli, Rd: rd, Rs1: rd, Imm: 12})
			if lo12 := v & 0xfff; lo12 != 0 {
				seq = append(seq, Inst{Op: OpOri, Rd: rd, Rs1: rd, Imm: int64(lo12 & 0x7ff)})
				if lo12>>11 != 0 {
					// top bit of lo12 set: handled by extra addi
					seq = append(seq, Inst{Op: OpAddi, Rd: rd, Rs1: rd, Imm: 1 << 11})
				}
			}
			return seq
		}
		seq := append(dst, Inst{Op: OpLui, Rd: rd, Imm: hi})
		if lo != 0 {
			seq = append(seq, Inst{Op: OpAddiw, Rd: rd, Rs1: rd, Imm: lo})
		}
		return seq
	}
	lo := v << 52 >> 52
	hi := (v - lo) >> 12
	seq := liSeqInto(dst, rd, hi)
	seq = append(seq, Inst{Op: OpSlli, Rd: rd, Rs1: rd, Imm: 12})
	if lo != 0 {
		seq = append(seq, Inst{Op: OpAddi, Rd: rd, Rs1: rd, Imm: lo})
	}
	return seq
}

var simpleMnems = func() map[string]Op {
	m := make(map[string]Op)
	for op, name := range opNames {
		m[name] = op
	}
	delete(m, "invalid")
	return m
}()

func instWords(mnem string, args []string) (int, error) {
	switch mnem {
	case "nop", "ret", "mv", "not", "neg", "seqz", "snez", "j", "jr", "beqz", "bnez", "fmv.d":
		return 1, nil
	case "la", "call":
		return 2, nil
	case "li":
		if len(args) != 2 {
			return 0, fmt.Errorf("li needs 2 args")
		}
		v, err := parseImm(args[1])
		if err != nil {
			return 0, err
		}
		return liWords(v), nil
	case ".word":
		return 1, nil
	case ".illegal":
		return 1, nil
	}
	if _, ok := simpleMnems[mnem]; ok {
		return 1, nil
	}
	return 0, fmt.Errorf("unknown mnemonic %q", mnem)
}

func reg(arg string) (int, error) {
	if r := RegNum(arg); r >= 0 {
		return r, nil
	}
	return 0, fmt.Errorf("bad register %q", arg)
}

func freg(arg string) (int, error) {
	if r := FRegNum(arg); r >= 0 {
		return r, nil
	}
	return 0, fmt.Errorf("bad fp register %q", arg)
}

// parseMem parses "imm(rs1)".
func parseMem(arg string) (int64, int, error) {
	open := strings.Index(arg, "(")
	close := strings.LastIndex(arg, ")")
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", arg)
	}
	offStr := strings.TrimSpace(arg[:open])
	var off int64
	if offStr != "" {
		v, err := parseImm(offStr)
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	r, err := reg(strings.TrimSpace(arg[open+1 : close]))
	if err != nil {
		return 0, 0, err
	}
	return off, r, nil
}

func resolve(arg string, labels map[string]uint64) (int64, bool) {
	if v, ok := labels[arg]; ok {
		return int64(v), true
	}
	return 0, false
}

func immOrLabel(arg string, labels map[string]uint64) (int64, error) {
	if v, ok := resolve(arg, labels); ok {
		return v, nil
	}
	return parseImm(arg)
}

func branchTarget(arg string, pc uint64, labels map[string]uint64) (int64, error) {
	if v, ok := resolve(arg, labels); ok {
		return v - int64(pc), nil
	}
	v, err := parseImm(arg)
	if err != nil {
		return 0, err
	}
	return v, nil // raw immediates are already pc-relative offsets
}

func encodeInst(mnem string, args []string, pc uint64, labels map[string]uint64) ([]Inst, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", mnem, n, len(args))
		}
		return nil
	}
	one := func(i Inst) []Inst { return []Inst{i} }

	switch mnem {
	case "nop":
		return one(Inst{Op: OpAddi}), nil
	case ".word":
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := parseImm(args[0])
		if err != nil {
			return nil, err
		}
		return one(rawInst(uint32(v))), nil
	case ".illegal":
		return one(rawInst(IllegalWord)), nil
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(args[0])
		if err != nil {
			return nil, err
		}
		rs, err := reg(args[1])
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: OpAddi, Rd: rd, Rs1: rs}), nil
	case "not":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, _ := reg(args[0])
		rs, err := reg(args[1])
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: OpXori, Rd: rd, Rs1: rs, Imm: -1}), nil
	case "neg":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, _ := reg(args[0])
		rs, err := reg(args[1])
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: OpSub, Rd: rd, Rs1: 0, Rs2: rs}), nil
	case "seqz":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, _ := reg(args[0])
		rs, err := reg(args[1])
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: OpSltiu, Rd: rd, Rs1: rs, Imm: 1}), nil
	case "snez":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, _ := reg(args[0])
		rs, err := reg(args[1])
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: OpSltu, Rd: rd, Rs1: 0, Rs2: rs}), nil
	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(args[0])
		if err != nil {
			return nil, err
		}
		v, err := parseImm(args[1])
		if err != nil {
			return nil, err
		}
		return liSeq(rd, v), nil
	case "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(args[0])
		if err != nil {
			return nil, err
		}
		target, err := immOrLabel(args[1], labels)
		if err != nil {
			return nil, err
		}
		delta := target - int64(pc)
		lo := delta << 52 >> 52
		hi := delta - lo
		return []Inst{
			{Op: OpAuipc, Rd: rd, Imm: hi},
			{Op: OpAddi, Rd: rd, Rs1: rd, Imm: lo},
		}, nil
	case "j":
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := branchTarget(args[0], pc, labels)
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: OpJal, Rd: 0, Imm: off}), nil
	case "jr":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := reg(args[0])
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: OpJalr, Rd: 0, Rs1: rs}), nil
	case "ret":
		return one(Inst{Op: OpJalr, Rd: 0, Rs1: RegRA}), nil
	case "call":
		if err := need(1); err != nil {
			return nil, err
		}
		target, err := immOrLabel(args[0], labels)
		if err != nil {
			return nil, err
		}
		delta := target - int64(pc)
		lo := delta << 52 >> 52
		hi := delta - lo
		return []Inst{
			{Op: OpAuipc, Rd: RegT2, Imm: hi},
			{Op: OpJalr, Rd: RegRA, Rs1: RegT2, Imm: lo},
		}, nil
	case "beqz":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := reg(args[0])
		if err != nil {
			return nil, err
		}
		off, err := branchTarget(args[1], pc, labels)
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: OpBeq, Rs1: rs, Rs2: 0, Imm: off}), nil
	case "bnez":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := reg(args[0])
		if err != nil {
			return nil, err
		}
		off, err := branchTarget(args[1], pc, labels)
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: OpBne, Rs1: rs, Rs2: 0, Imm: off}), nil
	case "fmv.d":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := freg(args[0])
		if err != nil {
			return nil, err
		}
		rs, err := freg(args[1])
		if err != nil {
			return nil, err
		}
		// fmv.d is fsgnj.d in real RV; model as fadd.d rd, rs, f0-is-wrong,
		// so use fmul-free move: encode as fadd.d rd, rs, rs is wrong too.
		// We encode fmv.d as fadd.d with rs2 = f0? Keep simple: fadd.d rd, rs, f0.
		return one(Inst{Op: OpFaddD, Rd: rd, Rs1: rs, Rs2: 0}), nil
	}

	op, ok := simpleMnems[mnem]
	if !ok {
		return nil, fmt.Errorf("unknown mnemonic %q", mnem)
	}
	if op == OpLui || op == OpAuipc {
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(args[0])
		if err != nil {
			return nil, err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return nil, err
		}
		return []Inst{{Op: op, Rd: rd, Imm: imm << 12}}, nil
	}
	switch op.Class() {
	case ClassBranch:
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err := reg(args[0])
		if err != nil {
			return nil, err
		}
		rs2, err := reg(args[1])
		if err != nil {
			return nil, err
		}
		off, err := branchTarget(args[2], pc, labels)
		if err != nil {
			return nil, err
		}
		return []Inst{{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}}, nil
	case ClassJump:
		// jal [rd,] target
		if len(args) != 1 && len(args) != 2 {
			return nil, fmt.Errorf("%s needs 1 or 2 operands, got %d", mnem, len(args))
		}
		rd := RegRA
		targetArg := args[0]
		if len(args) == 2 {
			r, err := reg(args[0])
			if err != nil {
				return nil, err
			}
			rd = r
			targetArg = args[1]
		}
		off, err := branchTarget(targetArg, pc, labels)
		if err != nil {
			return nil, err
		}
		return []Inst{{Op: op, Rd: rd, Imm: off}}, nil
	case ClassJumpReg:
		// jalr rd, imm(rs1) | jalr rd, rs1, imm | jalr rs1
		switch len(args) {
		case 1:
			rs, err := reg(args[0])
			if err != nil {
				return nil, err
			}
			return []Inst{{Op: op, Rd: RegRA, Rs1: rs}}, nil
		case 2:
			rd, err := reg(args[0])
			if err != nil {
				return nil, err
			}
			off, rs1, err := parseMem(args[1])
			if err != nil {
				return nil, err
			}
			return []Inst{{Op: op, Rd: rd, Rs1: rs1, Imm: off}}, nil
		case 3:
			rd, err := reg(args[0])
			if err != nil {
				return nil, err
			}
			rs1, err := reg(args[1])
			if err != nil {
				return nil, err
			}
			imm, err := parseImm(args[2])
			if err != nil {
				return nil, err
			}
			return []Inst{{Op: op, Rd: rd, Rs1: rs1, Imm: imm}}, nil
		}
		return nil, fmt.Errorf("jalr: bad operands")
	case ClassLoad:
		if err := need(2); err != nil {
			return nil, err
		}
		var rd int
		var err error
		if op == OpFld {
			rd, err = freg(args[0])
		} else {
			rd, err = reg(args[0])
		}
		if err != nil {
			return nil, err
		}
		off, rs1, err := parseMem(args[1])
		if err != nil {
			return nil, err
		}
		return []Inst{{Op: op, Rd: rd, Rs1: rs1, Imm: off}}, nil
	case ClassStore:
		if err := need(2); err != nil {
			return nil, err
		}
		var rs2 int
		var err error
		if op == OpFsd {
			rs2, err = freg(args[0])
		} else {
			rs2, err = reg(args[0])
		}
		if err != nil {
			return nil, err
		}
		off, rs1, err := parseMem(args[1])
		if err != nil {
			return nil, err
		}
		return []Inst{{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}}, nil
	case ClassSystem:
		switch op {
		case OpEcall, OpEbreak, OpMret, OpFence:
			return []Inst{{Op: op}}, nil
		case OpCsrrw, OpCsrrs, OpCsrrc:
			if err := need(3); err != nil {
				return nil, err
			}
			rd, err := reg(args[0])
			if err != nil {
				return nil, err
			}
			csr, err := parseImm(args[1])
			if err != nil {
				return nil, err
			}
			rs1, err := reg(args[2])
			if err != nil {
				return nil, err
			}
			return []Inst{{Op: op, Rd: rd, Rs1: rs1, Imm: csr}}, nil
		}
	case ClassFPU, ClassFDiv:
		switch op {
		case OpFmvXD:
			if err := need(2); err != nil {
				return nil, err
			}
			rd, err := reg(args[0])
			if err != nil {
				return nil, err
			}
			rs, err := freg(args[1])
			if err != nil {
				return nil, err
			}
			return []Inst{{Op: op, Rd: rd, Rs1: rs}}, nil
		case OpFmvDX:
			if err := need(2); err != nil {
				return nil, err
			}
			rd, err := freg(args[0])
			if err != nil {
				return nil, err
			}
			rs, err := reg(args[1])
			if err != nil {
				return nil, err
			}
			return []Inst{{Op: op, Rd: rd, Rs1: rs}}, nil
		default:
			if err := need(3); err != nil {
				return nil, err
			}
			rd, err := freg(args[0])
			if err != nil {
				return nil, err
			}
			rs1, err := freg(args[1])
			if err != nil {
				return nil, err
			}
			rs2, err := freg(args[2])
			if err != nil {
				return nil, err
			}
			return []Inst{{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}}, nil
		}
	}
	// Generic R/I formats.
	if len(args) == 3 {
		rd, err := reg(args[0])
		if err != nil {
			return nil, err
		}
		rs1, err := reg(args[1])
		if err != nil {
			return nil, err
		}
		// Probe the register form without reg()'s error allocation — this
		// branch is taken (and fails) for every immediate-form instruction.
		if rs2 := RegNum(args[2]); rs2 >= 0 {
			return []Inst{{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}}, nil
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return nil, err
		}
		return []Inst{{Op: op, Rd: rd, Rs1: rs1, Imm: imm}}, nil
	}
	return nil, fmt.Errorf("%s: bad operands %v", mnem, args)
}

// rawInst wraps a raw word so Program can carry data words and illegal
// encodings through the same pipeline.
func rawInst(w uint32) Inst {
	d := Decode(w)
	d.Raw = w
	return d
}

// assemble list of Insts into words is shared by encodeInst callers.
func instsToWords(insts []Inst) ([]uint32, error) {
	out := make([]uint32, 0, len(insts))
	for _, in := range insts {
		if in.Raw != 0 && in.Op == OpInvalid {
			out = append(out, in.Raw)
			continue
		}
		if in.Op == OpInvalid {
			out = append(out, in.Raw)
			continue
		}
		w, err := Encode(in)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}
