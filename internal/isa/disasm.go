package isa

import "fmt"

// Disasm renders a decoded instruction in conventional assembly syntax.
func Disasm(i Inst) string {
	switch i.Op {
	case OpInvalid:
		return fmt.Sprintf(".illegal %#08x", i.Raw)
	case OpEcall, OpEbreak, OpMret, OpFence:
		return i.Op.String()
	case OpLui, OpAuipc:
		return fmt.Sprintf("%s %s, %#x", i.Op, RegName(i.Rd), uint64(i.Imm)>>12&0xfffff)
	case OpJal:
		return fmt.Sprintf("jal %s, %d", RegName(i.Rd), i.Imm)
	case OpJalr:
		return fmt.Sprintf("jalr %s, %d(%s)", RegName(i.Rd), i.Imm, RegName(i.Rs1))
	case OpCsrrw, OpCsrrs, OpCsrrc:
		return fmt.Sprintf("%s %s, %#x, %s", i.Op, RegName(i.Rd), i.Imm, RegName(i.Rs1))
	case OpFmvXD:
		return fmt.Sprintf("fmv.x.d %s, %s", RegName(i.Rd), FRegName(i.Rs1))
	case OpFmvDX:
		return fmt.Sprintf("fmv.d.x %s, %s", FRegName(i.Rd), RegName(i.Rs1))
	}
	switch i.Op.Class() {
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, RegName(i.Rs1), RegName(i.Rs2), i.Imm)
	case ClassLoad:
		rd := RegName(i.Rd)
		if i.Op == OpFld {
			rd = FRegName(i.Rd)
		}
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, rd, i.Imm, RegName(i.Rs1))
	case ClassStore:
		rs2 := RegName(i.Rs2)
		if i.Op == OpFsd {
			rs2 = FRegName(i.Rs2)
		}
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, rs2, i.Imm, RegName(i.Rs1))
	case ClassFPU, ClassFDiv:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, FRegName(i.Rd), FRegName(i.Rs1), FRegName(i.Rs2))
	}
	// R vs I format by whether the op is an immediate op.
	switch i.Op {
	case OpAddi, OpSlti, OpSltiu, OpXori, OpOri, OpAndi,
		OpSlli, OpSrli, OpSrai, OpAddiw, OpSlliw, OpSrliw, OpSraiw:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, RegName(i.Rd), RegName(i.Rs1), i.Imm)
	}
	return fmt.Sprintf("%s %s, %s, %s", i.Op, RegName(i.Rd), RegName(i.Rs1), RegName(i.Rs2))
}
