package isa

import "testing"

func TestDisasmFormats(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, Rd: 5, Rs1: 6, Rs2: 7}, "add t0, t1, t2"},
		{Inst{Op: OpAddi, Rd: 10, Rs1: 11, Imm: -4}, "addi a0, a1, -4"},
		{Inst{Op: OpLd, Rd: 5, Rs1: 2, Imm: 16}, "ld t0, 16(sp)"},
		{Inst{Op: OpSd, Rs1: 2, Rs2: 5, Imm: -8}, "sd t0, -8(sp)"},
		{Inst{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 32}, "beq ra, sp, 32"},
		{Inst{Op: OpJal, Rd: 1, Imm: -64}, "jal ra, -64"},
		{Inst{Op: OpJalr, Rd: 0, Rs1: 1, Imm: 0}, "jalr zero, 0(ra)"},
		{Inst{Op: OpEcall}, "ecall"},
		{Inst{Op: OpFld, Rd: 10, Rs1: 8, Imm: 24}, "fld fa0, 24(s0)"},
		{Inst{Op: OpFsd, Rs1: 8, Rs2: 10, Imm: 24}, "fsd fa0, 24(s0)"},
		{Inst{Op: OpFdivD, Rd: 11, Rs1: 10, Rs2: 10}, "fdiv.d fa1, fa0, fa0"},
		{Inst{Op: OpFmvXD, Rd: 10, Rs1: 11}, "fmv.x.d a0, fa1"},
		{Inst{Op: OpFmvDX, Rd: 10, Rs1: 11}, "fmv.d.x fa0, a1"},
		{Inst{Op: OpInvalid, Raw: 0xdead}, ".illegal 0x0000dead"},
		{Inst{Op: OpSlli, Rd: 5, Rs1: 5, Imm: 12}, "slli t0, t0, 12"},
	}
	for _, c := range cases {
		if got := Disasm(c.in); got != c.want {
			t.Errorf("Disasm(%v) = %q, want %q", c.in.Op, got, c.want)
		}
	}
}

// Round trip: assembling the disassembly of a decodable word reproduces the
// instruction (for the formats the assembler accepts).
func TestDisasmAsmRoundTrip(t *testing.T) {
	words := []uint32{
		MustEncode(Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}),
		MustEncode(Inst{Op: OpAddi, Rd: 4, Rs1: 5, Imm: 100}),
		MustEncode(Inst{Op: OpLd, Rd: 6, Rs1: 7, Imm: 8}),
		MustEncode(Inst{Op: OpSd, Rs1: 8, Rs2: 9, Imm: 16}),
		MustEncode(Inst{Op: OpXori, Rd: 10, Rs1: 11, Imm: -1}),
		MustEncode(Inst{Op: OpSltu, Rd: 12, Rs1: 13, Rs2: 14}),
	}
	for _, w := range words {
		d := Decode(w)
		p, err := Asm(0, d.String())
		if err != nil {
			t.Fatalf("Asm(%q): %v", d.String(), err)
		}
		if p.Words[0] != w {
			t.Errorf("round trip %q: %#08x -> %#08x", d.String(), w, p.Words[0])
		}
	}
}
