package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSub, Rd: 31, Rs1: 30, Rs2: 29},
		{Op: OpAddi, Rd: 5, Rs1: 6, Imm: -2048},
		{Op: OpAddi, Rd: 5, Rs1: 6, Imm: 2047},
		{Op: OpSlli, Rd: 7, Rs1: 8, Imm: 63},
		{Op: OpSrai, Rd: 7, Rs1: 8, Imm: 17},
		{Op: OpSlliw, Rd: 7, Rs1: 8, Imm: 31},
		{Op: OpSraiw, Rd: 7, Rs1: 8, Imm: 3},
		{Op: OpLui, Rd: 9, Imm: 0x7ffff000},
		{Op: OpLui, Rd: 9, Imm: -4096},
		{Op: OpAuipc, Rd: 10, Imm: 0x1000},
		{Op: OpJal, Rd: 1, Imm: -1048576},
		{Op: OpJal, Rd: 0, Imm: 1048574},
		{Op: OpJalr, Rd: 1, Rs1: 5, Imm: 16},
		{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: -4096},
		{Op: OpBne, Rs1: 3, Rs2: 4, Imm: 4094},
		{Op: OpBltu, Rs1: 5, Rs2: 6, Imm: 8},
		{Op: OpLd, Rd: 11, Rs1: 12, Imm: -8},
		{Op: OpLbu, Rd: 13, Rs1: 14, Imm: 255},
		{Op: OpSd, Rs1: 15, Rs2: 16, Imm: -16},
		{Op: OpSb, Rs1: 17, Rs2: 18, Imm: 2047},
		{Op: OpMul, Rd: 19, Rs1: 20, Rs2: 21},
		{Op: OpDivu, Rd: 22, Rs1: 23, Rs2: 24},
		{Op: OpRemw, Rd: 25, Rs1: 26, Rs2: 27},
		{Op: OpFld, Rd: 1, Rs1: 2, Imm: 24},
		{Op: OpFsd, Rs1: 3, Rs2: 4, Imm: -24},
		{Op: OpFdivD, Rd: 5, Rs1: 6, Rs2: 7},
		{Op: OpFmvXD, Rd: 8, Rs1: 9},
		{Op: OpFmvDX, Rd: 10, Rs1: 11},
		{Op: OpEcall},
		{Op: OpEbreak},
		{Op: OpMret},
		{Op: OpCsrrw, Rd: 1, Rs1: 2, Imm: 0x305},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in.Op, err)
		}
		got := Decode(w)
		if got.Op != in.Op || got.Rd != in.Rd || got.Rs1 != in.Rs1 || got.Rs2 != in.Rs2 || got.Imm != in.Imm {
			t.Errorf("round trip %v: got %+v want %+v (word %#08x)", in.Op, got, in, w)
		}
	}
}

func TestDecodeIllegal(t *testing.T) {
	for _, w := range []uint32{0x00000000, 0xffffffff, 0x0000007f} {
		if d := Decode(w); d.Op != OpInvalid {
			t.Errorf("Decode(%#08x) = %v, want invalid", w, d.Op)
		}
	}
}

func TestNop(t *testing.T) {
	if w := MustEncode(Nop()); w != NopWord {
		t.Fatalf("nop encodes to %#08x, want %#08x", w, NopWord)
	}
	d := Decode(NopWord)
	if d.Op != OpAddi || d.Rd != 0 || d.Rs1 != 0 || d.Imm != 0 {
		t.Fatalf("nop decodes to %+v", d)
	}
}

// Property: every encodable branch offset round-trips through B-format.
func TestBranchOffsetProperty(t *testing.T) {
	f := func(raw int16) bool {
		off := (int64(raw) % 4096) &^ 1 // even offsets within B-format range
		in := Inst{Op: OpBne, Rs1: 3, Rs2: 7, Imm: off}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		return Decode(w).Imm == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: random 32-bit words never panic the decoder, and decodable words
// re-encode to a word that decodes identically.
func TestDecodeTotality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		w := rng.Uint32()
		d := Decode(w)
		if d.Op == OpInvalid {
			continue
		}
		w2, err := Encode(d)
		if err != nil {
			t.Fatalf("decodable %#08x (%v) fails to re-encode: %v", w, d.Op, err)
		}
		d2 := Decode(w2)
		if d2.Op != d.Op || d2.Rd != d.Rd || d2.Rs1 != d.Rs1 || d2.Rs2 != d.Rs2 || d2.Imm != d.Imm {
			t.Fatalf("%#08x: decode/encode/decode mismatch: %+v vs %+v", w, d, d2)
		}
	}
}

func TestRegNames(t *testing.T) {
	if RegNum("a0") != 10 || RegNum("x10") != 10 || RegNum("zero") != 0 || RegNum("fp") != 8 {
		t.Fatal("integer register lookup broken")
	}
	if FRegNum("fa0") != 10 || FRegNum("f31") != 31 {
		t.Fatal("fp register lookup broken")
	}
	if RegNum("q9") != -1 {
		t.Fatal("bogus register accepted")
	}
	if RegName(10) != "a0" || FRegName(8) != "fs0" {
		t.Fatal("register naming broken")
	}
}
