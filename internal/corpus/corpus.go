// Package corpus is the persistent cross-campaign corpus service: it
// harvests interesting seeds (coverage keepers and finding producers) from
// campaign merge barriers, keys them by target and engine-compatibility
// fingerprint, minimizes them in the background with the engine's training
// reduction, and resolves deterministic warm-start sets for future
// campaigns on the same target.
//
// Persistence is a compacted snapshot (corpus.json, replaced atomically)
// plus an append-only redo journal (journal.ndjson) of full post-operation
// entry states. Every mutation appends a journal record before it is
// acknowledged; Open replays the journal over the snapshot and folds it
// back into a fresh snapshot. A crash mid-append leaves at most one torn
// trailing line, which replay discards; because harvests are idempotent
// per (campaign, iteration), replaying a suffix of already-applied records
// never double-counts.
//
// The store itself is deliberately outside the engine's determinism
// boundary — it may observe wall-clock time and use maps freely — but
// everything it hands back to a campaign (snapshot IDs, warm-start sets,
// frontier priors) is a pure function of store content and the requesting
// campaign's seed, which is what lets warm-started campaigns keep the
// engine's byte-identity guarantees.
package corpus

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"dejavuzz/internal/atomicfile"
	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
)

const (
	// storeVersion guards the corpus.json format.
	storeVersion = 1
	snapshotFile = "corpus.json"
	journalFile  = "journal.ndjson"
	// compactAfter bounds journal growth: once this many records accumulate
	// the journal folds into a fresh corpus.json and truncates.
	compactAfter = 512
	// classCap bounds entries per (target, fingerprint) class; the worst
	// entries (fewest findings, least coverage gain) are evicted first.
	classCap = 1024
	// historyCap bounds the retained frontier history used by the
	// /corpus/frontier?since= diff endpoint.
	historyCap = 64
)

// DefaultWarmStartMax is the default warm-start set size. It is well under
// the engine's merged-corpus cap so warm seeds never crowd out a
// campaign's own discoveries.
const DefaultWarmStartMax = 32

// Entry is one persisted corpus seed with its provenance and accumulated
// evidence. The ID is a content hash of (target, seed), so the same
// stimulus harvested by different campaigns folds into one entry.
type Entry struct {
	ID          string   `json:"id"`
	Target      string   `json:"target"`
	Scenario    string   `json:"scenario"`
	Fingerprint string   `json:"fingerprint"`
	Seed        gen.Seed `json:"seed"`

	// BestPoints is the largest single-iteration coverage gain observed;
	// Points accumulates gain across all observations. Harvests counts
	// distinct (campaign, iteration) observations and Findings those that
	// produced a finding.
	BestPoints int `json:"best_points"`
	Points     int `json:"points"`
	Harvests   int `json:"harvests"`
	Findings   int `json:"findings"`

	// FirstCampaign/FirstIteration locate the harvest that created the
	// entry — the provenance link the triage store records on bugs.
	FirstCampaign  string `json:"first_campaign"`
	FirstIteration int    `json:"first_iteration"`
	// Seen is the sorted set of "campaign#iteration" observation keys; it
	// is what makes re-harvest (barrier replay after an unclean restart,
	// journal replay on open) idempotent.
	Seen []string `json:"seen,omitempty"`

	// Minimizer output: once the background minimizer has run the engine's
	// training reduction over the seed, TrainKept of TrainTotal trigger
	// training packets survived. MinimizeError records a reducer failure
	// (the entry still counts as visited so the minimizer moves on).
	Minimized     bool   `json:"minimized,omitempty"`
	MinimizeError string `json:"minimize_error,omitempty"`
	TrainKept     int    `json:"train_kept,omitempty"`
	TrainTotal    int    `json:"train_total,omitempty"`
}

// EntryID is the content hash identifying a (target, seed) pair in the
// store. Exported so the triage store can link bug examples to corpus
// entries without holding a store handle.
func EntryID(target string, seed gen.Seed) string {
	enc, err := json.Marshal(seed)
	if err != nil {
		// gen.Seed is a flat struct of scalars; Marshal cannot fail on it.
		panic(fmt.Sprintf("corpus: seed unencodable: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(target))
	h.Write([]byte{0})
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// storeFile is the corpus.json serialisation: entries sorted by ID plus
// the bounded frontier history, so a compacted store round-trips
// byte-identically.
type storeFile struct {
	Version int        `json:"version"`
	Entries []Entry    `json:"entries"`
	History []Frontier `json:"history,omitempty"`
}

// journalRec is one redo-journal line: a full post-operation entry state
// ("put") or an eviction ("del"). Carrying the whole entry makes replay a
// plain upsert — order is the only thing that matters.
type journalRec struct {
	Op    string `json:"op"`
	ID    string `json:"id,omitempty"`
	Entry *Entry `json:"entry,omitempty"`
}

// Store is a corpus database rooted at one directory. All methods are safe
// for concurrent use; the background minimizer (see StartMinimizer) runs
// the expensive reduction outside the lock.
type Store struct {
	dir string

	mu         sync.Mutex
	entries    map[string]*Entry
	history    []Frontier
	journal    *os.File
	journalLen int

	minStop chan struct{}
	minDone chan struct{}
}

// Open loads (or creates) the corpus store in dir: snapshot, journal
// replay with torn-tail tolerance, then an immediate compaction so debris
// from a previous crash is folded away.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	st := &Store{dir: dir, entries: make(map[string]*Entry)}
	if err := st.loadSnapshot(); err != nil {
		return nil, err
	}
	replayed, err := st.replayJournal()
	if err != nil {
		return nil, err
	}
	st.journalLen = replayed
	if replayed > 0 {
		if err := st.compactLocked(); err != nil {
			return nil, err
		}
	}
	j, err := os.OpenFile(st.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	st.journal = j
	return st, nil
}

func (st *Store) snapshotPath() string { return filepath.Join(st.dir, snapshotFile) }
func (st *Store) journalPath() string  { return filepath.Join(st.dir, journalFile) }

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) loadSnapshot() error {
	data, err := os.ReadFile(st.snapshotPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	var f storeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("corpus: %s corrupt: %w", snapshotFile, err)
	}
	if f.Version != storeVersion {
		return fmt.Errorf("corpus: %s has version %d, want %d", snapshotFile, f.Version, storeVersion)
	}
	for i := range f.Entries {
		e := f.Entries[i]
		st.entries[e.ID] = &e
	}
	st.history = f.History
	return nil
}

// replayJournal applies the redo journal over the loaded snapshot. A torn
// final line — the only debris a crashed append can leave — is discarded;
// an undecodable line anywhere else means real corruption and is an error.
func (st *Store) replayJournal() (int, error) {
	f, err := os.Open(st.journalPath())
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	applied := 0
	var pendingErr error
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// The bad line was not the tail: the journal is corrupt, not torn.
			return 0, pendingErr
		}
		var rec journalRec
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr = fmt.Errorf("corpus: %s corrupt: %w", journalFile, err)
			continue
		}
		switch rec.Op {
		case "put":
			if rec.Entry == nil || rec.Entry.ID == "" {
				pendingErr = fmt.Errorf("corpus: %s corrupt: put without entry", journalFile)
				continue
			}
			e := *rec.Entry
			st.entries[e.ID] = &e
		case "del":
			delete(st.entries, rec.ID)
		default:
			pendingErr = fmt.Errorf("corpus: %s corrupt: unknown op %q", journalFile, rec.Op)
			continue
		}
		applied++
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("corpus: %w", err)
	}
	return applied, nil
}

// sortedEntries returns copies of all entries, sorted by ID.
func (st *Store) sortedEntriesLocked() []Entry {
	out := make([]Entry, 0, len(st.entries))
	for _, e := range st.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// compactLocked folds the current state into corpus.json atomically and
// truncates the journal. Crash windows are safe at every point: the old
// journal replays idempotently over either snapshot generation.
func (st *Store) compactLocked() error {
	f := storeFile{Version: storeVersion, Entries: st.sortedEntriesLocked(), History: st.history}
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if err := atomicfile.Write(st.snapshotPath(), append(data, '\n')); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if st.journal != nil {
		if err := st.journal.Truncate(0); err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
		if _, err := st.journal.Seek(0, 0); err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
	} else if err := os.WriteFile(st.journalPath(), nil, 0o644); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	st.journalLen = 0
	return nil
}

func (st *Store) appendJournalLocked(rec journalRec) error {
	if st.journal == nil {
		return nil // replay/compaction phase of Open
	}
	line, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if _, err := st.journal.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	st.journalLen++
	if st.journalLen >= compactAfter {
		return st.compactLocked()
	}
	return nil
}

// Harvest folds one barrier's worth of interesting seeds from a campaign
// into the store and returns how many observations were new. The
// (campaign, iteration) pair is the idempotency key: replaying a barrier —
// resumed campaigns re-emit nothing, but an uncleanly restarted server may
// re-drain events — never double-counts.
func (st *Store) Harvest(campaign, target, fingerprint string, batch []core.HarvestedSeed) (int, error) {
	if len(batch) == 0 {
		return 0, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	added := 0
	touched := make(map[string]bool)
	for _, h := range batch {
		id := EntryID(target, h.Seed)
		key := campaign + "#" + strconv.Itoa(h.Iteration)
		e := st.entries[id]
		if e == nil {
			e = &Entry{
				ID:             id,
				Target:         target,
				Scenario:       gen.ScenarioName(h.Seed),
				Fingerprint:    fingerprint,
				Seed:           h.Seed,
				FirstCampaign:  campaign,
				FirstIteration: h.Iteration,
			}
			st.entries[id] = e
		}
		i := sort.SearchStrings(e.Seen, key)
		if i < len(e.Seen) && e.Seen[i] == key {
			continue // already observed: idempotent re-harvest
		}
		e.Seen = append(e.Seen, "")
		copy(e.Seen[i+1:], e.Seen[i:])
		e.Seen[i] = key
		e.Harvests++
		e.Points += h.NewPoints
		if h.NewPoints > e.BestPoints {
			e.BestPoints = h.NewPoints
		}
		if h.Finding {
			e.Findings++
		}
		added++
		touched[id] = true
	}
	ids := make([]string, 0, len(touched))
	for id := range touched {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cp := *st.entries[id]
		if err := st.appendJournalLocked(journalRec{Op: "put", Entry: &cp}); err != nil {
			return added, err
		}
	}
	if err := st.evictLocked(target, fingerprint); err != nil {
		return added, err
	}
	if added > 0 {
		st.recordFrontierLocked()
	}
	return added, nil
}

// evictLocked enforces classCap for one (target, fingerprint) class,
// evicting the lowest-evidence entries first.
func (st *Store) evictLocked(target, fingerprint string) error {
	var class []*Entry
	for _, e := range st.entries {
		if e.Target == target && e.Fingerprint == fingerprint {
			class = append(class, e)
		}
	}
	if len(class) <= classCap {
		return nil
	}
	sort.Slice(class, func(i, j int) bool { return entryWorse(class[i], class[j]) })
	for _, e := range class[:len(class)-classCap] {
		delete(st.entries, e.ID)
		if err := st.appendJournalLocked(journalRec{Op: "del", ID: e.ID}); err != nil {
			return err
		}
	}
	return nil
}

// entryWorse orders entries by ascending evidence (for eviction).
func entryWorse(a, b *Entry) bool {
	if a.Findings != b.Findings {
		return a.Findings < b.Findings
	}
	if a.BestPoints != b.BestPoints {
		return a.BestPoints < b.BestPoints
	}
	if a.Points != b.Points {
		return a.Points < b.Points
	}
	return a.ID > b.ID
}

// entryBetter orders entries by descending evidence (for warm-start
// selection); it is the strict inverse of entryWorse, with ID ascending as
// the final tiebreak so the order is total and deterministic.
func entryBetter(a, b *Entry) bool {
	if a.Findings != b.Findings {
		return a.Findings > b.Findings
	}
	if a.BestPoints != b.BestPoints {
		return a.BestPoints > b.BestPoints
	}
	if a.Points != b.Points {
		return a.Points > b.Points
	}
	return a.ID < b.ID
}

// List returns entry copies sorted by ID, optionally filtered by target
// and scenario family.
func (st *Store) List(target, scenarioFamily string) []Entry {
	st.mu.Lock()
	defer st.mu.Unlock()
	all := st.sortedEntriesLocked()
	if target == "" && scenarioFamily == "" {
		return all
	}
	out := all[:0]
	for _, e := range all {
		if target != "" && e.Target != target {
			continue
		}
		if scenarioFamily != "" && e.Scenario != scenarioFamily {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Len returns the number of entries in the store.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}

// Close stops the background minimizer (if running) and releases the
// journal handle after a final compaction.
func (st *Store) Close() error {
	st.mu.Lock()
	stop, done := st.minStop, st.minDone
	st.minStop, st.minDone = nil, nil
	st.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.journal == nil {
		return nil
	}
	err := st.compactLocked()
	if cerr := st.journal.Close(); err == nil {
		err = cerr
	}
	st.journal = nil
	return err
}
