package corpus

import (
	"fmt"
	"sync"
	"time"

	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
)

// Reducer minimizes one corpus seed's training schedule, returning how
// many trigger training packets survive of the original total. It runs on
// the minimizer goroutine with no store lock held, so it may be slow.
type Reducer func(target string, seed gen.Seed) (kept, total int, err error)

// EngineReducer returns a Reducer backed by the engine's Step 1.2 training
// reduction (Phase1): rebuild the seed's stimulus on a sequential
// pipeline, then drop one training packet at a time and keep only the
// packets the transient window still needs. One idle fuzzer is cached per
// target; Phase1 is single-goroutine, so the cache is mutex-guarded.
func EngineReducer() Reducer {
	var mu sync.Mutex
	fuzzers := map[string]*core.Fuzzer{}
	return func(target string, seed gen.Seed) (int, int, error) {
		mu.Lock()
		defer mu.Unlock()
		f := fuzzers[target]
		if f == nil {
			t, err := core.LookupTarget(target)
			if err != nil {
				return 0, 0, err
			}
			o := core.DefaultOptionsFor(t)
			o.Iterations = 0 // reduction host only; never runs a campaign
			f = core.NewFuzzer(o)
			fuzzers[target] = f
		}
		res, err := f.Phase1(seed)
		if err != nil {
			return 0, 0, err
		}
		kept := 0
		for _, k := range res.Keep {
			if k {
				kept++
			}
		}
		return kept, len(res.Keep), nil
	}
}

// MinimizeOne runs the reducer over the first unminimized entry (by ID)
// and records the result. It returns the entry ID and true when an entry
// was processed, or "" and false when the store is fully minimized.
// Reducer failures are recorded on the entry (MinimizeError) so the
// minimizer never spins on a poisoned seed.
func (st *Store) MinimizeOne(r Reducer) (string, bool) {
	st.mu.Lock()
	var pick *Entry
	for _, e := range st.sortedEntriesLocked() {
		if !e.Minimized {
			cp := e
			pick = &cp
			break
		}
	}
	st.mu.Unlock()
	if pick == nil {
		return "", false
	}

	kept, total, err := r(pick.Target, pick.Seed)

	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.entries[pick.ID]
	if e == nil {
		// Evicted while we were reducing; nothing to record.
		return pick.ID, true
	}
	e.Minimized = true
	if err != nil {
		e.MinimizeError = err.Error()
	} else {
		e.TrainKept, e.TrainTotal = kept, total
	}
	cp := *e
	if jerr := st.appendJournalLocked(journalRec{Op: "put", Entry: &cp}); jerr != nil {
		// The in-memory state is updated; the journal write failure will
		// surface again on the next mutation. Record and move on.
		e.MinimizeError = fmt.Sprintf("journal: %v", jerr)
	}
	st.recordFrontierLocked()
	return pick.ID, true
}

// StartMinimizer launches the background minimizer: a single goroutine
// that drains unminimized entries one at a time, sleeping idle between
// scans once the store is fully minimized. It keeps the expensive
// reduction entirely off the harvest path (harvests only take the store
// lock for bookkeeping). Close stops it.
func (st *Store) StartMinimizer(r Reducer, idle time.Duration) {
	if idle <= 0 {
		idle = time.Second
	}
	st.mu.Lock()
	if st.minStop != nil {
		st.mu.Unlock()
		return // already running
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	st.minStop, st.minDone = stop, done
	st.mu.Unlock()

	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, ok := st.MinimizeOne(r); ok {
				continue
			}
			select {
			case <-stop:
				return
			case <-time.After(idle):
			}
		}
	}()
}
