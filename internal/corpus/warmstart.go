package corpus

import (
	"fmt"
	"hash/fnv"
	"sort"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/scenario"
)

// Fingerprint keys engine/options compatibility: seeds only transfer
// between campaigns that run the same target under the same stimulus
// semantics. Variant changes the training derivation and Bugless changes
// the design under test, so each gets its own corpus class; everything
// else (shards, scheduling, iteration counts) only reshapes streams and
// keeps seeds meaningful.
func Fingerprint(target string, variant gen.Variant, bugless bool) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%d\x00%t", target, variant, bugless)
	return fmt.Sprintf("fp-%016x", h.Sum64())
}

// Snapshot is a deterministic view of one (target, fingerprint) corpus
// class, optionally restricted to a set of scenario families. Its ID is a
// content hash over the contributing entry IDs, so two stores holding the
// same seeds produce the same snapshot ID and a store that gained or lost
// a seed produces a different one.
type Snapshot struct {
	ID          string  `json:"id"`
	Target      string  `json:"target"`
	Fingerprint string  `json:"fingerprint"`
	Entries     []Entry `json:"entries"`
}

// WarmSet is a resolved warm-start: the snapshot it was derived from, the
// seed set (sorted by selection order, capped) and the per-family frontier
// prior. It is a pure function of (snapshot content, campaign seed) — see
// Store.WarmStart.
type WarmSet struct {
	Snapshot string           `json:"snapshot"`
	Seeds    []gen.Seed       `json:"seeds,omitempty"`
	Prior    []scenario.Prior `json:"prior,omitempty"`
}

// View captures the deterministic snapshot of one corpus class. families
// restricts the view to entries whose scenario family is in the set (nil
// means all families).
func (st *Store) View(target, fingerprint string, families []string) Snapshot {
	allowed := map[string]bool{}
	for _, f := range families {
		allowed[f] = true
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	snap := Snapshot{Target: target, Fingerprint: fingerprint}
	for _, e := range st.entries {
		if e.Target != target || e.Fingerprint != fingerprint {
			continue
		}
		if len(families) > 0 && !allowed[e.Scenario] {
			continue
		}
		snap.Entries = append(snap.Entries, *e)
	}
	sort.Slice(snap.Entries, func(i, j int) bool { return snap.Entries[i].ID < snap.Entries[j].ID })
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s", target, fingerprint)
	for _, e := range snap.Entries {
		fmt.Fprintf(h, "\x00%s", e.ID)
	}
	snap.ID = fmt.Sprintf("cs-%016x", h.Sum64())
	return snap
}

// splitMix64 is the standard SplitMix64 step — the same deterministic
// stream primitive the generator's seeding uses — so warm-start selection
// needs no math/rand state.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// WarmStart resolves a warm-start set for a campaign: the top max entries
// of the snapshot by evidence (findings first, then coverage gain), in an
// order shuffled deterministically from (snapshot ID, campaign seed), plus
// a frontier prior aggregated over the whole snapshot. Everything is a
// pure function of the snapshot content and campaignSeed: resolving the
// same snapshot for the same campaign always yields the same set, which is
// what lets the engine checkpoint the result and keep byte-identical
// resume. max <= 0 selects DefaultWarmStartMax.
func (st *Store) WarmStart(target, fingerprint string, families []string, campaignSeed int64, max int) WarmSet {
	if max <= 0 {
		max = DefaultWarmStartMax
	}
	snap := st.View(target, fingerprint, families)
	ws := WarmSet{Snapshot: snap.ID}

	// Selection: rank by evidence, keep the top max.
	ranked := make([]*Entry, len(snap.Entries))
	for i := range snap.Entries {
		ranked[i] = &snap.Entries[i]
	}
	sort.Slice(ranked, func(i, j int) bool { return entryBetter(ranked[i], ranked[j]) })
	if len(ranked) > max {
		ranked = ranked[:max]
	}
	// Deterministic Fisher-Yates over the selection so the order the engine
	// deals seeds to shards — and therefore the replay schedule — depends
	// on the campaign seed, not on corpus insertion history alone.
	h := fnv.New64a()
	h.Write([]byte(snap.ID))
	x := h.Sum64() ^ uint64(campaignSeed)
	for i := len(ranked) - 1; i > 0; i-- {
		x = splitMix64(x)
		j := int(x % uint64(i+1))
		ranked[i], ranked[j] = ranked[j], ranked[i]
	}
	for _, e := range ranked {
		ws.Seeds = append(ws.Seeds, e.Seed)
	}

	// Frontier prior: per-family evidence over the whole snapshot (not just
	// the selected seeds), so the scheduler sees everything the corpus
	// knows about family yield on this target.
	agg := map[string]*scenario.Prior{}
	for i := range snap.Entries {
		e := &snap.Entries[i]
		p := agg[e.Scenario]
		if p == nil {
			p = &scenario.Prior{Name: e.Scenario}
			agg[e.Scenario] = p
		}
		p.Picks += e.Harvests
		p.Points += e.Points
		p.Findings += e.Findings
	}
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ws.Prior = append(ws.Prior, *agg[n])
	}
	return ws
}

// FrontierFamily is one (target, scenario family) row of the coverage
// frontier: how much corpus evidence the store holds for it.
type FrontierFamily struct {
	Target     string `json:"target"`
	Scenario   string `json:"scenario"`
	Entries    int    `json:"entries"`
	Harvests   int    `json:"harvests"`
	Points     int    `json:"points"`
	BestPoints int    `json:"best_points"`
	Findings   int    `json:"findings"`
	Minimized  int    `json:"minimized"`
}

// Frontier is the store's current coverage frontier: per-(target, family)
// aggregates with a content-hash ID. The store retains a bounded history
// of distinct frontiers so clients can diff against a frontier they saw
// earlier.
type Frontier struct {
	ID       string           `json:"id"`
	Entries  int              `json:"entries"`
	Families []FrontierFamily `json:"families"`
}

func (st *Store) frontierLocked() Frontier {
	agg := map[[2]string]*FrontierFamily{}
	for _, e := range st.entries {
		key := [2]string{e.Target, e.Scenario}
		f := agg[key]
		if f == nil {
			f = &FrontierFamily{Target: e.Target, Scenario: e.Scenario}
			agg[key] = f
		}
		f.Entries++
		f.Harvests += e.Harvests
		f.Points += e.Points
		if e.BestPoints > f.BestPoints {
			f.BestPoints = e.BestPoints
		}
		f.Findings += e.Findings
		if e.Minimized {
			f.Minimized++
		}
	}
	fr := Frontier{Entries: len(st.entries)}
	keys := make([][2]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	h := fnv.New64a()
	for _, k := range keys {
		f := agg[k]
		fr.Families = append(fr.Families, *f)
		fmt.Fprintf(h, "%s\x00%s\x00%d %d %d %d %d %d\x00",
			f.Target, f.Scenario, f.Entries, f.Harvests, f.Points, f.BestPoints, f.Findings, f.Minimized)
	}
	fr.ID = fmt.Sprintf("fr-%016x", h.Sum64())
	return fr
}

// Frontier returns the current coverage frontier.
func (st *Store) Frontier() Frontier {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.frontierLocked()
}

// recordFrontierLocked appends the current frontier to the bounded history
// if it differs from the newest retained one.
func (st *Store) recordFrontierLocked() {
	fr := st.frontierLocked()
	if n := len(st.history); n > 0 && st.history[n-1].ID == fr.ID {
		return
	}
	st.history = append(st.history, fr)
	if len(st.history) > historyCap {
		st.history = st.history[len(st.history)-historyCap:]
	}
}

// FamilyDelta is one changed frontier row in a diff: the per-field
// difference between the current frontier and a historical one.
type FamilyDelta struct {
	Target    string `json:"target"`
	Scenario  string `json:"scenario"`
	Entries   int    `json:"entries"`
	Harvests  int    `json:"harvests"`
	Points    int    `json:"points"`
	Findings  int    `json:"findings"`
	Minimized int    `json:"minimized"`
}

// FrontierDiff compares the current frontier against a historical frontier
// ID previously returned by Frontier (or an earlier diff). Rows appear for
// every (target, family) whose aggregates changed, with signed deltas.
type FrontierDiff struct {
	Since   string        `json:"since"`
	Current string        `json:"current"`
	Changed []FamilyDelta `json:"changed"`
}

// Diff computes the frontier change since a historical frontier ID. An
// unknown ID — older than the retained history, or never issued — is an
// error the HTTP layer maps to 404.
func (st *Store) Diff(since string) (FrontierDiff, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.frontierLocked()
	d := FrontierDiff{Since: since, Current: cur.ID}
	if since == cur.ID {
		return d, nil
	}
	var old *Frontier
	for i := range st.history {
		if st.history[i].ID == since {
			old = &st.history[i]
			break
		}
	}
	if old == nil {
		return d, fmt.Errorf("corpus: unknown frontier snapshot %q (history keeps the last %d)", since, historyCap)
	}
	type key struct{ target, scenario string }
	oldRows := map[key]FrontierFamily{}
	for _, f := range old.Families {
		oldRows[key{f.Target, f.Scenario}] = f
	}
	keys := map[key]bool{}
	curRows := map[key]FrontierFamily{}
	for _, f := range cur.Families {
		k := key{f.Target, f.Scenario}
		curRows[k] = f
		keys[k] = true
	}
	for k := range oldRows {
		keys[k] = true
	}
	ordered := make([]key, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].target != ordered[j].target {
			return ordered[i].target < ordered[j].target
		}
		return ordered[i].scenario < ordered[j].scenario
	})
	for _, k := range ordered {
		o, c := oldRows[k], curRows[k]
		delta := FamilyDelta{
			Target:    k.target,
			Scenario:  k.scenario,
			Entries:   c.Entries - o.Entries,
			Harvests:  c.Harvests - o.Harvests,
			Points:    c.Points - o.Points,
			Findings:  c.Findings - o.Findings,
			Minimized: c.Minimized - o.Minimized,
		}
		if delta.Entries != 0 || delta.Harvests != 0 || delta.Points != 0 ||
			delta.Findings != 0 || delta.Minimized != 0 {
			d.Changed = append(d.Changed, delta)
		}
	}
	return d, nil
}
