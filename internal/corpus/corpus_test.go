package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
)

// testBatch builds n distinct harvested seeds with deterministic evidence.
func testBatch(n, iterBase int) []core.HarvestedSeed {
	out := make([]core.HarvestedSeed, n)
	for i := range out {
		out[i] = core.HarvestedSeed{
			Iteration: iterBase + i,
			Seed:      gen.Seed{Scenario: "spectre-btb-v2a", Rand: int64(1000 + iterBase + i), WindowLen: i},
			NewPoints: i + 1,
			Finding:   i%3 == 0,
		}
	}
	return out
}

func TestHarvestIdempotent(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	batch := testBatch(5, 0)
	added, err := st.Harvest("c1", "boom", "fp-test", batch)
	if err != nil {
		t.Fatal(err)
	}
	if added != 5 {
		t.Fatalf("first harvest added %d, want 5", added)
	}
	// Replaying the exact same (campaign, iteration) batch — the unclean-
	// restart re-drain case — must be a complete no-op.
	added, err = st.Harvest("c1", "boom", "fp-test", batch)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("replayed harvest added %d, want 0", added)
	}
	entries := st.List("boom", "")
	if len(entries) != 5 {
		t.Fatalf("store has %d entries, want 5", len(entries))
	}
	for _, e := range entries {
		if e.Harvests != 1 {
			t.Errorf("entry %s: Harvests = %d after replay, want 1", e.ID, e.Harvests)
		}
	}
	// The same seeds from a different campaign are new observations of the
	// same entries, not new entries.
	added, err = st.Harvest("c2", "boom", "fp-test", batch)
	if err != nil {
		t.Fatal(err)
	}
	if added != 5 {
		t.Fatalf("second-campaign harvest added %d, want 5", added)
	}
	if n := st.Len(); n != 5 {
		t.Fatalf("store has %d entries after cross-campaign fold, want 5", n)
	}
}

func TestOpenRecoversTornJournal(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Harvest("c1", "boom", "fp-test", testBatch(3, 0)); err != nil {
		t.Fatal(err)
	}
	want := st.List("", "")

	// Simulate a crash mid-append: copy the live journal (Close would
	// compact it away) and add a torn trailing line — the only debris an
	// interrupted journal write can leave.
	journal, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(journal) == 0 {
		t.Fatal("expected a non-empty journal before compaction")
	}
	crashDir := t.TempDir()
	torn := append(append([]byte(nil), journal...), []byte(`{"op":"put","entry":{"id":"dead`)...)
	if err := os.WriteFile(filepath.Join(crashDir, journalFile), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(crashDir)
	if err != nil {
		t.Fatalf("Open with torn journal tail: %v", err)
	}
	defer re.Close()
	got := re.List("", "")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered entries differ:\n got %+v\nwant %+v", got, want)
	}
	// Open folds the replayed journal into a fresh snapshot immediately, so
	// the crash debris is gone from disk too.
	if data, err := os.ReadFile(filepath.Join(crashDir, journalFile)); err != nil || len(data) != 0 {
		t.Fatalf("journal not truncated after recovery compaction: len=%d err=%v", len(data), err)
	}
	if _, err := os.Stat(filepath.Join(crashDir, snapshotFile)); err != nil {
		t.Fatalf("snapshot missing after recovery compaction: %v", err)
	}
}

func TestOpenRejectsMidJournalCorruption(t *testing.T) {
	dir := t.TempDir()
	good, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := good.Harvest("c1", "boom", "fp-test", testBatch(2, 0)); err != nil {
		t.Fatal(err)
	}
	journal, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	good.Close()

	// A garbage line that is NOT the tail means real corruption, not a torn
	// append; Open must refuse rather than silently drop records.
	corruptDir := t.TempDir()
	corrupt := append([]byte("not json\n"), journal...)
	if err := os.WriteFile(filepath.Join(corruptDir, journalFile), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(corruptDir); err == nil {
		t.Fatal("Open accepted a journal with mid-file corruption")
	}
}

func TestReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Harvest("c1", "boom", "fp-test", testBatch(4, 0)); err != nil {
		t.Fatal(err)
	}
	want := st.List("", "")
	wantFrontier := st.Frontier()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.List("", ""); !reflect.DeepEqual(got, want) {
		t.Fatalf("entries changed across reopen:\n got %+v\nwant %+v", got, want)
	}
	if got := re.Frontier(); got.ID != wantFrontier.ID {
		t.Fatalf("frontier ID changed across reopen: got %s want %s", got.ID, wantFrontier.ID)
	}
}

func TestConcurrentHarvestAndMinimize(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A stub reducer keeps the race surface (store lock vs minimizer
	// bookkeeping) without paying for real engine reductions.
	st.StartMinimizer(func(target string, seed gen.Seed) (int, int, error) {
		return 1, 2, nil
	}, 0)

	const campaigns, batches = 4, 8
	var wg sync.WaitGroup
	for c := 0; c < campaigns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id := fmt.Sprintf("c%d", c)
			for b := 0; b < batches; b++ {
				if _, err := st.Harvest(id, "boom", "fp-test", testBatch(4, b*4)); err != nil {
					t.Errorf("harvest %s batch %d: %v", id, b, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// All campaigns harvested the same 32 distinct seeds.
	re, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n := re.Len(); n != 32 {
		t.Fatalf("store has %d entries, want 32", n)
	}
	for _, e := range re.List("", "") {
		if e.Harvests != campaigns {
			t.Errorf("entry %s: Harvests = %d, want %d", e.ID, e.Harvests, campaigns)
		}
		if e.Minimized && (e.TrainKept != 1 || e.TrainTotal != 2) {
			t.Errorf("entry %s: minimizer recorded %d/%d, want 1/2", e.ID, e.TrainKept, e.TrainTotal)
		}
	}
}

func TestWarmStartPureFunctionOfSnapshot(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	stA, err := Open(dirA)
	if err != nil {
		t.Fatal(err)
	}
	defer stA.Close()
	stB, err := Open(dirB)
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()

	batch := testBatch(10, 0)
	if _, err := stA.Harvest("c1", "boom", "fp-test", batch); err != nil {
		t.Fatal(err)
	}
	// Store B absorbs the same seeds from a different campaign in a
	// different batch split: same content, different history.
	if _, err := stB.Harvest("other", "boom", "fp-test", batch[5:]); err != nil {
		t.Fatal(err)
	}
	if _, err := stB.Harvest("other", "boom", "fp-test", batch[:5]); err != nil {
		t.Fatal(err)
	}

	wsA := stA.WarmStart("boom", "fp-test", nil, 42, 0)
	wsB := stB.WarmStart("boom", "fp-test", nil, 42, 0)
	if wsA.Snapshot != wsB.Snapshot {
		t.Fatalf("same content, different snapshot IDs: %s vs %s", wsA.Snapshot, wsB.Snapshot)
	}
	if !reflect.DeepEqual(wsA.Seeds, wsB.Seeds) {
		t.Fatal("same snapshot and campaign seed resolved different warm seed orders")
	}
	// Same store, same campaign seed: identical resolution every time.
	if again := stA.WarmStart("boom", "fp-test", nil, 42, 0); !reflect.DeepEqual(again, wsA) {
		t.Fatal("re-resolving the same warm start changed the result")
	}
	// A different campaign seed keeps the set but may reorder it.
	other := stA.WarmStart("boom", "fp-test", nil, 43, 0)
	if other.Snapshot != wsA.Snapshot {
		t.Fatal("campaign seed changed the snapshot ID")
	}
	if len(other.Seeds) != len(wsA.Seeds) {
		t.Fatalf("campaign seed changed the selection size: %d vs %d", len(other.Seeds), len(wsA.Seeds))
	}
	if !reflect.DeepEqual(other.Prior, wsA.Prior) {
		t.Fatal("campaign seed changed the frontier prior")
	}
}

func TestFrontierDiff(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if _, err := st.Harvest("c1", "boom", "fp-test", testBatch(3, 0)); err != nil {
		t.Fatal(err)
	}
	before := st.Frontier()

	// No change yet: diffing against the current frontier is empty.
	d, err := st.Diff(before.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Changed) != 0 || d.Current != before.ID {
		t.Fatalf("self-diff not empty: %+v", d)
	}

	if _, err := st.Harvest("c2", "boom", "fp-test", testBatch(5, 100)); err != nil {
		t.Fatal(err)
	}
	d, err = st.Diff(before.ID)
	if err != nil {
		t.Fatal(err)
	}
	if d.Current == before.ID || len(d.Changed) != 1 {
		t.Fatalf("diff after growth: current=%s changed=%+v", d.Current, d.Changed)
	}
	row := d.Changed[0]
	if row.Target != "boom" || row.Scenario != "spectre-btb-v2a" || row.Entries != 5 || row.Harvests != 5 {
		t.Fatalf("unexpected delta row: %+v", row)
	}

	if _, err := st.Diff("fr-0000000000000000"); err == nil {
		t.Fatal("Diff accepted an unknown frontier ID")
	}
}

func TestEntryIDStable(t *testing.T) {
	s := gen.Seed{Scenario: "spectre-btb-v2a", Rand: 7}
	a, b := EntryID("boom", s), EntryID("boom", s)
	if a != b {
		t.Fatalf("EntryID not stable: %s vs %s", a, b)
	}
	if EntryID("xiangshan", s) == a {
		t.Fatal("EntryID ignores the target")
	}
	s.Rand = 8
	if EntryID("boom", s) == a {
		t.Fatal("EntryID ignores the seed")
	}
}
