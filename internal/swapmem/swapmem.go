// Package swapmem implements DejaVuzz's dynamic swappable memory (swapMem):
// the isolation primitive that time-shares one address space between
// instruction sequences with different semantics.
//
// The layout follows the paper's Figure 4: a shared region (execution
// environment: entry stub and trap-handled swap scheduling), a per-DUT
// dedicated region (secrets and mutable operands), a swappable region that
// holds one instruction packet at a time, and a plain data region used by
// secret-encoding gadgets.
//
// Packets are swapped at runtime: each packet ends by raising an exception
// (ecall), the trap hook flushes the instruction cache, loads the next
// packet's image into the swappable region and redirects the core to its
// entry — all without executing architectural instructions that would
// pollute memory-related training state.
package swapmem

import (
	"fmt"

	"dejavuzz/internal/isa"
	"dejavuzz/internal/isasim"
	"dejavuzz/internal/mem"
	"dejavuzz/internal/uarch"
)

// Canonical layout addresses.
const (
	SharedBase    = 0x0000_1000
	SharedSize    = 0x1000
	DedicatedBase = 0x0000_2000
	DedicatedSize = 0x1000
	SwapBase      = 0x0000_4000
	SwapSize      = 0x4000
	DataBase      = 0x0000_8000
	DataSize      = 0x8000

	// GuardAccBase is an unmapped-permission region raising ACCESS faults.
	GuardAccBase = 0x0000_3000
	GuardAccSize = 0x800
	// GuardPageBase raises PAGE faults.
	GuardPageBase = 0x0000_3800
	GuardPageSize = 0x800

	// SecretAddr is where the per-DUT secret lives (dedicated region start).
	SecretAddr = DedicatedBase
	// OperandAddr holds mutable operands the generator patches per run.
	OperandAddr = DedicatedBase + 0x100
	// SwapDoneAddr is the shared-region routine that ends a packet (ecall).
	SwapDoneAddr = SharedBase
)

// PacketKind classifies swap packets for scheduling and reporting.
type PacketKind int

const (
	PacketTriggerTrain PacketKind = iota
	PacketWindowTrain
	PacketTransient
)

func (k PacketKind) String() string {
	switch k {
	case PacketTriggerTrain:
		return "trigger-train"
	case PacketWindowTrain:
		return "window-train"
	case PacketTransient:
		return "transient"
	}
	return "packet"
}

// Packet is one swappable instruction sequence.
type Packet struct {
	Name  string
	Kind  PacketKind
	Image *isa.Program // assembled at SwapBase (or an offset inside the region)
	Entry uint64
	// TrainInsts counts non-padding instructions for the Table 3 overhead
	// accounting; PadInsts counts alignment nops.
	TrainInsts int
	PadInsts   int
}

// InstCount returns total instructions in the packet image.
func (p *Packet) InstCount() int { return len(p.Image.Words) }

// PermUpdate describes a permission change applied between packets (the
// paper's "updates sensitive data permissions" step before the transient
// packet executes).
type PermUpdate struct {
	Region string
	Perm   mem.Perm
}

// Step is one swap-schedule element: run a packet, optionally after applying
// permission updates.
type Step struct {
	Packet  *Packet
	PrePerm []PermUpdate
}

// Schedule is the ordered packet list for one stimulus.
type Schedule struct {
	Steps []Step
}

// Append adds a packet without permission updates.
func (s *Schedule) Append(p *Packet) { s.Steps = append(s.Steps, Step{Packet: p}) }

// AppendWithPerm adds a packet preceded by permission updates.
func (s *Schedule) AppendWithPerm(p *Packet, perms ...PermUpdate) {
	s.Steps = append(s.Steps, Step{Packet: p, PrePerm: perms})
}

// Clone copies the schedule (packets are shared, steps copied).
func (s *Schedule) Clone() *Schedule {
	n := &Schedule{Steps: make([]Step, len(s.Steps))}
	copy(n.Steps, s.Steps)
	return n
}

// WithoutStep returns a copy with step i removed (training reduction).
func (s *Schedule) WithoutStep(i int) *Schedule {
	n := &Schedule{}
	for j, st := range s.Steps {
		if j != i {
			n.Steps = append(n.Steps, st)
		}
	}
	return n
}

// TrainingOverhead sums instruction counts over training packets: total
// (TO, including alignment nops) and effective (ETO, excluding them).
func (s *Schedule) TrainingOverhead() (to, eto int) {
	for _, st := range s.Steps {
		if st.Packet.Kind == PacketTransient {
			continue
		}
		to += st.Packet.TrainInsts + st.Packet.PadInsts
		eto += st.Packet.TrainInsts
	}
	return to, eto
}

// NewSpace builds the canonical swapMem address space with a given secret.
// Secret bytes are taint sources.
func NewSpace(secret []byte) *mem.Space {
	sp := mem.NewSpace()
	sp.MustAddRegion(mem.Region{Name: "shared", Base: SharedBase, Size: SharedSize,
		Perm: mem.PermRead | mem.PermExec})
	sp.MustAddRegion(mem.Region{Name: "dedicated", Base: DedicatedBase, Size: DedicatedSize,
		Perm: mem.PermRead | mem.PermWrite})
	sp.MustAddRegion(mem.Region{Name: "swap", Base: SwapBase, Size: SwapSize,
		Perm: mem.PermRead | mem.PermWrite | mem.PermExec})
	sp.MustAddRegion(mem.Region{Name: "guardacc", Base: GuardAccBase, Size: GuardAccSize,
		Perm: 0, Fault: mem.FaultAccess})
	sp.MustAddRegion(mem.Region{Name: "guardpage", Base: GuardPageBase, Size: GuardPageSize,
		Perm: 0, Fault: mem.FaultPage})
	sp.MustAddRegion(mem.Region{Name: "data", Base: DataBase, Size: DataSize,
		Perm: mem.PermRead | mem.PermWrite})
	loadContents(sp, secret)
	return sp
}

// ResetSpace reinitialises a canonical swapMem space in place for a new run
// with a (possibly different) secret: all region bytes and taints are zeroed,
// permissions restored (undoing any PermUpdate a previous schedule applied),
// and the firmware and secret rewritten. The result is byte-identical to
// NewSpace(secret) — the per-shard execution contexts in internal/core rely
// on this equivalence to reuse one allocation across a whole campaign.
func ResetSpace(sp *mem.Space, secret []byte) {
	sp.Reset()
	loadContents(sp, secret)
}

// loadContents plants the secret (a taint source) and the firmware into a
// zeroed canonical space.
func loadContents(sp *mem.Space, secret []byte) {
	sp.WriteRaw(SecretAddr, secret)
	sp.SetTaint(SecretAddr, len(secret), true)
	installFirmware(sp)
}

// Firmware images are identical for every space; assemble them once.
var (
	fwSwapDone = isa.MustAsm(SharedBase, "swap_done:\necall").Bytes()
	// Nop filler with a trailing ecall every 64 bytes so transient fetches
	// into the shared region decode cleanly.
	fwFiller = isa.MustAsm(SharedBase+0x100, `
		nop
		nop
		nop
		ecall
	`).Bytes()
)

// installFirmware writes the shared-region runtime stubs: the swap_done
// packet terminator at SharedBase and a page of executable nop filler used
// as a landing pad by icache-encoding gadgets.
func installFirmware(sp *mem.Space) {
	sp.WriteRaw(SharedBase, fwSwapDone)
	for off := uint64(0x100); off+16 <= SharedSize; off += 64 {
		sp.WriteRaw(SharedBase+off, fwFiller)
	}
}

// FlipSecret returns the bit-flipped secret used for the variant DUT —
// the paper's strategy for avoiding identical control values (false
// negatives in diffIFT).
func FlipSecret(secret []byte) []byte {
	out := make([]byte, len(secret))
	for i, b := range secret {
		out[i] = ^b
	}
	return out
}

// Runtime drives one DUT instance through a swap schedule via its trap hook.
type Runtime struct {
	Space *mem.Space
	Sched *Schedule
	Core  *uarch.Core

	idx     int
	started bool
	// Traps counts handled swap traps; ExcTraps counts non-ecall exceptions
	// (useful when diagnosing stimulus bugs).
	Traps    int
	ExcTraps int
	// LoadCycles records the core cycle at which each packet was swapped in;
	// the last entry is the transient packet's start (trace analyses scope
	// to it).
	LoadCycles []int
}

// NewRuntime wires a runtime to a core and schedule. The caller must call
// Start to load the first packet.
func NewRuntime(core *uarch.Core, space *mem.Space, sched *Schedule) *Runtime {
	rt := &Runtime{}
	rt.Rebind(core, space, sched)
	return rt
}

// Rebind rewires an existing runtime for a fresh run: new core/space/schedule
// binding, swap counters zeroed, load-cycle log truncated (capacity kept).
// Rebind leaves the runtime in exactly the state NewRuntime produces; the
// caller must still call Start. A Runtime never mutates its Schedule, so the
// same Schedule value may be bound to several runtimes concurrently.
func (rt *Runtime) Rebind(core *uarch.Core, space *mem.Space, sched *Schedule) {
	rt.Space = space
	rt.Sched = sched
	rt.Core = core
	rt.idx = 0
	rt.started = false
	rt.Traps = 0
	rt.ExcTraps = 0
	rt.LoadCycles = rt.LoadCycles[:0]
	core.TrapHook = rt.onTrap
}

// zeroSwap is the shared source for clearing the swappable region; it is
// never written.
var zeroSwap = make([]byte, SwapSize)

// ClearSwap zeroes the swappable region — the shared packet-unload step for
// every runtime that mirrors the swap scheduling (the uarch Runtime here,
// the architectural one in internal/isadiff).
func ClearSwap(sp *mem.Space) { sp.WriteRaw(SwapBase, zeroSwap) }

// loadPacket writes the packet image into the swappable region and flushes
// the icache (swapped code must be refetched).
func (rt *Runtime) loadPacket(st Step) uint64 {
	for _, pu := range st.PrePerm {
		if err := rt.Space.SetPerm(pu.Region, pu.Perm); err != nil {
			panic(fmt.Sprintf("swapmem: %v", err))
		}
	}
	// Clear the swappable region, then install the image.
	ClearSwap(rt.Space)
	img := st.Packet.Image
	rt.Space.WriteRaw(img.Base, img.Bytes())
	rt.Core.ICache.FlushAll()
	rt.LoadCycles = append(rt.LoadCycles, rt.Core.Cycle)
	return st.Packet.Entry
}

// TransientStart returns the cycle the final (transient) packet was loaded.
func (rt *Runtime) TransientStart() int {
	if len(rt.LoadCycles) == 0 {
		return 0
	}
	return rt.LoadCycles[len(rt.LoadCycles)-1]
}

// Start loads the first packet and points the core at its entry.
func (rt *Runtime) Start() {
	if len(rt.Sched.Steps) == 0 {
		rt.Core.Restart(SharedBase)
		return
	}
	entry := rt.loadPacket(rt.Sched.Steps[0])
	rt.idx = 1
	rt.started = true
	rt.Core.Restart(entry)
}

// onTrap is the swap scheduler: any trap ends the current packet; remaining
// packets are loaded in order, and the run halts when the schedule drains.
func (rt *Runtime) onTrap(t isasim.Trap) isasim.TrapAction {
	rt.Traps++
	if t.Cause != isasim.CauseEnvCall && t.Cause != isasim.CauseBreakpoint {
		rt.ExcTraps++
	}
	if rt.idx >= len(rt.Sched.Steps) {
		return isasim.TrapAction{Halt: true}
	}
	entry := rt.loadPacket(rt.Sched.Steps[rt.idx])
	rt.idx++
	return isasim.TrapAction{NewPC: entry}
}

// Exhausted reports whether all packets have been scheduled.
func (rt *Runtime) Exhausted() bool { return rt.idx >= len(rt.Sched.Steps) }
