package swapmem

import (
	"bytes"
	"testing"

	"dejavuzz/internal/uarch"
)

// TestResetSpaceEquivalence pins ResetSpace against NewSpace: a canonical
// space that executed a schedule (packet images written, permissions
// revoked, data stored, taint spread) and is then ResetSpace'd with a new
// secret must be indistinguishable from NewSpace(secret).
func TestResetSpaceEquivalence(t *testing.T) {
	secretA := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	secretB := FlipSecret(secretA)

	used := NewSpace(secretA)
	// Pollute: packet image, data stores, taint spray, permission revocation.
	used.WriteRaw(SwapBase, bytes.Repeat([]byte{0xaa}, 256))
	used.WriteRaw(DataBase+0x100, []byte{9, 9, 9, 9})
	used.SetTaint(DataBase, 0x200, true)
	if err := used.SetPerm("dedicated", 0); err != nil {
		t.Fatal(err)
	}
	ResetSpace(used, secretB)

	fresh := NewSpace(secretB)
	for _, r := range fresh.Regions() {
		ur := used.RegionByName(r.Name)
		if ur == nil {
			t.Fatalf("region %q missing after reset", r.Name)
		}
		if ur.Perm != r.Perm {
			t.Errorf("region %q: perm %v, want %v", r.Name, ur.Perm, r.Perm)
		}
		fb := fresh.ReadRaw(r.Base, int(r.Size))
		ub := used.ReadRaw(r.Base, int(r.Size))
		if !bytes.Equal(fb, ub) {
			t.Errorf("region %q: bytes differ after reset", r.Name)
		}
		ft := fresh.TaintRaw(r.Base, int(r.Size))
		ut := used.TaintRaw(r.Base, int(r.Size))
		if !bytes.Equal(ft, ut) {
			t.Errorf("region %q: taint differs after reset", r.Name)
		}
	}
}

// TestRuntimeRebindEquivalence checks Rebind leaves a runtime in the state
// NewRuntime produces (counters zeroed, log truncated, hook attached).
func TestRuntimeRebindEquivalence(t *testing.T) {
	sp := NewSpace([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	c := uarch.NewCore(uarch.BOOMConfig(), sp, uarch.IFTOff)
	sched := &Schedule{}
	rt := NewRuntime(c, sp, sched)
	rt.Traps = 7
	rt.ExcTraps = 3
	rt.idx = 2
	rt.started = true
	rt.LoadCycles = append(rt.LoadCycles, 10, 20)

	sp2 := NewSpace([]byte{8, 7, 6, 5, 4, 3, 2, 1})
	c2 := uarch.NewCore(uarch.BOOMConfig(), sp2, uarch.IFTOff)
	sched2 := &Schedule{}
	rt.Rebind(c2, sp2, sched2)
	if rt.Space != sp2 || rt.Sched != sched2 || rt.Core != c2 {
		t.Fatal("rebind did not swap bindings")
	}
	if c2.TrapHook == nil {
		t.Fatal("rebind did not attach the trap hook")
	}
	if rt.Traps != 0 || rt.ExcTraps != 0 || rt.idx != 0 || rt.started || len(rt.LoadCycles) != 0 {
		t.Fatalf("rebind left stale state: %+v", rt)
	}
}
