package swapmem

import (
	"strings"
	"testing"

	"dejavuzz/internal/isa"
)

func TestMigrationReport(t *testing.T) {
	p1 := &Packet{Name: "train", Kind: PacketTriggerTrain,
		Image: isa.MustAsm(SwapBase, "li t0, 5\necall"), Entry: SwapBase}
	p2 := &Packet{Name: "transient", Kind: PacketTransient,
		Image: isa.MustAsm(SwapBase, "nop\necall"), Entry: SwapBase}
	s := &Schedule{}
	s.Append(p1)
	s.AppendWithPerm(p2, PermUpdate{Region: "dedicated", Perm: 0})

	rep := MigrationReport(s)
	for _, want := range []string{
		"2 packets",
		"train (trigger-train)",
		"transient (transient)",
		`set region "dedicated"`,
		"flush icache",
		"ecall",
		"stitching notes",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Addresses rendered at runtime locations.
	if !strings.Contains(rep, "0x00004000") {
		t.Error("report missing swappable-region addresses")
	}
}
