package swapmem

import (
	"testing"

	"dejavuzz/internal/isa"
	"dejavuzz/internal/mem"
	"dejavuzz/internal/uarch"
)

var secret = []byte{1, 2, 3, 4, 5, 6, 7, 8}

func TestLayout(t *testing.T) {
	sp := NewSpace(secret)
	for _, name := range []string{"shared", "dedicated", "guardacc", "guardpage", "swap", "data"} {
		if sp.RegionByName(name) == nil {
			t.Errorf("region %q missing", name)
		}
	}
	// The secret is planted and tainted.
	v, tt := sp.Read64(SecretAddr)
	if v != 0x0807060504030201 {
		t.Fatalf("secret = %#x", v)
	}
	if tt != ^uint64(0) {
		t.Fatalf("secret taint = %#x", tt)
	}
	// Guard regions raise the right fault kinds.
	if err := sp.Check(GuardAccBase, 8, mem.AccessLoad); err.(*mem.Fault).Page {
		t.Error("guardacc raises page fault")
	}
	if err := sp.Check(GuardPageBase, 8, mem.AccessLoad); !err.(*mem.Fault).Page {
		t.Error("guardpage raises access fault")
	}
	// Firmware: swap_done is an ecall.
	b := sp.ReadRaw(SwapDoneAddr, 4)
	if got := isa.Decode(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24); got.Op != isa.OpEcall {
		t.Fatalf("swap_done holds %v", got.Op)
	}
}

func TestFlipSecret(t *testing.T) {
	f := FlipSecret(secret)
	for i := range secret {
		if f[i] != ^secret[i] {
			t.Fatalf("flip[%d] = %#x", i, f[i])
		}
	}
}

func packetFrom(t *testing.T, name, src string) *Packet {
	t.Helper()
	return &Packet{Name: name, Kind: PacketTriggerTrain,
		Image: isa.MustAsm(SwapBase, src), Entry: SwapBase}
}

func TestRuntimeSwapsPackets(t *testing.T) {
	// Packet 1 writes 11 to data; packet 2 (at the same addresses!) writes
	// 22 elsewhere. Both must execute in order.
	p1 := packetFrom(t, "p1", `
		li t0, 0x8000
		li t1, 11
		sd t1, 0(t0)
		ecall
	`)
	p2 := packetFrom(t, "p2", `
		li t0, 0x8008
		li t1, 22
		sd t1, 0(t0)
		ecall
	`)
	sched := &Schedule{}
	sched.Append(p1)
	sched.Append(p2)

	sp := NewSpace(secret)
	c := uarch.NewCore(uarch.BOOMConfig(), sp, uarch.IFTOff)
	rt := NewRuntime(c, sp, sched)
	rt.Start()
	c.Run(5000)

	if !c.Halted {
		t.Fatal("did not halt")
	}
	if v, _ := sp.Read64(0x8000); v != 11 {
		t.Fatalf("packet 1 effect: %d", v)
	}
	if v, _ := sp.Read64(0x8008); v != 22 {
		t.Fatalf("packet 2 effect: %d", v)
	}
	if rt.Traps != 2 {
		t.Fatalf("traps = %d, want 2", rt.Traps)
	}
	if len(rt.LoadCycles) != 2 {
		t.Fatalf("load cycles = %v", rt.LoadCycles)
	}
	if !rt.Exhausted() {
		t.Fatal("schedule not exhausted")
	}
}

func TestPermUpdateBetweenPackets(t *testing.T) {
	// Packet 1 reads the secret legally; packet 2 runs after revocation and
	// must fault.
	p1 := packetFrom(t, "warm", `
		li t0, 0x2000
		ld a0, 0(t0)
		ecall
	`)
	p2 := packetFrom(t, "transient", `
		li t0, 0x2000
		ld a1, 0(t0)
		ecall
	`)
	sched := &Schedule{}
	sched.Append(p1)
	sched.AppendWithPerm(p2, PermUpdate{Region: "dedicated", Perm: 0})

	sp := NewSpace(secret)
	c := uarch.NewCore(uarch.BOOMConfig(), sp, uarch.IFTOff)
	rt := NewRuntime(c, sp, sched)
	rt.Start()
	c.Run(5000)

	if rt.ExcTraps != 1 {
		t.Fatalf("exception traps = %d, want 1 (the revoked secret load)", rt.ExcTraps)
	}
	if a0, _ := c.ArchReg(isa.RegA0); a0 != 0x0807060504030201 {
		t.Fatalf("legal read got %#x", a0)
	}
}

func TestScheduleEditing(t *testing.T) {
	p1 := packetFrom(t, "a", "ecall")
	p2 := packetFrom(t, "b", "ecall")
	p3 := packetFrom(t, "c", "nop\necall")
	p1.TrainInsts, p1.PadInsts = 2, 10
	p2.TrainInsts, p2.PadInsts = 3, 20
	p3.Kind = PacketTransient

	s := &Schedule{}
	s.Append(p1)
	s.Append(p2)
	s.Append(p3)

	to, eto := s.TrainingOverhead()
	if to != 35 || eto != 5 {
		t.Fatalf("TO/ETO = %d/%d", to, eto)
	}

	r := s.WithoutStep(0)
	if len(r.Steps) != 2 || r.Steps[0].Packet != p2 {
		t.Fatal("WithoutStep broken")
	}
	if len(s.Steps) != 3 {
		t.Fatal("WithoutStep mutated the original")
	}

	c := s.Clone()
	c.Steps[0].Packet = p3
	if s.Steps[0].Packet != p1 {
		t.Fatal("Clone aliases steps")
	}
}

func TestICacheFlushedOnSwap(t *testing.T) {
	// Two packets with identical addresses but different code: without the
	// icache flush the second packet would execute stale instructions.
	p1 := packetFrom(t, "p1", `
		li a0, 1
		ecall
	`)
	p2 := packetFrom(t, "p2", `
		li a0, 2
		ecall
	`)
	sched := &Schedule{}
	sched.Append(p1)
	sched.Append(p2)

	sp := NewSpace(secret)
	c := uarch.NewCore(uarch.BOOMConfig(), sp, uarch.IFTOff)
	rt := NewRuntime(c, sp, sched)
	rt.Start()
	c.Run(5000)
	if a0, _ := c.ArchReg(isa.RegA0); a0 != 2 {
		t.Fatalf("a0 = %d: stale icache content executed", a0)
	}
}

func TestPacketKindStrings(t *testing.T) {
	if PacketTriggerTrain.String() != "trigger-train" ||
		PacketWindowTrain.String() != "window-train" ||
		PacketTransient.String() != "transient" {
		t.Fatal("PacketKind strings wrong")
	}
}
