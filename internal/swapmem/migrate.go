package swapmem

import (
	"fmt"
	"strings"

	"dejavuzz/internal/isa"
)

// MigrationReport renders a swap schedule as a human-readable stitching
// guide: the paper's §7 notes that swapMem stimuli only run on swapMem, and
// migrating them to a standard memory model requires careful manual
// stitching. This report gives a developer everything needed to do that —
// the packet order, permission updates, entry points and full disassembly of
// every packet at its runtime addresses.
func MigrationReport(s *Schedule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "swapMem stimulus migration report (%d packets)\n", len(s.Steps))
	fmt.Fprintf(&b, "shared region %#x..%#x  dedicated %#x..%#x  swappable %#x..%#x\n\n",
		SharedBase, SharedBase+SharedSize, DedicatedBase, DedicatedBase+DedicatedSize,
		SwapBase, SwapBase+SwapSize)
	for i, st := range s.Steps {
		p := st.Packet
		fmt.Fprintf(&b, "[%d] %s (%s), entry %#x, %d instructions\n",
			i, p.Name, p.Kind, p.Entry, p.InstCount())
		for _, pu := range st.PrePerm {
			fmt.Fprintf(&b, "    pre: set region %q permissions to %#x\n", pu.Region, pu.Perm)
		}
		fmt.Fprintf(&b, "    swap: flush icache, load image at %#x, jump to entry\n", p.Image.Base)
		for wi, w := range p.Image.Words {
			addr := p.Image.Base + uint64(4*wi)
			fmt.Fprintf(&b, "    %#08x: %08x  %s\n", addr, w, isa.Decode(w))
		}
		b.WriteString("\n")
	}
	b.WriteString("stitching notes:\n")
	b.WriteString("  - packets time-share the swappable region; to linearise, relocate each\n")
	b.WriteString("    packet to a distinct address range and rewrite absolute `li` targets\n")
	b.WriteString("  - replace each terminating ecall with a jump to the next packet's entry\n")
	b.WriteString("  - apply the permission updates via your platform's PMP/page tables\n")
	return b.String()
}
