package scenario_test

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/scenario"
	"dejavuzz/internal/swapmem"
	"dejavuzz/internal/uarch"
)

// The test lives in scenario_test (external) so it can drive the registry
// through internal/gen's builder exactly as campaigns do.

func TestRegistryOrderIndependence(t *testing.T) {
	names := scenario.Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	if len(names) < 11 {
		t.Fatalf("expected at least 11 registered families (8 canonical + 3 extended), got %d: %v", len(names), names)
	}
	// All() must enumerate in exactly the same (sorted) order, and repeated
	// enumerations must agree — the registry exposes no registration order.
	var fromAll []string
	for _, s := range scenario.All() {
		fromAll = append(fromAll, s.Name())
	}
	if !reflect.DeepEqual(names, fromAll) {
		t.Fatalf("All() order %v != Names() order %v", fromAll, names)
	}
	if again := scenario.Names(); !reflect.DeepEqual(names, again) {
		t.Fatalf("Names() unstable across calls: %v vs %v", names, again)
	}
}

func TestRegistryDuplicateRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	// page-fault is registered at init; a second registration must panic.
	fam, err := scenario.Lookup("page-fault")
	if err != nil {
		t.Fatal(err)
	}
	scenario.Register(fam)
}

func TestCanonicalCoversAllTriggers(t *testing.T) {
	seen := map[string]bool{}
	for _, tr := range scenario.AllTriggerTypes() {
		fam := scenario.ByTrigger(tr)
		if fam.Legacy() != tr {
			t.Errorf("canonical family %q for %v reports legacy %v", fam.Name(), tr, fam.Legacy())
		}
		if seen[fam.Name()] {
			t.Errorf("family %q canonical for two triggers", fam.Name())
		}
		seen[fam.Name()] = true
		// The display-name migration mapping must round-trip.
		byWin, ok := scenario.ByWindowName(tr.String())
		if !ok || byWin.Name() != fam.Name() {
			t.Errorf("ByWindowName(%q) = %v, want %q", tr.String(), byWin, fam.Name())
		}
	}
}

// TestEveryFamilyBuildsQuick is the testing/quick property: for every
// registered family and random generator entropy, the full stimulus
// construction pipeline (phase-1 build, window completion, sanitisation)
// assembles without error for both core configurations, the images fit the
// swappable region, and the window sits behind the trigger.
func TestEveryFamilyBuildsQuick(t *testing.T) {
	for _, fam := range scenario.All() {
		fam := fam
		t.Run(fam.Name(), func(t *testing.T) {
			prop := func(entropy int64, variantBit bool) bool {
				g := gen.New(entropy)
				for _, kind := range []uarch.CoreKind{uarch.KindBOOM, uarch.KindXiangShan} {
					seed, err := g.SeedScenario(kind, fam.Name())
					if err != nil {
						t.Logf("%v/%s: seed: %v", kind, fam.Name(), err)
						return false
					}
					if variantBit {
						seed.Variant = gen.VariantRandom
					}
					st, err := g.BuildStimulus(seed)
					if err != nil {
						t.Logf("%v/%s: build: %v", kind, fam.Name(), err)
						return false
					}
					if st.Transient == nil || st.Transient.Image.Size() > swapmem.SwapSize {
						t.Logf("%v/%s: transient image missing or oversized", kind, fam.Name())
						return false
					}
					if st.WindowLo <= st.TriggerPC || st.WindowHi <= st.WindowLo {
						t.Logf("%v/%s: window [%#x,%#x) vs trigger %#x",
							kind, fam.Name(), st.WindowLo, st.WindowHi, st.TriggerPC)
						return false
					}
					cst, err := g.CompleteWindow(st)
					if err != nil {
						t.Logf("%v/%s: complete: %v", kind, fam.Name(), err)
						return false
					}
					if !cst.Completed || len(cst.EncodeLines) == 0 {
						t.Logf("%v/%s: window not completed", kind, fam.Name())
						return false
					}
					if cst.Transient.Image.Size() > swapmem.SwapSize {
						t.Logf("%v/%s: completed image oversized", kind, fam.Name())
						return false
					}
					if _, err := g.Sanitized(cst); err != nil {
						t.Logf("%v/%s: sanitise: %v", kind, fam.Name(), err)
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSchedulerPickDistributionFollowsYield(t *testing.T) {
	// Exercised under both policies: a family that keeps yielding must end
	// up over-sampled relative to dry ones, and no family may hit zero.
	for _, policy := range []scenario.Policy{scenario.PolicyUCB, scenario.PolicyEMA} {
		t.Run(string(policy), func(t *testing.T) {
			fams := []string{"a", "b", "c"}
			sch, err := scenario.NewScheduler(fams, policy)
			if err != nil {
				t.Fatal(err)
			}
			// Feed several barriers where only "b" yields.
			for i := 0; i < 6; i++ {
				sch.Update(map[string]scenario.Yield{
					"a": {Picks: 10},
					"b": {Picks: 10, Points: 40, Findings: 1},
					"c": {Picks: 10},
				})
			}
			if wb, wa := sch.WeightOf("b"), sch.WeightOf("a"); wb <= wa {
				t.Fatalf("yielding family not upweighted: b=%v a=%v", wb, wa)
			}
			rng := rand.New(rand.NewSource(1))
			counts := map[string]int{}
			for i := 0; i < 4000; i++ {
				counts[sch.Pick(rng)]++
			}
			if counts["b"] <= counts["a"] || counts["b"] <= counts["c"] {
				t.Fatalf("pick distribution ignores weights: %v", counts)
			}
			// Exploration (UCB bonus / EMA floor) keeps the dry families alive.
			if counts["a"] == 0 || counts["c"] == 0 {
				t.Fatalf("exploration starved a family: %v", counts)
			}
		})
	}
}

func TestSchedulerStateRoundTrip(t *testing.T) {
	for _, policy := range []scenario.Policy{scenario.PolicyUCB, scenario.PolicyEMA} {
		t.Run(string(policy), func(t *testing.T) {
			fams := []string{"x", "y"}
			sch, err := scenario.NewScheduler(fams, policy)
			if err != nil {
				t.Fatal(err)
			}
			sch.Update(map[string]scenario.Yield{"x": {Picks: 4, Points: 12}, "y": {Picks: 2}})
			restored, err := scenario.NewSchedulerFromState(fams, policy, sch.State())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sch.State(), restored.State()) {
				t.Fatalf("state did not round-trip: %v vs %v", sch.State(), restored.State())
			}
			// The restored scheduler must draw the same future pick stream.
			a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
			for i := 0; i < 200; i++ {
				if p, q := sch.Pick(a), restored.Pick(b); p != q {
					t.Fatalf("pick %d diverged after restore: %q vs %q", i, p, q)
				}
			}
			// A different family set must be refused (the checkpoint-safety seam).
			if _, err := scenario.NewSchedulerFromState([]string{"x"}, policy, sch.State()); err == nil {
				t.Fatal("state restore accepted a mismatched family set")
			}
		})
	}
}

func TestCatalogTableListsEveryFamily(t *testing.T) {
	table := scenario.CatalogTable()
	for _, name := range scenario.Names() {
		if !strings.Contains(table, "`"+name+"`") {
			t.Errorf("catalog table missing family %q:\n%s", name, table)
		}
	}
}
