package scenario_test

import (
	"math/rand"
	"testing"

	"dejavuzz/internal/scenario"
)

// The scheduler property suite. The engine contract being checked: Pick is
// read-only during an epoch (drawing from the caller's RNG against frozen
// weights), Update runs once per merge barrier with the epoch's merged
// yield, and under PolicyUCB no enabled family can starve.

func TestNewSchedulerRejectsEmptyFamilySet(t *testing.T) {
	// Regression: the old constructor accepted an empty set and Pick then
	// indexed names[len(names)-1] out of bounds. Construction must fail.
	if _, err := scenario.NewScheduler(nil, scenario.PolicyUCB); err == nil {
		t.Fatal("NewScheduler accepted a nil family set")
	}
	if _, err := scenario.NewScheduler([]string{}, scenario.PolicyEMA); err == nil {
		t.Fatal("NewScheduler accepted an empty family set")
	}
}

func TestNewSchedulerRejectsDuplicatesAndUnknownPolicy(t *testing.T) {
	if _, err := scenario.NewScheduler([]string{"a", "b", "a"}, scenario.PolicyUCB); err == nil {
		t.Fatal("NewScheduler accepted a duplicated family")
	}
	if _, err := scenario.NewScheduler([]string{"a"}, scenario.Policy("thompson")); err == nil {
		t.Fatal("NewScheduler accepted an unknown policy")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want scenario.Policy
		ok   bool
	}{
		{"", scenario.DefaultPolicy, true},
		{"ucb", scenario.PolicyUCB, true},
		{"ema", scenario.PolicyEMA, true},
		{"UCB", "", false},
		{"greedy", "", false},
	}
	for _, c := range cases {
		got, err := scenario.ParsePolicy(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParsePolicy(%q) accepted an invalid name", c.in)
		}
	}
}

func TestSchedulerSingleFamilyAlwaysPicked(t *testing.T) {
	sch, err := scenario.NewScheduler([]string{"only"}, scenario.PolicyUCB)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 16; i++ {
		if got := sch.Pick(rng); got != "only" {
			t.Fatalf("single-family pick returned %q", got)
		}
	}
}

// simulateEpochs drives a scheduler the way the engine does: each epoch
// draws epochPicks picks against frozen weights, scores them with perPick
// (points credited to each pick of a family), then folds the merged yield
// in at the barrier. It returns cumulative pick counts per family.
func simulateEpochs(t *testing.T, sch *scenario.Scheduler, rng *rand.Rand, epochs, epochPicks int, perPick map[string]int) map[string]int {
	t.Helper()
	total := map[string]int{}
	for e := 0; e < epochs; e++ {
		yield := map[string]scenario.Yield{}
		for i := 0; i < epochPicks; i++ {
			name := sch.Pick(rng)
			y := yield[name]
			y.Picks++
			y.Points += perPick[name]
			yield[name] = y
			total[name]++
		}
		sch.Update(yield)
	}
	return total
}

// TestUCBNoStarvationProperty is the headline property: for any seed and an
// adversarial yield profile (one family massively out-yielding the rest),
// every enabled family is picked at least once within families×epochPicks
// iterations. The bound is structural — while any family is untried, Pick
// draws uniformly over exactly the untried set, and every barrier removes
// at least one family from it — so the test sweeps many seeds rather than
// trusting one lucky stream.
func TestUCBNoStarvationProperty(t *testing.T) {
	fams := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	perPick := map[string]int{"c": 500} // adversarially hot family
	const epochPicks = 16
	for seed := int64(0); seed < 50; seed++ {
		sch, err := scenario.NewScheduler(fams, scenario.PolicyUCB)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		counts := simulateEpochs(t, sch, rng, len(fams), epochPicks, perPick)
		for _, f := range fams {
			if counts[f] == 0 {
				t.Fatalf("seed %d: family %q starved within %d picks: %v",
					seed, f, len(fams)*epochPicks, counts)
			}
		}
	}
}

// TestUCBRegretSanity checks the exploit side of the bandit: once every
// family has been tried, the hot family's cumulative pick share must grow
// across barriers and end clearly above uniform.
func TestUCBRegretSanity(t *testing.T) {
	fams := []string{"a", "b", "hot", "d"}
	perPick := map[string]int{"hot": 40}
	sch, err := scenario.NewScheduler(fams, scenario.PolicyUCB)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const epochPicks = 32
	hotTotal, allTotal := 0, 0
	var shares []float64
	for e := 0; e < 12; e++ {
		counts := simulateEpochs(t, sch, rng, 1, epochPicks, perPick)
		hotTotal += counts["hot"]
		allTotal += epochPicks
		shares = append(shares, float64(hotTotal)/float64(allTotal))
	}
	// Share grows across the campaign (compare first-third to last-third
	// averages — per-barrier monotonicity would be noise-sensitive).
	third := len(shares) / 3
	early, late := 0.0, 0.0
	for i := 0; i < third; i++ {
		early += shares[i]
		late += shares[len(shares)-1-i]
	}
	if late <= early {
		t.Fatalf("hot family's pick share did not grow: early=%v late=%v shares=%v", early/float64(third), late/float64(third), shares)
	}
	if final := shares[len(shares)-1]; final <= 1.0/float64(len(fams)) {
		t.Fatalf("hot family's final share %v not above uniform %v", final, 1.0/float64(len(fams)))
	}
}

// TestUCBNeverDecaysWithoutEvidence pins the fix itself: a family that goes
// unpicked for many consecutive barriers must never lose weight — absence
// of picks is absence of evidence. (Under the legacy EMA its weight would
// halve per barrier down to the floor; see the EMA characterisation test.)
func TestUCBNeverDecaysWithoutEvidence(t *testing.T) {
	sch, err := scenario.NewScheduler([]string{"busy", "idle"}, scenario.PolicyUCB)
	if err != nil {
		t.Fatal(err)
	}
	// Try both once so the forced-exploration phase is over.
	sch.Update(map[string]scenario.Yield{
		"busy": {Picks: 1, Points: 8},
		"idle": {Picks: 1},
	})
	prev := sch.WeightOf("idle")
	for barrier := 0; barrier < 20; barrier++ {
		// Only busy gets picked, at a constant points-per-pick, barrier
		// after barrier; idle sees zero evidence.
		sch.Update(map[string]scenario.Yield{"busy": {Picks: 4, Points: 32}})
		w := sch.WeightOf("idle")
		if w < prev {
			t.Fatalf("barrier %d: idle family's weight decayed with no evidence: %v -> %v", barrier, prev, w)
		}
		prev = w
	}
}

// TestEMADecaysToFloorWithoutEvidence characterises the legacy starvation
// bug the bandit fixes, so the A/B comparison stays honest: under
// PolicyEMA an unpicked family halves per barrier down to the exploration
// floor despite zero evidence about it.
func TestEMADecaysToFloorWithoutEvidence(t *testing.T) {
	sch, err := scenario.NewScheduler([]string{"busy", "idle"}, scenario.PolicyEMA)
	if err != nil {
		t.Fatal(err)
	}
	if w := sch.WeightOf("idle"); w != 1.0 {
		t.Fatalf("EMA start weight = %v, want 1.0", w)
	}
	sch.Update(map[string]scenario.Yield{"busy": {Picks: 4, Points: 32}})
	if w := sch.WeightOf("idle"); w != 0.5 {
		t.Fatalf("EMA weight after one dry barrier = %v, want 0.5", w)
	}
	sch.Update(map[string]scenario.Yield{"busy": {Picks: 4, Points: 32}})
	if w := sch.WeightOf("idle"); w != 0.25 {
		t.Fatalf("EMA weight after two dry barriers = %v, want the 0.25 floor", w)
	}
	// And it stays pinned there: the floor keeps it barely alive, which is
	// the behaviour that starved two families in 128-iteration campaigns.
	sch.Update(map[string]scenario.Yield{"busy": {Picks: 4, Points: 32}})
	if w := sch.WeightOf("idle"); w != 0.25 {
		t.Fatalf("EMA floor not sticky: %v", w)
	}
}

// TestSchedulerDeterministicPickStream pins that two schedulers fed the
// same yields and the same RNG streams produce identical pick sequences —
// the unit-level face of the engine's worker-count determinism.
func TestSchedulerDeterministicPickStream(t *testing.T) {
	for _, policy := range []scenario.Policy{scenario.PolicyUCB, scenario.PolicyEMA} {
		t.Run(string(policy), func(t *testing.T) {
			fams := []string{"a", "b", "c", "d", "e"}
			perPick := map[string]int{"b": 12, "d": 3}
			s1, err := scenario.NewScheduler(fams, policy)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := scenario.NewScheduler(fams, policy)
			if err != nil {
				t.Fatal(err)
			}
			r1, r2 := rand.New(rand.NewSource(99)), rand.New(rand.NewSource(99))
			c1 := simulateEpochs(t, s1, r1, 8, 24, perPick)
			c2 := simulateEpochs(t, s2, r2, 8, 24, perPick)
			for _, f := range fams {
				if c1[f] != c2[f] {
					t.Fatalf("pick streams diverged: %v vs %v", c1, c2)
				}
			}
		})
	}
}
