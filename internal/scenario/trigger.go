package scenario

import "fmt"

// TriggerType enumerates the transient-window trigger classes of Table 3.
// It predates the scenario registry: every registered scenario family maps
// onto one of these classes (Scenario.Legacy) so findings, experiments and
// the SpecDoctor baseline keep a stable taxonomy, while the family name is
// the finer-grained identity new workloads register under.
type TriggerType int

const (
	TrigAccessFault TriggerType = iota
	TrigPageFault
	TrigMisalign
	TrigIllegal
	TrigMemDisambig
	TrigBranchMispred
	TrigJumpMispred
	TrigReturnMispred

	NumTriggerTypes
)

var triggerNames = [...]string{
	"load/store-access-fault",
	"load/store-page-fault",
	"load/store-misalign",
	"illegal-instruction",
	"memory-disambiguation",
	"branch-misprediction",
	"indirect-jump-misprediction",
	"return-address-misprediction",
}

func (t TriggerType) String() string {
	if t >= 0 && int(t) < len(triggerNames) {
		return triggerNames[t]
	}
	return fmt.Sprintf("trigger(%d)", int(t))
}

// IsException reports whether the trigger is an architectural-exception type
// (zero training expected).
func (t TriggerType) IsException() bool {
	switch t {
	case TrigAccessFault, TrigPageFault, TrigMisalign, TrigIllegal:
		return true
	}
	return false
}

// IsMispredict reports whether the trigger is a control-flow misprediction.
func (t TriggerType) IsMispredict() bool {
	switch t {
	case TrigBranchMispred, TrigJumpMispred, TrigReturnMispred:
		return true
	}
	return false
}

// AllTriggerTypes lists every trigger class.
func AllTriggerTypes() []TriggerType {
	out := make([]TriggerType, NumTriggerTypes)
	for i := range out {
		out[i] = TriggerType(i)
	}
	return out
}
