package scenario

import (
	"fmt"
	"math/rand"

	"dejavuzz/internal/swapmem"
)

// encodeGadgets is the shared secret-encoding gadget table families without
// a dedicated encoder draw from. Index order is part of the mutation
// surface (Params.Encoder pins one gadget), so entries are append-only.
var encodeGadgets = [][]string{
	{ // dcache encode: classic secret-indexed load
		"andi s1, s0, 0x3f",
		"slli s1, s1, 6",
		fmt.Sprintf("li t1, %#x", swapmem.DataBase+0x1000),
		"add t1, t1, s1",
		"ld t2, 0(t1)",
	},
	{ // arithmetic propagation
		"add t3, s0, s0",
		"xor t4, t3, s0",
		"mul t5, t4, t3",
	},
	{ // secret-dependent branch (control-flow encode)
		"andi s1, s0, 1",
		"beq s1, zero, 8",
		"add t3, t3, t3",
	},
	{ // FPU port contention (Spectre-Rewind shape)
		"fmv.d.x fa0, s0",
		"fdiv.d fa1, fa0, fa0",
	},
	{ // store encode
		fmt.Sprintf("li t1, %#x", swapmem.DataBase+0x2000),
		"andi s1, s0, 0x3f",
		"slli s1, s1, 3",
		"add t1, t1, s1",
		"sd s0, 0(t1)",
	},
	{ // load write-back port pressure (Spectre-Reload shape)
		fmt.Sprintf("li t1, %#x", swapmem.DataBase+0x80),
		"ld t2, 0(t1)",
		"ld t3, 8(t1)",
		"ld t4, 16(t1)",
		"ld t5, 24(t1)",
	},
	{ // secret-dependent call: corrupts RAS/BTB (Phantom shapes)
		"auipc t4, 0",
		"andi s1, s0, 1",
		"slli s1, s1, 3",
		"add t4, t4, s1",
		"jalr ra, 28(t4)",
		"nop",
		"nop",
	},
	{ // secret-dependent far jump: icache fill (Spectre-Refetch shape)
		fmt.Sprintf("li t4, %#x", swapmem.SharedBase+0x400),
		"andi s1, s0, 1",
		"slli s1, s1, 6",
		"add t4, t4, s1",
		"jr t4",
	},
}

// NumEncoders is the shared gadget table's size — the Params.Encoder
// selector ranges over [0, NumEncoders] (0 draws per op).
func NumEncoders() int { return len(encodeGadgets) }

// SharedEncode appends the Params' encode block drawn from the shared
// gadget table: Encoder 0 draws one gadget per op from the derivation RNG
// (the historical behaviour), Encoder k>0 pins every op to gadget k-1 (the
// structured swap-encoder mutation target). The RNG draw happens even when
// pinned, keeping the derivation stream aligned across Encoder values.
func SharedEncode(dst []string, p Params, rng *rand.Rand) []string {
	for i := 0; i < p.EncodeOps; i++ {
		g := encodeGadgets[rng.Intn(len(encodeGadgets))]
		if p.Encoder > 0 && p.Encoder <= len(encodeGadgets) {
			g = encodeGadgets[p.Encoder-1]
		}
		dst = append(dst, g...)
	}
	return dst
}

// The two pre-rendered secret-access variants (addresses are layout
// constants).
var (
	accessMaskedLines = []string{
		fmt.Sprintf("li t0, %#x", uint64(1)<<63|uint64(swapmem.SecretAddr)),
		"ld s0, 0(t0)",
	}
	accessPlainLines = []string{
		fmt.Sprintf("li t0, %#x", uint64(swapmem.SecretAddr)),
		"ld s0, 0(t0)",
	}
)

// DefaultAccess appends the common secret-access block: load the secret
// into s0, optionally through a masked (illegal, MDS-style) address.
func DefaultAccess(dst []string, p Params) []string {
	if p.MaskHigh {
		return append(dst, accessMaskedLines...)
	}
	return append(dst, accessPlainLines...)
}
