package scenario

import (
	"fmt"
	"math/rand"

	"dejavuzz/internal/swapmem"
	"dejavuzz/internal/uarch"
)

// The extended families: transient-window shapes the flat TriggerType enum
// could not express. Each composes proven trigger mechanics with a new
// window or encode structure, so they trigger as reliably as their legacy
// cousins while reaching state the canonical eight never touch.

// occupancyGadgets pre-renders the cache-occupancy encode blocks, one per
// gadget slot (EncodeOps selects how many stack). Each gadget owns a 1KB
// slice of the data region; the secret's slot-th bit pair (bits 2i..2i+1)
// selects which 256B quarter fills, so the signal is the *set* of resident
// lines rather than one secret-indexed line, and each stacked gadget
// encodes two fresh secret bits. Every address is a layout constant.
var occupancyGadgets = func() [4][]string {
	var out [4][]string
	for i := range out {
		base := uint64(swapmem.DataBase + 0x3000 + 0x400*i)
		out[i] = []string{
			fmt.Sprintf("srli s1, s0, %d", 2*i),
			"andi s1, s1, 0x3",
			"slli s1, s1, 8",
			fmt.Sprintf("li t1, %#x", base),
			"add t1, t1, s1",
			"ld t2, 0(t1)",
			"ld t3, 64(t1)",
			"ld t4, 128(t1)",
			"ld t5, 192(t1)",
		}
	}
	return out
}()

// stlAccessLines launders the stale pointer through an in-window
// store-to-load forwarding pair before the secret dereference.
var stlAccessLines = []string{
	"sd t1, 0(a5)", // spill the stale pointer...
	"ld t2, 0(a5)", // ...and forward it straight back
	"ld s0, 0(t2)", // dereference the forwarded copy
}

func init() {
	// nested-fault-in-branch: a faulting access *inside* a mispredicted
	// branch window (SpecFuzz-style nesting). The branch at the trigger PC
	// squashes before the transient fault can ever be raised, so the fault
	// is purely speculative — LSU/TLB fault paths are exercised under a
	// control-flow squash instead of an exception squash, a combination no
	// flat trigger reaches.
	nestedGuard := fmt.Sprintf("li t6, %#x", uint64(swapmem.GuardAccBase+0x80))
	Register(&family{
		name:      "nested-fault-in-branch",
		desc:      "transiently faulting access nested inside a mispredicted-branch window",
		legacy:    TrigBranchMispred,
		trigClass: "branch misprediction",
		winClass:  "control-flow squash over a nested fault",
		caps:      Capabilities{InvalidCode: true, StoreFlavored: true},
		squash:    uarch.SquashBranchMispredict,
		setup: func(dst []string, _ Params, _ uint64) []string {
			// Branch-condition setup plus the guard address for the nested
			// fault (architecturally dead: the window never commits).
			dst = append(dst, slowDivLines...)
			return append(dst, nestedGuard)
		},
		window: func(dst []string, p Params, body []string) ([]string, int, int) {
			fault := "ld t5, 0(t6)"
			if p.StoreFlavor {
				fault = "sd t5, 0(t6)"
			}
			dst = append(dst,
				"beq a0, a1, win",
				"ecall",
				"win:",
				fault, // nested: faults only transiently
			)
			dst = append(dst, body...)
			return append(dst, "ecall"), 2, len(body) + 2
		},
		trainings: branchTrainings,
	})

	// stl-forward-chain: a store-to-load-forwarding chain appended to the
	// memory-disambiguation window. The stale pointer obtained through the
	// mis-disambiguated load is laundered through an in-window store/load
	// forwarding pair before the secret dereference, so the leak flows
	// through the store queue's forwarding path — a channel the plain
	// mem-disambig family never exercises.
	stlSlot := fmt.Sprintf("li a5, %#x", uint64(swapmem.DataBase+0x500))
	Register(&family{
		name:      "stl-forward-chain",
		desc:      "disambiguation window laundering the stale pointer through store-to-load forwarding",
		legacy:    TrigMemDisambig,
		trigClass: "memory disambiguation",
		winClass:  "memory-ordering squash over a forwarding chain",
		caps:      Capabilities{WarmPointer: true, OwnAccess: true},
		squash:    uarch.SquashMemOrdering,
		setup: func(dst []string, _ Params, _ uint64) []string {
			// The disambiguation setup plus a forwarding slot the window
			// bounces the stale pointer through.
			dst = append(dst, disambigSetupLines...)
			return append(dst, stlSlot)
		},
		window: disambigWindow,
		access: func(dst []string, _ Params) []string {
			return append(dst, stlAccessLines...)
		},
	})

	// cache-occupancy: a page-fault window whose encoder is a Shesha-style
	// multi-gadget cache-occupancy pattern (see occupancyGadgets).
	Register(&family{
		name:      "cache-occupancy",
		desc:      "exception window with a multi-gadget cache-occupancy encoder (Shesha-style)",
		legacy:    TrigPageFault,
		trigClass: "load/store page fault",
		winClass:  "exception over an occupancy encoder",
		caps:      Capabilities{OwnEncoder: true, StoreFlavored: true},
		squash:    uarch.SquashException,
		setup:     staticSetup(fmt.Sprintf("li t6, %#x", uint64(swapmem.GuardPageBase+0x40))),
		window:    faultWindow,
		encode: func(dst []string, p Params, _ *rand.Rand) ([]string, bool) {
			for i := 0; i < p.EncodeOps && i < len(occupancyGadgets); i++ {
				dst = append(dst, occupancyGadgets[i]...)
			}
			return dst, true
		},
	})
}
