package scenario

import (
	"fmt"
	"math/rand"

	"dejavuzz/internal/swapmem"
	"dejavuzz/internal/uarch"
)

// family is the shared Scenario implementation: a description record plus
// build hooks. Nil hooks fall back to the common behaviour (no setup, no
// trainings, DefaultAccess, shared encode table), so most families only
// supply what makes them distinct. Hooks are append-style (see Scenario);
// fixed line sequences live in package-level tables so a build allocates
// nothing beyond what its parameters force (address formatting for
// PC-dependent setups).
type family struct {
	name      string
	desc      string
	legacy    TriggerType
	trigClass string
	winClass  string
	caps      Capabilities
	squash    uarch.SquashReason

	setup     func(dst []string, p Params, T uint64) []string
	window    func(dst []string, p Params, body []string) (lines []string, winOff, winLen int)
	access    func(dst []string, p Params) []string
	encode    func(dst []string, p Params, rng *rand.Rand) ([]string, bool)
	trainings func(dst []Training, p Params, winLo uint64) []Training
}

func (f *family) Name() string                       { return f.name }
func (f *family) Description() string                { return f.desc }
func (f *family) Legacy() TriggerType                { return f.legacy }
func (f *family) Classes() (string, string)          { return f.trigClass, f.winClass }
func (f *family) Caps() Capabilities                 { return f.caps }
func (f *family) ExpectedSquash() uarch.SquashReason { return f.squash }

func (f *family) Setup(dst []string, p Params, T uint64) []string {
	if f.setup == nil {
		return dst
	}
	return f.setup(dst, p, T)
}

func (f *family) Window(dst []string, p Params, body []string) ([]string, int, int) {
	return f.window(dst, p, body)
}

func (f *family) Access(dst []string, p Params) []string {
	if f.access == nil {
		return DefaultAccess(dst, p)
	}
	return f.access(dst, p)
}

func (f *family) Encode(dst []string, p Params, rng *rand.Rand) ([]string, bool) {
	if f.encode == nil {
		return dst, false
	}
	return f.encode(dst, p, rng)
}

func (f *family) Trainings(dst []Training, p Params, winLo uint64) []Training {
	if f.trainings == nil {
		return dst
	}
	return f.trainings(dst, p, winLo)
}

// staticSetup adapts a fixed line sequence into a setup hook.
func staticSetup(lines ...string) func([]string, Params, uint64) []string {
	return func(dst []string, _ Params, _ uint64) []string {
		return append(dst, lines...)
	}
}

// faultWindow is the exception-class layout: the faulting access at the
// trigger PC, the window immediately after it, an ecall terminator.
func faultWindow(dst []string, p Params, body []string) ([]string, int, int) {
	op := "ld t6, 0(t6)"
	if p.StoreFlavor {
		op = "sd t6, 0(t6)"
	}
	dst = append(dst, op)
	dst = append(dst, body...)
	return append(dst, "ecall"), 1, len(body) + 1
}

// mispredictWindow is the control-flow layout: the redirecting instruction
// at the trigger PC, the architectural exit at T+4, the window at T+8.
func mispredictWindow(dst []string, trig string, body []string) ([]string, int, int) {
	dst = append(dst, trig, "ecall", "win:")
	dst = append(dst, body...)
	return append(dst, "ecall"), 2, len(body) + 1
}

// slowDivLines is the branch-condition setup: a0 = 4 computed through two
// divisions so the branch at the trigger resolves long after prediction.
var slowDivLines = []string{
	"li a0, 36",
	"li a1, 3",
	"div a0, a0, a1",
	"div a0, a0, a1", // a0 = 4, slowly; a1 = 3 -> branch not taken
}

// slowTargetSetup computes a0 = T+4 (the architectural exit) through two
// divisions, so the actual target resolves long after fetch redirected.
func slowTargetSetup(dst []string, _ Params, T uint64) []string {
	return append(dst,
		fmt.Sprintf("li a0, %d", (T+4)*9),
		"li a1, 3",
		"div a0, a0, a1",
		"div a0, a0, a1",
	)
}

// disambigSetupLines plants the pointer slot and starts the slow
// recomputation of its address, so the trigger store's address resolves
// after the younger speculative load already forwarded the stale pointer.
// Every address is a layout constant, so the sequence renders once.
var disambigSetupLines = func() []string {
	ptr := uint64(swapmem.DataBase + 0x300)
	safe := uint64(swapmem.DataBase + 0x400)
	return []string{
		fmt.Sprintf("li a2, %#x", ptr),
		fmt.Sprintf("li a3, %#x", uint64(swapmem.SecretAddr)),
		"sd a3, 0(a2)", // pointer slot <- &secret
		fmt.Sprintf("li a4, %#x", safe),
		// Slow recomputation of the pointer address via division.
		fmt.Sprintf("li t3, %#x", ptr*9),
		"li t4, 3",
		"div t3, t3, t4",
		"div t3, t3, t4", // t3 = ptr, ready ~32 cycles later
	}
}()

func disambigWindow(dst []string, _ Params, body []string) ([]string, int, int) {
	dst = append(dst,
		"sd a4, 0(t3)", // slow-address store overwrites the pointer
		"ld t1, 0(a2)", // speculative load of the (stale) pointer
	)
	dst = append(dst, body...)
	return append(dst, "ecall"), 1, len(body) + 1
}

// branchTrainBody loops a taken branch at the trigger PC three times; its
// target is the window address (control-flow matching).
var branchTrainBody = []string{
	"beq zero, zero, taken",
	"ecall",
	"taken:", // = win (T+8)
	"addi a3, a3, -1",
	"bnez a3, trainpc",
	"ecall",
}

var branchTrainSetup = []string{"li a3, 3"}

func branchTrainings(dst []Training, _ Params, _ uint64) []Training {
	return append(dst, Training{Name: "train-branch", Setup: branchTrainSetup, Body: branchTrainBody})
}

// jumpTrainBody trains the indirect-target predictor with the window
// address (in a2), repeated to satisfy target-confidence thresholds.
var jumpTrainBody = []string{
	"jalr x0, 0(a2)", // jumps to win
	"ecall",
	"landing:", // = win
	"addi a3, a3, -1",
	"bnez a3, trainpc",
	"ecall",
}

func jumpTrainings(dst []Training, _ Params, winLo uint64) []Training {
	return append(dst, Training{
		Name:  "train-jalr",
		Setup: []string{fmt.Sprintf("li a2, %#x", winLo), "li a3, 3"},
		Body:  jumpTrainBody,
	})
}

// retTrainBody is a call whose return address equals the window start: the
// auipc of `call` sits at the trigger PC, its jalr at T+4, so ra = T+8 =
// win.
var retTrainBody = []string{fmt.Sprintf("call %#x", uint64(swapmem.SwapDoneAddr))}

func retTrainings(dst []Training, _ Params, _ uint64) []Training {
	return append(dst, Training{Name: "train-ret", Body: retTrainBody})
}

func init() {
	registerCanonical(&family{
		name:      "access-fault",
		desc:      "load/store to a permission-guarded region opens an exception window",
		legacy:    TrigAccessFault,
		trigClass: "load/store access fault",
		winClass:  "exception",
		caps:      Capabilities{InvalidCode: true, StoreFlavored: true},
		squash:    uarch.SquashException,
		setup:     staticSetup(fmt.Sprintf("li t6, %#x", uint64(swapmem.GuardAccBase+0x40))),
		window:    faultWindow,
	})
	registerCanonical(&family{
		name:      "page-fault",
		desc:      "load/store to an unmapped page opens an exception window",
		legacy:    TrigPageFault,
		trigClass: "load/store page fault",
		winClass:  "exception",
		caps:      Capabilities{StoreFlavored: true},
		squash:    uarch.SquashException,
		setup:     staticSetup(fmt.Sprintf("li t6, %#x", uint64(swapmem.GuardPageBase+0x40))),
		window:    faultWindow,
	})
	registerCanonical(&family{
		name:      "misalign",
		desc:      "misaligned load/store opens an exception window",
		legacy:    TrigMisalign,
		trigClass: "load/store misalign",
		winClass:  "exception",
		caps:      Capabilities{InvalidCode: true, StoreFlavored: true},
		squash:    uarch.SquashException,
		setup:     staticSetup(fmt.Sprintf("li t6, %#x", uint64(swapmem.DataBase+0x101))),
		window:    faultWindow,
	})
	registerCanonical(&family{
		name:      "illegal-inst",
		desc:      "undecodable instruction opens an exception window",
		legacy:    TrigIllegal,
		trigClass: "illegal instruction",
		winClass:  "exception",
		caps:      Capabilities{InvalidCode: true},
		squash:    uarch.SquashException,
		window: func(dst []string, _ Params, body []string) ([]string, int, int) {
			dst = append(dst, ".illegal")
			dst = append(dst, body...)
			return append(dst, "ecall"), 1, len(body) + 1
		},
	})
	registerCanonical(&family{
		name:      "mem-disambig",
		desc:      "younger load forwards a stale pointer past a slow-address store (memory-ordering window)",
		legacy:    TrigMemDisambig,
		trigClass: "memory disambiguation",
		winClass:  "memory-ordering squash",
		caps:      Capabilities{WarmPointer: true, OwnAccess: true},
		squash:    uarch.SquashMemOrdering,
		setup:     staticSetup(disambigSetupLines...),
		window:    disambigWindow,
		access: func(dst []string, _ Params) []string {
			// The stale pointer in t1 (set by the trigger block) points at
			// the secret; dereference it.
			return append(dst, "ld s0, 0(t1)")
		},
	})
	registerCanonical(&family{
		name:      "branch-mispredict",
		desc:      "trained-taken conditional branch with a slow not-taken condition",
		legacy:    TrigBranchMispred,
		trigClass: "branch misprediction",
		winClass:  "control-flow squash",
		squash:    uarch.SquashBranchMispredict,
		setup:     staticSetup(slowDivLines...),
		window: func(dst []string, _ Params, body []string) ([]string, int, int) {
			// Trained taken -> window at target; actually not taken -> exit.
			return mispredictWindow(dst, "beq a0, a1, win", body)
		},
		trainings: branchTrainings,
	})
	registerCanonical(&family{
		name:      "jump-mispredict",
		desc:      "indirect jump trained onto the window with a slow actual target",
		legacy:    TrigJumpMispred,
		trigClass: "indirect-jump misprediction",
		winClass:  "control-flow squash",
		squash:    uarch.SquashJumpMispredict,
		setup:     slowTargetSetup,
		window: func(dst []string, _ Params, body []string) ([]string, int, int) {
			return mispredictWindow(dst, "jalr x0, 0(a0)", body) // actual: exit at T+4
		},
		trainings: jumpTrainings,
	})
	registerCanonical(&family{
		name:      "return-mispredict",
		desc:      "return predicted from a poisoned RAS while the actual address resolves slowly",
		legacy:    TrigReturnMispred,
		trigClass: "return-address misprediction",
		winClass:  "control-flow squash",
		caps:      Capabilities{BackwardJumps: true},
		squash:    uarch.SquashReturnMispredict,
		setup: func(dst []string, p Params, T uint64) []string {
			return append(slowTargetSetup(dst, p, T), "mv ra, a0")
		},
		window: func(dst []string, _ Params, body []string) ([]string, int, int) {
			return mispredictWindow(dst, "ret", body) // predicted from RAS -> win; actual -> exit
		},
		trainings: retTrainings,
	})
}
