package scenario

import (
	"fmt"
	"strings"

	"dejavuzz/internal/uarch"
)

// Info is one catalog row: the serialisable description of a registered
// family, shared by `dejavuzz -list-scenarios`, the server's GET /scenarios
// endpoint and the README catalog check.
type Info struct {
	Name         string       `json:"name"`
	Description  string       `json:"description"`
	TriggerClass string       `json:"trigger_class"`
	WindowClass  string       `json:"window_class"`
	Legacy       string       `json:"legacy_trigger"`
	Targets      []string     `json:"targets"`
	Caps         Capabilities `json:"caps,omitzero"`
}

// targetsFor lists the built-in targets that can observe the family's
// trigger: the cycle-accurate cores always can; the architectural isasim
// pair only sees exception-class triggers (mispredictions have no
// architectural signature, so isasim honestly reports them untriggered).
func targetsFor(s Scenario) []string {
	if s.ExpectedSquash() == uarch.SquashException {
		return []string{"boom", "xiangshan", "isasim"}
	}
	return []string{"boom", "xiangshan"}
}

// Catalog returns one Info per registered family, sorted by name.
func Catalog() []Info {
	all := All()
	out := make([]Info, 0, len(all))
	for _, s := range all {
		tc, wc := s.Classes()
		out = append(out, Info{
			Name:         s.Name(),
			Description:  s.Description(),
			TriggerClass: tc,
			WindowClass:  wc,
			Legacy:       s.Legacy().String(),
			Targets:      targetsFor(s),
			Caps:         s.Caps(),
		})
	}
	return out
}

// CatalogTable renders the catalog as the canonical GitHub-markdown table.
// `dejavuzz -list-scenarios` prints exactly this, and CI diffs it against
// the README's scenario-catalog section, so the two can never drift.
func CatalogTable() string {
	var b strings.Builder
	b.WriteString("| family | trigger class | window class | targets |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, in := range Catalog() {
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n",
			in.Name, in.TriggerClass, in.WindowClass, strings.Join(in.Targets, ", "))
	}
	return b.String()
}
