// Package scenario is DejaVuzz's composable stimulus-scenario subsystem:
// the open registry the generator samples transient-window workloads from.
//
// A Scenario (family) bundles everything one transient-window shape needs —
// the architecturally-executed entry setup, the trigger-and-window layout,
// the secret-access block, an optional dedicated encode gadget, the derived
// training blocks and the squash class the window must terminate with —
// behind one interface, plus capability flags that downstream tools filter
// on (SpecDoctor's documented generator restrictions, the architectural
// isasim target's trigger observability, the README catalog).
//
// The eight trigger classes of Table 3 are registered as canonical families
// (one per TriggerType), and new workloads register alongside them without
// touching the generator, the engine, or any consumer: adding a family is a
// one-package change. Three extended families ship in-tree — a nested
// fault-inside-mispredicted-window shape (SpecFuzz-style nesting), a
// store-to-load-forwarding chain over the disambiguation window, and a
// Shesha-style multi-gadget cache-occupancy encoder.
//
// The package also provides the coverage-adaptive Scheduler campaign shards
// draw families from: per-family coverage yield observed at merge barriers
// shifts the sampling weights, with an exploration floor so no family
// starves. Weights are part of the engine's checkpoint state, so adaptive
// scheduling preserves worker-count determinism and cancel+resume
// byte-identity.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"dejavuzz/internal/uarch"
)

// Params is the per-stimulus knob set a scenario family builds from — the
// entropy the generator draws for one seed, minus the seed's identity
// fields (core, family, variant, derivation RNG).
type Params struct {
	TriggerOff   int  // pad-nop count before the trigger instruction
	WindowLen    int  // dummy-window length in instructions
	EncodeOps    int  // number of encode gadgets in Phase 2
	Encoder      int  // encode-gadget selector: 0 = draw per op, 1..N = gadget N-1
	MaskHigh     bool // mask high address bits in the secret access (MDS probing)
	SecretFaults bool // Meltdown-type: secret access itself faults
	StoreFlavor  bool // use a store for fault-type triggers
}

// Capabilities are the coarse structural properties downstream tools filter
// families on, instead of hardcoding trigger lists.
type Capabilities struct {
	// NeedsSwapMem marks families whose construction requires swapMem's
	// training/transient isolation — they cannot be expressed as a single
	// linear program, so baselines without swappable memory (SpecDoctor)
	// cannot reach them.
	NeedsSwapMem bool `json:"needs_swapmem,omitempty"`
	// BackwardJumps marks families whose trigger/window structure requires
	// backward control flow when rendered as a single linear program — the
	// form SpecDoctor's generator emits and whose backward-jump windows it
	// discards (e.g. a return window, whose `ret` jumps backwards). It is
	// NOT about DejaVuzz's own derived trainings: those run in isolated
	// swapMem packets and may loop freely (branch/jump trainings do)
	// without affecting this flag.
	BackwardJumps bool `json:"backward_jumps,omitempty"`
	// InvalidCode marks families that emit invalid accesses or illegal
	// instructions; generators restricted to valid code never reach them.
	InvalidCode bool `json:"invalid_code,omitempty"`
	// WarmPointer marks families whose window training must additionally
	// warm the disambiguation pointer slot.
	WarmPointer bool `json:"warm_pointer,omitempty"`
	// OwnEncoder marks families with a dedicated encode block that ignores
	// the shared gadget table; the swap-encoder mutation operator skips
	// them (changing Params.Encoder would not change their stimulus).
	OwnEncoder bool `json:"own_encoder,omitempty"`
	// OwnAccess marks families with a dedicated secret-access block that
	// ignores Params.MaskHigh; the flag-flip mutation operator skips
	// MaskHigh for them.
	OwnAccess bool `json:"own_access,omitempty"`
	// StoreFlavored marks families whose trigger (or nested fault) reads
	// Params.StoreFlavor; for the rest a StoreFlavor flip would be a
	// stimulus no-op and the mutation operator skips it.
	StoreFlavored bool `json:"store_flavored,omitempty"`
}

// Training is one derived trigger-training block: setup lines executed
// before alignment padding, and the training body whose first instruction
// lands on the trigger PC.
type Training struct {
	Name  string
	Setup []string
	Body  []string
}

// Scenario is one registered transient-window family. Implementations must
// be stateless values: Build methods are pure functions of their Params, so
// one instance is shared read-only across all campaign shards.
//
// The line-producing hooks are append-style — they extend dst and return
// it — so the generator's per-shard scratch buffers absorb every build and
// the campaign hot path (two to three packet builds per iteration) stays
// allocation-light, exactly as the pre-registry inline builders were.
type Scenario interface {
	// Name is the registry key (e.g. "branch-mispredict").
	Name() string
	// Description is a one-line human-readable summary.
	Description() string
	// Legacy is the nearest TriggerType class. Findings report it as their
	// window class and the SpecDoctor baseline keys its generator on it.
	Legacy() TriggerType
	// Classes returns the Table-3 trigger and transient-window classes.
	Classes() (trigger, window string)
	// Caps returns the family's structural capability flags.
	Caps() Capabilities
	// ExpectedSquash is the squash class the transient window must be
	// terminated by for the trigger criterion to hold.
	ExpectedSquash() uarch.SquashReason
	// Setup appends the architecturally-executed entry setup lines; T is
	// the trigger PC (some setups compute addresses relative to it).
	Setup(dst []string, p Params, T uint64) []string
	// Window appends the trigger-and-window layout lines emitted after the
	// "trig:" label and returns the window's offset from the trigger PC
	// and its length (both in instruction words; the body contributes
	// len(body) words).
	Window(dst []string, p Params, body []string) (lines []string, winOff, winLen int)
	// Access appends the secret-access block Phase 2 prepends to the
	// encode block when completing the window.
	Access(dst []string, p Params) []string
	// Encode appends the family's dedicated secret-encoding block and
	// reports whether it has one; ok=false leaves dst untouched and the
	// caller draws from the shared gadget table instead.
	Encode(dst []string, p Params, rng *rand.Rand) (lines []string, ok bool)
	// Trainings appends the derived trigger-training blocks; winLo is the
	// resolved transient-window start address.
	Trainings(dst []Training, p Params, winLo uint64) []Training
}

// regState is one immutable registry snapshot. Readers load it through an
// atomic pointer and index read-only maps, so the campaign hot path — which
// resolves a seed's family several times per iteration across all workers —
// takes no locks and shares no contended cache line; writers (init-time
// registration) copy-on-write under regMu.
type regState struct {
	byName    map[string]Scenario
	canonical map[TriggerType]Scenario
	names     []string // sorted
}

var regMu sync.Mutex // serialises writers only

// reg seeds through a variable initializer — not an init() function — so
// the empty snapshot exists before any file's init() registers families
// (package-level variables initialize ahead of all init functions).
var reg = func() *atomic.Pointer[regState] {
	p := new(atomic.Pointer[regState])
	p.Store(&regState{byName: map[string]Scenario{}, canonical: map[TriggerType]Scenario{}})
	return p
}()

// mutate applies one registration under the writer lock, installing a fresh
// snapshot for lock-free readers.
func mutate(f func(st *regState)) {
	regMu.Lock()
	defer regMu.Unlock()
	old := reg.Load()
	st := &regState{
		byName:    make(map[string]Scenario, len(old.byName)+1),
		canonical: make(map[TriggerType]Scenario, len(old.canonical)+1),
		names:     append([]string(nil), old.names...),
	}
	for k, v := range old.byName {
		st.byName[k] = v
	}
	for k, v := range old.canonical {
		st.canonical[k] = v
	}
	f(st)
	sort.Strings(st.names)
	reg.Store(st)
}

// Register adds a family to the registry. It panics on an empty or
// duplicate name (families are wired at init time; a collision is a
// programming error). Registration order never matters: every enumeration
// the package exposes is sorted by name.
func Register(s Scenario) {
	name := s.Name()
	if name == "" {
		panic("scenario: Register with empty name")
	}
	mutate(func(st *regState) {
		if _, dup := st.byName[name]; dup {
			panic(fmt.Sprintf("scenario: family %q registered twice", name))
		}
		st.byName[name] = s
		st.names = append(st.names, name)
	})
}

// registerCanonical registers a family as the canonical implementation of
// its legacy trigger class (the ByTrigger mapping).
func registerCanonical(s Scenario) {
	Register(s)
	mutate(func(st *regState) {
		if prev, dup := st.canonical[s.Legacy()]; dup {
			panic(fmt.Sprintf("scenario: trigger %v already canonical to %q", s.Legacy(), prev.Name()))
		}
		st.canonical[s.Legacy()] = s
	})
}

// Lookup resolves a registered family by name (lock-free).
func Lookup(name string) (Scenario, error) {
	s, ok := reg.Load().byName[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown family %q (registered: %v)", name, Names())
	}
	return s, nil
}

// Names returns the sorted names of every registered family.
func Names() []string {
	return append([]string(nil), reg.Load().names...)
}

// All returns every registered family, sorted by name.
func All() []Scenario {
	st := reg.Load()
	out := make([]Scenario, 0, len(st.names))
	for _, n := range st.names {
		out = append(out, st.byName[n])
	}
	return out
}

// ByTrigger returns the canonical family for a legacy trigger class — the
// compatibility seam for TriggerType-era callers (seeds without a family
// name, SpecDoctor's per-trigger generator, triage of pre-scenario stores).
// Lock-free, like Lookup.
func ByTrigger(t TriggerType) Scenario {
	s, ok := reg.Load().canonical[t]
	if !ok {
		panic(fmt.Sprintf("scenario: no canonical family for trigger %v", t))
	}
	return s
}

// ByWindowName resolves the canonical family whose legacy trigger class
// renders as the given display string (TriggerType.String values) — the
// migration path for stores that predate scenario-aware signatures.
func ByWindowName(window string) (Scenario, bool) {
	for _, t := range AllTriggerTypes() {
		if t.String() == window {
			return ByTrigger(t), true
		}
	}
	return nil, false
}
