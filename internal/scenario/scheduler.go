package scenario

import (
	"fmt"
	"math/rand"
	"sort"
)

// Scheduler weight-update constants. The update is an exponential moving
// average of per-pick yield with an exploration floor, so productive
// families are sampled more while no family ever starves.
const (
	// schedAlpha is the EMA retention: how much of the previous weight
	// survives one barrier update.
	schedAlpha = 0.5
	// findingBonus converts one finding into equivalent coverage points for
	// the yield signal (findings are the scarcer, higher-value event).
	findingBonus = 16.0
	// minWeight is the exploration floor every family's weight is clamped
	// to, as a fraction of the uniform weight 1.0.
	minWeight = 0.25
	// maxWeight bounds runaway winners so a hot family cannot crowd the
	// rest out within a few barriers.
	maxWeight = 16.0
)

// Yield is one family's observed outcome over an epoch: how often it was
// picked and what it returned.
type Yield struct {
	Picks    int
	Points   int
	Findings int
}

// Weight is one (family, sampling weight) pair — the serialisation unit of
// the scheduler state (engine checkpoints embed it).
type Weight struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// Scheduler is the coverage-adaptive scenario sampler one campaign shares
// across its shards. During an epoch it is read-only (Pick draws from a
// frozen weight vector using the caller's RNG, so shard streams stay
// deterministic); at every merge barrier the engine calls Update once with
// the epoch's merged per-family yield, in fixed order, so the weight
// trajectory is a pure function of the campaign's deterministic history —
// worker-count independence and cancel+resume byte-identity carry over.
type Scheduler struct {
	names   []string // sorted
	weights []float64
}

// NewScheduler returns a uniform scheduler over the given families.
// Names are sorted internally; registration or option order never matters.
func NewScheduler(families []string) *Scheduler {
	names := append([]string(nil), families...)
	sort.Strings(names)
	w := make([]float64, len(names))
	for i := range w {
		w[i] = 1.0
	}
	return &Scheduler{names: names, weights: w}
}

// NewSchedulerFromWeights restores a scheduler from checkpointed weights.
// The weight set must cover exactly the given families.
func NewSchedulerFromWeights(families []string, ws []Weight) (*Scheduler, error) {
	s := NewScheduler(families)
	if len(ws) != len(s.names) {
		return nil, fmt.Errorf("scenario: checkpoint has %d scheduler weights, campaign has %d families", len(ws), len(s.names))
	}
	byName := make(map[string]float64, len(ws))
	for _, w := range ws {
		byName[w.Name] = w.Weight
	}
	for i, n := range s.names {
		w, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("scenario: checkpoint carries no scheduler weight for family %q", n)
		}
		s.weights[i] = w
	}
	return s, nil
}

// Names returns the scheduler's families, sorted.
func (s *Scheduler) Names() []string { return append([]string(nil), s.names...) }

// Pick draws one family name, weight-proportionally, using the caller's
// RNG (each campaign shard passes its own deterministic stream).
func (s *Scheduler) Pick(rng *rand.Rand) string {
	if len(s.names) == 1 {
		return s.names[0]
	}
	total := 0.0
	for _, w := range s.weights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range s.weights {
		r -= w
		if r < 0 {
			return s.names[i]
		}
	}
	return s.names[len(s.names)-1]
}

// WeightOf returns the current sampling weight of one family (0 if the
// family is not scheduled).
func (s *Scheduler) WeightOf(name string) float64 {
	for i, n := range s.names {
		if n == name {
			return s.weights[i]
		}
	}
	return 0
}

// Update folds one epoch's merged per-family yield into the weights: an
// EMA toward each family's points-plus-bonused-findings per pick, clamped
// to [minWeight, maxWeight]. Families not picked this epoch decay toward
// the floor, so early losers get re-tried and late bloomers recover.
// It must only be called at merge barriers (no Pick concurrently).
func (s *Scheduler) Update(yield map[string]Yield) {
	for i, n := range s.names {
		y := yield[n]
		rate := 0.0
		if y.Picks > 0 {
			rate = (float64(y.Points) + findingBonus*float64(y.Findings)) / float64(y.Picks)
		}
		w := schedAlpha*s.weights[i] + (1-schedAlpha)*rate
		if w < minWeight {
			w = minWeight
		}
		if w > maxWeight {
			w = maxWeight
		}
		s.weights[i] = w
	}
}

// Weights exports the scheduler state, sorted by family name (the engine
// checkpoint form).
func (s *Scheduler) Weights() []Weight {
	out := make([]Weight, len(s.names))
	for i, n := range s.names {
		out[i] = Weight{Name: n, Weight: s.weights[i]}
	}
	return out
}
