package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Policy names the scenario-scheduling algorithm a campaign uses.
type Policy string

const (
	// PolicyUCB is the default: a deterministic UCB1 bandit over each
	// family's cumulative yield per pick. Every enabled family is tried
	// before any is exploited, a family's score never decays without new
	// evidence about it, and the optimism bonus grows for rarely-picked
	// families — so no family ever starves.
	PolicyUCB Policy = "ucb"
	// PolicyEMA is the legacy exponential-moving-average policy with an
	// exploration floor, kept reachable behind -scheduler=ema so the fix is
	// A/B-able. It has a starvation bug: families unpicked in an epoch decay
	// toward the floor despite zero new evidence about them, so an unlucky
	// first epoch is permanent (the BENCH_campaign.json run that motivated
	// PolicyUCB left two families at 0 picks in 128 iterations).
	PolicyEMA Policy = "ema"
)

// DefaultPolicy is the policy campaigns use when none is named.
const DefaultPolicy = PolicyUCB

// ParsePolicy validates a policy name; empty selects DefaultPolicy.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "":
		return DefaultPolicy, nil
	case string(PolicyUCB):
		return PolicyUCB, nil
	case string(PolicyEMA):
		return PolicyEMA, nil
	}
	return "", fmt.Errorf("scenario: unknown scheduler policy %q (want %q or %q)", name, PolicyUCB, PolicyEMA)
}

// Scheduler yield-signal constants, shared by both policies, plus the
// EMA-policy weight-update constants.
const (
	// findingBonus converts one finding into equivalent coverage points for
	// the yield signal (findings are the scarcer, higher-value event).
	findingBonus = 16.0
	// ucbExploration is the UCB1 optimism coefficient: a tried family's
	// exploration bonus is scale*sqrt(ucbExploration*ln(N+1)/n), where N is
	// the total pick count, n the family's own, and scale the best observed
	// mean yield (the reward-range normalisation UCB1's [0,1] analysis
	// assumes).
	ucbExploration = 2.0
	// schedAlpha is the EMA retention: how much of the previous weight
	// survives one barrier update (PolicyEMA only).
	schedAlpha = 0.5
	// minWeight is the exploration floor every EMA weight is clamped to, as
	// a fraction of the uniform weight 1.0.
	minWeight = 0.25
	// maxWeight bounds runaway EMA winners so a hot family cannot crowd the
	// rest out within a few barriers.
	maxWeight = 16.0
)

// Yield is one family's observed outcome over an epoch: how often it was
// picked and what it returned.
type Yield struct {
	Picks    int
	Points   int
	Findings int
}

// Weight is the version-2 engine-checkpoint serialisation unit — one
// (family, sampling weight) pair. Current checkpoints serialise FamilyState
// instead; Weight survives only so legacy checkpoints can be decoded and
// migrated.
type Weight struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// Prior is one family's warm-start evidence: cross-campaign frontier
// statistics a corpus store accumulated for the family, injected into a
// fresh scheduler so it starts from what earlier campaigns on the same
// target learned instead of from uniform ignorance. A Prior is
// determinism-relevant input (it reshapes the pick stream), so the engine
// serialises it with the campaign options and refuses resumes that change
// it.
type Prior struct {
	Name     string `json:"name"`
	Picks    int    `json:"picks"`
	Points   int    `json:"points"`
	Findings int    `json:"findings"`
}

// priorPickCap bounds how many equivalent picks of evidence a prior may
// contribute per family. Frontier statistics can aggregate thousands of
// harvests; injected raw they would drown the first dozens of epochs of
// in-campaign evidence and crush the UCB exploration bonus. Capping the
// pick mass (scaling points/findings proportionally, in integer
// arithmetic so the seeding stays a pure function of the prior) keeps the
// prior an informed starting point the campaign can override quickly.
const priorPickCap = 16

// FamilyState is one family's cumulative scheduler posterior — picks,
// coverage points and findings since campaign start — plus its current
// sampling weight. It is the serialisation unit of the scheduler state
// (version-3 engine checkpoints embed it). Under PolicyUCB the weight is a
// pure function of the posterior and is recomputed on restore; under
// PolicyEMA the weight itself is the state and the posterior only feeds
// reporting.
type FamilyState struct {
	Name     string  `json:"name"`
	Picks    int     `json:"picks"`
	Points   int     `json:"points"`
	Findings int     `json:"findings"`
	Weight   float64 `json:"weight"`
}

// Scheduler is the adaptive scenario sampler one campaign shares across its
// shards. During an epoch it is read-only (Pick draws from frozen state
// using the caller's RNG, so shard streams stay deterministic and
// worker-independent); at every merge barrier the engine calls Update once
// with the epoch's merged per-family yield, in fixed order, so the
// scheduling trajectory is a pure function of the campaign's deterministic
// history — worker-count independence and cancel+resume byte-identity carry
// over for either policy.
type Scheduler struct {
	policy Policy
	names  []string // sorted

	// Cumulative posterior, parallel to names: total picks, coverage points
	// and findings per family since campaign start. Never decays — absence
	// of picks is absence of evidence, not evidence of absence.
	picks    []int
	points   []int
	findings []int
	total    int // sum of picks

	// weights is the sampling vector Pick draws from: UCB scores (mean
	// yield + exploration bonus, recomputed from the posterior at every
	// Update) or EMA weights (updated in place with decay and floor).
	weights []float64
	// means/bonuses decompose each family's score for reporting: posterior
	// mean yield per pick and the optimism term. Under PolicyEMA bonuses
	// are zero and means are informational only.
	means   []float64
	bonuses []float64
	// untried indexes families with zero cumulative picks. Under PolicyUCB,
	// Pick draws exclusively (and uniformly) from it while it is non-empty,
	// so every enabled family is tried before any is exploited; each merge
	// barrier removes the families the epoch reached, so in the worst case
	// full coverage takes families×(picks per epoch) iterations. PolicyEMA
	// leaves it empty (preserving the legacy sampling exactly).
	untried []int
}

// NewScheduler returns a scheduler over the given families under the given
// policy (empty selects DefaultPolicy). It errors on an empty or duplicated
// family set and on an unknown policy — an empty set has nothing to pick
// and previously panicked inside Pick instead of failing at construction.
// Names are sorted internally; registration or option order never matters.
func NewScheduler(families []string, policy Policy) (*Scheduler, error) {
	pol, err := ParsePolicy(string(policy))
	if err != nil {
		return nil, err
	}
	if len(families) == 0 {
		return nil, fmt.Errorf("scenario: scheduler needs at least one family")
	}
	names := append([]string(nil), families...)
	sort.Strings(names)
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			return nil, fmt.Errorf("scenario: duplicate family %q in scheduler set", names[i])
		}
	}
	s := &Scheduler{
		policy:   pol,
		names:    names,
		picks:    make([]int, len(names)),
		points:   make([]int, len(names)),
		findings: make([]int, len(names)),
		weights:  make([]float64, len(names)),
		means:    make([]float64, len(names)),
		bonuses:  make([]float64, len(names)),
	}
	for i := range s.weights {
		s.weights[i] = 1.0
	}
	s.refresh()
	return s, nil
}

// NewSchedulerWithPrior returns a fresh scheduler whose posterior is
// seeded from cross-campaign frontier statistics (see Prior). Families
// with prior evidence start tried — forced exploration only applies to
// families no campaign has ever exercised — and their pick mass is capped
// at priorPickCap so in-campaign evidence overtakes the prior within a few
// epochs. Prior entries naming families outside the scheduler set are an
// error: the caller (the warm-start resolver) filters the frontier to the
// campaign's enabled families first, so a leftover name means the options
// and the prior drifted apart. Checkpoint restore never goes through this
// constructor — the checkpointed posterior already contains the prior's
// contribution — so resume byte-identity is unaffected.
func NewSchedulerWithPrior(families []string, policy Policy, prior []Prior) (*Scheduler, error) {
	s, err := NewScheduler(families, policy)
	if err != nil {
		return nil, err
	}
	for _, p := range prior {
		idx := -1
		for i, n := range s.names {
			if n == p.Name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("scenario: prior names family %q outside the scheduler set", p.Name)
		}
		if p.Picks < 0 || p.Points < 0 || p.Findings < 0 {
			return nil, fmt.Errorf("scenario: prior for family %q has negative counts", p.Name)
		}
		picks, points, findings := p.Picks, p.Points, p.Findings
		if picks > priorPickCap {
			// Integer scaling keeps the seeding a pure function of the prior.
			points = points * priorPickCap / picks
			findings = findings * priorPickCap / picks
			picks = priorPickCap
		}
		s.picks[idx] += picks
		s.points[idx] += points
		s.findings[idx] += findings
		s.total += picks
	}
	s.refresh()
	return s, nil
}

// NewSchedulerFromState restores a scheduler from checkpointed per-family
// state. The state must cover exactly the given families. Under PolicyUCB
// the weights are recomputed from the restored posterior (they are a pure
// function of it, so resume is byte-identical by construction); under
// PolicyEMA the stored weights are the state and are kept as-is.
func NewSchedulerFromState(families []string, policy Policy, st []FamilyState) (*Scheduler, error) {
	s, err := NewScheduler(families, policy)
	if err != nil {
		return nil, err
	}
	if len(st) != len(s.names) {
		return nil, fmt.Errorf("scenario: checkpoint has %d scheduler families, campaign has %d", len(st), len(s.names))
	}
	byName := make(map[string]FamilyState, len(st))
	for _, fs := range st {
		byName[fs.Name] = fs
	}
	s.total = 0
	for i, n := range s.names {
		fs, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("scenario: checkpoint carries no scheduler state for family %q", n)
		}
		s.picks[i], s.points[i], s.findings[i] = fs.Picks, fs.Points, fs.Findings
		s.weights[i] = fs.Weight
		s.total += fs.Picks
	}
	s.refresh()
	return s, nil
}

// Policy returns the scheduler's policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Names returns the scheduler's families, sorted.
func (s *Scheduler) Names() []string { return append([]string(nil), s.names...) }

// Pick draws one family name using the caller's RNG (each campaign shard
// passes its own deterministic stream). Under PolicyUCB, while any family
// has never been picked, the draw is uniform over exactly those — forced
// exploration — and only afterwards score-proportional; under PolicyEMA it
// is the legacy weight-proportional draw.
func (s *Scheduler) Pick(rng *rand.Rand) string {
	if len(s.names) == 1 {
		return s.names[0]
	}
	if len(s.untried) > 0 {
		return s.names[s.untried[rng.Intn(len(s.untried))]]
	}
	total := 0.0
	for _, w := range s.weights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range s.weights {
		r -= w
		if r < 0 {
			return s.names[i]
		}
	}
	return s.names[len(s.names)-1]
}

// WeightOf returns the current sampling weight of one family (0 if the
// family is not scheduled).
func (s *Scheduler) WeightOf(name string) float64 {
	w, _, _ := s.Probe(name)
	return w
}

// Probe returns one family's current sampling weight, posterior mean yield
// per pick, and exploration bonus (all zero if the family is not
// scheduled). Weight is mean+bonus under PolicyUCB; under PolicyEMA the
// bonus is zero and the weight is the EMA value.
func (s *Scheduler) Probe(name string) (weight, mean, bonus float64) {
	for i, n := range s.names {
		if n == name {
			return s.weights[i], s.means[i], s.bonuses[i]
		}
	}
	return 0, 0, 0
}

// Update folds one epoch's merged per-family yield into the cumulative
// posterior, then refreshes the sampling weights: UCB scores recomputed
// from the posterior, or the legacy EMA decay-toward-floor. A family absent
// from the epoch's yield keeps its posterior untouched under PolicyUCB —
// no evidence, no change (its score can only grow, via the bonus) — which
// is exactly the decay-on-no-evidence starvation bug PolicyEMA retains for
// comparison. Update must only be called at merge barriers (no Pick
// concurrently).
func (s *Scheduler) Update(yield map[string]Yield) {
	for i, n := range s.names {
		y := yield[n]
		s.picks[i] += y.Picks
		s.points[i] += y.Points
		s.findings[i] += y.Findings
		s.total += y.Picks
		if s.policy == PolicyEMA {
			rate := 0.0
			if y.Picks > 0 {
				rate = (float64(y.Points) + findingBonus*float64(y.Findings)) / float64(y.Picks)
			}
			w := schedAlpha*s.weights[i] + (1-schedAlpha)*rate
			if w < minWeight {
				w = minWeight
			}
			if w > maxWeight {
				w = maxWeight
			}
			s.weights[i] = w
		}
	}
	s.refresh()
}

// refresh derives means, bonuses, UCB weights and the untried set from the
// cumulative posterior. It is a pure function of the posterior, which is
// what makes checkpoint restore byte-identical under PolicyUCB.
func (s *Scheduler) refresh() {
	scale := 1.0
	for i := range s.names {
		if s.picks[i] == 0 {
			s.means[i] = 0
			continue
		}
		s.means[i] = (float64(s.points[i]) + findingBonus*float64(s.findings[i])) / float64(s.picks[i])
		if s.means[i] > scale {
			scale = s.means[i]
		}
	}
	if s.policy == PolicyEMA {
		// EMA owns its weight vector (updated in Update); the posterior only
		// feeds the reported means.
		for i := range s.bonuses {
			s.bonuses[i] = 0
		}
		return
	}
	logN := math.Log(float64(s.total) + 1)
	s.untried = s.untried[:0]
	for i := range s.names {
		if n := s.picks[i]; n > 0 {
			s.bonuses[i] = scale * math.Sqrt(ucbExploration*logN/float64(n))
		} else {
			// Untried families are picked with absolute priority (see Pick).
			// The exported bonus is an upper bound on every tried family's
			// score — mean ≤ scale and bonus ≤ scale*sqrt(2·lnN) there — so
			// the weight column also reflects that priority.
			s.untried = append(s.untried, i)
			s.bonuses[i] = scale * (1 + math.Sqrt(ucbExploration*logN))
		}
		s.weights[i] = s.means[i] + s.bonuses[i]
	}
}

// State exports the scheduler state, sorted by family name (the engine
// checkpoint form).
func (s *Scheduler) State() []FamilyState {
	out := make([]FamilyState, len(s.names))
	for i, n := range s.names {
		out[i] = FamilyState{
			Name:     n,
			Picks:    s.picks[i],
			Points:   s.points[i],
			Findings: s.findings[i],
			Weight:   s.weights[i],
		}
	}
	return out
}
