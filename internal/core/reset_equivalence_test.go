package core

import (
	"reflect"
	"testing"

	"dejavuzz/internal/uarch"
)

// TestCampaignResetEquivalence is the acceptance test for the per-shard
// execution contexts: a campaign whose shards reuse long-lived contexts
// (Reset between iterations) must produce a report byte-identical — modulo
// the wall-clock Duration/FirstBug fields, which the fingerprint excludes —
// to one whose simulations construct all DUT state from scratch, across
// both built-in uarch targets and both worker counts. Run under -race in CI,
// this also exercises the no-shared-state claim of the shard contexts.
func TestCampaignResetEquivalence(t *testing.T) {
	for _, kind := range []uarch.CoreKind{uarch.KindBOOM, uarch.KindXiangShan} {
		t.Run(kind.String(), func(t *testing.T) {
			iterations := 48
			if testing.Short() {
				iterations = 24
			}
			fresh := campaignOpts(1, iterations)
			fresh.Core = kind
			fresh.Target = BuiltinTargetName(kind)
			fresh.FreshContexts = true
			want := fingerprint(NewFuzzer(fresh).Run())
			if want.Coverage == 0 {
				t.Fatal("fresh-construction reference campaign collected no coverage")
			}

			for _, workers := range []int{1, 8} {
				reuse := campaignOpts(workers, iterations)
				reuse.Core = kind
				reuse.Target = BuiltinTargetName(kind)
				got := fingerprint(NewFuzzer(reuse).Run())
				if !reflect.DeepEqual(want, got) {
					t.Errorf("workers=%d: context-reuse report diverges from fresh-construction report", workers)
				}
			}
		})
	}
}

// TestSequentialPhasesMatchFreshConstruction pins the exported Phase1/2/3
// path: the sequential shard (context reuse) must reproduce the same
// phase results as a fresh-construction fuzzer, across consecutive seeds
// (the reuse case that would expose state leaking between iterations).
func TestSequentialPhasesMatchFreshConstruction(t *testing.T) {
	mk := func(freshCtx bool) *Fuzzer {
		opts := DefaultOptions(uarch.KindBOOM)
		opts.Seed = 11
		opts.FreshContexts = freshCtx
		return NewFuzzer(opts)
	}
	a, b := mk(false), mk(true)
	for i := 0; i < 6; i++ {
		seed := a.gen.RandomSeed(uarch.KindBOOM)
		_ = b.gen.RandomSeed(uarch.KindBOOM) // keep the two seed streams aligned

		ra, err := a.Reproduce(seed)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Reproduce(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("seed %d: reuse %+v, fresh %+v", i, ra, rb)
		}
	}
}
