package core

import (
	"encoding/json"
	"fmt"

	"dejavuzz/internal/gen"
)

// EncodeSeed serialises a stimulus seed for bug reports: every finding can
// be replayed deterministically from its seed.
func EncodeSeed(s gen.Seed) string {
	b, err := json.Marshal(s)
	if err != nil {
		return ""
	}
	return string(b)
}

// DecodeSeed parses a serialised seed.
func DecodeSeed(data string) (gen.Seed, error) {
	var s gen.Seed
	if err := json.Unmarshal([]byte(data), &s); err != nil {
		return s, fmt.Errorf("core: bad seed: %w", err)
	}
	return s, nil
}

// ReproResult is a deterministic replay of one seed through all phases.
type ReproResult struct {
	Seed      gen.Seed
	Triggered bool
	TaintGain bool
	Finding   *Finding
	TO, ETO   int
	Sims      int
}

// Reproduce replays a seed through the full three-phase pipeline — the
// workflow a developer follows from a bug report.
func (f *Fuzzer) Reproduce(seed gen.Seed) (*ReproResult, error) {
	res := &ReproResult{Seed: seed}
	p1, err := f.Phase1(seed)
	if err != nil {
		return nil, err
	}
	res.Sims += p1.Sims
	res.Triggered = p1.Triggered
	res.TO, res.ETO = p1.TO, p1.ETO
	if !p1.Triggered {
		return res, nil
	}
	p2, err := f.Phase2(p1)
	if err != nil {
		return nil, err
	}
	res.Sims += p2.Sims
	res.TaintGain = p2.TaintGain
	if !p2.TaintGain {
		return res, nil
	}
	p3, err := f.Phase3(p1, p2)
	if err != nil {
		return nil, err
	}
	res.Sims += p3.Sims
	res.Finding = p3.Finding
	return res, nil
}
