package core

import (
	"testing"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

func TestCoverageMatrixSemantics(t *testing.T) {
	c := NewCoverage()
	log := []uarch.TaintSample{
		{Cycle: 1, Module: "dcache", Tainted: 2, Bits: 128},
		{Cycle: 2, Module: "dcache", Tainted: 2, Bits: 128}, // duplicate point
		{Cycle: 2, Module: "dcache", Tainted: 3, Bits: 192}, // new count
		{Cycle: 2, Module: "rob", Tainted: 2, Bits: 64},     // new module
		{Cycle: 3, Module: "rob", Tainted: 0, Bits: 0},      // zero: ignored
	}
	if got := c.AddFromLog(log); got != 3 {
		t.Fatalf("AddFromLog = %d, want 3", got)
	}
	if c.Count() != 3 {
		t.Fatalf("Count = %d", c.Count())
	}
	// Re-adding contributes nothing: position-insensitivity over time.
	if got := c.AddFromLog(log); got != 0 {
		t.Fatalf("second AddFromLog = %d, want 0", got)
	}
	mods := c.Modules()
	if len(mods) != 2 || mods[0] != "dcache" || mods[1] != "rob" {
		t.Fatalf("Modules = %v", mods)
	}
}

func TestCoverageClampsLargeCounts(t *testing.T) {
	c := NewCoverage()
	c.AddFromLog([]uarch.TaintSample{{Module: "m", Tainted: 10_000}})
	if got := c.AddFromLog([]uarch.TaintSample{{Module: "m", Tainted: 20_000}}); got != 0 {
		t.Fatalf("clamped counts must collapse to one point, got %d new", got)
	}
}

// TestLivenessAblationCounts: disabling liveness must flag at least as many
// "findings" (it stops filtering dead sinks), reproducing the §6.3
// misclassification effect.
func TestLivenessAblationCounts(t *testing.T) {
	run := func(useLiveness bool) (findings, dead int) {
		opts := DefaultOptions(uarch.KindBOOM)
		opts.Iterations = 20
		opts.Seed = 77
		opts.UseLiveness = useLiveness
		rep := NewFuzzer(opts).Run()
		return len(rep.Findings), rep.DeadSinks
	}
	withF, withDead := run(true)
	withoutF, withoutDead := run(false)
	if withoutF < withF {
		t.Errorf("no-liveness flagged fewer cases (%d) than liveness (%d)", withoutF, withF)
	}
	if withoutDead != 0 {
		t.Errorf("no-liveness ablation still suppressed %d dead-sink cases", withoutDead)
	}
	_ = withDead
}

// TestReductionAblation: without training reduction the kept schedule must
// carry at least as much training overhead.
func TestReductionAblation(t *testing.T) {
	seedVal := int64(13)
	measure := func(useReduction bool) float64 {
		opts := DefaultOptions(uarch.KindBOOM)
		opts.Seed = seedVal
		opts.UseReduction = useReduction
		f := NewFuzzer(opts)
		st := f.MeasureTraining(gen.TrigBranchMispred, gen.VariantDerived, 4)
		if !st.Triggerable() {
			t.Fatal("branch windows not triggerable")
		}
		return st.AvgTO
	}
	reduced := measure(true)
	raw := measure(false)
	if raw < reduced {
		t.Fatalf("unreduced training overhead %.1f below reduced %.1f", raw, reduced)
	}
	if raw == reduced {
		t.Log("reduction removed nothing on this seed (decoys already absent)")
	}
}

func TestRotateSecret(t *testing.T) {
	base := []byte{1, 2, 3, 4}
	if got := rotateSecret(base, 0); &got[0] != &base[0] {
		// attempt 0 returns the base unchanged (same backing array ok too)
		for i := range base {
			if got[i] != base[i] {
				t.Fatal("attempt 0 changed the secret")
			}
		}
	}
	a1 := rotateSecret(base, 1)
	a2 := rotateSecret(base, 2)
	same1, same2 := 0, 0
	for i := range base {
		if a1[i] == base[i] {
			same1++
		}
		if a2[i] == a1[i] {
			same2++
		}
	}
	if same1 == len(base) || same2 == len(base) {
		t.Fatal("secret rotation produced identical pairs")
	}
}
