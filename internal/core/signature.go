package core

// SignatureInputs returns the finding's stable identity fields, in a fixed
// order: kind, attack type, transient-window trigger class, scenario
// family, leak-site components (sorted, deduplicated, '+'-joined) and
// mechanism bug labels (likewise). These are exactly the fields that
// survive rediscovery of the same underlying bug — a different campaign
// seed, iteration number or stimulus finds the same leak through the same
// site with the same witnesses — and exclude everything that does not
// (Seed, Iteration). The scenario family is identity because two families
// sharing a legacy window class (e.g. branch-mispredict and the nested
// fault-in-branch shape) reach distinct leak mechanics. internal/triage
// folds the inputs, together with the target name, into a dedup signature.
func (f *Finding) SignatureInputs() []string {
	return []string{
		f.Kind.String(),
		f.AttackType,
		f.Window.String(),
		f.ScenarioName(),
		joinSorted(f.Components),
		joinSorted(f.BugLabels),
	}
}

// joinSorted renders a component/label set as a canonical '+'-joined string.
// Pipelines already emit sorted, deduplicated slices; normalising again here
// keeps signatures stable for third-party targets that do not.
func joinSorted(in []string) string {
	s := dedup(in) // dedup copies, sorts and uniques
	out := ""
	for i, v := range s {
		if i > 0 {
			out += "+"
		}
		out += v
	}
	return out
}
