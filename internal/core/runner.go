// Package core implements the DejaVuzz fuzzing framework: the three-phase
// pipeline (transient window triggering, transient execution exploration,
// transient leakage analysis), the taint coverage matrix, training reduction,
// encode sanitisation, tainted-sink liveness analysis and the parallel
// fuzzing manager.
package core

import (
	"dejavuzz/internal/gen"
	"dejavuzz/internal/mem"
	"dejavuzz/internal/scenario"
	"dejavuzz/internal/swapmem"
	"dejavuzz/internal/uarch"
)

// DefaultSecret is the 8-byte secret planted in the dedicated region; the
// variant DUT receives its bitwise complement (the paper's bit-flip strategy
// against diffIFT false negatives).
var DefaultSecret = []byte{0xa5, 0x3c, 0x96, 0x0f, 0x11, 0xee, 0x42, 0x7b}

// RunOpts configures one RTL-simulation run.
type RunOpts struct {
	Cfg        uarch.Config
	Mode       uarch.IFTMode
	Secret     []byte
	TaintTrace bool
	MaxCycles  int
}

func (o *RunOpts) defaults() {
	if o.Secret == nil {
		o.Secret = DefaultSecret
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 20000
	}
}

// SingleRun is a finished single-DUT simulation. Runs returned by an
// ExecContext borrow the context's state: they are valid until the next run
// on the same context slot.
type SingleRun struct {
	Core *uarch.Core
	RT   *swapmem.Runtime
}

// DiffRun is a finished differential (two-DUT) simulation. Runs returned by
// an ExecContext borrow the context's state: they are valid until the next
// run on the same context slot.
type DiffRun struct {
	Pair     *uarch.Pair
	RTA, RTB *swapmem.Runtime
}

// instance is one reusable DUT slot: an address space, a core over it and a
// swap runtime driving it. Slots are built lazily on first use and Reset in
// place afterwards.
type instance struct {
	space *mem.Space
	core  *uarch.Core
	rt    *swapmem.Runtime
}

// prepare readies the slot for a run: fresh construction on first use (or
// always, in a fresh context), in-place reset otherwise. The reset path is
// provably equivalent to construction — NewSpace/NewCore/NewRuntime are
// implemented in terms of the same Reset/Rebind operations.
func (in *instance) prepare(fresh bool, secret []byte, cfg uarch.Config, mode uarch.IFTMode,
	sched *swapmem.Schedule, taintTrace bool) {
	if fresh || in.space == nil {
		in.space = swapmem.NewSpace(secret)
		in.core = uarch.NewCore(cfg, in.space, mode)
		in.rt = swapmem.NewRuntime(in.core, in.space, sched)
	} else {
		swapmem.ResetSpace(in.space, secret)
		in.core.Reset(cfg, in.space, mode)
		in.rt.Rebind(in.core, in.space, sched)
	}
	in.core.TaintTraceOn = taintTrace
}

// ExecContext is a long-lived, resettable execution plane for one pipeline
// shard: it owns the DUT state (spaces, cores, runtimes) for the single-
// instance slot, the primary differential slot and the sanitisation
// differential slot, and resets it between simulations instead of
// reallocating — the hot-path optimisation the campaign engine's throughput
// rests on. A context is single-goroutine; the campaign engine gives every
// deterministic shard its own (no locks, no pooling, no cross-shard
// sharing).
type ExecContext struct {
	// fresh disables reuse: every run rebuilds its DUT state from scratch.
	// This is the reference behaviour reset-equivalence is proven against.
	fresh bool

	single instance
	diffA  instance
	diffB  instance
	sanA   instance
	sanB   instance
}

// NewExecContext returns a reusing execution context.
func NewExecContext() *ExecContext { return &ExecContext{} }

// NewFreshContext returns a context that rebuilds all DUT state on every
// run — per-simulation construction, exactly what the engine did before
// contexts existed. Campaigns run with Options.FreshContexts use it; the
// reset-equivalence tests pin that both modes produce byte-identical
// reports.
func NewFreshContext() *ExecContext { return &ExecContext{fresh: true} }

// RunSingle executes a swap schedule on the context's single-DUT slot.
func (x *ExecContext) RunSingle(sched *swapmem.Schedule, opts RunOpts) *SingleRun {
	opts.defaults()
	x.single.prepare(x.fresh, opts.Secret, opts.Cfg, opts.Mode, sched, opts.TaintTrace)
	x.single.rt.Start()
	x.single.core.Run(opts.MaxCycles)
	return &SingleRun{Core: x.single.core, RT: x.single.rt}
}

func (x *ExecContext) runDiffSecrets(ia, ib *instance, sched *swapmem.Schedule, opts RunOpts, secretA, secretB []byte) *DiffRun {
	// Taint tracing records observables on instance A only: every analysis
	// (coverage log, taint-gain series, censuses, sinks) reads the A
	// instance; B exists to resolve the cross-instance comparisons, and
	// tracing it would double the per-cycle census cost for data nobody
	// reads. Recording is observation-only, so this cannot change results.
	ia.prepare(x.fresh, secretA, opts.Cfg, uarch.IFTDiff, sched, opts.TaintTrace)
	ib.prepare(x.fresh, secretB, opts.Cfg, uarch.IFTDiff, sched, false)
	ia.rt.Start()
	ib.rt.Start()
	p := uarch.NewPair(ia.core, ib.core)
	p.Run(opts.MaxCycles)
	return &DiffRun{Pair: p, RTA: ia.rt, RTB: ib.rt}
}

// RunDiff executes a swap schedule on the context's primary differential
// slot: two DUTs with complementary secrets, coupled for diffIFT.
func (x *ExecContext) RunDiff(sched *swapmem.Schedule, opts RunOpts) *DiffRun {
	opts.defaults()
	return x.runDiffSecrets(&x.diffA, &x.diffB, sched, opts, opts.Secret, swapmem.FlipSecret(opts.Secret))
}

// RunDiffSan executes on the sanitisation differential slot. Phase 3 reruns
// the stimulus with the encode block nopped out while it still compares
// censuses against the primary run; a separate slot keeps the primary run's
// observables borrowable across the rerun.
func (x *ExecContext) RunDiffSan(sched *swapmem.Schedule, opts RunOpts) *DiffRun {
	opts.defaults()
	return x.runDiffSecrets(&x.sanA, &x.sanB, sched, opts, opts.Secret, swapmem.FlipSecret(opts.Secret))
}

// RunDiffFN executes the diffIFT false-negative worst case on the primary
// slot: both instances carry the SAME secret, so every cross-instance
// comparison is equal and all control taints are suppressed (Figure 6's
// diffIFT_FN series).
func (x *ExecContext) RunDiffFN(sched *swapmem.Schedule, opts RunOpts) *DiffRun {
	opts.defaults()
	return x.runDiffSecrets(&x.diffA, &x.diffB, sched, opts, opts.Secret, opts.Secret)
}

// RunSingle executes a swap schedule on a freshly constructed DUT instance
// (one-shot; experiments and examples use this, the campaign hot path goes
// through per-shard ExecContexts).
func RunSingle(sched *swapmem.Schedule, opts RunOpts) *SingleRun {
	return NewFreshContext().RunSingle(sched, opts)
}

// RunDiff executes a swap schedule on a freshly constructed differential
// testbench: two DUTs with complementary secrets, coupled for diffIFT.
func RunDiff(sched *swapmem.Schedule, opts RunOpts) *DiffRun {
	return NewFreshContext().RunDiff(sched, opts)
}

// RunDiffFN executes the diffIFT false-negative worst case on fresh
// instances: both carry the SAME secret, so every cross-instance comparison
// is equal and all control taints are suppressed (Figure 6's diffIFT_FN
// series).
func RunDiffFN(sched *swapmem.Schedule, opts RunOpts) *DiffRun {
	return NewFreshContext().RunDiffFN(sched, opts)
}

// expectedSquash resolves the squash class a seed's transient window must
// be terminated by — the scenario family owns this, so nested families can
// demand a different squash class than their legacy trigger would imply.
func expectedSquash(s gen.Seed) uarch.SquashReason {
	fam, err := gen.FamilyOf(s)
	if err != nil {
		// Unknown family name: seeds that built a stimulus always resolve,
		// so this is only reachable through hand-crafted seeds — fall back
		// to the trigger class's canonical family rather than duplicating
		// its squash mapping here.
		if s.Trigger >= 0 && s.Trigger < gen.NumTriggerTypes {
			return scenario.ByTrigger(s.Trigger).ExpectedSquash()
		}
		return uarch.SquashException
	}
	return fam.ExpectedSquash()
}

// WindowTriggered evaluates the paper's trigger criterion during the
// transient packet's execution: more window instructions entered the RoB
// than committed, terminated by the expected squash class at the trigger PC.
func WindowTriggered(run *SingleRun, st *gen.Stimulus) bool {
	since := run.RT.TransientStart()
	ws := run.Core.Trace.WindowSince(st.WindowLo, st.WindowHi, since)
	if !ws.Triggered() {
		return false
	}
	want := expectedSquash(st.Seed)
	needPred := st.Seed.Trigger.IsMispredict()
	for _, s := range run.Core.Trace.Squashes {
		if s.Cycle >= since && s.Reason == want && s.AtPC == st.TriggerPC {
			if needPred && !s.PredTaken {
				// Default (untrained) fall-through execution: not a trained
				// transient window — the paper excludes these.
				continue
			}
			return true
		}
	}
	return false
}
