// Package core implements the DejaVuzz fuzzing framework: the three-phase
// pipeline (transient window triggering, transient execution exploration,
// transient leakage analysis), the taint coverage matrix, training reduction,
// encode sanitisation, tainted-sink liveness analysis and the parallel
// fuzzing manager.
package core

import (
	"dejavuzz/internal/gen"
	"dejavuzz/internal/swapmem"
	"dejavuzz/internal/uarch"
)

// DefaultSecret is the 8-byte secret planted in the dedicated region; the
// variant DUT receives its bitwise complement (the paper's bit-flip strategy
// against diffIFT false negatives).
var DefaultSecret = []byte{0xa5, 0x3c, 0x96, 0x0f, 0x11, 0xee, 0x42, 0x7b}

// RunOpts configures one RTL-simulation run.
type RunOpts struct {
	Cfg        uarch.Config
	Mode       uarch.IFTMode
	Secret     []byte
	TaintTrace bool
	MaxCycles  int
}

func (o *RunOpts) defaults() {
	if o.Secret == nil {
		o.Secret = DefaultSecret
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 20000
	}
}

// SingleRun is a finished single-DUT simulation.
type SingleRun struct {
	Core *uarch.Core
	RT   *swapmem.Runtime
}

// DiffRun is a finished differential (two-DUT) simulation.
type DiffRun struct {
	Pair     *uarch.Pair
	RTA, RTB *swapmem.Runtime
}

// RunSingle executes a swap schedule on one DUT instance.
func RunSingle(sched *swapmem.Schedule, opts RunOpts) *SingleRun {
	opts.defaults()
	space := swapmem.NewSpace(opts.Secret)
	c := uarch.NewCore(opts.Cfg, space, opts.Mode)
	c.TaintTraceOn = opts.TaintTrace
	rt := swapmem.NewRuntime(c, space, sched)
	rt.Start()
	c.Run(opts.MaxCycles)
	return &SingleRun{Core: c, RT: rt}
}

func runDiffSecrets(sched *swapmem.Schedule, opts RunOpts, secretA, secretB []byte) *DiffRun {
	spaceA := swapmem.NewSpace(secretA)
	spaceB := swapmem.NewSpace(secretB)
	a := uarch.NewCore(opts.Cfg, spaceA, uarch.IFTDiff)
	b := uarch.NewCore(opts.Cfg, spaceB, uarch.IFTDiff)
	a.TaintTraceOn = opts.TaintTrace
	b.TaintTraceOn = opts.TaintTrace
	rta := swapmem.NewRuntime(a, spaceA, sched.Clone())
	rtb := swapmem.NewRuntime(b, spaceB, sched.Clone())
	rta.Start()
	rtb.Start()
	p := uarch.NewPair(a, b)
	p.Run(opts.MaxCycles)
	return &DiffRun{Pair: p, RTA: rta, RTB: rtb}
}

// RunDiff executes a swap schedule on the differential testbench: two DUTs
// with complementary secrets, coupled for diffIFT.
func RunDiff(sched *swapmem.Schedule, opts RunOpts) *DiffRun {
	opts.defaults()
	return runDiffSecrets(sched, opts, opts.Secret, swapmem.FlipSecret(opts.Secret))
}

// RunDiffFN executes the diffIFT false-negative worst case: both instances
// carry the SAME secret, so every cross-instance comparison is equal and all
// control taints are suppressed (Figure 6's diffIFT_FN series).
func RunDiffFN(sched *swapmem.Schedule, opts RunOpts) *DiffRun {
	opts.defaults()
	return runDiffSecrets(sched, opts, opts.Secret, opts.Secret)
}

// expectedSquash maps a trigger type to the squash class its transient
// window must be terminated by.
func expectedSquash(t gen.TriggerType) uarch.SquashReason {
	switch t {
	case gen.TrigMemDisambig:
		return uarch.SquashMemOrdering
	case gen.TrigBranchMispred:
		return uarch.SquashBranchMispredict
	case gen.TrigJumpMispred:
		return uarch.SquashJumpMispredict
	case gen.TrigReturnMispred:
		return uarch.SquashReturnMispredict
	default:
		return uarch.SquashException
	}
}

// WindowTriggered evaluates the paper's trigger criterion during the
// transient packet's execution: more window instructions entered the RoB
// than committed, terminated by the expected squash class at the trigger PC.
func WindowTriggered(run *SingleRun, st *gen.Stimulus) bool {
	since := run.RT.TransientStart()
	ws := run.Core.Trace.WindowSince(st.WindowLo, st.WindowHi, since)
	if !ws.Triggered() {
		return false
	}
	want := expectedSquash(st.Seed.Trigger)
	needPred := st.Seed.Trigger.IsMispredict()
	for _, s := range run.Core.Trace.Squashes {
		if s.Cycle >= since && s.Reason == want && s.AtPC == st.TriggerPC {
			if needPred && !s.PredTaken {
				// Default (untrained) fall-through execution: not a trained
				// transient window — the paper excludes these.
				continue
			}
			return true
		}
	}
	return false
}
