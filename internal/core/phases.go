package core

import (
	"fmt"
	"sort"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/scenario"
	"dejavuzz/internal/uarch"
)

// Phase1Result reports transient-window triggering and training reduction.
// Results borrow the producing shard's stimulus and context buffers: they
// are valid until the shard's next Phase1 call.
type Phase1Result struct {
	Stimulus *gen.Stimulus
	Keep     []bool // surviving trigger-training packets after reduction
	// TO/ETO are the total and effective (nop-free) training overhead of the
	// reduced schedule — the Table 3 metrics.
	TO, ETO   int
	Triggered bool
	Sims      int // simulations spent (budget accounting)
}

// Phase1 implements Step 1.1/1.2 on the fuzzer's sequential pipeline; see
// uarchShard.Phase1. The result is valid until the next phase call on this
// fuzzer.
func (f *Fuzzer) Phase1(seed gen.Seed) (*Phase1Result, error) {
	return f.seqShard().Phase1(seed)
}

// Phase1 implements Step 1.1/1.2: build the transient packet and derived (or
// random) training, evaluate transient execution, and reduce training.
func (s *uarchShard) Phase1(seed gen.Seed) (*Phase1Result, error) {
	if err := s.gen.BuildStimulusInto(&s.st1, seed); err != nil {
		return nil, err
	}
	st := &s.st1
	res := &Phase1Result{Stimulus: st}
	keep := s.keep[:0]
	for range st.TriggerTrains {
		keep = append(keep, true)
	}
	s.keep = keep

	run := s.ctx.RunSingle(st.BuildScheduleInto(&s.sched, keep), s.f.runOpts(uarch.IFTOff, false))
	res.Sims++
	if !WindowTriggered(run, st) && !relocateWindow(run, st) {
		res.Keep = keep
		return res, nil
	}
	res.Triggered = true

	// Step 1.2 training reduction: drop one packet at a time, re-simulate,
	// and discard it permanently if the window still triggers.
	if s.f.opts.UseReduction {
		for i := range st.TriggerTrains {
			if !keep[i] {
				continue
			}
			keep[i] = false
			run := s.ctx.RunSingle(st.BuildScheduleInto(&s.sched, keep), s.f.runOpts(uarch.IFTOff, false))
			res.Sims++
			if !WindowTriggered(run, st) {
				keep[i] = true // necessary packet
			}
		}
	}
	res.Keep = keep
	res.TO, res.ETO = trainingOverhead(st, keep)
	return res, nil
}

// relocateWindow is the DejaVuzz* acceptance path: random training cannot
// steer the prediction at the planned window address, but a transient window
// of the expected squash class anywhere in the swap region is still usable —
// the fuzzer relocates the window onto it.
func relocateWindow(run *SingleRun, st *gen.Stimulus) bool {
	if st.Seed.Variant != gen.VariantRandom {
		return false
	}
	c := run.Core
	since := run.RT.TransientStart()
	wantReason := map[gen.TriggerType]uarch.SquashReason{
		gen.TrigBranchMispred: uarch.SquashBranchMispredict,
		gen.TrigJumpMispred:   uarch.SquashJumpMispredict,
		gen.TrigReturnMispred: uarch.SquashReturnMispredict,
	}[st.Seed.Trigger]
	if wantReason == uarch.SquashNone {
		return false
	}
	sawReason := false
	for _, s := range c.Trace.Squashes {
		if s.Cycle >= since && s.Reason == wantReason && s.AtPC == st.TriggerPC && s.PredTaken {
			sawReason = true
		}
	}
	if !sawReason {
		return false
	}
	// Find the transient pcs produced by that squash.
	var lo, hi uint64
	for i := range c.Trace.Insts {
		r := &c.Trace.Insts[i]
		if !r.Transient() || r.EnqCycle < since || r.PC <= st.TriggerPC {
			continue
		}
		if lo == 0 || r.PC < lo {
			lo = r.PC
		}
		if r.PC+4 > hi {
			hi = r.PC + 4
		}
	}
	if lo == 0 {
		return false
	}
	st.WindowLo, st.WindowHi = lo, hi
	return true
}

func trainingOverhead(st *gen.Stimulus, keep []bool) (to, eto int) {
	for i, p := range st.TriggerTrains {
		if keep != nil && (i >= len(keep) || !keep[i]) {
			continue
		}
		to += p.TrainInsts + p.PadInsts
		eto += p.TrainInsts
	}
	return to, eto
}

// Phase2Result reports window completion and coverage measurement. Results
// borrow the producing shard's stimulus and context buffers: they are valid
// until the shard's next Phase1/Phase2 call.
type Phase2Result struct {
	Stimulus  *gen.Stimulus
	Run       *DiffRun
	TaintGain bool // taints increased within the transient window
	NewPoints int  // new coverage points contributed
	Sims      int
}

// Phase2 implements Step 2.1/2.2 on the fuzzer's sequential pipeline; see
// uarchShard.phase2Into. The result is valid until the next phase call on
// this fuzzer.
func (f *Fuzzer) Phase2(p1 *Phase1Result) (*Phase2Result, error) {
	return f.seqShard().phase2Into(p1, f.coverage)
}

// phase2Into implements Step 2.1/2.2 with an explicit coverage sink (see
// CovSink): complete the window with secret access and encode blocks, run
// the diffIFT differential testbench, and measure taint coverage.
func (s *uarchShard) phase2Into(p1 *Phase1Result, sink CovSink) (*Phase2Result, error) {
	if err := s.gen.CompleteWindowInto(&s.st2, p1.Stimulus); err != nil {
		return nil, err
	}
	cst := &s.st2
	retries := s.f.opts.SecretRetries
	if retries < 1 {
		retries = 1
	}
	var res *Phase2Result
	newPoints := 0 // cumulative across retries: each attempt's log reaches the sink
	for attempt := 0; attempt < retries; attempt++ {
		opts := s.f.runOpts(uarch.IFTDiff, true)
		opts.Secret = rotateSecret(DefaultSecret, attempt)
		run := s.ctx.RunDiff(cst.BuildScheduleInto(&s.sched, p1.Keep), opts)
		pair := run.Pair
		r := &Phase2Result{Stimulus: cst, Run: run, Sims: 1}

		// Taint gain: the paper's criterion is taints increasing within the
		// transient window — compare the in-window peak to the pre-window
		// level.
		ws := pair.A.Trace.WindowSince(cst.WindowLo, cst.WindowHi, run.RTA.TransientStart())
		sums := pair.A.Trace.TaintSumByCycle
		if ws.FirstCycle >= 0 && ws.FirstCycle < len(sums) {
			before := sums[ws.FirstCycle]
			peak := before
			end := ws.LastCycle
			if end < 0 || end >= len(sums) {
				end = len(sums) - 1
			}
			for c := ws.FirstCycle; c <= end; c++ {
				if sums[c] > peak {
					peak = sums[c]
				}
			}
			r.TaintGain = peak > before
		}
		// Accumulate across attempts: every attempt's taints land in the
		// sink, so NewPoints must report the union's growth or campaign
		// coverage histories undercount retry-discovered points.
		newPoints += sink.AddFromLog(pair.A.Trace.TaintLog)
		r.NewPoints = newPoints
		if res != nil {
			r.Sims += res.Sims
		}
		res = r
		if res.TaintGain {
			break
		}
		// No propagation observed: retry with a different secret pair —
		// the pair may have coincided on a control signal (a diffIFT false
		// negative). The dedicated region makes this a reload, not a
		// regeneration.
	}
	return res, nil
}

// rotateSecret derives the attempt-th secret pair base: a byte rotation plus
// an attempt-dependent xor so consecutive retries disagree on every byte.
func rotateSecret(base []byte, attempt int) []byte {
	if attempt == 0 {
		return base
	}
	out := make([]byte, len(base))
	for i := range base {
		out[i] = base[(i+attempt)%len(base)] ^ byte(0x5a*attempt)
	}
	return out
}

// FindingKind classifies a reported leak.
type FindingKind int

const (
	// FindingTiming is a transient-window constant-time violation.
	FindingTiming FindingKind = iota
	// FindingEncoded is an exploitable encoded secret (live tainted sink).
	FindingEncoded
)

func (k FindingKind) String() string {
	if k == FindingTiming {
		return "timing-leak"
	}
	return "encoded-leak"
}

// Finding is one reported potential vulnerability.
type Finding struct {
	Kind       FindingKind
	AttackType string // "Meltdown" or "Spectre"
	Window     gen.TriggerType
	// Scenario is the stimulus' scenario-family name; empty on findings
	// that predate named scenarios (triage falls back to the window class's
	// canonical family).
	Scenario   string   `json:",omitempty"`
	Components []string // encoded / contended timing components
	BugLabels  []string // mechanism witnesses (B1-B5) observed during the run
	Seed       gen.Seed
	Iteration  int
}

// ScenarioName returns the finding's effective scenario family (canonical
// for its window class when the finding predates named scenarios; the raw
// window rendering when its class does not exist — hand-crafted findings).
func (f *Finding) ScenarioName() string {
	if f.Scenario != "" {
		return f.Scenario
	}
	if f.Window < 0 || f.Window >= gen.NumTriggerTypes {
		return f.Window.String()
	}
	return scenario.ByTrigger(f.Window).Name()
}

func (f *Finding) String() string {
	return fmt.Sprintf("%s %s scenario=%s window=%v components=%v bugs=%v",
		f.AttackType, f.Kind, f.ScenarioName(), f.Window, f.Components, f.BugLabels)
}

// Phase3Result carries the leakage analysis outcome.
type Phase3Result struct {
	Finding *Finding // nil when no exploitable leak
	// EncodedModules lists modules whose taint is attributable to the encode
	// block (after sanitisation diffing).
	EncodedModules []string
	// DeadSinksOnly is true when taints existed but all sinks were dead —
	// the false-positive class liveness filtering removes.
	DeadSinksOnly bool
	Sims          int
}

// Phase3 implements Step 3.1/3.2 on the fuzzer's sequential pipeline; see
// uarchShard.Phase3.
func (f *Fuzzer) Phase3(p1 *Phase1Result, p2 *Phase2Result) (*Phase3Result, error) {
	return f.seqShard().Phase3(p1, p2)
}

// Phase3 implements Step 3.1/3.2: constant-time analysis, encode
// sanitisation and tainted-sink liveness analysis. The primary run's
// observables (censuses, sinks, bug witnesses) are captured before the
// sanitisation rerun, which executes on the context's dedicated
// sanitisation slot.
func (s *uarchShard) Phase3(p1 *Phase1Result, p2 *Phase2Result) (*Phase3Result, error) {
	res := &Phase3Result{}
	cst := p2.Stimulus
	attack := "Spectre"
	if cst.Seed.SecretFaults || cst.Seed.MaskHigh {
		attack = "Meltdown"
	}

	// Step 3.1: transient-window constant-time execution analysis.
	pair := p2.Run.Pair
	wsA := pair.A.Trace.WindowSince(cst.WindowLo, cst.WindowHi, p2.Run.RTA.TransientStart())
	wsB := pair.B.Trace.WindowSince(cst.WindowLo, cst.WindowHi, p2.Run.RTB.TransientStart())
	durA := wsA.LastCycle - wsA.FirstCycle
	durB := wsB.LastCycle - wsB.FirstCycle
	totalDiff := pair.A.Cycle != pair.B.Cycle
	if (wsA.FirstCycle >= 0 && wsB.FirstCycle >= 0 && durA != durB) || totalDiff {
		res.Finding = &Finding{
			Kind:       FindingTiming,
			AttackType: attack,
			Window:     cst.Seed.Trigger,
			Scenario:   gen.ScenarioName(cst.Seed),
			Components: timingComponents(pair.A),
			BugLabels:  bugLabels(pair.A),
			Seed:       cst.Seed,
		}
		return res, nil
	}

	// Capture the primary run's census, sinks and witnesses before the
	// sanitisation rerun (the rerun shares the shard's context; a dedicated
	// slot keeps pair.A itself intact, but capturing first keeps the data
	// flow one-directional).
	full := censusMap(pair.A.Census())
	sinks := pair.A.Sinks()
	labels := bugLabels(pair.A)

	// Encode sanitisation: rerun with the encode block nopped out and diff
	// the per-module taint censuses to isolate encode-block taints.
	if err := s.gen.SanitizedInto(&s.st3, cst); err != nil {
		return nil, err
	}
	sanRun := s.ctx.RunDiffSan(s.st3.BuildScheduleInto(&s.sched, p1.Keep), s.f.runOpts(uarch.IFTDiff, false))
	res.Sims++
	base := censusMap(sanRun.Pair.A.Census())
	for m, n := range full {
		if n > base[m] {
			res.EncodedModules = append(res.EncodedModules, m)
		}
	}
	sort.Strings(res.EncodedModules)
	if len(res.EncodedModules) == 0 {
		return res, nil
	}

	// Step 3.2: tainted-sink liveness analysis.
	encoded := map[string]bool{}
	for _, m := range res.EncodedModules {
		encoded[m] = true
	}
	var liveComponents []string
	anyDead := false
	for _, snk := range sinks {
		if !encoded[snk.Module] {
			continue
		}
		if !s.f.opts.UseLiveness || snk.Live {
			liveComponents = append(liveComponents, snk.Module)
		} else {
			anyDead = true
		}
	}
	liveComponents = dedup(liveComponents)
	if len(liveComponents) == 0 {
		res.DeadSinksOnly = anyDead
		return res, nil
	}
	res.Finding = &Finding{
		Kind:       FindingEncoded,
		AttackType: attack,
		Window:     cst.Seed.Trigger,
		Scenario:   gen.ScenarioName(cst.Seed),
		Components: liveComponents,
		BugLabels:  labels,
		Seed:       cst.Seed,
	}
	return res, nil
}

func censusMap(census []uarch.ModuleTaint) map[string]int {
	out := make(map[string]int, len(census))
	for _, m := range census {
		out[m.Module] = m.Tainted
	}
	return out
}

// timingComponents heuristically names the contended units for a timing
// finding from the core's bug witnesses and census.
func timingComponents(c *uarch.Core) []string {
	var out []string
	if c.BugWitness["spectre-reload"] > 0 {
		out = append(out, "lsu")
	}
	if c.BugWitness["spectre-refetch-miss"] > 0 {
		out = append(out, "icache")
	}
	for _, m := range c.Census() {
		if m.Module == "fpu" && m.Tainted > 0 {
			out = append(out, "fpu")
		}
	}
	if len(out) == 0 {
		out = append(out, "lsu")
	}
	return dedup(out)
}

func bugLabels(c *uarch.Core) []string {
	var out []string
	for k, n := range c.BugWitness {
		if n > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
