package core

import (
	"reflect"
	"strings"
	"testing"

	"dejavuzz/internal/uarch"
)

// mutateField returns a copy of base with field i changed to a different
// value, using the field's kind to pick a perturbation. It fails the test
// for kinds it does not know how to mutate — a new field of a new kind must
// extend this switch, mirroring how dvz-vet's optsync analyzer forces every
// new field to be classified.
func mutateField(t *testing.T, base Options, i int) Options {
	t.Helper()
	mut := base
	mv := reflect.ValueOf(&mut).Elem().Field(i)
	switch mv.Kind() {
	case reflect.Bool:
		mv.SetBool(!mv.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		mv.SetInt(mv.Int() + 1)
	case reflect.String:
		mv.SetString(mv.String() + "-mutated")
	case reflect.Slice:
		if mv.Type().Elem().Kind() == reflect.String {
			mv.Set(reflect.ValueOf([]string{"zzz-synthetic-family"}))
		} else {
			// Struct-element slices (warm seeds, frontier prior): a single
			// zero-valued element differs from the normalized nil baseline.
			mv.Set(reflect.MakeSlice(mv.Type(), 1, 1))
		}
	case reflect.Func:
		mv.Set(reflect.MakeFunc(mv.Type(), func(args []reflect.Value) []reflect.Value {
			return nil
		}))
	default:
		t.Fatalf("Options.%s: unhandled kind %s — extend mutateField alongside the new field",
			reflect.TypeOf(base).Field(i).Name, mv.Kind())
	}
	return mut
}

// TestOptionsFieldClassification cross-checks the three places a field's
// determinism classification lives — DiffFrom's enumeration, EquivalentTo's
// stripping and the optionsDeterminismIrrelevant allowlist — by mutating
// every Options field and observing the runtime behaviour:
//
//   - an allowlisted field's mutation must be invisible (EquivalentTo true,
//     DiffFrom empty), or the allowlist is lying;
//   - every other field's mutation must break equivalence AND be named by
//     DiffFrom's enumeration, never by the "field DiffFrom does not
//     enumerate" fallback — dvz-vet's optsync analyzer makes that fallback
//     structurally unreachable and this test verifies the claim dynamically.
func TestOptionsFieldClassification(t *testing.T) {
	base := DefaultOptions(uarch.KindBOOM).Normalized()
	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		mut := mutateField(t, base, i)
		diffs := base.DiffFrom(mut)
		equiv := base.EquivalentTo(mut)
		_, irrelevant := optionsDeterminismIrrelevant[name]
		if irrelevant {
			if !equiv {
				t.Errorf("Options.%s is allowlisted as determinism-irrelevant but its mutation breaks EquivalentTo", name)
			}
			if len(diffs) != 0 {
				t.Errorf("Options.%s is allowlisted as determinism-irrelevant but DiffFrom reports %q", name, diffs)
			}
			continue
		}
		if equiv {
			t.Errorf("Options.%s is determinism-relevant but its mutation leaves the options EquivalentTo", name)
		}
		if len(diffs) == 0 {
			t.Errorf("Options.%s is determinism-relevant but DiffFrom reports no difference", name)
			continue
		}
		for _, d := range diffs {
			if strings.Contains(d, "does not enumerate") {
				t.Errorf("Options.%s surfaced through DiffFrom's fallback (%q); the enumeration must name it", name, d)
			}
		}
	}
}

// TestOptionsDiffFallbackMessage pins the fallback branch's wording: resume
// code and operators grep for it, and optsync's doc comment points at it.
func TestOptionsDiffFallbackMessage(t *testing.T) {
	// No reachable input produces the fallback (TestOptionsFieldClassification
	// proves every field surfaces through the enumeration), so exercise the
	// identical-options path instead: DiffFrom of equal options is empty.
	base := DefaultOptions(uarch.KindBOOM)
	if diffs := base.DiffFrom(base); len(diffs) != 0 {
		t.Fatalf("DiffFrom of identical options = %q, want empty", diffs)
	}
	if !base.EquivalentTo(base) {
		t.Fatal("identical options are not EquivalentTo themselves")
	}
}
