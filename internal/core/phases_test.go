package core

import (
	"testing"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

// TestPhase1TriggersAllWindowTypes is the Table 3 acceptance criterion:
// derived training must trigger every transient-window type, except
// illegal-instruction windows on BOOM (flushed at decode).
func TestPhase1TriggersAllWindowTypes(t *testing.T) {
	for _, kind := range []uarch.CoreKind{uarch.KindBOOM, uarch.KindXiangShan} {
		for _, trig := range gen.AllTriggerTypes() {
			kind, trig := kind, trig
			t.Run(kind.String()+"/"+trig.String(), func(t *testing.T) {
				f := NewFuzzer(DefaultOptions(kind))
				triggered := false
				var last *Phase1Result
				for attempt := 0; attempt < 5 && !triggered; attempt++ {
					seed := f.gen.SeedFor(kind, trig, gen.VariantDerived)
					p1, err := f.Phase1(seed)
					if err != nil {
						t.Fatalf("phase1: %v", err)
					}
					last = p1
					triggered = p1.Triggered
				}
				wantTriggered := !(kind == uarch.KindBOOM && trig == gen.TrigIllegal)
				if triggered != wantTriggered {
					t.Fatalf("triggered=%v, want %v (last: %+v)", triggered, wantTriggered, last)
				}
				if triggered && trig.IsException() && last.ETO != 0 {
					t.Errorf("exception window kept training (ETO=%d), reduction failed", last.ETO)
				}
				if triggered && trig.IsMispredict() && last.ETO == 0 {
					t.Errorf("misprediction window reported zero effective training")
				}
			})
		}
	}
}

// TestPhase1RandomVariantAsymmetry checks the DejaVuzz* shape: random
// training cannot trigger indirect-jump windows on XiangShan (target
// confidence), while exception windows need no training at all.
func TestPhase1RandomVariantAsymmetry(t *testing.T) {
	triggeredJalr := false
	f := NewFuzzer(Options{
		Core: uarch.KindXiangShan, Seed: 7, Iterations: 1, Workers: 1,
		MaxCycles: 20000, Variant: gen.VariantRandom,
		UseCoverageFeedback: true, UseLiveness: true, UseReduction: true,
	})
	for attempt := 0; attempt < 12 && !triggeredJalr; attempt++ {
		seed := f.gen.SeedFor(uarch.KindXiangShan, gen.TrigJumpMispred, gen.VariantRandom)
		p1, err := f.Phase1(seed)
		if err != nil {
			t.Fatalf("phase1: %v", err)
		}
		triggeredJalr = p1.Triggered
	}
	if triggeredJalr {
		t.Error("random training triggered indirect-jump windows on XiangShan; expected failure (Table 3)")
	}

	// Exception windows trigger with zero overhead under random training too.
	seed := f.gen.SeedFor(uarch.KindXiangShan, gen.TrigPageFault, gen.VariantRandom)
	p1, err := f.Phase1(seed)
	if err != nil {
		t.Fatalf("phase1: %v", err)
	}
	if !p1.Triggered {
		t.Fatal("random variant failed to trigger a page-fault window")
	}
	if p1.ETO != 0 {
		t.Errorf("page-fault window ETO=%d, want 0 after reduction", p1.ETO)
	}
}

// TestPhase2ProducesTaintAndCoverage runs the full phase 1+2 flow and checks
// secrets propagate and coverage points accumulate.
func TestPhase2ProducesTaintAndCoverage(t *testing.T) {
	f := NewFuzzer(DefaultOptions(uarch.KindBOOM))
	var got bool
	for attempt := int64(0); attempt < 8 && !got; attempt++ {
		seed := f.gen.SeedFor(uarch.KindBOOM, gen.TrigBranchMispred, gen.VariantDerived)
		seed.SecretFaults = false
		seed.MaskHigh = false
		p1, err := f.Phase1(seed)
		if err != nil || !p1.Triggered {
			continue
		}
		p2, err := f.Phase2(p1)
		if err != nil {
			t.Fatalf("phase2: %v", err)
		}
		if p2.TaintGain && f.coverage.Count() > 0 {
			got = true
		}
	}
	if !got {
		t.Fatal("no taint gain / coverage across attempts")
	}
}

// TestFullIterationFindsLeak runs complete iterations on BOOM and expects at
// least one finding (the Meltdown dcache-encode path is reliably present).
func TestFullIterationFindsLeak(t *testing.T) {
	opts := DefaultOptions(uarch.KindBOOM)
	opts.Iterations = 30
	opts.Seed = 42
	f := NewFuzzer(opts)
	rep := f.Run()
	if len(rep.Findings) == 0 {
		t.Fatalf("no findings in %d iterations (coverage=%d, sims=%d)",
			opts.Iterations, rep.Coverage, rep.Sims)
	}
	if rep.Coverage == 0 {
		t.Error("coverage matrix is empty")
	}
	for _, fi := range rep.Findings {
		if fi.AttackType != "Meltdown" && fi.AttackType != "Spectre" {
			t.Errorf("bad attack type %q", fi.AttackType)
		}
	}
}
