package core

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"dejavuzz/internal/scenario"
)

// cancelAtBarrier runs a campaign that snapshots and stops at the given
// iteration count, returning the barrier snapshot.
func cancelAtBarrier(t *testing.T, opts Options, stopAt int) *EngineState {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts.OnBarrier = func(b *Barrier) {
		if b.Done == stopAt {
			cancel()
		}
	}
	rep, state := NewFuzzer(opts).RunContext(ctx)
	if rep != nil || state == nil {
		t.Fatal("campaign did not stop at the barrier")
	}
	return state
}

// degradeToV2 rewrites a current (version-3) snapshot into the exact JSON a
// version-2, EMA-era checkpoint would carry: version 2, the scheduler state
// flattened to the legacy (name, weight) vector under "sched_weights", and
// no Scheduler field in the options (the key did not exist then).
func degradeToV2(t *testing.T, st *EngineState) []byte {
	t.Helper()
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = json.RawMessage("2")
	var fs []scenario.FamilyState
	if err := json.Unmarshal(m["sched_state"], &fs); err != nil {
		t.Fatal(err)
	}
	ws := make([]scenario.Weight, len(fs))
	for i, f := range fs {
		ws[i] = scenario.Weight{Name: f.Name, Weight: f.Weight}
	}
	delete(m, "sched_state")
	m["sched_weights"], err = json.Marshal(ws)
	if err != nil {
		t.Fatal(err)
	}
	var om map[string]json.RawMessage
	if err := json.Unmarshal(m["options"], &om); err != nil {
		t.Fatal(err)
	}
	delete(om, "Scheduler")
	m["options"], err = json.Marshal(om)
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEngineStateV2MigrationResumesByteIdentical is the checkpoint-
// compatibility regression for the scheduler fix: a version-2 (EMA-era)
// checkpoint must load, seed the bandit posterior from its per-family
// statistics, and — because UCB weights are a pure function of that
// posterior — resume to results byte-identical to an uninterrupted run
// under today's default policy.
func TestEngineStateV2MigrationResumesByteIdentical(t *testing.T) {
	ref := NewFuzzer(campaignOpts(1, 64)).Run()
	if len(ref.Findings) == 0 {
		t.Fatal("reference campaign found nothing; migration check is vacuous")
	}
	state := cancelAtBarrier(t, campaignOpts(4, 64), 32)

	legacy := degradeToV2(t, state)
	var restored EngineState
	if err := json.Unmarshal(legacy, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Version != 2 || len(restored.SchedWeights) == 0 || restored.SchedState != nil {
		t.Fatalf("degraded snapshot is not a faithful v2 checkpoint: version=%d weights=%d state=%d",
			restored.Version, len(restored.SchedWeights), len(restored.SchedState))
	}
	f, err := NewFuzzerFromState(&restored, campaignOpts(8, 64))
	if err != nil {
		t.Fatalf("v2 checkpoint refused: %v", err)
	}
	resumed := f.Run()
	if !reflect.DeepEqual(fingerprint(ref), fingerprint(resumed)) {
		t.Error("v2-migrated resume diverges from uninterrupted run")
	}
	if !reflect.DeepEqual(ref.Scenarios, resumed.Scenarios) {
		t.Errorf("v2-migrated per-family stats diverge: %+v vs %+v", ref.Scenarios, resumed.Scenarios)
	}
}

// TestEngineStateV1Refused pins that pre-scheduler checkpoints are still
// refused — they predate per-family scheduling, so no posterior can be
// seeded and byte-identical resume is impossible.
func TestEngineStateV1Refused(t *testing.T) {
	state := cancelAtBarrier(t, campaignOpts(1, 32), 16)
	v1 := *state
	v1.Version = 1
	if _, err := NewFuzzerFromState(&v1, campaignOpts(1, 32)); err == nil {
		t.Fatal("version-1 engine state was accepted")
	} else if !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("v1 refusal does not name the version: %v", err)
	}
}

// TestResumeSchedulerMismatchFails extends the option-mismatch safety seam
// to the new policy knob: a checkpoint written under the UCB default must
// refuse to resume under -scheduler=ema, naming the field — the two
// policies sample different family streams, so a silent switch would break
// byte-identical resume.
func TestResumeSchedulerMismatchFails(t *testing.T) {
	state := cancelAtBarrier(t, campaignOpts(1, 32), 16)
	mismatch := campaignOpts(1, 32)
	mismatch.Scheduler = string(scenario.PolicyEMA)
	if _, err := NewFuzzerFromState(state, mismatch); err == nil {
		t.Fatal("resume under a different scheduler policy did not fail")
	} else {
		if !strings.Contains(err.Error(), "scheduler") {
			t.Fatalf("mismatch error does not name the scheduler option: %v", err)
		}
		if !strings.Contains(err.Error(), "ema") || !strings.Contains(err.Error(), "ucb") {
			t.Fatalf("mismatch error does not show both policies: %v", err)
		}
	}
}

// emaOpts is campaignOpts pinned to the legacy policy.
func emaOpts(workers, iterations int) Options {
	opts := campaignOpts(workers, iterations)
	opts.Scheduler = string(scenario.PolicyEMA)
	return opts
}

// TestEMASchedulerDeterministic keeps the legacy policy honest while it
// stays reachable for A/B runs: Workers=1 vs 8 fingerprints must agree, and
// cancel+resume must be byte-identical, exactly as under the default.
func TestEMASchedulerDeterministic(t *testing.T) {
	ref := NewFuzzer(emaOpts(1, 64)).Run()
	rep := NewFuzzer(emaOpts(8, 64)).Run()
	if !reflect.DeepEqual(fingerprint(ref), fingerprint(rep)) {
		t.Error("EMA policy: Workers=8 fingerprint diverges from Workers=1")
	}
	if !reflect.DeepEqual(ref.Scenarios, rep.Scenarios) {
		t.Error("EMA policy: per-family stats diverge across worker counts")
	}

	state := cancelAtBarrier(t, emaOpts(4, 64), 32)
	data, err := json.Marshal(state)
	if err != nil {
		t.Fatal(err)
	}
	var restored EngineState
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	f, err := NewFuzzerFromState(&restored, emaOpts(8, 64))
	if err != nil {
		t.Fatal(err)
	}
	resumed := f.Run()
	if !reflect.DeepEqual(fingerprint(ref), fingerprint(resumed)) {
		t.Error("EMA policy: cancel+resume diverges from uninterrupted run")
	}
}

// TestSchedulerPoliciesDiverge sanity-checks that the -scheduler knob is
// actually load-bearing: the two policies must schedule observably
// different campaigns from the same seed (otherwise the A/B comparison in
// dvz-bench compares a policy with itself).
func TestSchedulerPoliciesDiverge(t *testing.T) {
	ucb := NewFuzzer(campaignOpts(1, 64)).Run()
	ema := NewFuzzer(emaOpts(1, 64)).Run()
	if reflect.DeepEqual(ucb.Scenarios, ema.Scenarios) {
		t.Fatal("ucb and ema produced identical per-family statistics; the policy knob is inert")
	}
}
