package core

import (
	"testing"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

// TestMeltdownTriggerVariations reproduces the paper's §6.4 claim that
// DejaVuzz covers all trigger variations of known vulnerabilities — e.g.
// replacing the Meltdown page-fault trigger with an access fault or an
// unaligned access. Every exception flavour must produce a Meltdown-type
// finding on BOOM.
func TestMeltdownTriggerVariations(t *testing.T) {
	for _, trig := range []gen.TriggerType{
		gen.TrigPageFault, gen.TrigAccessFault, gen.TrigMisalign,
	} {
		trig := trig
		t.Run(trig.String(), func(t *testing.T) {
			f := NewFuzzer(DefaultOptions(uarch.KindBOOM))
			found := false
			for attempt := 0; attempt < 12 && !found; attempt++ {
				seed := f.gen.SeedFor(uarch.KindBOOM, trig, gen.VariantDerived)
				seed.SecretFaults = true // Meltdown: the secret access faults
				seed.MaskHigh = false
				rr, err := f.Reproduce(seed)
				if err != nil {
					t.Fatal(err)
				}
				if rr.Finding != nil && rr.Finding.AttackType == "Meltdown" {
					found = true
				}
			}
			if !found {
				t.Errorf("no Meltdown finding through a %v trigger", trig)
			}
		})
	}
}

// TestSpectreWindowVariations: Spectre-type leaks must be reachable through
// every misprediction window class on BOOM.
func TestSpectreWindowVariations(t *testing.T) {
	for _, trig := range []gen.TriggerType{
		gen.TrigBranchMispred, gen.TrigJumpMispred, gen.TrigReturnMispred,
	} {
		trig := trig
		t.Run(trig.String(), func(t *testing.T) {
			f := NewFuzzer(DefaultOptions(uarch.KindBOOM))
			found := false
			for attempt := 0; attempt < 12 && !found; attempt++ {
				seed := f.gen.SeedFor(uarch.KindBOOM, trig, gen.VariantDerived)
				seed.SecretFaults = false
				seed.MaskHigh = false
				rr, err := f.Reproduce(seed)
				if err != nil {
					t.Fatal(err)
				}
				if rr.Finding != nil && rr.Finding.AttackType == "Spectre" {
					found = true
				}
			}
			if !found {
				t.Errorf("no Spectre finding through a %v window", trig)
			}
		})
	}
}

// TestMeltdownSamplingOnlyOnXiangShan: the masked-address (MDS-style) probe
// must witness B1 on XiangShan and never on BOOM.
func TestMeltdownSamplingOnlyOnXiangShan(t *testing.T) {
	probe := func(kind uarch.CoreKind) bool {
		f := NewFuzzer(DefaultOptions(kind))
		for attempt := 0; attempt < 10; attempt++ {
			seed := f.gen.SeedFor(kind, gen.TrigBranchMispred, gen.VariantDerived)
			seed.MaskHigh = true
			p1, err := f.Phase1(seed)
			if err != nil || !p1.Triggered {
				continue
			}
			p2, err := f.Phase2(p1)
			if err != nil {
				continue
			}
			if p2.Run.Pair.A.BugWitness["meltdown-sampling"] > 0 {
				return true
			}
		}
		return false
	}
	if !probe(uarch.KindXiangShan) {
		t.Error("B1 never witnessed on XiangShan with masked probes")
	}
	if probe(uarch.KindBOOM) {
		t.Error("B1 witnessed on BOOM, which lacks the truncation bug")
	}
}

// TestBuglessBaselineStillLeaks: disabling the injected bugs must not
// disable the architecturally inherent channels (Meltdown forwarding and
// cache encodes exist regardless of B1-B5), but it must remove the
// bug-specific witnesses.
func TestBuglessBaselineStillLeaks(t *testing.T) {
	opts := DefaultOptions(uarch.KindBOOM)
	opts.Iterations = 25
	opts.Seed = 21
	opts.Bugless = true
	rep := NewFuzzer(opts).Run()
	if len(rep.Findings) == 0 {
		t.Fatal("bugless core shows no inherent transient leaks")
	}
	for _, fi := range rep.Findings {
		for _, b := range fi.BugLabels {
			switch b {
			case "phantom-rsb", "phantom-btb", "meltdown-sampling", "spectre-reload", "spectre-refetch-miss":
				t.Errorf("bugless run still witnessed %s", b)
			}
		}
	}
}
