package core

import (
	"sort"
	"sync"

	"dejavuzz/internal/uarch"
)

// covSlots is the per-module bitmap size: tainted-element counts clamp here.
const covSlots = 256

type covKey struct {
	module string
	count  int
}

// Coverage is the taint coverage matrix (§4.2.2): every (module,
// tainted-element-count) pair observed during a transient window is one
// coverage point. It is locality-aware (module-level) and
// position-insensitive (counts, not slots).
type Coverage struct {
	mu     sync.Mutex
	points map[covKey]struct{}
}

// NewCoverage returns an empty matrix.
func NewCoverage() *Coverage {
	return &Coverage{points: make(map[covKey]struct{})}
}

// AddFromLog folds a taint log into the matrix and returns how many new
// coverage points it contributed.
func (c *Coverage) AddFromLog(log []uarch.TaintSample) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	added := 0
	for _, s := range log {
		if s.Tainted == 0 {
			continue
		}
		n := s.Tainted
		if n >= covSlots {
			n = covSlots - 1
		}
		k := covKey{module: s.Module, count: n}
		if _, ok := c.points[k]; !ok {
			c.points[k] = struct{}{}
			added++
		}
	}
	return added
}

// Count returns the number of collected coverage points.
func (c *Coverage) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.points)
}

// Modules lists modules with at least one coverage point, sorted.
func (c *Coverage) Modules() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[string]bool{}
	for k := range c.points {
		seen[k.module] = true
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
