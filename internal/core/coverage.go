package core

import (
	"sort"
	"sync"

	"dejavuzz/internal/uarch"
)

// covSlots is the per-module bitmap size: tainted-element counts clamp here.
const covSlots = 256

type covKey struct {
	module string
	count  int
}

// covKeyFor normalizes one taint sample into its coverage key; ok is false
// for samples that contribute no coverage (zero taints).
func covKeyFor(s uarch.TaintSample) (covKey, bool) {
	if s.Tainted == 0 {
		return covKey{}, false
	}
	n := s.Tainted
	if n >= covSlots {
		n = covSlots - 1
	}
	return covKey{module: s.Module, count: n}, true
}

// Coverage is the taint coverage matrix (§4.2.2): every (module,
// tainted-element-count) pair observed during a transient window is one
// coverage point. It is locality-aware (module-level) and
// position-insensitive (counts, not slots).
type Coverage struct {
	mu     sync.Mutex
	points map[covKey]struct{}
}

// NewCoverage returns an empty matrix.
func NewCoverage() *Coverage {
	return &Coverage{points: make(map[covKey]struct{})}
}

// AddFromLog folds a taint log into the matrix and returns how many new
// coverage points it contributed.
func (c *Coverage) AddFromLog(log []uarch.TaintSample) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	added := 0
	for _, s := range log {
		k, ok := covKeyFor(s)
		if !ok {
			continue
		}
		if _, dup := c.points[k]; !dup {
			c.points[k] = struct{}{}
			added++
		}
	}
	return added
}

// Delta is a shard-local coverage view: it counts points that are new with
// respect to the parent matrix's state at the time the delta was created,
// plus its own accumulation. Deltas are single-goroutine; the parent matrix
// must not be mutated while any delta derived from it is live (the campaign
// engine guarantees this by only absorbing deltas at merge barriers).
type Delta struct {
	base   *Coverage
	points map[covKey]struct{}
}

// NewDelta derives an empty shard-local delta from the matrix.
func (c *Coverage) NewDelta() *Delta {
	return &Delta{base: c, points: make(map[covKey]struct{})}
}

// AddFromLog folds a taint log into the delta and returns how many points
// were new relative to base ∪ delta. Not safe for concurrent use on the same
// delta; distinct deltas over one quiescent base may run in parallel.
func (d *Delta) AddFromLog(log []uarch.TaintSample) int {
	added := 0
	for _, s := range log {
		k, ok := covKeyFor(s)
		if !ok {
			continue
		}
		if _, dup := d.base.points[k]; dup {
			continue
		}
		if _, dup := d.points[k]; dup {
			continue
		}
		d.points[k] = struct{}{}
		added++
	}
	return added
}

// Count returns the number of points accumulated in the delta.
func (d *Delta) Count() int { return len(d.points) }

// Absorb merges a delta into the matrix and returns how many of its points
// were globally new (deltas from sibling shards may overlap).
func (c *Coverage) Absorb(d *Delta) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	added := 0
	//dvz:ordered commutative: set insertion plus a count of globally-new keys; d's keys are unique, so no insert can change a later membership test
	for k := range d.points {
		if _, ok := c.points[k]; !ok {
			c.points[k] = struct{}{}
			added++
		}
	}
	return added
}

// CovPoint is one exported coverage-matrix point: a (module,
// tainted-element-count) pair. It is the checkpoint serialisation unit.
type CovPoint struct {
	Module string `json:"m"`
	Count  int    `json:"n"`
}

// Points exports the matrix as a sorted point list (checkpoint snapshots).
func (c *Coverage) Points() []CovPoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CovPoint, 0, len(c.points))
	for k := range c.points {
		out = append(out, CovPoint{Module: k.module, Count: k.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Module != out[j].Module {
			return out[i].Module < out[j].Module
		}
		return out[i].Count < out[j].Count
	})
	return out
}

// AddPoints folds exported points back into the matrix (checkpoint restore).
func (c *Coverage) AddPoints(pts []CovPoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range pts {
		c.points[covKey{module: p.Module, count: p.Count}] = struct{}{}
	}
}

// Count returns the number of collected coverage points.
func (c *Coverage) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.points)
}

// Modules lists modules with at least one coverage point, sorted.
func (c *Coverage) Modules() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[string]bool{}
	for k := range c.points {
		seen[k.module] = true
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
