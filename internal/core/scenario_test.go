package core

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"dejavuzz/internal/uarch"
)

// newFamilies are the extended scenario families this PR introduces; the
// acceptance bar is that each of them earns at least one coverage point or
// finding on the injected-bug BOOM target within a bounded budget.
var newFamilies = []string{"cache-occupancy", "nested-fault-in-branch", "stl-forward-chain"}

func scenarioOpts(families []string, workers, iterations int) Options {
	opts := DefaultOptions(uarch.KindBOOM)
	opts.Seed = 7
	opts.Iterations = iterations
	opts.Workers = workers
	opts.MergeEvery = 16
	opts.Scenarios = families
	return opts
}

// TestNewScenarioFamiliesYield proves the three extended families are live
// end to end: restricted to exactly that set, a short campaign on the
// injected-bug BOOM core picks each family and each contributes coverage
// (or findings) within the iteration budget.
func TestNewScenarioFamiliesYield(t *testing.T) {
	iterations := 48
	if testing.Short() {
		iterations = 24
	}
	rep := NewFuzzer(scenarioOpts(newFamilies, 1, iterations)).Run()
	if len(rep.Scenarios) != len(newFamilies) {
		t.Fatalf("report has %d scenario rows, want %d: %+v", len(rep.Scenarios), len(newFamilies), rep.Scenarios)
	}
	for _, sc := range rep.Scenarios {
		if sc.Picks == 0 {
			t.Errorf("family %q was never picked", sc.Name)
			continue
		}
		if sc.Points == 0 && sc.Findings == 0 {
			t.Errorf("family %q yielded neither coverage points nor findings in %d picks", sc.Name, sc.Picks)
		}
	}
	// The per-iteration records must attribute every iteration to one of
	// the enabled families.
	for _, it := range rep.Iters {
		ok := false
		for _, f := range newFamilies {
			if it.Scenario == f {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("iteration %d ran family %q outside the enabled set", it.Iteration, it.Scenario)
		}
	}
}

// TestScenarioFilterDeterministicAcrossWorkers extends the determinism
// regression to the adaptive scheduler with a non-default family set:
// findings, coverage and the per-family statistics must be byte-identical
// for any worker count.
func TestScenarioFilterDeterministicAcrossWorkers(t *testing.T) {
	families := []string{"branch-mispredict", "cache-occupancy", "nested-fault-in-branch"}
	ref := NewFuzzer(scenarioOpts(families, 1, 48)).Run()
	for _, workers := range []int{2, 8} {
		rep := NewFuzzer(scenarioOpts(families, workers, 48)).Run()
		if !reflect.DeepEqual(fingerprint(ref), fingerprint(rep)) {
			t.Errorf("Workers=%d: report fingerprint diverges under scenario filter", workers)
		}
		if !reflect.DeepEqual(ref.Scenarios, rep.Scenarios) {
			t.Errorf("Workers=%d: per-family stats diverge: %+v vs %+v", workers, ref.Scenarios, rep.Scenarios)
		}
	}
}

// TestResumeScenarioMismatchFails is the checkpoint-safety regression: a
// checkpoint written under one -scenarios set must refuse to resume under
// another, with an error that names the mismatched option — never silently
// diverge into a different campaign.
func TestResumeScenarioMismatchFails(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := scenarioOpts([]string{"branch-mispredict", "page-fault"}, 1, 48)
	opts.OnBarrier = func(b *Barrier) {
		if b.Done == 16 {
			cancel()
		}
	}
	rep, state := NewFuzzer(opts).RunContext(ctx)
	cancel()
	if rep != nil || state == nil {
		t.Fatal("campaign did not stop at the barrier")
	}
	// JSON round-trip, as the session checkpoint file does.
	data, err := json.Marshal(state)
	if err != nil {
		t.Fatal(err)
	}
	var restored EngineState
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}

	mismatch := scenarioOpts([]string{"branch-mispredict", "stl-forward-chain"}, 1, 48)
	if _, err := NewFuzzerFromState(&restored, mismatch); err == nil {
		t.Fatal("resume with a different -scenarios set did not fail")
	} else {
		if !strings.Contains(err.Error(), "scenarios") {
			t.Fatalf("mismatch error does not name the scenarios option: %v", err)
		}
		if !strings.Contains(err.Error(), "stl-forward-chain") || !strings.Contains(err.Error(), "page-fault") {
			t.Fatalf("mismatch error does not show both sets: %v", err)
		}
	}

	// The equivalent set still resumes, and the scheduler state survives
	// the round-trip: the resumed engine's next snapshot carries identical
	// weights.
	f, err := NewFuzzerFromState(&restored, scenarioOpts([]string{"page-fault", "branch-mispredict"}, 4, 48))
	if err != nil {
		t.Fatal(err)
	}
	resumed := f.Run()
	full := NewFuzzer(scenarioOpts([]string{"branch-mispredict", "page-fault"}, 1, 48)).Run()
	if !reflect.DeepEqual(fingerprint(full), fingerprint(resumed)) {
		t.Fatal("cancel+resume under a scenario filter is not byte-identical")
	}
	if !reflect.DeepEqual(full.Scenarios, resumed.Scenarios) {
		t.Fatalf("resumed per-family stats diverge: %+v vs %+v", full.Scenarios, resumed.Scenarios)
	}
}
