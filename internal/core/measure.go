package core

import "dejavuzz/internal/gen"

// TrainStats aggregates Phase-1 measurements for one (core, variant,
// trigger) cell of Table 3.
type TrainStats struct {
	Attempts  int
	Successes int
	AvgTO     float64 // average training overhead over successes
	AvgETO    float64 // excluding alignment nops
	Sims      int
}

// Triggerable reports whether any attempt triggered the window.
func (s TrainStats) Triggerable() bool { return s.Successes > 0 }

// MeasureTraining runs Phase 1 `attempts` times for a fixed trigger type and
// reports the training-overhead statistics of the reduced schedules — the
// Table 3 measurement.
func (f *Fuzzer) MeasureTraining(trigger gen.TriggerType, variant gen.Variant, attempts int) TrainStats {
	st := TrainStats{}
	for i := 0; i < attempts; i++ {
		seed := f.gen.SeedFor(f.opts.Core, trigger, variant)
		p1, err := f.Phase1(seed)
		if err != nil {
			continue
		}
		st.Attempts++
		st.Sims += p1.Sims
		if !p1.Triggered {
			continue
		}
		st.Successes++
		st.AvgTO += (float64(p1.TO) - st.AvgTO) / float64(st.Successes)
		st.AvgETO += (float64(p1.ETO) - st.AvgETO) / float64(st.Successes)
	}
	return st
}

// NewSeedFor exposes deterministic seed construction for experiment
// harnesses and examples.
func (f *Fuzzer) NewSeedFor(trigger gen.TriggerType, variant gen.Variant) gen.Seed {
	return f.gen.SeedFor(f.opts.Core, trigger, variant)
}

// Generator exposes the underlying stimulus generator.
func (f *Fuzzer) Generator() *gen.Generator { return f.gen }
