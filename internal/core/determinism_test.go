package core

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"dejavuzz/internal/uarch"
)

// campaignFingerprint strips the wall-clock fields so reports can be
// compared for determinism.
type campaignFingerprint struct {
	Findings  []Finding
	Iters     []IterStat
	Coverage  int
	Sims      int
	DeadSinks int
}

func fingerprint(r *Report) campaignFingerprint {
	return campaignFingerprint{
		Findings:  r.Findings,
		Iters:     r.Iters,
		Coverage:  r.Coverage,
		Sims:      r.Sims,
		DeadSinks: r.DeadSinks,
	}
}

func campaignOpts(workers int, iterations int) Options {
	opts := DefaultOptions(uarch.KindBOOM)
	opts.Seed = 42
	opts.Iterations = iterations
	opts.Workers = workers
	opts.MergeEvery = 16 // several barriers per campaign
	return opts
}

// TestCampaignDeterministicAcrossWorkers is the determinism regression
// test: one campaign run with Workers=1 and Workers=8 from the same seed
// must yield identical findings, coverage count and coverage history.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	iterations := 64
	if testing.Short() {
		iterations = 32
	}
	ref := NewFuzzer(campaignOpts(1, iterations)).Run()
	if ref.Coverage == 0 {
		t.Fatal("reference campaign collected no coverage")
	}
	hist := ref.CoverageHistory()
	if got := hist[len(hist)-1]; got != ref.Coverage {
		t.Fatalf("coverage history ends at %d but Report.Coverage is %d", got, ref.Coverage)
	}
	for i := 1; i < len(hist); i++ {
		if hist[i] < hist[i-1] {
			t.Fatalf("coverage history not monotone at %d: %d < %d", i, hist[i], hist[i-1])
		}
	}
	if len(ref.Findings) == 0 {
		t.Fatal("reference campaign found nothing; determinism check is vacuous")
	}
	for _, workers := range []int{2, 8} {
		rep := NewFuzzer(campaignOpts(workers, iterations)).Run()
		if !reflect.DeepEqual(ref.Findings, rep.Findings) {
			t.Errorf("Workers=%d: findings diverge: %d vs %d", workers, len(ref.Findings), len(rep.Findings))
		}
		if ref.Coverage != rep.Coverage {
			t.Errorf("Workers=%d: coverage %d, want %d", workers, rep.Coverage, ref.Coverage)
		}
		if !reflect.DeepEqual(ref.CoverageHistory(), rep.CoverageHistory()) {
			t.Errorf("Workers=%d: coverage history diverges", workers)
		}
		if !reflect.DeepEqual(fingerprint(ref), fingerprint(rep)) {
			t.Errorf("Workers=%d: full report fingerprint diverges", workers)
		}
	}
}

// TestCampaignCancelResumeDeterministic extends the determinism regression
// test across cancellation: a campaign cancelled at a merge barrier yields
// an EngineState that — after a JSON round-trip, and under a different
// worker count — resumes to a report identical to the uninterrupted run.
func TestCampaignCancelResumeDeterministic(t *testing.T) {
	ref := NewFuzzer(campaignOpts(1, 64)).Run()
	if len(ref.Findings) == 0 {
		t.Fatal("reference campaign found nothing; determinism check is vacuous")
	}

	for _, stopAt := range []int{16, 48} {
		ctx, cancel := context.WithCancel(context.Background())
		opts := campaignOpts(4, 64)
		opts.OnBarrier = func(b *Barrier) {
			if b.Done == stopAt {
				cancel()
			}
		}
		rep, state := NewFuzzer(opts).RunContext(ctx)
		cancel()
		if rep != nil || state == nil {
			t.Fatalf("stopAt=%d: campaign did not stop at the barrier", stopAt)
		}
		if state.NextIter != stopAt {
			t.Fatalf("stopAt=%d: stopped at %d", stopAt, state.NextIter)
		}

		// The snapshot must survive serialisation: resume from the decoded
		// bytes, with a different worker count than the reference.
		data, err := json.Marshal(state)
		if err != nil {
			t.Fatal(err)
		}
		var restored EngineState
		if err := json.Unmarshal(data, &restored); err != nil {
			t.Fatal(err)
		}
		f, err := NewFuzzerFromState(&restored, campaignOpts(8, 64))
		if err != nil {
			t.Fatal(err)
		}
		resumed := f.Run()
		if !reflect.DeepEqual(fingerprint(ref), fingerprint(resumed)) {
			t.Errorf("stopAt=%d: resumed report diverges from uninterrupted run", stopAt)
		}
	}
}

// TestResumeStateValidation checks NewFuzzerFromState rejects snapshots
// that cannot have come from the supplied options.
func TestResumeStateValidation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := campaignOpts(1, 32)
	opts.OnBarrier = func(b *Barrier) {
		if b.Done == 16 {
			cancel()
		}
	}
	_, state := NewFuzzer(opts).RunContext(ctx)
	cancel()
	if state == nil {
		t.Fatal("no snapshot produced")
	}
	mismatched := campaignOpts(1, 32)
	mismatched.Seed = 999
	if _, err := NewFuzzerFromState(state, mismatched); err == nil {
		t.Error("accepted snapshot under mismatched seed")
	}
	workersOnly := campaignOpts(16, 32)
	if _, err := NewFuzzerFromState(state, workersOnly); err != nil {
		t.Errorf("rejected workers-only difference: %v", err)
	}
	bad := *state
	bad.Version = EngineStateVersion + 1
	if _, err := NewFuzzerFromState(&bad, campaignOpts(1, 32)); err == nil {
		t.Error("accepted snapshot with wrong version")
	}
}

// TestCampaignDeterministicRepeat guards against hidden global state: two
// back-to-back runs of the same options must agree exactly.
func TestCampaignDeterministicRepeat(t *testing.T) {
	a := NewFuzzer(campaignOpts(4, 32)).Run()
	b := NewFuzzer(campaignOpts(4, 32)).Run()
	if !reflect.DeepEqual(fingerprint(a), fingerprint(b)) {
		t.Fatal("identical options produced different reports")
	}
}

// TestCampaignMergeUnderWorkers exercises the shared coverage/corpus merge
// barriers under 8 workers with small epochs so the race detector sees many
// snapshot/merge cycles. It is testing.Short-friendly and is the test CI
// runs under -race.
func TestCampaignMergeUnderWorkers(t *testing.T) {
	opts := DefaultOptions(uarch.KindBOOM)
	opts.Seed = 7
	opts.Iterations = 32
	opts.Workers = 8
	opts.MergeEvery = 4 // one barrier every half-shard-pass
	epochs := 0
	opts.OnEpoch = func(done, total, coverage int) {
		epochs++
		if done > total {
			t.Errorf("OnEpoch reported done=%d > total=%d", done, total)
		}
	}
	rep := NewFuzzer(opts).Run()
	if epochs != 8 {
		t.Errorf("expected 8 merge barriers, saw %d", epochs)
	}
	if rep.Coverage == 0 {
		t.Error("no coverage merged")
	}
	if got := len(rep.Iters); got != 32 {
		t.Errorf("expected 32 iteration stats, got %d", got)
	}
	for i, it := range rep.Iters {
		if it.Iteration != i {
			t.Fatalf("iteration stat %d carries index %d", i, it.Iteration)
		}
	}
}

// TestCoverageHistoryConsistent pins the history contract across shard
// shapes and seeds: monotone, and final entry exactly Report.Coverage (this
// regressed once via Phase-2 secret retries dropping earlier attempts'
// points from NewPoints).
func TestCoverageHistoryConsistent(t *testing.T) {
	for _, shardCount := range []int{1, 3, 8} {
		for seed := int64(1); seed <= 5; seed++ {
			opts := DefaultOptions(uarch.KindBOOM)
			opts.Seed = seed
			opts.Iterations = 48
			opts.Shards = shardCount
			opts.MergeEvery = 16
			rep := NewFuzzer(opts).Run()
			hist := rep.CoverageHistory()
			if got := hist[len(hist)-1]; got != rep.Coverage {
				t.Errorf("shards=%d seed=%d: history ends at %d, Coverage=%d", shardCount, seed, got, rep.Coverage)
			}
			for i := 1; i < len(hist); i++ {
				if hist[i] < hist[i-1] {
					t.Errorf("shards=%d seed=%d: history not monotone at %d", shardCount, seed, i)
				}
			}
		}
	}
}

// TestShardSeedIndependence checks that shards of one campaign draw
// different streams while the same shard is stable across runs.
func TestShardSeedIndependence(t *testing.T) {
	opts := campaignOpts(1, 16)
	opts.Shards = 4
	a := NewFuzzer(opts).Run()
	opts.Shards = 5
	b := NewFuzzer(opts).Run()
	// Different shard counts reshape the streams; identical full histories
	// would mean the shard id is not feeding the generator.
	if reflect.DeepEqual(a.Iters, b.Iters) {
		t.Error("Shards=4 and Shards=5 produced identical iteration streams")
	}
}
