package core

import (
	"context"
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/scenario"
)

// harvestWarmSet runs a short donor campaign and turns its barrier harvest
// into a warm-start configuration (seed set plus frontier prior) — the same
// derivation dvz-server's corpus store performs, done inline so the engine
// tests need no store.
func harvestWarmSet(t *testing.T) ([]gen.Seed, []scenario.Prior) {
	t.Helper()
	opts := campaignOpts(1, 32)
	var harvested []HarvestedSeed
	opts.OnBarrier = func(b *Barrier) { harvested = append(harvested, b.Harvest...) }
	NewFuzzer(opts).Run()
	if len(harvested) == 0 {
		t.Fatal("donor campaign harvested nothing; warm-start test is vacuous")
	}
	if len(harvested) > 8 {
		harvested = harvested[:8]
	}
	seeds := make([]gen.Seed, 0, len(harvested))
	agg := map[string]*scenario.Prior{}
	for _, h := range harvested {
		seeds = append(seeds, h.Seed)
		name := gen.ScenarioName(h.Seed)
		p := agg[name]
		if p == nil {
			p = &scenario.Prior{Name: name}
			agg[name] = p
		}
		p.Picks++
		p.Points += h.NewPoints
		if h.Finding {
			p.Findings++
		}
	}
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	prior := make([]scenario.Prior, 0, len(names))
	for _, n := range names {
		prior = append(prior, *agg[n])
	}
	return seeds, prior
}

// warmOpts is campaignOpts plus a warm-start set under a fresh campaign
// seed (so the warm seeds genuinely come from a different campaign).
func warmOpts(workers, iterations int, seeds []gen.Seed, prior []scenario.Prior) Options {
	opts := campaignOpts(workers, iterations)
	opts.Seed = 43
	opts.CorpusSnapshot = "cs-0123456789abcdef"
	opts.WarmSeeds = seeds
	opts.FrontierPrior = prior
	return opts
}

// TestBarrierHarvestDeterministic pins the harvest surface warm-start is
// built on: the per-barrier harvest sequence is identical across worker
// counts, ordered by iteration, and every entry is a keeper or a finding.
func TestBarrierHarvestDeterministic(t *testing.T) {
	collect := func(workers int) [][]HarvestedSeed {
		opts := campaignOpts(workers, 48)
		var out [][]HarvestedSeed
		opts.OnBarrier = func(b *Barrier) {
			out = append(out, append([]HarvestedSeed(nil), b.Harvest...))
		}
		NewFuzzer(opts).Run()
		return out
	}
	ref := collect(1)
	total := 0
	for _, batch := range ref {
		for i, h := range batch {
			if i > 0 && batch[i-1].Iteration > h.Iteration {
				t.Fatalf("harvest batch not in iteration order: %d after %d", h.Iteration, batch[i-1].Iteration)
			}
			if h.NewPoints <= 0 && !h.Finding {
				t.Fatalf("harvested seed at iteration %d has no evidence", h.Iteration)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no seeds harvested; harvest determinism check is vacuous")
	}
	if got := collect(8); !reflect.DeepEqual(ref, got) {
		t.Error("harvest sequence diverges between Workers=1 and Workers=8")
	}
}

// TestWarmStartDeterministicAcrossWorkers extends the Workers-invariance
// guarantee to warm-started campaigns: the warm seed replay and frontier
// prior must reshape the streams identically at any worker count.
func TestWarmStartDeterministicAcrossWorkers(t *testing.T) {
	seeds, prior := harvestWarmSet(t)
	ref := NewFuzzer(warmOpts(1, 48, seeds, prior)).Run()
	if ref.Coverage == 0 {
		t.Fatal("warm campaign collected no coverage")
	}
	for _, workers := range []int{2, 8} {
		rep := NewFuzzer(warmOpts(workers, 48, seeds, prior)).Run()
		if !reflect.DeepEqual(fingerprint(ref), fingerprint(rep)) {
			t.Errorf("Workers=%d: warm-started report diverges from Workers=1", workers)
		}
	}

	// The warm set must actually matter: the same campaign seed without it
	// runs different streams (warm-start is determinism-relevant, which is
	// why it lives in the checkpointed options).
	cold := campaignOpts(1, 48)
	cold.Seed = 43
	if reflect.DeepEqual(fingerprint(ref), fingerprint(NewFuzzer(cold).Run())) {
		t.Error("warm-started report identical to cold run; warm seeds had no effect")
	}
}

// TestWarmStartCancelResumeDeterministic checks a warm-started campaign
// cancelled at a barrier resumes byte-identically — including when the
// cancellation lands while warm replay is still in flight — and that
// resuming under a different warm-start fails with an option-mismatch
// error naming the drifted field.
func TestWarmStartCancelResumeDeterministic(t *testing.T) {
	seeds, prior := harvestWarmSet(t)
	ref := NewFuzzer(warmOpts(1, 48, seeds, prior)).Run()

	for _, stopAt := range []int{16, 32} {
		ctx, cancel := context.WithCancel(context.Background())
		opts := warmOpts(4, 48, seeds, prior)
		opts.OnBarrier = func(b *Barrier) {
			if b.Done == stopAt {
				cancel()
			}
		}
		rep, state := NewFuzzer(opts).RunContext(ctx)
		cancel()
		if rep != nil || state == nil {
			t.Fatalf("stopAt=%d: campaign did not stop at the barrier", stopAt)
		}
		data, err := json.Marshal(state)
		if err != nil {
			t.Fatal(err)
		}
		var restored EngineState
		if err := json.Unmarshal(data, &restored); err != nil {
			t.Fatal(err)
		}
		f, err := NewFuzzerFromState(&restored, warmOpts(8, 48, seeds, prior))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fingerprint(ref), fingerprint(f.Run())) {
			t.Errorf("stopAt=%d: resumed warm report diverges from uninterrupted run", stopAt)
		}

		// Resume under a different corpus snapshot: refused, naming the field.
		drifted := warmOpts(8, 48, seeds, prior)
		drifted.CorpusSnapshot = "cs-fedcba9876543210"
		if _, err := NewFuzzerFromState(&restored, drifted); err == nil {
			t.Errorf("stopAt=%d: accepted resume under a different corpus snapshot", stopAt)
		} else if !strings.Contains(err.Error(), "corpus_snapshot") {
			t.Errorf("stopAt=%d: snapshot-mismatch error does not name corpus_snapshot: %v", stopAt, err)
		}

		// Same for a drifted warm seed set.
		fewer := warmOpts(8, 48, seeds[:len(seeds)-1], prior)
		if _, err := NewFuzzerFromState(&restored, fewer); err == nil {
			t.Errorf("stopAt=%d: accepted resume under a different warm seed set", stopAt)
		} else if !strings.Contains(err.Error(), "warm_seeds") {
			t.Errorf("stopAt=%d: seed-mismatch error does not name warm_seeds: %v", stopAt, err)
		}
	}
}

// TestWarmConsumedValidation checks resume rejects a snapshot whose warm
// replay cursor is impossible for the supplied options.
func TestWarmConsumedValidation(t *testing.T) {
	seeds, prior := harvestWarmSet(t)
	ctx, cancel := context.WithCancel(context.Background())
	opts := warmOpts(1, 48, seeds, prior)
	opts.OnBarrier = func(b *Barrier) {
		if b.Done == 16 {
			cancel()
		}
	}
	_, state := NewFuzzer(opts).RunContext(ctx)
	cancel()
	if state == nil {
		t.Fatal("no snapshot produced")
	}
	bad := *state
	bad.Shards = append([]ShardState(nil), state.Shards...)
	bad.Shards[0].WarmConsumed = len(seeds) + 100
	if _, err := NewFuzzerFromState(&bad, warmOpts(1, 48, seeds, prior)); err == nil {
		t.Error("accepted snapshot with out-of-range warm replay cursor")
	}
}

// TestValidateWarmStart checks the family-membership validation both ways.
func TestValidateWarmStart(t *testing.T) {
	fams := scenario.Names()
	if len(fams) < 2 {
		t.Fatal("need at least two registered families")
	}
	goodSeed := gen.Seed{Scenario: fams[0]}
	if err := ValidateWarmStart([]gen.Seed{goodSeed}, []scenario.Prior{{Name: fams[1]}}, fams); err != nil {
		t.Fatalf("rejected a valid warm-start set: %v", err)
	}
	// A warm seed whose family is outside the campaign's enabled set.
	if err := ValidateWarmStart([]gen.Seed{goodSeed}, nil, fams[1:2]); err == nil {
		t.Error("accepted a warm seed from a disabled family")
	}
	// A prior row for a family the campaign does not run.
	if err := ValidateWarmStart(nil, []scenario.Prior{{Name: "warp-drive"}}, fams); err == nil {
		t.Error("accepted a frontier prior for an unregistered family")
	}
}
