package core

import (
	"testing"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

// TestDisambigWindowEncodes: memory-disambiguation windows must propagate
// and encode the secret reachable through the stale pointer.
func TestDisambigWindowEncodes(t *testing.T) {
	f := NewFuzzer(DefaultOptions(uarch.KindBOOM))
	gains, findings := 0, 0
	for i := 0; i < 10; i++ {
		seed := f.gen.SeedFor(uarch.KindBOOM, gen.TrigMemDisambig, gen.VariantDerived)
		p1, err := f.Phase1(seed)
		if err != nil || !p1.Triggered {
			continue
		}
		p2, err := f.Phase2(p1)
		if err != nil || !p2.TaintGain {
			continue
		}
		gains++
		p3, err := f.Phase3(p1, p2)
		if err == nil && p3.Finding != nil {
			findings++
		}
	}
	if gains == 0 {
		t.Fatal("no taint gain on any disambiguation window")
	}
	if findings == 0 {
		t.Fatal("no leak findings from disambiguation windows")
	}
}
