package core

import (
	"testing"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

func TestSeedRoundTrip(t *testing.T) {
	g := gen.New(42)
	s := g.SeedFor(uarch.KindXiangShan, gen.TrigJumpMispred, gen.VariantDerived)
	s.MaskHigh = true
	enc := EncodeSeed(s)
	if enc == "" {
		t.Fatal("empty encoding")
	}
	got, err := DecodeSeed(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip: %+v != %+v", got, s)
	}
	if _, err := DecodeSeed("{broken"); err == nil {
		t.Fatal("bad seed accepted")
	}
}

// TestFindingsReproduce: every finding's seed must replay to a finding of
// the same kind — the determinism bug reports rely on.
func TestFindingsReproduce(t *testing.T) {
	opts := DefaultOptions(uarch.KindBOOM)
	opts.Iterations = 25
	opts.Seed = 42
	f := NewFuzzer(opts)
	rep := f.Run()
	if len(rep.Findings) == 0 {
		t.Skip("no findings to reproduce on this seed")
	}
	checked := 0
	for _, fi := range rep.Findings {
		if checked >= 3 {
			break
		}
		checked++
		// Fresh fuzzer: reproduction must not depend on campaign state.
		rf := NewFuzzer(DefaultOptions(uarch.KindBOOM))
		rr, err := rf.Reproduce(fi.Seed)
		if err != nil {
			t.Fatalf("reproduce: %v", err)
		}
		if !rr.Triggered {
			t.Errorf("seed %s: window no longer triggers", EncodeSeed(fi.Seed))
			continue
		}
		if rr.Finding == nil {
			t.Errorf("seed %s: leak not reproduced", EncodeSeed(fi.Seed))
			continue
		}
		if rr.Finding.AttackType != fi.AttackType || rr.Finding.Window != fi.Window {
			t.Errorf("seed reproduced different finding: %v vs %v", rr.Finding, &fi)
		}
	}
}
