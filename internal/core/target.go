package core

import (
	"fmt"
	"sort"
	"sync"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/swapmem"
	"dejavuzz/internal/uarch"
)

// CovSink is where a pipeline folds observed coverage logs: the global
// matrix for sequential use, a shard-local Delta inside the campaign engine.
type CovSink interface {
	AddFromLog(log []uarch.TaintSample) int
}

// Outcome is one fuzzing iteration's result as reported by a target
// pipeline. The engine folds it into iteration statistics, coverage
// feedback and the findings list.
type Outcome struct {
	// Triggered reports whether the stimulus opened its transient window
	// (or the target-specific analogue).
	Triggered bool
	// Measured reports whether the coverage-measurement stage ran; only
	// measured iterations feed the corpus-selection feedback loop.
	Measured bool
	// TaintGain reports whether the iteration increased the observable the
	// target uses for feedback (in-window taint growth on the uarch targets).
	TaintGain bool
	// NewPoints is the iteration's coverage gain against the sink.
	NewPoints int
	// Sims counts simulations spent (budget accounting).
	Sims int
	// Finding is a reported potential vulnerability, nil if none.
	Finding *Finding
	// DeadSinksOnly is true when taints existed but every sink was dead
	// (the false-positive class liveness filtering removes).
	DeadSinksOnly bool
}

// Pipeline is a per-campaign factory for per-shard execution pipelines.
// The campaign engine calls NewShard once per deterministic shard at
// construction time; each ShardPipeline is then driven by at most one
// worker at a time, so implementations can carry long-lived mutable state
// (execution contexts, scratch buffers) without locks.
type Pipeline interface {
	NewShard() ShardPipeline
}

// ShardPipeline turns generated seeds into iteration outcomes for one shard
// of a campaign. RunIteration is never called concurrently on the same
// ShardPipeline, but sibling shards run in parallel; implementations must
// be deterministic in (seed, sink state) and must not share mutable state
// with sibling shards.
type ShardPipeline interface {
	RunIteration(iter int, seed gen.Seed, sink CovSink) Outcome
}

// Target is a pluggable design under test. A target supplies the stimulus
// personality the generator builds programs for and the per-campaign
// pipeline factory that executes them — the seam that lets one campaign
// engine drive the cycle-accurate uarch models, the architectural isasim
// differential pair, or any future backend.
type Target interface {
	// Name is the registry key (e.g. "boom", "xiangshan", "isasim").
	Name() string
	// Description is a one-line human-readable summary.
	Description() string
	// Kind is the core personality seeds and stimuli are generated for.
	Kind() uarch.CoreKind
	// NewPipeline builds the per-shard pipeline factory for a campaign. The
	// fuzzer carries the resolved options, core config and stimulus
	// generator.
	NewPipeline(f *Fuzzer) Pipeline
}

var (
	targetMu  sync.RWMutex
	targetReg = map[string]Target{}
)

// RegisterTarget adds a target to the package registry. It panics on an
// empty name or a duplicate registration (targets are wired at init time;
// a collision is a programming error).
func RegisterTarget(t Target) {
	name := t.Name()
	if name == "" {
		panic("core: RegisterTarget with empty name")
	}
	targetMu.Lock()
	defer targetMu.Unlock()
	if _, dup := targetReg[name]; dup {
		panic(fmt.Sprintf("core: target %q registered twice", name))
	}
	targetReg[name] = t
}

// LookupTarget resolves a registered target by name.
func LookupTarget(name string) (Target, error) {
	targetMu.RLock()
	t, ok := targetReg[name]
	targetMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown target %q (registered: %v)", name, Targets())
	}
	return t, nil
}

// Targets returns the sorted names of all registered targets.
func Targets() []string {
	targetMu.RLock()
	defer targetMu.RUnlock()
	out := make([]string, 0, len(targetReg))
	for name := range targetReg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BuiltinTargetName maps a core kind onto its built-in uarch target name —
// the legacy Options.Core selection path.
func BuiltinTargetName(k uarch.CoreKind) string {
	if k == uarch.KindXiangShan {
		return "xiangshan"
	}
	return "boom"
}

// uarchTarget is a built-in cycle-accurate core model target.
type uarchTarget struct {
	name string
	desc string
	kind uarch.CoreKind
}

func (t uarchTarget) Name() string                   { return t.name }
func (t uarchTarget) Description() string            { return t.desc }
func (t uarchTarget) Kind() uarch.CoreKind           { return t.kind }
func (t uarchTarget) NewPipeline(f *Fuzzer) Pipeline { return uarchPipeline{f: f} }

func init() {
	RegisterTarget(uarchTarget{
		name: "boom",
		desc: "cycle-accurate SmallBOOM-like out-of-order core (bugs B2-B4)",
		kind: uarch.KindBOOM,
	})
	RegisterTarget(uarchTarget{
		name: "xiangshan",
		desc: "cycle-accurate XiangShan-MinimalConfig-like core (bugs B1/B4/B5)",
		kind: uarch.KindXiangShan,
	})
}

// uarchPipeline is the per-campaign factory for the paper's three-phase
// pipeline (transient window triggering, transient execution exploration,
// transient leakage analysis) over the cycle-accurate core models.
type uarchPipeline struct {
	f *Fuzzer
}

func (p uarchPipeline) NewShard() ShardPipeline { return newUarchShard(p.f) }

// uarchShard is one shard's three-phase pipeline instance. It owns the
// shard's execution context (resettable DUT state), a builder generator
// (assembly-materialisation scratch), reusable stimulus buffers for the
// three construction stages and a reusable swap schedule — the complete
// per-iteration working set, allocated once per campaign shard.
type uarchShard struct {
	f   *Fuzzer
	gen *gen.Generator // stimulus builder; per-shard for its scratch buffers
	ctx *ExecContext

	sched swapmem.Schedule // reusable swap-schedule buffer
	st1   gen.Stimulus     // Phase-1 stimulus buffer
	st2   gen.Stimulus     // Phase-2 completed-window buffer
	st3   gen.Stimulus     // Phase-3 sanitised buffer
	keep  []bool           // reusable training-reduction mask
}

// newUarchShard builds a shard pipeline for the fuzzer's options. Builds are
// pure functions of the seed, so the builder generator's RNG seed is
// irrelevant — it exists for its scratch buffers.
func newUarchShard(f *Fuzzer) *uarchShard {
	s := &uarchShard{f: f, gen: gen.New(0)}
	if f.opts.FreshContexts {
		s.ctx = NewFreshContext()
	} else {
		s.ctx = NewExecContext()
	}
	return s
}

// RunIteration executes one complete fuzzing iteration (all three phases)
// on the shard's borrowed context.
func (s *uarchShard) RunIteration(iter int, seed gen.Seed, sink CovSink) Outcome {
	out := Outcome{}
	p1, err := s.Phase1(seed)
	if err != nil {
		return out
	}
	out.Sims += p1.Sims
	if !p1.Triggered {
		return out
	}
	out.Triggered = true

	p2, err := s.phase2Into(p1, sink)
	if err != nil {
		return out
	}
	out.Sims += p2.Sims
	out.Measured = true
	out.TaintGain = p2.TaintGain
	out.NewPoints = p2.NewPoints
	if !p2.TaintGain {
		return out
	}

	p3, err := s.Phase3(p1, p2)
	if err != nil {
		return out
	}
	out.Sims += p3.Sims
	if p3.Finding != nil {
		finding := *p3.Finding
		out.Finding = &finding
	} else if p3.DeadSinksOnly {
		out.DeadSinksOnly = true
	}
	return out
}
