package core

import (
	"sync"
	"time"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

// Options configures a fuzzing campaign.
type Options struct {
	Core       uarch.CoreKind
	Seed       int64
	Iterations int
	Workers    int
	MaxCycles  int

	// Variant selects derived (DejaVuzz) or random (DejaVuzz*) training.
	Variant gen.Variant
	// UseCoverageFeedback drives mutation from the taint coverage matrix;
	// disabling it yields the DejaVuzz− ablation of Figure 7.
	UseCoverageFeedback bool
	// UseLiveness enables tainted-sink liveness filtering (§4.3.2); the
	// ablation without it reproduces the misclassification counts of §6.3.
	UseLiveness bool
	// UseReduction enables training reduction (Step 1.2).
	UseReduction bool
	// Bugless disables the injected bugs in the core configuration
	// (regression baseline).
	Bugless bool
	// SecretRetries is how many secret pairs Phase 2 tries before declaring
	// no taint gain — the paper's §7 mitigation for diffIFT false negatives
	// (a secret pair can coincide on a control signal). swapMem's dedicated
	// region makes retrying cheap: only the secret is reloaded.
	SecretRetries int
}

// DefaultOptions returns the standard DejaVuzz configuration.
func DefaultOptions(core uarch.CoreKind) Options {
	return Options{
		Core:                core,
		Seed:                1,
		Iterations:          100,
		Workers:             1,
		MaxCycles:           20000,
		Variant:             gen.VariantDerived,
		UseCoverageFeedback: true,
		UseLiveness:         true,
		UseReduction:        true,
		SecretRetries:       2,
	}
}

// IterStat records one fuzzing iteration's outcome (Figure 7's x-axis unit).
type IterStat struct {
	Iteration int
	Trigger   gen.TriggerType
	Triggered bool
	TaintGain bool
	NewPoints int
	Coverage  int // cumulative coverage after this iteration
	Sims      int
	Finding   bool
}

// Report is a fuzzing campaign's result.
type Report struct {
	Options   Options
	Findings  []Finding
	Iters     []IterStat
	Coverage  int
	Sims      int
	Duration  time.Duration
	FirstBug  time.Duration // time to first finding (0 if none)
	DeadSinks int           // findings suppressed by liveness analysis
}

// CoverageHistory returns cumulative coverage per iteration (Figure 7 series).
func (r *Report) CoverageHistory() []int {
	out := make([]int, len(r.Iters))
	for i, s := range r.Iters {
		out[i] = s.Coverage
	}
	return out
}

// Fuzzer is the DejaVuzz fuzzing manager.
type Fuzzer struct {
	opts     Options
	cfg      uarch.Config
	gen      *gen.Generator
	coverage *Coverage

	mu        sync.Mutex
	corpus    []gen.Seed
	avgGain   float64
	gainCount int
	pending   []Finding
	deadSinks int
	pickCount int
}

// NewFuzzer builds a fuzzer for the options.
func NewFuzzer(opts Options) *Fuzzer {
	cfg := uarch.ConfigFor(opts.Core)
	if opts.Bugless {
		cfg.Bugs = uarch.BugSet{}
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	return &Fuzzer{
		opts:     opts,
		cfg:      cfg,
		gen:      gen.New(opts.Seed),
		coverage: NewCoverage(),
	}
}

// Coverage exposes the live coverage matrix.
func (f *Fuzzer) Coverage() *Coverage { return f.coverage }

func (f *Fuzzer) runOpts(mode uarch.IFTMode, taintTrace bool) RunOpts {
	return RunOpts{Cfg: f.cfg, Mode: mode, TaintTrace: taintTrace, MaxCycles: f.opts.MaxCycles}
}

// nextSeed picks the next seed: mutate a corpus member (coverage feedback)
// or draw a fresh one.
func (f *Fuzzer) nextSeed() gen.Seed {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.opts.UseCoverageFeedback && len(f.corpus) > 0 && f.pickCount%2 == 0 {
		f.pickCount++
		base := f.corpus[f.pickCount/2%len(f.corpus)]
		return f.gen.Mutate(base)
	}
	f.pickCount++
	s := f.gen.RandomSeed(f.opts.Core)
	s.Variant = f.opts.Variant
	return s
}

func (f *Fuzzer) feedback(seed gen.Seed, newPoints int, taintGain bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gainCount++
	f.avgGain += (float64(newPoints) - f.avgGain) / float64(f.gainCount)
	if !f.opts.UseCoverageFeedback {
		return
	}
	// Keep seeds whose coverage gain beats the running average (the paper's
	// "less than the average increase -> mutate / discard" rule).
	if taintGain && float64(newPoints) >= f.avgGain {
		f.corpus = append(f.corpus, seed)
		if len(f.corpus) > 256 {
			f.corpus = f.corpus[len(f.corpus)-256:]
		}
	}
}

// RunIteration executes one complete fuzzing iteration (all three phases).
func (f *Fuzzer) RunIteration(iter int) IterStat {
	stat := IterStat{Iteration: iter}
	seed := f.nextSeed()
	stat.Trigger = seed.Trigger

	p1, err := f.Phase1(seed)
	if err != nil {
		return stat
	}
	stat.Sims += p1.Sims
	if !p1.Triggered {
		return stat
	}
	stat.Triggered = true

	p2, err := f.Phase2(p1)
	if err != nil {
		return stat
	}
	stat.Sims += p2.Sims
	stat.TaintGain = p2.TaintGain
	stat.NewPoints = p2.NewPoints
	f.feedback(seed, p2.NewPoints, p2.TaintGain)
	if !p2.TaintGain {
		return stat
	}

	p3, err := f.Phase3(p1, p2)
	if err != nil {
		return stat
	}
	stat.Sims += p3.Sims
	if p3.Finding != nil {
		p3.Finding.Iteration = iter
		stat.Finding = true
		f.mu.Lock()
		f.pending = append(f.pending, *p3.Finding)
		f.mu.Unlock()
	} else if p3.DeadSinksOnly {
		f.mu.Lock()
		f.deadSinks++
		f.mu.Unlock()
	}
	return stat
}

// Run executes the campaign and returns its report.
func (f *Fuzzer) Run() *Report {
	start := time.Now()
	rep := &Report{Options: f.opts}
	iters := make([]IterStat, f.opts.Iterations)

	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < f.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				iters[i] = f.RunIteration(i)
			}
		}()
	}
	for i := 0; i < f.opts.Iterations; i++ {
		work <- i
	}
	close(work)
	wg.Wait()

	cum := 0
	firstBug := time.Duration(0)
	for i := range iters {
		cum += iters[i].NewPoints
		iters[i].Coverage = cum
		rep.Sims += iters[i].Sims
		if iters[i].Finding && firstBug == 0 {
			// Approximate time-to-first-bug by proportion of wall time.
			firstBug = time.Duration(float64(time.Since(start)) * float64(i+1) / float64(f.opts.Iterations))
		}
	}
	f.mu.Lock()
	rep.Findings = append(rep.Findings, f.pending...)
	rep.DeadSinks = f.deadSinks
	f.mu.Unlock()
	rep.Iters = iters
	rep.Coverage = f.coverage.Count()
	rep.Duration = time.Since(start)
	rep.FirstBug = firstBug
	return rep
}
