package core

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/scenario"
	"dejavuzz/internal/uarch"
)

// corpusCap bounds the merged campaign corpus (the paper keeps a small
// above-average-gain seed pool).
const corpusCap = 256

// Options configures a fuzzing campaign.
type Options struct {
	// Target selects the registered design under test by name. Empty means
	// the built-in uarch target for Core ("boom" or "xiangshan") — the
	// legacy selection path; Normalized canonicalises it.
	Target string
	Core   uarch.CoreKind
	Seed   int64
	// Iterations is the campaign length. Zero is a valid (empty) campaign;
	// callers wanting the engine default should use DefaultOptions.
	Iterations int
	// Workers is the number of OS-level workers executing shards. It affects
	// wall-clock time only: a campaign's results are identical for any
	// Workers value given the same Seed, Iterations, Shards and MergeEvery.
	Workers int
	// Shards is the number of deterministic logical shards. Each shard owns a
	// private generator stream derived from (Seed, shard id, epoch), a
	// private corpus view and a private coverage delta; iteration i belongs
	// to shard i mod Shards. Changing Shards changes results (it reshapes the
	// streams) — changing Workers never does.
	Shards int
	// MergeEvery is the iteration-count barrier interval at which shard
	// coverage deltas and corpus additions merge into the global state, in
	// fixed shard order. Barriers are also the campaign's only cancellation
	// and checkpoint points: streams are reproducible because every event
	// the engine emits happens at a barrier.
	MergeEvery int
	MaxCycles  int

	// Scenarios restricts the campaign to the named scenario families
	// (include filter); nil or empty means every registered family. Like
	// Shards, the set is determinism-relevant: it reshapes the stimulus
	// streams, is serialised into checkpoints, and a resume with a
	// different set fails with an option-mismatch error.
	Scenarios []string
	// Scheduler selects the scenario-scheduling policy: "ucb" (the default —
	// a deterministic UCB1 bandit that tries every enabled family before
	// exploiting any and never starves one) or "ema" (the legacy
	// EMA-with-floor, kept for A/B comparison; it can starve families).
	// Like Scenarios it is determinism-relevant: it reshapes the stimulus
	// streams, is serialised into checkpoints, and a resume under a
	// different policy fails with an option-mismatch error.
	Scheduler string
	// Variant selects derived (DejaVuzz) or random (DejaVuzz*) training.
	Variant gen.Variant
	// UseCoverageFeedback drives mutation from the taint coverage matrix;
	// disabling it yields the DejaVuzz− ablation of Figure 7.
	UseCoverageFeedback bool
	// UseLiveness enables tainted-sink liveness filtering (§4.3.2); the
	// ablation without it reproduces the misclassification counts of §6.3.
	UseLiveness bool
	// UseReduction enables training reduction (Step 1.2).
	UseReduction bool
	// Bugless disables the injected bugs in the core configuration
	// (regression baseline).
	Bugless bool
	// SecretRetries is how many secret pairs Phase 2 tries before declaring
	// no taint gain — the paper's §7 mitigation for diffIFT false negatives
	// (a secret pair can coincide on a control signal). swapMem's dedicated
	// region makes retrying cheap: only the secret is reloaded.
	SecretRetries int

	// CorpusSnapshot identifies the cross-campaign corpus snapshot the
	// campaign was warm-started from (empty for a cold start). The engine
	// never dereferences it — WarmSeeds and FrontierPrior carry the resolved
	// content — but it is determinism-relevant bookkeeping: the warm-start
	// set is a pure function of (snapshot ID, campaign seed), so the ID is
	// serialised into checkpoints and a resume under a different snapshot
	// fails with an option-mismatch error naming corpus_snapshot.
	CorpusSnapshot string
	// WarmSeeds is the warm-start seed set harvested from earlier campaigns
	// on the same target: each seed becomes part of the initial merged
	// corpus (so coverage-feedback mutation works from it immediately) and
	// is replayed verbatim once by its owning shard before that shard draws
	// fresh stimuli. The set is determinism-relevant — it reshapes the
	// stimulus streams — and is serialised into checkpoints with the rest
	// of the options.
	WarmSeeds []gen.Seed
	// FrontierPrior seeds the scenario scheduler's posterior with
	// per-family frontier statistics from the corpus store, so a
	// warm-started campaign begins exploiting what earlier campaigns
	// learned about family yield. Like WarmSeeds it is determinism-relevant
	// and checkpointed.
	FrontierPrior []scenario.Prior

	// FreshContexts disables per-shard execution-context reuse: every
	// simulation rebuilds its DUT state (address space, core model, swap
	// runtime) from scratch instead of resetting the shard's long-lived
	// context in place. Reset is provably equivalent to fresh construction,
	// so this never changes results — only wall-clock time and allocation
	// volume. It exists as the reference mode the reset-equivalence tests
	// compare against, and as an escape hatch. Like Workers, it is stripped
	// by EquivalentTo and not serialised into checkpoints.
	FreshContexts bool `json:"-"`

	// OnEpoch, when set, is called after every merge barrier with the number
	// of completed iterations, the campaign total and the merged coverage
	// count. It runs on the engine goroutine at deterministic points, so it
	// is safe for streaming progress and checkpoint hooks.
	OnEpoch func(done, total, coverage int) `json:"-"`
	// OnBarrier, when set, is called after every merge barrier (after
	// OnEpoch) with the barrier's full event payload, including the epoch's
	// findings in iteration order and a Snapshot hook for checkpointing.
	OnBarrier func(b *Barrier) `json:"-"`
}

// Normalized returns the options with engine defaults applied — the exact
// options a Report produced by NewFuzzer(o).Run() will carry.
func (o Options) Normalized() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.MergeEvery <= 0 {
		o.MergeEvery = 64
	}
	if o.Iterations < 0 {
		o.Iterations = 0
	}
	if o.Target == "" {
		o.Target = BuiltinTargetName(o.Core)
	}
	o.Scenarios = normalizeScenarios(o.Scenarios)
	if o.Scheduler == "" {
		o.Scheduler = string(scenario.DefaultPolicy)
	}
	// Empty warm-start slices collapse to nil so a cold campaign and a
	// "warm" campaign that resolved zero seeds compare EquivalentTo.
	if len(o.WarmSeeds) == 0 {
		o.WarmSeeds = nil
	}
	if len(o.FrontierPrior) == 0 {
		o.FrontierPrior = nil
	}
	return o
}

// normalizeScenarios sorts and deduplicates a scenario filter; empty
// collapses to nil (every registered family).
func normalizeScenarios(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	out := append([]string(nil), in...)
	sort.Strings(out)
	n := 0
	for i, s := range out {
		if i == 0 || s != out[i-1] {
			out[n] = s
			n++
		}
	}
	return out[:n]
}

// ValidateScenarios checks a scenario filter against the registry.
func ValidateScenarios(names []string) error {
	for _, n := range names {
		if _, err := scenario.Lookup(n); err != nil {
			return err
		}
	}
	return nil
}

// ValidateSchedulerPolicy checks a scheduler policy name against the known
// policies; empty is valid and selects the default.
func ValidateSchedulerPolicy(name string) error {
	_, err := scenario.ParsePolicy(name)
	return err
}

// ValidateWarmStart checks a warm-start seed set and frontier prior
// against a campaign's enabled scenario families: every warm seed's family
// and every prior row must belong to the enabled set, or the campaign's
// statistics and scheduling would silently track families it cannot
// sample. The warm-start resolver filters by family before building
// options, so a violation here means caller drift, not user error.
func ValidateWarmStart(seeds []gen.Seed, prior []scenario.Prior, families []string) error {
	enabled := make(map[string]bool, len(families))
	for _, f := range families {
		enabled[f] = true
	}
	for i, sd := range seeds {
		if fam := gen.ScenarioName(sd); !enabled[fam] {
			return fmt.Errorf("warm seed %d has scenario family %q outside the campaign's enabled set", i, fam)
		}
	}
	for _, p := range prior {
		if !enabled[p.Name] {
			return fmt.Errorf("frontier prior names family %q outside the campaign's enabled set", p.Name)
		}
	}
	return nil
}

// EquivalentTo reports whether two option sets are determinism-equivalent:
// equal in everything except Workers, FreshContexts and the hooks, which
// only shape wall-clock behaviour, never results.
func (o Options) EquivalentTo(other Options) bool {
	a, b := o.Normalized(), other.Normalized()
	a.Workers, b.Workers = 0, 0
	a.FreshContexts, b.FreshContexts = false, false
	a.OnEpoch, b.OnEpoch = nil, nil
	a.OnBarrier, b.OnBarrier = nil, nil
	// Options contains func fields (nil after the stripping above), so the
	// comparison goes through reflect.DeepEqual rather than ==.
	return reflect.DeepEqual(a, b)
}

// optionsDeterminismIrrelevant names the Options fields DiffFrom
// deliberately does not enumerate, with the reason each one cannot change
// campaign results. dvz-vet's optsync analyzer checks that every Options
// field is either read by DiffFrom or listed here — adding a field
// without classifying it fails the lint — and that this set never drifts
// to include a field DiffFrom also enumerates. Keep it in lockstep with
// the fields EquivalentTo strips.
var optionsDeterminismIrrelevant = map[string]string{
	"Workers":       "OS-level parallelism only; shards are the determinism unit and results are identical for any Workers value",
	"FreshContexts": "reference mode for the reset-equivalence suite; reset is proven equivalent to fresh construction, so results never change",
	"OnEpoch":       "observation hook invoked at deterministic barrier points; it receives results, it cannot shape them",
	"OnBarrier":     "observation hook invoked at deterministic barrier points; it receives results, it cannot shape them",
}

// DiffFrom describes, field by field, how two option sets differ in their
// determinism-relevant fields — the human-readable half of the
// option-mismatch invalidation path, so a refused checkpoint resume names
// exactly what changed (e.g. a different -scenarios set) instead of
// reporting a bare mismatch.
func (o Options) DiffFrom(other Options) []string {
	a, b := o.Normalized(), other.Normalized()
	var diffs []string
	add := func(field string, have, want any) {
		if !reflect.DeepEqual(have, want) {
			diffs = append(diffs, fmt.Sprintf("%s: %v vs %v", field, have, want))
		}
	}
	add("target", a.Target, b.Target)
	add("core", a.Core, b.Core)
	add("seed", a.Seed, b.Seed)
	add("iterations", a.Iterations, b.Iterations)
	add("shards", a.Shards, b.Shards)
	add("merge_every", a.MergeEvery, b.MergeEvery)
	add("max_cycles", a.MaxCycles, b.MaxCycles)
	add("scenarios", scenarioSetString(a.Scenarios), scenarioSetString(b.Scenarios))
	add("scheduler", a.Scheduler, b.Scheduler)
	add("variant", a.Variant, b.Variant)
	add("coverage_feedback", a.UseCoverageFeedback, b.UseCoverageFeedback)
	add("liveness", a.UseLiveness, b.UseLiveness)
	add("reduction", a.UseReduction, b.UseReduction)
	add("bugless", a.Bugless, b.Bugless)
	add("secret_retries", a.SecretRetries, b.SecretRetries)
	add("corpus_snapshot", snapshotIDString(a.CorpusSnapshot), snapshotIDString(b.CorpusSnapshot))
	add("warm_seeds", warmSeedsDigest(a.WarmSeeds), warmSeedsDigest(b.WarmSeeds))
	add("frontier_prior", frontierPriorDigest(a.FrontierPrior), frontierPriorDigest(b.FrontierPrior))
	// Structurally unreachable: dvz-vet's optsync analyzer forces every
	// Options field into either the enumeration above or
	// optionsDeterminismIrrelevant (exactly the fields EquivalentTo
	// strips), so EquivalentTo and this enumeration cannot disagree. Kept
	// as a defence against running a stale binary over a newer checkpoint.
	if len(diffs) == 0 && !o.EquivalentTo(other) {
		diffs = append(diffs, "options differ in a field DiffFrom does not enumerate")
	}
	return diffs
}

func scenarioSetString(s []string) string {
	if len(s) == 0 {
		return "all"
	}
	return strings.Join(s, ",")
}

func snapshotIDString(id string) string {
	if id == "" {
		return "cold"
	}
	return id
}

// warmSeedsDigest compresses a warm-start seed set into a short,
// deterministic description so DiffFrom's option-mismatch message stays
// readable (the set itself can be dozens of structured seeds). The digest
// is a pure function of the seeds' JSON form, so any content difference
// surfaces.
func warmSeedsDigest(seeds []gen.Seed) string {
	if len(seeds) == 0 {
		return "none"
	}
	enc, err := json.Marshal(seeds)
	if err != nil {
		return fmt.Sprintf("%d seeds (unencodable: %v)", len(seeds), err)
	}
	h := fnv.New64a()
	h.Write(enc)
	return fmt.Sprintf("%d seeds (digest %016x)", len(seeds), h.Sum64())
}

// frontierPriorDigest is warmSeedsDigest's analogue for the scheduler
// prior.
func frontierPriorDigest(prior []scenario.Prior) string {
	if len(prior) == 0 {
		return "none"
	}
	enc, err := json.Marshal(prior)
	if err != nil {
		return fmt.Sprintf("%d families (unencodable: %v)", len(prior), err)
	}
	h := fnv.New64a()
	h.Write(enc)
	return fmt.Sprintf("%d families (digest %016x)", len(prior), h.Sum64())
}

// DefaultOptions returns the standard DejaVuzz configuration.
func DefaultOptions(core uarch.CoreKind) Options {
	return Options{
		Target:              BuiltinTargetName(core),
		Core:                core,
		Seed:                1,
		Iterations:          100,
		Workers:             1,
		Shards:              8,
		MergeEvery:          64,
		MaxCycles:           20000,
		Scheduler:           string(scenario.DefaultPolicy),
		Variant:             gen.VariantDerived,
		UseCoverageFeedback: true,
		UseLiveness:         true,
		UseReduction:        true,
		SecretRetries:       2,
	}
}

// DefaultOptionsFor returns the standard configuration for a registered
// target.
func DefaultOptionsFor(t Target) Options {
	opts := DefaultOptions(t.Kind())
	opts.Target = t.Name()
	return opts
}

// IterStat records one fuzzing iteration's outcome (Figure 7's x-axis unit).
type IterStat struct {
	Iteration int
	// Scenario is the iteration's scenario family (the scheduler's pick, or
	// the mutated corpus seed's family).
	Scenario  string
	Trigger   gen.TriggerType
	Triggered bool
	TaintGain bool
	// NewPoints is the iteration's coverage gain relative to its shard's
	// view (epoch-start global state plus the shard's own delta); sibling
	// shards discovering the same point in one epoch each count it.
	NewPoints int
	// Coverage is the cumulative campaign coverage after this iteration.
	// Within an epoch it interpolates from shard-local gains (an upper
	// bound); at every merge barrier it is exact — equal to the merged
	// global matrix count — so the final entry always equals
	// Report.Coverage.
	Coverage int
	Sims     int
	Finding  bool
}

// ScenarioStat is one scenario family's cumulative campaign statistics:
// how often the scheduler picked it, what it yielded, and its current
// adaptive sampling weight. The engine reports them on every merge barrier
// (per-family observables for session streams) and in the final report.
type ScenarioStat struct {
	Name string `json:"name"`
	// Picks is how many iterations ran this family.
	Picks int `json:"picks"`
	// Points is the family's accumulated shard-local coverage gain.
	Points int `json:"points"`
	// Findings counts the family's reported findings.
	Findings int `json:"findings"`
	// Weight is the scheduler's sampling weight after the latest barrier:
	// MeanYield+ExplorationBonus under the UCB policy, the EMA value under
	// the legacy policy.
	Weight float64 `json:"weight"`
	// MeanYield is the family's posterior mean yield per pick — cumulative
	// points plus bonused findings over cumulative picks (0 while untried).
	MeanYield float64 `json:"mean_yield"`
	// ExplorationBonus is the bandit's optimism term: it grows for families
	// the campaign has not looked at recently, which is what guarantees no
	// family starves. Zero under the legacy EMA policy.
	ExplorationBonus float64 `json:"exploration_bonus"`
	// FirstFindingIter is the iteration of the family's first finding
	// (-1 when it has none yet) — the time-to-first-finding probe.
	FirstFindingIter int `json:"first_finding_iter"`
}

// Report is a fuzzing campaign's result.
type Report struct {
	Options   Options
	Findings  []Finding
	Iters     []IterStat
	Scenarios []ScenarioStat // per-family stats, sorted by name
	Coverage  int
	Sims      int
	Duration  time.Duration
	FirstBug  time.Duration // time to first finding (0 if none)
	DeadSinks int           // findings suppressed by liveness analysis
}

// CoverageHistory returns cumulative coverage per iteration (Figure 7 series).
func (r *Report) CoverageHistory() []int {
	out := make([]int, len(r.Iters))
	for i, s := range r.Iters {
		out[i] = s.Coverage
	}
	return out
}

// EpochMark is one merge barrier's (end iteration, merged coverage) pair,
// used for coverage-history reconciliation and checkpoint resume.
type EpochMark struct {
	End   int `json:"end"`
	Count int `json:"count"`
}

// ShardState is the persistent (cross-epoch) feedback state of one shard.
type ShardState struct {
	AvgGain   float64 `json:"avg_gain"`
	GainCount int     `json:"gain_count"`
	PickCount int     `json:"pick_count"`
	// WarmConsumed counts how many of the shard's warm-start replay seeds
	// have been consumed (0 on cold campaigns). Warm replay can straddle a
	// merge barrier when seeds outnumber the shard's picks per epoch, so
	// the cursor is part of the resumable state.
	WarmConsumed int `json:"warm_consumed,omitempty"`
}

// EngineStateVersion guards the checkpoint format against drift between
// PRs. Version 3 replaced the EMA scheduler's bare weight vector with the
// bandit posterior (per-family cumulative picks/points/findings plus
// weight); version-2 checkpoints migrate on load (see Migrate). Version-1
// checkpoints predate the scheduler and cannot resume byte-identically, so
// they are refused.
const EngineStateVersion = 3

// EngineState is a resumable mid-campaign snapshot, taken at a merge
// barrier. Because shard generators are re-seeded from (campaign seed,
// shard, epoch) at every epoch and all cross-shard state merges at barriers,
// this struct is the campaign's complete determinism-relevant state: a
// fuzzer rebuilt from it finishes with results byte-identical (modulo
// wall-clock fields) to an uninterrupted run. It round-trips through JSON.
type EngineState struct {
	Version int `json:"version"`
	// Options are the campaign's normalized options (hooks are not
	// serialised; the resuming caller re-attaches its own).
	Options Options `json:"options"`
	// NextIter is the first iteration of the next epoch to run.
	NextIter int `json:"next_iter"`
	// Epoch is the next epoch ordinal (shard generator seeding input).
	Epoch     int          `json:"epoch"`
	Corpus    []gen.Seed   `json:"corpus"`
	Coverage  []CovPoint   `json:"coverage"`
	Shards    []ShardState `json:"shards"`
	Findings  []Finding    `json:"findings"`
	Iters     []IterStat   `json:"iters"`
	Marks     []EpochMark  `json:"marks"`
	DeadSinks int          `json:"dead_sinks"`
	// SchedState is the scenario scheduler's serialised state at the
	// barrier: each family's cumulative bandit posterior (picks, points,
	// findings) and sampling weight. It is determinism-relevant: the next
	// epoch's family picks depend on it, so resume must restore it exactly.
	SchedState []scenario.FamilyState `json:"sched_state,omitempty"`
	// SchedWeights is the version-2 weight vector, decoded only so Migrate
	// can seed the posterior from a legacy checkpoint; version-3 snapshots
	// never write it.
	SchedWeights []scenario.Weight `json:"sched_weights,omitempty"`
	// Scenarios are the cumulative per-family statistics.
	Scenarios []ScenarioStat `json:"scenario_stats"`
}

// Migrate upgrades a decoded engine state to the current version in place.
// A version-2 checkpoint (the EMA-scheduler era) carried only a per-family
// weight vector; the bandit posterior is seeded from the checkpointed
// ScenarioStat picks/points/findings, joined with the legacy weights, so
// the resumed scheduler starts from everything the checkpoint knew. Legacy
// checkpoints name no scheduler policy, so they resume under the campaign's
// policy — the UCB default unless the caller says otherwise — which applies
// the starvation fix to in-flight campaigns. Version 1 predates scenario
// scheduling entirely and is refused, as before.
func (st *EngineState) Migrate() error {
	switch st.Version {
	case EngineStateVersion:
		return nil
	case 2:
		stats := make(map[string]ScenarioStat, len(st.Scenarios))
		for _, cs := range st.Scenarios {
			stats[cs.Name] = cs
		}
		st.SchedState = make([]scenario.FamilyState, 0, len(st.SchedWeights))
		for _, w := range st.SchedWeights {
			cs := stats[w.Name]
			st.SchedState = append(st.SchedState, scenario.FamilyState{
				Name:     w.Name,
				Picks:    cs.Picks,
				Points:   cs.Points,
				Findings: cs.Findings,
				Weight:   w.Weight,
			})
		}
		st.SchedWeights = nil
		st.Version = EngineStateVersion
		return nil
	}
	return fmt.Errorf("core: engine state version %d, want %d", st.Version, EngineStateVersion)
}

// HarvestedSeed is one corpus-worthy stimulus surfaced at a merge
// barrier: a seed the epoch found interesting — it beat its shard's
// average coverage gain (the corpus-keep rule) or produced a finding —
// together with the evidence. Barriers expose the epoch's harvest so a
// corpus service can persist interesting seeds across campaigns without
// the engine knowing the store exists.
type HarvestedSeed struct {
	// Iteration is the campaign iteration that produced the observation;
	// (campaign, iteration) is the store's idempotency key, so replaying a
	// barrier after an unclean restart cannot double-count.
	Iteration int      `json:"iteration"`
	Seed      gen.Seed `json:"seed"`
	// NewPoints is the iteration's shard-local coverage gain.
	NewPoints int `json:"new_points"`
	// Finding marks observations that produced a finding.
	Finding bool `json:"finding"`
}

// Barrier is the payload of one merge-barrier event.
type Barrier struct {
	// Epoch is the barrier's ordinal since campaign start (resume keeps
	// counting from the checkpoint, so ordinals are campaign-absolute).
	Epoch int
	// Done/Total are completed and total campaign iterations.
	Done, Total int
	// Coverage is the merged global coverage count.
	Coverage int
	// Findings are the findings merged at this barrier, iteration-ordered.
	Findings []Finding
	// Scenarios are the cumulative per-family statistics after this
	// barrier's scheduler update, sorted by name.
	Scenarios []ScenarioStat
	// Harvest is the epoch's corpus-worthy seeds in iteration order:
	// coverage-feedback keepers and finding producers (see HarvestedSeed).
	// It is event payload only — not part of the resumable state — so a
	// corpus consumer must tolerate replays, which the (campaign,
	// iteration) idempotency key provides.
	Harvest []HarvestedSeed

	snapshot func() *EngineState
}

// Snapshot captures the engine's resumable state at this barrier. It is
// only valid during the OnBarrier callback (the engine goroutine is parked
// at the barrier, so the snapshot is consistent).
func (b *Barrier) Snapshot() *EngineState { return b.snapshot() }

// Fuzzer is the DejaVuzz fuzzing manager.
type Fuzzer struct {
	opts     Options
	cfg      uarch.Config
	gen      *gen.Generator
	coverage *Coverage
	corpus   []gen.Seed // merged global corpus, mutated only at barriers
	pipeline Pipeline
	// families is the campaign's enabled scenario set (sorted); sched is the
	// coverage-adaptive sampler over it, read-only during epochs and updated
	// at barriers; scnStats accumulates per-family campaign statistics.
	families []string
	sched    *scenario.Scheduler
	scnStats map[string]*ScenarioStat
	// seq is the lazily built sequential pipeline the exported Phase1/2/3
	// and Reproduce entry points borrow (single-goroutine use only).
	seq *uarchShard

	// resume state (zero on a fresh campaign)
	startIter  int
	startEpoch int
	shards     []*shard
	iters      []IterStat
	marks      []EpochMark
	findings   []Finding
	deadSinks  int
	started    bool
}

// NewFuzzer builds a fuzzer for the options. The options' Target (or, when
// empty, Core) must name a registered target; an unknown name panics —
// validate with LookupTarget first when the name is user-supplied.
func NewFuzzer(opts Options) *Fuzzer {
	opts = opts.Normalized()
	t, err := LookupTarget(opts.Target)
	if err != nil {
		panic(fmt.Sprintf("core: NewFuzzer: %v", err))
	}
	if err := ValidateScenarios(opts.Scenarios); err != nil {
		panic(fmt.Sprintf("core: NewFuzzer: %v", err))
	}
	opts.Core = t.Kind()
	cfg := uarch.ConfigFor(opts.Core)
	if opts.Bugless {
		cfg.Bugs = uarch.BugSet{}
	}
	families := opts.Scenarios
	if len(families) == 0 {
		families = scenario.Names()
	}
	policy, err := scenario.ParsePolicy(opts.Scheduler)
	if err != nil {
		panic(fmt.Sprintf("core: NewFuzzer: %v", err))
	}
	if err := ValidateWarmStart(opts.WarmSeeds, opts.FrontierPrior, families); err != nil {
		panic(fmt.Sprintf("core: NewFuzzer: %v", err))
	}
	// A frontier prior seeds a fresh scheduler's posterior; checkpoint
	// resume overwrites the scheduler wholesale (the checkpointed posterior
	// already contains the prior), so this only shapes campaign starts.
	sched, err := scenario.NewSchedulerWithPrior(families, policy, opts.FrontierPrior)
	if err != nil {
		panic(fmt.Sprintf("core: NewFuzzer: %v", err))
	}
	f := &Fuzzer{
		opts:     opts,
		cfg:      cfg,
		gen:      gen.New(opts.Seed),
		coverage: NewCoverage(),
		families: families,
		sched:    sched,
		scnStats: make(map[string]*ScenarioStat, len(families)),
	}
	// The fuzzer-level generator (the Generator() seam experiments and
	// examples mutate through) honours the campaign's scenario filter just
	// like the per-shard generators do.
	f.gen.SetScenarios(families)
	f.pipeline = t.NewPipeline(f)
	f.shards = make([]*shard, opts.Shards)
	for i := range f.shards {
		// Every shard owns a pipeline instance — and through it a private
		// execution context — for the campaign's whole lifetime.
		f.shards[i] = &shard{f: f, id: i, pipe: f.pipeline.NewShard()}
	}
	// Warm start: the resolved seed set becomes the initial merged corpus
	// (so coverage-feedback mutation works from it in epoch 0) and is dealt
	// round-robin to the shards for one verbatim replay each — replaying a
	// proven seed re-establishes its coverage points directly instead of
	// waiting for a lucky mutation. Both effects are pure functions of the
	// options, so worker-count independence and resume byte-identity hold
	// unchanged.
	if len(opts.WarmSeeds) > 0 {
		f.corpus = append([]gen.Seed(nil), opts.WarmSeeds...)
		for j, sd := range opts.WarmSeeds {
			s := f.shards[j%opts.Shards]
			s.warm = append(s.warm, sd)
		}
	}
	f.iters = make([]IterStat, opts.Iterations)
	return f
}

// seqShard returns the fuzzer's sequential three-phase pipeline, building it
// on first use. It backs the exported Phase1/Phase2/Phase3/Reproduce entry
// points (experiments, examples, tests); campaign shards have their own.
func (f *Fuzzer) seqShard() *uarchShard {
	if f.seq == nil {
		f.seq = newUarchShard(f)
	}
	return f.seq
}

// NewFuzzerFromState rebuilds a fuzzer from a barrier snapshot. The
// supplied options must be determinism-equivalent to the snapshot's (they
// may differ in Workers and hooks); the resumed campaign finishes with
// results byte-identical (modulo wall-clock fields) to an uninterrupted
// run of the same options.
func NewFuzzerFromState(st *EngineState, opts Options) (*Fuzzer, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil engine state")
	}
	// Legacy snapshots upgrade in place (v2's weight vector becomes a seeded
	// bandit posterior); unknown versions — including the pre-scheduler v1 —
	// are refused here.
	if err := st.Migrate(); err != nil {
		return nil, err
	}
	if !st.Options.EquivalentTo(opts) {
		if diffs := opts.DiffFrom(st.Options); len(diffs) > 0 {
			return nil, fmt.Errorf("core: option mismatch between campaign and checkpoint (campaign vs checkpoint): %s",
				strings.Join(diffs, "; "))
		}
		return nil, fmt.Errorf("core: engine state options do not match campaign options")
	}
	norm := st.Options.Normalized()
	norm.Workers = opts.Normalized().Workers
	norm.OnEpoch = opts.OnEpoch
	norm.OnBarrier = opts.OnBarrier
	if len(st.Shards) != norm.Shards {
		return nil, fmt.Errorf("core: engine state has %d shard records, want %d", len(st.Shards), norm.Shards)
	}
	if st.NextIter < 0 || st.NextIter > norm.Iterations || len(st.Iters) != st.NextIter {
		return nil, fmt.Errorf("core: engine state iteration bounds corrupt (next=%d, iters=%d, total=%d)",
			st.NextIter, len(st.Iters), norm.Iterations)
	}
	// Snapshots are only taken at barriers, where NextIter and the epoch
	// ordinal are locked together; a mismatch would replay already-consumed
	// shard streams and silently break the byte-identical-resume guarantee,
	// so fail fast instead.
	if wantNext := st.Epoch * norm.MergeEvery; st.NextIter != wantNext &&
		!(st.NextIter == norm.Iterations && wantNext > norm.Iterations) {
		return nil, fmt.Errorf("core: engine state epoch %d inconsistent with next iteration %d (merge every %d)",
			st.Epoch, st.NextIter, norm.MergeEvery)
	}
	f := NewFuzzer(norm)
	f.startIter = st.NextIter
	f.startEpoch = st.Epoch
	f.corpus = append([]gen.Seed(nil), st.Corpus...)
	f.coverage.AddPoints(st.Coverage)
	copy(f.iters, st.Iters)
	f.marks = append([]EpochMark(nil), st.Marks...)
	f.findings = append([]Finding(nil), st.Findings...)
	f.deadSinks = st.DeadSinks
	for i, s := range f.shards {
		s.avgGain = st.Shards[i].AvgGain
		s.gainCount = st.Shards[i].GainCount
		s.pickCount = st.Shards[i].PickCount
		if wc := st.Shards[i].WarmConsumed; wc < 0 || wc > len(s.warm) {
			return nil, fmt.Errorf("core: engine state shard %d consumed %d of %d warm seeds",
				i, wc, len(s.warm))
		}
		s.warmNext = st.Shards[i].WarmConsumed
	}
	// Restore the scheduler exactly as it was at the barrier: the next
	// epoch's family picks depend on its posterior (UCB) or weights (EMA),
	// so a lossy restore would silently break byte-identical resume.
	policy, err := scenario.ParsePolicy(norm.Scheduler)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	sched, err := scenario.NewSchedulerFromState(f.families, policy, st.SchedState)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	f.sched = sched
	for i := range st.Scenarios {
		cs := st.Scenarios[i]
		f.scnStats[cs.Name] = &cs
	}
	return f, nil
}

// snapshot captures the engine state between epochs. Only called from the
// engine goroutine at a barrier (or before the first epoch), when all shard
// state is merged and quiescent.
func (f *Fuzzer) snapshot(nextIter, nextEpoch int) *EngineState {
	st := &EngineState{
		Version:   EngineStateVersion,
		Options:   f.opts,
		NextIter:  nextIter,
		Epoch:     nextEpoch,
		Corpus:    append([]gen.Seed(nil), f.corpus...),
		Coverage:  f.coverage.Points(),
		Shards:    make([]ShardState, len(f.shards)),
		Findings:  append([]Finding(nil), f.findings...),
		Iters:     append([]IterStat(nil), f.iters[:nextIter]...),
		Marks:     append([]EpochMark(nil), f.marks...),
		DeadSinks: f.deadSinks,
		// Scheduler state at the barrier: the posterior drives the next
		// epoch's family picks, stats carry the per-family observables
		// forward.
		SchedState: f.sched.State(),
		Scenarios:  f.scenarioStats(),
	}
	st.Options.OnEpoch = nil
	st.Options.OnBarrier = nil
	for i, s := range f.shards {
		st.Shards[i] = ShardState{
			AvgGain:      s.avgGain,
			GainCount:    s.gainCount,
			PickCount:    s.pickCount,
			WarmConsumed: s.warmNext,
		}
	}
	return st
}

// scenarioStats exports cumulative per-family statistics, sorted by name,
// with each family's current scheduler weight, posterior mean yield and
// exploration bonus filled in. Families the campaign has not picked yet are
// included at zero so consumers always see the full enabled set.
func (f *Fuzzer) scenarioStats() []ScenarioStat {
	out := make([]ScenarioStat, 0, len(f.families))
	for _, name := range f.families {
		w, mean, bonus := f.sched.Probe(name)
		if cs, ok := f.scnStats[name]; ok {
			s := *cs
			s.Weight, s.MeanYield, s.ExplorationBonus = w, mean, bonus
			out = append(out, s)
			continue
		}
		out = append(out, ScenarioStat{
			Name: name, Weight: w, MeanYield: mean, ExplorationBonus: bonus,
			FirstFindingIter: -1,
		})
	}
	return out
}

// ScenarioFamilies returns the campaign's enabled scenario families, sorted.
func (f *Fuzzer) ScenarioFamilies() []string { return append([]string(nil), f.families...) }

// Options returns the fuzzer's normalized options.
func (f *Fuzzer) Options() Options { return f.opts }

// Config returns the (bug-gated) core configuration under test.
func (f *Fuzzer) Config() uarch.Config { return f.cfg }

// Coverage exposes the live coverage matrix.
func (f *Fuzzer) Coverage() *Coverage { return f.coverage }

func (f *Fuzzer) runOpts(mode uarch.IFTMode, taintTrace bool) RunOpts {
	return RunOpts{Cfg: f.cfg, Mode: mode, TaintTrace: taintTrace, MaxCycles: f.opts.MaxCycles}
}

// shard is one deterministic slice of a campaign: a private generator
// stream, a private corpus view and a private coverage delta. A shard is
// only ever touched by one worker at a time, so it needs no locks; its state
// depends only on (campaign seed, shard id, epoch) and the barrier-merged
// global state, never on worker scheduling.
type shard struct {
	f    *Fuzzer
	id   int
	pipe ShardPipeline  // long-lived pipeline instance (owns the exec context)
	gen  *gen.Generator // re-seeded every epoch from (seed, id, epoch)

	// corpus is the epoch-start snapshot of the global corpus (capacity-
	// clamped so appends never alias sibling shards) plus local appends.
	corpus   []gen.Seed
	newSeeds []gen.Seed // local appends this epoch, merged at the barrier
	cov      *Delta

	// warm is the shard's slice of the campaign's warm-start seeds, each
	// replayed verbatim once before the shard draws fresh stimuli; warmNext
	// is the replay cursor (checkpointed as ShardState.WarmConsumed).
	warm     []gen.Seed
	warmNext int

	avgGain   float64
	gainCount int
	pickCount int
	findings  []Finding       // this epoch's findings, merged at the barrier
	deadSinks int             // this epoch's dead-sink count, merged at the barrier
	harvest   []HarvestedSeed // this epoch's corpus-worthy seeds, merged at the barrier
}

// nextSeed picks the next seed: replay a pending warm-start seed
// verbatim, mutate a corpus member (coverage feedback) or draw a fresh
// one.
func (s *shard) nextSeed() gen.Seed {
	if s.warmNext < len(s.warm) {
		sd := s.warm[s.warmNext]
		s.warmNext++
		s.pickCount++
		// Replay under the campaign's own variant; the compatibility
		// fingerprint makes this a no-op for store-resolved warm sets.
		sd.Variant = s.f.opts.Variant
		return sd
	}
	if s.f.opts.UseCoverageFeedback && len(s.corpus) > 0 && s.pickCount%2 == 0 {
		s.pickCount++
		base := s.corpus[s.pickCount/2%len(s.corpus)]
		return s.gen.Mutate(base)
	}
	s.pickCount++
	// Fresh seeds draw their family through the campaign's coverage-adaptive
	// scheduler (read-only during the epoch; the shard's own RNG supplies
	// the randomness, so streams stay worker-independent).
	sd := s.gen.ScheduledSeed(s.f.opts.Core, s.f.sched)
	sd.Variant = s.f.opts.Variant
	return sd
}

// feedback folds one measured iteration into the shard's running gain
// average and reports whether the seed was kept for the corpus.
func (s *shard) feedback(seed gen.Seed, newPoints int, taintGain bool) bool {
	s.gainCount++
	s.avgGain += (float64(newPoints) - s.avgGain) / float64(s.gainCount)
	if !s.f.opts.UseCoverageFeedback {
		return false
	}
	// Keep seeds whose coverage gain beats the running average (the paper's
	// "less than the average increase -> mutate / discard" rule).
	if taintGain && float64(newPoints) >= s.avgGain {
		s.corpus = append(s.corpus, seed)
		s.newSeeds = append(s.newSeeds, seed)
		return true
	}
	return false
}

// runIteration executes one fuzzing iteration through the target pipeline
// against the shard's private state.
func (s *shard) runIteration(iter int) IterStat {
	seed := s.nextSeed()
	stat := IterStat{Iteration: iter, Scenario: gen.ScenarioName(seed), Trigger: seed.Trigger}

	out := s.pipe.RunIteration(iter, seed, s.cov)
	stat.Triggered = out.Triggered
	stat.TaintGain = out.TaintGain
	stat.NewPoints = out.NewPoints
	stat.Sims = out.Sims
	kept := false
	if out.Measured {
		kept = s.feedback(seed, out.NewPoints, out.TaintGain)
	}
	if out.Finding != nil {
		finding := *out.Finding
		finding.Iteration = iter
		stat.Finding = true
		s.findings = append(s.findings, finding)
	} else if out.DeadSinksOnly {
		s.deadSinks++
	}
	// Corpus-worthy observations — coverage keepers and finding producers —
	// are surfaced to the barrier's harvest for cross-campaign persistence.
	if kept || stat.Finding {
		s.harvest = append(s.harvest, HarvestedSeed{
			Iteration: iter,
			Seed:      seed,
			NewPoints: out.NewPoints,
			Finding:   stat.Finding,
		})
	}
	return stat
}

// Run executes the campaign and returns its report. Reports are
// deterministic in (Seed, Iterations, Shards, MergeEvery): the same options
// yield byte-identical Findings, Iters and Coverage whether Workers is 1 or
// 16 (only Duration and the wall-clock FirstBug estimate vary).
//
// A Fuzzer executes at most one campaign: since it carries the campaign's
// cross-epoch state (for barrier snapshots and resume), a second
// Run/RunContext call panics — build a fresh Fuzzer instead.
func (f *Fuzzer) Run() *Report {
	rep, _ := f.RunContext(context.Background())
	return rep
}

// RunContext executes the campaign until completion or context
// cancellation. Cancellation is honoured at the next merge barrier — the
// only point where cross-shard state is consistent — and yields a resumable
// snapshot instead of a report: exactly one of the two return values is
// non-nil. Rebuild with NewFuzzerFromState to continue; the finished
// campaign's results are byte-identical (modulo wall-clock fields) to an
// uninterrupted run.
func (f *Fuzzer) RunContext(ctx context.Context) (*Report, *EngineState) {
	if f.started {
		panic("core: Fuzzer.Run called twice (a Fuzzer executes at most one campaign; build a fresh one)")
	}
	f.started = true
	start := time.Now() //dvz:wallclock Report.Duration/FirstBug are measurement-only and documented as excluded from byte-identity
	n := f.opts.Iterations
	mergeEvery := f.opts.MergeEvery
	numShards := f.opts.Shards
	workers := f.opts.Workers
	if workers > numShards {
		workers = numShards
	}

	epoch := f.startEpoch
	for lo := f.startIter; lo < n; lo, epoch = lo+mergeEvery, epoch+1 {
		if ctx.Err() != nil {
			return nil, f.snapshot(lo, epoch)
		}
		hi := lo + mergeEvery
		if hi > n {
			hi = n
		}
		// Epoch start: every shard re-seeds its generator from (campaign
		// seed, shard id, epoch) and snapshots the merged corpus. The full
		// slice expression clamps capacity so shard appends reallocate
		// instead of aliasing siblings.
		snap := f.corpus[:len(f.corpus):len(f.corpus)]
		for _, s := range f.shards {
			if s.gen == nil {
				s.gen = gen.NewEpochShard(f.opts.Seed, s.id, epoch)
				s.gen.SetScenarios(f.families)
			} else {
				s.gen.Reseed(gen.EpochShardSeed(f.opts.Seed, s.id, epoch))
			}
			s.corpus = snap
			s.newSeeds = s.newSeeds[:0]
			s.cov = f.coverage.NewDelta()
			s.findings = s.findings[:0]
			s.deadSinks = 0
			s.harvest = s.harvest[:0]
		}

		// Workers drain whole shards; shard state stays single-owner and the
		// global coverage/corpus are read-only until the barrier.
		var wg sync.WaitGroup
		work := make(chan *shard)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := range work {
					// First iteration in [lo, hi) congruent to s.id mod Shards.
					first := lo - lo%numShards + s.id
					if first < lo {
						first += numShards
					}
					for i := first; i < hi; i += numShards {
						f.iters[i] = s.runIteration(i)
					}
				}
			}()
		}
		for _, s := range f.shards {
			work <- s
		}
		close(work)
		wg.Wait()

		// Barrier: merge in fixed shard order.
		var epochFindings []Finding
		var epochHarvest []HarvestedSeed
		for _, s := range f.shards {
			f.coverage.Absorb(s.cov)
			f.corpus = append(f.corpus, s.newSeeds...)
			epochFindings = append(epochFindings, s.findings...)
			epochHarvest = append(epochHarvest, s.harvest...)
			f.deadSinks += s.deadSinks
		}
		if len(f.corpus) > corpusCap {
			f.corpus = f.corpus[len(f.corpus)-corpusCap:]
		}
		// At most one finding per iteration, so iteration order is total.
		sort.Slice(epochFindings, func(i, j int) bool {
			return epochFindings[i].Iteration < epochFindings[j].Iteration
		})
		// At most one harvest record per iteration, for the same reason.
		sort.Slice(epochHarvest, func(i, j int) bool {
			return epochHarvest[i].Iteration < epochHarvest[j].Iteration
		})
		f.findings = append(f.findings, epochFindings...)
		merged := f.coverage.Count()
		f.marks = append(f.marks, EpochMark{End: hi, Count: merged})

		// Adaptive scenario scheduling: fold the epoch's per-family yield —
		// read from the iteration records in deterministic iteration order —
		// into the cumulative stats and the scheduler weights. This happens
		// before snapshots and events, so both observe the post-update state
		// the next epoch will sample from.
		epochYield := make(map[string]scenario.Yield, len(f.families))
		for i := lo; i < hi; i++ {
			it := &f.iters[i]
			y := epochYield[it.Scenario]
			y.Picks++
			y.Points += it.NewPoints
			if it.Finding {
				y.Findings++
			}
			epochYield[it.Scenario] = y
			cs := f.scnStats[it.Scenario]
			if cs == nil {
				cs = &ScenarioStat{Name: it.Scenario, FirstFindingIter: -1}
				f.scnStats[it.Scenario] = cs
			}
			cs.Picks++
			cs.Points += it.NewPoints
			if it.Finding {
				cs.Findings++
				if cs.FirstFindingIter < 0 {
					cs.FirstFindingIter = i
				}
			}
		}
		f.sched.Update(epochYield)

		if f.opts.OnEpoch != nil {
			f.opts.OnEpoch(hi, n, merged)
		}
		if f.opts.OnBarrier != nil {
			nextIter, nextEpoch := hi, epoch+1
			f.opts.OnBarrier(&Barrier{
				Epoch:     epoch,
				Done:      hi,
				Total:     n,
				Coverage:  merged,
				Findings:  epochFindings,
				Scenarios: f.scenarioStats(),
				Harvest:   epochHarvest,
				snapshot:  func() *EngineState { return f.snapshot(nextIter, nextEpoch) },
			})
		}
	}

	return f.finalize(start), nil
}

// finalize reconciles iteration statistics into the campaign report.
func (f *Fuzzer) finalize(start time.Time) *Report {
	rep := &Report{Options: f.opts}
	n := f.opts.Iterations

	// Reconcile the coverage history: shard-local NewPoints can overcount
	// (cross-shard duplicates within an epoch), so the running sum is
	// clamped to — and pinned at every barrier to — the merged global count
	// recorded when that epoch's deltas were absorbed.
	cum := 0
	epoch := 0
	firstBug := time.Duration(0)
	for i := 0; i < n; i++ {
		cum += f.iters[i].NewPoints
		if epoch < len(f.marks) {
			if i+1 == f.marks[epoch].End {
				// Exact at the barrier, whatever the shard-local sums said.
				cum = f.marks[epoch].Count
				epoch++
			} else if cum > f.marks[epoch].Count {
				cum = f.marks[epoch].Count
			}
		}
		f.iters[i].Coverage = cum
		rep.Sims += f.iters[i].Sims
		if f.iters[i].Finding && firstBug == 0 {
			// Approximate time-to-first-bug by proportion of wall time.
			//dvz:wallclock Report.FirstBug is measurement-only and documented as excluded from byte-identity
			firstBug = time.Duration(float64(time.Since(start)) * float64(i+1) / float64(n))
		}
	}
	rep.Findings = append(rep.Findings, f.findings...)
	sort.Slice(rep.Findings, func(i, j int) bool {
		return rep.Findings[i].Iteration < rep.Findings[j].Iteration
	})
	rep.DeadSinks = f.deadSinks
	rep.Iters = f.iters
	rep.Scenarios = f.scenarioStats()
	rep.Coverage = f.coverage.Count()
	rep.Duration = time.Since(start) //dvz:wallclock Report.Duration is measurement-only and documented as excluded from byte-identity
	rep.FirstBug = firstBug
	return rep
}
