package core

import (
	"sort"
	"sync"
	"time"

	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

// corpusCap bounds the merged campaign corpus (the paper keeps a small
// above-average-gain seed pool).
const corpusCap = 256

// Options configures a fuzzing campaign.
type Options struct {
	Core       uarch.CoreKind
	Seed       int64
	Iterations int
	// Workers is the number of OS-level workers executing shards. It affects
	// wall-clock time only: a campaign's results are identical for any
	// Workers value given the same Seed, Iterations, Shards and MergeEvery.
	Workers int
	// Shards is the number of deterministic logical shards. Each shard owns a
	// private generator stream derived from (Seed, shard id), a private
	// corpus view and a private coverage delta; iteration i belongs to shard
	// i mod Shards. Changing Shards changes results (it reshapes the streams)
	// — changing Workers never does.
	Shards int
	// MergeEvery is the iteration-count barrier interval at which shard
	// coverage deltas and corpus additions merge into the global state, in
	// fixed shard order.
	MergeEvery int
	MaxCycles  int

	// Variant selects derived (DejaVuzz) or random (DejaVuzz*) training.
	Variant gen.Variant
	// UseCoverageFeedback drives mutation from the taint coverage matrix;
	// disabling it yields the DejaVuzz− ablation of Figure 7.
	UseCoverageFeedback bool
	// UseLiveness enables tainted-sink liveness filtering (§4.3.2); the
	// ablation without it reproduces the misclassification counts of §6.3.
	UseLiveness bool
	// UseReduction enables training reduction (Step 1.2).
	UseReduction bool
	// Bugless disables the injected bugs in the core configuration
	// (regression baseline).
	Bugless bool
	// SecretRetries is how many secret pairs Phase 2 tries before declaring
	// no taint gain — the paper's §7 mitigation for diffIFT false negatives
	// (a secret pair can coincide on a control signal). swapMem's dedicated
	// region makes retrying cheap: only the secret is reloaded.
	SecretRetries int

	// OnEpoch, when set, is called after every merge barrier with the number
	// of completed iterations, the campaign total and the merged coverage
	// count. It runs on the engine goroutine at deterministic points, so it
	// is safe for streaming progress and checkpoint hooks.
	OnEpoch func(done, total, coverage int) `json:"-"`
}

// Normalized returns the options with engine defaults applied — the exact
// options a Report produced by NewFuzzer(o).Run() will carry.
func (o Options) Normalized() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.MergeEvery <= 0 {
		o.MergeEvery = 64
	}
	return o
}

// DefaultOptions returns the standard DejaVuzz configuration.
func DefaultOptions(core uarch.CoreKind) Options {
	return Options{
		Core:                core,
		Seed:                1,
		Iterations:          100,
		Workers:             1,
		Shards:              8,
		MergeEvery:          64,
		MaxCycles:           20000,
		Variant:             gen.VariantDerived,
		UseCoverageFeedback: true,
		UseLiveness:         true,
		UseReduction:        true,
		SecretRetries:       2,
	}
}

// IterStat records one fuzzing iteration's outcome (Figure 7's x-axis unit).
type IterStat struct {
	Iteration int
	Trigger   gen.TriggerType
	Triggered bool
	TaintGain bool
	// NewPoints is the iteration's coverage gain relative to its shard's
	// view (epoch-start global state plus the shard's own delta); sibling
	// shards discovering the same point in one epoch each count it.
	NewPoints int
	// Coverage is the cumulative campaign coverage after this iteration.
	// Within an epoch it interpolates from shard-local gains (an upper
	// bound); at every merge barrier it is exact — equal to the merged
	// global matrix count — so the final entry always equals
	// Report.Coverage.
	Coverage int
	Sims     int
	Finding  bool
}

// Report is a fuzzing campaign's result.
type Report struct {
	Options   Options
	Findings  []Finding
	Iters     []IterStat
	Coverage  int
	Sims      int
	Duration  time.Duration
	FirstBug  time.Duration // time to first finding (0 if none)
	DeadSinks int           // findings suppressed by liveness analysis
}

// CoverageHistory returns cumulative coverage per iteration (Figure 7 series).
func (r *Report) CoverageHistory() []int {
	out := make([]int, len(r.Iters))
	for i, s := range r.Iters {
		out[i] = s.Coverage
	}
	return out
}

// Fuzzer is the DejaVuzz fuzzing manager.
type Fuzzer struct {
	opts     Options
	cfg      uarch.Config
	gen      *gen.Generator
	coverage *Coverage
	corpus   []gen.Seed // merged global corpus, mutated only at barriers
}

// NewFuzzer builds a fuzzer for the options.
func NewFuzzer(opts Options) *Fuzzer {
	cfg := uarch.ConfigFor(opts.Core)
	if opts.Bugless {
		cfg.Bugs = uarch.BugSet{}
	}
	opts = opts.Normalized()
	return &Fuzzer{
		opts:     opts,
		cfg:      cfg,
		gen:      gen.New(opts.Seed),
		coverage: NewCoverage(),
	}
}

// Coverage exposes the live coverage matrix.
func (f *Fuzzer) Coverage() *Coverage { return f.coverage }

func (f *Fuzzer) runOpts(mode uarch.IFTMode, taintTrace bool) RunOpts {
	return RunOpts{Cfg: f.cfg, Mode: mode, TaintTrace: taintTrace, MaxCycles: f.opts.MaxCycles}
}

// shard is one deterministic slice of a campaign: a private generator
// stream, a private corpus view and a private coverage delta. A shard is
// only ever touched by one worker at a time, so it needs no locks; its state
// depends only on (campaign seed, shard id) and the barrier-merged global
// state, never on worker scheduling.
type shard struct {
	f   *Fuzzer
	id  int
	gen *gen.Generator

	// corpus is the epoch-start snapshot of the global corpus (capacity-
	// clamped so appends never alias sibling shards) plus local appends.
	corpus   []gen.Seed
	newSeeds []gen.Seed // local appends this epoch, merged at the barrier
	cov      *Delta

	avgGain   float64
	gainCount int
	pickCount int
	findings  []Finding
	deadSinks int
}

// nextSeed picks the next seed: mutate a corpus member (coverage feedback)
// or draw a fresh one.
func (s *shard) nextSeed() gen.Seed {
	if s.f.opts.UseCoverageFeedback && len(s.corpus) > 0 && s.pickCount%2 == 0 {
		s.pickCount++
		base := s.corpus[s.pickCount/2%len(s.corpus)]
		return s.gen.Mutate(base)
	}
	s.pickCount++
	sd := s.gen.RandomSeed(s.f.opts.Core)
	sd.Variant = s.f.opts.Variant
	return sd
}

func (s *shard) feedback(seed gen.Seed, newPoints int, taintGain bool) {
	s.gainCount++
	s.avgGain += (float64(newPoints) - s.avgGain) / float64(s.gainCount)
	if !s.f.opts.UseCoverageFeedback {
		return
	}
	// Keep seeds whose coverage gain beats the running average (the paper's
	// "less than the average increase -> mutate / discard" rule).
	if taintGain && float64(newPoints) >= s.avgGain {
		s.corpus = append(s.corpus, seed)
		s.newSeeds = append(s.newSeeds, seed)
	}
}

// runIteration executes one complete fuzzing iteration (all three phases)
// against the shard's private state.
func (s *shard) runIteration(iter int) IterStat {
	f := s.f
	stat := IterStat{Iteration: iter}
	seed := s.nextSeed()
	stat.Trigger = seed.Trigger

	p1, err := f.Phase1(seed)
	if err != nil {
		return stat
	}
	stat.Sims += p1.Sims
	if !p1.Triggered {
		return stat
	}
	stat.Triggered = true

	p2, err := f.phase2Into(p1, s.cov)
	if err != nil {
		return stat
	}
	stat.Sims += p2.Sims
	stat.TaintGain = p2.TaintGain
	stat.NewPoints = p2.NewPoints
	s.feedback(seed, p2.NewPoints, p2.TaintGain)
	if !p2.TaintGain {
		return stat
	}

	p3, err := f.Phase3(p1, p2)
	if err != nil {
		return stat
	}
	stat.Sims += p3.Sims
	if p3.Finding != nil {
		p3.Finding.Iteration = iter
		stat.Finding = true
		s.findings = append(s.findings, *p3.Finding)
	} else if p3.DeadSinksOnly {
		s.deadSinks++
	}
	return stat
}

// Run executes the campaign and returns its report. Reports are
// deterministic in (Seed, Iterations, Shards, MergeEvery): the same options
// yield byte-identical Findings, Iters and Coverage whether Workers is 1 or
// 16 (only Duration and the wall-clock FirstBug estimate vary).
func (f *Fuzzer) Run() *Report {
	start := time.Now()
	rep := &Report{Options: f.opts}
	n := f.opts.Iterations
	numShards := f.opts.Shards
	workers := f.opts.Workers
	if workers > numShards {
		workers = numShards
	}

	shards := make([]*shard, numShards)
	for i := range shards {
		shards[i] = &shard{f: f, id: i, gen: gen.NewShard(f.opts.Seed, i)}
	}
	iters := make([]IterStat, n)
	// Per-epoch (end iteration, merged global count) pairs for history
	// reconciliation below.
	type epochMark struct{ end, count int }
	var marks []epochMark

	for lo := 0; lo < n; lo += f.opts.MergeEvery {
		hi := lo + f.opts.MergeEvery
		if hi > n {
			hi = n
		}
		// Epoch start: every shard snapshots the merged corpus. The full
		// slice expression clamps capacity so shard appends reallocate
		// instead of aliasing siblings.
		snap := f.corpus[:len(f.corpus):len(f.corpus)]
		for _, s := range shards {
			s.corpus = snap
			s.newSeeds = s.newSeeds[:0]
			s.cov = f.coverage.NewDelta()
		}

		// Workers drain whole shards; shard state stays single-owner and the
		// global coverage/corpus are read-only until the barrier.
		var wg sync.WaitGroup
		work := make(chan *shard)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := range work {
					// First iteration in [lo, hi) congruent to s.id mod Shards.
					first := lo - lo%numShards + s.id
					if first < lo {
						first += numShards
					}
					for i := first; i < hi; i += numShards {
						iters[i] = s.runIteration(i)
					}
				}
			}()
		}
		for _, s := range shards {
			work <- s
		}
		close(work)
		wg.Wait()

		// Barrier: merge in fixed shard order.
		for _, s := range shards {
			f.coverage.Absorb(s.cov)
			f.corpus = append(f.corpus, s.newSeeds...)
		}
		if len(f.corpus) > corpusCap {
			f.corpus = f.corpus[len(f.corpus)-corpusCap:]
		}
		merged := f.coverage.Count()
		marks = append(marks, epochMark{end: hi, count: merged})
		if f.opts.OnEpoch != nil {
			f.opts.OnEpoch(hi, n, merged)
		}
	}

	// Reconcile the coverage history: shard-local NewPoints can overcount
	// (cross-shard duplicates within an epoch), so the running sum is
	// clamped to — and pinned at every barrier to — the merged global count
	// recorded when that epoch's deltas were absorbed.
	cum := 0
	epoch := 0
	firstBug := time.Duration(0)
	for i := range iters {
		cum += iters[i].NewPoints
		if epoch < len(marks) {
			if i+1 == marks[epoch].end {
				// Exact at the barrier, whatever the shard-local sums said.
				cum = marks[epoch].count
				epoch++
			} else if cum > marks[epoch].count {
				cum = marks[epoch].count
			}
		}
		iters[i].Coverage = cum
		rep.Sims += iters[i].Sims
		if iters[i].Finding && firstBug == 0 {
			// Approximate time-to-first-bug by proportion of wall time.
			firstBug = time.Duration(float64(time.Since(start)) * float64(i+1) / float64(n))
		}
	}
	for _, s := range shards {
		rep.Findings = append(rep.Findings, s.findings...)
		rep.DeadSinks += s.deadSinks
	}
	// At most one finding per iteration, so iteration order is total.
	sort.Slice(rep.Findings, func(i, j int) bool {
		return rep.Findings[i].Iteration < rep.Findings[j].Iteration
	})
	rep.Iters = iters
	rep.Coverage = f.coverage.Count()
	rep.Duration = time.Since(start)
	rep.FirstBug = firstBug
	return rep
}
