package dejavuzz

import (
	"bytes"
	"encoding/json"
	"fmt"

	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
)

// Options is the declarative, JSON-serialisable form of a campaign
// configuration — the wire format dvz-server's create-campaign endpoint
// accepts, and the bridge between external clients and the functional
// options New takes. The zero value selects the target's defaults for
// everything.
//
// Two fields need explicit-zero markers, exactly as the deprecated Config
// did: seed 0 is a valid seed and 0 iterations is a valid dry run, but both
// are also the Go zero value. The JSON encoding resolves the ambiguity by
// key presence — MarshalJSON emits "seed"/"iterations" whenever they are
// explicit (set marker or non-zero value) and omits them otherwise, and
// UnmarshalJSON sets the markers from key presence — so `{"seed":0}` and
// `{}` round-trip to different campaigns (seed zero vs the default seed 1).
//
// The remaining knobs have no zero ambiguity on the wire: numeric fields
// treat 0 as "use the default" (none accepts an explicit zero), the
// boolean toggles are phrased so false is the default, and Variant's empty
// string means Derived.
type Options struct {
	// Target names the registered design under test; empty means
	// DefaultTarget.
	Target string
	// Seed is the campaign RNG seed; see SeedSet for the zero convention.
	Seed int64
	// SeedSet marks Seed as explicit, making seed 0 selectable.
	SeedSet bool
	// Iterations is the campaign length; see IterationsSet.
	Iterations int
	// IterationsSet marks Iterations as explicit, making a 0-iteration dry
	// run selectable.
	IterationsSet bool
	// Workers, Shards, MergeEvery, MaxCycles and SecretRetries override the
	// engine defaults when positive.
	Workers       int
	Shards        int
	MergeEvery    int
	MaxCycles     int
	SecretRetries int
	// Variant is "derived" (DejaVuzz, the default) or "random" (the
	// DejaVuzz* ablation).
	Variant string
	// Scenarios restricts the campaign to the named scenario families;
	// empty means every registered family. Names are validated at decode
	// time, so a misspelled family is rejected at the API boundary instead
	// of silently running a different campaign.
	Scenarios []string
	// Scheduler selects the scenario-scheduling policy: "ucb" (the default
	// no-starvation bandit) or "ema" (legacy). Validated at decode time,
	// like Scenarios, and empty means the default.
	Scheduler string
	// The ablation toggles, phrased so the zero value is the full fuzzer.
	NoCoverageFeedback bool
	NoLiveness         bool
	NoReduction        bool
	Bugless            bool
	// WarmStart asks dvz-server to seed the campaign from its persistent
	// corpus: the server resolves a deterministic warm-start set (seeds +
	// scheduler prior) for the campaign's target and records the resolution
	// with the campaign, so restarts and resumes reuse it. The flag has no
	// engine-side functional lowering — a corpus store must resolve it —
	// which is why Functional ignores it; offline embedders use
	// WithWarmStart directly.
	WarmStart bool
}

// Variant wire names.
const (
	VariantNameDerived = "derived"
	VariantNameRandom  = "random"
)

// wireOptions is the JSON shape of Options: pointers carry the key-presence
// bit for the two explicit-zero fields, omitempty elides defaults so a
// marshalled default configuration is `{}`.
type wireOptions struct {
	Target             string   `json:"target,omitempty"`
	Seed               *int64   `json:"seed,omitempty"`
	Iterations         *int     `json:"iterations,omitempty"`
	Workers            int      `json:"workers,omitempty"`
	Shards             int      `json:"shards,omitempty"`
	MergeEvery         int      `json:"merge_every,omitempty"`
	MaxCycles          int      `json:"max_cycles,omitempty"`
	SecretRetries      int      `json:"secret_retries,omitempty"`
	Variant            string   `json:"variant,omitempty"`
	Scenarios          []string `json:"scenarios,omitempty"`
	Scheduler          string   `json:"scheduler,omitempty"`
	NoCoverageFeedback bool     `json:"no_coverage_feedback,omitempty"`
	NoLiveness         bool     `json:"no_liveness,omitempty"`
	NoReduction        bool     `json:"no_reduction,omitempty"`
	Bugless            bool     `json:"bugless,omitempty"`
	WarmStart          bool     `json:"warm_start,omitempty"`
}

// MarshalJSON encodes the options in wire form. "seed" and "iterations"
// appear exactly when explicit (marker set or value non-zero); all other
// fields are omitted at their default values.
func (o Options) MarshalJSON() ([]byte, error) {
	w := wireOptions{
		Target:             o.Target,
		Workers:            o.Workers,
		Shards:             o.Shards,
		MergeEvery:         o.MergeEvery,
		MaxCycles:          o.MaxCycles,
		SecretRetries:      o.SecretRetries,
		Variant:            o.Variant,
		Scenarios:          o.Scenarios,
		Scheduler:          o.Scheduler,
		NoCoverageFeedback: o.NoCoverageFeedback,
		NoLiveness:         o.NoLiveness,
		NoReduction:        o.NoReduction,
		Bugless:            o.Bugless,
		WarmStart:          o.WarmStart,
	}
	if o.SeedSet || o.Seed != 0 {
		seed := o.Seed
		w.Seed = &seed
	}
	if o.IterationsSet || o.Iterations != 0 {
		iters := o.Iterations
		w.Iterations = &iters
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes wire-form options, deriving the explicit-zero
// markers from key presence and validating the variant name. Unknown keys
// are rejected: a misspelled option silently decoding to a default-value
// campaign is exactly the failure mode a fuzzing service must not have.
func (o *Options) UnmarshalJSON(data []byte) error {
	var w wireOptions
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return err
	}
	if _, err := parseVariant(w.Variant); err != nil {
		return err
	}
	if err := core.ValidateScenarios(w.Scenarios); err != nil {
		return fmt.Errorf("dejavuzz: %w", err)
	}
	if err := core.ValidateSchedulerPolicy(w.Scheduler); err != nil {
		return fmt.Errorf("dejavuzz: %w", err)
	}
	*o = Options{
		Target:             w.Target,
		Workers:            w.Workers,
		Shards:             w.Shards,
		MergeEvery:         w.MergeEvery,
		MaxCycles:          w.MaxCycles,
		SecretRetries:      w.SecretRetries,
		Variant:            w.Variant,
		Scenarios:          w.Scenarios,
		Scheduler:          w.Scheduler,
		NoCoverageFeedback: w.NoCoverageFeedback,
		NoLiveness:         w.NoLiveness,
		NoReduction:        w.NoReduction,
		Bugless:            w.Bugless,
		WarmStart:          w.WarmStart,
	}
	if w.Seed != nil {
		o.Seed, o.SeedSet = *w.Seed, true
	}
	if w.Iterations != nil {
		o.Iterations, o.IterationsSet = *w.Iterations, true
	}
	return nil
}

func parseVariant(name string) (gen.Variant, error) {
	switch name {
	case "", VariantNameDerived:
		return gen.VariantDerived, nil
	case VariantNameRandom:
		return gen.VariantRandom, nil
	}
	return 0, fmt.Errorf("dejavuzz: unknown variant %q (want %q or %q)",
		name, VariantNameDerived, VariantNameRandom)
}

// EffectiveTarget returns the target name the options select (DefaultTarget
// when unset).
func (o Options) EffectiveTarget() string {
	if o.Target == "" {
		return DefaultTarget
	}
	return o.Target
}

// EffectiveIterations returns the campaign length the options select (the
// engine default, 100, when unset).
func (o Options) EffectiveIterations() int {
	if o.IterationsSet || o.Iterations != 0 {
		return o.Iterations
	}
	return 100
}

// EffectiveSeed returns the campaign seed the options select (the engine
// default, 1, when unset).
func (o Options) EffectiveSeed() int64 {
	if o.SeedSet || o.Seed != 0 {
		return o.Seed
	}
	return 1
}

// Functional lowers the wire options onto the equivalent functional-option
// list (everything left at its default contributes nothing). It errors on
// an invalid variant name; target validation happens in New.
func (o Options) Functional() ([]Option, error) {
	variant, err := parseVariant(o.Variant)
	if err != nil {
		return nil, err
	}
	var opts []Option
	if o.SeedSet || o.Seed != 0 {
		opts = append(opts, WithSeed(o.Seed))
	}
	if o.IterationsSet || o.Iterations != 0 {
		opts = append(opts, WithIterations(o.Iterations))
	}
	if o.Workers > 0 {
		opts = append(opts, WithWorkers(o.Workers))
	}
	if o.Shards > 0 {
		opts = append(opts, WithShards(o.Shards))
	}
	if o.MergeEvery > 0 {
		opts = append(opts, WithMergeEvery(o.MergeEvery))
	}
	if o.MaxCycles > 0 {
		opts = append(opts, WithMaxCycles(o.MaxCycles))
	}
	if o.SecretRetries > 0 {
		opts = append(opts, WithSecretRetries(o.SecretRetries))
	}
	if variant != gen.VariantDerived {
		opts = append(opts, WithVariant(variant))
	}
	if len(o.Scenarios) > 0 {
		opts = append(opts, WithScenarios(o.Scenarios...))
	}
	if o.Scheduler != "" {
		opts = append(opts, WithScheduler(o.Scheduler))
	}
	if o.NoCoverageFeedback {
		opts = append(opts, WithCoverageFeedback(false))
	}
	if o.NoLiveness {
		opts = append(opts, WithLiveness(false))
	}
	if o.NoReduction {
		opts = append(opts, WithReduction(false))
	}
	if o.Bugless {
		opts = append(opts, WithInjectedBugs(false))
	}
	return opts, nil
}

// Campaign builds the campaign the options describe, with any extra
// functional options (e.g. WithCheckpointFile, which has no wire form —
// servers own their checkpoint paths) applied on top.
func (o Options) Campaign(extra ...Option) (*Campaign, error) {
	opts, err := o.Functional()
	if err != nil {
		return nil, err
	}
	return New(o.EffectiveTarget(), append(opts, extra...)...)
}
