package dejavuzz

import "dejavuzz/internal/core"

// settings is the campaign configuration functional options mutate: the
// engine options plus session-level behaviour (checkpoint autosave).
type settings struct {
	opts     core.Options
	ckptPath string
}

// Option configures a campaign built by New. Options are explicit, so the
// zero-value ambiguity of the deprecated Config struct does not arise:
// WithSeed(0) means seed zero and WithIterations(0) means an empty dry run.
type Option func(*settings)

// WithSeed sets the campaign RNG seed (default 1). Zero is a valid seed.
func WithSeed(seed int64) Option {
	return func(s *settings) { s.opts.Seed = seed }
}

// WithIterations sets the campaign length (default 100). Zero runs an empty
// campaign — useful as a configuration dry run.
func WithIterations(n int) Option {
	return func(s *settings) { s.opts.Iterations = n }
}

// WithWorkers sets the number of parallel simulation workers (default 1).
// Workers only change wall-clock time: results are identical for any value.
func WithWorkers(n int) Option {
	return func(s *settings) { s.opts.Workers = n }
}

// WithShards sets the number of deterministic logical shards (default 8).
// Unlike Workers, changing Shards changes the campaign's stimulus streams
// and therefore its results.
func WithShards(n int) Option {
	return func(s *settings) { s.opts.Shards = n }
}

// WithMergeEvery sets the merge-barrier interval in iterations (default
// 64). Barriers are where shards merge, events stream, cancellation lands
// and checkpoints are taken; a smaller interval gives finer-grained events
// and cancellation at the cost of more synchronisation.
func WithMergeEvery(n int) Option {
	return func(s *settings) { s.opts.MergeEvery = n }
}

// WithScenarios restricts the campaign to the named scenario families (see
// Scenarios for the registry). Names are validated by New; an empty call
// keeps the default of every registered family. Like WithShards — and
// unlike WithWorkers — the scenario set is determinism-relevant: it
// reshapes the stimulus streams, is recorded in checkpoints, and resuming a
// checkpoint under a different set fails with an option-mismatch error.
func WithScenarios(names ...string) Option {
	return func(s *settings) { s.opts.Scenarios = append([]string(nil), names...) }
}

// Scheduler policy names for WithScheduler and the wire "scheduler" key.
const (
	// SchedulerUCB is the default scenario-scheduling policy: a
	// deterministic UCB1 bandit over per-family yield per pick. Every
	// enabled family is tried before any is exploited and a family's score
	// never decays without new evidence, so no family ever starves.
	SchedulerUCB = "ucb"
	// SchedulerEMA is the legacy EMA-with-floor policy, kept reachable so
	// the bandit fix is A/B-able (dvz-bench records both). It can starve
	// families: ones unpicked in an epoch decay toward the floor despite
	// zero new evidence about them.
	SchedulerEMA = "ema"
)

// WithScheduler selects the scenario-scheduler policy: SchedulerUCB (the
// default) or SchedulerEMA (legacy). The policy is validated by New and is
// determinism-relevant: like WithScenarios it reshapes the stimulus
// streams, is recorded in checkpoints, and resuming a checkpoint under a
// different policy fails with an option-mismatch error naming it.
func WithScheduler(policy string) Option {
	return func(s *settings) { s.opts.Scheduler = policy }
}

// WithVariant selects the training strategy: Derived (DejaVuzz) or
// RandomTraining (the DejaVuzz* ablation).
func WithVariant(v Variant) Option {
	return func(s *settings) { s.opts.Variant = v }
}

// WithCoverageFeedback toggles taint-coverage-guided mutation (default
// true); disabling it yields the DejaVuzz− ablation.
func WithCoverageFeedback(on bool) Option {
	return func(s *settings) { s.opts.UseCoverageFeedback = on }
}

// WithLiveness toggles tainted-sink liveness filtering (default true).
func WithLiveness(on bool) Option {
	return func(s *settings) { s.opts.UseLiveness = on }
}

// WithReduction toggles training reduction (default true).
func WithReduction(on bool) Option {
	return func(s *settings) { s.opts.UseReduction = on }
}

// WithInjectedBugs toggles the injected bugs in the core configuration
// (default true); disabling them gives the bugless regression baseline.
func WithInjectedBugs(on bool) Option {
	return func(s *settings) { s.opts.Bugless = !on }
}

// WithSecretRetries sets how many secret pairs Phase 2 tries before
// declaring no taint gain (default 2).
func WithSecretRetries(n int) Option {
	return func(s *settings) { s.opts.SecretRetries = n }
}

// WithMaxCycles bounds each simulation run (default 20000 cycles).
func WithMaxCycles(n int) Option {
	return func(s *settings) { s.opts.MaxCycles = n }
}

// WithFreshContexts disables per-shard execution-context reuse: every
// simulation rebuilds its DUT state from scratch instead of resetting a
// long-lived per-shard context in place. Reset is equivalent to fresh
// construction, so results never change — only wall-clock time and
// allocation volume do. It exists as the reference mode for the
// reset-equivalence tests and for before/after benchmarking; production
// campaigns should leave it off.
func WithFreshContexts(on bool) Option {
	return func(s *settings) { s.opts.FreshContexts = on }
}

// WarmStart is a resolved cross-campaign warm-start set, normally produced
// by dvz-server's corpus store for the campaign's (target, options
// fingerprint): the corpus snapshot it was resolved from, the seed set,
// and the per-family frontier prior. The resolution is a pure function of
// (snapshot content, campaign seed), so recording the three fields in the
// campaign options preserves every determinism guarantee.
type WarmStart struct {
	// Snapshot is the corpus snapshot ID the set was resolved from. It is
	// recorded in checkpoints; resuming a warm-started checkpoint under a
	// different snapshot fails with an option-mismatch error naming
	// corpus_snapshot.
	Snapshot string
	// Seeds become part of the campaign's initial corpus and are each
	// replayed verbatim once before shards draw fresh stimuli.
	Seeds []Seed
	// Prior seeds the scenario scheduler's posterior with per-family
	// frontier evidence (capped so in-campaign evidence overtakes it).
	Prior []FamilyPrior
}

// WithWarmStart injects a warm-start set into the campaign. Every field is
// determinism-relevant — the set reshapes the stimulus streams exactly
// like WithScenarios does — so it is recorded in checkpoints and a resume
// under a different warm-start fails with an option-mismatch error. Seed
// families and prior families must belong to the campaign's enabled
// scenario set; New validates this.
func WithWarmStart(ws WarmStart) Option {
	return func(s *settings) {
		s.opts.CorpusSnapshot = ws.Snapshot
		s.opts.WarmSeeds = append([]Seed(nil), ws.Seeds...)
		s.opts.FrontierPrior = append([]FamilyPrior(nil), ws.Prior...)
	}
}

// WithCheckpointFile enables session checkpoint autosave: merge barriers
// atomically rewrite path with a resumable checkpoint (emitting a
// CheckpointSaved event) — every barrier for short campaigns, throttled to
// a bounded number of saves for long ones — and an interrupted session
// saves its final checkpoint there too. Load it with LoadCheckpoint and
// pass it to Campaign.Resume.
func WithCheckpointFile(path string) Option {
	return func(s *settings) { s.ckptPath = path }
}
