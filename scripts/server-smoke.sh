#!/usr/bin/env bash
# Smoke-test dvz-server's full service loop over real HTTP and real
# signals: start the server, create a short isasim campaign, poll the
# triage view, SIGTERM the server mid-campaign (graceful shutdown must
# checkpoint it at the next merge barrier), restart over the same state
# directory, and assert the campaign resumes automatically and completes.
set -euo pipefail

ADDR="127.0.0.1:8471"
BASE="http://$ADDR"
STATE="$(mktemp -d)"
BIN="$(mktemp -d)/dvz-server"
SRV_PID=""

cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
  rm -rf "$STATE" "$(dirname "$BIN")" 2>/dev/null || true
}
trap cleanup EXIT

fail() { echo "SMOKE FAIL: $*" >&2; exit 1; }

# jq-free field extraction: first "key":value (string or number) in stdin.
field() { grep -o "\"$1\":[^,}]*" | head -n1 | sed -e "s/\"$1\"://" -e 's/"//g' -e 's/ //g'; }

wait_healthy() {
  for _ in $(seq 100); do
    curl -fs "$BASE/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  fail "server never became healthy on $BASE"
}

echo "== build"
go build -o "$BIN" ./cmd/dvz-server

echo "== start server (state=$STATE)"
"$BIN" -addr "$ADDR" -state "$STATE" -workers 2 &
SRV_PID=$!
wait_healthy

# 60k iterations: the context-reuse engine runs isasim at ~6k iters/s per
# worker, so the campaign must be long enough to still be mid-flight when
# the SIGTERM lands a few curl round-trips after the first barrier.
echo "== create isasim campaign"
CREATE=$(curl -fs -X POST "$BASE/campaigns" \
  -d '{"name":"smoke","options":{"target":"isasim","seed":7,"iterations":60000,"merge_every":64}}')
ID=$(echo "$CREATE" | field id)
TOTAL=$(echo "$CREATE" | field total)
[ -n "$ID" ] || fail "create returned no id: $CREATE"
[ "$TOTAL" = "60000" ] || fail "create returned total=$TOTAL, want 60000"
echo "   campaign $ID, $TOTAL iterations"

echo "== wait for first merge barrier"
DONE=0
for _ in $(seq 200); do
  DONE=$(curl -fs "$BASE/campaigns/$ID" | field done)
  [ "$DONE" -gt 0 ] && break
  sleep 0.1
done
[ "$DONE" -gt 0 ] || fail "campaign never crossed a barrier"

echo "== poll triage view"
FINDINGS=$(curl -fs "$BASE/findings")
echo "$FINDINGS" | grep -q '"raw_findings"' || fail "/findings malformed: $FINDINGS"
METRICS=$(curl -fs "$BASE/metrics")
echo "$METRICS" | grep -q '^dvz_campaigns{state="running"} 1' \
  || fail "metrics do not show the running campaign"

echo "== SIGTERM mid-campaign (done=$DONE/$TOTAL)"
kill -TERM "$SRV_PID"
wait "$SRV_PID" || fail "server exited non-zero after SIGTERM"
SRV_PID=""
CKPT_DONE=$(grep -o "\"done\":[0-9]*" "$STATE/campaigns.json" | head -n1 | sed 's/"done"://')
[ "$CKPT_DONE" -gt 0 ] && [ "$CKPT_DONE" -lt "$TOTAL" ] \
  || fail "registry shows done=$CKPT_DONE, want mid-campaign checkpoint"
grep -q '"state":"queued"' "$STATE/campaigns.json" || fail "campaign not persisted as queued for resume"
echo "   checkpointed at $CKPT_DONE/$TOTAL"

echo "== restart server, campaign must resume on its own"
"$BIN" -addr "$ADDR" -state "$STATE" -workers 2 &
SRV_PID=$!
wait_healthy
STATE_NOW=""
for _ in $(seq 600); do
  REC=$(curl -fs "$BASE/campaigns/$ID")
  STATE_NOW=$(echo "$REC" | field state)
  DONE=$(echo "$REC" | field done)
  [ "$STATE_NOW" = "done" ] && break
  [ "$STATE_NOW" = "failed" ] && fail "campaign failed after restart: $REC"
  sleep 0.1
done
[ "$STATE_NOW" = "done" ] || fail "campaign did not finish after restart (state=$STATE_NOW done=$DONE)"
[ "$DONE" = "$TOTAL" ] || fail "finished with done=$DONE, want $TOTAL"
REPORT=$(curl -fs "$BASE/campaigns/$ID/report")
# Substring match, not a grep pipe: the report is megabytes and grep -q's
# early exit would SIGPIPE the producer under pipefail.
[[ "$REPORT" == *'"Coverage"'* ]] || fail "report endpoint empty"

echo "== graceful final shutdown"
kill -TERM "$SRV_PID"
wait "$SRV_PID" || fail "server exited non-zero on final SIGTERM"
SRV_PID=""

echo "SMOKE OK: campaign $ID checkpointed at $CKPT_DONE/$TOTAL and resumed to completion"
