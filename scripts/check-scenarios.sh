#!/usr/bin/env bash
# check-scenarios.sh — fail if the README's scenario-catalog table disagrees
# with the binary's `dejavuzz -list-scenarios` output. Both render the same
# canonical table (scenario.CatalogTable), so any drift — a family added
# without a README row, a class renamed in one place — breaks CI.
set -euo pipefail
cd "$(dirname "$0")/.."

got=$(go run ./cmd/dejavuzz -list-scenarios)
# `|| true` so an empty section reaches the diagnostic below instead of
# tripping set -e inside the substitution.
want=$(sed -n '/<!-- scenario-catalog:begin/,/<!-- scenario-catalog:end -->/p' README.md | grep '^|' || true)

if [ -z "$want" ]; then
  echo "check-scenarios: README.md has no scenario-catalog section" >&2
  exit 1
fi
if ! diff <(printf '%s\n' "$got") <(printf '%s\n' "$want"); then
  echo "check-scenarios: README scenario catalog disagrees with 'dejavuzz -list-scenarios'" >&2
  echo "check-scenarios: regenerate the README table from the command output above" >&2
  exit 1
fi
families=$(printf '%s\n' "$got" | tail -n +3 | wc -l)
echo "check-scenarios: README catalog matches -list-scenarios ($families families)"
