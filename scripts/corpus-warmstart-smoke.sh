#!/usr/bin/env bash
# Smoke-test the persistent cross-campaign corpus over real HTTP and a real
# restart: run a cold donor campaign (its merge barriers feed the corpus),
# SIGTERM the server (the corpus must compact and survive on disk), restart
# over the same state directory, then run a warm-started campaign at HALF
# the donor's iteration budget and assert it still reaches at least the
# donor's final coverage — the measurable warm-start payoff — with the
# resolved warm set pinned in the campaign record.
set -euo pipefail

ADDR="127.0.0.1:8473"
BASE="http://$ADDR"
STATE="$(mktemp -d)"
BIN="$(mktemp -d)/dvz-server"
SRV_PID=""

cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
  rm -rf "$STATE" "$(dirname "$BIN")" 2>/dev/null || true
}
trap cleanup EXIT

fail() { echo "SMOKE FAIL: $*" >&2; exit 1; }

# jq-free field extraction: first "key":value (string or number) in stdin.
field() { grep -o "\"$1\":[^,}]*" | head -n1 | sed -e "s/\"$1\"://" -e 's/"//g' -e 's/ //g'; }

wait_healthy() {
  for _ in $(seq 100); do
    curl -fs "$BASE/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  fail "server never became healthy on $BASE"
}

wait_done() {
  local id=$1 state=""
  for _ in $(seq 600); do
    state=$(curl -fs "$BASE/campaigns/$id" | field state)
    [ "$state" = "done" ] && return 0
    [ "$state" = "failed" ] && fail "campaign $id failed"
    sleep 0.1
  done
  fail "campaign $id never finished (state=$state)"
}

coverage_of() {
  # The record's "coverage" is the merged count as of the final barrier —
  # same number as the report's, without pulling a multi-megabyte body.
  curl -fs "$BASE/campaigns/$1" | field coverage
}

echo "== build"
go build -o "$BIN" ./cmd/dvz-server

echo "== start server (state=$STATE)"
"$BIN" -addr "$ADDR" -state "$STATE" -workers 2 &
SRV_PID=$!
wait_healthy

echo "== cold donor campaign (its barriers harvest into the corpus)"
CREATE=$(curl -fs -X POST "$BASE/campaigns" \
  -d '{"name":"donor","options":{"target":"boom","seed":7,"iterations":128,"merge_every":16}}')
DONOR=$(echo "$CREATE" | field id)
[ -n "$DONOR" ] || fail "create returned no id: $CREATE"
wait_done "$DONOR"
COLD_COV=$(coverage_of "$DONOR")
[ "$COLD_COV" -gt 0 ] || fail "donor campaign collected no coverage"
echo "   donor $DONOR finished, coverage=$COLD_COV"

echo "== corpus holds the donor's harvest"
CORPUS=$(curl -fs "$BASE/corpus?target=boom")
HARVESTED=$(echo "$CORPUS" | field total)
[ "$HARVESTED" -gt 0 ] || fail "corpus empty after donor campaign: $CORPUS"
TOTAL_HDR=$(curl -fsi "$BASE/corpus?limit=1" | tr -d '\r' | grep -i '^X-Total-Count:' | awk '{print $2}')
[ "$TOTAL_HDR" = "$HARVESTED" ] || fail "X-Total-Count=$TOTAL_HDR disagrees with total=$HARVESTED"
curl -fs "$BASE/corpus/frontier" | grep -q '"fr-' || fail "/corpus/frontier returned no frontier ID"
echo "   $HARVESTED corpus entries, paginated listing consistent"

echo "== SIGTERM: corpus must compact and survive the restart"
kill -TERM "$SRV_PID"
wait "$SRV_PID" || fail "server exited non-zero after SIGTERM"
SRV_PID=""
[ -s "$STATE/corpus/corpus.json" ] || fail "no compacted corpus snapshot on disk"

echo "== restart server over the same state"
"$BIN" -addr "$ADDR" -state "$STATE" -workers 2 &
SRV_PID=$!
wait_healthy
AFTER=$(curl -fs "$BASE/corpus?target=boom" | field total)
[ "$AFTER" = "$HARVESTED" ] || fail "corpus lost entries across restart: $AFTER != $HARVESTED"

echo "== warm campaign at HALF the donor budget must still reach donor coverage"
CREATE=$(curl -fs -X POST "$BASE/campaigns" \
  -d '{"name":"warm","options":{"target":"boom","seed":8,"iterations":64,"merge_every":16,"warm_start":true}}')
WARM=$(echo "$CREATE" | field id)
[ -n "$WARM" ] || fail "warm create returned no id: $CREATE"
wait_done "$WARM"
REC=$(curl -fs "$BASE/campaigns/$WARM")
echo "$REC" | grep -q '"snapshot": *"cs-' || fail "warm record has no pinned snapshot: $REC"
WARM_COV=$(coverage_of "$WARM")
echo "   warm $WARM finished, coverage=$WARM_COV (donor=$COLD_COV at 2x the iterations)"
[ "$WARM_COV" -ge "$COLD_COV" ] \
  || fail "warm campaign at half budget only reached $WARM_COV, donor reached $COLD_COV"

echo "== graceful final shutdown"
kill -TERM "$SRV_PID"
wait "$SRV_PID" || fail "server exited non-zero on final SIGTERM"
SRV_PID=""

echo "SMOKE OK: warm campaign hit coverage $WARM_COV >= donor $COLD_COV with half the iterations"
