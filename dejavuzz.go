// Package dejavuzz is a pure-Go reproduction of "DejaVuzz: Disclosing
// Transient Execution Bugs with Dynamic Swappable Memory and Differential
// Information Flow Tracking Assisted Processor Fuzzing" (ASPLOS 2025).
//
// It provides a pre-silicon transient-execution-bug fuzzer built on two
// operating primitives:
//
//   - dynamic swappable memory (swapMem), which time-shares one address
//     space between training and transient instruction sequences, and
//   - differential information flow tracking (diffIFT), which gates control
//     taints on cross-instance differences to defeat control-flow
//     over-tainting.
//
// The fuzzer runs against cycle-accurate models of two out-of-order RISC-V
// cores (a SmallBOOM-like and a XiangShan-MinimalConfig-like configuration)
// that implement real speculative execution, caches, TLBs, branch
// prediction, and the five published vulnerabilities (B1-B5).
//
// Quick start:
//
//	f := dejavuzz.New(dejavuzz.Config{Core: dejavuzz.BOOM, Iterations: 100})
//	report := f.Run()
//	for _, leak := range report.Findings {
//		fmt.Println(leak)
//	}
package dejavuzz

import (
	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

// CoreKind selects the design under test.
type CoreKind = uarch.CoreKind

// The two evaluated cores.
const (
	BOOM      = uarch.KindBOOM
	XiangShan = uarch.KindXiangShan
)

// Variant selects the training strategy.
type Variant = gen.Variant

// Training strategies: Derived is DejaVuzz proper, RandomTraining is the
// DejaVuzz* ablation.
const (
	Derived        = gen.VariantDerived
	RandomTraining = gen.VariantRandom
)

// Finding is a reported potential transient-execution vulnerability.
type Finding = core.Finding

// Report is the result of a fuzzing campaign.
type Report = core.Report

// TriggerType enumerates the transient-window trigger classes.
type TriggerType = gen.TriggerType

// Config configures a fuzzing campaign. Zero values select sensible
// defaults (BOOM core, derived training, all analyses enabled).
type Config struct {
	// Core is the design under test (BOOM or XiangShan).
	Core CoreKind
	// Seed is the campaign's RNG seed.
	Seed int64
	// Iterations is the number of fuzzing iterations to run.
	Iterations int
	// Workers sets the number of parallel simulation workers. Reports are
	// identical for any Workers value: parallelism only changes wall time.
	Workers int
	// Shards sets the number of deterministic logical shards (default 8).
	// Unlike Workers, changing Shards changes the campaign's stimulus
	// streams and therefore its results.
	Shards int
	// Variant selects Derived (DejaVuzz) or RandomTraining (DejaVuzz*).
	Variant Variant
	// DisableCoverageFeedback yields the DejaVuzz− ablation.
	DisableCoverageFeedback bool
	// DisableLiveness disables tainted-sink liveness filtering.
	DisableLiveness bool
	// DisableReduction disables training reduction.
	DisableReduction bool
	// Bugless disables the injected bugs (regression baseline).
	Bugless bool
}

// Fuzzer is the DejaVuzz fuzzing pipeline.
type Fuzzer struct {
	inner *core.Fuzzer
}

// New constructs a fuzzer from the configuration.
func New(cfg Config) *Fuzzer {
	opts := core.DefaultOptions(cfg.Core)
	if cfg.Seed != 0 {
		opts.Seed = cfg.Seed
	}
	if cfg.Iterations > 0 {
		opts.Iterations = cfg.Iterations
	}
	if cfg.Workers > 0 {
		opts.Workers = cfg.Workers
	}
	if cfg.Shards > 0 {
		opts.Shards = cfg.Shards
	}
	opts.Variant = cfg.Variant
	opts.UseCoverageFeedback = !cfg.DisableCoverageFeedback
	opts.UseLiveness = !cfg.DisableLiveness
	opts.UseReduction = !cfg.DisableReduction
	opts.Bugless = cfg.Bugless
	return &Fuzzer{inner: core.NewFuzzer(opts)}
}

// Run executes the campaign: every iteration walks the paper's three phases
// (transient window triggering, transient execution exploration, transient
// leakage analysis) and contributes to the shared taint-coverage matrix.
func (f *Fuzzer) Run() *Report { return f.inner.Run() }

// Coverage returns the current number of taint-coverage points.
func (f *Fuzzer) Coverage() int { return f.inner.Coverage().Count() }
