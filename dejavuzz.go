// Package dejavuzz is a pure-Go reproduction of "DejaVuzz: Disclosing
// Transient Execution Bugs with Dynamic Swappable Memory and Differential
// Information Flow Tracking Assisted Processor Fuzzing" (ASPLOS 2025).
//
// It provides a pre-silicon transient-execution-bug fuzzer built on two
// operating primitives:
//
//   - dynamic swappable memory (swapMem), which time-shares one address
//     space between training and transient instruction sequences, and
//   - differential information flow tracking (diffIFT), which gates control
//     taints on cross-instance differences to defeat control-flow
//     over-tainting.
//
// # Campaigns, sessions and targets
//
// A campaign is constructed with New from a registered target name and
// functional options:
//
//	c, err := dejavuzz.New("boom",
//		dejavuzz.WithSeed(1),
//		dejavuzz.WithIterations(500),
//	)
//
// Run executes it to completion and returns the Report. For long-running
// campaigns, Start returns a streaming Session instead: an event channel
// carrying Finding, Epoch, CheckpointSaved and Done events, all emitted at
// the engine's deterministic merge barriers. Cancelling the session's
// context (or calling Pause) stops the campaign at the next barrier and
// yields a resumable Checkpoint; a campaign resumed from it finishes with
// results identical to an uninterrupted run.
//
// Targets are pluggable designs under test. Three are built in — the two
// cycle-accurate out-of-order cores the paper evaluates ("boom",
// "xiangshan") and a cheap architectural differential pair ("isasim") —
// and more can be added with RegisterTarget.
package dejavuzz

import (
	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/scenario"
	"dejavuzz/internal/uarch"

	// Register the "isasim" architectural differential target.
	_ "dejavuzz/internal/isadiff"
)

// CoreKind selects a built-in core model.
type CoreKind = uarch.CoreKind

// The two evaluated cores.
const (
	BOOM      = uarch.KindBOOM
	XiangShan = uarch.KindXiangShan
)

// Variant selects the training strategy.
type Variant = gen.Variant

// Training strategies: Derived is DejaVuzz proper, RandomTraining is the
// DejaVuzz* ablation.
const (
	Derived        = gen.VariantDerived
	RandomTraining = gen.VariantRandom
)

// Finding is a reported potential transient-execution vulnerability.
type Finding = core.Finding

// Seed is one structured stimulus specification — the unit of the corpus
// and of warm-start sets. Findings carry the Seed that produced them, and
// dvz-server's corpus store persists Seeds across campaigns.
type Seed = gen.Seed

// HarvestedSeed is one corpus-worthy seed surfaced at a merge barrier: a
// coverage-feedback keeper or finding producer together with its evidence.
// Epoch events carry the barrier's harvest in iteration order.
type HarvestedSeed = core.HarvestedSeed

// FamilyPrior is one scenario family's cross-campaign frontier evidence
// (picks, coverage points, findings), injected into a fresh campaign's
// scenario scheduler by WithWarmStart.
type FamilyPrior = scenario.Prior

// Report is the result of a fuzzing campaign.
type Report = core.Report

// TriggerType enumerates the legacy transient-window trigger classes.
// Scenario families (see Scenarios) are the finer-grained identity new
// workloads register under; every family maps onto one trigger class.
type TriggerType = gen.TriggerType

// ScenarioStat is one scenario family's cumulative campaign statistics
// (picks, coverage yield, findings, adaptive sampling weight), reported on
// every Epoch event and in the final Report.
type ScenarioStat = core.ScenarioStat

// ScenarioInfo describes one registered scenario family: its Table-3
// trigger and window classes, the built-in targets that can observe its
// trigger, and its capability flags.
type ScenarioInfo = scenario.Info

// Scenarios returns the sorted names of every registered scenario family.
func Scenarios() []string { return scenario.Names() }

// ScenarioCatalog returns one ScenarioInfo per registered family, sorted
// by name.
func ScenarioCatalog() []ScenarioInfo { return scenario.Catalog() }

// ScenarioCatalogTable renders the catalog as the canonical markdown table
// `dejavuzz -list-scenarios` prints and the README embeds.
func ScenarioCatalogTable() string { return scenario.CatalogTable() }

// Target is a pluggable design under test: it supplies the stimulus
// personality and the per-campaign iteration pipeline. See RegisterTarget.
type Target = core.Target

// DefaultTarget is the target New uses when callers have no preference.
const DefaultTarget = "boom"

// RegisterTarget adds a target to the registry. It panics on an empty name
// or a duplicate registration.
func RegisterTarget(t Target) { core.RegisterTarget(t) }

// LookupTarget resolves a registered target by name.
func LookupTarget(name string) (Target, error) { return core.LookupTarget(name) }

// Targets returns the sorted names of all registered targets. Three are
// built in: "boom", "xiangshan" and "isasim".
func Targets() []string { return core.Targets() }
