package dejavuzz

import (
	"encoding/json"
	"fmt"
	"os"

	"dejavuzz/internal/atomicfile"
	"dejavuzz/internal/core"
)

// Checkpoint is a resumable mid-campaign snapshot, taken at a merge
// barrier. It round-trips losslessly through JSON (Save/LoadCheckpoint),
// and a campaign resumed from it finishes with results identical — modulo
// wall-clock fields — to an uninterrupted run of the same options.
type Checkpoint struct {
	state *core.EngineState
}

// Target returns the checkpointed campaign's target name.
func (c *Checkpoint) Target() string { return c.state.Options.Target }

// Progress returns completed and total campaign iterations.
func (c *Checkpoint) Progress() (done, total int) {
	return c.state.NextIter, c.state.Options.Iterations
}

// MarshalJSON serialises the engine snapshot.
func (c *Checkpoint) MarshalJSON() ([]byte, error) { return json.Marshal(c.state) }

// UnmarshalJSON restores the engine snapshot.
func (c *Checkpoint) UnmarshalJSON(data []byte) error {
	st := &core.EngineState{}
	if err := json.Unmarshal(data, st); err != nil {
		return err
	}
	c.state = st
	return nil
}

// Save atomically writes the checkpoint to path (write temp + rename), so
// an interrupted save never truncates a previously saved checkpoint.
func (c *Checkpoint) Save(path string) error {
	// Compact encoding: checkpoints carry the full iteration history, so
	// indentation would roughly double an already large machine artifact.
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("dejavuzz: encode checkpoint: %w", err)
	}
	if err := atomicfile.Write(path, data); err != nil {
		return fmt.Errorf("dejavuzz: write checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint previously written by Save (or by a
// session's WithCheckpointFile autosave).
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dejavuzz: read checkpoint: %w", err)
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("dejavuzz: parse checkpoint %s: %w", path, err)
	}
	// Engine states always carry a resolved target; its absence means the
	// file is some other JSON artifact (e.g. a campaign-matrix checkpoint,
	// which shares the version field).
	if ck.state.Options.Target == "" {
		return nil, fmt.Errorf("dejavuzz: %s is not a session checkpoint (no target)", path)
	}
	// Upgrade legacy (version-2, EMA-era) snapshots in place: the bandit
	// posterior is seeded from the checkpointed per-family statistics.
	// Unknown versions — including pre-scheduler v1 — are refused here.
	if err := ck.state.Migrate(); err != nil {
		return nil, fmt.Errorf("dejavuzz: checkpoint %s: %w", path, err)
	}
	return ck, nil
}
